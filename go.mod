module copernicus

go 1.22
