package copernicus_test

import (
	"fmt"
	"log"

	"copernicus"
)

// ExampleCharacterize measures one (matrix, format, partition size)
// point: the dense baseline's σ is 1 by definition.
func ExampleCharacterize() {
	m := copernicus.Random(256, 0.02, 42)
	r, err := copernicus.Characterize(m, copernicus.Dense, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense sigma = %.2f\n", r.Sigma)
	// Output: dense sigma = 1.00
}

// ExampleEncode shows a round trip through one format codec.
func ExampleEncode() {
	tile := copernicus.NewTileFromMatrix(copernicus.Diagonal(16, 1), 0, 0, 16)
	enc := copernicus.Encode(copernicus.DIA, tile)
	fmt.Printf("format=%v useful=%dB meta=%dB utilization=%.4f\n",
		enc.Kind(), enc.Footprint().UsefulBytes, enc.Footprint().MetaBytes,
		enc.Footprint().Utilization())
	// Output: format=DIA useful=64B meta=4B utilization=0.9412
}

// ExampleStats computes the Fig. 3 partition statistics.
func ExampleStats() {
	s := copernicus.Stats(copernicus.Diagonal(64, 1), 8)
	fmt.Printf("p=%d nonzero_tiles=%d row_density=%.3f\n", s.P, s.NonZeroTiles, s.RowDensity)
	// Output: p=8 nonzero_tiles=8 row_density=0.125
}

// ExampleStaticAdvice returns the paper's §8 rule of thumb for a
// workload class.
func ExampleStaticAdvice() {
	m := copernicus.Band(512, 16, 7)
	format, _, _ := copernicus.StaticAdvice(copernicus.Classify(m))
	fmt.Println(format)
	// Output: ELL
}

// ExampleSolveCG solves a PDE system with conjugate gradients over the
// modelled accelerator.
func ExampleSolveCG() {
	a := copernicus.Stencil2D(8, 8, 1)
	b := make([]float64, a.Rows)
	b[10] = 1
	mul, _, err := copernicus.AcceleratorBackend(a, copernicus.ELL, 16)
	if err != nil {
		log.Fatal(err)
	}
	_, st, err := copernicus.SolveCG(mul, b, 1e-10, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", st.Converged)
	// Output: converged: true
}
