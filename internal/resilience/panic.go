package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic promoted to an ordinary error: the
// panic value, the fault-containment point that caught it (e.g.
// "hlsim.exec.span", "jobs.run"), and the goroutine stack at recovery.
// Workers that recover panics return a *PanicError so the failure
// propagates to the caller through the normal error path — the request
// or job fails with a structured error instead of the panic unwinding
// past the goroutine boundary and killing the process.
//
// PanicError satisfies the default Retryable classification: a panicking
// computation is retried up to the policy bound, then quarantined.
type PanicError struct {
	// Point names the containment site that recovered the panic.
	Point string
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Recovered wraps a recover() value into a *PanicError, capturing the
// current goroutine's stack. It returns nil when v is nil, so it can be
// called unconditionally:
//
//	defer func() {
//		if pe := resilience.Recovered("jobs.run", recover()); pe != nil {
//			err = pe
//		}
//	}()
func Recovered(point string, v any) *PanicError {
	if v == nil {
		return nil
	}
	return &PanicError{Point: point, Value: v, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at %s: %v", e.Point, e.Value)
}

// Unwrap surfaces a wrapped error panic value (panic(err)) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
