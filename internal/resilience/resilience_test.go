package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("plain error classified transient")
	}
	te := Transient(base)
	if !IsTransient(te) {
		t.Fatal("Transient-wrapped error not classified transient")
	}
	if !errors.Is(te, base) {
		t.Fatal("Transient must preserve the wrapped error for errors.Is")
	}
	if !IsTransient(fmt.Errorf("outer: %w", te)) {
		t.Fatal("transient marker lost through fmt.Errorf wrapping")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
	// Context errors are never transient, even when marked.
	if IsTransient(Transient(context.Canceled)) {
		t.Fatal("canceled context classified transient")
	}
	if IsTransient(Transient(fmt.Errorf("deadline: %w", context.DeadlineExceeded))) {
		t.Fatal("deadline exceeded classified transient")
	}
}

func TestRetryableClassification(t *testing.T) {
	if Retryable(errors.New("plain")) {
		t.Fatal("plain error retryable")
	}
	if !Retryable(Transient(errors.New("flaky"))) {
		t.Fatal("transient error not retryable")
	}
	if !Retryable(Recovered("test.point", "oops")) {
		t.Fatal("recovered panic not retryable")
	}
	if Retryable(context.Canceled) || Retryable(context.DeadlineExceeded) {
		t.Fatal("context errors retryable")
	}
	if Retryable(nil) {
		t.Fatal("nil retryable")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 4, Seed: 1}, func(context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 5, Seed: 1}, func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want %v", err, perm)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent errors are not retried)", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	flaky := Transient(errors.New("always"))
	calls := 0
	var retries []int
	err := Retry(context.Background(), Policy{
		MaxAttempts: 3,
		Seed:        7,
		OnRetry:     func(attempt int, _ error, _ time.Duration) { retries = append(retries, attempt) },
	}, func(context.Context) error {
		calls++
		return flaky
	})
	if !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want the last transient error", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestRetryZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{}, func(context.Context) error {
		calls++
		return Transient(errors.New("flaky"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("zero policy: calls=%d err=%v, want 1 attempt and an error", calls, err)
	}
}

func TestRetryHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 3}, func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times on a dead context", calls)
	}
}

func TestRetryCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	err := Retry(ctx, Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Hour, // jitter draws from (0, 1h]; cancel must cut it short
		Seed:        99,
		OnRetry:     func(int, error, time.Duration) { cancel() },
	}, func(context.Context) error {
		calls++
		return Transient(errors.New("flaky"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep not interrupted", elapsed)
	}
}

func TestDelayDeterministicWhenSeeded(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 42}
	seq := func() []time.Duration {
		var errs []time.Duration
		// Reproduce Retry's internal schedule: fresh seeded rng, Delay(1..4).
		rng := newSeededRand(42)
		for n := 1; n <= 4; n++ {
			errs = append(errs, p.Delay(n, rng))
		}
		return errs
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v — seeded schedule not deterministic", i, a[i], b[i])
		}
	}
	// Ceilings: 1ms, 2ms, 4ms, 8ms (capped). Every draw must respect its ceiling.
	ceil := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}
	for i, d := range a {
		if d < 0 || d > ceil[i] {
			t.Fatalf("delay %d = %v outside [0, %v]", i, d, ceil[i])
		}
	}
}

func TestDelayCapsAtMaxDelay(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: 2 * time.Second, Multiplier: 10}
	rng := newSeededRand(1)
	for n := 1; n <= 10; n++ {
		if d := p.Delay(n, rng); d > 2*time.Second {
			t.Fatalf("Delay(%d) = %v exceeds MaxDelay", n, d)
		}
	}
}

func TestPhaseDerivesBudget(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()

	ctx, pc := Phase(parent, 0.5, 0, 0)
	defer pc()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("phase context lost the deadline")
	}
	rem := time.Until(dl)
	if rem < 25*time.Minute || rem > 31*time.Minute {
		t.Fatalf("phase budget %v, want ~30m", rem)
	}

	// Floor lifts a tiny slice; cap trims a huge one.
	ctx2, pc2 := Phase(parent, 0.0001, 10*time.Minute, 0)
	defer pc2()
	if dl2, _ := ctx2.Deadline(); time.Until(dl2) < 9*time.Minute {
		t.Fatalf("floor not applied: %v", time.Until(dl2))
	}
	ctx3, pc3 := Phase(parent, 1, 0, time.Minute)
	defer pc3()
	if dl3, _ := ctx3.Deadline(); time.Until(dl3) > time.Minute+time.Second {
		t.Fatalf("cap not applied: %v", time.Until(dl3))
	}

	// No parent deadline: cap becomes the budget; zero cap means none.
	ctx4, pc4 := Phase(context.Background(), 0.5, 0, time.Minute)
	defer pc4()
	if _, ok := ctx4.Deadline(); !ok {
		t.Fatal("cap should impose a deadline on deadline-less parent")
	}
	ctx5, pc5 := Phase(context.Background(), 0.5, 0, 0)
	defer pc5()
	if _, ok := ctx5.Deadline(); ok {
		t.Fatal("deadline appeared from nowhere")
	}
}

func TestPhaseNeverExtendsParentDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ctx, pc := Phase(parent, 1, time.Hour, 0) // floor far beyond the parent
	defer pc()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	pdl, _ := parent.Deadline()
	if dl.After(pdl) {
		t.Fatalf("phase deadline %v extends past parent %v", dl, pdl)
	}
}

func TestPanicError(t *testing.T) {
	if Recovered("p", nil) != nil {
		t.Fatal("Recovered(nil) must be nil")
	}
	pe := Recovered("hlsim.exec.span", "index out of range")
	if pe.Point != "hlsim.exec.span" || len(pe.Stack) == 0 {
		t.Fatalf("bad PanicError: %+v", pe)
	}
	want := "panic at hlsim.exec.span: index out of range"
	if pe.Error() != want {
		t.Fatalf("Error() = %q, want %q", pe.Error(), want)
	}
	var as *PanicError
	if !errors.As(fmt.Errorf("job: %w", pe), &as) {
		t.Fatal("PanicError lost through wrapping")
	}
	// panic(err) values unwrap to the original error.
	base := errors.New("invariant violated")
	if !errors.Is(Recovered("p", base), base) {
		t.Fatal("error panic value not unwrapped")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				c.Add()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Load() != 400 {
		t.Fatalf("Counter = %d, want 400", c.Load())
	}
}
