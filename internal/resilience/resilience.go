// Package resilience is the fault-containment substrate of Copernicus:
// retry with capped exponential backoff and full jitter, circuit
// breakers, per-phase deadline budgets, and structured panic capture.
// Every primitive is context-first — cancellation wins over any retry or
// backoff schedule — and deterministic when seeded, so chaos tests can
// replay a failure byte for byte.
//
// The package sits below every compute layer (it imports nothing from
// this repository), so hlsim, backend, core, jobs, and service can all
// share one vocabulary for "what failed, is it worth retrying, and what
// do we do when it keeps failing":
//
//   - Transient marks an error as worth retrying; IsTransient and
//     Retryable classify (context cancellations are never retryable).
//   - Retry(ctx, policy, fn) re-runs fn under a Policy: capped
//     exponential backoff with full jitter, aborted by ctx at any point.
//   - Breaker trips after consecutive failures and recovers through a
//     half-open probe, so a persistently failing dependency degrades to
//     an immediate ErrBreakerOpen instead of burning retry budgets.
//   - Phase derives a per-phase budget from a request deadline, so one
//     slow phase cannot consume the entire request allowance.
//   - PanicError carries a recovered panic (value, point, stack) as an
//     ordinary error, so a panic in a worker goroutine propagates to the
//     caller like any other failure instead of killing the process.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Transient wraps err so IsTransient reports true: the failure is
// plausibly temporary (a timing glitch, a busy resource, an injected
// chaos fault) and a retry may succeed. Wrapping nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient. Context cancellations are never transient, even if wrapped:
// retrying work nobody is waiting for is pure waste.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *transientError
	return errors.As(err, &te)
}

// Retryable is the default retry classification: transient errors and
// recovered panics are worth another attempt (a panicking computation is
// retried up to the policy bound, then quarantined by the caller);
// context cancellations and plain errors are not.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if IsTransient(err) {
		return true
	}
	var pe *PanicError
	return errors.As(err, &pe)
}

// Policy configures Retry: how many attempts, how the backoff between
// them grows, and which errors are worth retrying. The zero value is a
// single attempt (no retry).
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included.
	// Values below 1 mean 1.
	MaxAttempts int
	// BaseDelay seeds the backoff: the delay before attempt n+1 is drawn
	// uniformly from [0, min(MaxDelay, BaseDelay·Multiplier^(n-1))] —
	// capped exponential backoff with full jitter. Zero means no delay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling; zero means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the ceiling per attempt; values below 1 mean 2.
	Multiplier float64
	// Seed makes the jitter deterministic: the same seed replays the
	// same delay schedule. Zero draws from the global source.
	Seed uint64
	// Retryable classifies errors worth another attempt; nil means the
	// package-level Retryable (transient errors and recovered panics).
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each retry decision just before
	// the backoff sleep: the attempt number that failed (1-based), its
	// error, and the chosen delay.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// newSeededRand is the deterministic jitter source used by Retry when a
// Policy carries a non-zero Seed.
func newSeededRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}

// Delay returns the backoff before attempt n+1 (n is the 1-based attempt
// that just failed), drawing the full-jitter fraction from rng (nil uses
// the global source).
func (p Policy) Delay(n int, rng *rand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	ceil := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		ceil *= mult
		if p.MaxDelay > 0 && ceil >= float64(p.MaxDelay) {
			ceil = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && ceil > float64(p.MaxDelay) {
		ceil = float64(p.MaxDelay)
	}
	var f float64
	if rng != nil {
		f = rng.Float64()
	} else {
		f = rand.Float64()
	}
	return time.Duration(f * ceil)
}

// Retry runs fn up to p.MaxAttempts times, sleeping the policy's jittered
// backoff between attempts. It returns nil on the first success, the
// last error when attempts are exhausted or the error is not retryable,
// and ctx.Err() if the context is canceled before or between attempts
// (a cancellation mid-sleep is observed immediately; fn is never started
// for a dead context). fn receives the same ctx and must honor it.
func Retry(ctx context.Context, p Policy, fn func(context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	classify := p.Retryable
	if classify == nil {
		classify = Retryable
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = newSeededRand(p.Seed)
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = fn(ctx)
		if err == nil {
			return nil
		}
		if attempt >= attempts || !classify(err) {
			return err
		}
		d := p.Delay(attempt, rng)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
}

// Phase derives a per-phase budget from ctx's deadline: a child context
// whose deadline is fraction of the remaining time, clamped to
// [floor, cap]. A ctx without a deadline gets cap (or no deadline at all
// when cap is zero). Phases that overrun their slice fail early with
// DeadlineExceeded instead of silently eating the whole request
// allowance, so a later phase still has time to report a structured
// error. The returned cancel must always be called.
func Phase(ctx context.Context, fraction float64, floor, cap time.Duration) (context.Context, context.CancelFunc) {
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	dl, ok := ctx.Deadline()
	if !ok {
		if cap <= 0 {
			return context.WithCancel(ctx)
		}
		return context.WithTimeout(ctx, cap)
	}
	budget := time.Duration(fraction * float64(time.Until(dl)))
	if budget < floor {
		budget = floor
	}
	if cap > 0 && budget > cap {
		budget = cap
	}
	// Never extend past the parent deadline: context.WithTimeout already
	// clamps to the parent, so a floor above the remaining time degrades
	// to the parent's own deadline.
	return context.WithTimeout(ctx, budget)
}

// Counter is a tiny concurrent event tally shared by the failure
// observability surfaces (/v1/stats, chaos assertions).
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Add increments the counter.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Load returns the current count.
func (c *Counter) Load() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
