package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually so cooldown transitions are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakerClock(3, time.Minute, clk.now)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before threshold: %v", err)
		}
		b.Failure()
	}
	if snap := b.Snapshot(); snap.State != "closed" || snap.Failures != 2 {
		t.Fatalf("snapshot before trip: %+v", snap)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow at threshold-1: %v", err)
	}
	b.Failure() // third consecutive failure trips it
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if snap := b.Snapshot(); snap.State != "open" || snap.Trips != 1 {
		t.Fatalf("snapshot after trip: %+v", snap)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	b.Failure()
	b.Success()
	b.Failure()
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker tripped on non-consecutive failures: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakerClock(1, time.Minute, clk.now)
	b.Failure() // trip immediately (threshold 1)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker should be open")
	}
	clk.advance(59 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("cooldown not elapsed; breaker should still refuse")
	}
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if snap := b.Snapshot(); snap.State != "half-open" {
		t.Fatalf("state = %s, want half-open", snap.State)
	}
	// Only one probe at a time.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens; another cooldown is required.
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker should re-open after failed probe")
	}
	clk.advance(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Success()
	if snap := b.Snapshot(); snap.State != "closed" || snap.Failures != 0 {
		t.Fatalf("snapshot after recovery: %+v", snap)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refusing calls: %v", err)
	}
}

func TestBreakerDo(t *testing.T) {
	b := NewBreaker(1, time.Hour)
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want %v", err, boom)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Do while open = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerReset(t *testing.T) {
	b := NewBreaker(1, time.Hour)
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker should be open")
	}
	b.Reset()
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after Reset: %v", err)
	}
}

func TestBreakerGroupPerKey(t *testing.T) {
	g := NewBreakerGroup(1, time.Hour)
	g.For("native").Failure()
	if err := g.For("native").Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("native breaker should be open")
	}
	if err := g.For("analytic").Allow(); err != nil {
		t.Fatalf("unrelated key shares breaker state: %v", err)
	}
	if g.For("native") != g.For("native") {
		t.Fatal("For must return the same instance per key")
	}
}
