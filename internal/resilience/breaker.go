package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow and Breaker.Do while the
// breaker is open: the protected dependency has failed enough consecutive
// times that further attempts are refused until the cooldown elapses.
// Callers should degrade (fall back to a cheaper path) rather than retry.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed breakerState = iota // normal operation, failures counted
	breakerOpen                       // refusing calls until cooldown elapses
	breakerHalfOpen                   // one probe in flight decides the fate
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a circuit breaker: closed while the dependency is healthy,
// open (refusing calls) after Threshold consecutive failures, and
// half-open after Cooldown — a single probe call is admitted, and its
// outcome closes or re-opens the circuit. The zero value is unusable;
// construct with NewBreaker. All methods are safe for concurrent use.
//
// The clock is injectable (see NewBreakerClock) so chaos tests can step
// time deterministically instead of sleeping through cooldowns.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    uint64    // lifetime closed→open transitions
}

// NewBreaker returns a closed breaker that trips open after threshold
// consecutive failures (minimum 1) and admits a half-open probe once
// cooldown has elapsed.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return NewBreakerClock(threshold, cooldown, time.Now)
}

// NewBreakerClock is NewBreaker with an injectable clock for tests.
func NewBreakerClock(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed: nil while closed or for the
// single half-open probe, ErrBreakerOpen otherwise. Every Allow that
// returns nil MUST be paired with exactly one Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a successful call: it resets the failure count and,
// from half-open, closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = breakerClosed
}

// Failure records a failed call: from half-open it re-opens immediately;
// while closed it trips the breaker once consecutive failures reach the
// threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		b.state = breakerOpen
		b.openedAt = b.now()
		b.trips++
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	}
}

// Cancel releases an Allow without recording an outcome — the protected
// call was aborted (context cancellation) before the dependency's health
// could be observed. The failure streak is unchanged and a half-open
// probe slot is returned for the next caller.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Do runs fn behind the breaker: Allow, then Success/Failure based on
// fn's error (which is returned unchanged).
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	if err != nil {
		b.Failure()
	} else {
		b.Success()
	}
	return err
}

// Reset force-closes the breaker and clears failure history (tests,
// admin surfaces).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// BreakerSnapshot is a point-in-time view for observability surfaces.
type BreakerSnapshot struct {
	State    string `json:"state"`
	Failures int    `json:"failures"`
	Trips    uint64 `json:"trips"`
}

// Snapshot returns the breaker's current state for /v1/stats and tests.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{State: b.state.String(), Failures: b.failures, Trips: b.trips}
}

// BreakerGroup lazily creates one Breaker per key (e.g. per backend, per
// worker node), all sharing a threshold and cooldown.
type BreakerGroup struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerGroup returns an empty group whose members are created with
// NewBreaker(threshold, cooldown) on first use.
func NewBreakerGroup(threshold int, cooldown time.Duration) *BreakerGroup {
	return &BreakerGroup{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

// For returns the breaker for key, creating it if needed.
func (g *BreakerGroup) For(key string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	br, ok := g.m[key]
	if !ok {
		br = NewBreaker(g.threshold, g.cooldown)
		g.m[key] = br
	}
	return br
}
