package synth

import (
	"testing"

	"copernicus/internal/formats"
)

var partitions = []int{8, 16, 32}

func TestEstimateDeterministic(t *testing.T) {
	for _, k := range formats.All() {
		for _, p := range partitions {
			if Estimate(k, p) != Estimate(k, p) {
				t.Fatalf("%v p=%d: non-deterministic estimate", k, p)
			}
		}
	}
}

func TestAllPositive(t *testing.T) {
	for _, k := range formats.All() {
		for _, p := range partitions {
			r := Estimate(k, p)
			if r.BRAM18K < 0 || r.FF <= 0 || r.LUT <= 0 {
				t.Fatalf("%v p=%d: non-positive resources %+v", k, p, r)
			}
			if r.DynamicW <= 0 || r.StaticW <= 0 {
				t.Fatalf("%v p=%d: non-positive power %+v", k, p, r)
			}
		}
	}
}

// TestDenseBCSRBanksTrackPartition: Table 2's structural identity — the
// dense buffer and BCSR's dim-2-partitioned arrays bank one-per-row, so
// BRAM = p for partition sizes 8/16/32.
func TestDenseBCSRBanksTrackPartition(t *testing.T) {
	for _, p := range partitions {
		if got := Estimate(formats.Dense, p).BRAM18K; got != p {
			t.Errorf("dense p=%d: BRAM = %d, want %d", p, got, p)
		}
		if got := Estimate(formats.BCSR, p).BRAM18K; got != p {
			t.Errorf("bcsr p=%d: BRAM = %d, want %d", p, got, p)
		}
	}
}

// TestCSRCSCLowestBanks: sequential arrays cannot be partitioned, so CSR
// and CSC use the fewest BRAM banks at small partitions (Table 2: 1–2).
func TestCSRCSCLowestBanks(t *testing.T) {
	for _, p := range []int{8, 16} {
		csr := Estimate(formats.CSR, p).BRAM18K
		csc := Estimate(formats.CSC, p).BRAM18K
		if csr > 3 || csc > 3 {
			t.Errorf("p=%d: CSR/CSC banks %d/%d, want sequential-array minimum (≤3)", p, csr, csc)
		}
		dense := Estimate(formats.Dense, p).BRAM18K
		if csr >= dense || csc >= dense {
			t.Errorf("p=%d: CSR/CSC bank more than dense", p)
		}
	}
}

// TestBanksGrowAtLargePartition: every format's worst-case arrays
// eventually outgrow single banks.
func TestBanksGrowAtLargePartition(t *testing.T) {
	for _, k := range formats.Core() {
		if Estimate(k, 32).BRAM18K < Estimate(k, 8).BRAM18K {
			t.Errorf("%v: BRAM shrinks from p=8 to p=32", k)
		}
	}
}

// TestELLSmallPartitionUsesFF reproduces the §6.4 observation: at p=8 the
// ELL rectangles fit the FF threshold, so ELL uses almost no BRAM and
// proportionally more flip-flops than the BRAM-backed p=32 design.
func TestELLSmallPartitionUsesFF(t *testing.T) {
	small := Estimate(formats.ELL, 8)
	large := Estimate(formats.ELL, 32)
	if small.BRAM18K >= large.BRAM18K {
		t.Fatalf("ELL BRAM p=8 (%d) not below p=32 (%d)", small.BRAM18K, large.BRAM18K)
	}
	// FF per unit of design size must be higher at p=8 (array bits in FF).
	if small.FF <= 24*8+40*formats.ELLWidth {
		t.Fatalf("ELL p=8 FF = %d shows no array buffering", small.FF)
	}
}

// TestStaticPowerTwoClasses: §6.4 reports 0.121 W for the BRAM-heavy
// formats (dense, CSR, BCSR, LIL, ELL) and 0.103 W for CSC, COO, DIA. The
// model must place the first group strictly above the second at p=16.
func TestStaticPowerTwoClasses(t *testing.T) {
	highAvg, lowAvg := 0.0, 0.0
	high := []formats.Kind{formats.Dense, formats.BCSR, formats.LIL, formats.ELL}
	low := []formats.Kind{formats.CSC, formats.COO, formats.DIA}
	for _, k := range high {
		highAvg += Estimate(k, 16).StaticW
	}
	for _, k := range low {
		lowAvg += Estimate(k, 16).StaticW
	}
	highAvg /= float64(len(high))
	lowAvg /= float64(len(low))
	if highAvg <= lowAvg {
		t.Fatalf("static power classes inverted: high %.4f vs low %.4f", highAvg, lowAvg)
	}
}

// TestDynamicPowerBand: Table 2's dynamic power sits in 10–120 mW.
func TestDynamicPowerBand(t *testing.T) {
	for _, k := range formats.Core() {
		for _, p := range partitions {
			r := Estimate(k, p)
			if r.DynamicW < 0.005 || r.DynamicW > 0.25 {
				t.Errorf("%v p=%d: dynamic power %.4f W outside plausible band", k, p, r.DynamicW)
			}
		}
	}
}

// TestPowerBreakdownSums: the Fig. 13 components plus clock equal the
// Table 2 total.
func TestPowerBreakdownSums(t *testing.T) {
	for _, k := range formats.All() {
		for _, p := range partitions {
			r := Estimate(k, p)
			sum := (r.LogicMW + r.BRAMMW + r.SignalsMW + r.ClockMW) / 1000
			if diff := sum - r.DynamicW; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%v p=%d: breakdown sum %.6f != total %.6f", k, p, sum, r.DynamicW)
			}
		}
	}
}

// TestLogicPowerMonotonicInP: §6.4 — "the power consumption of logic
// always increases or stays steady as partition size increases".
func TestLogicPowerMonotonicInP(t *testing.T) {
	for _, k := range formats.Core() {
		prev := -1.0
		for _, p := range partitions {
			r := Estimate(k, p)
			if r.LogicMW < prev {
				t.Errorf("%v: logic power decreases at p=%d", k, p)
			}
			prev = r.LogicMW
		}
	}
}

// TestBRAMPowerCanDecrease: for the unrolled formats the per-bank access
// rate falls faster than banking grows at some step (dense and BCSR in
// Fig. 13b show decreasing BRAM power); at minimum the model must not
// make BRAM power strictly increasing for every format.
func TestBRAMPowerShapes(t *testing.T) {
	decreasing := 0
	for _, k := range formats.Core() {
		a := Estimate(k, 8).BRAMMW
		b := Estimate(k, 32).BRAMMW
		if b < a {
			decreasing++
		}
	}
	if decreasing == 0 {
		t.Fatal("no format shows decreasing BRAM power; Fig. 13b shape lost")
	}
}

// TestFitsDevice: each single design fits the xq7z020 budgets of Table 2.
func TestFitsDevice(t *testing.T) {
	for _, k := range formats.Core() {
		for _, p := range partitions {
			r := Estimate(k, p)
			if r.BRAM18K > DeviceBRAM {
				t.Errorf("%v p=%d: %d banks exceed device %d", k, p, r.BRAM18K, DeviceBRAM)
			}
			if r.FF > DeviceFF {
				t.Errorf("%v p=%d: %d FF exceed device %d", k, p, r.FF, DeviceFF)
			}
			if r.LUT > DeviceLUT {
				t.Errorf("%v p=%d: %d LUT exceed device %d", k, p, r.LUT, DeviceLUT)
			}
		}
	}
}

func TestTotals(t *testing.T) {
	var reports []Report
	for _, k := range formats.Core() {
		reports = append(reports, Estimate(k, 16))
	}
	bram, ff, lut := Totals(reports)
	wantB, wantF, wantL := 0, 0, 0
	for _, r := range reports {
		wantB += r.BRAM18K
		wantF += r.FF
		wantL += r.LUT
	}
	if bram != wantB || ff != wantF || lut != wantL {
		t.Fatal("Totals does not sum reports")
	}
}

func TestSmallPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p below block size accepted")
		}
	}()
	Estimate(formats.BCSR, 2)
}
