// Package synth estimates FPGA resource utilization and power for the
// modelled accelerator, standing in for the Vivado synthesis and
// implementation reports behind Table 2 and Fig. 13 of the paper.
//
// The estimator is analytic, not a synthesis tool: it derives BRAM_18K
// banks from each format's worst-case on-chip array allocation and HLS
// array-partition pragmas (small array slices fall back to flip-flop
// implementation, reproducing the paper's observation that small ELL
// partitions buffer in FFs); FF and LUT counts from pipeline registers,
// FF-implemented arrays, comparators, and unrolled datapath width; and
// dynamic power from per-component activity (logic, BRAM, signals, clock)
// in the style of a post-implementation power report.
//
// Absolute numbers are calibration-level approximations of Table 2; the
// trends the paper draws conclusions from — which formats bank like the
// dense design, where the FF/BRAM buffering crossover sits, which formats
// burn power in signals versus BRAM — are structural outputs of the
// model. EXPERIMENTS.md records estimate-versus-paper for every cell.
package synth

import (
	"fmt"

	"copernicus/internal/formats"
)

// Device constants for the xq7z020 target.
const (
	bramBits = 18 * 1024 // one BRAM_18K bank
	// ffSliceThresholdBits is the array-slice size below which HLS
	// implements the storage in flip-flops instead of a BRAM bank.
	ffSliceThresholdBits = 256
	wordBits             = 32
)

// Report is the synthesis estimate for one decompressor variant at one
// partition size, covering the whole Fig. 2 design (buffers, decompressor,
// dot engine, AXIS plumbing).
type Report struct {
	Format formats.Kind
	P      int

	BRAM18K int
	FF      int
	LUT     int

	// Dynamic power breakdown in milliwatts (Fig. 13) plus the clock
	// tree; DynamicW is their sum in watts (Table 2's "DY Power").
	LogicMW   float64
	BRAMMW    float64
	SignalsMW float64
	ClockMW   float64
	DynamicW  float64

	// StaticW is the device leakage attributed to the design (§6.4
	// reports two classes: 0.121 W and 0.103 W).
	StaticW float64
}

// array describes one on-chip buffer of a decompressor: its worst-case
// word count (the §2 footnote: on-chip allocation is sized for the worst
// case even though it rarely occurs), and the HLS partition factor.
// ffThresholdBits overrides the default register-inference threshold for
// arrays whose every element feeds combinational logic simultaneously
// (fully unrolled consumers and address generators), which HLS keeps in
// registers at larger sizes than streamed buffers.
type array struct {
	words           int
	partition       int
	ffThresholdBits int
}

// bankAndFF returns the BRAM banks and FF bits the array synthesizes to.
func (a array) bankAndFF() (banks, ffBits int) {
	if a.words == 0 {
		return 0, 0
	}
	threshold := a.ffThresholdBits
	if threshold == 0 {
		threshold = ffSliceThresholdBits
	}
	sliceWords := (a.words + a.partition - 1) / a.partition
	sliceBits := sliceWords * wordBits
	if sliceBits < threshold {
		return 0, a.words * wordBits
	}
	perSlice := (sliceBits + bramBits - 1) / bramBits
	return a.partition * perSlice, 0
}

// arrays returns the on-chip buffers of each format's decompressor, as
// declared by the paper's listings (worst-case lengths from §2).
func arrays(k formats.Kind, p int) []array {
	b := formats.BCSRBlock
	switch k {
	case formats.Dense:
		// Row-partitioned input buffer: each row in its own bank so the
		// dot engine reads a full row per cycle.
		return []array{{words: p * p, partition: p}}
	case formats.CSR:
		// Sequential arrays; unknown access order forbids partitioning
		// (§5.2), so colInx and values each occupy monolithic banks.
		return []array{
			{words: p, partition: 1},     // offsets
			{words: p * p, partition: 1}, // colInx
			{words: p * p, partition: 1}, // values
		}
	case formats.CSC:
		return []array{
			{words: p, partition: 1},
			{words: p * p, partition: 1}, // rowInx
			{words: p * p, partition: 1},
		}
	case formats.BCSR:
		// values/colInx partitioned across dim 2 (Listing 2): the block
		// rows stripe across p banks like the dense buffer. The small
		// offset/index arrays feed address generation and stay in
		// registers.
		return []array{
			{words: p / b, partition: 1, ffThresholdBits: 4096},
			{words: (p / b) * (p / b), partition: 1, ffThresholdBits: 4096}, // colInx
			{words: p * p, partition: p},                                    // values
		}
	case formats.COO:
		// Three tuple component vectors, sequential access only.
		return []array{
			{words: p*p + 1, partition: 1}, // rows
			{words: p*p + 1, partition: 1}, // cols
			{words: p*p + 1, partition: 1}, // values
		}
	case formats.DOK:
		// Hash table sized 2× worst-case nnz: keys and values.
		return []array{
			{words: 2 * p * p, partition: 1},
			{words: 2 * p * p, partition: 1},
		}
	case formats.LIL:
		// Column lists partitioned cyclically (factor 2 per array keeps
		// the min-tree fed while bounding banking).
		return []array{
			{words: p * (p + 1), partition: 2}, // Inx, terminator row included
			{words: p * (p + 1), partition: 2}, // values
		}
	case formats.ELL:
		// Rectangles allocated at the fixed ELLWidth, partitioned across
		// dim 2 for the fully unrolled gather; the unrolled consumer
		// keeps shallow slices in registers (the p=8 FF buffering the
		// paper observes).
		return []array{
			{words: p * formats.ELLWidth, partition: formats.ELLWidth, ffThresholdBits: 512},
			{words: p * formats.ELLWidth, partition: formats.ELLWidth, ffThresholdBits: 512},
		}
	case formats.DIA:
		// Worst case 2p-1 diagonals of p+1 slots each, partitioned by a
		// modest factor so several diagonals scan per cycle.
		return []array{{words: (2*p - 1) * (p + 1), partition: 3}}
	case formats.SELL:
		return []array{
			{words: p * formats.ELLWidth, partition: formats.ELLWidth},
			{words: p * formats.ELLWidth, partition: formats.ELLWidth},
			{words: p / formats.SELLSlice, partition: 1}, // widths
		}
	case formats.ELLCOO:
		return append(arrays(formats.ELL, p),
			array{words: p*p/2 + 1, partition: 1}, // spill tuples
			array{words: p*p/2 + 1, partition: 1},
			array{words: p*p/2 + 1, partition: 1})
	case formats.JDS:
		return []array{
			{words: p, partition: 1},     // perm
			{words: p + 1, partition: 1}, // ptr
			{words: p * p, partition: 1}, // idx
			{words: p * p, partition: 1}, // values
		}
	case formats.SELLCS:
		return append(arrays(formats.SELL, p),
			array{words: p, partition: 1}) // perm
	default:
		panic(fmt.Sprintf("synth: arrays for unknown kind %v", k))
	}
}

// logicProfile returns per-format datapath characteristics that drive the
// FF/LUT and activity estimates: the unroll width of the decompressor
// datapath and a relative control-logic complexity.
func logicProfile(k formats.Kind, p int) (unroll int, control float64) {
	switch k {
	case formats.Dense:
		return p, 0.5
	case formats.CSR:
		return 1, 1.5 // offset arithmetic + dependent addressing
	case formats.CSC:
		return 1, 2.0 // column traversal state machine
	case formats.BCSR:
		return formats.BCSRBlock * formats.BCSRBlock, 1.5
	case formats.COO:
		return 1, 1.0
	case formats.DOK:
		return 1, 1.2 // key unpack + compare
	case formats.LIL:
		return p, 2.5 // p-wide min-comparator tree + gather
	case formats.ELL:
		return formats.ELLWidth, 1.0
	case formats.DIA:
		return 1, 2.2 // diagonal bound checks per Listing 7 helpers
	case formats.SELL:
		return formats.ELLWidth, 1.3
	case formats.ELLCOO:
		return formats.ELLWidth, 1.6
	case formats.JDS:
		return 1, 1.8
	case formats.SELLCS:
		return formats.ELLWidth, 1.5
	default:
		panic(fmt.Sprintf("synth: logicProfile for unknown kind %v", k))
	}
}

// bramAccessRate models the per-bank toggle rate: unrolled designs move a
// fixed word stream per partition, so widening the engine spreads the
// same toggles across more banks and across the longer dot-product
// interval and the per-bank rate falls (the decreasing dense/BCSR BRAM
// power of Fig. 13b); sequential designs hammer one bank every cycle.
func bramAccessRate(k formats.Kind, p int) float64 {
	switch k {
	case formats.Dense, formats.BCSR, formats.ELL, formats.SELL:
		return 16.0 / float64(p*(2+log2(p)))
	case formats.LIL:
		return 0.5
	default:
		return 1.0
	}
}

// MinP is the smallest partition size the estimator models (the BCSR
// block edge bounds every array sizing below). Callers fed untrusted
// partition sizes must validate p >= MinP before calling Estimate; the
// engine does (see core's sweep validation), so the panic below is a
// programmer-contract check, not a reachable crash.
const MinP = formats.BCSRBlock

// Estimate returns the synthesis estimate for format k at partition size p.
func Estimate(k formats.Kind, p int) Report {
	if p < MinP {
		panic(fmt.Sprintf("synth: partition size %d below block size", p))
	}
	r := Report{Format: k, P: p}

	// Storage.
	ffBits := 0
	for _, a := range arrays(k, p) {
		banks, ff := a.bankAndFF()
		r.BRAM18K += banks
		ffBits += ff
	}
	// The dense output row buffer (drow) every decompressor writes, plus
	// the partial-output vector buffer, live in FFs at small p and one
	// bank otherwise.
	drow := array{words: 2 * p, partition: p}
	banks, ff := drow.bankAndFF()
	r.BRAM18K += banks
	ffBits += ff

	// Registers: FF-implemented arrays + pipeline registers across the
	// decompressor and the dot engine (p multipliers + adder tree), plus
	// control state.
	unroll, control := logicProfile(k, p)
	r.FF = ffBits + 40*unroll + 24*p + int(220*control)
	// LUTs: datapath muxes/comparators scale with unroll, the gather
	// crossbar with p, and control with the complexity factor.
	r.LUT = 30*unroll + 14*p + int(400*control)

	// Dynamic power (milliwatts). Calibration constants put the totals in
	// Table 2's 20–120 mW band.
	rate := bramAccessRate(k, p)
	r.LogicMW = 0.004 * float64(r.LUT)
	r.BRAMMW = 1.1 * float64(r.BRAM18K) * rate
	r.SignalsMW = 0.0030*float64(r.FF+r.LUT) + 0.30*float64(unroll)
	r.ClockMW = 8 + 0.0015*float64(r.FF)
	r.DynamicW = (r.LogicMW + r.BRAMMW + r.SignalsMW + r.ClockMW) / 1000

	// Static leakage: a base device figure plus a term for powered-up
	// BRAM, which splits the formats into the paper's two classes.
	r.StaticW = 0.098 + 0.0014*float64(r.BRAM18K)
	return r
}

// Totals returns the summed resource budget across the given reports,
// mirroring Table 2's "Total" row (the xq7z020 has 140 BRAM_18K, 106.4k
// FF, 53.2k LUT).
func Totals(reports []Report) (bram, ff, lut int) {
	for _, r := range reports {
		bram += r.BRAM18K
		ff += r.FF
		lut += r.LUT
	}
	return
}

// DeviceBRAM, DeviceFF and DeviceLUT are the xq7z020 budgets from
// Table 2's Total row, exposed for utilization percentages.
const (
	DeviceBRAM = 140
	DeviceFF   = 106400
	DeviceLUT  = 53200
)

func log2(n int) int {
	d, v := 0, 1
	for v < n {
		v <<= 1
		d++
	}
	return d
}
