// Package metrics provides the aggregation and normalization helpers
// behind the paper's cross-metric comparisons: geometric means (the
// GEOMEAN bar of Fig. 4) and the min-max normalization of Fig. 14, where
// every metric is rescaled so 1 is the best achieved value and 0 the
// worst.
package metrics

import (
	"fmt"
	"math"
)

// Direction states whether larger or smaller raw values are better, or
// whether the ideal is a target value (the balance ratio's ideal is 1).
type Direction int

// Directions for Normalize.
const (
	HigherBetter Direction = iota
	LowerBetter
	// TargetOne scores values by closeness to 1 on a log scale, the
	// natural reading of the balance ratio where 2× memory-bound and 2×
	// compute-bound are equally imbalanced.
	TargetOne
)

// Geomean returns the geometric mean of strictly positive values, the
// aggregation Fig. 4 uses across SuiteSparse workloads.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("metrics: Geomean of non-positive value %v", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// KendallTau returns the Kendall rank correlation τ (tau-a) between two
// cost vectors over the same items: for every item pair, the pair is
// concordant when both vectors order it the same way and discordant when
// they disagree; τ = (concordant − discordant) / (n·(n−1)/2). Ties in
// either vector contribute zero. It is the rank-agreement statistic of
// the model-vs-measured backend comparison: τ = 1 means the measured
// backend reproduces the model's format ordering exactly, τ = −1 a full
// reversal. Slices must be the same length; fewer than two items yield
// τ = 1 (nothing to disagree about).
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: KendallTau over %d vs %d items", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			prod := (a[i] - a[j]) * (b[i] - b[j])
			switch {
			case prod > 0:
				conc++
			case prod < 0:
				disc++
			}
		}
	}
	return float64(conc-disc) / float64(n*(n-1)/2)
}

// Normalize rescales raw metric values to [0, 1] with 1 best and 0 worst
// (Fig. 14). All-equal inputs map to all-1 (every format achieved the
// best). TargetOne first maps values to -|ln v| so the score peaks at
// raw value 1.
func Normalize(raw []float64, dir Direction) []float64 {
	if len(raw) == 0 {
		return nil
	}
	score := make([]float64, len(raw))
	for i, v := range raw {
		switch dir {
		case HigherBetter:
			score[i] = v
		case LowerBetter:
			score[i] = -v
		case TargetOne:
			if v <= 0 {
				panic(fmt.Sprintf("metrics: TargetOne value %v must be positive", v))
			}
			score[i] = -math.Abs(math.Log(v))
		}
	}
	lo, hi := score[0], score[0]
	for _, s := range score[1:] {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	out := make([]float64, len(score))
	if hi == lo {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for i, s := range score {
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}
