package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/xrand"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{5}); g != 5 {
		t.Fatalf("Geomean(5) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v, want 0", g)
	}
}

func TestKendallTau(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical order", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"full reversal", []float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{"one swap", []float64{1, 2, 3}, []float64{1, 3, 2}, 1.0 / 3.0},
		{"tie contributes zero", []float64{1, 2}, []float64{5, 5}, 0},
		{"single item", []float64{7}, []float64{3}, 1},
		{"empty", nil, nil, 1},
	}
	for _, tc := range cases {
		if got := KendallTau(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: KendallTau = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestKendallTauSymmetric(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = r.Float64(), r.Float64()
		}
		tau := KendallTau(a, b)
		return tau >= -1 && tau <= 1 && tau == KendallTau(b, a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KendallTau length mismatch did not panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geomean of 0 did not panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		vs := make([]float64, 1+r.Intn(10))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vs {
			vs[i] = 0.01 + 10*r.Float64()
			lo = math.Min(lo, vs[i])
			hi = math.Max(hi, vs[i])
		}
		g := Geomean(vs)
		return g >= lo-1e-12 && g <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestNormalizeHigherBetter(t *testing.T) {
	out := Normalize([]float64{1, 3, 2}, HigherBetter)
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestNormalizeLowerBetter(t *testing.T) {
	out := Normalize([]float64{1, 3, 2}, LowerBetter)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("LowerBetter: %v", out)
	}
}

func TestNormalizeTargetOne(t *testing.T) {
	// 1.0 is ideal; 0.5 and 2.0 are equally imbalanced; 4.0 is worst.
	out := Normalize([]float64{1, 0.5, 2, 4}, TargetOne)
	if out[0] != 1 {
		t.Fatalf("ideal balance scored %v, want 1", out[0])
	}
	if math.Abs(out[1]-out[2]) > 1e-12 {
		t.Fatalf("0.5 and 2.0 scored differently: %v vs %v", out[1], out[2])
	}
	if out[3] != 0 {
		t.Fatalf("worst balance scored %v, want 0", out[3])
	}
}

func TestNormalizeAllEqual(t *testing.T) {
	out := Normalize([]float64{2, 2, 2}, LowerBetter)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("all-equal input produced %v", out)
		}
	}
}

func TestNormalizeBoundsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		vs := make([]float64, 2+r.Intn(8))
		for i := range vs {
			vs[i] = 0.1 + 5*r.Float64()
		}
		for _, dir := range []Direction{HigherBetter, LowerBetter, TargetOne} {
			out := Normalize(vs, dir)
			hasOne, hasZero := false, false
			for _, v := range out {
				if v < 0 || v > 1 {
					return false
				}
				if v == 1 {
					hasOne = true
				}
				if v == 0 {
					hasZero = true
				}
			}
			// Unless degenerate, both extremes must be hit.
			if !hasOne {
				return false
			}
			_ = hasZero
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if out := Normalize(nil, HigherBetter); out != nil {
		t.Fatalf("Normalize(nil) = %v", out)
	}
}
