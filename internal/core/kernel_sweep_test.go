package core

import (
	"context"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/scenario"
	"copernicus/internal/workloads"
)

func kernelTestWorkloads() []workloads.Workload {
	return []workloads.Workload{
		{ID: "wa", Name: "wa", Kind: "test", M: gen.Random(48, 0.1, 101)},
		{ID: "wb", Name: "wb", Kind: "test", M: gen.Random(48, 0.08, 103)},
	}
}

// TestSweepKernelsDefaultSpecMatchesSweepWith: a kernel sweep over the
// single default spec is the pre-kernel-axis sweep — identical results in
// identical order, with the kernel columns filled in as one spmv
// iteration. This is the wrapper contract every legacy caller relies on.
func TestSweepKernelsDefaultSpecMatchesSweepWith(t *testing.T) {
	ws := kernelTestWorkloads()
	kinds := []formats.Kind{formats.CSR, formats.ELL, formats.CSC}
	ps := []int{8, 16}
	ctx := context.Background()

	old, err := New().SweepWith(ctx, nil, ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := New().SweepKernelsWith(ctx, nil, ws, []scenario.Spec{scenario.Default()}, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(kern) != len(old) {
		t.Fatalf("kernel sweep returned %d results, SweepWith %d", len(kern), len(old))
	}
	for i := range old {
		if kern[i] != old[i] {
			t.Fatalf("result %d diverges:\n kernel: %+v\n legacy: %+v", i, kern[i], old[i])
		}
		if kern[i].Kernel != "spmv" || kern[i].Iterations != 1 {
			t.Fatalf("result %d kernel columns = (%q, %d), want (spmv, 1)", i, kern[i].Kernel, kern[i].Iterations)
		}
	}
}

// TestSweepKernelsOrderingKernelMajor: with multiple specs the grid is
// workload-major, then kernel, then partition — each workload's specs
// appear as contiguous runs, each holding its full (format, p) block. The
// deterministic order is what NDJSON consumers and the report tables key
// on.
func TestSweepKernelsOrderingKernelMajor(t *testing.T) {
	ws := kernelTestWorkloads()
	specs := []scenario.Spec{scenario.Default(), scenario.MustParse("cg:60")}
	kinds := []formats.Kind{formats.CSR, formats.ELL}
	ps := []int{8, 16}

	rs, err := New().SweepKernelsWith(context.Background(), nil, ws, specs, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ws) * len(specs) * len(kinds) * len(ps); len(rs) != want {
		t.Fatalf("sweep returned %d results, want %d", len(rs), want)
	}
	i := 0
	for _, w := range ws {
		for _, sc := range specs {
			for _, p := range ps {
				for range kinds {
					r := rs[i]
					if r.Workload != w.Name || r.Kernel != sc.String() || r.P != p {
						t.Fatalf("result %d = (%s, %s, p=%d), want (%s, %s, p=%d)",
							i, r.Workload, r.Kernel, r.P, w.Name, sc, p)
					}
					i++
				}
			}
		}
	}
}

// TestSweepKernelsAmortizationOrdersSeconds: for every (workload, format,
// p) point the cg:60 row costs more than the spmv row, but less than 60×
// it — the amortization the kernel axis exists to express.
func TestSweepKernelsAmortizationOrdersSeconds(t *testing.T) {
	ws := kernelTestWorkloads()[:1]
	specs := []scenario.Spec{scenario.Default(), scenario.MustParse("cg:60")}
	kinds := formats.Sparse()

	rs, err := New().SweepKernelsWith(context.Background(), nil, ws, specs, kinds, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	half := len(rs) / 2
	for i := 0; i < half; i++ {
		spmv, cg := rs[i], rs[half+i]
		if spmv.Format != cg.Format {
			t.Fatalf("row %d pairs %v with %v", i, spmv.Format, cg.Format)
		}
		if cg.Iterations != 60 {
			t.Fatalf("%v: cg row has %d iterations", cg.Format, cg.Iterations)
		}
		if cg.Seconds <= spmv.Seconds {
			t.Fatalf("%v: cg:60 %v s not above spmv %v s", cg.Format, cg.Seconds, spmv.Seconds)
		}
		if cg.Seconds > 60*spmv.Seconds {
			t.Fatalf("%v: cg:60 %v s above 60 x spmv %v s (no amortization)", cg.Format, cg.Seconds, spmv.Seconds)
		}
	}
}

// TestRecommendKernelCanFlip: the recommendation for an iterative kernel
// is computed from the amortized costs — it must rank by cg:60 seconds,
// not reuse the spmv ordering. (Whether the winner actually changes is
// matrix-dependent; what's pinned is that the scored results are the
// kernel's own.)
func TestRecommendKernelCanFlip(t *testing.T) {
	m := gen.Random(64, 0.08, 107)
	sc := scenario.MustParse("cg:60")
	e := New()
	rec, err := e.RecommendKernelWith(context.Background(), nil, m, sc, 16, formats.Sparse(), LatencyObjective())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.SweepFormatsKernelWith(context.Background(), nil, "adhoc", m, sc, 16, formats.Sparse())
	if err != nil {
		t.Fatal(err)
	}
	best := rs[0]
	for _, r := range rs[1:] {
		if r.Seconds < best.Seconds {
			best = r
		}
	}
	if rec.Format != best.Format {
		t.Fatalf("RecommendKernelWith picked %v, cheapest cg:60 format is %v", rec.Format, best.Format)
	}
	for _, r := range rec.Results {
		if r.Kernel != "cg:60" || r.Iterations != 60 {
			t.Fatalf("recommendation result kernel columns = (%q, %d)", r.Kernel, r.Iterations)
		}
	}
}
