package core

import (
	"math"
	"strings"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/workloads"
)

func TestCharacterizeBasics(t *testing.T) {
	e := New()
	m := gen.Random(128, 0.05, 1)
	r, err := e.Characterize("rand", m, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sigma <= 0 || r.BalanceRatio <= 0 || r.Seconds <= 0 || r.ThroughputBps <= 0 {
		t.Fatalf("non-positive metrics: %+v", r)
	}
	if r.BandwidthUtil <= 0 || r.BandwidthUtil > 1 {
		t.Fatalf("bandwidth util %v", r.BandwidthUtil)
	}
	if r.NonZeroTiles == 0 || r.NonZeroTiles > r.TotalTiles {
		t.Fatalf("tile counts %d/%d", r.NonZeroTiles, r.TotalTiles)
	}
	if r.Synth.Format != formats.CSR || r.Synth.P != 16 {
		t.Fatalf("synth report mismatch: %+v", r.Synth)
	}
}

func TestCharacterizeDenseSigmaOne(t *testing.T) {
	e := New()
	m := gen.Random(96, 0.1, 2)
	r, err := e.Characterize("rand", m, formats.Dense, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sigma != 1 {
		t.Fatalf("dense σ = %v, want exactly 1", r.Sigma)
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	e := New()
	m := gen.Circuit(200, 3)
	a, err := e.Characterize("c", m, formats.LIL, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Characterize("c", m, formats.LIL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("characterization not deterministic")
	}
}

func TestNewWithConfigRejectsInvalid(t *testing.T) {
	bad := hlsim.Default()
	bad.ClockHz = -1
	if _, err := NewWithConfig(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSweepFormatsOrder(t *testing.T) {
	e := New()
	m := gen.Random(64, 0.1, 4)
	rs, err := e.SweepFormats("m", m, 8, formats.Core())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(formats.Core()) {
		t.Fatalf("results %d, want %d", len(rs), len(formats.Core()))
	}
	for i, k := range formats.Core() {
		if rs[i].Format != k {
			t.Fatalf("result %d format %v, want %v", i, rs[i].Format, k)
		}
	}
}

func TestSweepAllPoints(t *testing.T) {
	e := New()
	ws := workloads.BandSuite(workloads.Config{BandDim: 64})
	rs, err := e.Sweep(ws[:2], []formats.Kind{formats.CSR, formats.DIA}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2*2*2 {
		t.Fatalf("sweep produced %d results, want 8", len(rs))
	}
}

func TestFilter(t *testing.T) {
	rs := []Result{{P: 8}, {P: 16}, {P: 8}}
	got := Filter(rs, func(r Result) bool { return r.P == 8 })
	if len(got) != 2 {
		t.Fatalf("filter kept %d, want 2", len(got))
	}
}

// TestPaperInsightCOOBeatsDIAOnGraphs reproduces the §8 headline: on a
// diverse sparse graph matrix, the generic COO format is faster than the
// specialized DIA format on generic hardware.
func TestPaperInsightCOOBeatsDIAOnGraphs(t *testing.T) {
	e := New()
	m := gen.PreferentialAttachment(512, 6, 7)
	coo, err := e.Characterize("g", m, formats.COO, 16)
	if err != nil {
		t.Fatal(err)
	}
	dia, err := e.Characterize("g", m, formats.DIA, 16)
	if err != nil {
		t.Fatal(err)
	}
	if coo.Seconds >= dia.Seconds {
		t.Fatalf("COO (%.3g s) not faster than DIA (%.3g s) on a graph", coo.Seconds, dia.Seconds)
	}
	if coo.BandwidthUtil <= dia.BandwidthUtil {
		t.Fatalf("COO bandwidth utilization %.3f not above DIA %.3f on a graph",
			coo.BandwidthUtil, dia.BandwidthUtil)
	}
}

// TestPaperInsightDIAUtilizationOnDiagonal: §6.3 — DIA's bandwidth
// utilization on a diagonal matrix approaches 1.
func TestPaperInsightDIAUtilizationOnDiagonal(t *testing.T) {
	e := New()
	m := gen.Diagonal(256, 9)
	r, err := e.Characterize("diag", m, formats.DIA, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.BandwidthUtil < 0.9 {
		t.Fatalf("DIA utilization on diagonal = %.3f, want > 0.9", r.BandwidthUtil)
	}
	coo, err := e.Characterize("diag", m, formats.COO, 32)
	if err != nil {
		t.Fatal(err)
	}
	if coo.BandwidthUtil > 0.34 {
		t.Fatalf("COO utilization %.3f, want pinned near 1/3", coo.BandwidthUtil)
	}
}

func TestRecommendRanksAllCandidates(t *testing.T) {
	e := New()
	m := gen.Random(128, 0.03, 11)
	rec, err := e.Recommend(m, 16, nil, LatencyObjective())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ranking) != len(formats.Sparse()) {
		t.Fatalf("ranking has %d entries, want %d", len(rec.Ranking), len(formats.Sparse()))
	}
	if rec.Format != rec.Ranking[0] {
		t.Fatal("winner not first in ranking")
	}
	if rec.Reason == "" || !strings.Contains(rec.Reason, rec.Format.String()) {
		t.Fatalf("unhelpful reason %q", rec.Reason)
	}
	// Under a pure latency objective, the winner must have the minimum
	// modelled time.
	best := rec.Results[0].Seconds
	for _, r := range rec.Results[1:] {
		if r.Seconds < best-1e-15 {
			t.Fatalf("ranking violates latency objective: %v at %.3g beats %v at %.3g",
				r.Format, r.Seconds, rec.Format, best)
		}
	}
}

// TestRecommendAvoidsCSC: under any latency-weighted objective the
// orientation-mismatched CSC must never win.
func TestRecommendAvoidsCSC(t *testing.T) {
	e := New()
	for seed := uint64(1); seed <= 3; seed++ {
		m := gen.Random(96, 0.1, seed)
		rec, err := e.Recommend(m, 16, nil, BalancedObjective())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Format == formats.CSC {
			t.Fatal("advisor recommended CSC")
		}
	}
}

func TestRecommendDesignJointRanking(t *testing.T) {
	e := New()
	m := gen.Random(96, 0.05, 21)
	points, err := e.RecommendDesign(m, nil, nil, LatencyObjective())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(formats.Sparse())*3 {
		t.Fatalf("points = %d, want %d", len(points), len(formats.Sparse())*3)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Score > points[i-1].Score+1e-12 {
			t.Fatal("points not sorted best-first")
		}
	}
	// The winner under a latency objective must be the global minimum
	// modelled time across all (format, p) pairs.
	best := points[0].Result.Seconds
	for _, pt := range points[1:] {
		if pt.Result.Seconds < best-1e-15 {
			t.Fatalf("%v/p=%d at %.3g beats winner at %.3g",
				pt.Format, pt.P, pt.Result.Seconds, best)
		}
	}
	if points[0].Format == formats.CSC {
		t.Fatal("CSC won the design sweep")
	}
}

func TestRecommendDesignCustomSpace(t *testing.T) {
	e := New()
	m := gen.Band(64, 4, 23)
	points, err := e.RecommendDesign(m, []int{8}, []formats.Kind{formats.DIA, formats.ELL}, BalancedObjective())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, pt := range points {
		if pt.P != 8 {
			t.Fatalf("unexpected partition size %d", pt.P)
		}
	}
}

func TestClassify(t *testing.T) {
	if c := Classify(gen.Band(256, 8, 1)); c != ClassBanded {
		t.Fatalf("band classified %v", c)
	}
	if c := Classify(gen.Random(128, 0.3, 2)); c != ClassModeratelySparse {
		t.Fatalf("dense-ish classified %v", c)
	}
	if c := Classify(gen.PreferentialAttachment(1024, 4, 3)); c != ClassExtremelySparse {
		t.Fatalf("graph classified %v", c)
	}
	if c := Classify(gen.Random(128, 0.03, 4)); c != ClassGeneral {
		t.Fatalf("mid-density classified %v", c)
	}
}

func TestStaticAdviceMatchesPaper(t *testing.T) {
	if f, _, _ := StaticAdvice(ClassExtremelySparse); f != formats.COO {
		t.Fatalf("extremely sparse advice %v, want COO (§8)", f)
	}
	if f, _, _ := StaticAdvice(ClassModeratelySparse); f != formats.BCSR {
		t.Fatalf("ML advice %v, want BCSR (§8)", f)
	}
	if f, alts, _ := StaticAdvice(ClassBanded); f != formats.ELL {
		t.Fatalf("band advice %v, want ELL (§8)", f)
	} else if len(alts) == 0 {
		t.Fatal("band advice lists no alternatives")
	}
}

func TestClassStrings(t *testing.T) {
	for _, c := range []MatrixClass{ClassExtremelySparse, ClassModeratelySparse, ClassBanded, ClassGeneral} {
		if c.String() == "" {
			t.Fatalf("class %d has empty name", int(c))
		}
	}
}

// TestVerificationCatchesBrokenModel: an engine with an absurd tolerance
// of 0 must still pass (the model is exact in float64), demonstrating the
// verification path is active.
func TestVerificationActive(t *testing.T) {
	e := New()
	e.verifyTol = 0 // exact match required
	m := gen.Band(64, 4, 5)
	if _, err := e.Characterize("b", m, formats.DIA, 8); err != nil {
		// Exact float64 equality can fail from re-association; tolerate
		// only that specific case by re-running with the default.
		e2 := New()
		if _, err2 := e2.Characterize("b", m, formats.DIA, 8); err2 != nil {
			t.Fatalf("verification rejects a correct run: %v", err2)
		}
	}
}

func TestLogDistToOne(t *testing.T) {
	if logDistToOne(1) != 1 {
		t.Fatal("logDistToOne(1) != 1")
	}
	if math.Abs(logDistToOne(0.5)-logDistToOne(2)) > 1e-12 {
		t.Fatal("logDistToOne not symmetric")
	}
	if logDistToOne(-1) < 1e8 {
		t.Fatal("non-positive balance not penalized")
	}
}

// TestPlanStatsResidentBytes: the plan cache reports its resident
// footprint — non-zero once plans are cached, shrinking when a matrix's
// plans are dropped, zero when the cache is emptied. Sparse-native tiles
// keep the footprint O(nnz): a cached plan must cost far less than the
// dense-tile regime's tiles·p² floats.
func TestPlanStatsResidentBytes(t *testing.T) {
	e := New()
	m := gen.Random(256, 0.02, 5)
	if _, err := e.Characterize("m", m, formats.CSR, 16); err != nil {
		t.Fatal(err)
	}
	s := e.PlanStats()
	if s.ResidentBytes <= 0 {
		t.Fatalf("resident bytes = %d, want > 0", s.ResidentBytes)
	}
	// Dense p² tiles would cost NonZeroTiles·16²·8 bytes in values alone;
	// the sparse plan must stay well under half of that.
	pt := matrix.Partition(m, 16)
	denseFloor := int64(len(pt.Tiles)) * 16 * 16 * 8
	if s.ResidentBytes > denseFloor/2 {
		t.Fatalf("resident bytes %d not sparse-scaled (dense-tile floor %d)", s.ResidentBytes, denseFloor)
	}
	e.DropPlansFor(m)
	if got := e.PlanStats().ResidentBytes; got != 0 {
		t.Fatalf("resident bytes after drop = %d, want 0", got)
	}
}
