package core

import (
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/workloads"
)

func sweepInputs() ([]workloads.Workload, []formats.Kind, []int) {
	c := workloads.Config{Scale: 128, RandomDim: 128, BandDim: 128, Seed: 0xC0FE}
	ws := append(workloads.RandomSuite(c), workloads.BandSuite(c)...)
	return ws, formats.Core(), []int{8, 16}
}

// TestSweepParallelMatchesSerial: the worker-pool sweep must produce
// byte-identical results — same order, same values — as a serial run.
func TestSweepParallelMatchesSerial(t *testing.T) {
	ws, kinds, ps := sweepInputs()

	serial := New()
	serial.SetWorkers(1)
	want, err := serial.Sweep(ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 7} {
		par := New()
		par.SetWorkers(workers)
		got, err := par.Sweep(ws, kinds, ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d diverges:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSweepRepeatDeterministic: re-running a sweep on the same engine
// (warm plan cache) must reproduce the cold run exactly.
func TestSweepRepeatDeterministic(t *testing.T) {
	ws, kinds, ps := sweepInputs()
	e := New()
	cold, err := e.Sweep(ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Sweep(ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("result %d changed between cold and warm sweep", i)
		}
	}
}

// TestSweepOrdering: results come out workload-major, then partition
// size, then format — the same order the serial pre-plan engine emitted.
func TestSweepOrdering(t *testing.T) {
	ws, kinds, ps := sweepInputs()
	e := New()
	rs, err := e.Sweep(ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, w := range ws {
		for _, p := range ps {
			for _, k := range kinds {
				r := rs[i]
				if r.Workload != w.ID || r.P != p || r.Format != k {
					t.Fatalf("result %d is %s/%v/p=%d, want %s/%v/p=%d",
						i, r.Workload, r.Format, r.P, w.ID, k, p)
				}
				i++
			}
		}
	}
}

// TestSetWorkers: the knob clamps and reports as documented.
func TestSetWorkers(t *testing.T) {
	e := New()
	if e.Workers() < 1 {
		t.Fatalf("default workers %d", e.Workers())
	}
	e.SetWorkers(3)
	if e.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", e.Workers())
	}
	e.SetWorkers(0)
	if e.Workers() < 1 {
		t.Fatalf("reset workers %d", e.Workers())
	}
	e.SetWorkers(-5)
	if e.Workers() < 1 {
		t.Fatalf("negative workers %d", e.Workers())
	}
}
