package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"copernicus/internal/backend"
	"copernicus/internal/formats"
	"copernicus/internal/matrix"
	"copernicus/internal/scenario"
)

// Objective weights the metrics an advisor recommendation optimizes.
// Weights need not sum to one; only their ratios matter.
type Objective struct {
	Latency   float64 // lower modelled seconds
	Power     float64 // lower dynamic power
	Bandwidth float64 // higher memory-bandwidth utilization
	Resources float64 // fewer BRAM banks
	Balance   float64 // balance ratio closer to 1
}

// LatencyObjective optimizes modelled time only.
func LatencyObjective() Objective { return Objective{Latency: 1} }

// BalancedObjective mirrors the paper's §8 discussion: latency first,
// with power, bandwidth and resources as secondary concerns.
func BalancedObjective() Objective {
	return Objective{Latency: 1, Power: 0.3, Bandwidth: 0.3, Resources: 0.2, Balance: 0.2}
}

// Recommendation is the advisor's ranked outcome.
type Recommendation struct {
	Format  formats.Kind
	Score   float64 // higher is better
	Reason  string
	Ranking []formats.Kind // all candidates, best first
	Results []Result       // the underlying characterizations, same order
}

// Recommend characterizes the matrix across the candidate formats at the
// given partition size and ranks them under the objective. It is the
// executable form of the paper's §8 guidance: rather than assuming a
// specialized format fits a structured matrix, measure the whole pipeline
// — decompressor mismatch can erase a format's storage advantage.
func (e *Engine) Recommend(m *matrix.CSR, p int, candidates []formats.Kind, obj Objective) (Recommendation, error) {
	return e.RecommendWith(context.Background(), nil, m, p, candidates, obj)
}

// RecommendWith is Recommend under an explicit context and backend (nil
// selects the analytic default): the ranking's latency axis is then the
// backend's cost — modelled seconds for analytic, measured host-CPU wall
// time for native — while the power/resource axes stay the synthesis
// estimates. A canceled ctx aborts the sweep behind the ranking.
func (e *Engine) RecommendWith(ctx context.Context, b backend.Backend, m *matrix.CSR, p int, candidates []formats.Kind, obj Objective) (Recommendation, error) {
	return e.RecommendKernelWith(ctx, b, m, scenario.Default(), p, candidates, obj)
}

// RecommendKernelWith is RecommendWith on the kernel axis: candidates are
// ranked by their cost for the given kernel spec — "best format for 60 CG
// iterations", not just "best format for one SpMV". Under the analytic
// backend the latency axis is the amortized kernel cost (decomposition
// paid once, per-iteration work × N); under native it is the measured
// wall time of the real exec iteration loop. The one-shot decompression
// penalty that dominates a single SpMV fades with iteration count, which
// can flip the recommendation (report ext9 tabulates exactly this).
func (e *Engine) RecommendKernelWith(ctx context.Context, b backend.Backend, m *matrix.CSR, sc scenario.Spec, p int, candidates []formats.Kind, obj Objective) (Recommendation, error) {
	if len(candidates) == 0 {
		candidates = formats.Sparse()
	}
	rs, err := e.SweepFormatsKernelWith(ctx, b, "advisor", m, sc, p, candidates)
	if err != nil {
		return Recommendation{}, err
	}
	return Rank(rs, obj)
}

// Rank orders precomputed characterization results under the objective
// without touching the engine. It is the advisor's scoring half, split
// out so callers holding cached sweep results — the serving layer's
// advise path — can recommend a format without re-running the sweep. The
// results should cover one (matrix, p) point across candidate formats.
func Rank(rs []Result, obj Objective) (Recommendation, error) {
	if len(rs) == 0 {
		return Recommendation{}, fmt.Errorf("core: no results to rank")
	}
	scores := scoreResults(rs, obj)

	order := make([]int, len(rs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })

	rec := Recommendation{
		Format: rs[order[0]].Format,
		Score:  scores[order[0]],
	}
	for _, i := range order {
		rec.Ranking = append(rec.Ranking, rs[i].Format)
		rec.Results = append(rec.Results, rs[i])
	}
	best := rs[order[0]]
	kern := ""
	if best.Kernel != "" && best.Kernel != "spmv" {
		kern = fmt.Sprintf(" for %s (%d iterations)", best.Kernel, best.Iterations)
	}
	rec.Reason = fmt.Sprintf(
		"%v wins at p=%d%s: modelled time %.3gs (σ=%.2f), bandwidth utilization %.2f, %.0f mW dynamic, %d BRAM banks",
		best.Format, best.P, kern, best.Seconds, best.Sigma, best.BandwidthUtil,
		best.Synth.DynamicW*1000, best.Synth.BRAM18K)
	return rec, nil
}

// scoreResults assigns each result a weighted score under the
// objective, min-max normalizing every metric across the candidate set
// (1 best). Latency and power normalize on a log scale so a single
// extreme outlier (CSC's orientation mismatch) cannot flatten the
// distinctions among the remaining candidates.
func scoreResults(rs []Result, obj Objective) []float64 {
	norm := func(get func(Result) float64, higherBetter bool) []float64 {
		vals := make([]float64, len(rs))
		lo, hi := get(rs[0]), get(rs[0])
		for i, r := range rs {
			vals[i] = get(r)
			if vals[i] < lo {
				lo = vals[i]
			}
			if vals[i] > hi {
				hi = vals[i]
			}
		}
		out := make([]float64, len(rs))
		for i, v := range vals {
			if hi == lo {
				out[i] = 1
				continue
			}
			s := (v - lo) / (hi - lo)
			if !higherBetter {
				s = 1 - s
			}
			out[i] = s
		}
		return out
	}
	lat := norm(func(r Result) float64 { return math.Log(r.Seconds) }, false)
	pow := norm(func(r Result) float64 { return math.Log(r.Synth.DynamicW) }, false)
	bw := norm(func(r Result) float64 { return r.BandwidthUtil }, true)
	res := norm(func(r Result) float64 { return float64(r.Synth.BRAM18K) }, false)
	bal := norm(func(r Result) float64 { return logDistToOne(r.BalanceRatio) }, false)
	scores := make([]float64, len(rs))
	for i := range rs {
		scores[i] = obj.Latency*lat[i] + obj.Power*pow[i] + obj.Bandwidth*bw[i] +
			obj.Resources*res[i] + obj.Balance*bal[i]
	}
	return scores
}

// PointRecommendation is one (format, partition size) design point with
// its objective score.
type PointRecommendation struct {
	Format formats.Kind
	P      int
	Score  float64
	Result Result
}

// RecommendDesign jointly ranks format × partition-size design points —
// the full §4.2 hyperparameter space — under the objective. It returns
// the points best-first. Empty candidates defaults to the seven sparse
// formats; empty ps defaults to the paper's {8, 16, 32}.
func (e *Engine) RecommendDesign(m *matrix.CSR, ps []int, candidates []formats.Kind, obj Objective) ([]PointRecommendation, error) {
	if len(candidates) == 0 {
		candidates = formats.Sparse()
	}
	if len(ps) == 0 {
		ps = []int{8, 16, 32}
	}
	var rs []Result
	for _, p := range ps {
		sub, err := e.SweepFormats("advisor", m, p, candidates)
		if err != nil {
			return nil, err
		}
		rs = append(rs, sub...)
	}
	scores := scoreResults(rs, obj)
	points := make([]PointRecommendation, len(rs))
	for i, r := range rs {
		points[i] = PointRecommendation{Format: r.Format, P: r.P, Score: scores[i], Result: r}
	}
	sort.SliceStable(points, func(a, b int) bool { return points[a].Score > points[b].Score })
	return points, nil
}

func logDistToOne(v float64) float64 {
	if v <= 0 {
		return 1e9
	}
	if v < 1 {
		v = 1 / v
	}
	return v
}

// MatrixClass is the coarse workload taxonomy of §3 used by the static
// advisor.
type MatrixClass int

// Workload classes.
const (
	ClassExtremelySparse  MatrixClass = iota // scientific/graph, density < 0.01
	ClassModeratelySparse                    // pruned ML models, density ≥ 0.1
	ClassBanded                              // band/diagonal structure
	ClassGeneral
)

// String names the class.
func (c MatrixClass) String() string {
	switch c {
	case ClassExtremelySparse:
		return "extremely sparse"
	case ClassModeratelySparse:
		return "moderately sparse (ML)"
	case ClassBanded:
		return "band/diagonal"
	default:
		return "general"
	}
}

// Classify buckets a matrix into the §3 taxonomy.
func Classify(m *matrix.CSR) MatrixClass {
	n := m.Rows
	if n == 0 {
		return ClassGeneral
	}
	if bw := m.Bandwidth(); n >= 16 && bw <= n/8 {
		return ClassBanded
	}
	switch d := m.Density(); {
	case d >= 0.1:
		return ClassModeratelySparse
	case d < 0.01:
		return ClassExtremelySparse
	}
	return ClassGeneral
}

// StaticAdvice returns the paper's §8 rule-of-thumb recommendation for a
// class without running the model: COO for diverse extremely sparse
// matrices (fastest, least dynamic power on generic hardware); BCSR or
// LIL when throughput at low power matters or density is high; ELL for
// wide band matrices on generic hardware, or DIA only when the compute
// engine is co-designed with the format.
func StaticAdvice(c MatrixClass) (first formats.Kind, alternatives []formats.Kind, rationale string) {
	switch c {
	case ClassModeratelySparse:
		return formats.BCSR, []formats.Kind{formats.LIL, formats.ELL},
			"density ≥ 0.1: BCSR/LIL exploit extra memory bandwidth; keep partitions at 8×8–16×16 (§8)"
	case ClassBanded:
		return formats.ELL, []formats.Kind{formats.LIL, formats.DIA},
			"band structure: ELL is fastest and cheapest on generic hardware; DIA only pays off with a format-tailored compute engine (§8)"
	default:
		return formats.COO, []formats.Kind{formats.LIL, formats.BCSR},
			"diverse sparse matrices: generic COO beats specialized formats on generic hardware and tolerates distribution variance (§8)"
	}
}
