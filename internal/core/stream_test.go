package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/workloads"
)

func streamSuite() ([]workloads.Workload, []formats.Kind, []int) {
	ws := []workloads.Workload{
		{ID: "a", M: gen.Random(160, 0.05, 3)},
		{ID: "b", M: gen.Band(192, 9, 5)},
	}
	return ws, formats.Core(), []int{8, 16}
}

// TestSweepStreamMatchesSweep: the concatenated stream must equal the
// batch slab exactly — same order, same values — on a cold engine, and
// again on a warm one.
func TestSweepStreamMatchesSweep(t *testing.T) {
	ws, kinds, ps := streamSuite()
	want, err := New().Sweep(ws, kinds, ps)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	for _, pass := range []string{"cold", "warm"} {
		var got []Result
		err := e.SweepStream(context.Background(), ws, kinds, ps, func(r Result) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("%s stream: %v", pass, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s streamed results diverge from the batch sweep", pass)
		}
	}
}

// TestSweepGroupsOrderAndTiming: groups arrive in workload-major order
// with their point counts and a positive compute time.
func TestSweepGroupsOrderAndTiming(t *testing.T) {
	ws, kinds, ps := streamSuite()
	var seen []SweepGroup
	err := New().SweepGroupsWith(context.Background(), nil, ws, kinds, ps, func(g SweepGroup) error {
		seen = append(seen, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(ws)*len(ps) {
		t.Fatalf("got %d groups, want %d", len(seen), len(ws)*len(ps))
	}
	for i, g := range seen {
		wantW := ws[i/len(ps)].ID
		wantP := ps[i%len(ps)]
		if g.Workload != wantW || g.P != wantP {
			t.Fatalf("group %d = (%s, %d), want (%s, %d)", i, g.Workload, g.P, wantW, wantP)
		}
		if len(g.Results) != len(kinds) {
			t.Fatalf("group %d has %d results, want %d", i, len(g.Results), len(kinds))
		}
		if g.Elapsed <= 0 {
			t.Fatalf("group %d reports non-positive compute time %v", i, g.Elapsed)
		}
	}
}

// TestSweepStreamYieldErrorStops: a yield error aborts the sweep and
// propagates unchanged.
func TestSweepStreamYieldErrorStops(t *testing.T) {
	ws, kinds, ps := streamSuite()
	boom := errors.New("consumer gone")
	calls := 0
	err := New().SweepStream(context.Background(), ws, kinds, ps, func(Result) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the yield error", err)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after erroring, want 1", calls)
	}
}

// TestSweepCancelMidWarmup is the acceptance test for end-to-end
// cancellation: on a large synthetic matrix, a context canceled shortly
// after the sweep starts must surface ctx.Err() well before the
// uncancelled sweep's duration — the engine aborts plan warmup between
// tile-encode chunks instead of running the slab to completion.
func TestSweepCancelMidWarmup(t *testing.T) {
	m := gen.Random(3072, 0.004, 11)
	ws := []workloads.Workload{{ID: "big", M: m}}
	kinds := formats.All()
	ps := []int{8, 16, 32}

	start := time.Now()
	if _, err := New().Sweep(ws, kinds, ps); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	_, err := New().SweepWith(ctx, nil, ws, kinds, ps)
	canceled := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if canceled >= full/2 {
		t.Fatalf("canceled sweep took %v of an uncancelled %v — cancellation did not abort the warmup promptly", canceled, full)
	}
}

// TestSweepWithPreCanceledContext returns immediately with ctx.Err().
func TestSweepWithPreCanceledContext(t *testing.T) {
	ws, kinds, ps := streamSuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().SweepWith(ctx, nil, ws, kinds, ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
