package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"copernicus/internal/backend"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
)

// preBackendResult recomputes one characterization point exactly the way
// the engine did before the Backend seam existed: a streaming plan, one
// Plan.Run, and the Result assembled field by field from the run's
// methods. It is the frozen reference the golden test below holds the
// analytic backend to.
func preBackendResult(t *testing.T, cfg hlsim.Config, name string, m *matrix.CSR, k formats.Kind, p int) Result {
	t.Helper()
	pl, err := hlsim.NewPlan(cfg, m, p)
	if err != nil {
		t.Fatal(err)
	}
	x := testVector(m.Cols)
	ref := m.MulVec(x)
	run, err := pl.Run(k, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(run.Y[i]-ref[i]) > 1e-9 {
			t.Fatalf("reference path mismatch at row %d", i)
		}
	}
	rep := synth.Estimate(k, p)
	r := Result{
		Workload:          name,
		Format:            k,
		P:                 p,
		DynamicEnergyJ:    rep.DynamicW * run.Seconds(),
		StaticEnergyJ:     rep.StaticW * run.Seconds(),
		Sigma:             run.Sigma(),
		BalanceRatio:      run.BalanceRatio(),
		MeanMemCycles:     run.MeanMemCycles(),
		MeanComputeCycles: run.MeanComputeCycles(),
		Seconds:           run.Seconds(),
		ThroughputBps:     run.Throughput(),
		BandwidthUtil:     run.BandwidthUtilization(),
		DotEngineUtil:     run.DotEngineUtilization(),
		InnerPipelineUtil: run.InnerPipelineUtilization(),
		NonZeroTiles:      run.NonZeroTiles,
		TotalTiles:        run.TotalTiles,
		TotalBytes:        run.Footprint.TotalBytes(),
		Synth:             rep,
	}
	// The fields the seam added, with their documented analytic values.
	r.Backend = "analytic"
	if run.NNZ > 0 {
		r.NsPerNNZ = run.Seconds() * 1e9 / float64(run.NNZ)
	}
	// The fields the kernel axis added, with their documented values for
	// the implicit pre-kernel-axis kernel: one SpMV.
	r.Kernel = "spmv"
	r.Iterations = 1
	return r
}

// TestAnalyticBackendBitIdentical is the refactor's golden guard: every
// Result the engine produces through backend.Analytic — via Characterize,
// CharacterizeWith, and SweepFormats — must equal the pre-backend
// computation bit for bit (reflect.DeepEqual over float64 fields, no
// tolerance). Regenerated sweep/advise/trace artifacts derive from these
// Results, so equality here is what keeps them byte-identical.
func TestAnalyticBackendBitIdentical(t *testing.T) {
	mats := map[string]*matrix.CSR{
		"random":  gen.Random(192, 0.03, 5),
		"band":    gen.Band(192, 8, 6),
		"stencil": gen.Stencil2D(13, 13, 7),
	}
	e := New()
	for name, m := range mats {
		for _, p := range []int{8, 16} {
			for _, k := range formats.Core() {
				want := preBackendResult(t, e.Config(), name, m, k, p)
				got, err := e.Characterize(name, m, k, p)
				if err != nil {
					t.Fatalf("%s/%v/p=%d: %v", name, k, p, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%v/p=%d: Characterize diverged from pre-backend path:\ngot  %+v\nwant %+v",
						name, k, p, got, want)
				}
				withB, err := e.CharacterizeWith(context.Background(), backend.Analytic{}, name, m, k, p)
				if err != nil {
					t.Fatalf("%s/%v/p=%d: %v", name, k, p, err)
				}
				if !reflect.DeepEqual(withB, want) {
					t.Fatalf("%s/%v/p=%d: CharacterizeWith(Analytic) diverged", name, k, p)
				}
			}
			rs, err := e.SweepFormats(name, m, p, formats.Core())
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range formats.Core() {
				if want := preBackendResult(t, e.Config(), name, m, k, p); !reflect.DeepEqual(rs[i], want) {
					t.Fatalf("%s/%v/p=%d: SweepFormats diverged from pre-backend path", name, k, p)
				}
			}
		}
	}
}

// TestNativeBackendEndToEnd: a native sweep returns measured results that
// share the analytic structural metrics (same plans, same formats) while
// costing in wall time.
func TestNativeBackendEndToEnd(t *testing.T) {
	e := New()
	ws := []workloads.Workload{{ID: "rnd", M: gen.Random(128, 0.05, 9)}}
	kinds := []formats.Kind{formats.CSR, formats.COO}
	ana, err := e.Sweep(ws, kinds, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := e.SweepWith(context.Background(), &backend.Native{Runs: 2}, ws, kinds, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if len(nat) != len(ana) {
		t.Fatalf("native sweep returned %d results, analytic %d", len(nat), len(ana))
	}
	for i := range nat {
		n, a := nat[i], ana[i]
		if n.Backend != "native" || !n.Measured || n.MeasuredRuns != 2 || n.Threads < 1 {
			t.Fatalf("native result %d methodology: %+v", i, n)
		}
		if n.Seconds <= 0 || n.NsPerNNZ <= 0 {
			t.Fatalf("native result %d not measured: seconds=%v ns/nnz=%v", i, n.Seconds, n.NsPerNNZ)
		}
		// Structural metrics come from the shared analytic cycle tables.
		if n.Sigma != a.Sigma || n.BalanceRatio != a.BalanceRatio || n.TotalBytes != a.TotalBytes {
			t.Fatalf("native result %d structural metrics diverge from analytic", i)
		}
		// Cost-derived metrics must use the measured seconds.
		if n.DynamicEnergyJ != a.Synth.DynamicW*n.Seconds {
			t.Fatalf("native result %d energy not integrated over measured seconds", i)
		}
	}
	if a, b := ana[0].Backend, "analytic"; a != b {
		t.Fatalf("analytic sweep results tagged %q", a)
	}
}

// TestCharacterizeUnknownKindIsError: the unknown-format panic became an
// error plumbed through Characterize (and thus Sweep).
func TestCharacterizeUnknownKindIsError(t *testing.T) {
	e := New()
	m := gen.Random(64, 0.05, 3)
	if _, err := e.Characterize("m", m, formats.Kind(99), 8); !errors.Is(err, hlsim.ErrUnknownFormat) {
		t.Fatalf("Characterize(Kind(99)) error = %v, want hlsim.ErrUnknownFormat", err)
	}
	ws := []workloads.Workload{{ID: "m", M: m}}
	if _, err := e.Sweep(ws, []formats.Kind{formats.Kind(-2)}, []int{8}); !errors.Is(err, hlsim.ErrUnknownFormat) {
		t.Fatalf("Sweep(Kind(-2)) error = %v, want hlsim.ErrUnknownFormat", err)
	}
}
