// Package core is the Copernicus characterization engine — the paper's
// primary contribution. It drives the hlsim accelerator model and the
// synth estimator over (workload × format × partition size) points,
// verifies every run's functional SpMV output against the software
// reference, and aggregates the six metric families of §4.2: σ, latency
// breakdown, balance ratio, throughput, memory-bandwidth utilization, and
// resource/power.
package core

import (
	"fmt"
	"math"

	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
	"copernicus/internal/xrand"
)

// Result is one characterization point.
type Result struct {
	Workload string
	Format   formats.Kind
	P        int

	// Sigma is the decompression latency overhead of Eq. (1), aggregated
	// over all non-zero partitions (dense ≡ 1).
	Sigma float64
	// BalanceRatio is the mean memory/compute latency ratio (ideal 1).
	BalanceRatio float64
	// MeanMemCycles and MeanComputeCycles are the per-partition averages
	// plotted in Fig. 8.
	MeanMemCycles     float64
	MeanComputeCycles float64
	// Seconds is the modelled end-to-end time; ThroughputBps is
	// processed bytes (data + metadata) per second.
	Seconds       float64
	ThroughputBps float64
	// BandwidthUtil is useful bytes over transmitted bytes.
	BandwidthUtil float64
	// DotEngineUtil and InnerPipelineUtil are the §5.1 run-time
	// utilizations: multiplier slots carrying real non-zeros, and
	// partition rows occupying the decompress→dot pipeline.
	DotEngineUtil     float64
	InnerPipelineUtil float64

	NonZeroTiles int
	TotalTiles   int
	TotalBytes   int

	// Synth is the resource/power estimate for this decompressor
	// variant at this partition size.
	Synth synth.Report

	// DynamicEnergyJ and StaticEnergyJ integrate the power estimates
	// over the modelled run time. §6.4: "the static energy, which
	// depends on time, can be an issue for those slower sparse formats
	// that require less dynamic energy."
	DynamicEnergyJ float64
	StaticEnergyJ  float64
}

// EnergyJ returns the total modelled energy of the run.
func (r Result) EnergyJ() float64 { return r.DynamicEnergyJ + r.StaticEnergyJ }

// Engine runs characterizations with a fixed hardware configuration.
type Engine struct {
	cfg hlsim.Config
	// VerifyTolerance bounds the allowed |y_sim - y_ref| per element.
	verifyTol float64
}

// New returns an engine with the calibrated default hardware model.
func New() *Engine {
	e, err := NewWithConfig(hlsim.Default())
	if err != nil {
		panic(err) // the default configuration is always valid
	}
	return e
}

// NewWithConfig returns an engine for a custom hardware configuration.
func NewWithConfig(cfg hlsim.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, verifyTol: 1e-9}, nil
}

// Config returns the engine's hardware configuration.
func (e *Engine) Config() hlsim.Config { return e.cfg }

// testVector returns the deterministic operand vector used in every
// characterization: reproducible, non-trivial values so functional
// verification exercises real arithmetic.
func testVector(n int) []float64 {
	r := xrand.NewStream(0x7EC7, uint64(n))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.ValueIn(-1, 1)
	}
	return x
}

// Characterize runs one (matrix, format, partition size) point and
// verifies the simulated SpMV output against the software reference; a
// mismatch is a hard error, never a silently wrong metric.
func (e *Engine) Characterize(name string, m *matrix.CSR, k formats.Kind, p int) (Result, error) {
	x := testVector(m.Cols)
	run, err := hlsim.Run(e.cfg, m, k, p, x)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s/%v/p=%d: %w", name, k, p, err)
	}
	ref := m.MulVec(x)
	for i := range ref {
		if math.Abs(run.Y[i]-ref[i]) > e.verifyTol {
			return Result{}, fmt.Errorf("core: %s/%v/p=%d: functional mismatch at row %d: %g vs %g",
				name, k, p, i, run.Y[i], ref[i])
		}
	}
	rep := synth.Estimate(k, p)
	return Result{
		Workload:          name,
		Format:            k,
		P:                 p,
		DynamicEnergyJ:    rep.DynamicW * run.Seconds(),
		StaticEnergyJ:     rep.StaticW * run.Seconds(),
		Sigma:             run.Sigma(),
		BalanceRatio:      run.BalanceRatio(),
		MeanMemCycles:     run.MeanMemCycles(),
		MeanComputeCycles: run.MeanComputeCycles(),
		Seconds:           run.Seconds(),
		ThroughputBps:     run.Throughput(),
		BandwidthUtil:     run.BandwidthUtilization(),
		DotEngineUtil:     run.DotEngineUtilization(),
		InnerPipelineUtil: run.InnerPipelineUtilization(),
		NonZeroTiles:      run.NonZeroTiles,
		TotalTiles:        run.TotalTiles,
		TotalBytes:        run.Footprint.TotalBytes(),
		Synth:             rep,
	}, nil
}

// SweepFormats characterizes one matrix across formats at one partition
// size, in the given format order.
func (e *Engine) SweepFormats(name string, m *matrix.CSR, p int, kinds []formats.Kind) ([]Result, error) {
	out := make([]Result, 0, len(kinds))
	for _, k := range kinds {
		r, err := e.Characterize(name, m, k, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Sweep characterizes every workload × format × partition size point.
func (e *Engine) Sweep(ws []workloads.Workload, kinds []formats.Kind, ps []int) ([]Result, error) {
	var out []Result
	for _, w := range ws {
		for _, p := range ps {
			rs, err := e.SweepFormats(w.ID, w.M, p, kinds)
			if err != nil {
				return nil, err
			}
			out = append(out, rs...)
		}
	}
	return out, nil
}

// Filter returns the results matching the given predicate.
func Filter(rs []Result, keep func(Result) bool) []Result {
	var out []Result
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}
