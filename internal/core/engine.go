// Package core is the Copernicus characterization engine — the paper's
// primary contribution. It drives the hlsim accelerator model and the
// synth estimator over (workload × format × partition size) points,
// verifies every run's functional SpMV output against the software
// reference, and aggregates the six metric families of §4.2: σ, latency
// breakdown, balance ratio, throughput, memory-bandwidth utilization, and
// resource/power.
package core

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/backend"
	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/resilience"
	"copernicus/internal/scenario"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
	"copernicus/internal/xrand"
)

// Result is one characterization point.
type Result struct {
	Workload string
	Format   formats.Kind
	P        int

	// Kernel is the canonical kernel spec this point was costed for
	// ("spmv", "cg:60", "spmm:8", ...; see internal/scenario), and
	// Iterations its resolved SpMV-shaped iteration count (1 for spmv,
	// the frontier level count for bfs). Seconds — and everything derived
	// from it — covers the whole kernel invocation, all Iterations of it.
	Kernel     string
	Iterations int

	// Backend identifies the backend that costed this point ("analytic"
	// for the paper's cycle model, "native" for host-CPU measurement);
	// result caches key on it. Measured is true when Seconds (and the
	// quantities derived from it: throughput, energy, ns-per-nnz) is a
	// wall-clock measurement rather than a model prediction. The
	// structural metrics (σ, balance, cycle means, utilizations) always
	// come from the analytic model — they describe the format on the
	// modelled hardware, not the costing method.
	Backend  string
	Measured bool
	// MeasuredRuns and Threads record a measured backend's methodology:
	// timed repetitions (Seconds is their minimum) and GOMAXPROCS at
	// measurement time. Zero for modelled results.
	MeasuredRuns int
	Threads      int
	// Degraded is true when the requested backend could not cost this
	// point and a fallback did instead (e.g. native measurement failing
	// transiently past its retry budget, degrading to the analytic
	// model); DegradedReason says why. The row is still complete and
	// correct under the fallback — degradation is an annotation, not an
	// error.
	Degraded       bool
	DegradedReason string

	// Sigma is the decompression latency overhead of Eq. (1), aggregated
	// over all non-zero partitions (dense ≡ 1).
	Sigma float64
	// BalanceRatio is the mean memory/compute latency ratio (ideal 1).
	BalanceRatio float64
	// MeanMemCycles and MeanComputeCycles are the per-partition averages
	// plotted in Fig. 8.
	MeanMemCycles     float64
	MeanComputeCycles float64
	// Seconds is the point's cost under the backend (modelled end-to-end
	// time for analytic, measured wall time for native) for one full
	// kernel invocation — all Iterations of it; ThroughputBps is
	// processed bytes (data + metadata) per second of it. NsPerNNZ is
	// Seconds over the stored non-zeros in nanoseconds — the
	// backend-neutral per-element cost the model-vs-measured comparison
	// plots (per kernel invocation, so multi-iteration kernels scale it
	// with their iteration count).
	Seconds       float64
	ThroughputBps float64
	NsPerNNZ      float64
	// BandwidthUtil is useful bytes over transmitted bytes.
	BandwidthUtil float64
	// DotEngineUtil and InnerPipelineUtil are the §5.1 run-time
	// utilizations: multiplier slots carrying real non-zeros, and
	// partition rows occupying the decompress→dot pipeline.
	DotEngineUtil     float64
	InnerPipelineUtil float64

	NonZeroTiles int
	TotalTiles   int
	TotalBytes   int

	// Synth is the resource/power estimate for this decompressor
	// variant at this partition size.
	Synth synth.Report

	// DynamicEnergyJ and StaticEnergyJ integrate the power estimates
	// over the modelled run time. §6.4: "the static energy, which
	// depends on time, can be an issue for those slower sparse formats
	// that require less dynamic energy."
	DynamicEnergyJ float64
	StaticEnergyJ  float64
}

// EnergyJ returns the total modelled energy of the run.
func (r Result) EnergyJ() float64 { return r.DynamicEnergyJ + r.StaticEnergyJ }

// Engine runs characterizations with a fixed hardware configuration.
// It caches encode-once streaming plans per (matrix, partition size), so
// characterizing one matrix across several formats — or re-characterizing
// it across calls, as the advisor and report harness do — partitions and
// encodes each point exactly once. An Engine is safe for concurrent use.
type Engine struct {
	cfg hlsim.Config
	// VerifyTolerance bounds the allowed |y_sim - y_ref| per element.
	verifyTol float64
	// workers bounds the Sweep worker pool; 0 means GOMAXPROCS.
	workers int

	mu    sync.Mutex
	plans map[planKey]*list.Element // value: *planEntry
	lru   *list.List                // front = most recently used
	stats PlanStats
	// encPool is the single helper pool shared by every cached plan's
	// tile-parallel warmup, so total encode goroutines stay bounded by
	// the engine's worker count even when many sweep groups warm plans
	// concurrently.
	encPool *hlsim.EncodePool
}

// planKey identifies a cached streaming plan. Matrices are treated as
// immutable once characterized (every producer in this repository builds
// them once via Builder), so identity by pointer is sound. Note the key
// pins its matrix (and the plan its tiles) until eviction; engines fed a
// stream of large one-off matrices should call DropPlans or DropPlansFor
// between them.
type planKey struct {
	m *matrix.CSR
	p int
}

// planEntry is one LRU node: the key lets eviction delete the map slot
// from the list element alone.
type planEntry struct {
	key planKey
	pl  *hlsim.Plan
}

// maxCachedPlans bounds the plan cache. Beyond it the least-recently-used
// entry is evicted — hot plans stay warm under sustained mixed traffic,
// and a later miss on the evicted point only re-pays that one encoding.
const maxCachedPlans = 128

// PlanStats counts plan-cache traffic since the engine was created.
// Hits are requests served by a cached plan (the amortized regime: no
// re-partition, no re-encode); misses built a new plan; evictions are
// LRU capacity drops, not explicit DropPlans calls. ResidentBytes is the
// total resident footprint of every cached plan — sparse tile spans,
// functional arrays, and per-format cycle tables — which scales with
// nnz, not with tiles·p², now that tiles are CSR-native.
type PlanStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Cached        int    `json:"cached"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// New returns an engine with the calibrated default hardware model.
func New() *Engine {
	e, err := NewWithConfig(hlsim.Default())
	if err != nil {
		panic(err) // the default configuration is always valid
	}
	return e
}

// NewWithConfig returns an engine for a custom hardware configuration.
func NewWithConfig(cfg hlsim.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:       cfg,
		verifyTol: 1e-9,
		plans:     make(map[planKey]*list.Element),
		lru:       list.New(),
		encPool:   hlsim.NewEncodePool(runtime.GOMAXPROCS(0) - 1),
	}, nil
}

// Config returns the engine's hardware configuration.
func (e *Engine) Config() hlsim.Config { return e.cfg }

// SetWorkers bounds the Sweep worker pool. n <= 0 restores the default
// (GOMAXPROCS). Parallel and serial sweeps produce identical results in
// identical order.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	eff := n
	if eff == 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	e.mu.Lock()
	e.workers = n
	// Re-share a pool of the new size with every cached plan.
	e.encPool = hlsim.NewEncodePool(eff - 1)
	for el := e.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*planEntry).pl.SetEncodePool(e.encPool)
	}
	e.mu.Unlock()
}

// Workers returns the effective Sweep worker-pool size.
func (e *Engine) Workers() int {
	e.mu.Lock()
	w := e.workers
	e.mu.Unlock()
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// DropPlans empties the plan cache. Long-lived engines characterizing a
// stream of large one-off matrices can call it to release the cached
// partitionings (and the matrices they pin) without waiting for LRU
// eviction.
func (e *Engine) DropPlans() {
	e.mu.Lock()
	e.plans = make(map[planKey]*list.Element)
	e.lru.Init()
	e.mu.Unlock()
}

// DropPlansFor releases every cached plan of one matrix — all partition
// sizes — unpinning it from the engine. Services that key matrices by ID
// call this when an ID is deleted, ending that matrix's plan lifecycle
// without disturbing other warm plans.
func (e *Engine) DropPlansFor(m *matrix.CSR) {
	e.mu.Lock()
	for el := e.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*planEntry); ent.key.m == m {
			e.lru.Remove(el)
			delete(e.plans, ent.key)
		}
		el = next
	}
	e.mu.Unlock()
}

// PlanStats returns a snapshot of the plan-cache counters, including the
// total resident bytes of every cached plan.
func (e *Engine) PlanStats() PlanStats {
	e.mu.Lock()
	s := e.stats
	s.Cached = len(e.plans)
	for el := e.lru.Front(); el != nil; el = el.Next() {
		s.ResidentBytes += el.Value.(*planEntry).pl.MemoryBytes()
	}
	e.mu.Unlock()
	return s
}

// plan returns the cached streaming plan for (m, p), building it on the
// first request and promoting it to most-recently-used on every hit.
func (e *Engine) plan(m *matrix.CSR, p int) (*hlsim.Plan, error) {
	key := planKey{m: m, p: p}
	e.mu.Lock()
	if el, ok := e.plans[key]; ok {
		e.lru.MoveToFront(el)
		e.stats.Hits++
		pl := el.Value.(*planEntry).pl
		e.mu.Unlock()
		return pl, nil
	}
	pool := e.encPool
	e.mu.Unlock()
	pl, err := hlsim.NewPlan(e.cfg, m, p)
	if err != nil {
		return nil, err
	}
	// Warm this plan's formats on the engine's shared helper pool: tiles
	// encode in parallel with deterministic, tile-ordered aggregation,
	// and total encode goroutines across all concurrent sweep groups stay
	// bounded by the engine's worker count.
	pl.SetEncodePool(pool)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Misses++
	// Prefer a plan another goroutine may have raced in, so concurrent
	// sweep groups over the same point share encodings.
	if el, ok := e.plans[key]; ok {
		e.lru.MoveToFront(el)
		return el.Value.(*planEntry).pl, nil
	}
	e.plans[key] = e.lru.PushFront(&planEntry{key: key, pl: pl})
	for len(e.plans) > maxCachedPlans {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.plans, oldest.Value.(*planEntry).key)
		e.stats.Evictions++
	}
	return pl, nil
}

// testVector returns the deterministic operand vector used in every
// characterization: reproducible, non-trivial values so functional
// verification exercises real arithmetic.
func testVector(n int) []float64 {
	r := xrand.NewStream(0x7EC7, uint64(n))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.ValueIn(-1, 1)
	}
	return x
}

// defaultBackend resolves a nil backend to the analytic cycle model, the
// paper's instrument and the pre-backend behavior of every entry point.
func defaultBackend(b backend.Backend) backend.Backend {
	if b == nil {
		return backend.Analytic{}
	}
	return b
}

// ptSweepGroup lets the chaos suite fail or stall one (workload, kernel,
// p) group of a streaming sweep — e.g. after the first group has already
// been emitted, proving the mid-stream error contract.
var ptSweepGroup = faults.Point("core.sweep.group")

// validatePoint rejects (format, partition size) combinations that the
// encoders or the synthesis estimator cannot model, before any plan or
// worker goroutine touches them: blocked/sliced formats need divisible
// tile edges, and the synth model floors p at synth.MinP. Both are
// wrapped formats.ErrBadPartition — a client fault, mapped to 400 by the
// service — closing the remote crash where an indivisible or tiny p
// panicked inside a sweep worker and killed the process.
func validatePoint(k formats.Kind, p int) error {
	if err := formats.ValidateP(k, p); err != nil {
		return err
	}
	if p < synth.MinP {
		return fmt.Errorf("%w: p=%d below the synthesis model minimum %d", formats.ErrBadPartition, p, synth.MinP)
	}
	return nil
}

// characterizeOn runs one (kernel, format) point on a prepared plan
// against a precomputed operand vector and software reference — the
// shared inner step of Characterize and Sweep. The backend supplies the
// cost (Seconds and everything derived from it) for the kernel's full
// iteration stream; the structural metrics come from the plan's analytic
// cycle totals either way, and the functional output — one A·x, the
// iteration operand held fixed — is verified against the reference under
// every backend and kernel.
func (e *Engine) characterizeOn(ctx context.Context, b backend.Backend, name string, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x, ref []float64) (Result, error) {
	p := pl.P()
	meas, err := b.Evaluate(ctx, pl, sc, k, x)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s/%s/%v/p=%d: %w", name, sc, k, p, err)
	}
	run := meas.Run
	for i := range ref {
		if math.Abs(run.Y[i]-ref[i]) > e.verifyTol {
			return Result{}, fmt.Errorf("core: %s/%v/p=%d: functional mismatch at row %d: %g vs %g",
				name, k, p, i, run.Y[i], ref[i])
		}
	}
	rep := synth.Estimate(k, p)
	// For the analytic backend these are exactly the pre-backend
	// expressions (meas.Seconds is run.Seconds()), so results stay
	// bit-identical; measured backends recompute the derived rates from
	// their own seconds.
	tput := run.Throughput()
	if meas.Measured {
		tput = 0
		if meas.Seconds > 0 {
			tput = float64(run.Footprint.TotalBytes()) / meas.Seconds
		}
	}
	var nsPerNNZ float64
	if run.NNZ > 0 {
		nsPerNNZ = meas.Seconds * 1e9 / float64(run.NNZ)
	}
	return Result{
		Workload:          name,
		Format:            k,
		P:                 p,
		Kernel:            sc.String(),
		Iterations:        meas.Iterations,
		Backend:           b.ID(),
		Measured:          meas.Measured,
		MeasuredRuns:      meas.Runs,
		Threads:           meas.Threads,
		Degraded:          meas.Degraded,
		DegradedReason:    meas.DegradedReason,
		DynamicEnergyJ:    rep.DynamicW * meas.Seconds,
		StaticEnergyJ:     rep.StaticW * meas.Seconds,
		Sigma:             run.Sigma(),
		BalanceRatio:      run.BalanceRatio(),
		MeanMemCycles:     run.MeanMemCycles(),
		MeanComputeCycles: run.MeanComputeCycles(),
		Seconds:           meas.Seconds,
		ThroughputBps:     tput,
		NsPerNNZ:          nsPerNNZ,
		BandwidthUtil:     run.BandwidthUtilization(),
		DotEngineUtil:     run.DotEngineUtilization(),
		InnerPipelineUtil: run.InnerPipelineUtilization(),
		NonZeroTiles:      run.NonZeroTiles,
		TotalTiles:        run.TotalTiles,
		TotalBytes:        run.Footprint.TotalBytes(),
		Synth:             rep,
	}, nil
}

// Characterize runs one (matrix, format, partition size) point under the
// analytic cycle model and verifies the simulated SpMV output against the
// software reference; a mismatch is a hard error, never a silently wrong
// metric.
func (e *Engine) Characterize(name string, m *matrix.CSR, k formats.Kind, p int) (Result, error) {
	return e.CharacterizeWith(context.Background(), nil, name, m, k, p)
}

// CharacterizeWith is Characterize under an explicit context and backend
// (nil selects the analytic default). The streaming plan is shared across
// backends — only the costing differs. A canceled ctx aborts the point's
// warmup (and a measured backend's timing loop) and returns ctx.Err().
func (e *Engine) CharacterizeWith(ctx context.Context, b backend.Backend, name string, m *matrix.CSR, k formats.Kind, p int) (Result, error) {
	return e.CharacterizeKernelWith(ctx, b, name, m, scenario.Default(), k, p)
}

// CharacterizeKernelWith is CharacterizeWith on the kernel axis: the point
// is costed for the given kernel spec — one SpMV, an SpMM, or an
// N-iteration solver loop with the one-time decomposition amortized (or,
// under a measured backend, the real exec iteration loop timed as one
// unit). The spmv spec reproduces CharacterizeWith exactly.
func (e *Engine) CharacterizeKernelWith(ctx context.Context, b backend.Backend, name string, m *matrix.CSR, sc scenario.Spec, k formats.Kind, p int) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: %s/%v/p=%d: %w", name, k, p, err)
	}
	if err := validatePoint(k, p); err != nil {
		return Result{}, fmt.Errorf("core: %s/%v: %w", name, k, err)
	}
	b = defaultBackend(b)
	pl, err := e.plan(m, p)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s/%s/%v/p=%d: %w", name, sc, k, p, err)
	}
	x := testVector(m.Cols)
	return e.characterizeOn(ctx, b, name, pl, sc, k, x, m.MulVec(x))
}

// SweepFormats characterizes one matrix across formats at one partition
// size under the analytic cycle model, in the given format order. The
// partitioning, operand vector, and reference MulVec are shared across
// all formats of the point.
func (e *Engine) SweepFormats(name string, m *matrix.CSR, p int, kinds []formats.Kind) ([]Result, error) {
	return e.SweepFormatsWith(context.Background(), nil, name, m, p, kinds)
}

// SweepFormatsWith is SweepFormats under an explicit context and backend
// (nil selects the analytic default). Cancellation is checked between
// formats and inside each format's warmup.
func (e *Engine) SweepFormatsWith(ctx context.Context, b backend.Backend, name string, m *matrix.CSR, p int, kinds []formats.Kind) ([]Result, error) {
	return e.SweepFormatsKernelWith(ctx, b, name, m, scenario.Default(), p, kinds)
}

// SweepFormatsKernelWith is SweepFormatsWith on the kernel axis: every
// format of the point is costed for the given kernel spec. The plan, the
// operand vector, and the reference MulVec are shared across formats —
// and, because the engine's plan cache keys only (matrix, p), across
// kernels too: sweeping spmv and cg:60 over one matrix encodes each
// format exactly once.
func (e *Engine) SweepFormatsKernelWith(ctx context.Context, b backend.Backend, name string, m *matrix.CSR, sc scenario.Spec, p int, kinds []formats.Kind) ([]Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %s/p=%d: %w", name, p, err)
	}
	for _, k := range kinds {
		if err := validatePoint(k, p); err != nil {
			return nil, fmt.Errorf("core: %s/%v: %w", name, k, err)
		}
	}
	b = defaultBackend(b)
	pl, err := e.plan(m, p)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s/p=%d: %w", name, sc, p, err)
	}
	x := testVector(m.Cols)
	ref := m.MulVec(x)
	out := make([]Result, 0, len(kinds))
	for _, k := range kinds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := e.characterizeOn(ctx, b, name, pl, sc, k, x, ref)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Sweep characterizes every workload × format × partition size point.
//
// The (workload, p) groups run on a bounded worker pool (Workers wide;
// GOMAXPROCS by default, configurable with SetWorkers). Each group shares
// one streaming plan, one operand vector, and one reference MulVec across
// its formats. Output ordering and values are identical to a serial run:
// groups are emitted in workload-major index order and every group is an
// independent deterministic computation.
func (e *Engine) Sweep(ws []workloads.Workload, kinds []formats.Kind, ps []int) ([]Result, error) {
	return e.SweepWith(context.Background(), nil, ws, kinds, ps)
}

// SweepWith is Sweep under an explicit context and backend (nil selects
// the analytic default). Backends that are not Parallelizable —
// wall-clock measurement degrades under contention — run their groups
// serially regardless of the worker-pool setting; the encode-once plans
// are still shared, so the serialization costs only the dot work. It is
// a thin collector over SweepStreamWith.
func (e *Engine) SweepWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, kinds []formats.Kind, ps []int) ([]Result, error) {
	return e.SweepKernelsWith(ctx, b, ws, defaultSpecs, kinds, ps)
}

// SweepKernelsWith sweeps the full (workload × kernel × format × p)
// space and collects the results in deterministic order. It is a thin
// collector over SweepStreamKernelsWith.
func (e *Engine) SweepKernelsWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, specs []scenario.Spec, kinds []formats.Kind, ps []int) ([]Result, error) {
	out := make([]Result, 0, len(ws)*len(specs)*len(ps)*len(kinds))
	err := e.SweepStreamKernelsWith(ctx, b, ws, specs, kinds, ps, func(r Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// defaultSpecs is the kernel axis every pre-kernel-axis sweep implied.
var defaultSpecs = []scenario.Spec{scenario.Default()}

// SweepGroup is one completed (workload, kernel, partition size) group of
// a streaming sweep: its results in format order, plus the group's
// compute wall time as observed by the worker that ran it (plan warmup
// included on a cold point — the first-group latency a streaming client
// sees). Kernel is the group's canonical kernel spec ("spmv" for
// single-kernel sweeps).
type SweepGroup struct {
	Workload string
	Kernel   string
	P        int
	Results  []Result
	Elapsed  time.Duration
}

// SweepStream is the emit-as-completed form of Sweep: results are
// delivered to yield one at a time, as soon as their (workload, p) group
// finishes, instead of materializing after the last group. Ordering is
// the deterministic workload-major order of Sweep — groups compute in
// parallel and buffer per-group, but emission follows index order, so
// the concatenated stream equals the Sweep slab exactly.
//
// yield runs on the calling goroutine; returning a non-nil error stops
// the sweep (in-flight groups are canceled) and propagates that error. A
// canceled ctx aborts compute mid-warmup and returns ctx.Err().
func (e *Engine) SweepStream(ctx context.Context, ws []workloads.Workload, kinds []formats.Kind, ps []int, yield func(Result) error) error {
	return e.SweepStreamWith(ctx, nil, ws, kinds, ps, yield)
}

// SweepStreamWith is SweepStream under an explicit backend (nil selects
// the analytic default).
func (e *Engine) SweepStreamWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, kinds []formats.Kind, ps []int, yield func(Result) error) error {
	return e.SweepStreamKernelsWith(ctx, b, ws, defaultSpecs, kinds, ps, yield)
}

// SweepStreamKernelsWith is the emit-as-completed sweep over the full
// kernel axis: results are delivered one at a time in the deterministic
// workload-major, kernel-major-within-workload order of
// SweepGroupsKernelsWith.
func (e *Engine) SweepStreamKernelsWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, specs []scenario.Spec, kinds []formats.Kind, ps []int, yield func(Result) error) error {
	return e.SweepGroupsKernelsWith(ctx, b, ws, specs, kinds, ps, func(g SweepGroup) error {
		for _, r := range g.Results {
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// SweepGroupsWith is the group-granular streaming sweep: yield receives
// each completed (workload, p) group — results plus compute timing — in
// deterministic workload-major order while later groups are still
// computing. It is the single-kernel (spmv) form of
// SweepGroupsKernelsWith.
func (e *Engine) SweepGroupsWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, kinds []formats.Kind, ps []int, yield func(SweepGroup) error) error {
	return e.SweepGroupsKernelsWith(ctx, b, ws, defaultSpecs, kinds, ps, yield)
}

// GroupExecutor executes one (workload, kernel, p) sweep group and
// returns its results in format order. It is the seam between the
// deterministic claim/merge machinery of SweepGroupsExecWith and the
// place the group actually computes: the engine's own backend
// (LocalExecutor) or a remote worker reached over the wire (the
// cluster coordinator). Executors must be safe for concurrent calls
// when Parallelizable reports true.
type GroupExecutor interface {
	ExecuteGroup(ctx context.Context, w workloads.Workload, sc scenario.Spec, p int, kinds []formats.Kind) ([]Result, error)
	// Parallelizable reports whether groups may execute concurrently.
	// Wall-clock-measuring local backends return false (contention
	// corrupts timings); remote executors return true — contention is
	// the owning worker's concern.
	Parallelizable() bool
}

// localExecutor runs groups on the engine's own backend with panic
// containment — the executor behind every single-node sweep.
type localExecutor struct {
	e *Engine
	b backend.Backend
}

func (x localExecutor) ExecuteGroup(ctx context.Context, w workloads.Workload, sc scenario.Spec, p int, kinds []formats.Kind) ([]Result, error) {
	return x.e.sweepGroupSafe(ctx, x.b, w.ID, w.M, sc, p, kinds)
}

func (x localExecutor) Parallelizable() bool { return x.b.Parallelizable() }

// LocalExecutor returns the engine's own GroupExecutor under backend b
// (nil selects the analytic default). Remote executors wrap this as
// their fallback when every replica of a group is unreachable.
func (e *Engine) LocalExecutor(b backend.Backend) GroupExecutor {
	return localExecutor{e: e, b: defaultBackend(b)}
}

// SweepGroupsKernelsWith is the primitive under every sweep: yield
// receives each completed (workload, kernel, p) group — results plus
// compute timing — in deterministic order while later groups are still
// computing. Groups are ordered workload-major, then kernel, then
// partition size; with specs = [spmv] the decomposition is exactly the
// pre-kernel-axis (workload, p) grid, so single-kernel sweeps stay
// byte-identical to their pre-PR output. It is the primitive under
// SweepStream/Sweep and the job subsystem's progress feed.
func (e *Engine) SweepGroupsKernelsWith(ctx context.Context, b backend.Backend, ws []workloads.Workload, specs []scenario.Spec, kinds []formats.Kind, ps []int, yield func(SweepGroup) error) error {
	return e.SweepGroupsExecWith(ctx, e.LocalExecutor(b), ws, specs, kinds, ps, yield)
}

// SweepStreamExecWith is SweepStreamKernelsWith over an explicit
// GroupExecutor: the emit-as-completed result stream with group
// execution delegated — locally or across a cluster — while ordering
// stays the deterministic workload-major order, so the concatenated
// stream is byte-identical regardless of where groups ran.
func (e *Engine) SweepStreamExecWith(ctx context.Context, exec GroupExecutor, ws []workloads.Workload, specs []scenario.Spec, kinds []formats.Kind, ps []int, yield func(Result) error) error {
	return e.SweepGroupsExecWith(ctx, exec, ws, specs, kinds, ps, func(g SweepGroup) error {
		for _, r := range g.Results {
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// SweepGroupsExecWith is SweepGroupsKernelsWith with group execution
// delegated to exec: workers atomically claim group indices, run them
// through the executor, and the emitter hands completed groups to yield
// in index order. The claim/merge machinery — not the executor —
// guarantees ordering, so any executor that returns deterministic
// per-group results yields a byte-identical sweep.
func (e *Engine) SweepGroupsExecWith(ctx context.Context, exec GroupExecutor, ws []workloads.Workload, specs []scenario.Spec, kinds []formats.Kind, ps []int, yield func(SweepGroup) error) error {
	for _, sc := range specs {
		if err := sc.Validate(); err != nil {
			return fmt.Errorf("core: sweep: %w", err)
		}
	}
	groups := len(ws) * len(specs) * len(ps)
	if groups == 0 || len(kinds) == 0 {
		return ctx.Err()
	}
	workers := e.Workers()
	if !exec.Parallelizable() {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}
	if workers < 1 {
		workers = 1
	}

	// Workers claim group indices in order and deposit each group's
	// outcome in its slot, closing ready[g] to hand it to the emitter.
	// After the first failure workers stop claiming *new* groups (claimed
	// ones run to completion, keeping earlier groups' results and the
	// lowest-indexed error deterministic); a context cancellation aborts
	// claimed groups mid-warmup too.
	type groupOut struct {
		g   SweepGroup
		err error
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]groupOut, groups)
	ready := make([]chan struct{}, groups)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() && ictx.Err() == nil {
				g := int(next.Add(1)) - 1
				if g >= groups {
					return
				}
				w := ws[g/(len(specs)*len(ps))]
				sc := specs[(g/len(ps))%len(specs)]
				p := ps[g%len(ps)]
				start := time.Now()
				rs, err := exec.ExecuteGroup(ictx, w, sc, p, kinds)
				outs[g] = groupOut{
					g:   SweepGroup{Workload: w.ID, Kernel: sc.String(), P: p, Results: rs, Elapsed: time.Since(start)},
					err: err,
				}
				if err != nil {
					failed.Store(true)
				}
				close(ready[g])
				// Hand the processor to the emitter so a completed group
				// streams out now rather than after this worker's next
				// compute slice — on a single-CPU host the close alone
				// does not preempt, and time-to-first-result would
				// otherwise degenerate to the whole sweep.
				runtime.Gosched()
			}
		}()
	}

	// The emitter walks groups in index order. A group that was never
	// claimed (workers bailed on failure or cancellation) never closes its
	// ready channel, but the emitter always hits the terminating condition
	// — the erroring group or ctx.Done — first, because claims are made in
	// index order.
	err := func() error {
		for g := 0; g < groups; g++ {
			select {
			case <-ready[g]:
			case <-ctx.Done():
				return ctx.Err()
			}
			if outs[g].err != nil {
				return outs[g].err
			}
			if err := yield(outs[g].g); err != nil {
				return err
			}
		}
		return nil
	}()
	cancel() // stop any still-running groups before returning
	wg.Wait()
	return err
}

// sweepGroupSafe runs one sweep group with panic containment: a panic
// anywhere under the group — plan warmup, backend evaluation, metric
// aggregation — is recovered into a *resilience.PanicError and becomes
// the group's error, failing the sweep with a structured error instead
// of unwinding the worker goroutine and killing the process. The
// ptSweepGroup fault point lets the chaos suite fail a chosen group
// (e.g. the second, after the first has streamed out).
func (e *Engine) sweepGroupSafe(ctx context.Context, b backend.Backend, name string, m *matrix.CSR, sc scenario.Spec, p int, kinds []formats.Kind) (rs []Result, err error) {
	defer func() {
		if pe := resilience.Recovered(ptSweepGroup.Name(), recover()); pe != nil {
			rs, err = nil, fmt.Errorf("core: %s/%s/p=%d: %w", name, sc, p, pe)
		}
	}()
	if ferr := ptSweepGroup.Hit(); ferr != nil {
		return nil, fmt.Errorf("core: %s/%s/p=%d: %w", name, sc, p, ferr)
	}
	return e.SweepFormatsKernelWith(ctx, b, name, m, sc, p, kinds)
}

// Filter returns the results matching the given predicate.
func Filter(rs []Result, keep func(Result) bool) []Result {
	var out []Result
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}
