package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"copernicus/internal/backend"
	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/resilience"
	"copernicus/internal/scenario"
	"copernicus/internal/workloads"
)

// wrapBackend decorates the analytic backend: fail errors chosen
// evaluations (matched on the plan's matrix), mutate rewrites successful
// measurements.
type wrapBackend struct {
	fail   func(pl *hlsim.Plan) error
	mutate func(*backend.Measurement)
}

func (w *wrapBackend) ID() string           { return "wraptest" }
func (w *wrapBackend) Parallelizable() bool { return true }

func (w *wrapBackend) Evaluate(ctx context.Context, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x []float64) (backend.Measurement, error) {
	if w.fail != nil {
		if err := w.fail(pl); err != nil {
			return backend.Measurement{}, err
		}
	}
	m, err := backend.Analytic{}.Evaluate(ctx, pl, sc, k, x)
	if err == nil && w.mutate != nil {
		w.mutate(&m)
	}
	return m, err
}

// TestValidatePointRejectsBadPartition: partition sizes the encoders or
// the synthesis model would panic on come back as clean
// formats.ErrBadPartition errors from every entry point — the panics are
// no longer reachable from untrusted (service) input.
func TestValidatePointRejectsBadPartition(t *testing.T) {
	ws, _, _ := sweepInputs()
	e := New()
	cases := []struct {
		k formats.Kind
		p int
	}{
		{formats.BCSR, 6},    // not divisible by the block edge
		{formats.SELL, 9},    // not divisible by the slice height
		{formats.SELLCS, 18}, // divisible by 2 but not the slice height
		{formats.Dense, 2},   // below the synthesis model minimum
		{formats.CSR, 0},
		{formats.CSR, -8},
	}
	for _, tc := range cases {
		_, err := e.Characterize("w", ws[0].M, tc.k, tc.p)
		if !errors.Is(err, formats.ErrBadPartition) {
			t.Errorf("Characterize(%v, p=%d): err = %v, want ErrBadPartition", tc.k, tc.p, err)
		}
		_, err = e.SweepFormatsWith(context.Background(), nil, "w", ws[0].M, tc.p, []formats.Kind{tc.k})
		if !errors.Is(err, formats.ErrBadPartition) {
			t.Errorf("SweepFormats(%v, p=%d): err = %v, want ErrBadPartition", tc.k, tc.p, err)
		}
	}
	// The valid grid still works.
	if _, err := e.Characterize("w", ws[0].M, formats.SELL, 16); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
}

// TestSweepGroupInjectedError: an error injected at core.sweep.group
// fails the sweep cleanly — the groups before the faulted one still
// stream out in order, and the error names the failed group.
func TestSweepGroupInjectedError(t *testing.T) {
	ws, kinds, ps := sweepInputs()
	defer faults.DisarmAll()
	faults.Point("core.sweep.group").Arm(faults.Injection{After: 2})

	e := New()
	e.SetWorkers(1)
	var got []SweepGroup
	err := e.SweepGroupsWith(context.Background(), nil, ws, kinds, ps, func(g SweepGroup) error {
		got = append(got, g)
		return nil
	})
	if err == nil || !errors.Is(err, faults.Injected) {
		t.Fatalf("want injected group error, got %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("exactly the pre-fault group should stream out, got %d", len(got))
	}
	if got[0].Workload != ws[0].ID || got[0].P != ps[0] {
		t.Fatalf("first group out of order: %+v", got[0])
	}
}

// TestSweepGroupPanicContained: a panic injected under a sweep worker is
// recovered into a *resilience.PanicError carrying the point name and a
// stack — the process survives, the sweep fails structurally, and after
// disarming the same engine sweeps clean.
func TestSweepGroupPanicContained(t *testing.T) {
	ws, kinds, ps := sweepInputs()
	defer faults.DisarmAll()
	faults.Point("core.sweep.group").Arm(faults.Injection{Kind: faults.KindPanic})

	e := New()
	_, err := e.Sweep(ws, kinds, ps)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Point != "core.sweep.group" || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing provenance: point=%q stack=%d bytes", pe.Point, len(pe.Stack))
	}

	faults.DisarmAll()
	if _, err := e.Sweep(ws, kinds, ps); err != nil {
		t.Fatalf("engine should be healthy after a contained panic: %v", err)
	}
}

// TestSweepBackendErrorOneGroup: when the backend errors for one
// workload mid-sweep, the earlier workloads' groups are still emitted in
// order and the error identifies the failed point.
func TestSweepBackendErrorOneGroup(t *testing.T) {
	c := workloads.Config{Scale: 128, RandomDim: 128, BandDim: 96, Seed: 0xC0FE}
	ws := append(workloads.RandomSuite(c), workloads.BandSuite(c)...)
	kinds := formats.Core()
	ps := []int{16}

	bad := ws[1].M
	b := &wrapBackend{fail: func(pl *hlsim.Plan) error {
		if pl.Matrix() == bad {
			return fmt.Errorf("stub backend down for workload %s", ws[1].ID)
		}
		return nil
	}}

	e := New()
	e.SetWorkers(2)
	var got []SweepGroup
	err := e.SweepGroupsWith(context.Background(), b, ws, kinds, ps, func(g SweepGroup) error {
		got = append(got, g)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "stub backend down") {
		t.Fatalf("want the stub backend error, got %v", err)
	}
	if !strings.Contains(err.Error(), ws[1].ID) {
		t.Fatalf("error should name the failed workload %q: %v", ws[1].ID, err)
	}
	if len(got) != 1 || got[0].Workload != ws[0].ID {
		t.Fatalf("the healthy earlier group should be emitted first, got %+v", got)
	}
	for _, r := range got[0].Results {
		if r.Workload != ws[0].ID {
			t.Fatalf("emitted group carries foreign result: %+v", r)
		}
	}
}

// TestDegradedMeasurementPropagates: a backend that degrades a
// measurement surfaces the annotation on the Result row.
func TestDegradedMeasurementPropagates(t *testing.T) {
	ws, _, _ := sweepInputs()
	b := &wrapBackend{mutate: func(m *backend.Measurement) {
		m.Degraded = true
		m.DegradedReason = "native: measurement breaker open; analytic fallback"
	}}
	e := New()
	r, err := e.CharacterizeWith(context.Background(), b, "w", ws[0].M, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || !strings.Contains(r.DegradedReason, "analytic fallback") {
		t.Fatalf("degradation lost on the result row: %+v", r)
	}
	r2, err := e.CharacterizeWith(context.Background(), nil, "w", ws[0].M, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Degraded || r2.DegradedReason != "" {
		t.Fatalf("analytic result must not be degraded: %+v", r2)
	}
}
