package core

import (
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

// TestPlanCacheLRUKeepsHotPlan: regression for the all-or-nothing cache
// reset. A plan that stays hot must survive well past maxCachedPlans
// distinct insertions — the old blanket reset dropped every warm plan
// the moment the 129th point arrived.
func TestPlanCacheLRUKeepsHotPlan(t *testing.T) {
	e := New()
	hot := gen.Random(64, 0.05, 1)
	hotPlan, err := e.plan(hot, 8)
	if err != nil {
		t.Fatal(err)
	}

	const distinct = maxCachedPlans + 16
	for i := 0; i < distinct; i++ {
		m := gen.Random(16, 0.1, uint64(i+2))
		if _, err := e.plan(m, 8); err != nil {
			t.Fatal(err)
		}
		// Touch the hot plan each round, as a warm service request would.
		pl, err := e.plan(hot, 8)
		if err != nil {
			t.Fatal(err)
		}
		if pl != hotPlan {
			t.Fatalf("hot plan rebuilt after %d distinct insertions", i+1)
		}
	}

	s := e.PlanStats()
	if s.Misses != distinct+1 {
		t.Fatalf("misses = %d, want %d (one per distinct point)", s.Misses, distinct+1)
	}
	if s.Hits != distinct {
		t.Fatalf("hits = %d, want %d (every hot touch)", s.Hits, distinct)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite exceeding capacity")
	}
	if s.Cached > maxCachedPlans {
		t.Fatalf("cache holds %d plans, cap %d", s.Cached, maxCachedPlans)
	}
}

// TestPlanCacheEvictsLeastRecentlyUsed: the entry evicted at capacity is
// the coldest one, and re-requesting it is a fresh miss.
func TestPlanCacheEvictsLeastRecentlyUsed(t *testing.T) {
	e := New()
	cold := gen.Random(16, 0.1, 1)
	coldPlan, err := e.plan(cold, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCachedPlans; i++ { // pushes exactly one eviction
		if _, err := e.plan(gen.Random(16, 0.1, uint64(i+2)), 8); err != nil {
			t.Fatal(err)
		}
	}
	s := e.PlanStats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	pl, err := e.plan(cold, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pl == coldPlan {
		t.Fatal("coldest plan survived eviction; LRU order not respected")
	}
}

// TestDropPlansFor releases only the named matrix's plans.
func TestDropPlansFor(t *testing.T) {
	e := New()
	a := gen.Random(32, 0.1, 1)
	b := gen.Random(32, 0.1, 2)
	for _, p := range []int{8, 16} {
		if _, err := e.plan(a, p); err != nil {
			t.Fatal(err)
		}
		if _, err := e.plan(b, p); err != nil {
			t.Fatal(err)
		}
	}
	planB, err := e.plan(b, 8)
	if err != nil {
		t.Fatal(err)
	}

	e.DropPlansFor(a)
	if got := e.PlanStats().Cached; got != 2 {
		t.Fatalf("cached = %d after DropPlansFor, want 2", got)
	}
	pl, err := e.plan(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pl != planB {
		t.Fatal("unrelated matrix's plan was dropped")
	}
}

// TestRankMatchesRecommend: Rank over precomputed results must agree
// with Recommend running the sweep itself.
func TestRankMatchesRecommend(t *testing.T) {
	e := New()
	m := gen.Band(96, 8, 3)
	obj := BalancedObjective()
	want, err := e.Recommend(m, 16, nil, obj)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.SweepFormats("advisor", m, 16, formats.Sparse())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Rank(rs, obj)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != want.Format || got.Reason != want.Reason {
		t.Fatalf("Rank disagrees with Recommend:\n got %v %q\nwant %v %q",
			got.Format, got.Reason, want.Format, want.Reason)
	}
	if _, err := Rank(nil, obj); err == nil {
		t.Fatal("Rank accepted an empty result set")
	}
}
