// Package kernels implements the application kernels §3.3 identifies as
// SpMV-bound across the three sparse domains: conjugate gradients,
// Jacobi, and symmetric Gauss-Seidel for scientific computing; PageRank
// and breadth-first search for graph analytics. Each iterative kernel
// takes a pluggable SpMV backend, so the same algorithm runs over the
// software reference or through the modelled accelerator in any
// compression format.
package kernels

import (
	"fmt"
	"math"

	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
)

// SpMV is the matrix-vector backend a kernel iterates with.
type SpMV func(x []float64) ([]float64, error)

// Software returns the plain software SpMV backend for m.
func Software(m *matrix.CSR) SpMV {
	return func(x []float64) ([]float64, error) {
		if len(x) != m.Cols {
			return nil, fmt.Errorf("kernels: vector length %d for %d columns", len(x), m.Cols)
		}
		return m.MulVec(x), nil
	}
}

// Accelerator returns an SpMV backend that streams m through the
// modelled pipeline in format k at partition size p. The returned
// CycleCost reports the modelled cycles of one multiplication.
//
// The backend holds an encode-once streaming plan: the matrix is
// partitioned, encoded, and decode-verified when the backend is built,
// so each solver iteration pays only the per-iteration dot work instead
// of re-running the whole partition→encode→decode pipeline. Warm
// iterations are allocation-free: the backend double-buffers its output,
// so a returned slice stays valid until the call after next (enough for
// every kernel in this package, which at most keeps the previous
// iterate) but is eventually overwritten — copy it to retain it. The
// returned backend is not safe for concurrent calls.
func Accelerator(cfg hlsim.Config, m *matrix.CSR, k formats.Kind, p int) (mul SpMV, cycleCost uint64, err error) {
	plan, err := hlsim.NewPlan(cfg, m, p)
	if err != nil {
		return nil, 0, err
	}
	// Probe once to validate the encoding and price the multiplication.
	probe, err := plan.Run(k, make([]float64, m.Cols))
	if err != nil {
		return nil, 0, err
	}
	var buf [2]hlsim.Result
	flip := 0
	return func(x []float64) ([]float64, error) {
		r := &buf[flip]
		flip ^= 1
		if err := plan.RunInto(k, x, r); err != nil {
			return nil, err
		}
		return r.Y, nil
	}, probe.PipelinedCycles, nil
}

// Stats reports an iterative solve's outcome.
type Stats struct {
	Iterations int
	Residual   float64 // final ‖r‖₂ (or delta for eigen/rank iterations)
	Converged  bool
}

// CG solves A·x = b for symmetric positive-definite A with conjugate
// gradients, the §3.3 canonical iterative method. It stops when
// ‖r‖₂ < tol or after maxIter iterations.
func CG(mul SpMV, b []float64, tol float64, maxIter int) ([]float64, Stats, error) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rs := Dot(r, r)
	var st Stats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		if math.Sqrt(rs) < tol {
			st.Converged = true
			break
		}
		ap, err := mul(p)
		if err != nil {
			return nil, st, err
		}
		pap := Dot(p, ap)
		if pap == 0 {
			break // breakdown: b is in A's null space direction
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	st.Residual = math.Sqrt(rs)
	st.Converged = st.Converged || st.Residual < tol
	return x, st, nil
}

// Jacobi solves A·x = b by Jacobi iteration given A's diagonal:
// x' = x + D⁻¹(b − A·x). It converges for strictly diagonally dominant
// systems (all the stencil matrices in this repository).
func Jacobi(mul SpMV, diag, b []float64, tol float64, maxIter int) ([]float64, Stats, error) {
	n := len(b)
	if len(diag) != n {
		return nil, Stats{}, fmt.Errorf("kernels: diagonal length %d for %d unknowns", len(diag), n)
	}
	for i, d := range diag {
		if d == 0 {
			return nil, Stats{}, fmt.Errorf("kernels: zero diagonal at %d", i)
		}
	}
	x := make([]float64, n)
	var st Stats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		ax, err := mul(x)
		if err != nil {
			return nil, st, err
		}
		norm := 0.0
		for i := range x {
			r := b[i] - ax[i]
			x[i] += r / diag[i]
			norm += r * r
		}
		st.Residual = math.Sqrt(norm)
		if st.Residual < tol {
			st.Converged = true
			st.Iterations++
			break
		}
	}
	return x, st, nil
}

// SymGaussSeidel performs `sweeps` symmetric Gauss-Seidel sweeps
// (forward then backward) on A·x = b — the smoother §3.3 cites inside
// CG-based PDE solvers. Gauss-Seidel's sequential dependence keeps it a
// software kernel here; it still consumes the matrix row by row exactly
// as the accelerator's decompressors produce rows.
func SymGaussSeidel(m *matrix.CSR, b []float64, sweeps int) ([]float64, Stats, error) {
	if m.Rows != m.Cols || len(b) != m.Rows {
		return nil, Stats{}, fmt.Errorf("kernels: Gauss-Seidel needs square A matching b")
	}
	n := m.Rows
	x := make([]float64, n)
	relax := func(i int) error {
		diag := 0.0
		sum := b[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			if j == i {
				diag = m.Val[k]
				continue
			}
			sum -= m.Val[k] * x[j]
		}
		if diag == 0 {
			return fmt.Errorf("kernels: zero diagonal at row %d", i)
		}
		x[i] = sum / diag
		return nil
	}
	var st Stats
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n; i++ {
			if err := relax(i); err != nil {
				return nil, st, err
			}
		}
		for i := n - 1; i >= 0; i-- {
			if err := relax(i); err != nil {
				return nil, st, err
			}
		}
		st.Iterations++
	}
	ax := m.MulVec(x)
	norm := 0.0
	for i := range ax {
		d := ax[i] - b[i]
		norm += d * d
	}
	st.Residual = math.Sqrt(norm)
	st.Converged = true
	return x, st, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
