package kernels

import (
	"fmt"
	"math"

	"copernicus/internal/matrix"
)

// PageRankOperator builds the PageRank transition matrix from a directed
// adjacency matrix: Aᵀ with each column scaled by its out-degree, and a
// self-loop for dangling vertices so probability mass is conserved.
// §3.3's vertex-centric formulation reduces each iteration to one SpMV
// with this operator.
func PageRankOperator(adj *matrix.CSR) *matrix.CSR {
	b := matrix.NewBuilder(adj.Rows, adj.Cols)
	for i := 0; i < adj.Rows; i++ {
		deg := adj.RowNNZ(i)
		if deg == 0 {
			b.Add(i, i, 1)
			continue
		}
		for k := adj.RowPtr[i]; k < adj.RowPtr[i+1]; k++ {
			b.Add(adj.Col[k], i, 1.0/float64(deg))
		}
	}
	return b.Build()
}

// PageRank iterates x' = damping·M·x + (1−damping)/n with the given SpMV
// backend over the PageRank operator until the L1 delta drops below tol.
func PageRank(mul SpMV, n int, damping, tol float64, maxIter int) ([]float64, Stats, error) {
	if n <= 0 {
		return nil, Stats{}, fmt.Errorf("kernels: PageRank over %d vertices", n)
	}
	if damping < 0 || damping >= 1 {
		return nil, Stats{}, fmt.Errorf("kernels: damping %v out of [0,1)", damping)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(n)
	}
	var st Stats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		y, err := mul(x)
		if err != nil {
			return nil, st, err
		}
		delta := 0.0
		for i := range y {
			y[i] = damping*y[i] + (1-damping)/float64(n)
			delta += math.Abs(y[i] - x[i])
		}
		x = y
		st.Residual = delta
		if delta < tol {
			st.Converged = true
			st.Iterations++
			break
		}
	}
	// x may alias a buffer the backend reuses (Accelerator double-buffers
	// its outputs); return a uniquely owned copy so later backend calls
	// cannot clobber the caller's ranks.
	return append([]float64(nil), x...), st, nil
}

// BFSLevels computes breadth-first levels from source over the directed
// adjacency matrix using repeated frontier SpMVs — the §3.3 vertex-
// centric formulation where one traversal step is a sparse operator
// applied to the frontier vector. Unreachable vertices get level -1.
func BFSLevels(adj *matrix.CSR, source int, mulT SpMV) ([]int, error) {
	if source < 0 || source >= adj.Rows {
		return nil, fmt.Errorf("kernels: BFS source %d out of range", source)
	}
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("kernels: BFS needs a square adjacency matrix")
	}
	n := adj.Rows
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	frontier := make([]float64, n)
	frontier[source] = 1
	for depth := 1; depth <= n; depth++ {
		// next = Aᵀ·frontier: vertex j is reached if any frontier vertex
		// has an edge to it.
		next, err := mulT(frontier)
		if err != nil {
			return nil, err
		}
		clear(frontier)
		advanced := false
		for j := 0; j < n; j++ {
			if next[j] != 0 && level[j] == -1 {
				level[j] = depth
				frontier[j] = 1
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return level, nil
}
