package kernels

import (
	"math"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

func residual(m *matrix.CSR, x, b []float64) float64 {
	ax := m.MulVec(x)
	s := 0.0
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func rhs(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	b := make([]float64, n)
	for i := range b {
		b[i] = r.ValueIn(-1, 1)
	}
	return b
}

func TestCGSolvesStencil(t *testing.T) {
	m := gen.Stencil2D(12, 12, 1)
	b := rhs(m.Rows, 2)
	x, st, err := CG(Software(m), b, 1e-10, 2*m.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	if r := residual(m, x, b); r > 1e-8 {
		t.Fatalf("residual %v", r)
	}
}

func TestCGThroughAccelerator(t *testing.T) {
	m := gen.Stencil2D(8, 8, 3)
	b := rhs(m.Rows, 4)
	for _, k := range []formats.Kind{formats.DIA, formats.ELL, formats.COO} {
		mul, cycles, err := Accelerator(hlsim.Default(), m, k, 16)
		if err != nil {
			t.Fatal(err)
		}
		if cycles == 0 {
			t.Fatal("zero cycle cost")
		}
		x, st, err := CG(mul, b, 1e-10, 2*m.Rows)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("%v: CG did not converge", k)
		}
		if r := residual(m, x, b); r > 1e-8 {
			t.Fatalf("%v: residual %v", k, r)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := gen.Stencil2D(5, 5, 5)
	x, st, err := CG(Software(m), make([]float64, m.Rows), 1e-12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Fatalf("zero rhs should converge immediately: %+v", st)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestJacobiConverges(t *testing.T) {
	m := gen.Stencil2D(10, 10, 7)
	b := rhs(m.Rows, 8)
	diag := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		diag[i] = m.At(i, i)
	}
	x, st, err := Jacobi(Software(m), diag, b, 1e-9, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("Jacobi did not converge in %d iterations (residual %v)", st.Iterations, st.Residual)
	}
	if r := residual(m, x, b); r > 1e-7 {
		t.Fatalf("residual %v", r)
	}
}

func TestJacobiRejectsZeroDiagonal(t *testing.T) {
	if _, _, err := Jacobi(Software(gen.Stencil2D(4, 4, 1)), make([]float64, 16), make([]float64, 16), 1e-6, 10); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestSymGaussSeidelReducesResidual(t *testing.T) {
	m := gen.Stencil2D(10, 10, 9)
	b := rhs(m.Rows, 10)
	x1, st1, err := SymGaussSeidel(m, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	x20, st20, err := SymGaussSeidel(m, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st20.Residual >= st1.Residual {
		t.Fatalf("more sweeps did not help: %v vs %v", st20.Residual, st1.Residual)
	}
	_ = x1
	if r := residual(m, x20, b); math.Abs(r-st20.Residual) > 1e-9 {
		t.Fatal("reported residual inconsistent")
	}
}

func TestPageRankProperties(t *testing.T) {
	adj := gen.PreferentialAttachment(200, 4, 11)
	op := PageRankOperator(adj)
	ranks, st, err := PageRank(Software(op), adj.Rows, 0.85, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("PageRank did not converge")
	}
	sum := 0.0
	for _, r := range ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

func TestPageRankAcceleratorMatchesSoftware(t *testing.T) {
	adj := gen.PreferentialAttachment(128, 3, 13)
	op := PageRankOperator(adj)
	soft, _, err := PageRank(Software(op), adj.Rows, 0.85, 1e-12, 300)
	if err != nil {
		t.Fatal(err)
	}
	mul, _, err := Accelerator(hlsim.Default(), op, formats.COO, 16)
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := PageRank(mul, adj.Rows, 0.85, 1e-12, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := range soft {
		if math.Abs(soft[i]-hard[i]) > 1e-9 {
			t.Fatalf("rank[%d] differs: %v vs %v", i, soft[i], hard[i])
		}
	}
}

func TestPageRankRejectsBadInput(t *testing.T) {
	if _, _, err := PageRank(Software(gen.Random(4, 0.5, 1)), 0, 0.85, 1e-6, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := PageRank(Software(gen.Random(4, 0.5, 1)), 4, 1.0, 1e-6, 10); err == nil {
		t.Fatal("damping 1.0 accepted")
	}
}

// referenceBFS is a plain queue BFS for cross-checking.
func referenceBFS(adj *matrix.CSR, source int) []int {
	level := make([]int, adj.Rows)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
			if w := adj.Col[k]; level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}

func TestBFSMatchesReference(t *testing.T) {
	adj := gen.RoadMesh(12, 12, 0.1, 15)
	// Frontier expansion needs Aᵀ·frontier; road meshes are symmetric so
	// A itself serves.
	levels, err := BFSLevels(adj, 0, Software(adj.Transpose()))
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBFS(adj, 0)
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
}

func TestBFSThroughAccelerator(t *testing.T) {
	adj := gen.RoadMesh(8, 8, 0, 17)
	tr := adj.Transpose()
	mul, _, err := Accelerator(hlsim.Default(), tr, formats.CSR, 8)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := BFSLevels(adj, 3, mul)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBFS(adj, 3)
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
}

func TestBFSRejectsBadSource(t *testing.T) {
	adj := gen.RoadMesh(4, 4, 0, 1)
	if _, err := BFSLevels(adj, -1, Software(adj)); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := BFSLevels(adj, 99, Software(adj)); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestSoftwareBackendDimensionCheck(t *testing.T) {
	mul := Software(gen.Random(8, 0.5, 1))
	if _, err := mul(make([]float64, 5)); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v", d)
	}
}

// TestAcceleratorWarmIterationsZeroAllocs: after the probe, every backend
// call must run allocation-free — the plan's RunInto path reuses the
// backend's double-buffered Results, so solver loops generate no GC
// traffic.
func TestAcceleratorWarmIterationsZeroAllocs(t *testing.T) {
	m := gen.Stencil2D(8, 8, 3)
	mul, _, err := Accelerator(hlsim.Default(), m, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := rhs(m.Rows, 4)
	if _, err := mul(x); err != nil {
		t.Fatal(err) // fill both buffers
	}
	if _, err := mul(x); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := mul(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm accelerator iteration allocates %v allocs/op, want 0", allocs)
	}
}

// TestAcceleratorDoubleBuffering: a returned vector must stay intact
// across the next call (kernels like PageRank keep the previous iterate
// while computing the next one from it).
func TestAcceleratorDoubleBuffering(t *testing.T) {
	m := gen.Stencil2D(8, 8, 3)
	mul, _, err := Accelerator(hlsim.Default(), m, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := rhs(m.Rows, 4)
	y1, err := mul(x)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), y1...)
	y2, err := mul(y1) // consumes y1 while writing the other buffer
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y1[i] != want[i] {
			t.Fatalf("previous result clobbered at %d during next call", i)
		}
	}
	wantY2 := m.MulVec(want)
	for i := range wantY2 {
		if diff := y2[i] - wantY2[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("aliased-input result wrong at %d: %v vs %v", i, y2[i], wantY2[i])
		}
	}
}
