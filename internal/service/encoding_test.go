package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/synth"
	"copernicus/internal/wire"
)

// randomResult builds a result with adversarial field values for the
// NDJSON parity property test: floats across the fixed/exponent
// formatting boundary, strings needing every escape class, and the
// omitempty fields in all presence combinations.
func randomResult(rng *rand.Rand) core.Result {
	strs := []string{
		"DW", "", "wl-1", "a<b>c&d", `quo"te`, `back\slash`,
		"tab\tline\nnull\x00", "unicode-é世界", "del-\x7f",
	}
	floats := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1)
		case 2:
			return rng.Float64() * math.Pow(10, float64(rng.Intn(50)-25))
		case 3:
			return -rng.Float64() * 1e21 * math.Pow(10, float64(rng.Intn(10)))
		case 4:
			return rng.Float64() * 1e-6
		default:
			return float64(rng.Intn(1000))
		}
	}
	return core.Result{
		Workload:          strs[rng.Intn(len(strs))],
		Format:            formats.Kind(rng.Intn(formats.NumKinds)),
		P:                 rng.Intn(64) - 8,
		Kernel:            []string{"spmv", "cg:60", "spmm:8"}[rng.Intn(3)],
		Iterations:        rng.Intn(100),
		Backend:           "analytic",
		Measured:          rng.Intn(2) == 0,
		MeasuredRuns:      rng.Intn(3),
		Threads:           rng.Intn(3),
		Degraded:          rng.Intn(3) == 0,
		DegradedReason:    strs[rng.Intn(len(strs))],
		Sigma:             floats(),
		BalanceRatio:      floats(),
		MeanMemCycles:     floats(),
		MeanComputeCycles: floats(),
		Seconds:           floats(),
		ThroughputBps:     floats(),
		NsPerNNZ:          floats(),
		BandwidthUtil:     floats(),
		DotEngineUtil:     floats(),
		InnerPipelineUtil: floats(),
		NonZeroTiles:      rng.Intn(1000) - 100,
		TotalTiles:        rng.Intn(1000),
		TotalBytes:        rng.Intn(1 << 20),
		Synth: synth.Report{
			BRAM18K: rng.Intn(100), FF: rng.Intn(1 << 16), LUT: rng.Intn(1 << 16),
			DynamicW: floats(), StaticW: floats(),
		},
		DynamicEnergyJ: floats(),
		StaticEnergyJ:  floats(),
	}
}

// TestNDJSONRowParity: the pooled append encoder must be byte-identical
// to json.NewEncoder(w).Encode(toResultJSON(r)) — the exact writer the
// streaming path used before — across adversarial rows.
func TestNDJSONRowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var ref bytes.Buffer
	enc := json.NewEncoder(&ref)
	for i := 0; i < 2000; i++ {
		r := randomResult(rng)
		ref.Reset()
		if err := enc.Encode(toResultJSON(r)); err != nil {
			t.Fatalf("row %d: reference encoder: %v", i, err)
		}
		got := appendResultNDJSON(nil, r)
		if !bytes.Equal(got, ref.Bytes()) {
			t.Fatalf("row %d diverged:\n got %s\nwant %s\nresult %+v", i, got, ref.Bytes(), r)
		}
	}
}

// TestNDJSONRowZeroAlloc: once the row buffer exists, encoding a row
// allocates nothing — this is the streaming path's per-row cost.
func TestNDJSONRowZeroAlloc(t *testing.T) {
	r := core.Result{
		Workload: "DW", Format: formats.CSR, P: 8, Kernel: "spmv", Iterations: 1,
		Backend: "analytic", Sigma: 1.5, Seconds: 0.0015, ThroughputBps: 2.5e9,
		NsPerNNZ: 12.25, NonZeroTiles: 7, TotalTiles: 16, TotalBytes: 4096,
	}
	buf := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendResultNDJSON(buf[:0], r)
	}); n != 0 {
		t.Fatalf("appendResultNDJSON allocates %.1f per row, want 0", n)
	}
}

// sweepBody POSTs /v1/sweep with an optional Accept header and returns
// the raw response.
func sweepBody(t *testing.T, base, body, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestJSONByteIdentity: cold and warm JSON sweep bodies must be
// byte-identical to what writeJSON (the pre-cache writer, still used by
// every other endpoint) renders for the same envelope — the encoded-slab
// cache must be invisible at the byte level.
func TestJSONByteIdentity(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"matrix": "DW", "formats": ["CSR", "ELL"], "partitions": [8, 16]}`

	resp1, cold := sweepBody(t, ts.URL, body, "")
	resp2, warm := sweepBody(t, ts.URL, body, "")
	resp3, warm2 := sweepBody(t, ts.URL, body, "")
	for i, resp := range []*http.Response{resp1, resp2, resp3} {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i+1, resp.StatusCode)
		}
	}
	if !bytes.Equal(warm, warm2) {
		t.Fatal("two warm responses differ")
	}

	info, _, _ := s.reg.Lookup("DW")
	b, err := resolveBackend("", 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := parseKernel("")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.cache.Get(sweepKey("DW", b, sc, []formats.Kind{formats.CSR, formats.ELL}, []int{8, 16}))
	if !ok {
		t.Fatal("sweep entry not cached")
	}
	entry := v.(*sweepEntry)

	reference := func(cached bool) []byte {
		rec := httptest.NewRecorder()
		writeJSON(rec, http.StatusOK, sweepEnvelope(info, cached, entry.results))
		return rec.Body.Bytes()
	}
	if !bytes.Equal(cold, reference(false)) {
		t.Fatalf("cold body diverged from writeJSON:\n got %s\nwant %s", cold, reference(false))
	}
	if !bytes.Equal(warm, reference(true)) {
		t.Fatalf("warm body diverged from writeJSON:\n got %s\nwant %s", warm, reference(true))
	}

	// Characterize shares the cache key with a one-point sweep but must
	// keep its own envelope: warm both shapes on one entry and check
	// neither answers the other's body.
	q := "?matrix=DW&format=CSR&p=8"
	for i := 0; i < 2; i++ {
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/characterize"+q, nil); code != http.StatusOK {
			t.Fatalf("characterize: %d", code)
		}
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=DW&formats=CSR&partitions=8", nil); code != http.StatusOK {
			t.Fatalf("one-point sweep: %d", code)
		}
	}
	_, chBody := doJSON(t, "GET", ts.URL+"/v1/characterize"+q, nil)
	if _, ok := chBody["result"]; !ok {
		t.Fatalf("characterize warm body lost its envelope: %v", chBody)
	}
	_, swBody := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=DW&formats=CSR&partitions=8", nil)
	if _, ok := swBody["results"]; !ok {
		t.Fatalf("one-point sweep warm body lost its envelope: %v", swBody)
	}
}

// TestWarmHitZeroMarshal: a warm hit serves the entry's stored body —
// fetching it performs zero allocations, and repeated warm requests do
// not add encodes.
func TestWarmHitZeroMarshal(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"matrix": "DW", "formats": ["CSR"], "partitions": [8, 16]}`
	sweepBody(t, ts.URL, body, "")               // cold: one encode
	sweepBody(t, ts.URL, body, "")               // warm: builds the cached body
	sweepBody(t, ts.URL, body, wire.ContentType) // builds the columnar body
	jsonEncodes := s.encJSON.encodes.Load()
	colEncodes := s.encCol.encodes.Load()

	for i := 0; i < 5; i++ {
		if resp, _ := sweepBody(t, ts.URL, body, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm JSON hit: %d", resp.StatusCode)
		}
		if resp, _ := sweepBody(t, ts.URL, body, wire.ContentType); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm columnar hit: %d", resp.StatusCode)
		}
	}
	if got := s.encJSON.encodes.Load(); got != jsonEncodes {
		t.Fatalf("warm JSON hits re-encoded: %d -> %d", jsonEncodes, got)
	}
	if got := s.encCol.encodes.Load(); got != colEncodes {
		t.Fatalf("warm columnar hits re-encoded: %d -> %d", colEncodes, got)
	}

	// The body fetch itself — the marshal step of a warm hit — is
	// allocation-free once built.
	var v any
	var ok bool
	for _, key := range cacheKeys(s) {
		if v, ok = s.cache.Get(key); ok {
			break
		}
	}
	if !ok {
		t.Fatal("no cached entry")
	}
	entry := v.(*sweepEntry)
	if n := testing.AllocsPerRun(100, func() {
		_ = s.body(entry, bodyJSONSweep, &s.encJSON, func() []byte {
			t.Error("warm body rebuilt")
			return nil
		})
	}); n != 0 {
		t.Fatalf("warm body fetch allocates %.1f, want 0", n)
	}
}

func cacheKeys(s *Server) []string {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	keys := make([]string, 0, len(s.cache.entries))
	for k := range s.cache.entries {
		keys = append(keys, k)
	}
	return keys
}

// TestColumnarNegotiation: Accept: application/x-copernicus-col selects
// the columnar slab on sweep and characterize; the decoded slab matches
// the JSON rows exactly; NDJSON keeps precedence when both are listed.
func TestColumnarNegotiation(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"matrix": "DW", "partitions": [8, 16]}`

	resp, cold := sweepBody(t, ts.URL, body, wire.ContentType)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold columnar sweep: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if c := resp.Header.Get(headerCached); c != "false" {
		t.Fatalf("cold %s = %q", headerCached, c)
	}
	if m := resp.Header.Get(headerMatrix); m != "DW" {
		t.Fatalf("%s = %q", headerMatrix, m)
	}
	rs, err := wire.Decode(cold)
	if err != nil {
		t.Fatalf("decode columnar body: %v", err)
	}

	respW, warm := sweepBody(t, ts.URL, body, wire.ContentType)
	if c := respW.Header.Get(headerCached); c != "true" {
		t.Fatalf("warm %s = %q", headerCached, c)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm columnar bodies differ")
	}
	if got := respW.Header.Get(headerRows); got != fmt.Sprint(len(rs)) {
		t.Fatalf("%s = %q, want %d", headerRows, got, len(rs))
	}

	// The slab is the cached results, exactly.
	var entry *sweepEntry
	for _, key := range cacheKeys(s) {
		if v, ok := s.cache.Get(key); ok {
			entry = v.(*sweepEntry)
		}
	}
	if entry == nil || !reflect.DeepEqual(rs, entry.results) {
		t.Fatal("columnar slab does not reflect the cached results")
	}

	// Characterize negotiates too: one row.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/characterize?matrix=DW&format=CSR&p=8", nil)
	req.Header.Set("Accept", wire.ContentType)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	craw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	crs, err := wire.Decode(craw)
	if err != nil || len(crs) != 1 {
		t.Fatalf("characterize columnar: %d rows, err %v", len(crs), err)
	}

	// NDJSON precedence: a client listing both asked for streaming.
	respN, rawN := sweepBody(t, ts.URL, body, "application/x-ndjson, "+wire.ContentType)
	if ct := respN.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("NDJSON precedence lost: Content-Type %q", ct)
	}
	if lines := bytes.Count(bytes.TrimSpace(rawN), []byte("\n")) + 1; lines != len(rs) {
		t.Fatalf("NDJSON rows = %d, want %d", lines, len(rs))
	}
}

// TestColumnarCompression: the columnar slab must be at least 4x
// smaller than the JSON body for a full-format sweep.
func TestColumnarCompression(t *testing.T) {
	_, ts := newTestServer(t)
	names := make([]string, 0, formats.NumKinds)
	for _, k := range formats.All() {
		names = append(names, k.String())
	}
	body := fmt.Sprintf(`{"matrix": "DW", "formats": ["%s"], "partitions": [8, 16, 32]}`,
		strings.Join(names, `", "`))
	resp, col := sweepBody(t, ts.URL, body, wire.ContentType)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar sweep: %d", resp.StatusCode)
	}
	respJ, js := sweepBody(t, ts.URL, body, "")
	if respJ.StatusCode != http.StatusOK {
		t.Fatalf("json sweep: %d", respJ.StatusCode)
	}
	if ratio := float64(len(js)) / float64(len(col)); ratio < 4 {
		t.Fatalf("columnar body only %.1fx smaller than JSON (%d vs %d bytes), want >= 4x",
			ratio, len(col), len(js))
	}
}

// TestEncodingStatsAndResidency: /v1/stats exposes the per-content-type
// counters, and deleting a matrix releases its entries' encoded bodies
// from the resident-bytes gauge.
func TestEncodingStatsAndResidency(t *testing.T) {
	s, ts := newTestServer(t)
	code, _ := doJSON(t, "POST", ts.URL+"/v1/matrices?name=enc-res",
		strings.NewReader(mtxFixture(t, 11)))
	if code != http.StatusCreated {
		t.Fatalf("upload: %d", code)
	}
	var id string
	{
		_, list := doJSON(t, "GET", ts.URL+"/v1/matrices", nil)
		for _, m := range list["matrices"].([]any) {
			mm := m.(map[string]any)
			if mm["name"] == "enc-res" {
				id = mm["id"].(string)
			}
		}
	}
	if id == "" {
		t.Fatal("uploaded matrix not listed")
	}

	body := fmt.Sprintf(`{"matrix": %q, "formats": ["CSR"], "partitions": [8]}`, id)
	sweepBody(t, ts.URL, body, "")               // cold JSON
	sweepBody(t, ts.URL, body, "")               // warm JSON -> resident body
	sweepBody(t, ts.URL, body, wire.ContentType) // resident columnar body
	if got := s.encResident.Load(); got <= 0 {
		t.Fatalf("encoded-slab resident bytes = %d after warm hits, want > 0", got)
	}

	code, stats := doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	enc, ok := stats["encoding"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing encoding section: %v", stats)
	}
	for _, ct := range []string{"json", "ndjson", "columnar"} {
		sec, ok := enc[ct].(map[string]any)
		if !ok {
			t.Fatalf("encoding stats missing %q: %v", ct, enc)
		}
		for _, k := range []string{"responses", "bytes_served", "encodes", "encode_ns"} {
			if _, ok := sec[k]; !ok {
				t.Fatalf("encoding.%s missing %q", ct, k)
			}
		}
	}
	if enc["json"].(map[string]any)["encodes"].(float64) < 1 {
		t.Fatal("json encode count not tallied")
	}
	if enc["encoded_cache_resident_bytes"].(float64) <= 0 {
		t.Fatal("resident bytes not surfaced")
	}

	// Deleting the matrix invalidates its entries — and with them every
	// resident encoded body.
	resident := s.encResident.Load()
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/matrices/"+id, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if got := s.encResident.Load(); got >= resident {
		t.Fatalf("delete did not release encoded bodies: %d -> %d", resident, got)
	}
}

// TestJobResultColumnar: GET /v1/jobs/{id} negotiates the columnar slab
// for a finished job's rows.
func TestJobResultColumnar(t *testing.T) {
	_, ts := newTestServer(t)
	code, resp := doJSON(t, "POST", ts.URL+"/v1/jobs/sweep",
		strings.NewReader(`{"matrix": "DW", "formats": ["CSR", "ELL"], "partitions": [8]}`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["job"].(map[string]any)["id"].(string)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		_, jr := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if jr["job"].(map[string]any)["state"] == "done" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id, nil)
	req.Header.Set("Accept", wire.ContentType)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := r.Header.Get(headerJob); got != id {
		t.Fatalf("%s = %q, want %q", headerJob, got, id)
	}
	rs, err := wire.Decode(raw)
	if err != nil || len(rs) != 2 {
		t.Fatalf("job columnar slab: %d rows, err %v", len(rs), err)
	}
}
