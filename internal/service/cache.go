package service

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"
)

// CacheStats counts result-cache traffic.
type CacheStats struct {
	// Hits were served from the cache; Misses ran the compute function;
	// Shared callers attached to another caller's in-flight compute
	// (singleflight) and never ran the engine themselves. Abandoned
	// counts in-flight computes that were canceled because every
	// interested caller went away before they finished.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"`
	Evictions uint64 `json:"evictions"`
	Abandoned uint64 `json:"abandoned"`
	Entries   int    `json:"entries"`
}

// flight is one in-progress compute that late arrivals wait on. The
// compute runs on the leader's goroutine but under a *detached* context:
// it outlives the leader's own request so waiters still get a value if
// the leader's client disconnects, and it is canceled — via the
// reference count — only when every attached caller is gone.
type flight struct {
	done chan struct{}
	val  any
	err  error
	// refs counts callers (leader included) still interested in the
	// result; each caller's departure (context cancellation) decrements
	// it, and the transition to zero cancels the compute context.
	refs    int
	cancel  context.CancelFunc
	aborted bool
}

// resultCache is an LRU-evicted cache of computed sweep results with
// singleflight deduplication: concurrent requests for the same key share
// a single compute instead of racing the engine N times. Errors are
// returned to every waiter but never cached — a transient failure does
// not poison the key.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element // value: *cacheEntry
	lru      *list.List               // front = most recently used
	inflight map[string]*flight
	stats    CacheStats

	// onEvict, when set, observes every value leaving the cache —
	// LRU eviction, replacement by a fresh value, and prefix
	// invalidation — so the owner can release resources the value pins
	// (the server drops the entry's pre-encoded response bodies from the
	// resident-bytes gauge). Called with c.mu held; implementations may
	// take locks nested under c.mu but must never re-enter the cache.
	onEvict func(key string, val any)
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// release drops one caller's interest in fl; the last departure cancels
// the flight's compute context. Callers must hold c.mu.
func (c *resultCache) releaseLocked(fl *flight) {
	fl.refs--
	if fl.refs == 0 && !fl.aborted {
		fl.aborted = true
		c.stats.Abandoned++
		fl.cancel()
	}
}

// Do returns the cached value for key, or computes it exactly once even
// under concurrent identical requests. The bool reports whether the
// value came from the cache (true for both stored hits and results
// shared with an in-flight leader).
//
// Context discipline: compute receives a context detached from the
// caller's — the singleflight leader keeps computing for the benefit of
// the other waiters even if its own client disconnects — that is
// canceled only when *every* attached caller's context is done. A caller
// whose ctx is canceled while waiting detaches immediately and returns
// ctx.Err(). Callers arriving after a flight was abandoned start a fresh
// flight instead of inheriting the doomed one.
func (c *resultCache) Do(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err // never start (or join) work for a dead caller
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok && !fl.aborted {
		fl.refs++
		c.stats.Shared++
		c.mu.Unlock()
		select {
		case <-fl.done:
			c.mu.Lock()
			fl.refs--
			c.mu.Unlock()
			return fl.val, true, fl.err
		case <-ctx.Done():
			c.mu.Lock()
			c.releaseLocked(fl)
			c.mu.Unlock()
			return nil, false, ctx.Err()
		}
	}
	// Lead a new flight. The compute context ignores the caller's
	// cancellation (values are preserved) and is canceled only by the
	// reference count reaching zero.
	fctx, fcancel := context.WithCancel(context.WithoutCancel(ctx))
	fl := &flight{done: make(chan struct{}), refs: 1, cancel: fcancel}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	// The leader's own departure must release its reference too —
	// otherwise a leader whose client disconnects while other waiters
	// remain would pin the flight forever if those waiters also leave.
	stopWatch := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.releaseLocked(fl)
		c.mu.Unlock()
	})

	// The deferred cleanup must run even if compute panics: otherwise the
	// flight stays in the inflight map with done never closed, and every
	// later request for the key blocks forever. The panic itself still
	// propagates to the leader (net/http recovers it per-connection);
	// waiters get an error instead of a hang.
	returned := false
	defer func() {
		if !returned {
			fl.val, fl.err = nil, errComputePanicked
		}
		c.mu.Lock()
		if stopWatch() {
			// The watcher never fired: drop the leader's reference here.
			// (If it fired, the reference is already released.)
			fl.refs--
		}
		if c.inflight[key] == fl {
			delete(c.inflight, key)
		}
		if fl.err == nil {
			c.addLocked(key, fl.val)
		}
		c.mu.Unlock()
		fcancel() // always release the flight context's resources
		close(fl.done)
	}()
	fl.val, fl.err = compute(fctx)
	returned = true
	return fl.val, false, fl.err
}

// errComputePanicked is what waiters of a panicked leader observe.
var errComputePanicked = errors.New("service: in-flight compute panicked")

// Get returns the cached value for key without computing, promoting the
// entry on a hit. Streaming paths use it to serve warm requests row by
// row from the stored slab.
func (c *resultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).val, true
}

// Add stores a value computed outside Do — a streamed sweep or a
// completed background job — under the same LRU and capacity rules.
// The caller is charged as one miss (it ran the engine).
func (c *resultCache) Add(key string, val any) {
	c.mu.Lock()
	c.stats.Misses++
	c.addLocked(key, val)
	c.mu.Unlock()
}

// addLocked inserts or refreshes an entry and trims to capacity.
func (c *resultCache) addLocked(key string, val any) {
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if c.onEvict != nil && ent.val != val {
			c.onEvict(key, ent.val)
		}
		ent.val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.entries, ent.key)
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
		c.stats.Evictions++
	}
}

// InvalidatePrefix drops every cached entry whose key starts with the
// prefix — used when a matrix is deleted, since every key embeds the
// matrix ID first.
func (c *resultCache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); strings.HasPrefix(ent.key, prefix) {
			c.lru.Remove(el)
			delete(c.entries, ent.key)
			if c.onEvict != nil {
				c.onEvict(ent.key, ent.val)
			}
			dropped++
		}
		el = next
	}
	return dropped
}

// Stats returns a snapshot of the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	s := c.stats
	s.Entries = len(c.entries)
	c.mu.Unlock()
	return s
}
