package service

import (
	"container/list"
	"errors"
	"strings"
	"sync"
)

// CacheStats counts result-cache traffic.
type CacheStats struct {
	// Hits were served from the cache; Misses ran the compute function;
	// Shared callers attached to another caller's in-flight compute
	// (singleflight) and never ran the engine themselves.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// flight is one in-progress compute that late arrivals wait on.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// resultCache is an LRU-evicted cache of computed sweep results with
// singleflight deduplication: concurrent requests for the same key share
// a single compute instead of racing the engine N times. Errors are
// returned to every waiter but never cached — a transient failure does
// not poison the key.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element // value: *cacheEntry
	lru      *list.List               // front = most recently used
	inflight map[string]*flight
	stats    CacheStats
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached value for key, or computes it exactly once even
// under concurrent identical requests. The bool reports whether the
// value came from the cache (true for both stored hits and results
// shared with an in-flight leader).
func (c *resultCache) Do(key string, compute func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	// The deferred cleanup must run even if compute panics: otherwise the
	// flight stays in the inflight map with done never closed, and every
	// later request for the key blocks forever. The panic itself still
	// propagates to the leader (net/http recovers it per-connection);
	// waiters get an error instead of a hang.
	returned := false
	defer func() {
		if !returned {
			fl.val, fl.err = nil, errComputePanicked
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: fl.val})
			for len(c.entries) > c.cap {
				oldest := c.lru.Back()
				c.lru.Remove(oldest)
				delete(c.entries, oldest.Value.(*cacheEntry).key)
				c.stats.Evictions++
			}
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = compute()
	returned = true
	return fl.val, false, fl.err
}

// errComputePanicked is what waiters of a panicked leader observe.
var errComputePanicked = errors.New("service: in-flight compute panicked")

// InvalidatePrefix drops every cached entry whose key starts with the
// prefix — used when a matrix is deleted, since every key embeds the
// matrix ID first.
func (c *resultCache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); strings.HasPrefix(ent.key, prefix) {
			c.lru.Remove(el)
			delete(c.entries, ent.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// Stats returns a snapshot of the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	s := c.stats
	s.Entries = len(c.entries)
	c.mu.Unlock()
	return s
}
