package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copernicus/internal/faults"
	"copernicus/internal/jobs"
)

// TestReadyzLifecycle: readyz answers ready on a fresh server and flips
// to draining the moment Shutdown begins — while healthz stays 200, so
// orchestrators route traffic away without killing the process.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil)
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("fresh readyz = %d %v", code, body)
	}

	s.Shutdown()
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil)
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v", code, body)
	}
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz must stay %d during drain, got %d", http.StatusOK, code)
	}
}

// blockJobs fills the manager's runner with a task that parks until
// release is closed, then stuffs the queue to capacity.
func blockJobs(t *testing.T, s *Server, queueCap int) (release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	park := func(ctx context.Context, report func(int, jobs.GroupTiming)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	// One job to occupy the single runner; wait until it actually leaves
	// the queue so the fills below land in queue slots, not the runner.
	ji, err := s.Jobs().Submit("parked runner", 1, park)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Jobs().Get(ji.ID)
		if cur.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runner never picked up the parked job (state %s)", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < queueCap; i++ {
		if _, err := s.Jobs().Submit("parked queue", 1, park); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	t.Cleanup(func() { close(release) })
	return release
}

// TestReadyzSaturationAndQueueFull: with the job queue at capacity,
// readyz reports saturated 503 and a further job submission is answered
// 429 with the documented body shape.
func TestReadyzSaturationAndQueueFull(t *testing.T) {
	s := New(Options{Scale: 64, JobQueue: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	blockJobs(t, s, 2)

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil)
	if code != http.StatusServiceUnavailable || body["status"] != "saturated" {
		t.Fatalf("saturated readyz = %d %v", code, body)
	}

	// One more submission over HTTP: 429 with the uniform error body.
	req := `{"matrix":"2C","formats":["CSR"],"partitions":[8]}`
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/sweep", strings.NewReader(req))
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit = %d %v", code, body)
	}
	msg, ok := body["error"].(string)
	if !ok || !strings.Contains(msg, "job queue full") || !strings.Contains(msg, "retry later") {
		t.Fatalf("429 body shape = %v", body)
	}
	if len(body) != 1 {
		t.Fatalf("429 body must be the uniform {\"error\":...} shape, got %v", body)
	}
}

// TestHandlerPanicRecovered: a panic inside a handler's compute is
// answered as a structured 500 and counted on /v1/stats; the server
// keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	defer faults.DisarmAll()
	faults.Point("service.sweep").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})

	_, ts := newTestServer(t)
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicked sweep = %d %v", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panic") {
		t.Fatalf("500 body should say a panic was contained: %v", body)
	}

	// The process survived; the same request now succeeds and the panic
	// shows up in the failure counters.
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8", nil)
	if code != http.StatusOK {
		t.Fatalf("post-panic sweep = %d", code)
	}
	_, stats := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	failures, _ := stats["failures"].(map[string]any)
	if failures == nil {
		t.Fatalf("stats missing failures section: %v", stats)
	}
	if n, _ := failures["handler_panics"].(float64); n < 1 {
		t.Fatalf("handler_panics = %v, want >= 1", failures["handler_panics"])
	}
	if _, ok := failures["jobs"]; !ok {
		t.Fatalf("failures missing jobs stats: %v", failures)
	}
	if _, ok := failures["native_measure"]; !ok {
		t.Fatalf("failures missing native_measure stats: %v", failures)
	}
}

// TestBadPartitionIs400: partition sizes the encoders would have
// panicked on are a client-attributable 400 through every service path.
func TestBadPartitionIs400(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		"/v1/sweep?matrix=2C&formats=SELL&partitions=9",
		"/v1/sweep?matrix=2C&formats=BCSR&partitions=6",
		"/v1/characterize?matrix=2C&format=SELL&p=9",
		"/v1/sweep?matrix=2C&formats=CSR&partitions=2",
	} {
		code, body := doJSON(t, http.MethodGet, ts.URL+url, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d %v, want 400", url, code, body)
		}
	}
}

// TestNDJSONMidStreamErrorLine: a fault injected after the first sweep
// group truncates the NDJSON stream with a final in-band {"error": ...}
// line — the rows before it are a valid prefix.
func TestNDJSONMidStreamErrorLine(t *testing.T) {
	defer faults.DisarmAll()
	// The first core.sweep.group call succeeds, the second fails: with
	// two partitions there are two groups, so the stream carries the
	// first group's rows then the error line.
	faults.Point("core.sweep.group").Arm(faults.Injection{After: 2})

	_, ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8,16", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (rows started, so the error must be in-band)", resp.StatusCode)
	}

	var rows, errLines int
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if msg, ok := obj["error"].(string); ok {
			errLines++
			if !strings.Contains(msg, "injected fault") {
				t.Fatalf("error line should carry the cause: %q", msg)
			}
			if scanner.Scan() {
				t.Fatalf("error line must terminate the stream, got %q after it", scanner.Text())
			}
			break
		}
		rows++
	}
	if rows != 2 || errLines != 1 {
		t.Fatalf("rows=%d errLines=%d, want the first group's 2 rows then one error line", rows, errLines)
	}
}

// TestJobSSECarriesAttempt: the SSE progress feed exposes the attempt
// counters, and a job that panics on every attempt ends quarantined
// with attempt == max_attempts.
func TestJobSSECarriesAttempt(t *testing.T) {
	defer faults.DisarmAll()
	faults.Point("jobs.run").Arm(faults.Injection{Kind: faults.KindPanic})

	s := New(Options{Scale: 64, JobRetries: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	req := `{"matrix":"2C","formats":["CSR"],"partitions":[8]}`
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/sweep", strings.NewReader(req))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	job := body["job"].(map[string]any)
	id := job["id"].(string)

	deadline := time.Now().Add(5 * time.Second)
	for {
		ji, ok := s.Jobs().Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if ji.State.Terminal() {
			if ji.State != jobs.StateQuarantined {
				t.Fatalf("state = %s, want quarantined", ji.State)
			}
			if ji.Attempt != 2 || ji.MaxAttempts != 2 {
				t.Fatalf("attempt = %d/%d, want 2/2", ji.Attempt, ji.MaxAttempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", ji.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The job record over HTTP carries the attempt budget too.
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("job get = %d", code)
	}
	rec := body["job"].(map[string]any)
	if rec["state"] != "quarantined" || rec["attempt"].(float64) != 2 || rec["max_attempts"].(float64) != 2 {
		t.Fatalf("job record = %v", rec)
	}
	st := s.Jobs().Stats()
	if st.Quarantined != 1 || st.PanicsRecovered != 2 {
		t.Fatalf("jobs stats = %+v", st)
	}
}

// TestRequestTimeoutCapsCompute: a compute request that overruns the
// server-side deadline cap is answered 503, and the cap is per request —
// the next (unstalled) request on the same server succeeds.
func TestRequestTimeoutCapsCompute(t *testing.T) {
	defer faults.DisarmAll()
	// Stall the compute past the 50ms cap. The injected sleep itself is
	// not context-aware, so the response lands once it elapses — what
	// matters is that the expired cap turns the sweep into a 503 instead
	// of a 200 computed on a dead budget.
	faults.Point("service.sweep").Arm(faults.Injection{Kind: faults.KindDelay, Delay: 300 * time.Millisecond, Times: 1})

	s := New(Options{Scale: 64, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out sweep = %d %v", code, body)
	}

	// The next (unstalled) request succeeds under the same cap.
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8", nil)
	if code != http.StatusOK {
		t.Fatalf("post-timeout sweep = %d", code)
	}
}

// TestComputeCtxDeadline: computeCtx derives a capped deadline from the
// configured RequestTimeout, and a negative option disables the cap.
func TestComputeCtxDeadline(t *testing.T) {
	s := New(Options{Scale: 64, RequestTimeout: 50 * time.Millisecond})
	r, _ := http.NewRequest(http.MethodGet, "/v1/sweep", nil)
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("computeCtx must carry a deadline when a cap is configured")
	}
	if until := time.Until(dl); until > 50*time.Millisecond {
		t.Fatalf("deadline %v past the 50ms cap", until)
	}

	s2 := New(Options{Scale: 64, RequestTimeout: -1})
	ctx2, cancel2 := s2.computeCtx(r)
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("negative RequestTimeout must disable the cap")
	}
}
