package service

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/core"
	"copernicus/internal/wire"
)

// This file is the serving hot path's encoding layer: content
// negotiation for the columnar wire format, the encoded-slab cache that
// makes a warm hit a single write of immutable bytes, the pooled
// append-style NDJSON row encoder, and the per-content-type encoding
// counters surfaced on /v1/stats.

// Response headers carrying the envelope metadata that the JSON body
// embeds ("matrix", "cached") when the body itself is a raw columnar
// slab.
const (
	headerMatrix = "X-Copernicus-Matrix"
	headerCached = "X-Copernicus-Cached"
	headerRows   = "X-Copernicus-Rows"
	headerJob    = "X-Copernicus-Job"
	// Advise verdict metadata for columnar advise responses: the chosen
	// format, the full ranking (comma-separated), and the sparsity class.
	headerAdviseFormat  = "X-Copernicus-Advise-Format"
	headerAdviseRanking = "X-Copernicus-Advise-Ranking"
	headerAdviseClass   = "X-Copernicus-Advise-Class"
)

// wantsColumnar reports whether the request negotiated the columnar
// slab body. NDJSON wins when both are listed: streaming delivery is an
// explicit opt-in the columnar batch body cannot honor.
func wantsColumnar(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// bodyKind indexes a cache entry's pre-encoded response bodies. The
// JSON kinds are split per endpoint shape because a one-point sweep and
// a characterize request share a cache key but answer with different
// envelopes ("results" list vs "result" object).
type bodyKind int

const (
	bodyJSONSweep        bodyKind = iota // /v1/sweep envelope, cached=true
	bodyJSONCharacterize                 // /v1/characterize envelope, cached=true
	bodyColumnar                         // raw wire.Encode slab
	numBodyKinds
)

// sweepEntry is one cached sweep: the result slab plus its lazily
// encoded response bodies. The first warm request of each content type
// pays one encode; every later warm hit writes the stored immutable
// byte slice with zero marshal work and zero per-request allocation.
// Cold responses (cached=false in the envelope) are never stored — only
// the leader of a flight sees one, so the body could never be reused.
type sweepEntry struct {
	results []core.Result

	mu      sync.Mutex
	dropped bool // evicted/invalidated: stop charging resident bytes
	body    [numBodyKinds][]byte
}

// body returns the entry's pre-encoded response of the given kind,
// building (and charging to the server's resident-bytes gauge) on first
// use. build runs outside the entry lock; racing builders may both
// encode, but exactly one result is stored and charged.
func (s *Server) body(e *sweepEntry, k bodyKind, ctr *encCounter, build func() []byte) []byte {
	e.mu.Lock()
	if b := e.body[k]; b != nil {
		e.mu.Unlock()
		return b
	}
	e.mu.Unlock()

	start := time.Now()
	b := build()
	ctr.encodes.Add(1)
	ctr.encodeNs.Add(time.Since(start).Nanoseconds())

	e.mu.Lock()
	if e.body[k] == nil {
		e.body[k] = b
		if !e.dropped {
			s.encResident.Add(int64(len(b)))
		}
	} else {
		b = e.body[k]
	}
	e.mu.Unlock()
	return b
}

// drop releases the entry's encoded bodies from the resident-bytes
// gauge; the result cache calls it when the entry is evicted, replaced,
// or invalidated. Idempotent; a build racing a drop charges nothing.
func (e *sweepEntry) drop(resident *atomic.Int64) {
	e.mu.Lock()
	if !e.dropped {
		e.dropped = true
		for _, b := range e.body {
			resident.Add(-int64(len(b)))
		}
	}
	e.mu.Unlock()
}

// encCounter tallies one content type's serving traffic: responses and
// bytes written, and how many slab/row encodes ran for how long. A warm
// hit adds responses and bytes but no encode time — the encode columns
// measure exactly the marshal work the encoded-slab cache exists to
// eliminate.
type encCounter struct {
	responses atomic.Int64
	bytes     atomic.Int64
	encodes   atomic.Int64
	encodeNs  atomic.Int64
}

func (c *encCounter) snapshot() map[string]int64 {
	return map[string]int64{
		"responses":    c.responses.Load(),
		"bytes_served": c.bytes.Load(),
		"encodes":      c.encodes.Load(),
		"encode_ns":    c.encodeNs.Load(),
	}
}

// encodingStats is the /v1/stats "encoding" section.
func (s *Server) encodingStats() map[string]any {
	return map[string]any{
		"json":                         s.encJSON.snapshot(),
		"ndjson":                       s.encNDJSON.snapshot(),
		"columnar":                     s.encCol.snapshot(),
		"encoded_cache_resident_bytes": s.encResident.Load(),
	}
}

// writeBody writes one fully-encoded response body and tallies it. The
// body reaches the client as a single Write — on the warm path this is
// the whole response cost.
func (s *Server) writeBody(w http.ResponseWriter, contentType string, ctr *encCounter, body []byte, hdr func(http.Header)) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if hdr != nil {
		hdr(h)
	}
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(body)
	ctr.responses.Add(1)
	ctr.bytes.Add(int64(n))
}

// sweepEnvelope and characterizeEnvelope build the JSON response values
// exactly as the pre-columnar handlers did — marshalJSONBody renders
// them byte-identically to writeJSON, which is what keeps cached warm
// bodies indistinguishable from freshly marshalled ones.
func sweepEnvelope(info MatrixInfo, cached bool, rs []core.Result) map[string]any {
	return map[string]any{"matrix": info, "cached": cached, "results": toResultsJSON(rs)}
}

func characterizeEnvelope(info MatrixInfo, cached bool, r core.Result) map[string]any {
	return map[string]any{"matrix": info, "cached": cached, "result": toResultJSON(r)}
}

// marshalJSONBody renders v with the same encoder settings writeJSON
// uses (two-space indent, trailing newline, HTML escaping), so a body
// built here and one written by writeJSON are byte-identical.
func marshalJSONBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

// SweepBodyJSON builds the full /v1/sweep JSON response body for a
// result slab — exported so the bench harness can time the serving
// encode cost (the "JSON slab") outside an HTTP process.
func SweepBodyJSON(info MatrixInfo, cached bool, rs []core.Result) []byte {
	return marshalJSONBody(sweepEnvelope(info, cached, rs))
}

// rowBufPool recycles NDJSON row buffers across streams: each stream
// borrows one buffer for its lifetime and appends every row into it,
// so steady-state row writing allocates nothing.
var rowBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// appendResultNDJSON appends one result row encoded exactly as
// json.NewEncoder(w).Encode(toResultJSON(r)) would emit it — same field
// order, same omitempty elisions, same float formatting, same trailing
// newline — without allocating. The parity test asserts byte equality
// against encoding/json across randomized rows; non-finite floats are
// the one documented divergence (encoding/json fails the whole row,
// this encoder never sees one from the engine).
func appendResultNDJSON(b []byte, r core.Result) []byte {
	b = append(b, `{"workload":`...)
	b = appendJSONString(b, r.Workload)
	b = append(b, `,"format":`...)
	b = appendJSONString(b, r.Format.String())
	b = append(b, `,"p":`...)
	b = strconv.AppendInt(b, int64(r.P), 10)
	b = append(b, `,"kernel":`...)
	b = appendJSONString(b, r.Kernel)
	b = append(b, `,"iterations":`...)
	b = strconv.AppendInt(b, int64(r.Iterations), 10)
	b = append(b, `,"backend":`...)
	b = appendJSONString(b, r.Backend)
	b = append(b, `,"measured":`...)
	b = strconv.AppendBool(b, r.Measured)
	if r.MeasuredRuns != 0 {
		b = append(b, `,"measured_runs":`...)
		b = strconv.AppendInt(b, int64(r.MeasuredRuns), 10)
	}
	if r.Threads != 0 {
		b = append(b, `,"threads":`...)
		b = strconv.AppendInt(b, int64(r.Threads), 10)
	}
	if r.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	if r.DegradedReason != "" {
		b = append(b, `,"degraded_reason":`...)
		b = appendJSONString(b, r.DegradedReason)
	}
	b = append(b, `,"ns_per_nnz":`...)
	b = appendJSONFloat(b, r.NsPerNNZ)
	b = append(b, `,"sigma":`...)
	b = appendJSONFloat(b, r.Sigma)
	b = append(b, `,"balance_ratio":`...)
	b = appendJSONFloat(b, r.BalanceRatio)
	b = append(b, `,"mean_mem_cycles":`...)
	b = appendJSONFloat(b, r.MeanMemCycles)
	b = append(b, `,"mean_compute_cycles":`...)
	b = appendJSONFloat(b, r.MeanComputeCycles)
	b = append(b, `,"seconds":`...)
	b = appendJSONFloat(b, r.Seconds)
	b = append(b, `,"throughput_bps":`...)
	b = appendJSONFloat(b, r.ThroughputBps)
	b = append(b, `,"bandwidth_util":`...)
	b = appendJSONFloat(b, r.BandwidthUtil)
	b = append(b, `,"dot_engine_util":`...)
	b = appendJSONFloat(b, r.DotEngineUtil)
	b = append(b, `,"inner_pipeline_util":`...)
	b = appendJSONFloat(b, r.InnerPipelineUtil)
	b = append(b, `,"nonzero_tiles":`...)
	b = strconv.AppendInt(b, int64(r.NonZeroTiles), 10)
	b = append(b, `,"total_tiles":`...)
	b = strconv.AppendInt(b, int64(r.TotalTiles), 10)
	b = append(b, `,"total_bytes":`...)
	b = strconv.AppendInt(b, int64(r.TotalBytes), 10)
	b = append(b, `,"dynamic_energy_j":`...)
	b = appendJSONFloat(b, r.DynamicEnergyJ)
	b = append(b, `,"static_energy_j":`...)
	b = appendJSONFloat(b, r.StaticEnergyJ)
	b = append(b, `,"dynamic_w":`...)
	b = appendJSONFloat(b, r.Synth.DynamicW)
	b = append(b, `,"static_w":`...)
	b = appendJSONFloat(b, r.Synth.StaticW)
	b = append(b, `,"bram_18k":`...)
	b = strconv.AppendInt(b, int64(r.Synth.BRAM18K), 10)
	b = append(b, `,"ff":`...)
	b = strconv.AppendInt(b, int64(r.Synth.FF), 10)
	b = append(b, `,"lut":`...)
	b = strconv.AppendInt(b, int64(r.Synth.LUT), 10)
	return append(b, '}', '\n')
}

// appendJSONString appends s as a JSON string. The fast path covers
// printable ASCII with nothing to escape under encoding/json's default
// rules (which HTML-escape <, >, &); anything else — control bytes,
// quotes, backslashes, DEL, multi-byte UTF-8 — falls back to
// encoding/json itself, so escaping semantics cannot drift.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			blob, err := json.Marshal(s)
			if err != nil {
				blob = []byte(`""`)
			}
			return append(b, blob...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat appends f formatted exactly as encoding/json formats
// a float64: shortest round-trip representation, fixed notation inside
// [1e-6, 1e21), 'e' notation outside with the exponent's leading zero
// stripped. The caller guarantees f is finite (encoding/json errors on
// NaN/Inf; engine results never carry them).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json rewrites e.g. 1e-09 to 1e-9.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}
