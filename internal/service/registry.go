// Package service is the long-running characterization front-end: an
// HTTP/JSON API over the core engine that keeps plans and sweep results
// warm across requests. It holds a named matrix registry (built-in
// workload suites plus content-hash-addressed Matrix Market uploads), a
// singleflight-deduplicated LRU result cache, and the advisor endpoint —
// the serving layer that makes the encode-once plan cache pay off for
// many concurrent clients instead of one CLI invocation.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"copernicus/internal/matrix"
)

// MatrixInfo is the registry's public description of one matrix.
type MatrixInfo struct {
	ID      string  `json:"id"`
	Name    string  `json:"name"`
	Source  string  `json:"source"` // "builtin" or "upload"
	Kind    string  `json:"kind,omitempty"`
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	NNZ     int     `json:"nnz"`
	Density float64 `json:"density"`
}

// entry pairs the public description with the matrix itself.
type entry struct {
	info MatrixInfo
	m    *matrix.CSR
}

// Registry maps stable IDs (and case-insensitive names) to matrices.
// Built-in suite matrices are registered under their workload IDs at
// server construction; uploads are addressed by a content hash of their
// canonical CSR form, so re-uploading the same matrix — even with
// different comments, whitespace, or entry order — dedupes to the same
// ID and therefore the same warm plans and cached sweeps.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*entry
	byName map[string]string // lower-cased name -> id
	order  []string          // registration order, for stable listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[string]*entry),
		byName: make(map[string]string),
	}
}

// ContentID returns the content-hash address of a matrix: sha256 over
// its canonical CSR arrays (dimensions, row pointers, columns, values),
// truncated to 128 bits and prefixed "m-". 128 bits keeps accidental or
// ground-out collisions out of reach — a collision would silently serve
// one matrix's results for another.
func ContentID(m *matrix.CSR) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(m.Rows)
	writeInt(m.Cols)
	for _, v := range m.RowPtr {
		writeInt(v)
	}
	for _, c := range m.Col {
		writeInt(c)
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("m-%x", h.Sum(nil)[:16])
}

// register inserts an entry, returning the existing one when the ID is
// already present (dedup) — the bool reports whether it existed. Name
// claims are first-wins: a later matrix whose name collides with an
// existing one keeps its ID address but cannot hijack the name — an
// upload named after a built-in must not silently redirect requests for
// that built-in.
func (r *Registry) register(info MatrixInfo, m *matrix.CSR) (MatrixInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.byID[info.ID]; ok {
		return prior.info, true
	}
	info.Rows, info.Cols, info.NNZ, info.Density = m.Rows, m.Cols, m.NNZ(), m.Density()
	// Reserve the lower-cased ID in the name map too: byID lookups are
	// case-sensitive, so without the reservation an upload could claim
	// "kr" as a display name and hijack case-insensitive lookups of the
	// built-in "KR".
	if key := strings.ToLower(info.ID); r.byName[key] == "" {
		r.byName[key] = info.ID
	}
	if key := strings.ToLower(info.Name); key != "" && key != strings.ToLower(info.ID) {
		if _, taken := r.byName[key]; taken {
			info.Name = info.ID // collision: stay addressable by ID only
		} else {
			r.byName[key] = info.ID
		}
	}
	r.byID[info.ID] = &entry{info: info, m: m}
	r.order = append(r.order, info.ID)
	return info, false
}

// AddBuiltin registers a built-in suite matrix under its workload ID.
func (r *Registry) AddBuiltin(id, name, kind string, m *matrix.CSR) MatrixInfo {
	info, _ := r.register(MatrixInfo{ID: id, Name: name, Source: "builtin", Kind: kind}, m)
	return info
}

// AddUpload registers an uploaded matrix under its content hash. The
// optional display name is kept only for the first upload of a given
// content; duplicates return the original entry with existed=true.
func (r *Registry) AddUpload(name string, m *matrix.CSR) (MatrixInfo, bool) {
	id := ContentID(m)
	if name == "" {
		name = id
	}
	return r.register(MatrixInfo{ID: id, Name: name, Source: "upload"}, m)
}

// Lookup resolves a reference — an ID, or a registered name
// (case-insensitive) — to a registry entry.
func (r *Registry) Lookup(ref string) (MatrixInfo, *matrix.CSR, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[ref]
	if !ok {
		if id, named := r.byName[strings.ToLower(ref)]; named {
			e, ok = r.byID[id]
		}
	}
	if !ok {
		return MatrixInfo{}, nil, false
	}
	return e.info, e.m, true
}

// Remove deletes an entry by ID, returning its matrix so the caller can
// release engine plans keyed to it.
func (r *Registry) Remove(id string) (MatrixInfo, *matrix.CSR, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return MatrixInfo{}, nil, false
	}
	delete(r.byID, id)
	// Release the name and ID reservations only if this entry actually
	// owns them (it may have lost a first-wins collision and never
	// claimed the name).
	for _, key := range []string{strings.ToLower(e.info.Name), strings.ToLower(id)} {
		if key != "" && r.byName[key] == id {
			delete(r.byName, key)
		}
	}
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return e.info, e.m, true
}

// List returns every registered matrix in registration order.
func (r *Registry) List() []MatrixInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MatrixInfo, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id].info)
	}
	return out
}

// Len returns the number of registered matrices.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
