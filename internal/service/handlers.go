package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"copernicus/internal/backend"
	"copernicus/internal/cluster"
	"copernicus/internal/core"
	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/mtx"
	"copernicus/internal/scenario"
	"copernicus/internal/wire"
	"copernicus/internal/workloads"
)

// ptServiceSweep lets the chaos suite fail (or panic) the compute phase
// of a sweep request after validation — exercising the in-band NDJSON
// error line, the batch error statuses, and the singleflight cache's
// panic containment.
var ptServiceSweep = faults.Point("service.sweep")

// Request-shape bounds: a sweep request fans out |formats| × |partitions|
// characterizations, so both lists are capped, and partition sizes are
// bounded because a p×p dense tile is allocated per partition.
const (
	maxRequestFormats    = 16
	maxRequestPartitions = 8
	maxPartitionSize     = 1024
	// maxKernelIters caps a kernel spec's iteration/column parameter:
	// every iteration is a full pass over the encoded operand, so the
	// parameter multiplies compute fan-out the way the format and
	// partition lists do (scenario.MaxN is a grammar bound, not an
	// admission policy).
	maxKernelIters = 4096
)

// resultJSON is the wire form of one characterization point. Backend
// names the costing backend; Measured marks seconds (and derived rates)
// as wall-clock measurements; MeasuredRuns/Threads document a measured
// backend's methodology and are omitted for modelled results.
type resultJSON struct {
	Workload          string  `json:"workload"`
	Format            string  `json:"format"`
	P                 int     `json:"p"`
	Kernel            string  `json:"kernel"`
	Iterations        int     `json:"iterations"`
	Backend           string  `json:"backend"`
	Measured          bool    `json:"measured"`
	MeasuredRuns      int     `json:"measured_runs,omitempty"`
	Threads           int     `json:"threads,omitempty"`
	Degraded          bool    `json:"degraded,omitempty"`
	DegradedReason    string  `json:"degraded_reason,omitempty"`
	NsPerNNZ          float64 `json:"ns_per_nnz"`
	Sigma             float64 `json:"sigma"`
	BalanceRatio      float64 `json:"balance_ratio"`
	MeanMemCycles     float64 `json:"mean_mem_cycles"`
	MeanComputeCycles float64 `json:"mean_compute_cycles"`
	Seconds           float64 `json:"seconds"`
	ThroughputBps     float64 `json:"throughput_bps"`
	BandwidthUtil     float64 `json:"bandwidth_util"`
	DotEngineUtil     float64 `json:"dot_engine_util"`
	InnerPipelineUtil float64 `json:"inner_pipeline_util"`
	NonZeroTiles      int     `json:"nonzero_tiles"`
	TotalTiles        int     `json:"total_tiles"`
	TotalBytes        int     `json:"total_bytes"`
	DynamicEnergyJ    float64 `json:"dynamic_energy_j"`
	StaticEnergyJ     float64 `json:"static_energy_j"`
	DynamicW          float64 `json:"dynamic_w"`
	StaticW           float64 `json:"static_w"`
	BRAM18K           int     `json:"bram_18k"`
	FF                int     `json:"ff"`
	LUT               int     `json:"lut"`
}

func toResultJSON(r core.Result) resultJSON {
	return resultJSON{
		Workload:          r.Workload,
		Format:            r.Format.String(),
		P:                 r.P,
		Kernel:            r.Kernel,
		Iterations:        r.Iterations,
		Backend:           r.Backend,
		Measured:          r.Measured,
		MeasuredRuns:      r.MeasuredRuns,
		Threads:           r.Threads,
		Degraded:          r.Degraded,
		DegradedReason:    r.DegradedReason,
		NsPerNNZ:          r.NsPerNNZ,
		Sigma:             r.Sigma,
		BalanceRatio:      r.BalanceRatio,
		MeanMemCycles:     r.MeanMemCycles,
		MeanComputeCycles: r.MeanComputeCycles,
		Seconds:           r.Seconds,
		ThroughputBps:     r.ThroughputBps,
		BandwidthUtil:     r.BandwidthUtil,
		DotEngineUtil:     r.DotEngineUtil,
		InnerPipelineUtil: r.InnerPipelineUtil,
		NonZeroTiles:      r.NonZeroTiles,
		TotalTiles:        r.TotalTiles,
		TotalBytes:        r.TotalBytes,
		DynamicEnergyJ:    r.DynamicEnergyJ,
		StaticEnergyJ:     r.StaticEnergyJ,
		DynamicW:          r.Synth.DynamicW,
		StaticW:           r.Synth.StaticW,
		BRAM18K:           r.Synth.BRAM18K,
		FF:                r.Synth.FF,
		LUT:               r.Synth.LUT,
	}
}

func toResultsJSON(rs []core.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = toResultJSON(r)
	}
	return out
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the service's uniform error shape.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseKinds resolves format names case-insensitively, rejecting
// duplicates; empty defaults to the paper's measured core set.
func parseKinds(names []string) ([]formats.Kind, error) {
	if len(names) == 0 {
		return formats.Core(), nil
	}
	if len(names) > maxRequestFormats {
		return nil, fmt.Errorf("at most %d formats per request, got %d", maxRequestFormats, len(names))
	}
	out := make([]formats.Kind, 0, len(names))
	for _, name := range names {
		found := false
		for _, k := range formats.All() {
			if strings.EqualFold(k.String(), name) {
				for _, prior := range out {
					if prior == k {
						return nil, fmt.Errorf("duplicate format %q", name)
					}
				}
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown format %q", name)
		}
	}
	return out, nil
}

// parsePartitions validates partition sizes, rejecting duplicates; empty
// defaults to the paper's {8, 16, 32} sweep.
func parsePartitions(ps []int) ([]int, error) {
	if len(ps) == 0 {
		return []int{8, 16, 32}, nil
	}
	if len(ps) > maxRequestPartitions {
		return nil, fmt.Errorf("at most %d partition sizes per request, got %d", maxRequestPartitions, len(ps))
	}
	for i, p := range ps {
		if p < 1 || p > maxPartitionSize {
			return nil, fmt.Errorf("partition size %d outside [1, %d]", p, maxPartitionSize)
		}
		for _, prior := range ps[:i] {
			if prior == p {
				return nil, fmt.Errorf("duplicate partition size %d", p)
			}
		}
	}
	return ps, nil
}

// parseKernel resolves the kernel spec parameter of a request; empty
// defaults to spmv, the pre-kernel-axis behavior of every endpoint. The
// grammar (and its bound) is scenario.Parse's; the service additionally
// caps the iteration/column parameter, since it multiplies compute
// fan-out like the format and partition lists do.
func parseKernel(raw string) (scenario.Spec, error) {
	if raw == "" {
		return scenario.Default(), nil
	}
	sc, err := scenario.Parse(raw)
	if err != nil {
		return scenario.Spec{}, err
	}
	if sc.N > maxKernelIters {
		return scenario.Spec{}, fmt.Errorf("kernel %q parameter exceeds %d", raw, maxKernelIters)
	}
	return sc, nil
}

// sweepKey names one cached sweep: the matrix ID leads (so deletion can
// invalidate by prefix), then the backend ID, then the kernel spec, then
// the format and partition lists in request order. The backend is part of
// the key because the stored results carry its costing — analytic and
// native sweeps of one point are distinct cache entries that never
// cross-contaminate — while the engine plan cache below stays shared, so
// a second backend on a warm point pays no re-partition or re-encode.
// A native backend additionally keys its effective thread count, since
// the measured seconds depend on the SpMV fan-out — one- and
// eight-thread measurements of a point must never share an entry. The
// kernel spec is always present (spmv included), since the stored Seconds
// is the kernel's amortized/measured cost — a cg:60 entry must never
// answer an spmv request. Format/partition order is part of the key
// because the stored results mirror it — [CSR,ELL] and [ELL,CSR] cache
// separately.
func sweepKey(matrixID string, b backend.Backend, sc scenario.Spec, kinds []formats.Kind, ps []int) string {
	var sb strings.Builder
	sb.WriteString(matrixID)
	sb.WriteString("|b=")
	sb.WriteString(b.ID())
	if nb, ok := b.(*backend.Native); ok {
		sb.WriteString("|t=")
		sb.WriteString(strconv.Itoa(max(nb.Threads, 1)))
	}
	sb.WriteString("|k=")
	sb.WriteString(sc.String())
	sb.WriteString("|f=")
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k.String())
	}
	sb.WriteString("|p=")
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(p))
	}
	return sb.String()
}

// resolveBackend resolves a backend selection plus the optional SpMV
// thread count. threads == 0 means unset (the native default of 1);
// any explicit count is native-only — measured fan-out is meaningless
// for the analytic model — and bounded by GOMAXPROCS, since goroutines
// beyond the machine width could only time-slice and distort the
// measurement. The thread count lands in the backend value itself, so
// sweepKey can derive its cache-key component from the same source the
// measurement uses.
func resolveBackend(name string, threads int) (backend.Backend, error) {
	b, err := backend.For(name)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		return b, nil
	}
	nb, ok := b.(*backend.Native)
	if !ok {
		return nil, fmt.Errorf("threads applies only to the native backend, not %q", b.ID())
	}
	if maxT := runtime.GOMAXPROCS(0); threads < 1 || threads > maxT {
		return nil, fmt.Errorf("threads %d outside [1, GOMAXPROCS=%d]", threads, maxT)
	}
	nb.Threads = threads
	return nb, nil
}

// queryThreads parses the optional threads= query parameter (0 when
// absent). An explicit value must be a positive integer; the upper
// bound and backend applicability are resolveBackend's checks.
func queryThreads(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	t, err := strconv.Atoi(raw)
	if err != nil || t < 1 {
		return 0, fmt.Errorf("bad threads %q (want a positive integer)", raw)
	}
	return t, nil
}

// errMatrixDeleted marks a sweep that lost a race with DELETE — a
// client-attributable 404, not a server fault.
var errMatrixDeleted = errors.New("matrix deleted")

// clusterInternal reports whether a request was dispatched by another
// coordinator. Such requests always compute locally — the guard that
// keeps a node listed in its own (or a peer coordinator's) worker list
// from fanning out again in a loop.
func clusterInternal(r *http.Request) bool {
	return r.Header.Get(cluster.InternalHeader) != ""
}

// execFor selects the group executor for one sweep: on a coordinator,
// external requests fan groups out to the fleet (with the engine as the
// per-group fallback); coordinator-internal requests and plain servers
// run the engine directly.
func (s *Server) execFor(b backend.Backend, internal bool) core.GroupExecutor {
	local := s.engine.LocalExecutor(b)
	if s.cluster == nil || internal {
		return local
	}
	threads := 0
	if nb, ok := b.(*backend.Native); ok {
		threads = nb.Threads
	}
	return s.cluster.Executor(b.ID(), threads, local)
}

// computeSweep is the engine half of every sweep path — synchronous,
// streamed, and job alike: the streaming sweep over kinds × ps for one
// matrix through the given group executor (local engine or cluster
// fan-out), with results optionally mirrored to onRow as groups
// complete, followed by the first half of the delete-race discipline. A
// DELETE may have raced the sweep (its DropPlansFor ran before the
// sweep re-inserted the plans), so registration is re-checked before
// results are considered valid; a deleted matrix is never re-pinned by
// the engine (and errors are never cached).
func (s *Server) computeSweep(ctx context.Context, info MatrixInfo, m *matrix.CSR, exec core.GroupExecutor, sc scenario.Spec, kinds []formats.Kind, ps []int, onRow func(core.Result)) ([]core.Result, error) {
	if err := ptServiceSweep.Hit(); err != nil {
		return nil, err
	}
	ws := []workloads.Workload{{ID: info.ID, M: m}}
	out := make([]core.Result, 0, len(kinds)*len(ps))
	err := s.engine.SweepStreamExecWith(ctx, exec, ws, []scenario.Spec{sc}, kinds, ps, func(r core.Result) error {
		out = append(out, r)
		if onRow != nil {
			onRow(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if _, _, still := s.reg.Lookup(info.ID); !still {
		s.engine.DropPlansFor(m)
		return nil, fmt.Errorf("matrix %q: %w", info.ID, errMatrixDeleted)
	}
	return out, nil
}

// sweepEpilogue closes the remaining delete window after results landed
// in the cache: a DELETE between the compute's re-check and the insert
// has already run its invalidation, so the entry (and the plans the
// sweep re-inserted) would outlive the matrix. Re-checking after the
// insert means either the delete's invalidation ran after the insert
// and cleaned it, or this check sees the deletion and cleans up itself.
// Shared by the batch, streamed, and job sweep paths.
func (s *Server) sweepEpilogue(info MatrixInfo, m *matrix.CSR) error {
	if _, _, still := s.reg.Lookup(info.ID); !still {
		s.cache.InvalidatePrefix(info.ID + "|")
		s.engine.DropPlansFor(m)
		return fmt.Errorf("matrix %q: %w", info.ID, errMatrixDeleted)
	}
	return nil
}

// runSweep computes (or returns cached) results for one matrix across
// kinds × ps under the given backend, singleflight-deduplicated on the
// canonical key (which embeds the backend ID, isolating each backend's
// cache entries). The caller's ctx governs how long it *waits*; the
// compute itself runs under the cache's detached, ref-counted context,
// so it is aborted only when every request interested in the key —
// leader and waiters alike — has disconnected.
//
// onRow, when non-nil, observes each result as the singleflight
// *leader's* compute produces it — the streaming path's incremental
// feed. A caller that attached to another leader's flight (or hit the
// cache) gets cached=true and must replay the returned slab itself.
func (s *Server) runSweep(ctx context.Context, info MatrixInfo, exec core.GroupExecutor, b backend.Backend, sc scenario.Spec, kinds []formats.Kind, ps []int, onRow func(core.Result)) (*sweepEntry, bool, error) {
	_, m, ok := s.reg.Lookup(info.ID)
	if !ok {
		return nil, false, fmt.Errorf("matrix %q: %w", info.ID, errMatrixDeleted)
	}
	v, cached, err := s.cache.Do(ctx, sweepKey(info.ID, b, sc, kinds, ps), func(fctx context.Context) (any, error) {
		rs, err := s.computeSweep(fctx, info, m, exec, sc, kinds, ps, onRow)
		if err != nil {
			return nil, err
		}
		// The cache stores the entry, not the raw slab: warm requests of
		// each content type attach their pre-encoded response body to it.
		return &sweepEntry{results: rs}, nil
	})
	s.noteBackend(b.ID(), cached && err == nil)
	if err != nil {
		return nil, false, err
	}
	if err := s.sweepEpilogue(info, m); err != nil {
		return nil, false, err
	}
	return v.(*sweepEntry), cached, nil
}

// sweepStatus maps a runSweep error to its HTTP status: losing a race
// with DELETE is the client's 404, and asking the cycle model for a
// format it has no equations for is the client's 400 — neither is a
// server fault (and the latter is an error up the stack now, not a
// crashed goroutine). A context error means the client disconnected or
// the server is draining; 503 tells well-behaved clients to retry
// elsewhere (the disconnected ones never see it).
func sweepStatus(err error) int {
	switch {
	case errors.Is(err, errMatrixDeleted):
		return http.StatusNotFound
	case errors.Is(err, hlsim.ErrUnknownFormat), errors.Is(err, formats.ErrBadPartition):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_s": time.Since(s.start).Seconds()})
}

// handleReadyz is the load-balancer signal, distinct from healthz:
// healthz says "the process is alive" (and stays 200 through a drain so
// orchestrators don't kill a server that's finishing its work), while
// readyz says "send me traffic". It flips to 503 the moment Shutdown
// begins — before healthz ever changes — and while the job queue is
// saturated (new submissions would bounce with 429 anyway).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	queued := s.jobs.Queued()
	switch {
	case s.baseCtx.Err() != nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case queued >= s.opts.JobQueue:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "saturated", "queued": queued, "queue_cap": s.opts.JobQueue,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "queued": queued, "queue_cap": s.opts.JobQueue,
		})
	}
}

func (s *Server) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"matrices": s.reg.List()})
}

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	info, _, ok := s.reg.Lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleUploadMatrix ingests a Matrix Market body. The body size, the
// declared dimensions, and the declared entry count are all bounded
// before per-entry parsing; the parsed matrix is content-hash addressed,
// so re-uploading identical content returns the existing entry (200)
// instead of creating a new one (201).
func (s *Server) handleUploadMatrix(w http.ResponseWriter, r *http.Request) {
	// One sentinel byte past the cap distinguishes "file too large" from
	// "file malformed": a truncation that lands mid-line would otherwise
	// surface as a parse error on the partial line and mask the real
	// cause with a misleading 400.
	body := &io.LimitedReader{R: r.Body, N: s.opts.MaxUploadBytes + 1}
	m, err := mtx.ReadLimited(body, mtx.Limits{
		MaxRows:    s.opts.MaxMatrixDim,
		MaxCols:    s.opts.MaxMatrixDim,
		MaxEntries: s.opts.MaxMatrixEntries,
	})
	// The limit is uniform: an over-cap body is 413 whether the parser
	// happened to fail (truncation mid-line) or happened to succeed (a
	// complete matrix followed by truncated padding).
	if body.N <= 0 {
		writeErr(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.opts.MaxUploadBytes)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parse upload: %v", err)
		return
	}
	info, existed := s.reg.AddUpload(r.URL.Query().Get("name"), m)
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{"matrix": info, "deduplicated": existed})
}

// handleDeleteMatrix removes a matrix by ID and ends its plan lifecycle:
// the engine's cached plans for it are dropped and its cached sweeps
// invalidated. Built-in suite matrices cannot be deleted.
func (s *Server) handleDeleteMatrix(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, _, ok := s.reg.Lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", id)
		return
	}
	if info.Source == "builtin" {
		writeErr(w, http.StatusForbidden, "built-in matrix %q cannot be deleted", info.ID)
		return
	}
	_, m, ok := s.reg.Remove(info.ID)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", id)
		return
	}
	s.engine.DropPlansFor(m)
	s.cache.InvalidatePrefix(info.ID + "|")
	w.WriteHeader(http.StatusNoContent)
}

// sweepRequest is the POST /v1/sweep body. Backend selects the costing
// backend ("analytic" cycle model by default, "native" for measured
// host-CPU wall time); Threads sets the native SpMV fan-out
// (native-only, 1..GOMAXPROCS, default 1); Kernel selects the kernel
// spec the points are costed for ("spmv" by default; "cg:60", "spmm:8",
// ... — see internal/scenario).
type sweepRequest struct {
	Matrix     string   `json:"matrix"`
	Formats    []string `json:"formats,omitempty"`
	Partitions []int    `json:"partitions,omitempty"`
	Backend    string   `json:"backend,omitempty"`
	Threads    int      `json:"threads,omitempty"`
	Kernel     string   `json:"kernel,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if req.Matrix == "" {
		writeErr(w, http.StatusBadRequest, "missing \"matrix\"")
		return
	}
	s.serveSweep(w, r, req.Matrix, req.Formats, req.Partitions, req.Backend, req.Threads, req.Kernel)
}

// handleSweepGet is the query-parameter form of /v1/sweep:
// GET /v1/sweep?matrix=ID&formats=CSR,COO&partitions=8,16&backend=native
// (&threads=N for the native SpMV fan-out, &kernel=cg:60 for the kernel
// spec).
// It feeds the same serveSweep tail as the POST form — identical
// validation, canonical cache key, and response shape, so the two forms
// share entries and cannot drift apart.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var names []string
	if raw := q.Get("formats"); raw != "" {
		for _, tok := range strings.Split(raw, ",") {
			names = append(names, strings.TrimSpace(tok))
		}
	}
	var ps []int
	if raw := q.Get("partitions"); raw != "" {
		for _, tok := range strings.Split(raw, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad partition size %q", tok)
				return
			}
			ps = append(ps, p)
		}
	}
	threads, err := queryThreads(q.Get("threads"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveSweep(w, r, q.Get("matrix"), names, ps, q.Get("backend"), threads, q.Get("kernel"))
}

// serveSweep is the shared tail of both /v1/sweep forms: validate the
// matrix, format, partition, backend, and kernel selections, then answer
// either as one JSON slab (the default) or, when the request prefers
// application/x-ndjson, as a row-per-line stream flushed as each
// (workload, kernel, p) group completes.
func (s *Server) serveSweep(w http.ResponseWriter, r *http.Request, matrixID string, names []string, partitions []int, backendName string, threads int, kernel string) {
	info, _, ok := s.reg.Lookup(matrixID)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", matrixID)
		return
	}
	kinds, err := parseKinds(names)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ps, err := parsePartitions(partitions)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := resolveBackend(backendName, threads)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc, err := parseKernel(kernel)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// cache=only answers from the sweep LRU or 404s — never computes.
	// It is the peer-cache probe of the cluster fabric (a coordinator
	// consulting a breaker-open worker as a pure cache tier), and a
	// cheap cache interrogation for tooling.
	switch mode := r.URL.Query().Get("cache"); mode {
	case "":
	case "only":
		v, ok := s.cache.Get(sweepKey(info.ID, b, sc, kinds, ps))
		if !ok {
			writeErr(w, http.StatusNotFound, "cache miss")
			return
		}
		s.noteBackend(b.ID(), true)
		entry := v.(*sweepEntry)
		if wantsColumnar(r) {
			s.writeColumnar(w, entry, true, func(h http.Header) {
				h.Set(headerMatrix, info.ID)
			})
			return
		}
		body := s.body(entry, bodyJSONSweep, &s.encJSON, func() []byte {
			return marshalJSONBody(sweepEnvelope(info, true, entry.results))
		})
		s.writeBody(w, "application/json", &s.encJSON, body, nil)
		return
	default:
		writeErr(w, http.StatusBadRequest, "bad cache mode %q (want \"only\")", mode)
		return
	}
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	exec := s.execFor(b, clusterInternal(r))
	if wantsNDJSON(r) {
		// Streaming keeps precedence over the columnar batch body: a
		// client listing both asked for incremental delivery.
		s.streamSweep(ctx, w, info, exec, b, sc, kinds, ps)
		return
	}
	entry, cached, err := s.runSweep(ctx, info, exec, b, sc, kinds, ps, nil)
	if err != nil {
		writeErr(w, sweepStatus(err), "sweep: %v", err)
		return
	}
	if wantsColumnar(r) {
		s.writeColumnar(w, entry, cached, func(h http.Header) {
			h.Set(headerMatrix, info.ID)
		})
		return
	}
	if cached {
		// Warm hit: one write of the entry's immutable pre-encoded body —
		// no marshal, no per-request allocation. The body embeds
		// cached=true, which every warm response carries by definition.
		body := s.body(entry, bodyJSONSweep, &s.encJSON, func() []byte {
			return marshalJSONBody(sweepEnvelope(info, true, entry.results))
		})
		s.writeBody(w, "application/json", &s.encJSON, body, nil)
		return
	}
	// Cold: the leader's one-and-only cached=false response; the body
	// can never be reused, so marshal straight out (byte-identical to
	// the warm encoder) without storing it.
	s.writeJSONCounted(w, sweepEnvelope(info, false, entry.results))
}

// writeColumnar answers with an entry's columnar slab — encoded once
// per entry, then served as immutable bytes. The JSON envelope's
// metadata moves to response headers since the body is the raw slab.
func (s *Server) writeColumnar(w http.ResponseWriter, entry *sweepEntry, cached bool, hdr func(http.Header)) {
	body := s.body(entry, bodyColumnar, &s.encCol, func() []byte {
		return wire.Encode(entry.results)
	})
	s.writeBody(w, wire.ContentType, &s.encCol, body, func(h http.Header) {
		h.Set(headerCached, strconv.FormatBool(cached))
		h.Set(headerRows, strconv.Itoa(len(entry.results)))
		if hdr != nil {
			hdr(h)
		}
	})
}

// writeJSONCounted is writeJSON plus the encoding counters — the cold
// JSON path, where the encode is paid exactly once per cache entry.
func (s *Server) writeJSONCounted(w http.ResponseWriter, v any) {
	start := time.Now()
	body := marshalJSONBody(v)
	s.encJSON.encodes.Add(1)
	s.encJSON.encodeNs.Add(time.Since(start).Nanoseconds())
	s.writeBody(w, "application/json", &s.encJSON, body, nil)
}

// wantsNDJSON reports whether the request negotiated newline-delimited
// JSON streaming.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamSweep answers a sweep as NDJSON: one result row per line,
// flushed per row, emitted in the same deterministic order as the batch
// response as soon as each (workload, p) group completes — a client sees
// its first rows while later groups are still computing. A warm request
// streams straight from the cached slab; a cold one runs through the
// same singleflighted runSweep as the batch path (concurrent identical
// requests share one engine sweep: the leader streams incrementally and
// populates the cache, attached callers replay the finished slab) under
// the joined request/server context. A mid-stream failure truncates the
// row stream and appends a final {"error": ...} line — the rows before
// it are still a valid prefix of the batch result set; a failure before
// any row was written is reported with a proper HTTP status instead,
// exactly like the batch form.
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, info MatrixInfo, exec core.GroupExecutor, b backend.Backend, sc scenario.Spec, kinds []formats.Kind, ps []int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	s.encNDJSON.responses.Add(1)

	// Rows are encoded into one pooled buffer reused for the stream's
	// lifetime — the append encoder is byte-identical to encoding/json
	// and allocates nothing per row (the old per-row path allocated a
	// resultJSON box plus encoder scratch for every line).
	bufp := rowBufPool.Get().(*[]byte)
	var encNs int64
	defer func() {
		s.encNDJSON.encodeNs.Add(encNs)
		*bufp = (*bufp)[:0]
		rowBufPool.Put(bufp)
	}()

	emitted := 0
	emitDead := false
	emit := func(r core.Result) {
		if emitDead {
			return
		}
		start := time.Now()
		*bufp = appendResultNDJSON((*bufp)[:0], r)
		encNs += time.Since(start).Nanoseconds()
		s.encNDJSON.encodes.Add(1)
		n, err := w.Write(*bufp)
		s.encNDJSON.bytes.Add(int64(n))
		if err != nil {
			// This client is gone; keep computing silently — as the
			// singleflight leader the slab still serves attached callers
			// and warms the cache.
			emitDead = true
			return
		}
		emitted++
		if flusher != nil {
			flusher.Flush()
		}
	}

	key := sweepKey(info.ID, b, sc, kinds, ps)
	if v, ok := s.cache.Get(key); ok {
		s.noteBackend(b.ID(), true)
		for _, r := range v.(*sweepEntry).results {
			emit(r)
		}
		return
	}

	entry, cached, err := s.runSweep(ctx, info, exec, b, sc, kinds, ps, emit)
	if err != nil {
		if emitted == 0 {
			// Nothing on the wire yet: a real status line (404/400/503)
			// beats an in-band error masquerading as a 200.
			writeErr(w, sweepStatus(err), "sweep: %v", err)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf("sweep: %v", err)})
		return
	}
	if cached {
		// We attached to another caller's in-flight sweep (or raced a
		// fresh cache insert): our emit never saw the leader's rows, so
		// replay the slab.
		for _, r := range entry.results {
			emit(r)
		}
	}
}

// handleCharacterize runs one (matrix, format, p) point:
// GET /v1/characterize?matrix=ID&format=CSR&p=16&backend=analytic|native
// (&threads=N for the native SpMV fan-out, &kernel=cg:60 for the kernel
// spec).
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	info, _, ok := s.reg.Lookup(q.Get("matrix"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", q.Get("matrix"))
		return
	}
	name := q.Get("format")
	if name == "" {
		name = "CSR"
	}
	kinds, err := parseKinds([]string{name})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := queryInt(q.Get("p"), 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad p: %v", err)
		return
	}
	ps, err := parsePartitions([]int{p})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	threads, err := queryThreads(q.Get("threads"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := resolveBackend(q.Get("backend"), threads)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc, err := parseKernel(q.Get("kernel"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	entry, cached, err := s.runSweep(ctx, info, s.execFor(b, clusterInternal(r)), b, sc, kinds, ps, nil)
	if err != nil {
		writeErr(w, sweepStatus(err), "characterize: %v", err)
		return
	}
	if wantsColumnar(r) {
		s.writeColumnar(w, entry, cached, func(h http.Header) {
			h.Set(headerMatrix, info.ID)
		})
		return
	}
	if cached {
		// Characterize shares cache keys with one-point sweeps but
		// answers a different envelope — a distinct body slot keeps the
		// two warm bodies from colliding on one entry.
		body := s.body(entry, bodyJSONCharacterize, &s.encJSON, func() []byte {
			return marshalJSONBody(characterizeEnvelope(info, true, entry.results[0]))
		})
		s.writeBody(w, "application/json", &s.encJSON, body, nil)
		return
	}
	s.writeJSONCounted(w, characterizeEnvelope(info, false, entry.results[0]))
}

// handleAdvise recommends the best format for a (matrix, p) point:
// GET /v1/advise?matrix=ID&p=16&objective=balanced|latency&backend=
// analytic|native (native ranks by measured host wall time, with
// &threads=N selecting its SpMV fan-out; &kernel=cg:60 ranks by the
// kernel's amortized/measured cost instead of one SpMV). The sweep
// behind it flows through the same cache as /v1/sweep — a prior sweep of
// the sparse formats at the same (kernel, p) makes the advice free, and
// concurrent advise calls share one engine run.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	info, m, ok := s.reg.Lookup(q.Get("matrix"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", q.Get("matrix"))
		return
	}
	p, err := queryInt(q.Get("p"), 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad p: %v", err)
		return
	}
	ps, err := parsePartitions([]int{p})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var obj core.Objective
	switch name := q.Get("objective"); name {
	case "", "balanced":
		obj = core.BalancedObjective()
	case "latency":
		obj = core.LatencyObjective()
	default:
		writeErr(w, http.StatusBadRequest, "unknown objective %q (want balanced or latency)", name)
		return
	}

	threads, err := queryThreads(q.Get("threads"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := resolveBackend(q.Get("backend"), threads)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc, err := parseKernel(q.Get("kernel"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.computeCtx(r)
	defer cancel()
	entry, cached, err := s.runSweep(ctx, info, s.execFor(b, clusterInternal(r)), b, sc, formats.Sparse(), ps, nil)
	if err != nil {
		writeErr(w, sweepStatus(err), "advise: %v", err)
		return
	}
	rec, err := core.Rank(entry.results, obj)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "advise: %v", err)
		return
	}
	ranking := make([]string, len(rec.Ranking))
	for i, k := range rec.Ranking {
		ranking[i] = k.String()
	}
	class := core.Classify(m)
	static, _, why := core.StaticAdvice(class)
	if wantsColumnar(r) {
		// The advice's result rows as the raw columnar slab — the fattest
		// part of the JSON envelope by far — with the verdict metadata in
		// headers. Encoded per request: the ranked row order depends on
		// the objective, which is not part of the sweep cache key.
		start := time.Now()
		body := wire.Encode(rec.Results)
		s.encCol.encodes.Add(1)
		s.encCol.encodeNs.Add(time.Since(start).Nanoseconds())
		s.writeBody(w, wire.ContentType, &s.encCol, body, func(h http.Header) {
			h.Set(headerMatrix, info.ID)
			h.Set(headerCached, strconv.FormatBool(cached))
			h.Set(headerRows, strconv.Itoa(len(rec.Results)))
			h.Set(headerAdviseFormat, rec.Format.String())
			h.Set(headerAdviseRanking, strings.Join(ranking, ","))
			h.Set(headerAdviseClass, class.String())
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matrix":        info,
		"p":             p,
		"backend":       b.ID(),
		"kernel":        sc.String(),
		"cached":        cached,
		"format":        rec.Format.String(),
		"reason":        rec.Reason,
		"ranking":       ranking,
		"results":       toResultsJSON(rec.Results),
		"class":         class.String(),
		"static_advice": map[string]string{"format": static.String(), "rationale": why},
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"uptime_s":     time.Since(s.start).Seconds(),
		"matrices":     s.reg.Len(),
		"workers":      s.engine.Workers(),
		"engine_plans": s.engine.PlanStats(),
		"sweep_cache":  s.cache.Stats(),
		"backends":     s.backendStats(),
		"encoding":     s.encodingStats(),
		"failures": map[string]any{
			"handler_panics": s.panics.Load(),
			"jobs":           s.jobs.Stats(),
			"native_measure": backend.NativeMeasureStats(),
		},
	}
	if s.cluster != nil {
		stats["cluster"] = s.cluster.Stats()
	}
	writeJSON(w, http.StatusOK, stats)
}

// queryInt parses an optional integer query parameter.
func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}
