package service

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/cluster"
	"copernicus/internal/core"
	"copernicus/internal/jobs"
	"copernicus/internal/workloads"
)

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// Engine is the characterization engine to serve; nil builds one
	// with the calibrated default hardware model. The engine's plan
	// cache is what makes a warm repeated request amortized — the server
	// never drops it except when a matrix is deleted.
	Engine *core.Engine
	// Scale sizes the pre-registered built-in suites (default 256).
	Scale int
	// CacheEntries bounds the sweep-result LRU cache (default 256).
	CacheEntries int
	// MaxUploadBytes bounds an upload request body (default 32 MiB).
	MaxUploadBytes int64
	// MaxMatrixDim and MaxMatrixEntries bound an uploaded matrix's
	// declared shape (defaults 1<<20 and 1<<24); the size line is
	// checked before any entry is parsed.
	MaxMatrixDim     int
	MaxMatrixEntries int
	// JobWorkers is the number of background job runner goroutines
	// (default 1: each sweep job already parallelizes its groups on the
	// engine pool). JobQueue bounds queued-but-unstarted jobs (default
	// jobs.DefaultQueue); a full queue rejects submissions with 429.
	JobWorkers int
	JobQueue   int
	// JobRetries is the total attempt budget per background job: a job
	// whose attempt fails retryably (a recovered panic, an injected
	// transient fault) is re-run from scratch with backoff up to this
	// many attempts, then quarantined. Zero takes the default of 2;
	// negative disables retry (one attempt).
	JobRetries int
	// RequestTimeout is the server-side deadline cap applied to every
	// synchronous compute request (sweep, characterize, advise): compute
	// exceeding it is aborted and answered 503. Zero takes the default
	// of 60s; negative disables the cap. Job event streams (SSE) are
	// never capped — they observe background work rather than hold
	// compute.
	RequestTimeout time.Duration
	// Cluster, when non-nil, turns the server into a coordinator: cold
	// sweep groups are fanned out to the fleet's owning workers over the
	// columnar wire format (with replica re-dispatch and local fallback)
	// instead of computing locally. New starts the coordinator's health
	// prober and Shutdown closes it. Requests carrying the
	// cluster-internal header always compute locally — the dispatch-loop
	// guard.
	Cluster *cluster.Coordinator
}

func (o Options) withDefaults() Options {
	if o.Engine == nil {
		o.Engine = core.New()
	}
	if o.Scale <= 0 {
		o.Scale = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.MaxMatrixDim <= 0 {
		o.MaxMatrixDim = 1 << 20
	}
	if o.MaxMatrixEntries <= 0 {
		o.MaxMatrixEntries = 1 << 24
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.JobQueue <= 0 {
		o.JobQueue = jobs.DefaultQueue
	}
	switch {
	case o.JobRetries == 0:
		o.JobRetries = 2
	case o.JobRetries < 0:
		o.JobRetries = 1
	}
	switch {
	case o.RequestTimeout == 0:
		o.RequestTimeout = 60 * time.Second
	case o.RequestTimeout < 0:
		o.RequestTimeout = 0
	}
	return o
}

// Server is the long-running characterization service: registry, cached
// sweep API, and advisor, sharing one warm engine. Safe for concurrent
// use; construct with New and mount Handler on an http.Server.
type Server struct {
	opts    Options
	engine  *core.Engine
	reg     *Registry
	cache   *resultCache
	jobs    *jobs.Manager
	cluster *cluster.Coordinator // nil on plain (non-coordinator) servers
	mux     *http.ServeMux
	start   time.Time

	// baseCtx is the server's lifetime context: Shutdown cancels it,
	// which aborts every in-flight engine call (request contexts are
	// joined with it) and every queued and running job — draining stops
	// compute instead of waiting it out.
	baseCtx context.Context
	stop    context.CancelFunc

	// bmu guards bstats: per-backend sweep-cache hit/miss tallies.
	// Entries in the shared result cache already isolate by backend
	// (the key embeds the backend ID); these counters expose each
	// backend's hit rate separately on /v1/stats.
	bmu    sync.Mutex
	bstats map[string]*BackendStats

	// panics counts handler panics recovered by the middleware — each
	// one answered 500 instead of killing the process.
	panics atomic.Uint64

	// encJSON/encNDJSON/encCol tally serving traffic per content type
	// (responses, bytes, encodes, encode time); encResident gauges the
	// bytes currently held by cached pre-encoded response bodies — it
	// rises as warm entries build their slabs and falls when the result
	// cache evicts or invalidates them (see encoding.go).
	encJSON     encCounter
	encNDJSON   encCounter
	encCol      encCounter
	encResident atomic.Int64
}

// BackendStats is the per-backend slice of sweep-cache traffic: Hits are
// requests served from (or shared with) a cached sweep of this backend,
// Misses ran the engine under it.
type BackendStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// noteBackend tallies one sweep request against its backend.
func (s *Server) noteBackend(id string, hit bool) {
	s.bmu.Lock()
	st, ok := s.bstats[id]
	if !ok {
		st = &BackendStats{}
		s.bstats[id] = st
	}
	if hit {
		st.Hits++
	} else {
		st.Misses++
	}
	s.bmu.Unlock()
}

// backendStats snapshots the per-backend counters.
func (s *Server) backendStats() map[string]BackendStats {
	s.bmu.Lock()
	out := make(map[string]BackendStats, len(s.bstats))
	for id, st := range s.bstats {
		out[id] = *st
	}
	s.bmu.Unlock()
	return out
}

// New builds a server and pre-registers the built-in workload suites
// (SuiteSparse surrogates by their Table 1 two-letter IDs, the random
// suite as R<density>, the band suite as B<width>).
func New(o Options) *Server {
	o = o.withDefaults()
	baseCtx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:    o,
		engine:  o.Engine,
		reg:     NewRegistry(),
		cache:   newResultCache(o.CacheEntries),
		jobs:    jobs.NewManager(baseCtx, o.JobWorkers, o.JobQueue),
		cluster: o.Cluster,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		baseCtx: baseCtx,
		stop:    stop,
		bstats:  map[string]*BackendStats{},
	}
	if s.cluster != nil {
		s.cluster.Start()
	}
	// Entries leaving the cache release their pre-encoded bodies from
	// the resident-bytes gauge (called with the cache lock held; drop
	// only takes the entry's own lock).
	s.cache.onEvict = func(_ string, val any) {
		if e, ok := val.(*sweepEntry); ok {
			e.drop(&s.encResident)
		}
	}
	s.jobs.SetRetries(jobs.Retries{
		Max:       o.JobRetries,
		BaseDelay: 50 * time.Millisecond,
		MaxDelay:  time.Second,
	})
	c := workloads.Config{Scale: o.Scale, RandomDim: o.Scale, BandDim: o.Scale}
	for _, w := range workloads.SuiteSparse(c) {
		s.reg.AddBuiltin(w.ID, w.Name, w.Kind, w.M)
	}
	for _, w := range workloads.RandomSuite(c) {
		s.reg.AddBuiltin(w.ID, w.Name, w.Kind, w.M)
	}
	for _, w := range workloads.BandSuite(c) {
		s.reg.AddBuiltin(w.ID, w.Name, w.Kind, w.M)
	}
	s.routes()
	return s
}

// Handler returns the service's HTTP handler: the route mux behind the
// panic-recovery middleware.
func (s *Server) Handler() http.Handler { return s.recoverer(s.mux) }

// HandlerPanics returns how many handler panics the recovery middleware
// has absorbed (also surfaced under /v1/stats "failures").
func (s *Server) HandlerPanics() uint64 { return s.panics.Load() }

// recoverer contains handler panics: a panicking request is answered
// with a structured 500 (when the response hasn't started) and counted,
// instead of unwinding into the http.Server and leaving the process's
// health to net/http's per-connection recovery. http.ErrAbortHandler is
// re-panicked — it is net/http's documented way to abort a response.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.panics.Add(1)
			if !cw.wrote {
				writeErr(cw, http.StatusInternalServerError, "internal error: handler panic recovered")
			}
		}()
		next.ServeHTTP(cw, r)
	})
}

// countingWriter records whether the response status has been written,
// so the recoverer knows when a 500 can still be sent.
type countingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (c *countingWriter) WriteHeader(status int) {
	c.wrote = true
	c.ResponseWriter.WriteHeader(status)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	c.wrote = true
	return c.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so streaming handlers keep flushing
// through the recovery wrapper.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Engine returns the shared characterization engine.
func (s *Server) Engine() *core.Engine { return s.engine }

// Registry returns the matrix registry.
func (s *Server) Registry() *Registry { return s.reg }

// Jobs returns the background job manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Shutdown cancels the server's base context: every in-flight sweep,
// characterization, and advise call unwinds with a context error, every
// queued and running job is canceled, and new job submissions are
// rejected. Call it before http.Server.Shutdown so draining does not
// wait for compute that no longer has anyone to answer to; it blocks
// until the job runners have exited.
func (s *Server) Shutdown() {
	s.stop()
	s.jobs.Wait()
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// reqCtx joins a request's context with the server's base context: the
// returned context is canceled when the client disconnects, when the
// request finishes, or when the server shuts down — whichever comes
// first. Handlers run engine work under it so both a gone client and a
// draining server abort compute promptly.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	if s.baseCtx.Err() != nil {
		// Already draining: hand back a synchronously-canceled context so
		// late requests observe it deterministically.
		cancel()
		return ctx, cancel
	}
	stopWatch := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stopWatch(); cancel() }
}

// computeCtx is reqCtx with the server-side deadline cap applied —
// the context compute handlers (sweep, characterize, advise) run under.
// A request whose engine work exceeds the cap unwinds with
// DeadlineExceeded and is answered 503, so one pathological request
// cannot hold a connection and its compute forever. SSE streams keep
// using reqCtx: they watch background jobs, not hold compute.
func (s *Server) computeCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := s.reqCtx(r)
	if s.opts.RequestTimeout <= 0 {
		return ctx, cancel
	}
	tctx, tcancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	return tctx, func() { tcancel(); cancel() }
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/matrices", s.handleListMatrices)
	s.mux.HandleFunc("POST /v1/matrices", s.handleUploadMatrix)
	s.mux.HandleFunc("GET /v1/matrices/{id}", s.handleGetMatrix)
	s.mux.HandleFunc("DELETE /v1/matrices/{id}", s.handleDeleteMatrix)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweep", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/characterize", s.handleCharacterize)
	s.mux.HandleFunc("GET /v1/advise", s.handleAdvise)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/jobs/sweep", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
}
