package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// TestSweepBackendIsolation is the per-backend cache-isolation guarantee:
// sweeping the same (matrix, formats, partitions) point under two
// backends creates two distinct cache entries, neither serving the
// other's results, and a repeat of each is a hit on its own entry.
func TestSweepBackendIsolation(t *testing.T) {
	_, ts := newTestServer(t)
	req := func(backendName string) (bool, []any) {
		body := fmt.Sprintf(`{"matrix":"2C","formats":["CSR","COO"],"partitions":[8],"backend":%q}`, backendName)
		code, out := doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
		if code != http.StatusOK {
			t.Fatalf("sweep backend=%s: %d %v", backendName, code, out)
		}
		return out["cached"].(bool), out["results"].([]any)
	}

	anaCached, anaRes := req("analytic")
	if anaCached {
		t.Fatal("first analytic sweep reported cached")
	}
	// The native sweep of the identical point must MISS: the analytic
	// entry cannot serve it.
	natCached, natRes := req("native")
	if natCached {
		t.Fatal("native sweep served from the analytic cache entry — backends cross-contaminated")
	}
	_, cache := getStats(t, ts.URL)
	if entries := int(cache["entries"].(float64)); entries != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per backend)", entries)
	}

	// Each repeat must HIT its own backend's entry and return that
	// backend's results.
	for _, name := range []string{"analytic", "native"} {
		cached, res := req(name)
		if !cached {
			t.Fatalf("repeat %s sweep missed the cache", name)
		}
		for _, raw := range res {
			r := raw.(map[string]any)
			if r["backend"] != name {
				t.Fatalf("%s sweep returned a result tagged %v", name, r["backend"])
			}
			if measured := r["measured"].(bool); measured != (name == "native") {
				t.Fatalf("%s sweep returned measured=%v", name, measured)
			}
		}
	}

	// Native results carry a real measurement; analytic results the model
	// prediction. Same formats in both responses.
	if len(anaRes) != len(natRes) {
		t.Fatalf("result counts diverge: %d vs %d", len(anaRes), len(natRes))
	}
	for i := range natRes {
		n := natRes[i].(map[string]any)
		a := anaRes[i].(map[string]any)
		if n["format"] != a["format"] {
			t.Fatalf("format order diverges at %d", i)
		}
		if n["seconds"].(float64) <= 0 || n["ns_per_nnz"].(float64) <= 0 {
			t.Fatalf("native result %d has no measurement: %v", i, n)
		}
		if n["measured_runs"].(float64) < 1 || n["threads"].(float64) < 1 {
			t.Fatalf("native result %d lacks methodology fields: %v", i, n)
		}
	}

	// Per-backend hit rates are reported on /v1/stats.
	code, stats := doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	backends := stats["backends"].(map[string]any)
	for _, name := range []string{"analytic", "native"} {
		bs, ok := backends[name].(map[string]any)
		if !ok {
			t.Fatalf("stats missing backend %q: %v", name, backends)
		}
		if bs["hits"].(float64) != 1 || bs["misses"].(float64) != 1 {
			t.Fatalf("%s stats = %v, want 1 hit / 1 miss", name, bs)
		}
	}
}

// TestSweepGetNativeEndToEnd: the query-parameter form of /v1/sweep
// returns measured results and shares cache entries with the POST form.
func TestSweepGetNativeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8&backend=native"
	code, out := doJSON(t, "GET", url, nil)
	if code != http.StatusOK {
		t.Fatalf("GET sweep: %d %v", code, out)
	}
	if out["cached"].(bool) {
		t.Fatal("first GET sweep reported cached")
	}
	for _, raw := range out["results"].([]any) {
		r := raw.(map[string]any)
		if r["backend"] != "native" || r["measured"] != true || r["seconds"].(float64) <= 0 {
			t.Fatalf("GET sweep result not measured: %v", r)
		}
	}
	// The POST form of the identical request shares the cache entry.
	body := `{"matrix":"2C","formats":["CSR","COO"],"partitions":[8],"backend":"native"}`
	code, out = doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusOK || !out["cached"].(bool) {
		t.Fatalf("POST after GET: %d cached=%v", code, out["cached"])
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=2C&partitions=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad partitions: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=missing", nil); code != http.StatusNotFound {
		t.Fatalf("missing matrix: %d", code)
	}
}

// TestSweepUnknownBackendRejected: a bad backend name is the client's
// 400 with the selectable IDs in the message.
func TestSweepUnknownBackendRejected(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"matrix":"2C","formats":["CSR"],"partitions":[8],"backend":"roofline"}`
	code, out := doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusBadRequest {
		t.Fatalf("unknown backend: %d %v", code, out)
	}
	if !strings.Contains(out["error"].(string), "analytic") {
		t.Fatalf("error does not list selectable backends: %v", out["error"])
	}
}

// TestCharacterizeAndAdviseBackendParam: backend= is honored end to end
// on the GET endpoints.
func TestCharacterizeAndAdviseBackendParam(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, "GET", ts.URL+"/v1/characterize?matrix=2C&format=CSR&p=8&backend=native", nil)
	if code != http.StatusOK {
		t.Fatalf("characterize: %d %v", code, out)
	}
	r := out["result"].(map[string]any)
	if r["backend"] != "native" || r["measured"] != true || r["seconds"].(float64) <= 0 {
		t.Fatalf("characterize backend=native result: %v", r)
	}

	code, out = doJSON(t, "GET", ts.URL+"/v1/advise?matrix=2C&p=8&backend=native", nil)
	if code != http.StatusOK {
		t.Fatalf("advise: %d %v", code, out)
	}
	if out["backend"] != "native" {
		t.Fatalf("advise backend = %v", out["backend"])
	}
	for _, raw := range out["results"].([]any) {
		if r := raw.(map[string]any); r["backend"] != "native" {
			t.Fatalf("advise returned %v result", r["backend"])
		}
	}

	if code, _ := doJSON(t, "GET", ts.URL+"/v1/advise?matrix=2C&p=8&backend=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("advise with unknown backend: %d", code)
	}
	// The default stays analytic.
	code, out = doJSON(t, "GET", ts.URL+"/v1/characterize?matrix=2C&format=CSR&p=8", nil)
	if code != http.StatusOK {
		t.Fatalf("default characterize: %d", code)
	}
	if r := out["result"].(map[string]any); r["backend"] != "analytic" || r["measured"] != false {
		t.Fatalf("default characterize result: %v", r)
	}
}

// TestSweepThreadsParam: the threads parameter is native-only, bounded
// by GOMAXPROCS, recorded in the results, and part of the cache key —
// distinct thread counts never share an entry.
func TestSweepThreadsParam(t *testing.T) {
	_, ts := newTestServer(t)

	// Rejections: analytic backend, zero, and beyond GOMAXPROCS.
	for _, q := range []string{
		"backend=analytic&threads=2",
		"backend=native&threads=0",
		fmt.Sprintf("backend=native&threads=%d", runtime.GOMAXPROCS(0)+1),
		"backend=native&threads=frogs",
	} {
		code, out := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8&"+q, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d %v, want 400", q, code, out)
		}
	}

	// threads=1 and the explicit default must share one cache entry; a
	// different count must miss and record itself in the results.
	sweep := func(q string) (bool, []any) {
		code, out := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8&backend=native"+q, nil)
		if code != http.StatusOK {
			t.Fatalf("sweep %q: %d %v", q, code, out)
		}
		return out["cached"].(bool), out["results"].([]any)
	}
	if cached, res := sweep(""); cached {
		t.Fatal("first native sweep reported cached")
	} else if th := res[0].(map[string]any)["threads"].(float64); th != 1 {
		t.Fatalf("default native sweep recorded threads=%v, want 1", th)
	}
	if cached, _ := sweep("&threads=1"); !cached {
		t.Fatal("threads=1 missed the default-threads entry (key drift)")
	}
	if maxT := runtime.GOMAXPROCS(0); maxT > 1 {
		cached, res := sweep(fmt.Sprintf("&threads=%d", maxT))
		if cached {
			t.Fatalf("threads=%d served from the threads=1 entry — thread counts cross-contaminated", maxT)
		}
		if th := res[0].(map[string]any)["threads"].(float64); int(th) != maxT {
			t.Fatalf("threads=%d sweep recorded threads=%v", maxT, th)
		}
	}

	// POST body and advise/characterize accept the same parameter.
	body := `{"matrix":"2C","formats":["CSR"],"partitions":[8],"backend":"native","threads":1}`
	if code, out := doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body)); code != http.StatusOK || !out["cached"].(bool) {
		t.Fatalf("POST threads=1: %d %v, want cached hit on the GET entry", code, out)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/characterize?matrix=2C&format=CSR&p=8&backend=native&threads=1", nil); code != http.StatusOK {
		t.Fatalf("characterize threads=1: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/advise?matrix=2C&p=8&backend=analytic&threads=2", nil); code != http.StatusBadRequest {
		t.Fatal("advise accepted threads for the analytic backend")
	}
}
