package service

import (
	"net/http"
	"strings"
	"testing"
)

// TestSweepKernelIsolation is the kernel-axis cache guarantee: the same
// (matrix, backend, formats, partitions) point under two kernel specs
// creates two distinct cache entries; an explicit kernel=spmv shares the
// no-parameter default's entry (the canonical spec, not the raw request
// string, keys the cache).
func TestSweepKernelIsolation(t *testing.T) {
	_, ts := newTestServer(t)
	sweep := func(q string) (bool, []any) {
		code, out := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8"+q, nil)
		if code != http.StatusOK {
			t.Fatalf("sweep %q: %d %v", q, code, out)
		}
		return out["cached"].(bool), out["results"].([]any)
	}

	cached, spmvRes := sweep("")
	if cached {
		t.Fatal("first sweep reported cached")
	}
	for _, raw := range spmvRes {
		r := raw.(map[string]any)
		if r["kernel"] != "spmv" || r["iterations"].(float64) != 1 {
			t.Fatalf("default sweep row kernel columns = (%v, %v), want (spmv, 1)", r["kernel"], r["iterations"])
		}
	}
	// Explicit spmv is the same point — it must HIT the default's entry.
	if cached, _ := sweep("&kernel=spmv"); !cached {
		t.Fatal("kernel=spmv missed the default-kernel entry (key drift)")
	}
	// cg:60 is a different point — it must MISS and carry its own rows.
	cached, cgRes := sweep("&kernel=cg:60")
	if cached {
		t.Fatal("cg:60 sweep served from the spmv entry — kernels cross-contaminated")
	}
	if _, cache := getStats(t, ts.URL); int(cache["entries"].(float64)) != 2 {
		t.Fatalf("cache entries = %v, want 2 (one per kernel)", cache["entries"])
	}
	if cached, _ := sweep("&kernel=cg:60"); !cached {
		t.Fatal("repeat cg:60 sweep missed its own entry")
	}

	// The cg rows record the kernel and cost more than their spmv rows,
	// but amortization keeps them under 60x.
	for i, raw := range cgRes {
		cg := raw.(map[string]any)
		sp := spmvRes[i].(map[string]any)
		if cg["kernel"] != "cg:60" || cg["iterations"].(float64) != 60 {
			t.Fatalf("cg row %d kernel columns = (%v, %v)", i, cg["kernel"], cg["iterations"])
		}
		if cg["format"] != sp["format"] {
			t.Fatalf("row %d pairs %v with %v", i, sp["format"], cg["format"])
		}
		cgS, spS := cg["seconds"].(float64), sp["seconds"].(float64)
		if cgS <= spS || cgS > 60*spS {
			t.Fatalf("%v: cg:60 %v s vs spmv %v s, want within (1, 60] x", cg["format"], cgS, spS)
		}
	}

	// A spec outside the grammar is the client's 400.
	for _, bad := range []string{"gemm", "cg", "cg:0", "spmv:2"} {
		code, _ := doJSON(t, "GET", ts.URL+"/v1/sweep?matrix=2C&formats=CSR&partitions=8&kernel="+bad, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("kernel=%s: %d, want 400", bad, code)
		}
	}
}

// TestKernelParamOnCharacterizeAdviseAndJobs: the kernel parameter is
// honored on the single-point and advisory endpoints, in POST sweep
// bodies, and in async job submissions — and the job shares the
// synchronous path's cache entry for the same spec.
func TestKernelParamOnCharacterizeAdviseAndJobs(t *testing.T) {
	_, ts := newTestServer(t)

	code, out := doJSON(t, "GET", ts.URL+"/v1/characterize?matrix=2C&format=CSR&p=8&kernel=cg:60", nil)
	if code != http.StatusOK {
		t.Fatalf("characterize: %d %v", code, out)
	}
	if r := out["result"].(map[string]any); r["kernel"] != "cg:60" || r["iterations"].(float64) != 60 {
		t.Fatalf("characterize kernel columns: %v, %v", r["kernel"], r["iterations"])
	}

	code, out = doJSON(t, "GET", ts.URL+"/v1/advise?matrix=2C&p=8&kernel=cg:60", nil)
	if code != http.StatusOK {
		t.Fatalf("advise: %d %v", code, out)
	}
	if out["kernel"] != "cg:60" {
		t.Fatalf("advise echoed kernel %v", out["kernel"])
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/advise?matrix=2C&p=8&kernel=bogus", nil); code != http.StatusBadRequest {
		t.Fatal("advise accepted a bad kernel spec")
	}

	// POST body form.
	body := `{"matrix":"2C","formats":["CSR"],"partitions":[8],"kernel":"jacobi:5"}`
	code, out = doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusOK || out["cached"].(bool) {
		t.Fatalf("POST jacobi:5: %d cached=%v", code, out["cached"])
	}
	if r := out["results"].([]any)[0].(map[string]any); r["kernel"] != "jacobi:5" || r["iterations"].(float64) != 5 {
		t.Fatalf("POST jacobi:5 row: %v, %v", r["kernel"], r["iterations"])
	}

	// Async job for the same spec hits the synchronous entry.
	jb := `{"matrix":"2C","formats":["CSR"],"partitions":[8],"kernel":"jacobi:5"}`
	code, out = doJSON(t, "POST", ts.URL+"/v1/jobs/sweep", strings.NewReader(jb))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("job submit: %d %v", code, out)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs/sweep", strings.NewReader(`{"matrix":"2C","kernel":"nope"}`)); code != http.StatusBadRequest {
		t.Fatal("job submit accepted a bad kernel spec")
	}
}
