package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"copernicus/internal/jobs"
)

// batchResults runs a plain POST /v1/sweep and returns the decoded
// result rows.
func batchResults(t *testing.T, base, body string) []map[string]any {
	t.Helper()
	code, resp := doJSON(t, "POST", base+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusOK {
		t.Fatalf("batch sweep: %d %v", code, resp)
	}
	raw := resp["results"].([]any)
	out := make([]map[string]any, len(raw))
	for i, r := range raw {
		out[i] = r.(map[string]any)
	}
	return out
}

// streamResults runs POST /v1/sweep with Accept: application/x-ndjson
// and decodes each streamed row.
func streamResults(t *testing.T, base, body string) []map[string]any {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rows []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if msg, ok := row["error"]; ok {
			t.Fatalf("stream errored: %v", msg)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestSweepNDJSONParity: the concatenation of streamed rows must decode
// to exactly the batch result set — same order, same values — whether
// the stream computed the sweep (cold) or replayed the cache (warm),
// and the streamed sweep must populate the same cache entry the batch
// path would have.
func TestSweepNDJSONParity(t *testing.T) {
	const body = `{"matrix": "DW", "formats": ["CSR", "COO", "ELL"], "partitions": [8, 16]}`

	// Batch on its own server: an independently computed golden set.
	_, batchTS := newTestServer(t)
	want := batchResults(t, batchTS.URL, body)
	if len(want) != 6 {
		t.Fatalf("batch returned %d rows, want 6", len(want))
	}

	// Cold stream on a second server, then a warm replay from cache.
	_, streamTS := newTestServer(t)
	for _, pass := range []string{"cold", "warm"} {
		got := streamResults(t, streamTS.URL, body)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s streamed rows diverge from the batch result set", pass)
		}
	}

	// The streamed sweep populated the shared cache: the batch form on
	// the same server is a hit with identical rows.
	code, resp := doJSON(t, "POST", streamTS.URL+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusOK {
		t.Fatalf("batch after stream: %d %v", code, resp)
	}
	if cached, _ := resp["cached"].(bool); !cached {
		t.Fatal("batch request after a streamed sweep missed the cache")
	}
}

// TestSweepNDJSONUnknownMatrix: stream negotiation must not bypass
// validation.
func TestSweepNDJSONUnknownMatrix(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{"matrix": "nope"}`))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// submitJob posts a sweep job and returns its record.
func submitJob(t *testing.T, base, body string) map[string]any {
	t.Helper()
	code, resp := doJSON(t, "POST", base+"/v1/jobs/sweep", strings.NewReader(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit job: %d %v", code, resp)
	}
	return resp["job"].(map[string]any)
}

// TestJobSweepLifecycleAndSSE: a sweep job runs to done; its SSE event
// stream delivers monotone progress counts ending at the total with a
// terminal event; the finished job exposes its result rows; and the
// completed job populated the sweep cache for the synchronous paths.
func TestJobSweepLifecycleAndSSE(t *testing.T) {
	const body = `{"matrix": "RL", "formats": ["CSR", "COO"], "partitions": [8, 16]}`
	_, ts := newTestServer(t)
	job := submitJob(t, ts.URL, body)
	id := job["id"].(string)
	if total := job["total"].(float64); total != 4 {
		t.Fatalf("job total = %v, want 4", total)
	}

	// Subscribe to the event stream and walk it to the terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	last := -1.0
	var final map[string]any
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		done := ev["done"].(float64)
		if done < last {
			t.Fatalf("progress went backwards: %v after %v", done, last)
		}
		last = done
		if st := jobs.State(ev["state"].(string)); st.Terminal() {
			final = ev
			break
		}
	}
	if final == nil {
		t.Fatalf("event stream ended without a terminal event: %v", sc.Err())
	}
	if st := final["state"].(string); st != string(jobs.StateDone) {
		t.Fatalf("terminal state = %s, want done", st)
	}
	if done, total := final["done"].(float64), final["total"].(float64); done != total {
		t.Fatalf("final progress %v != total %v", done, total)
	}
	if groups := final["groups"].([]any); len(groups) != 2 {
		t.Fatalf("final event has %d group timings, want 2", len(groups))
	}

	// The finished job exposes its rows, identical to a batch sweep.
	code, got := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("get job: %d %v", code, got)
	}
	rows := got["results"].([]any)
	want := batchResults(t, ts.URL, body) // served from the job-populated cache
	if !reflect.DeepEqual(rows, func() []any {
		out := make([]any, len(want))
		for i, w := range want {
			out[i] = w
		}
		return out
	}()) {
		t.Fatal("job results diverge from the batch sweep rows")
	}

	// And the batch request above must have been a cache hit.
	code, resp2 := doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if code != http.StatusOK || resp2["cached"] != true {
		t.Fatalf("sweep after job: %d cached=%v", code, resp2["cached"])
	}
}

// TestJobUnknownAndDelete: job endpoints 404 unknown IDs; DELETE drops a
// terminal job's record.
func TestJobUnknownAndDelete(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/job-404", nil); code != http.StatusNotFound {
		t.Fatalf("get unknown job: %d", code)
	}
	job := submitJob(t, ts.URL, `{"matrix": "DW", "formats": ["CSR"], "partitions": [8]}`)
	id := job["id"].(string)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		st := jobs.State(resp["job"].(map[string]any)["state"].(string))
		if st.Terminal() {
			if st != jobs.StateDone {
				t.Fatalf("job ended %s", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil); code != http.StatusNoContent {
		t.Fatalf("delete terminal job: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", code)
	}
}

// TestShutdownRejectsAndCancels: Server.Shutdown aborts compute-bound
// requests and rejects new job submissions with 503.
func TestShutdownRejectsAndCancels(t *testing.T) {
	s, ts := newTestServer(t)
	s.Shutdown()
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs/sweep", strings.NewReader(`{"matrix": "DW"}`))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("job submit after shutdown: %d, want 503", code)
	}
	// A compute request under the canceled base context unwinds with 503
	// before (or promptly after) entering the engine.
	code, body := doJSON(t, "POST", ts.URL+"/v1/sweep", strings.NewReader(`{"matrix": "RE"}`))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("sweep after shutdown: %d %v, want 503", code, body)
	}
}

// TestSweepNDJSONConcurrentSingleflight: concurrent identical cold
// NDJSON requests must share one engine sweep — the leader streams
// incrementally, attached callers replay the finished slab — and every
// client still receives the complete, identical row set.
func TestSweepNDJSONConcurrentSingleflight(t *testing.T) {
	const body = `{"matrix": "RE", "formats": ["CSR", "COO", "ELL"], "partitions": [8, 16]}`
	const clients = 4
	s, ts := newTestServer(t)
	rows := make([][]map[string]any, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i] = streamResults(t, ts.URL, body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !reflect.DeepEqual(rows[i], rows[0]) {
			t.Fatalf("client %d got different rows", i)
		}
	}
	if len(rows[0]) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows[0]))
	}
	// Exactly one engine compute: any combination of shared flights and
	// cache hits is fine, but only one miss may have run the sweep.
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("cache stats %+v: %d computes for %d identical requests, want 1", st, st.Misses, clients)
	}
}

// TestSweepNDJSONShutdownStatus: a streamed request that fails before
// any row is written must get a real HTTP error status (503 while
// draining), not a 200 with an in-band error line.
func TestSweepNDJSONShutdownStatus(t *testing.T) {
	s, ts := newTestServer(t)
	s.Shutdown()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{"matrix": "RE"}`))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}
