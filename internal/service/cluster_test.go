package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"copernicus/internal/cluster"
	"copernicus/internal/faults"
	"copernicus/internal/scenario"
	"copernicus/internal/wire"
	"copernicus/internal/workloads"
)

// killSwitch wraps a worker's handler so chaos tests can kill it
// "mid-job": once tripped (by the dieAt-th sweep request, or Kill), every
// request — the in-flight one included — aborts its connection, exactly
// what a SIGKILLed worker looks like to the coordinator.
type killSwitch struct {
	h      http.Handler
	dieAt  atomic.Int64 // kill on the Nth /v1/sweep request (0 = never)
	sweeps atomic.Int64
	dead   atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if at := k.dieAt.Load(); at > 0 && strings.HasPrefix(r.URL.Path, "/v1/sweep") && k.sweeps.Add(1) >= at {
		k.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	k.h.ServeHTTP(w, r)
}

// workerAddr strips the scheme from an httptest URL — the host:port form
// a fleet config would list (exercising the coordinator's http://
// normalization).
func workerAddr(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

// newWorker starts one fleet worker behind a kill switch.
func newWorker(t *testing.T) (*Server, *killSwitch, *httptest.Server) {
	t.Helper()
	s := New(Options{Scale: 64})
	t.Cleanup(s.Shutdown)
	ks := &killSwitch{h: s.Handler()}
	ts := httptest.NewServer(ks)
	t.Cleanup(ts.Close)
	return s, ks, ts
}

// newCoordinator starts a coordinator fronting the given workers.
func newCoordinator(t *testing.T, cfg cluster.Config, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	co, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts.Scale = 64
	opts.Cluster = co
	s := New(opts)
	t.Cleanup(s.Shutdown)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// fetch issues one request and returns the status, body, and headers.
func fetch(t *testing.T, method, url, accept, body string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func clusterStats(t *testing.T, base string) map[string]any {
	t.Helper()
	code, body := doJSON(t, "GET", base+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	cs, ok := body["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no cluster section: %v", body)
	}
	return cs
}

const parityBody = `{"matrix": "DW", "formats": ["CSR", "ELL", "SELL-C-sig"], "partitions": [8, 16, 32]}`
const parityGet = "/v1/sweep?matrix=DW&formats=CSR,ELL,SELL-C-sig&partitions=8,16,32"

// A clustered sweep must be byte-identical to the single-node one — as
// a JSON slab (cold and warm), a columnar slab, an NDJSON stream, and
// against the engine's own SweepKernelsWith output.
func TestClusterSweepParity(t *testing.T) {
	single, singleTS := newTestServer(t)
	_, _, w1 := newWorker(t)
	_, _, w2 := newWorker(t)
	_, coordTS := newCoordinator(t, cluster.Config{Workers: []string{workerAddr(w1), workerAddr(w2)}}, Options{})

	// Cold JSON parity.
	cs, cold, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", parityBody, nil)
	ss, want, _ := fetch(t, "POST", singleTS.URL+"/v1/sweep", "", parityBody, nil)
	if cs != http.StatusOK || ss != http.StatusOK {
		t.Fatalf("cold sweep: coordinator %d, single %d: %s", cs, ss, cold)
	}
	if !bytes.Equal(cold, want) {
		t.Fatalf("cold JSON differs:\ncluster: %.200s\nsingle:  %.200s", cold, want)
	}

	// Warm JSON parity (coordinator LRU hit vs single-node LRU hit).
	_, warm, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", parityBody, nil)
	_, wantWarm, _ := fetch(t, "POST", singleTS.URL+"/v1/sweep", "", parityBody, nil)
	if !bytes.Equal(warm, wantWarm) {
		t.Fatalf("warm JSON differs:\ncluster: %.200s\nsingle:  %.200s", warm, wantWarm)
	}

	// Columnar parity, plus the headers.
	_, colC, hdrC := fetch(t, "GET", coordTS.URL+parityGet, wire.ContentType, "", nil)
	_, colS, hdrS := fetch(t, "GET", singleTS.URL+parityGet, wire.ContentType, "", nil)
	if !bytes.Equal(colC, colS) {
		t.Fatal("columnar slabs differ")
	}
	for _, h := range []string{headerRows, headerMatrix} {
		if hdrC.Get(h) != hdrS.Get(h) {
			t.Fatalf("%s: cluster %q, single %q", h, hdrC.Get(h), hdrS.Get(h))
		}
	}

	// NDJSON stream parity.
	_, ndC, _ := fetch(t, "GET", coordTS.URL+parityGet, "application/x-ndjson", "", nil)
	_, ndS, _ := fetch(t, "GET", singleTS.URL+parityGet, "application/x-ndjson", "", nil)
	if !bytes.Equal(ndC, ndS) {
		t.Fatal("NDJSON streams differ")
	}

	// And against the engine primitive itself: the columnar body is
	// exactly wire.Encode of SweepKernelsWith's slab.
	_, m, ok := single.Registry().Lookup("DW")
	if !ok {
		t.Fatal("DW not registered")
	}
	kinds, err := parseKinds([]string{"CSR", "ELL", "SELL-C-sig"})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := single.Engine().SweepKernelsWith(context.Background(), nil,
		[]workloads.Workload{{ID: "DW", M: m}}, []scenario.Spec{scenario.Default()}, kinds, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(colC, wire.Encode(rows)) {
		t.Fatal("clustered columnar slab != wire.Encode(SweepKernelsWith slab)")
	}

	// The groups really were dispatched (3 p-values × 1 kernel = 3).
	st := clusterStats(t, coordTS.URL)
	if got := st["groups_dispatched"].(float64); got != 3 {
		t.Fatalf("groups_dispatched = %v, want 3", got)
	}
	if got := st["peer_cache_misses"].(float64); got != 3 {
		t.Fatalf("peer_cache_misses = %v, want 3 (all cold at the workers)", got)
	}
}

// A worker that dies mid-sweep (its in-flight dispatch aborts, and it
// never answers again) must not fail the sweep or change a byte of it:
// its groups re-dispatch to the ring's next replica.
func TestClusterWorkerDeathRedispatch(t *testing.T) {
	_, singleTS := newTestServer(t)
	_, ks1, w1 := newWorker(t)
	_, ks2, w2 := newWorker(t)
	names := []string{workerAddr(w1), workerAddr(w2)}
	_, coordTS := newCoordinator(t, cluster.Config{Workers: names}, Options{})

	// Kill the worker that owns the sweep's first group, on its first
	// sweep request — the deterministic stand-in for SIGKILL mid-job.
	ring, err := cluster.NewRing(names, 0, cluster.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	q := cluster.SweepQuery{
		Matrix:     "DW",
		Formats:    []string{"CSR", "ELL", "SELL-C-sig"},
		Partitions: []int{8},
		Backend:    "analytic",
		Kernel:     scenario.Default().String(),
	}
	if ring.Owner(q.Key()) == names[0] {
		ks1.dieAt.Store(1)
	} else {
		ks2.dieAt.Store(1)
	}

	cs, got, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", parityBody, nil)
	ss, want, _ := fetch(t, "POST", singleTS.URL+"/v1/sweep", "", parityBody, nil)
	if cs != http.StatusOK || ss != http.StatusOK {
		t.Fatalf("sweep after worker death: coordinator %d, single %d: %s", cs, ss, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-death JSON differs:\ncluster: %.200s\nsingle:  %.200s", got, want)
	}
	st := clusterStats(t, coordTS.URL)
	if got := st["redispatched"].(float64); got < 1 {
		t.Fatalf("redispatched = %v, want >= 1", got)
	}
}

// The peer cache tier: a worker whose dispatch breaker is open is still
// consulted cache-only — warm groups come back from its sweep LRU
// without any compute dispatch, and only truly missing groups fall back
// to local compute.
func TestClusterPeerCacheTier(t *testing.T) {
	_, singleTS := newTestServer(t)
	_, _, w1 := newWorker(t)
	// CacheEntries: 1 lets the test evict the coordinator's own slab
	// (the second sweep below displaces the first) without reaching into
	// internals; BreakerThreshold 1 opens the breaker on one failure.
	_, coordTS := newCoordinator(t,
		cluster.Config{Workers: []string{workerAddr(w1)}, BreakerThreshold: 1},
		Options{CacheEntries: 1})

	const sweepX = `{"matrix": "DW", "formats": ["CSR", "ELL"], "partitions": [8, 16]}`
	const sweepY = `{"matrix": "FR", "formats": ["CSR"], "partitions": [8]}`

	// Warm the worker's LRU with X's groups, then evict X from the
	// coordinator's own cache by sweeping Y.
	if code, body, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", sweepX, nil); code != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", code, body)
	}
	if code, _, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", sweepY, nil); code != http.StatusOK {
		t.Fatalf("evicting sweep: %d", code)
	}

	// One injected dispatch failure opens the worker's breaker; from
	// then on the worker is a cache peer only.
	pt := faults.Point("cluster.dispatch")
	pt.Arm(faults.Injection{Kind: faults.KindError, Times: 1})
	t.Cleanup(pt.Disarm)

	cs, got, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", sweepX, nil)
	ss, want, _ := fetch(t, "POST", singleTS.URL+"/v1/sweep", "", sweepX, nil)
	if cs != http.StatusOK || ss != http.StatusOK {
		t.Fatalf("sweep with open breaker: coordinator %d, single %d: %s", cs, ss, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("breaker-open JSON differs:\ncluster: %.200s\nsingle:  %.200s", got, want)
	}
	st := clusterStats(t, coordTS.URL)
	if hits := st["peer_cache_hits"].(float64); hits < 1 {
		t.Fatalf("peer_cache_hits = %v, want >= 1 (worker LRU should have served warm groups)", hits)
	}
	if fb := st["local_fallbacks"].(float64); fb != 1 {
		t.Fatalf("local_fallbacks = %v, want 1 (the faulted group)", fb)
	}
}

// With every worker unreachable the coordinator still answers — all
// groups fall back to local compute — and a coordinator-internal
// request never fans out at all (the dispatch-loop guard).
func TestClusterFallbackAndLoopGuard(t *testing.T) {
	_, singleTS := newTestServer(t)
	// 127.0.0.1:1 refuses connections; the readiness probe may or may
	// not have marked it down yet — either path must end in local
	// fallback, not an error.
	_, coordTS := newCoordinator(t, cluster.Config{Workers: []string{"127.0.0.1:1"}}, Options{})

	cs, got, _ := fetch(t, "POST", coordTS.URL+"/v1/sweep", "", parityBody, nil)
	ss, want, _ := fetch(t, "POST", singleTS.URL+"/v1/sweep", "", parityBody, nil)
	if cs != http.StatusOK || ss != http.StatusOK {
		t.Fatalf("sweep with dead fleet: coordinator %d, single %d: %s", cs, ss, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("dead-fleet JSON differs from single-node")
	}
	st := clusterStats(t, coordTS.URL)
	if fb := st["local_fallbacks"].(float64); fb != 3 {
		t.Fatalf("local_fallbacks = %v, want 3 (every group)", fb)
	}

	// Internal requests compute locally without touching the fleet: no
	// new fallbacks (a dispatch would have to fail first) on a cold key.
	code, _, _ := fetch(t, "GET", coordTS.URL+parityGet+"&kernel=jacobi:7", "",
		"", map[string]string{cluster.InternalHeader: "1"})
	if code != http.StatusOK {
		t.Fatalf("internal sweep: %d", code)
	}
	st = clusterStats(t, coordTS.URL)
	if fb := st["local_fallbacks"].(float64); fb != 3 {
		t.Fatalf("local_fallbacks moved to %v on an internal request — loop guard broken", fb)
	}
}

// cache=only answers strictly from the sweep LRU: 404 cold, the exact
// warm body once populated, never a compute.
func TestSweepCacheOnly(t *testing.T) {
	_, ts := newTestServer(t)
	get := ts.URL + "/v1/sweep?matrix=DW&formats=CSR,ELL&partitions=8,16"

	if code, body, _ := fetch(t, "GET", get+"&cache=only", "", "", nil); code != http.StatusNotFound {
		t.Fatalf("cold cache=only: %d %s, want 404", code, body)
	}
	if code, _, _ := fetch(t, "GET", get, "", "", nil); code != http.StatusOK {
		t.Fatalf("compute sweep failed: %d", code)
	}
	_, want, _ := fetch(t, "GET", get, "", "", nil) // warm body
	code, got, _ := fetch(t, "GET", get+"&cache=only", "", "", nil)
	if code != http.StatusOK {
		t.Fatalf("warm cache=only: %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache=only body differs from the warm sweep body")
	}
	code, colGot, hdr := fetch(t, "GET", get+"&cache=only", wire.ContentType, "", nil)
	if code != http.StatusOK || hdr.Get(headerCached) != "true" {
		t.Fatalf("columnar cache=only: %d cached=%q", code, hdr.Get(headerCached))
	}
	if _, err := wire.Decode(colGot); err != nil {
		t.Fatalf("columnar cache=only body: %v", err)
	}
	if code, _, _ := fetch(t, "GET", get+"&cache=sometimes", "", "", nil); code != http.StatusBadRequest {
		t.Fatalf("cache=sometimes: %d, want 400", code)
	}
}

// GET /v1/advise with the columnar Accept returns the ranked result
// rows as a slab with the verdict in headers, matching the JSON
// envelope's ranking exactly.
func TestAdviseColumnar(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/advise?matrix=DW&p=8"

	code, body := doJSON(t, "GET", url, nil)
	if code != http.StatusOK {
		t.Fatalf("advise JSON: %d", code)
	}
	var ranking []string
	for _, v := range body["ranking"].([]any) {
		ranking = append(ranking, v.(string))
	}

	code, raw, hdr := fetch(t, "GET", url, wire.ContentType, "", nil)
	if code != http.StatusOK {
		t.Fatalf("advise columnar: %d %s", code, raw)
	}
	rows, err := wire.Decode(raw)
	if err != nil {
		t.Fatalf("decode advise slab: %v", err)
	}
	if len(rows) != len(ranking) {
		t.Fatalf("%d rows, want %d (one per ranked format)", len(rows), len(ranking))
	}
	for i, r := range rows {
		if r.Format.String() != ranking[i] {
			t.Fatalf("row %d is %s, ranking says %s — slab must be in ranked order", i, r.Format, ranking[i])
		}
	}
	if got, want := hdr.Get(headerAdviseFormat), body["format"].(string); got != want {
		t.Fatalf("%s = %q, JSON format %q", headerAdviseFormat, got, want)
	}
	if got, want := hdr.Get(headerAdviseRanking), strings.Join(ranking, ","); got != want {
		t.Fatalf("%s = %q, want %q", headerAdviseRanking, got, want)
	}
	if hdr.Get(headerAdviseClass) == "" || hdr.Get(headerCached) != "true" {
		t.Fatalf("missing advise headers: class=%q cached=%q", hdr.Get(headerAdviseClass), hdr.Get(headerCached))
	}
	if hdr.Get(headerRows) == "" {
		t.Fatal("missing rows header")
	}
}
