package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleflightComputesOnce: N concurrent identical requests
// must run the compute function exactly once — the waiters attach to the
// leader's in-flight computation and share its value. The compute blocks
// until every other caller is verifiably waiting, so the test exercises
// true concurrency, not sequential cache hits.
func TestCacheSingleflightComputesOnce(t *testing.T) {
	const callers = 8
	c := newResultCache(8)
	var computes atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	values := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "key", func(context.Context) (any, error) {
				computes.Add(1)
				<-release
				return "swept", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			values[i] = v
		}(i)
	}

	// Wait until the other callers are attached to the in-flight leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers attached to the flight", c.Stats().Shared, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, v := range values {
		if v != "swept" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared", s, callers-1)
	}

	// A later identical request is a plain cache hit.
	if _, cached, _ := c.Do(context.Background(), "key", func(context.Context) (any, error) { t.Fatal("recompute"); return nil, nil }); !cached {
		t.Fatal("warm request missed the cache")
	}
}

// TestCacheErrorsNotCached: a failed compute reaches every waiter but
// does not poison the key.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(8)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return 42, nil })
	if err != nil || cached || v != 42 {
		t.Fatalf("retry after error: v=%v cached=%v err=%v", v, cached, err)
	}
}

// TestCacheLRUEviction: capacity drops the least recently used key.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	put := func(k string) {
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a; b is now coldest
	put("c") // evicts b
	if _, cached, _ := c.Do(context.Background(), "a", func(context.Context) (any, error) { return "a2", nil }); !cached {
		t.Fatal("refreshed key evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// The probe below re-inserts "b", evicting once more.
	if _, cached, _ := c.Do(context.Background(), "b", func(context.Context) (any, error) { return "b2", nil }); cached {
		t.Fatal("coldest key survived eviction")
	}
}

// TestCachePanickedComputeDoesNotPoisonKey: a panicking compute must
// release the in-flight slot (waiters get an error, later requests
// recompute) instead of hanging every future request on the key.
func TestCachePanickedComputeDoesNotPoisonKey(t *testing.T) {
	c := newResultCache(8)
	release := make(chan struct{})
	waited := make(chan error, 1)

	go func() {
		defer func() { recover() }() // stand-in for net/http's handler recovery
		c.Do(context.Background(), "k", func(context.Context) (any, error) {
			<-release
			panic("engine bug")
		})
	}()
	for c.Stats().Misses == 0 { // leader holds the in-flight slot
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return nil, nil })
		waited <- err
	}()
	for c.Stats().Shared == 0 { // waiter attached before the panic
		time.Sleep(time.Millisecond)
	}
	close(release)

	select {
	case err := <-waited:
		if err == nil {
			t.Fatal("waiter of a panicked leader got no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on a panicked leader")
	}
	// The key must be recomputable afterwards.
	v, cached, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return "recovered", nil })
	if err != nil || cached || v != "recovered" {
		t.Fatalf("key poisoned after panic: v=%v cached=%v err=%v", v, cached, err)
	}
}

// TestCacheInvalidatePrefix drops exactly the matching keys.
func TestCacheInvalidatePrefix(t *testing.T) {
	c := newResultCache(8)
	for _, k := range []string{"m1|a", "m1|b", "m2|a"} {
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.InvalidatePrefix("m1|"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, cached, _ := c.Do(context.Background(), "m2|a", func(context.Context) (any, error) { return nil, nil }); !cached {
		t.Fatal("unrelated key invalidated")
	}
	if _, cached, _ := c.Do(context.Background(), "m1|a", func(context.Context) (any, error) { return nil, nil }); cached {
		t.Fatal("invalidated key still cached")
	}
}

// TestCacheLeaderDetachesFromItsRequest: the singleflight leader's
// compute must survive the leader's own context dying while another
// caller is still attached — the compute context is detached and
// ref-counted, so one live waiter keeps the engine work alive.
func TestCacheLeaderDetachesFromItsRequest(t *testing.T) {
	c := newResultCache(8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	computeStarted := make(chan struct{})
	release := make(chan struct{})
	var flightCanceled atomic.Bool

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", func(fctx context.Context) (any, error) {
			close(computeStarted)
			select {
			case <-release:
				return "swept", nil
			case <-fctx.Done():
				flightCanceled.Store(true)
				return nil, fctx.Err()
			}
		})
		leaderDone <- err
	}()
	<-computeStarted

	waiterDone := make(chan any, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("waiter recomputed")
			return nil, nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		waiterDone <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// The leader's request dies; the waiter is still interested, so the
	// flight must keep computing.
	cancelLeader()
	time.Sleep(20 * time.Millisecond)
	if flightCanceled.Load() {
		t.Fatal("flight canceled while a live waiter was attached")
	}
	close(release)
	if v := <-waiterDone; v != "swept" {
		t.Fatalf("waiter got %v", v)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader (already computing) returned %v", err)
	}
}

// TestCacheFlightAbandonedWhenAllCallersGone: when the leader and every
// waiter disconnect, the ref count hits zero and the compute context is
// canceled — the load-shedding half of the detach semantics.
func TestCacheFlightAbandonedWhenAllCallersGone(t *testing.T) {
	c := newResultCache(8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	computeStarted := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", func(fctx context.Context) (any, error) {
			close(computeStarted)
			<-fctx.Done() // a well-behaved engine call unwinds on cancel
			return nil, fctx.Err()
		})
		leaderDone <- err
	}()
	<-computeStarted

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(waiterCtx, "k", func(context.Context) (any, error) { return nil, nil })
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never attached")
		}
		time.Sleep(time.Millisecond)
	}

	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("departing waiter got %v", err)
	}
	cancelLeader() // last caller gone: the flight must be canceled
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned flight returned %v, want context.Canceled", err)
	}
	if got := c.Stats().Abandoned; got != 1 {
		t.Fatalf("Abandoned = %d, want 1", got)
	}
	// The error was not cached: the key recomputes cleanly.
	v, cached, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || cached || v != "fresh" {
		t.Fatalf("post-abandon recompute: v=%v cached=%v err=%v", v, cached, err)
	}
}
