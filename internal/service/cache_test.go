package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleflightComputesOnce: N concurrent identical requests
// must run the compute function exactly once — the waiters attach to the
// leader's in-flight computation and share its value. The compute blocks
// until every other caller is verifiably waiting, so the test exercises
// true concurrency, not sequential cache hits.
func TestCacheSingleflightComputesOnce(t *testing.T) {
	const callers = 8
	c := newResultCache(8)
	var computes atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	values := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("key", func() (any, error) {
				computes.Add(1)
				<-release
				return "swept", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			values[i] = v
		}(i)
	}

	// Wait until the other callers are attached to the in-flight leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers attached to the flight", c.Stats().Shared, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, v := range values {
		if v != "swept" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared", s, callers-1)
	}

	// A later identical request is a plain cache hit.
	if _, cached, _ := c.Do("key", func() (any, error) { t.Fatal("recompute"); return nil, nil }); !cached {
		t.Fatal("warm request missed the cache")
	}
}

// TestCacheErrorsNotCached: a failed compute reaches every waiter but
// does not poison the key.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(8)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do("k", func() (any, error) { return 42, nil })
	if err != nil || cached || v != 42 {
		t.Fatalf("retry after error: v=%v cached=%v err=%v", v, cached, err)
	}
}

// TestCacheLRUEviction: capacity drops the least recently used key.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a; b is now coldest
	put("c") // evicts b
	if _, cached, _ := c.Do("a", func() (any, error) { return "a2", nil }); !cached {
		t.Fatal("refreshed key evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// The probe below re-inserts "b", evicting once more.
	if _, cached, _ := c.Do("b", func() (any, error) { return "b2", nil }); cached {
		t.Fatal("coldest key survived eviction")
	}
}

// TestCachePanickedComputeDoesNotPoisonKey: a panicking compute must
// release the in-flight slot (waiters get an error, later requests
// recompute) instead of hanging every future request on the key.
func TestCachePanickedComputeDoesNotPoisonKey(t *testing.T) {
	c := newResultCache(8)
	release := make(chan struct{})
	waited := make(chan error, 1)

	go func() {
		defer func() { recover() }() // stand-in for net/http's handler recovery
		c.Do("k", func() (any, error) {
			<-release
			panic("engine bug")
		})
	}()
	for c.Stats().Misses == 0 { // leader holds the in-flight slot
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := c.Do("k", func() (any, error) { return nil, nil })
		waited <- err
	}()
	for c.Stats().Shared == 0 { // waiter attached before the panic
		time.Sleep(time.Millisecond)
	}
	close(release)

	select {
	case err := <-waited:
		if err == nil {
			t.Fatal("waiter of a panicked leader got no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on a panicked leader")
	}
	// The key must be recomputable afterwards.
	v, cached, err := c.Do("k", func() (any, error) { return "recovered", nil })
	if err != nil || cached || v != "recovered" {
		t.Fatalf("key poisoned after panic: v=%v cached=%v err=%v", v, cached, err)
	}
}

// TestCacheInvalidatePrefix drops exactly the matching keys.
func TestCacheInvalidatePrefix(t *testing.T) {
	c := newResultCache(8)
	for _, k := range []string{"m1|a", "m1|b", "m2|a"} {
		if _, _, err := c.Do(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.InvalidatePrefix("m1|"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, cached, _ := c.Do("m2|a", func() (any, error) { return nil, nil }); !cached {
		t.Fatal("unrelated key invalidated")
	}
	if _, cached, _ := c.Do("m1|a", func() (any, error) { return nil, nil }); cached {
		t.Fatal("invalidated key still cached")
	}
}
