package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"copernicus/internal/backend"
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/jobs"
	"copernicus/internal/matrix"
	"copernicus/internal/scenario"
	"copernicus/internal/wire"
	"copernicus/internal/workloads"
)

// handleJobSubmit is POST /v1/jobs/sweep: the asynchronous form of
// /v1/sweep. The request body is identical; the response is 202 with a
// job record to poll (GET /v1/jobs/{id}), subscribe to
// (GET /v1/jobs/{id}/events), or cancel (DELETE /v1/jobs/{id}). A
// completed job populates the same per-backend sweep cache entry the
// synchronous paths use, so a follow-up POST /v1/sweep of the same
// request is a cache hit.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	info, m, ok := s.reg.Lookup(req.Matrix)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown matrix %q", req.Matrix)
		return
	}
	kinds, err := parseKinds(req.Formats)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ps, err := parsePartitions(req.Partitions)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := resolveBackend(req.Backend, req.Threads)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc, err := parseKernel(req.Kernel)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	key := sweepKey(info.ID, b, sc, kinds, ps)
	total := len(kinds) * len(ps)
	task := s.sweepTask(info, m, b, sc, kinds, ps, key)
	ji, err := s.jobs.Submit(fmt.Sprintf("sweep %s (%s)", info.ID, b.ID()), total, task)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, "job queue full; retry later")
		return
	case errors.Is(err, jobs.ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": ji})
}

// sweepTask builds the background task for one sweep job: the engine's
// group-streaming sweep with per-group progress, ending with the same
// cache population and delete-race discipline as the synchronous paths
// (the in-flight re-check lives in computeSweep-equivalent code here
// because the job needs group granularity for timings; the post-insert
// half is the shared sweepEpilogue).
func (s *Server) sweepTask(info MatrixInfo, m *matrix.CSR, b backend.Backend, sc scenario.Spec, kinds []formats.Kind, ps []int, key string) jobs.Task {
	return func(ctx context.Context, report func(int, jobs.GroupTiming)) (any, error) {
		ws := []workloads.Workload{{ID: info.ID, M: m}}
		collected := make([]core.Result, 0, len(kinds)*len(ps))
		// Jobs fan out like synchronous sweeps when this server fronts a
		// cluster: the job API is never used for coordinator-internal
		// dispatch, so there is no loop to guard against here.
		err := s.engine.SweepGroupsExecWith(ctx, s.execFor(b, false), ws, []scenario.Spec{sc}, kinds, ps, func(g core.SweepGroup) error {
			collected = append(collected, g.Results...)
			report(len(g.Results), jobs.GroupTiming{
				Workload: g.Workload,
				P:        g.P,
				Points:   len(g.Results),
				Seconds:  g.Elapsed.Seconds(),
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		if _, _, still := s.reg.Lookup(info.ID); !still {
			s.engine.DropPlansFor(m)
			return nil, fmt.Errorf("matrix %q: %w", info.ID, errMatrixDeleted)
		}
		s.cache.Add(key, &sweepEntry{results: collected})
		s.noteBackend(b.ID(), false)
		if err := s.sweepEpilogue(info, m); err != nil {
			return nil, err
		}
		return collected, nil
	}
}

// handleJobList is GET /v1/jobs: every retained job, submission order.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

// handleJobGet is GET /v1/jobs/{id}: the job record, plus its result
// rows once the job is done.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ji, ok := s.jobs.Result(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := map[string]any{"job": ji}
	if ji.State == jobs.StateDone {
		if rs, ok := res.([]core.Result); ok {
			if wantsColumnar(r) {
				// A finished job's rows as the raw columnar slab; the job
				// record moves to a header. Encoded per request — job
				// results live in the job store, not the sweep LRU.
				start := time.Now()
				body := wire.Encode(rs)
				s.encCol.encodes.Add(1)
				s.encCol.encodeNs.Add(time.Since(start).Nanoseconds())
				s.writeBody(w, wire.ContentType, &s.encCol, body, func(h http.Header) {
					h.Set(headerJob, ji.ID)
					h.Set(headerRows, strconv.Itoa(len(rs)))
				})
				return
			}
			resp["results"] = toResultsJSON(rs)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobDelete is DELETE /v1/jobs/{id}: cancel an active job (202
// with the post-cancel record — the terminal state lands when the task
// unwinds), or drop a terminal job's record (204).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if deleted, ok := s.jobs.Delete(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	} else if deleted {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	ji, _ := s.jobs.Cancel(id)
	writeJSON(w, http.StatusAccepted, map[string]any{"job": ji})
}

// handleJobEvents is GET /v1/jobs/{id}/events: a server-sent-events
// stream of progress snapshots — one event immediately (the current
// state), then an event per update with latest-wins coalescing, ending
// with the terminal state. Progress counts are monotone and finish at
// the job's total. The stream also ends when the client disconnects or
// the server drains.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, unsub, ok := s.jobs.Subscribe(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	defer unsub()
	ctx, cancel := s.reqCtx(r)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		select {
		case <-ctx.Done():
			return
		case ji := <-ch:
			blob, err := json.Marshal(ji)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", blob); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ji.State.Terminal() {
				return
			}
		}
	}
}
