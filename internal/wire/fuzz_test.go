package wire

import (
	"bytes"
	"testing"

	"copernicus/internal/core"
)

// FuzzDecode: Decode must never panic on arbitrary bytes, and any input
// it accepts must re-encode deterministically — Encode(Decode(x)) must
// itself decode to the same slab. (The re-encoded bytes are compared
// instead of the structs because arbitrary float bits can be NaN, which
// reflect.DeepEqual rejects by design.)
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CPWF"))
	f.Add(Encode(nil))
	valid := Encode(goldenResults())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0x41
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(rs)
		re2 := Encode(mustDecode(t, re))
		if !bytes.Equal(re, re2) {
			t.Fatalf("accepted input does not re-encode to a fixed point")
		}
	})
}

func mustDecode(t *testing.T, b []byte) []core.Result {
	rs, err := Decode(b)
	if err != nil {
		t.Fatalf("re-encoded slab failed to decode: %v", err)
	}
	return rs
}
