package wire

import (
	"context"
	"encoding/hex"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"copernicus/internal/backend"
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/scenario"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
)

// adversarialResults exercises every corner the layout must carry
// exactly: all 13 formats, every kernel-spec shape, degraded rows with
// annotation strings, modelled and measured rows, repeated and empty
// strings, negative ints, and float extremes (±Inf, signed zero,
// denormals, and both ends of the float64 range — NaN is checked
// separately because reflect.DeepEqual rejects NaN == NaN).
func adversarialResults() []core.Result {
	specs := []string{"spmv", "spmm:8", "cg:60", "jacobi:3", "pagerank:20", "bfs"}
	var rs []core.Result
	for i, k := range formats.All() {
		rs = append(rs, core.Result{
			Workload:          "wl-" + k.String(),
			Format:            k,
			P:                 8 << (i % 3),
			Kernel:            specs[i%len(specs)],
			Iterations:        1 + i,
			Backend:           []string{"analytic", "native"}[i%2],
			Measured:          i%2 == 1,
			MeasuredRuns:      i % 5,
			Threads:           i % 4,
			Degraded:          i%3 == 0,
			DegradedReason:    map[bool]string{true: "native measurement failed; analytic fallback", false: ""}[i%3 == 0],
			Sigma:             1 + float64(i)/3,
			BalanceRatio:      math.Inf(1),
			MeanMemCycles:     math.Copysign(0, -1),
			MeanComputeCycles: 5e-324,
			Seconds:           1.7976931348623157e308,
			ThroughputBps:     -2.2250738585072014e-308,
			NsPerNNZ:          float64(-i),
			BandwidthUtil:     math.Inf(-1),
			DotEngineUtil:     0.9999999999999999,
			InnerPipelineUtil: 1e-300,
			NonZeroTiles:      -i,
			TotalTiles:        1 << 30,
			TotalBytes:        i * 1_000_003,
			Synth: synth.Report{
				Format: k, P: 8, BRAM18K: i, FF: -7, LUT: 1 << 20,
				LogicMW: 0.25, BRAMMW: -0.5, SignalsMW: 3.5, ClockMW: 0.125,
				DynamicW: 0.875, StaticW: 0.103,
			},
			DynamicEnergyJ: 1e21,
			StaticEnergyJ:  1e-21,
		})
	}
	return rs
}

func TestRoundTripAdversarial(t *testing.T) {
	rs := adversarialResults()
	got, err := Decode(Encode(rs))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got[0], rs[0])
	}
}

// TestRoundTripNaN: NaN payload bits must survive even though DeepEqual
// cannot compare them.
func TestRoundTripNaN(t *testing.T) {
	rs := []core.Result{{Workload: "nan", Kernel: "spmv", Backend: "analytic",
		Seconds: math.Float64frombits(0x7ff8_dead_beef_0001)}}
	got, err := Decode(Encode(rs))
	if err != nil {
		t.Fatal(err)
	}
	if bits := math.Float64bits(got[0].Seconds); bits != 0x7ff8_dead_beef_0001 {
		t.Fatalf("NaN payload bits = %016x", bits)
	}
}

// TestRoundTripEngine: exact DeepEqual round trip over real engine
// output — the analytic backend across every implemented format and
// every kernel family, plus a measured native row.
func TestRoundTripEngine(t *testing.T) {
	e := core.New()
	ws := workloads.SuiteSparse(workloads.Config{Scale: 48, RandomDim: 48, BandDim: 48})[:3]
	var specs []scenario.Spec
	for _, s := range []string{"spmv", "spmm:2", "cg:3", "jacobi:2", "pagerank:2", "bfs"} {
		sc, err := scenario.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sc)
	}
	rs, err := e.SweepKernelsWith(context.Background(), nil, ws, specs, formats.All(), []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}

	// One measured row so the native backend's fields (Measured,
	// MeasuredRuns, Threads, wall-clock Seconds) cross the wire too.
	m := gen.Random(64, 0.05, 7)
	nat, err := e.CharacterizeWith(context.Background(), &backend.Native{Runs: 2}, "native-row", m, formats.CSR, 8)
	if err != nil {
		t.Fatal(err)
	}
	rs = append(rs, nat)

	got, err := Decode(Encode(rs))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatal("engine slab round trip is not exactly equal")
	}
}

// TestRoundTripEmpty: rows=0 encodes and decodes as nil.
func TestRoundTripEmpty(t *testing.T) {
	got, err := Decode(Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("empty slab decoded to %v, want nil", got)
	}
}

// goldenResults is a small fixed slab whose exact wire bytes are pinned
// below. If this test fails, the layout drifted: either revert the
// change or bump wire.Version and regenerate the fixture deliberately.
func goldenResults() []core.Result {
	return []core.Result{
		{
			Workload: "HM", Format: formats.CSR, P: 8, Kernel: "spmv", Iterations: 1,
			Backend: "analytic", Sigma: 1.5, BalanceRatio: 0.75, MeanMemCycles: 96,
			MeanComputeCycles: 128, Seconds: 0.0015, ThroughputBps: 2.5e9,
			NsPerNNZ: 12.25, BandwidthUtil: 0.5, DotEngineUtil: 0.25,
			InnerPipelineUtil: 0.125, NonZeroTiles: 7, TotalTiles: 16, TotalBytes: 4096,
			Synth: synth.Report{Format: formats.CSR, P: 8, BRAM18K: 2, FF: 310, LUT: 540,
				LogicMW: 0.5, BRAMMW: 1.25, SignalsMW: 0.75, ClockMW: 0.25, DynamicW: 2.75, StaticW: 0.121},
			DynamicEnergyJ: 0.004125, StaticEnergyJ: 0.0001815,
		},
		{
			Workload: "HM", Format: formats.ELL, P: 16, Kernel: "cg:60", Iterations: 60,
			Backend: "native", Measured: true, MeasuredRuns: 5, Threads: 2,
			Degraded: true, DegradedReason: "breaker open; analytic fallback",
			Sigma: 2, BalanceRatio: 1, MeanMemCycles: 64, MeanComputeCycles: 64,
			Seconds: 0.25, ThroughputBps: 1e6, NsPerNNZ: 3.5, BandwidthUtil: 1,
			DotEngineUtil: 1, InnerPipelineUtil: 1, NonZeroTiles: 4, TotalTiles: 4, TotalBytes: 100,
			Synth: synth.Report{Format: formats.ELL, P: 16, BRAM18K: 1, FF: 100, LUT: 200,
				LogicMW: 0.25, BRAMMW: 0.5, SignalsMW: 0.25, ClockMW: 0.125, DynamicW: 1.125, StaticW: 0.103},
			DynamicEnergyJ: 0.28125, StaticEnergyJ: 0.02575,
		},
	}
}

func TestGoldenFixture(t *testing.T) {
	got := hex.EncodeToString(Encode(goldenResults()))
	if got != goldenHex {
		t.Fatalf("wire bytes drifted from the version-%d golden fixture.\n got %s\nwant %s\n"+
			"If the layout change is intentional, bump wire.Version and regenerate.", Version, got, goldenHex)
	}
	rs, err := Decode(Encode(goldenResults()))
	if err != nil || !reflect.DeepEqual(rs, goldenResults()) {
		t.Fatalf("golden slab does not round trip: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := Encode(goldenResults())
	flip := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xff
		return b
	}
	cases := map[string][]byte{
		"empty":           {},
		"short":           valid[:8],
		"bad magic":       flip(0),
		"bad version":     flip(4),
		"bad crc":         flip(len(valid) - 1),
		"flipped payload": flip(len(valid) / 2),
		"truncated":       valid[:len(valid)-9],
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		} else if !errors.Is(err, ErrCorrupt) && name != "bad crc" {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
	// A huge declared row count must be rejected before allocation.
	huge := append([]byte(nil), magic[:]...)
	huge = append(huge, 1)                            // version
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // rows varint, ~34 G
	huge = append(huge, 0)                            // empty table
	sum := crc32Of(huge)
	huge = append(huge, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	if _, err := Decode(huge); err == nil || !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("oversized row count not rejected: %v", err)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	rs := adversarialResults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(rs)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	blob := Encode(adversarialResults())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
