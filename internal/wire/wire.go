// Package wire implements the service's compact columnar encoding of
// characterization result sets — the zero-marshal body negotiated with
// Accept: application/x-copernicus-col.
//
// # Layout (version 1)
//
// A slab is column-major: every field of core.Result is stored as one
// contiguous column across all rows, so repeated structure (the same
// workload ID on 24 rows, the same backend on all of them) compresses
// into interned string-table references and one-byte varints instead of
// repeating JSON keys and quoted strings per row.
//
//	magic    4 bytes          "CPWF"
//	version  uvarint          1
//	rows     uvarint          row count
//	table    uvarint count,   interned strings, first-appearance order
//	         then per string: (column-major scan over the four string
//	         uvarint len +    columns: workload, kernel, backend,
//	         raw bytes        degraded_reason)
//	columns  fixed order, see below
//	crc      4 bytes LE       IEEE CRC-32 of everything before it
//
// Column order follows core.Result field order. String columns are one
// uvarint table index per row; int columns are zigzag varints (any Go
// int round-trips, negatives included); bool columns are packed bitsets
// (row i at byte i/8, bit i%8); float64 columns are 8·rows bytes of
// little-endian IEEE 754 bits (exact — NaN payloads and signed zeros
// survive).
//
//	workload(str) format(int) p(int) kernel(str) iterations(int)
//	backend(str) measured(bool) measured_runs(int) threads(int)
//	degraded(bool) degraded_reason(str)
//	sigma balance_ratio mean_mem_cycles mean_compute_cycles seconds
//	throughput_bps ns_per_nnz bandwidth_util dot_engine_util
//	inner_pipeline_util (floats)
//	nonzero_tiles total_tiles total_bytes (ints)
//	synth.format synth.p synth.bram18k synth.ff synth.lut (ints)
//	synth.logic_mw synth.bram_mw synth.signals_mw synth.clock_mw
//	synth.dynamic_w synth.static_w dynamic_energy_j static_energy_j
//	(floats)
//
// # Stability contract
//
// The layout above is frozen for version 1: any change to the column
// set, column order, or primitive encodings requires incrementing
// Version, and decoders reject versions they do not know. Adding a
// field to core.Result therefore forces a deliberate version bump here
// (the golden-fixture test catches accidental drift). Decode(Encode(rs))
// is exactly equal (reflect.DeepEqual) for every non-empty result set;
// an empty or nil set encodes as rows=0 and decodes as nil.
//
// Decode never panics on arbitrary input: every read is bounds-checked,
// the CRC is verified before any column is parsed, and row/table counts
// are sanity-bounded against the input length before allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"copernicus/internal/core"
	"copernicus/internal/formats"
)

// ContentType is the MIME type the service negotiates for columnar
// bodies.
const ContentType = "application/x-copernicus-col"

// Version is the current layout version; Decode rejects others.
const Version = 1

var magic = [4]byte{'C', 'P', 'W', 'F'}

// ErrCorrupt wraps every Decode failure: short input, bad magic, CRC
// mismatch, unknown version, or inconsistent counts.
var ErrCorrupt = errors.New("wire: corrupt columnar slab")

// floatCols is the number of float64 columns per row; with the int and
// string columns' one-byte minimum it bounds how many rows a slab of a
// given length can possibly hold (decode-time allocation sanity check).
const floatCols = 17

// minRowBytes is the smallest possible wire footprint of one row.
const minRowBytes = floatCols*8 + 13 // 13 varint columns at 1 byte each

// Encode serializes a result slab into the version-1 columnar layout.
// The returned slice is freshly allocated and safe to retain.
func Encode(rs []core.Result) []byte {
	// Intern the string columns in the documented column-major order so
	// the table (and therefore the whole slab) is deterministic.
	idx := make(map[string]uint64, 8)
	var table []string
	intern := func(s string) {
		if _, ok := idx[s]; !ok {
			idx[s] = uint64(len(table))
			table = append(table, s)
		}
	}
	tableBytes := 0
	for i := range rs {
		intern(rs[i].Workload)
	}
	for i := range rs {
		intern(rs[i].Kernel)
	}
	for i := range rs {
		intern(rs[i].Backend)
	}
	for i := range rs {
		intern(rs[i].DegradedReason)
	}
	for _, s := range table {
		tableBytes += len(s) + binary.MaxVarintLen64
	}

	b := make([]byte, 0, 32+tableBytes+len(rs)*(floatCols*8+13*2)+8)
	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, Version)
	b = binary.AppendUvarint(b, uint64(len(rs)))
	b = binary.AppendUvarint(b, uint64(len(table)))
	for _, s := range table {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}

	strCol := func(get func(*core.Result) string) {
		for i := range rs {
			b = binary.AppendUvarint(b, idx[get(&rs[i])])
		}
	}
	intCol := func(get func(*core.Result) int) {
		for i := range rs {
			v := int64(get(&rs[i]))
			b = binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
		}
	}
	boolCol := func(get func(*core.Result) bool) {
		start := len(b)
		b = append(b, make([]byte, (len(rs)+7)/8)...)
		for i := range rs {
			if get(&rs[i]) {
				b[start+i/8] |= 1 << (i % 8)
			}
		}
	}
	floatCol := func(get func(*core.Result) float64) {
		for i := range rs {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(get(&rs[i])))
		}
	}

	strCol(func(r *core.Result) string { return r.Workload })
	intCol(func(r *core.Result) int { return int(r.Format) })
	intCol(func(r *core.Result) int { return r.P })
	strCol(func(r *core.Result) string { return r.Kernel })
	intCol(func(r *core.Result) int { return r.Iterations })
	strCol(func(r *core.Result) string { return r.Backend })
	boolCol(func(r *core.Result) bool { return r.Measured })
	intCol(func(r *core.Result) int { return r.MeasuredRuns })
	intCol(func(r *core.Result) int { return r.Threads })
	boolCol(func(r *core.Result) bool { return r.Degraded })
	strCol(func(r *core.Result) string { return r.DegradedReason })
	floatCol(func(r *core.Result) float64 { return r.Sigma })
	floatCol(func(r *core.Result) float64 { return r.BalanceRatio })
	floatCol(func(r *core.Result) float64 { return r.MeanMemCycles })
	floatCol(func(r *core.Result) float64 { return r.MeanComputeCycles })
	floatCol(func(r *core.Result) float64 { return r.Seconds })
	floatCol(func(r *core.Result) float64 { return r.ThroughputBps })
	floatCol(func(r *core.Result) float64 { return r.NsPerNNZ })
	floatCol(func(r *core.Result) float64 { return r.BandwidthUtil })
	floatCol(func(r *core.Result) float64 { return r.DotEngineUtil })
	floatCol(func(r *core.Result) float64 { return r.InnerPipelineUtil })
	intCol(func(r *core.Result) int { return r.NonZeroTiles })
	intCol(func(r *core.Result) int { return r.TotalTiles })
	intCol(func(r *core.Result) int { return r.TotalBytes })
	intCol(func(r *core.Result) int { return int(r.Synth.Format) })
	intCol(func(r *core.Result) int { return r.Synth.P })
	intCol(func(r *core.Result) int { return r.Synth.BRAM18K })
	intCol(func(r *core.Result) int { return r.Synth.FF })
	intCol(func(r *core.Result) int { return r.Synth.LUT })
	floatCol(func(r *core.Result) float64 { return r.Synth.LogicMW })
	floatCol(func(r *core.Result) float64 { return r.Synth.BRAMMW })
	floatCol(func(r *core.Result) float64 { return r.Synth.SignalsMW })
	floatCol(func(r *core.Result) float64 { return r.Synth.ClockMW })
	floatCol(func(r *core.Result) float64 { return r.Synth.DynamicW })
	floatCol(func(r *core.Result) float64 { return r.Synth.StaticW })
	floatCol(func(r *core.Result) float64 { return r.DynamicEnergyJ })
	floatCol(func(r *core.Result) float64 { return r.StaticEnergyJ })

	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// reader is a bounds-checked cursor over the payload (CRC stripped).
type reader struct {
	data []byte
	off  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int(int64(u>>1) ^ -int64(u&1)), nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, fmt.Errorf("%w: %d bytes wanted at offset %d, %d remain", ErrCorrupt, n, r.off, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Rows peeks a slab's row count from its header without decoding the
// columns or verifying the CRC — the cheap sanity check a cluster
// coordinator runs on a worker's response before committing to a full
// Decode. It validates only the magic, the version, and that the
// declared count can fit in the payload; a slab that passes Rows can
// still fail Decode's CRC and bounds checks.
func Rows(data []byte) (int, error) {
	if len(data) < len(magic)+3+4 {
		return 0, fmt.Errorf("%w: %d bytes is shorter than the minimal slab", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	r := &reader{data: data[:len(data)-4], off: len(magic)}
	version, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if version != Version {
		return 0, fmt.Errorf("%w: unknown version %d (decoder knows %d)", ErrCorrupt, version, Version)
	}
	rows64, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if rows64 > uint64(len(data)-4)/minRowBytes {
		return 0, fmt.Errorf("%w: %d rows cannot fit in %d bytes", ErrCorrupt, rows64, len(data)-4)
	}
	return int(rows64), nil
}

// Decode parses a version-1 columnar slab back into a result slab. It
// verifies the CRC before parsing, bounds-checks every read, and never
// panics on malformed input. A rows=0 slab decodes as nil.
func Decode(data []byte) ([]core.Result, error) {
	if len(data) < len(magic)+3+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal slab", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	r := &reader{data: payload, off: len(magic)}

	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("%w: unknown version %d (decoder knows %d)", ErrCorrupt, version, Version)
	}
	rows64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rows64 > uint64(len(payload))/minRowBytes {
		return nil, fmt.Errorf("%w: %d rows cannot fit in %d bytes", ErrCorrupt, rows64, len(payload))
	}
	n := int(rows64)

	tcount, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if tcount > uint64(len(payload)-r.off) {
		return nil, fmt.Errorf("%w: %d table strings cannot fit in %d bytes", ErrCorrupt, tcount, len(payload)-r.off)
	}
	table := make([]string, tcount)
	for i := range table {
		slen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := r.bytes(int(slen))
		if err != nil {
			return nil, err
		}
		table[i] = string(raw)
	}

	rs := make([]core.Result, n)
	strCol := func(set func(*core.Result, string)) error {
		for i := range rs {
			idx, err := r.uvarint()
			if err != nil {
				return err
			}
			if idx >= uint64(len(table)) {
				return fmt.Errorf("%w: string index %d outside table of %d", ErrCorrupt, idx, len(table))
			}
			set(&rs[i], table[idx])
		}
		return nil
	}
	intCol := func(set func(*core.Result, int)) error {
		for i := range rs {
			v, err := r.varint()
			if err != nil {
				return err
			}
			set(&rs[i], v)
		}
		return nil
	}
	boolCol := func(set func(*core.Result, bool)) error {
		bits, err := r.bytes((n + 7) / 8)
		if err != nil {
			return err
		}
		for i := range rs {
			set(&rs[i], bits[i/8]&(1<<(i%8)) != 0)
		}
		return nil
	}
	floatCol := func(set func(*core.Result, float64)) error {
		raw, err := r.bytes(8 * n)
		if err != nil {
			return err
		}
		for i := range rs {
			set(&rs[i], math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
		return nil
	}

	cols := []func() error{
		func() error { return strCol(func(r *core.Result, s string) { r.Workload = s }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Format = formats.Kind(v) }) },
		func() error { return intCol(func(r *core.Result, v int) { r.P = v }) },
		func() error { return strCol(func(r *core.Result, s string) { r.Kernel = s }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Iterations = v }) },
		func() error { return strCol(func(r *core.Result, s string) { r.Backend = s }) },
		func() error { return boolCol(func(r *core.Result, v bool) { r.Measured = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.MeasuredRuns = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Threads = v }) },
		func() error { return boolCol(func(r *core.Result, v bool) { r.Degraded = v }) },
		func() error { return strCol(func(r *core.Result, s string) { r.DegradedReason = s }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Sigma = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.BalanceRatio = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.MeanMemCycles = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.MeanComputeCycles = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Seconds = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.ThroughputBps = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.NsPerNNZ = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.BandwidthUtil = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.DotEngineUtil = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.InnerPipelineUtil = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.NonZeroTiles = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.TotalTiles = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.TotalBytes = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Synth.Format = formats.Kind(v) }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Synth.P = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Synth.BRAM18K = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Synth.FF = v }) },
		func() error { return intCol(func(r *core.Result, v int) { r.Synth.LUT = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.LogicMW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.BRAMMW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.SignalsMW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.ClockMW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.DynamicW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.Synth.StaticW = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.DynamicEnergyJ = v }) },
		func() error { return floatCol(func(r *core.Result, v float64) { r.StaticEnergyJ = v }) },
	}
	for _, col := range cols {
		if err := col(); err != nil {
			return nil, err
		}
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-r.off)
	}
	if n == 0 {
		return nil, nil
	}
	return rs, nil
}
