package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"copernicus/internal/backend"
	"copernicus/internal/core"
	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/jobs"
	"copernicus/internal/resilience"
	"copernicus/internal/service"
)

// cleanSlate disarms every fault point and resets the process-wide
// native measurement state before and after a chaos test, so fault
// plans never bleed between tests.
func cleanSlate(t *testing.T) {
	t.Helper()
	faults.DisarmAll()
	backend.ResetNativeMeasureStats()
	t.Cleanup(func() {
		faults.DisarmAll()
		backend.ResetNativeMeasureStats()
	})
}

// chaosServer builds a service over a real HTTP listener.
func chaosServer(t *testing.T, o service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	if o.Scale == 0 {
		o.Scale = 64
	}
	s := service.New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

// getJSON fetches url and decodes the JSON body.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil && err != io.EOF {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestChaosBitIdentityAcrossContainedFaults: an engine that survived a
// storm of contained encode panics produces results bit-identical to a
// never-faulted engine — containment abandons work unpublished instead
// of leaking partial state into plans or pools.
func TestChaosBitIdentityAcrossContainedFaults(t *testing.T) {
	cleanSlate(t)
	m := gen.Random(192, 0.05, 41)
	kinds := []formats.Kind{formats.CSR, formats.ELL, formats.COO}
	ctx := context.Background()

	ref := core.New()
	want, err := ref.SweepFormatsWith(ctx, backend.Analytic{}, "m", m, 16, kinds)
	if err != nil {
		t.Fatal(err)
	}

	e := core.New()
	for i := 0; i < 5; i++ {
		faults.Point("hlsim.encode.tile").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})
		_, err := e.SweepFormatsWith(ctx, backend.Analytic{}, "m", m, 16, kinds)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("storm run %d: err = %v, want contained PanicError", i, err)
		}
	}
	faults.DisarmAll()
	got, err := e.SweepFormatsWith(ctx, backend.Analytic{}, "m", m, 16, kinds)
	if err != nil {
		t.Fatalf("post-storm sweep: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-storm results differ from a never-faulted engine:\n got %+v\nwant %+v", got, want)
	}
}

// TestChaosEnvPlanRetriesNativeMeasurement: a fault plan in the
// COPERNICUS_FAULTS grammar arms a one-shot transient measurement
// failure; the native backend retries behind the scenes and the request
// still answers a measured result, with the retry on the books.
func TestChaosEnvPlanRetriesNativeMeasurement(t *testing.T) {
	cleanSlate(t)
	if err := faults.ArmPlan("backend.native.measure:error:times=1,transient"); err != nil {
		t.Fatal(err)
	}
	_, ts := chaosServer(t, service.Options{})

	code, body := getJSON(t, ts, "/v1/characterize?matrix=2C&format=CSR&p=8&backend=native")
	if code != http.StatusOK {
		t.Fatalf("characterize = %d %v", code, body)
	}
	res := body["result"].(map[string]any)
	if res["measured"] != true {
		t.Fatalf("transient fault should be retried into a measured result: %v", res)
	}
	if res["degraded"] == true {
		t.Fatalf("one transient failure must not degrade: %v", res)
	}
	st := backend.NativeMeasureStats()
	if st.Retries < 1 || st.Failures < 1 {
		t.Fatalf("native stats = %+v, want the retry recorded", st)
	}
}

// TestChaosNativeDegradationAnnotatedInRows: persistent measurement
// failure past a low-threshold breaker degrades native rows to the
// analytic model — annotated in the response, numerically equal to the
// analytic backend's own rows, and visible on /v1/stats — instead of
// failing the sweep.
func TestChaosNativeDegradationAnnotatedInRows(t *testing.T) {
	cleanSlate(t)
	backend.SetMeasureBreaker(resilience.NewBreaker(1, time.Minute))
	if err := faults.ArmPlan("backend.native.measure:error:transient"); err != nil {
		t.Fatal(err)
	}
	_, ts := chaosServer(t, service.Options{})

	code, body := getJSON(t, ts, "/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8&backend=native")
	if code != http.StatusOK {
		t.Fatalf("degraded sweep must still answer 200, got %d %v", code, body)
	}
	rows := body["results"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	code, analytic := getJSON(t, ts, "/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8")
	if code != http.StatusOK {
		t.Fatalf("analytic sweep = %d", code)
	}
	arows := analytic["results"].([]any)
	for i, raw := range rows {
		row := raw.(map[string]any)
		if row["degraded"] != true || row["measured"] == true {
			t.Fatalf("row %d not annotated as degraded: %v", i, row)
		}
		reason, _ := row["degraded_reason"].(string)
		if !strings.Contains(reason, "analytic fallback") {
			t.Fatalf("row %d degraded_reason = %q", i, reason)
		}
		if row["seconds"] != arows[i].(map[string]any)["seconds"] {
			t.Fatalf("row %d: degraded seconds %v != analytic %v", i, row["seconds"], arows[i].(map[string]any)["seconds"])
		}
	}

	_, stats := getJSON(t, ts, "/v1/stats")
	nm := stats["failures"].(map[string]any)["native_measure"].(map[string]any)
	if nm["degraded"].(float64) < 2 {
		t.Fatalf("stats native_measure = %v, want >= 2 degraded evaluations", nm)
	}
	if br := nm["breaker"].(map[string]any); br["state"] != "open" {
		t.Fatalf("breaker should be open after persistent failure: %v", br)
	}
}

// TestChaosPanicStormServiceSurvives: a burst of handler-compute panics
// is absorbed as structured 500s; the process stays healthy throughout
// and serves normally once the storm passes.
func TestChaosPanicStormServiceSurvives(t *testing.T) {
	cleanSlate(t)
	const storm = 4
	if err := faults.ArmPlan("service.sweep:panic:times=4"); err != nil {
		t.Fatal(err)
	}
	s, ts := chaosServer(t, service.Options{})

	for i := 0; i < storm; i++ {
		code, body := getJSON(t, ts, "/v1/sweep?matrix=2C&formats=CSR&partitions=8")
		if code != http.StatusInternalServerError {
			t.Fatalf("storm request %d = %d %v, want 500", i, code, body)
		}
		if code, _ := getJSON(t, ts, "/v1/healthz"); code != http.StatusOK {
			t.Fatalf("healthz flapped mid-storm (request %d)", i)
		}
	}
	code, _ := getJSON(t, ts, "/v1/sweep?matrix=2C&formats=CSR&partitions=8")
	if code != http.StatusOK {
		t.Fatalf("post-storm sweep = %d", code)
	}
	if n := s.HandlerPanics(); n != storm {
		t.Fatalf("handler panics = %d, want %d", n, storm)
	}
}

// TestChaosJobFleetQuarantineThenRecovery: with every job attempt
// panicking, a fleet of submissions lands in quarantine with the
// attempt budget spent and the runners alive; once the fault clears the
// same service completes new jobs normally.
func TestChaosJobFleetQuarantineThenRecovery(t *testing.T) {
	cleanSlate(t)
	if err := faults.ArmPlan("jobs.run:panic"); err != nil {
		t.Fatal(err)
	}
	s, ts := chaosServer(t, service.Options{JobRetries: 2, JobWorkers: 2, JobQueue: 8})

	submit := func(p int) string {
		t.Helper()
		body := strings.NewReader(fmt.Sprintf(`{"matrix":"2C","formats":["CSR"],"partitions":[%d]}`, p))
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs/sweep", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d %v", resp.StatusCode, out)
		}
		return out["job"].(map[string]any)["id"].(string)
	}
	waitTerminal := func(id string) jobs.Info {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			ji, ok := s.Jobs().Get(id)
			if !ok {
				t.Fatalf("job %s disappeared", id)
			}
			if ji.State.Terminal() {
				return ji
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, ji.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ids := []string{submit(4), submit(8), submit(8)}
	for _, id := range ids {
		ji := waitTerminal(id)
		if ji.State != jobs.StateQuarantined {
			t.Fatalf("job %s = %s, want quarantined", id, ji.State)
		}
		if ji.Attempt != ji.MaxAttempts || ji.Attempt != 2 {
			t.Fatalf("job %s attempt %d/%d, want the full 2/2 budget", id, ji.Attempt, ji.MaxAttempts)
		}
	}
	st := s.Jobs().Stats()
	if st.Quarantined != 3 || st.PanicsRecovered != 6 {
		t.Fatalf("jobs stats = %+v, want 3 quarantined / 6 recovered panics", st)
	}

	faults.DisarmAll()
	if ji := waitTerminal(submit(8)); ji.State != jobs.StateDone {
		t.Fatalf("post-storm job = %s (%s), runners should have survived the storm", ji.State, ji.Error)
	}
}

// TestChaosReadyzTracksSaturationAndDrain: readiness degrades with the
// job queue and with shutdown, while liveness holds — the service tells
// an orchestrator to route away without being killed.
func TestChaosReadyzTracksSaturationAndDrain(t *testing.T) {
	cleanSlate(t)
	s, ts := chaosServer(t, service.Options{JobQueue: 1})

	if code, body := getJSON(t, ts, "/v1/readyz"); code != http.StatusOK {
		t.Fatalf("fresh readyz = %d %v", code, body)
	}

	// Saturate: one parked job on the runner, one filling the queue.
	release := make(chan struct{})
	park := func(ctx context.Context, report func(int, jobs.GroupTiming)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	ji, err := s.Jobs().Submit("parked", 1, park)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Jobs().Get(ji.ID)
		if cur.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runner never started the parked job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Jobs().Submit("queued", 1, park); err != nil {
		t.Fatal(err)
	}
	if code, body := getJSON(t, ts, "/v1/readyz"); code != http.StatusServiceUnavailable || body["status"] != "saturated" {
		t.Fatalf("saturated readyz = %d %v", code, body)
	}
	close(release)

	s.Shutdown()
	if code, body := getJSON(t, ts, "/v1/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v", code, body)
	}
	if code, _ := getJSON(t, ts, "/v1/healthz"); code != http.StatusOK {
		t.Fatal("healthz must stay 200 through the drain")
	}
}

// TestChaosNoGoroutineLeakAfterStorm: a mixed fault storm (handler
// panics, mid-sweep group faults, job panics) followed by shutdown
// returns the process to its baseline goroutine count — containment
// never strands workers.
func TestChaosNoGoroutineLeakAfterStorm(t *testing.T) {
	cleanSlate(t)
	base := runtime.NumGoroutine()

	func() {
		s := service.New(service.Options{Scale: 64, JobRetries: 2})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Shutdown()
		}()

		if err := faults.ArmPlan("service.sweep:panic:times=2; core.sweep.group:error:after=2,times=1; jobs.run:panic:times=2"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			resp, err := ts.Client().Get(ts.URL + "/v1/sweep?matrix=2C&formats=CSR,COO&partitions=8,16")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs/sweep", "application/json",
			strings.NewReader(`{"matrix":"2C","formats":["CSR"],"partitions":[8]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st := s.Jobs().Stats(); st.Queued == 0 && st.Running == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("jobs never drained")
			}
			time.Sleep(5 * time.Millisecond)
		}
		ts.Client().CloseIdleConnections()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after storm+shutdown, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
