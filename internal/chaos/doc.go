// Package chaos is the cross-layer fault-injection test suite: it arms
// deterministic fault plans (the same COPERNICUS_FAULTS grammar a live
// server accepts) against a real service over HTTP and against the bare
// engine, and asserts the containment contracts end to end — panics
// answered as structured 500s with the process intact, transient native
// measurement failures retried then degraded to annotated analytic
// rows past the breaker, job fleets quarantined and recovered, and
// analytic results bit-identical once faults clear. The package holds
// only tests; run it with the race detector:
//
//	go test -race ./internal/chaos
package chaos
