// Package jobs is the asynchronous execution subsystem of the
// characterization service: a bounded-queue job manager that runs
// long sweeps in the background with live progress, cancellation, and
// subscription-based event delivery.
//
// A job is a cancelable task with a known total amount of work (sweep
// points). Submit enqueues it; a fixed pool of runner goroutines drains
// the queue; Get/List snapshot progress; Cancel aborts a queued or
// running job through its context; Subscribe feeds a server-sent-events
// stream. The manager itself is anchored to a root context — cancel it
// (service shutdown) and every queued and running job is canceled too,
// which is what lets a draining server abandon in-flight work instead of
// running it to completion.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/faults"
	"copernicus/internal/resilience"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Queued and Running are active; Done, Failed,
// Canceled and Quarantined are terminal. Quarantined is the retry dead
// end: the task kept failing retryably (panics, transient faults) until
// the attempt budget ran out, so the job is parked rather than silently
// re-queued — the record says exactly how many attempts were burned.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateQuarantined
}

// ptJobRun lets the chaos suite fail or panic job attempts: armed
// transient, it exercises the retry path; armed as a panic, the per-job
// recovery; armed persistently, quarantine.
var ptJobRun = faults.Point("jobs.run")

// GroupTiming records one completed (workload, p) group of a sweep job:
// how many points it contributed and how long its compute took.
type GroupTiming struct {
	Workload string  `json:"workload"`
	P        int     `json:"p"`
	Points   int     `json:"points"`
	Seconds  float64 `json:"seconds"`
}

// Info is an immutable snapshot of a job's state and progress.
type Info struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	State State  `json:"state"`
	// Done counts completed sweep points out of Total.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error carries the failure (or cancellation) cause for terminal
	// non-Done states.
	Error string `json:"error,omitempty"`
	// Attempt is the 1-based execution attempt this snapshot describes;
	// MaxAttempts is the configured budget. Attempt is 0 while queued and
	// stays at the final attempt in terminal states, so a quarantined job
	// reads Attempt == MaxAttempts.
	Attempt     int           `json:"attempt,omitempty"`
	MaxAttempts int           `json:"max_attempts,omitempty"`
	CreatedAt   time.Time     `json:"created_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Groups      []GroupTiming `json:"groups,omitempty"`
}

// Task is the work a job performs. It must honor ctx cancellation
// promptly and report progress via report as groups of points complete.
// The returned value is retained as the job's result on success.
type Task func(ctx context.Context, report func(points int, g GroupTiming)) (any, error)

// Submission errors.
var (
	// ErrQueueFull rejects a Submit when the bounded queue is at
	// capacity — the service's load-shedding signal (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown rejects a Submit after the manager's root context
	// was canceled.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
)

type job struct {
	mu     sync.Mutex
	info   Info
	result any
	task   Task
	ctx    context.Context
	cancel context.CancelFunc
	subs   map[chan Info]struct{}
}

// snapshotLocked deep-copies the mutable Groups slice so callers never
// observe a concurrent append.
func (j *job) snapshotLocked() Info {
	out := j.info
	out.Groups = append([]GroupTiming(nil), j.info.Groups...)
	return out
}

// broadcastLocked pushes the current snapshot to every subscriber with
// latest-wins semantics: a slow consumer misses intermediate updates but
// always observes the newest (and, eventually, the terminal) state, and
// progress counts it does observe are monotone.
func (j *job) broadcastLocked() {
	if len(j.subs) == 0 {
		return
	}
	snap := j.snapshotLocked()
	for ch := range j.subs {
		select {
		case ch <- snap:
		default:
			select {
			case <-ch: // drop the stale update
			default:
			}
			select {
			case ch <- snap:
			default:
			}
		}
	}
}

// Manager runs submitted jobs on a fixed pool of runner goroutines with
// a bounded admission queue. Safe for concurrent use.
type Manager struct {
	root context.Context
	// notify wakes an idle runner after a Submit (buffered 1; runners
	// re-scan pending until empty, so a dropped send is never a lost
	// wakeup).
	notify chan struct{}

	mu sync.Mutex
	// pending is the admission queue, guarded by mu so admission
	// (Submit), cancellation (which frees the slot immediately), and the
	// runners' pop/drain are atomic with each other — a job can neither
	// be stranded queued after shutdown nor hold a queue slot once
	// canceled.
	pending  []*job
	queueCap int
	jobs     map[string]*job
	order    []string // insertion order, for List and record retention
	seq      int

	maxRecords int
	retries    Retries
	wg         sync.WaitGroup

	// Failure observability, surfaced via Stats on /v1/stats.
	running     atomic.Int64
	retried     atomic.Uint64
	quarantined atomic.Uint64
	panics      atomic.Uint64
}

// Retries configures per-job retry: a failed attempt whose error is
// retryable (resilience.Retryable — recovered panics and transient
// faults; never cancellations or plain task errors) is re-run from
// scratch with jittered exponential backoff, up to Max attempts total.
// Exhausting the budget quarantines the job. Configure once at manager
// construction time, before jobs run.
type Retries struct {
	// Max is the total attempt budget per job, first try included;
	// values below 1 mean 1 (no retry).
	Max int
	// BaseDelay/MaxDelay shape the full-jitter backoff between attempts
	// (zero BaseDelay retries immediately).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the backoff schedule deterministic for tests.
	Seed uint64
}

// Defaults for NewManager's zero parameters.
const (
	DefaultQueue = 16
	// DefaultRecords bounds retained terminal job records; the oldest
	// terminal records are evicted first. Active jobs are never evicted.
	DefaultRecords = 64
)

// NewManager starts a manager with `workers` runner goroutines and a
// bounded queue of `queueCap` jobs (zeros take DefaultQueue and one
// worker). Canceling root cancels every queued and running job and
// rejects further submissions; Wait blocks until the runners exit.
func NewManager(root context.Context, workers, queueCap int) *Manager {
	if root == nil {
		root = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = DefaultQueue
	}
	m := &Manager{
		root:       root,
		notify:     make(chan struct{}, 1),
		queueCap:   queueCap,
		jobs:       make(map[string]*job),
		maxRecords: DefaultRecords,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// SetRetries configures the per-job retry budget. Call before submitting
// jobs — the policy is read when a job starts running.
func (m *Manager) SetRetries(r Retries) {
	if r.Max < 1 {
		r.Max = 1
	}
	m.mu.Lock()
	m.retries = r
	m.mu.Unlock()
}

// Queued returns the number of jobs currently waiting in the admission
// queue — the service's readiness measure (readyz reports saturation
// when it reaches the queue capacity).
func (m *Manager) Queued() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queuedLocked()
}

// Stats is the manager's failure-observability snapshot.
type Stats struct {
	Queued          int    `json:"queued"`
	Running         int    `json:"running"`
	Retries         uint64 `json:"retries"`
	Quarantined     uint64 `json:"quarantined"`
	PanicsRecovered uint64 `json:"panics_recovered"`
}

// Stats snapshots queue depth, in-flight jobs, and the lifetime failure
// counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Queued:          m.Queued(),
		Running:         int(m.running.Load()),
		Retries:         m.retried.Load(),
		Quarantined:     m.quarantined.Load(),
		PanicsRecovered: m.panics.Load(),
	}
}

// Wait blocks until every runner goroutine has exited (after the root
// context is canceled and in-flight jobs have wound down).
func (m *Manager) Wait() { m.wg.Wait() }

// popLocked removes and returns the oldest still-queued pending job,
// discarding entries that went terminal while waiting (canceled queued
// jobs do not occupy a runner). If runnable work remains it re-notifies,
// so sibling runners wake too. Callers hold m.mu.
func (m *Manager) popLocked() *job {
	for len(m.pending) > 0 {
		j := m.pending[0]
		m.pending = m.pending[1:]
		j.mu.Lock()
		queued := j.info.State == StateQueued
		j.mu.Unlock()
		if !queued {
			continue
		}
		if len(m.pending) > 0 {
			select {
			case m.notify <- struct{}{}:
			default:
			}
		}
		return j
	}
	return nil
}

// queuedLocked counts pending jobs still in StateQueued — the admission
// measure, so canceled-but-not-yet-discarded entries never consume
// capacity. Callers hold m.mu.
func (m *Manager) queuedLocked() int {
	n := 0
	for _, j := range m.pending {
		j.mu.Lock()
		if j.info.State == StateQueued {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		j := m.popLocked()
		m.mu.Unlock()
		if j != nil {
			m.runJob(j)
			continue
		}
		select {
		case <-m.root.Done():
			// Drain under the admission lock: Submit either observed a
			// live root (so its job is in pending here) or observes the
			// cancellation and rejects — nothing can strand in "queued".
			m.mu.Lock()
			for {
				j := m.popLocked()
				if j == nil {
					break
				}
				j.finishCanceled(context.Cause(m.root))
			}
			m.mu.Unlock()
			return
		case <-m.notify:
		}
	}
}

// finishCanceled marks a still-queued job canceled.
func (j *job) finishCanceled(cause error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.info.State != StateQueued {
		return
	}
	now := time.Now()
	j.info.State = StateCanceled
	j.info.FinishedAt = &now
	if cause == nil {
		cause = context.Canceled
	}
	j.info.Error = cause.Error()
	j.broadcastLocked()
}

func (m *Manager) runJob(j *job) {
	if j.ctx.Err() != nil {
		// Canceled (or the manager shut down) between enqueue and
		// dequeue: never start the task.
		j.finishCanceled(context.Cause(j.ctx))
		return
	}
	m.mu.Lock()
	retries := m.retries
	m.mu.Unlock()
	if retries.Max < 1 {
		retries.Max = 1
	}
	j.mu.Lock()
	if j.info.State != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	now := time.Now()
	j.info.State = StateRunning
	j.info.StartedAt = &now
	j.info.Attempt = 1
	j.info.MaxAttempts = retries.Max
	j.broadcastLocked()
	task, ctx := j.task, j.ctx
	j.mu.Unlock()
	m.running.Add(1)
	defer m.running.Add(-1)

	report := func(points int, g GroupTiming) {
		j.mu.Lock()
		j.info.Done += points
		j.info.Groups = append(j.info.Groups, g)
		j.broadcastLocked()
		j.mu.Unlock()
	}

	// Each attempt runs the task under panic containment: a panic in the
	// task (or anything it calls that isn't already contained below) is
	// recovered into a *resilience.PanicError and classified like any
	// other attempt error — the runner goroutine and the process survive.
	// A retry restarts the job from scratch, so the attempt's partial
	// progress is rolled back first (subscribers see Done reset and the
	// attempt counter advance).
	pol := resilience.Policy{
		MaxAttempts: retries.Max,
		BaseDelay:   retries.BaseDelay,
		MaxDelay:    retries.MaxDelay,
		Seed:        retries.Seed,
		OnRetry: func(attempt int, _ error, _ time.Duration) {
			m.retried.Add(1)
			j.mu.Lock()
			j.info.Attempt = attempt + 1
			j.info.Done = 0
			j.info.Groups = nil
			j.broadcastLocked()
			j.mu.Unlock()
		},
	}
	var res any
	err := resilience.Retry(ctx, pol, func(ctx context.Context) (aerr error) {
		defer func() {
			if pe := resilience.Recovered(ptJobRun.Name(), recover()); pe != nil {
				m.panics.Add(1)
				aerr = pe
			}
		}()
		if ferr := ptJobRun.Hit(); ferr != nil {
			return ferr
		}
		r, terr := task(ctx, report)
		if terr != nil {
			return terr
		}
		res = r
		return nil
	})

	j.mu.Lock()
	end := time.Now()
	j.info.FinishedAt = &end
	switch {
	case err == nil:
		j.info.State = StateDone
		j.result = res
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.info.State = StateCanceled
		j.info.Error = err.Error()
	case resilience.Retryable(err):
		// The attempt budget ran out on an error that says "try again":
		// park the job instead of pretending the failure was diagnostic.
		m.quarantined.Add(1)
		j.info.State = StateQuarantined
		j.info.Error = fmt.Sprintf("quarantined after %d attempts: %v", j.info.Attempt, err)
	default:
		j.info.State = StateFailed
		j.info.Error = err.Error()
	}
	j.broadcastLocked()
	j.mu.Unlock()
	j.cancel() // release the job context's resources
}

// Submit enqueues a job. total is the number of progress points the task
// will report (sweep points); label is a human-readable description
// surfaced in Info. Returns ErrQueueFull when the bounded queue is at
// capacity and ErrShuttingDown after the root context is canceled.
func (m *Manager) Submit(label string, total int, task Task) (Info, error) {
	ctx, cancel := context.WithCancel(m.root)
	m.mu.Lock()
	// The shutdown check and the enqueue are atomic with the runners'
	// drain (both under m.mu): either the drain sees this job, or this
	// check sees the cancellation — a job can never strand in "queued".
	if m.root.Err() != nil {
		m.mu.Unlock()
		cancel()
		return Info{}, ErrShuttingDown
	}
	if m.queuedLocked() >= m.queueCap {
		m.mu.Unlock()
		cancel()
		return Info{}, ErrQueueFull
	}
	m.seq++
	j := &job{
		info: Info{
			ID:        fmt.Sprintf("job-%d", m.seq),
			Label:     label,
			State:     StateQueued,
			Total:     total,
			CreatedAt: time.Now(),
		},
		task:   task,
		ctx:    ctx,
		cancel: cancel,
		subs:   make(map[chan Info]struct{}),
	}
	m.pending = append(m.pending, j)
	m.jobs[j.info.ID] = j
	m.order = append(m.order, j.info.ID)
	m.evictRecordsLocked()
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}

	j.mu.Lock()
	snap := j.snapshotLocked()
	j.mu.Unlock()
	return snap, nil
}

// evictRecordsLocked trims retained *terminal* job records beyond
// maxRecords, oldest first. Active jobs always stay addressable.
func (m *Manager) evictRecordsLocked() {
	if len(m.order) <= m.maxRecords {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - m.maxRecords
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j != nil && func() bool {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.info.State.Terminal()
		}() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get snapshots one job by ID.
func (m *Manager) Get(id string) (Info, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(), true
}

// Result returns a done job's task result alongside its snapshot. The
// result is non-nil only in StateDone.
func (m *Manager) Result(id string) (any, Info, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, Info{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.snapshotLocked(), true
}

// List snapshots every retained job in submission order.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	js := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(js))
	for _, j := range js {
		j.mu.Lock()
		out = append(out, j.snapshotLocked())
		j.mu.Unlock()
	}
	return out
}

// Cancel aborts a queued or running job: queued jobs transition to
// canceled immediately (freeing their admission-queue slot for new
// submissions); running jobs have their context canceled and reach the
// canceled state when the task unwinds. Canceling a terminal job is a
// no-op. The returned snapshot reflects the post-cancel state.
func (m *Manager) Cancel(id string) (Info, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	j.mu.Lock()
	switch j.info.State {
	case StateQueued:
		now := time.Now()
		j.info.State = StateCanceled
		j.info.FinishedAt = &now
		j.info.Error = "canceled by request"
		j.broadcastLocked()
	case StateRunning:
		// The task observes ctx and unwinds; runJob publishes the
		// terminal state.
	}
	snap := j.snapshotLocked()
	j.mu.Unlock()
	j.cancel()
	return snap, true
}

// Delete removes a terminal job's record. It refuses (returning false
// with ok=true) while the job is active; unknown IDs return ok=false.
func (m *Manager) Delete(id string) (deleted, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, found := m.jobs[id]
	if !found {
		return false, false
	}
	j.mu.Lock()
	terminal := j.info.State.Terminal()
	j.mu.Unlock()
	if !terminal {
		return false, true
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true, true
}

// Subscribe registers for a job's progress events. The returned channel
// carries Info snapshots — the current state immediately, then every
// update with latest-wins coalescing — and is never closed; consumers
// should stop on a Terminal snapshot (guaranteed to be delivered) and
// must call the returned unsubscribe function.
func (m *Manager) Subscribe(id string) (<-chan Info, func(), bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch := make(chan Info, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	ch <- j.snapshotLocked() // buffered: cannot block
	j.mu.Unlock()
	unsub := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, unsub, true
}
