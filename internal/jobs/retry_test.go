package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"copernicus/internal/faults"
	"copernicus/internal/resilience"
)

// TestJobRetriesTransientFailure: a transiently failing task is re-run
// from scratch — progress rolls back, the attempt counter advances, and
// the final state is done.
func TestJobRetriesTransientFailure(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 3})
	var attempts atomic.Int64
	ji, err := m.Submit("flaky", 2, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		report(1, GroupTiming{Workload: "a", P: 8, Points: 1})
		if attempts.Add(1) < 3 {
			return nil, resilience.Transient(errors.New("glitch"))
		}
		report(1, GroupTiming{Workload: "a", P: 16, Points: 1})
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, ji.ID, StateDone)
	if done.Attempt != 3 || done.MaxAttempts != 3 {
		t.Fatalf("want success on attempt 3/3, got %d/%d", done.Attempt, done.MaxAttempts)
	}
	if done.Done != 2 || len(done.Groups) != 2 {
		t.Fatalf("retried attempts must roll progress back: Done=%d Groups=%d", done.Done, len(done.Groups))
	}
	st := m.Stats()
	if st.Retries != 2 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 2 retries 0 quarantined", st)
	}
}

// TestJobQuarantineAfterBudget: a task that fails retryably on every
// attempt lands in quarantined — not failed — with the attempt budget
// visible in the record.
func TestJobQuarantineAfterBudget(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 2})
	ji, err := m.Submit("doomed", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		return nil, resilience.Transient(errors.New("still broken"))
	})
	if err != nil {
		t.Fatal(err)
	}
	q := waitState(t, m, ji.ID, StateQuarantined)
	if !q.State.Terminal() {
		t.Fatal("quarantined must be terminal")
	}
	if q.Attempt != 2 || !strings.Contains(q.Error, "quarantined after 2 attempts") {
		t.Fatalf("quarantine record = %+v", q)
	}
	if st := m.Stats(); st.Quarantined != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestJobPanicRecovered: a panicking task does not kill the runner — the
// panic becomes a PanicError, is retried like a transient fault, and the
// runner keeps serving later jobs.
func TestJobPanicRecovered(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 2})
	var attempts atomic.Int64
	ji, err := m.Submit("panicky", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		if attempts.Add(1) == 1 {
			panic("kaboom")
		}
		return "recovered", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, ji.ID, StateDone)
	if done.Attempt != 2 {
		t.Fatalf("want success on the post-panic attempt, got %+v", done)
	}
	if st := m.Stats(); st.PanicsRecovered != 1 {
		t.Fatalf("stats = %+v, want 1 recovered panic", st)
	}

	// The same runner goroutine survives to run the next job.
	ji2, err := m.Submit("after", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ji2.ID, StateDone)
}

// TestJobPanicEveryAttemptQuarantines: persistent panics exhaust the
// budget into quarantine with the panic provenance in the error.
func TestJobPanicEveryAttemptQuarantines(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 2})
	ji, err := m.Submit("always panics", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		panic("unrecoverable bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	q := waitState(t, m, ji.ID, StateQuarantined)
	if !strings.Contains(q.Error, "unrecoverable bug") || !strings.Contains(q.Error, "panic") {
		t.Fatalf("quarantine error should carry the panic: %q", q.Error)
	}
	if st := m.Stats(); st.PanicsRecovered != 2 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestJobPlainErrorNotRetried: an ordinary task error is diagnostic —
// one attempt, state failed, no retry burn.
func TestJobPlainErrorNotRetried(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 3})
	var attempts atomic.Int64
	ji, err := m.Submit("broken input", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		attempts.Add(1)
		return nil, errors.New("bad matrix")
	})
	if err != nil {
		t.Fatal(err)
	}
	f := waitState(t, m, ji.ID, StateFailed)
	if attempts.Load() != 1 || f.Error != "bad matrix" {
		t.Fatalf("attempts=%d info=%+v", attempts.Load(), f)
	}
	if st := m.Stats(); st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestJobRunFaultPoint: the jobs.run injection point fires before the
// task — a transient injection retries, and the hit counter proves each
// attempt passed through the point.
func TestJobRunFaultPoint(t *testing.T) {
	defer faults.DisarmAll()
	pt := faults.Point("jobs.run")
	pt.Arm(faults.Injection{Times: 1, Transient: true})

	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 2})
	var ran atomic.Int64
	ji, err := m.Submit("inject", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, ji.ID, StateDone)
	if done.Attempt != 2 || ran.Load() != 1 {
		t.Fatalf("injected first attempt should never reach the task: attempt=%d ran=%d", done.Attempt, ran.Load())
	}
	if pt.Hits() != 2 {
		t.Fatalf("fault point hits = %d, want 2", pt.Hits())
	}
}

// TestJobCancelDuringRetryBackoff: cancellation between attempts ends
// the job canceled, not quarantined.
func TestJobCancelDuringRetryBackoff(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	m.SetRetries(Retries{Max: 10, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 7})
	started := make(chan struct{}, 1)
	ji, err := m.Submit("backoff", 1, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		return nil, resilience.Transient(errors.New("flap"))
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m.Cancel(ji.ID)
	waitState(t, m, ji.ID, StateCanceled)
}
