package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitState polls until the job reaches the wanted state or times out.
func waitState(t *testing.T, m *Manager, id string, want State) Info {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ji, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if ji.State == want {
			return ji
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, ji.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobLifecycle: a submitted job runs, reports grouped progress, and
// finishes done with its result retained and its timings recorded.
func TestJobLifecycle(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	ji, err := m.Submit("sweep demo", 5, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		report(2, GroupTiming{Workload: "a", P: 8, Points: 2, Seconds: 0.1})
		report(3, GroupTiming{Workload: "a", P: 16, Points: 3, Seconds: 0.2})
		return "slab", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ji.State != StateQueued || ji.Total != 5 || ji.ID == "" {
		t.Fatalf("submit snapshot = %+v", ji)
	}
	done := waitState(t, m, ji.ID, StateDone)
	if done.Done != 5 || len(done.Groups) != 2 || done.Error != "" {
		t.Fatalf("done snapshot = %+v", done)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Fatal("done job missing timestamps")
	}
	res, _, ok := m.Result(ji.ID)
	if !ok || res != "slab" {
		t.Fatalf("Result = %v, %v", res, ok)
	}
	if got := m.List(); len(got) != 1 || got[0].ID != ji.ID {
		t.Fatalf("List = %+v", got)
	}
}

// TestJobFailure: a task error lands the job in failed with the cause.
func TestJobFailure(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	ji, err := m.Submit("doomed", 1, func(context.Context, func(int, GroupTiming)) (any, error) {
		return nil, errors.New("matrix deleted")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, ji.ID, StateFailed)
	if failed.Error != "matrix deleted" {
		t.Fatalf("failed.Error = %q", failed.Error)
	}
}

// TestJobCancelRunning: canceling a running job cancels its context; the
// task unwinds and the job lands in canceled.
func TestJobCancelRunning(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	started := make(chan struct{})
	ji, err := m.Submit("long sweep", 10, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := m.Cancel(ji.ID); !ok {
		t.Fatal("Cancel: unknown job")
	}
	canceled := waitState(t, m, ji.ID, StateCanceled)
	if canceled.Error == "" {
		t.Fatal("canceled job carries no cause")
	}
}

// TestJobCancelQueued: a job canceled before a runner picks it up goes
// terminal immediately and is never run.
func TestJobCancelQueued(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	release := make(chan struct{})
	blocker, err := m.Submit("blocker", 1, func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)

	ran := make(chan struct{})
	queued, err := m.Submit("queued", 1, func(context.Context, func(int, GroupTiming)) (any, error) {
		close(ran)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ji, ok := m.Cancel(queued.ID)
	if !ok || ji.State != StateCanceled {
		t.Fatalf("cancel queued job: state %s, ok %v", ji.State, ok)
	}
	close(release)
	waitState(t, m, blocker.ID, StateDone)
	select {
	case <-ran:
		t.Fatal("canceled queued job still ran")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestJobQueueFull: the bounded queue sheds load with ErrQueueFull.
func TestJobQueueFull(t *testing.T) {
	m := NewManager(context.Background(), 1, 1)
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, err := m.Submit("running", 1, block)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	if _, err := m.Submit("queued", 1, block); err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}
	if _, err := m.Submit("rejected", 1, block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

// TestManagerShutdownCancelsEverything: canceling the root context
// cancels the running job, marks queued jobs canceled, winds the
// runners down, and rejects new submissions.
func TestManagerShutdownCancelsEverything(t *testing.T) {
	root, stop := context.WithCancel(context.Background())
	m := NewManager(root, 1, 4)
	started := make(chan struct{})
	running, err := m.Submit("running", 1, func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit("queued", 1, func(context.Context, func(int, GroupTiming)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	stop()
	m.Wait()
	if ji, _ := m.Get(running.ID); ji.State != StateCanceled {
		t.Fatalf("running job state after shutdown = %s", ji.State)
	}
	if ji, _ := m.Get(queued.ID); ji.State != StateCanceled {
		t.Fatalf("queued job state after shutdown = %s", ji.State)
	}
	if _, err := m.Submit("late", 1, func(context.Context, func(int, GroupTiming)) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit err = %v, want ErrShuttingDown", err)
	}
}

// TestSubscribeDeliversMonotoneProgressEndingTerminal: a subscriber sees
// non-decreasing done counts and always observes the terminal snapshot,
// even with latest-wins coalescing.
func TestSubscribeDeliversMonotoneProgressEndingTerminal(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	gate := make(chan struct{})
	ji, err := m.Submit("progress", 4, func(ctx context.Context, report func(int, GroupTiming)) (any, error) {
		<-gate // subscribe first, so at least one progress event is observable
		for i := 0; i < 4; i++ {
			report(1, GroupTiming{Workload: "w", P: 8, Points: 1})
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, ok := m.Subscribe(ji.ID)
	if !ok {
		t.Fatal("Subscribe: unknown job")
	}
	defer unsub()
	close(gate)

	last := -1
	deadline := time.After(5 * time.Second)
	for {
		select {
		case snap := <-ch:
			if snap.Done < last {
				t.Fatalf("progress went backwards: %d after %d", snap.Done, last)
			}
			last = snap.Done
			if snap.State.Terminal() {
				if snap.State != StateDone || snap.Done != 4 {
					t.Fatalf("terminal snapshot = %+v", snap)
				}
				return
			}
		case <-deadline:
			t.Fatal("never observed the terminal snapshot")
		}
	}
}

// TestDeleteRules: active jobs cannot be deleted; terminal ones can, and
// unknown IDs are distinguished.
func TestDeleteRules(t *testing.T) {
	m := NewManager(context.Background(), 1, 4)
	release := make(chan struct{})
	ji, err := m.Submit("active", 1, func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ji.ID, StateRunning)
	if deleted, ok := m.Delete(ji.ID); deleted || !ok {
		t.Fatalf("Delete(active) = %v, %v; want false, true", deleted, ok)
	}
	close(release)
	waitState(t, m, ji.ID, StateDone)
	if deleted, ok := m.Delete(ji.ID); !deleted || !ok {
		t.Fatalf("Delete(done) = %v, %v; want true, true", deleted, ok)
	}
	if _, ok := m.Get(ji.ID); ok {
		t.Fatal("deleted job still addressable")
	}
	if _, ok := m.Delete("job-404"); ok {
		t.Fatal("unknown job reported found")
	}
}

// TestCancelQueuedFreesSlot: canceling queued jobs must release their
// admission slots immediately — a queue full of canceled carcasses must
// not shed live submissions.
func TestCancelQueuedFreesSlot(t *testing.T) {
	m := NewManager(context.Background(), 1, 2)
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, err := m.Submit("running", 1, block)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	// Fill the queue, then cancel everything queued.
	var queued []Info
	for i := 0; i < 2; i++ {
		ji, err := m.Submit("queued", 1, block)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, ji)
	}
	if _, err := m.Submit("over", 1, block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel submit err = %v, want ErrQueueFull", err)
	}
	for _, ji := range queued {
		if info, ok := m.Cancel(ji.ID); !ok || info.State != StateCanceled {
			t.Fatalf("cancel %s: %v %v", ji.ID, info.State, ok)
		}
	}
	// The slots are free again while the runner is still busy.
	if _, err := m.Submit("after-cancel", 1, block); err != nil {
		t.Fatalf("post-cancel submit err = %v, want nil", err)
	}
}

// TestSubmitShutdownRace: a job admitted concurrently with shutdown must
// end terminal (canceled), never stranded queued, and Wait must return.
func TestSubmitShutdownRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		root, stop := context.WithCancel(context.Background())
		m := NewManager(root, 1, 8)
		done := make(chan Info, 1)
		go func() {
			ji, err := m.Submit("racer", 1, func(ctx context.Context, _ func(int, GroupTiming)) (any, error) {
				return nil, ctx.Err()
			})
			if err != nil {
				done <- Info{State: StateCanceled} // rejected: fine
				return
			}
			done <- ji
		}()
		stop()
		ji := <-done
		m.Wait()
		if ji.ID != "" {
			deadline := time.Now().Add(2 * time.Second)
			for {
				got, ok := m.Get(ji.ID)
				if !ok {
					t.Fatalf("iter %d: job vanished", i)
				}
				if got.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("iter %d: job stranded in %s after shutdown", i, got.State)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}
