package hlsim

import (
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// TestDecompCyclesHandComputed pins the closed-form cycle model to
// hand-derived values on the paper's Fig. 1 example tile (8×8 with
// non-zeros at (0,3), (4,7), (7,7)) under the default configuration:
// BRAMReadLatency=2, PipeDepth=3, IICSR=2, IICOO=1, IIDIA=1, CELL=1,
// CLILBase=1, CSCScanFrac=0.5. Any calibration change must consciously
// update this table.
func TestDecompCyclesHandComputed(t *testing.T) {
	cfg := Default()
	tile := matrix.NewTile(8, 0, 0)
	tile.Set(0, 3, 1)
	tile.Set(4, 7, 2)
	tile.Set(7, 7, 3)

	// nnz=3, non-zero rows=3; BCSR blocks: (0,0) and (1,1) → 2 blocks in
	// 2 block rows; DIA diagonals: 3 and 0 → 2; DOK table = 8 slots.
	want := map[formats.Kind]int{
		formats.Dense: 0,
		formats.CSR:   3*(2+3) + 3*2,    // 21
		formats.BCSR:  2*(2+3) + 2,      // 12
		formats.CSC:   8 * (2 + 16 + 3), // 168: scan=round(3·0.5)=2, 8 offset hops ×2, depth 3, ×8 rows
		formats.COO:   (3+1)*1 + 3 + 3,  // 10
		formats.LIL:   3*(2+1+3) + 2,    // 20: per row R_b + base + log2(8), + terminator access
		formats.ELL:   8 * 1,            // 8
		formats.DIA:   8 * (2*1 + 3),    // 40
		formats.DOK:   8*1 + 3 + 3,      // 14
	}
	for k, w := range want {
		enc := formats.Encode(k, tile)
		if got := mustDecomp(t, cfg, enc); got != w {
			t.Errorf("%v: DecompCycles = %d, hand-computed %d", k, got, w)
		}
	}

	// T_dot(8) = MulLatency + AddLatency·log2(8) = 4; dense compute is
	// exactly 8·4 = 32 and σ is exactly 1.
	dense := formats.Encode(formats.Dense, tile)
	if got := mustCompute(t, cfg, dense); got != 32 {
		t.Errorf("dense compute = %d, want 32", got)
	}
	if got := mustSigma(t, cfg, dense); got != 1 {
		t.Errorf("dense sigma = %v, want 1", got)
	}

	// CSR compute = 21 + 3 rows × 4 = 33 → σ = 33/32.
	csr := formats.Encode(formats.CSR, tile)
	if got := mustCompute(t, cfg, csr); got != 33 {
		t.Errorf("CSR compute = %d, want 33", got)
	}
	if got := mustSigma(t, cfg, csr); got != 33.0/32.0 {
		t.Errorf("CSR sigma = %v, want %v", got, 33.0/32.0)
	}
}

// TestMemCyclesHandComputed pins the memory model on the same tile:
// dual 8-byte streamlines, 4-cycle burst overhead.
func TestMemCyclesHandComputed(t *testing.T) {
	cfg := Default()
	tile := matrix.NewTile(8, 0, 0)
	tile.Set(0, 3, 1)
	tile.Set(4, 7, 2)
	tile.Set(7, 7, 3)

	// Dense: 64 values × 4 B / 8 B-per-cycle = 32 + 4 burst = 36.
	if got := cfg.MemCycles(formats.Encode(formats.Dense, tile)); got != 36 {
		t.Errorf("dense mem = %d, want 36", got)
	}
	// CSR: value lane 3×4=12 B → 2 cycles; index lane (3+8)×4=44 B → 6
	// cycles; max 6 + 4 = 10.
	if got := cfg.MemCycles(formats.Encode(formats.CSR, tile)); got != 10 {
		t.Errorf("CSR mem = %d, want 10", got)
	}
	// COO: value lane 12 B → 2; index lane 2·3·4=24 B → 3; max 3 + 4 = 7.
	if got := cfg.MemCycles(formats.Encode(formats.COO, tile)); got != 7 {
		t.Errorf("COO mem = %d, want 7", got)
	}
	// DIA: value lane 2 diagonals × 8 slots × 4 B = 64 B → 8; index lane
	// 2 headers × 4 B = 8 B → 1; max 8 + 4 = 12.
	if got := cfg.MemCycles(formats.Encode(formats.DIA, tile)); got != 12 {
		t.Errorf("DIA mem = %d, want 12", got)
	}
}
