//go:build !race

package hlsim

// raceEnabled reports whether the race detector is active. The
// 0-alloc assertions measure the production configuration; under -race
// the detector's own bookkeeping shows up as spurious allocations in
// multi-call runs, so those tests assert functionally only.
const raceEnabled = false
