package hlsim

import (
	"testing"
	"testing/quick"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// drain runs a RowSource to exhaustion, reassembling a tile and summing
// cycles.
func drain(t *testing.T, cfg Config, enc formats.Encoded) (*matrix.Tile, int, int) {
	t.Helper()
	src, err := NewRowSource(cfg, enc)
	if err != nil {
		t.Fatal(err)
	}
	tile := matrix.NewTile(enc.P(), 0, 0)
	cycles, rows := 0, 0
	seen := map[int]bool{}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Index < 0 || r.Index >= enc.P() {
			t.Fatalf("row index %d out of range", r.Index)
		}
		if seen[r.Index] {
			t.Fatalf("row %d emitted twice", r.Index)
		}
		seen[r.Index] = true
		for j, v := range r.Values {
			if v != 0 {
				tile.Set(r.Index, j, v)
			}
		}
		cycles += r.Cycles
		rows++
	}
	return tile, cycles, rows
}

// TestRowSourceReconstructsTile: the operational decompressors rebuild
// exactly the tile the codec decoders produce, for every format.
func TestRowSourceReconstructsTile(t *testing.T) {
	cfg := Default()
	for _, k := range formats.All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			check := func(seed uint64) bool {
				r := xrand.New(seed)
				p := []int{8, 16, 32}[r.Intn(3)]
				density := []float64{0, 0.05, 0.3, 0.9}[r.Intn(4)]
				tile := randomTile(seed, p, density)
				enc := formats.Encode(k, tile)
				got, _, _ := drain(t, cfg, enc)
				return got.EqualValues(tile)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRowSourceCyclesMatchClosedForm: the per-row cycle sum equals the
// closed-form DecompCycles for every format — the operational and
// analytical models cannot drift apart.
func TestRowSourceCyclesMatchClosedForm(t *testing.T) {
	cfg := Default()
	for _, k := range formats.All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			check := func(seed uint64) bool {
				r := xrand.New(seed)
				p := []int{8, 16, 32}[r.Intn(3)]
				density := []float64{0.02, 0.15, 0.5}[r.Intn(3)]
				tile := randomTile(seed, p, density)
				enc := formats.Encode(k, tile)
				_, cycles, _ := drain(t, cfg, enc)
				want := mustDecomp(t, cfg, enc)
				if cycles != want {
					t.Logf("%v p=%d d=%g: walked %d cycles, closed form %d", k, p, density, cycles, want)
					return false
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRowSourceEmissionCounts: padded formats emit every row; row-wise
// formats emit exactly the non-zero rows; BCSR emits block coverage.
func TestRowSourceEmissionCounts(t *testing.T) {
	cfg := Default()
	tile := randomTile(9, 16, 0.1)
	cases := map[formats.Kind]int{
		formats.Dense: 16,
		formats.ELL:   16,
		formats.DIA:   16,
		formats.CSC:   16,
		formats.CSR:   tile.NonZeroRows(),
		formats.COO:   tile.NonZeroRows(),
		formats.LIL:   tile.NonZeroRows(),
		formats.BCSR:  formats.Encode(formats.BCSR, tile).Stats().DotRows,
	}
	for k, want := range cases {
		_, _, rows := drain(t, cfg, formats.Encode(k, tile))
		if rows != want {
			t.Errorf("%v emitted %d rows, want %d", k, rows, want)
		}
	}
}

// TestRowSourceEmptyTile: a zero tile drains immediately for row-wise
// formats and emits zero rows for padded ones without errors.
func TestRowSourceEmptyTile(t *testing.T) {
	cfg := Default()
	tile := matrix.NewTile(8, 0, 0)
	for _, k := range formats.All() {
		enc := formats.Encode(k, tile)
		got, cycles, _ := drain(t, cfg, enc)
		if got.NNZ() != 0 {
			t.Fatalf("%v: empty tile produced values", k)
		}
		_ = cycles
	}
}

// TestRowSourceOrder: rows come out in ascending order for the
// sequential formats (the pipeline requirement).
func TestRowSourceOrder(t *testing.T) {
	cfg := Default()
	tile := randomTile(21, 16, 0.2)
	for _, k := range []formats.Kind{formats.Dense, formats.CSR, formats.CSC,
		formats.COO, formats.LIL, formats.ELL, formats.DIA, formats.BCSR} {
		src, err := NewRowSource(cfg, formats.Encode(k, tile))
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			if r.Index <= prev {
				t.Fatalf("%v: rows out of order: %d after %d", k, r.Index, prev)
			}
			prev = r.Index
		}
	}
}
