package hlsim

import (
	"context"
	"errors"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

// TestKernelCyclesSingleIterationIsPipelined: a one-iteration kernel is
// exactly the pre-kernel-axis model — KernelCycles(k, 1) must equal the
// per-tile pipelined total for every format, the bit-identity the golden
// sweep test in internal/core depends on.
func TestKernelCyclesSingleIterationIsPipelined(t *testing.T) {
	cfg := Default()
	m := gen.Random(100, 0.06, 83)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := testVectorFor(m.Cols)
	for _, k := range formats.All() {
		var r Result
		if err := pl.RunInto(k, x, &r); err != nil {
			t.Fatal(err)
		}
		got, err := pl.KernelCycles(ctx, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != r.PipelinedCycles {
			t.Fatalf("%v: KernelCycles(1) = %d, PipelinedCycles = %d", k, got, r.PipelinedCycles)
		}
	}
}

// TestKernelCyclesAmortizedPin: the cg:60 amortization formula, recomputed
// per tile from the plan's own cycle records — first iteration pays
// max(mem, decomp+dot), the 59 warm iterations pay max(mem, dot) with the
// decomposition state resident.
func TestKernelCyclesAmortizedPin(t *testing.T) {
	cfg := Default()
	m := gen.Random(100, 0.06, 83)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const iters = 60
	for _, k := range []formats.Kind{formats.CSR, formats.Dense, formats.SELLCS} {
		pf, err := pl.format(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for _, tr := range pf.tiles {
			dot := tr.ComputeCycles - tr.DecompCycles
			want += uint64(max(tr.MemCycles, tr.ComputeCycles)) + (iters-1)*uint64(max(tr.MemCycles, dot))
		}
		got, err := pl.KernelCycles(ctx, k, iters)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: KernelCycles(%d) = %d, per-tile recomputation = %d", k, iters, got, want)
		}
		one, err := pl.KernelCycles(ctx, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got <= one {
			t.Fatalf("%v: 60 iterations (%d cycles) not more expensive than 1 (%d)", k, got, one)
		}
		// Amortization: warm iterations never cost more than cold ones, so
		// 60 iterations cost at most 60× one iteration.
		if got > 60*one {
			t.Fatalf("%v: KernelCycles(60) = %d exceeds 60 x KernelCycles(1) = %d", k, got, 60*one)
		}
	}
}

// TestKernelCyclesLinearInWarmIterations: beyond the first iteration the
// model is an affine function of N — each additional iteration adds the
// same warm per-tile sum.
func TestKernelCyclesLinearInWarmIterations(t *testing.T) {
	cfg := Default()
	m := gen.Random(80, 0.08, 89)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c1, err := pl.KernelCycles(ctx, formats.CSR, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pl.KernelCycles(ctx, formats.CSR, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm := c2 - c1
	for _, n := range []uint64{3, 10, 60, 1000} {
		got, err := pl.KernelCycles(ctx, formats.CSR, int(n))
		if err != nil {
			t.Fatal(err)
		}
		if want := c1 + (n-1)*warm; got != want {
			t.Fatalf("KernelCycles(%d) = %d, want %d + %d x %d = %d", n, got, c1, n-1, warm, want)
		}
	}
}

// TestSpMMCyclesSingleColumnIsPipelined: SpMM against a 1-column dense
// operand is an SpMV — per tile, decomp + DotRows·1·td is exactly
// ComputeCycles, so the total must equal the pipelined SpMV cycles.
func TestSpMMCyclesSingleColumnIsPipelined(t *testing.T) {
	cfg := Default()
	m := gen.Random(100, 0.06, 83)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := testVectorFor(m.Cols)
	for _, k := range formats.All() {
		var r Result
		if err := pl.RunInto(k, x, &r); err != nil {
			t.Fatal(err)
		}
		got, err := pl.SpMMCycles(ctx, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != r.PipelinedCycles {
			t.Fatalf("%v: SpMMCycles(1) = %d, PipelinedCycles = %d", k, got, r.PipelinedCycles)
		}
		wide, err := pl.SpMMCycles(ctx, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		if wide < got {
			t.Fatalf("%v: SpMMCycles(8) = %d below SpMMCycles(1) = %d", k, wide, got)
		}
	}
}

// TestRunKernelIntoOutputIndependentOfIterations: the exec iteration loop
// holds the operand fixed, so the functional output after 60 iterations is
// bit-identical to one RunExecInto — the property that lets the verified
// single-SpMV output stand for the whole kernel.
func TestRunKernelIntoOutputIndependentOfIterations(t *testing.T) {
	cfg := Default()
	m := gen.Random(96, 0.07, 97)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ref, got Result
	if err := pl.RunExecInto(formats.CSR, x, &ref, 2); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunKernelInto(ctx, formats.CSR, x, &got, 2, 60); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Y {
		if got.Y[i] != ref.Y[i] {
			t.Fatalf("Y[%d] = %v after 60 iterations, %v after one", i, got.Y[i], ref.Y[i])
		}
	}
}

// TestRunKernelIntoWarmZeroAllocs: the timed unit of the native backend's
// multi-iteration measurements must stay allocation-free once warm, like
// the single-SpMV loop it wraps.
func TestRunKernelIntoWarmZeroAllocs(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.05, 61)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var r Result
	for i := 0; i < 3; i++ {
		if err := pl.RunKernelInto(ctx, formats.CSR, x, &r, 2, 4); err != nil {
			t.Fatal(err)
		}
	}
	if raceEnabled {
		// The race detector's own bookkeeping allocates across a
		// multi-iteration loop; the warm calls above still exercise the
		// path functionally. The 0-alloc claim is asserted without -race.
		t.Skip("alloc counts are unreliable under -race")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := pl.RunKernelInto(ctx, formats.CSR, x, &r, 2, 4); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per warm RunKernelInto, want 0", allocs)
	}
}

// TestRunKernelIntoCancelBetweenIterations: cancellation is observed at
// iteration boundaries only — a canceled context still completes a
// one-iteration call (each iteration runs uncancellable, keeping timing
// pure) but stops a multi-iteration kernel after its first pass.
func TestRunKernelIntoCancelBetweenIterations(t *testing.T) {
	cfg := Default()
	m := gen.Random(96, 0.07, 97)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := pl.RunKernelInto(context.Background(), formats.CSR, x, &r, 1, 2); err != nil {
		t.Fatal(err) // warm the format so the canceled calls are pure loop
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pl.RunKernelInto(canceled, formats.CSR, x, &r, 1, 1); err != nil {
		t.Fatalf("iters=1 under canceled ctx: %v, want nil (no boundary to observe)", err)
	}
	if err := pl.RunKernelInto(canceled, formats.CSR, x, &r, 1, 60); !errors.Is(err, context.Canceled) {
		t.Fatalf("iters=60 under canceled ctx: %v, want context.Canceled", err)
	}
}

// TestKernelArgumentErrors: non-positive iteration and column counts are
// rejected up front by all three entry points.
func TestKernelArgumentErrors(t *testing.T) {
	cfg := Default()
	m := gen.Random(64, 0.1, 79)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pl.KernelCycles(ctx, formats.CSR, 0); err == nil {
		t.Fatal("KernelCycles(0) accepted")
	}
	if _, err := pl.SpMMCycles(ctx, formats.CSR, 0); err == nil {
		t.Fatal("SpMMCycles(0) accepted")
	}
	var r Result
	if err := pl.RunKernelInto(ctx, formats.CSR, x, &r, 1, 0); err == nil {
		t.Fatal("RunKernelInto(iters=0) accepted")
	}
}
