package hlsim

import (
	"math"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/xrand"
)

func denseOperand(rows, cols int, seed uint64) []float64 {
	r := xrand.New(seed)
	b := make([]float64, rows*cols)
	for i := range b {
		b[i] = r.ValueIn(-1, 1)
	}
	return b
}

func TestSpMMFunctional(t *testing.T) {
	m := gen.Random(96, 0.08, 3)
	const cols = 5
	b := denseOperand(m.Cols, cols, 7)
	for _, k := range formats.Core() {
		res, err := RunSpMM(Default(), m, k, 16, b, cols)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		// Reference: column-by-column software SpMV.
		for c := 0; c < cols; c++ {
			x := make([]float64, m.Cols)
			for j := range x {
				x[j] = b[j*cols+c]
			}
			want := m.MulVec(x)
			for i := range want {
				if math.Abs(res.Y[i*cols+c]-want[i]) > 1e-9 {
					t.Fatalf("%v: Y[%d][%d] = %v, want %v", k, i, c, res.Y[i*cols+c], want[i])
				}
			}
		}
	}
}

// TestSpMMAmortizesDecompression: per-column σ shrinks as the operand
// widens for decompress-heavy formats, approaching the dots-only floor.
func TestSpMMAmortizesDecompression(t *testing.T) {
	cfg := Default()
	m := gen.Random(128, 0.1, 5)
	x := make([]float64, m.Cols)
	run, err := Run(cfg, m, formats.CSR, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, cols := range []int{1, 4, 16, 64} {
		b := denseOperand(m.Cols, cols, 9)
		res, err := RunSpMM(cfg, m, formats.CSR, 16, b, cols)
		if err != nil {
			t.Fatal(err)
		}
		sigma := res.SigmaPerColumn(run.DotRows)
		if sigma >= prev {
			t.Fatalf("σ/column did not shrink at %d columns: %v >= %v", cols, sigma, prev)
		}
		prev = sigma
	}
	// The floor is the dots-only σ (DotRows/p per tile).
	floor := float64(run.DotRows) / float64(run.NonZeroTiles*16)
	if prev < floor-1e-9 {
		t.Fatalf("amortized σ %v fell below the dots-only floor %v", prev, floor)
	}
}

// TestSpMMColumnOneMatchesSpMV: with one column the cycle model reduces
// to the SpMV model exactly.
func TestSpMMColumnOneMatchesSpMV(t *testing.T) {
	cfg := Default()
	m := gen.Band(96, 8, 11)
	x := denseOperand(m.Cols, 1, 13)
	run, err := Run(cfg, m, formats.DIA, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := RunSpMM(cfg, m, formats.DIA, 16, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mm.ComputeCycles != run.ComputeCycles || mm.MemCycles != run.MemCycles ||
		mm.PipelinedCycles != run.PipelinedCycles {
		t.Fatalf("1-column SpMM cycles (%d/%d/%d) != SpMV (%d/%d/%d)",
			mm.MemCycles, mm.ComputeCycles, mm.PipelinedCycles,
			run.MemCycles, run.ComputeCycles, run.PipelinedCycles)
	}
	for i := range run.Y {
		if math.Abs(mm.Y[i]-run.Y[i]) > 1e-12 {
			t.Fatal("1-column SpMM result differs from SpMV")
		}
	}
}

func TestSpMMRejectsBadInput(t *testing.T) {
	m := gen.Random(32, 0.1, 1)
	if _, err := RunSpMM(Default(), m, formats.CSR, 8, nil, 0); err == nil {
		t.Fatal("0 columns accepted")
	}
	if _, err := RunSpMM(Default(), m, formats.CSR, 8, make([]float64, 10), 2); err == nil {
		t.Fatal("short operand accepted")
	}
}
