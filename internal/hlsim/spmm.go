package hlsim

import (
	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// SpMMResult models sparse-matrix × dense-matrix multiplication on the
// same pipeline (§3.3: ML workloads use SpMV or SpMM on one dot-product
// engine). Each tile is decompressed once and its reconstructed rows
// feed one dot product per operand column, so T_decomp amortizes over
// the columns — the structural reason batched inference tolerates
// compute-heavy formats better than single-vector SpMV.
type SpMMResult struct {
	Kind    formats.Kind
	P       int
	Columns int

	// Y is the m.Rows × Columns product, row-major. The operand matrix
	// is treated as resident, like Run's x vector.
	Y []float64

	NonZeroTiles    int
	MemCycles       uint64
	ComputeCycles   uint64
	DecompCycles    uint64
	PipelinedCycles uint64

	cfg Config
}

// Seconds returns the modelled wall time.
func (r *SpMMResult) Seconds() float64 { return r.cfg.CycleSeconds(r.PipelinedCycles) }

// SigmaPerColumn is the per-column decompression overhead: Eq. (1) with
// T_decomp divided across the operand columns. At Columns=1 it equals
// the SpMV σ; it approaches DotRows/p as Columns grows.
func (r *SpMMResult) SigmaPerColumn(dotRows uint64) float64 {
	if r.NonZeroTiles == 0 {
		return 1
	}
	td := uint64(r.cfg.DotLatency(r.P))
	denom := float64(uint64(r.NonZeroTiles) * uint64(r.P) * td)
	amortized := float64(r.DecompCycles)/float64(r.Columns) + float64(dotRows*td)
	return amortized / denom
}

// RunSpMM multiplies m by the dense operand b (m.Cols × cols, row-major)
// through the modelled pipeline in format k at partition size p. It
// builds a transient Plan; hold a NewPlan for repeated multiplications.
func RunSpMM(cfg Config, m *matrix.CSR, k formats.Kind, p int, b []float64, cols int) (*SpMMResult, error) {
	pl, err := NewPlan(cfg, m, p)
	if err != nil {
		return nil, err
	}
	return pl.RunSpMM(k, b, cols)
}
