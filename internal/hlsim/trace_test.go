package hlsim

import (
	"bytes"
	"strings"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

func TestTraceMatchesRunTotals(t *testing.T) {
	m := gen.Random(128, 0.05, 3)
	x := make([]float64, m.Cols)
	for _, k := range []formats.Kind{formats.CSR, formats.Dense, formats.DIA} {
		traces, err := Trace(Default(), m, k, 16)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Run(Default(), m, k, 16, x)
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(traces)
		if s.Tiles != run.NonZeroTiles {
			t.Fatalf("%v: trace tiles %d vs run %d", k, s.Tiles, run.NonZeroTiles)
		}
		if s.TotalCycles != run.PipelinedCycles {
			t.Fatalf("%v: trace cycles %d vs run %d", k, s.TotalCycles, run.PipelinedCycles)
		}
		if s.BubbleCycles != run.IdleComputeCycles+run.StallMemCycles {
			t.Fatalf("%v: trace bubbles %d vs run %d+%d", k,
				s.BubbleCycles, run.IdleComputeCycles, run.StallMemCycles)
		}
	}
}

func TestTraceBoundClassification(t *testing.T) {
	m := gen.Random(96, 0.05, 5)
	// CSC: compute-bound everywhere.
	traces, err := Trace(Default(), m, formats.CSC, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.MemoryBound {
			t.Fatalf("CSC tile (%d,%d) classified memory-bound", tr.Row, tr.Col)
		}
		if tr.Pipelined != max(tr.MemCycles, tr.ComputeCycles) {
			t.Fatal("pipelined != max(stages)")
		}
		if tr.Bubble != tr.ComputeCycles-tr.MemCycles {
			t.Fatal("bubble accounting wrong for compute-bound tile")
		}
	}
	// Dense at p=32: memory-bound everywhere.
	traces, err = Trace(Default(), m, formats.Dense, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if !tr.MemoryBound {
			t.Fatalf("dense p=32 tile (%d,%d) classified compute-bound", tr.Row, tr.Col)
		}
	}
}

func TestTraceInvalidConfig(t *testing.T) {
	bad := Default()
	bad.ClockHz = 0
	if _, err := Trace(bad, gen.Random(16, 0.2, 1), formats.CSR, 8); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRenderTimeline(t *testing.T) {
	m := gen.Random(64, 0.1, 7)
	traces, err := Trace(Default(), m, formats.COO, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, traces, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bubble cycles") {
		t.Fatalf("summary line missing:\n%s", out)
	}
	if strings.Count(out, "nnz=") != 5 {
		t.Fatalf("expected 5 tile lines, got %d", strings.Count(out, "nnz="))
	}
	// Unbounded view renders every tile.
	buf.Reset()
	if err := RenderTimeline(&buf, traces, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "nnz=") != len(traces) {
		t.Fatal("unbounded timeline truncated")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Tiles != 0 || s.TotalCycles != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}
