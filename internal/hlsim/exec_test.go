package hlsim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

// TestRunExecMatchesRunInto: the executable-kernel path must agree with
// the reference CSR-row path for every format at every thread count —
// within FP-reassociation tolerance in general, and bit-for-bit across
// thread counts (block-row decomposition is thread-count-invariant).
func TestRunExecMatchesRunInto(t *testing.T) {
	cfg := Default()
	m := gen.Random(100, 0.06, 51)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range formats.All() {
		var ref Result
		if err := pl.RunInto(k, x, &ref); err != nil {
			t.Fatal(err)
		}
		var serial Result
		if err := pl.RunExecInto(k, x, &serial, 1); err != nil {
			t.Fatal(err)
		}
		if serial.MemCycles != ref.MemCycles || serial.NNZ != ref.NNZ ||
			serial.Footprint != ref.Footprint || serial.PipelinedCycles != ref.PipelinedCycles {
			t.Fatalf("%v: exec aggregates diverge from RunInto", k)
		}
		for i := range ref.Y {
			if d := math.Abs(serial.Y[i] - ref.Y[i]); d > 1e-11*math.Max(1, math.Abs(ref.Y[i])) {
				t.Fatalf("%v: Y[%d] = %v, reference %v", k, i, serial.Y[i], ref.Y[i])
			}
		}
		for _, threads := range []int{2, 3, runtime.GOMAXPROCS(0)} {
			var r Result
			if err := pl.RunExecInto(k, x, &r, threads); err != nil {
				t.Fatal(err)
			}
			for i := range serial.Y {
				if r.Y[i] != serial.Y[i] {
					t.Fatalf("%v t=%d: Y[%d] = %v != single-thread %v (thread-count variance)",
						k, threads, i, r.Y[i], serial.Y[i])
				}
			}
		}
	}
}

// TestRunExecExactSingleTileColumn: with one tile column per block row,
// every row's products arrive in a single kernel call, so the
// row-ordered kernels must match the reference bit for bit.
func TestRunExecExactSingleTileColumn(t *testing.T) {
	cfg := Default()
	m := gen.Random(48, 0.2, 57)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 64) // p > n: a single tile
	if err != nil {
		t.Fatal(err)
	}
	exact := []formats.Kind{
		formats.Dense, formats.CSR, formats.BCSR, formats.ELL, formats.SELL,
		formats.SELLCS, formats.COO, formats.JDS, formats.ELLCOO,
	}
	for _, k := range exact {
		var ref, got Result
		if err := pl.RunInto(k, x, &ref); err != nil {
			t.Fatal(err)
		}
		if err := pl.RunExecInto(k, x, &got, 2); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Y {
			if got.Y[i] != ref.Y[i] {
				t.Fatalf("%v: Y[%d] = %v != reference %v (exact-mode kernel)", k, i, got.Y[i], ref.Y[i])
			}
		}
	}
}

// TestRunExecWarmZeroAllocs: once a format is warm, RunExecInto at
// threads>1 must not allocate — pooled jobs, parked workers, reused Y.
func TestRunExecWarmZeroAllocs(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.05, 61)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	threads := max(2, runtime.GOMAXPROCS(0))
	for i := 0; i < 3; i++ { // warm format cache, exec state, and job pool
		if err := pl.RunExecInto(formats.CSR, x, &r, threads); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := pl.RunExecInto(formats.CSR, x, &r, threads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per warm RunExecInto at %d threads, want 0", allocs, threads)
	}
}

// TestRunExecConcurrentSharedPlan: many goroutines executing different
// formats on one plan (own Results, shared exec state and pool) must all
// produce correct output — the -race companion to the leader/waiter
// guards on the exec slots.
func TestRunExecConcurrentSharedPlan(t *testing.T) {
	cfg := Default()
	m := gen.Random(128, 0.08, 67)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	var ref Result
	if err := pl.RunInto(formats.CSR, x, &ref); err != nil {
		t.Fatal(err)
	}
	kinds := formats.All()
	errs := make(chan error, 4*len(kinds))
	for g := 0; g < 4; g++ {
		for _, k := range kinds {
			go func(k formats.Kind) {
				var r Result
				if err := pl.RunExecInto(k, x, &r, 3); err != nil {
					errs <- err
					return
				}
				for i := range ref.Y {
					if d := math.Abs(r.Y[i] - ref.Y[i]); d > 1e-11*math.Max(1, math.Abs(ref.Y[i])) {
						errs <- errors.New(k.String() + ": concurrent exec output diverged")
						return
					}
				}
				errs <- nil
			}(k)
		}
	}
	for i := 0; i < 4*len(kinds); i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunExecCancel: a canceled context aborts both the cold warmup and
// the warm multiplication with ctx.Err(), promptly, and leaves the plan
// reusable.
func TestRunExecCancel(t *testing.T) {
	cfg := Default()
	m := gen.Random(192, 0.05, 71)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var r Result
	if err := pl.RunExecIntoContext(canceled, formats.ELL, x, &r, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold canceled exec: err = %v, want context.Canceled", err)
	}
	if err := pl.RunExecInto(formats.ELL, x, &r, 2); err != nil {
		t.Fatalf("plan poisoned by canceled warmup: %v", err)
	}
	if err := pl.RunExecIntoContext(canceled, formats.ELL, x, &r, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm canceled exec: err = %v, want context.Canceled", err)
	}

	// Mid-flight: cancel while a goroutine streams warm multiplications;
	// the in-flight call must return ctx.Err() promptly.
	ctx, cancelMid := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		for {
			var rr Result
			if err := pl.RunExecIntoContext(ctx, formats.ELL, x, &rr, 2); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	cancelMid()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled exec did not return promptly")
	}
}

// TestExecPoolNoLeak: a canceled multi-thread run restores the pool's
// full parked capacity — workers are the tokens, and a worker that
// observes cancellation parks again instead of leaking.
func TestExecPoolNoLeak(t *testing.T) {
	cfg := Default()
	m := gen.Random(192, 0.05, 73)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewExecPool(3)
	defer pool.Close()
	pl.SetExecPool(pool)
	var r Result
	if err := pl.RunExecInto(formats.CSR, x, &r, 4); err != nil {
		t.Fatal(err)
	}
	if pool.Idle() != pool.Size() {
		t.Fatalf("after clean run: %d idle workers, want %d", pool.Idle(), pool.Size())
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 20; i++ {
		if err := pl.RunExecIntoContext(canceled, formats.CSR, x, &r, 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if pool.Idle() != pool.Size() {
			t.Fatalf("after canceled run %d: %d idle workers, want %d (token leak)",
				i, pool.Idle(), pool.Size())
		}
	}
	if err := pl.RunExecInto(formats.CSR, x, &r, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRunExecArgumentErrors: bad thread counts, mismatched operand
// lengths, and aliased buffers are rejected up front.
func TestRunExecArgumentErrors(t *testing.T) {
	cfg := Default()
	m := gen.Random(64, 0.1, 79)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := pl.RunExecInto(formats.CSR, x, &r, 0); err == nil {
		t.Fatal("threads=0 accepted")
	}
	if err := pl.RunExecInto(formats.CSR, x[:10], &r, 1); err == nil {
		t.Fatal("short operand accepted")
	}
	if err := pl.RunExecInto(formats.CSR, x, &r, 1); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunExecInto(formats.CSR, r.Y, &r, 1); err == nil {
		t.Fatal("aliased x and r.Y accepted")
	}
}
