package hlsim

import (
	"sync/atomic"

	"copernicus/internal/faults"
)

// Fault-injection points of the plan's three warmup phases and the exec
// hot loop (see internal/faults). Disarmed they cost one atomic load per
// hit; the chaos suite arms them to prove a panic or error inside any
// warmup worker or exec span leaves the plan slot idle and the pools at
// full capacity.
var (
	ptEncodeTile = faults.Point("hlsim.encode.tile")
	ptVerifyTile = faults.Point("hlsim.verify.tile")
	ptExecBuild  = faults.Point("hlsim.exec.build")
	ptExecSpan   = faults.Point("hlsim.exec.span")
)

// storeFirst publishes err as the phase's failure unless another worker
// beat it there — fan-out phases report the first fault and discard the
// rest.
func storeFirst(p *atomic.Pointer[error], err error) {
	if err == nil {
		return
	}
	p.CompareAndSwap(nil, &err)
}

// loadErr unwraps an atomic error slot.
func loadErr(p *atomic.Pointer[error]) error {
	if ep := p.Load(); ep != nil {
		return *ep
	}
	return nil
}
