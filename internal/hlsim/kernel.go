package hlsim

import (
	"context"
	"fmt"

	"copernicus/internal/formats"
)

// Iteration-aware kernel costing and execution. hlsim speaks plain
// iteration counts — the kernel taxonomy (cg vs jacobi vs bfs) lives in
// internal/scenario; by the time a kernel reaches this layer it is just
// "N SpMV-shaped passes over the encoded operand" or "one SpMM with k
// columns", which is all the cycle model and the exec path distinguish.

// KernelCycles prices an N-iteration SpMV kernel on format k with the
// one-time decomposition amortized: iterative kernels stream the same
// encoded tiles every iteration, so a tile's structure needs decompressing
// only on first touch — the first iteration pays the full pipelined cost
// max(mem, decomp+dot), warm iterations pay max(mem, dot) with the tile's
// decomposition state resident.
//
// Per tile, with dot = ComputeCycles - DecompCycles:
//
//	cycles(N) = max(mem, decomp+dot) + (N-1) · max(mem, dot)
//
// summed over all non-zero tiles. N = 1 is exactly the per-tile
// max(mem, compute) sum — i.e. Result.PipelinedCycles — so a spmv kernel
// point is bit-identical to the pre-kernel-axis model (the golden test in
// internal/core pins this). Cancellation covers only a cold format's
// warmup; a warm call is pure arithmetic over the cached tile table.
func (pl *Plan) KernelCycles(ctx context.Context, k formats.Kind, iters int) (uint64, error) {
	if iters < 1 {
		return 0, fmt.Errorf("hlsim: KernelCycles with %d iterations", iters)
	}
	pf, err := pl.format(ctx, k)
	if err != nil {
		return 0, err
	}
	if iters == 1 {
		return pf.agg.PipelinedCycles, nil
	}
	warm := uint64(iters - 1)
	var total uint64
	for _, tr := range pf.tiles {
		dot := tr.ComputeCycles - tr.DecompCycles
		total += uint64(max(tr.MemCycles, tr.ComputeCycles)) + warm*uint64(max(tr.MemCycles, dot))
	}
	return total, nil
}

// SpMMCycles prices one SpMM against a dense operand with `cols` columns
// on format k: per tile the decomposition runs once and every non-zero
// row's dot repeats per column, overlapped against the tile's single
// memory stream — the same per-tile model as RunSpMM, without
// materializing the functional product. cols = 1 equals the SpMV
// pipelined total exactly (dot latency is per row per column).
func (pl *Plan) SpMMCycles(ctx context.Context, k formats.Kind, cols int) (uint64, error) {
	if cols < 1 {
		return 0, fmt.Errorf("hlsim: SpMMCycles with %d columns", cols)
	}
	pf, err := pl.format(ctx, k)
	if err != nil {
		return 0, err
	}
	td := pl.cfg.DotLatency(pl.p)
	var total uint64
	for _, tr := range pf.tiles {
		comp := tr.DecompCycles + tr.DotRows*cols*td
		total += uint64(max(tr.MemCycles, comp))
	}
	return total, nil
}

// RunKernelInto is the exec-path iteration loop: `iters` back-to-back
// tile-parallel multiplications through format k's own encoded layout
// (RunExecInto), the unit the native backend times for multi-iteration
// kernels. The operand is held fixed across iterations — each pass does
// exactly the traversal and flop work of one solver iteration's SpMV
// while keeping the loop allocation-free and the output independent of
// the iteration count (solver vector updates are BLAS1 work the
// characterization deliberately excludes; the verified functional output
// is that of a single A·x).
//
// The warm path performs zero allocations per call and every iteration
// reuses the plan's cached leader/waiter exec state. A cancelable ctx is
// checked *between* iterations — the granularity a 60-iteration
// measurement needs to abort promptly — while each iteration itself runs
// uncancellable, exactly like the single-SpMV timed loop, so the warm
// inner multiplication polls nothing and timing it stays pure. (Cold
// warmup — encode, verify, the exec build — consequently runs to
// completion of the first iteration; callers wanting cancelable warmup
// warm the format with RunExecIntoContext first, as the native backend
// does.)
func (pl *Plan) RunKernelInto(ctx context.Context, k formats.Kind, x []float64, r *Result, threads, iters int) error {
	if iters < 1 {
		return fmt.Errorf("hlsim: RunKernelInto with %d iterations", iters)
	}
	for it := 0; it < iters; it++ {
		if it > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := pl.RunExecInto(k, x, r, threads); err != nil {
			return err
		}
	}
	return nil
}
