package hlsim

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

func randomTile(seed uint64, p int, density float64) *matrix.Tile {
	r := xrand.New(seed)
	t := matrix.NewTile(p, 0, 0)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if r.Float64() < density {
				t.Set(i, j, r.ValueIn(-2, 2))
			}
		}
	}
	return t
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default()
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	bad = Default()
	bad.CSCScanFrac = 1.5
	if bad.Validate() == nil {
		t.Fatal("CSCScanFrac > 1 accepted")
	}
	bad = Default()
	bad.IICSR = 0
	if bad.Validate() == nil {
		t.Fatal("II = 0 accepted")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 16: 4, 17: 5, 32: 5}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDotLatencyGrowsWithWidth(t *testing.T) {
	c := Default()
	if !(c.DotLatency(8) < c.DotLatency(16) && c.DotLatency(16) < c.DotLatency(32)) {
		t.Fatal("dot latency not increasing with engine width")
	}
}

// TestSigmaDenseIsOne: the calibration identity of Eq. (1).
func TestSigmaDenseIsOne(t *testing.T) {
	c := Default()
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		p := []int{8, 16, 32}[r.Intn(3)]
		tile := randomTile(seed, p, 0.3)
		return mustSigma(t, c, formats.Encode(formats.Dense, tile)) == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaCSCWorst: the orientation mismatch must make CSC the slowest
// decompressor on a moderately dense tile, by a wide margin (§6.1 reports
// up to 21–30×).
func TestSigmaCSCWorst(t *testing.T) {
	c := Default()
	tile := randomTile(3, 16, 0.5)
	sigCSC := mustSigma(t, c, formats.Encode(formats.CSC, tile))
	for _, k := range formats.Core() {
		if k == formats.CSC {
			continue
		}
		if s := mustSigma(t, c, formats.Encode(k, tile)); s >= sigCSC {
			t.Errorf("σ(%v) = %.2f >= σ(CSC) = %.2f", k, s, sigCSC)
		}
	}
	if sigCSC < 10 || sigCSC > 40 {
		t.Errorf("σ(CSC) = %.2f outside the paper's reported magnitude (≈20–30×)", sigCSC)
	}
}

// TestSigmaELLNearDense: ELL's compute tracks the dense baseline, within
// a small constant overhead, regardless of sparsity pattern.
func TestSigmaELLNearDense(t *testing.T) {
	c := Default()
	for _, d := range []float64{0.01, 0.1, 0.5} {
		tile := randomTile(11, 16, d)
		s := mustSigma(t, c, formats.Encode(formats.ELL, tile))
		if s < 1 || s > 1.5 {
			t.Errorf("σ(ELL) at density %v = %.3f, want within (1, 1.5]", d, s)
		}
	}
}

// TestSigmaELLDecreasesWithPartition: Fig. 7's ELL trend.
func TestSigmaELLDecreasesWithPartition(t *testing.T) {
	c := Default()
	prev := math.Inf(1)
	for _, p := range []int{8, 16, 32} {
		tile := randomTile(13, p, 0.2)
		s := mustSigma(t, c, formats.Encode(formats.ELL, tile))
		if s >= prev {
			t.Fatalf("σ(ELL) did not decrease at p=%d: %.3f >= %.3f", p, s, prev)
		}
		prev = s
	}
}

// TestSigmaGrowsWithDensity: Fig. 5's headline trend — COO, CSR, CSC σ
// rise sharply with density.
func TestSigmaGrowsWithDensity(t *testing.T) {
	c := Default()
	for _, k := range []formats.Kind{formats.COO, formats.CSR, formats.CSC} {
		lo := mustSigma(t, c, formats.Encode(k, randomTile(17, 16, 0.01)))
		hi := mustSigma(t, c, formats.Encode(k, randomTile(17, 16, 0.5)))
		if hi < 2*lo {
			t.Errorf("σ(%v) did not grow with density: %.2f → %.2f", k, lo, hi)
		}
	}
}

// TestMemCyclesSparseBelowDense: every sparse format transfers less than
// dense on a sparse tile (§6.2: "memory latency for all sparse formats is
// much lower than for the dense format").
func TestMemCyclesSparseBelowDense(t *testing.T) {
	c := Default()
	tile := randomTile(19, 16, 0.05)
	dense := c.MemCycles(formats.Encode(formats.Dense, tile))
	for _, k := range formats.Sparse() {
		if m := c.MemCycles(formats.Encode(k, tile)); m >= dense {
			t.Errorf("mem(%v) = %d >= mem(dense) = %d on a 5%% tile", k, m, dense)
		}
	}
}

func TestMemCyclesUsesLongerLane(t *testing.T) {
	c := Default()
	tile := randomTile(23, 16, 0.3)
	enc := formats.Encode(formats.COO, tile)
	f := enc.Footprint()
	// COO's index lane (two indices per value) must dominate.
	if f.IndexLaneBytes <= f.ValueLaneBytes {
		t.Fatal("COO index lane unexpectedly short")
	}
	want := (f.IndexLaneBytes+c.AXIBytesPerCycle-1)/c.AXIBytesPerCycle + c.BurstOverhead
	if got := c.MemCycles(enc); got != want {
		t.Fatalf("MemCycles = %d, want %d (longer lane + burst)", got, want)
	}
}

// TestRunFunctionalCorrectness is the cornerstone integration property:
// SpMV computed through encode → hardware decode → dot products equals the
// software reference for every format, on every workload shape.
func TestRunFunctionalCorrectness(t *testing.T) {
	cfg := Default()
	mats := map[string]*matrix.CSR{
		"random":   gen.Random(100, 0.05, 1),
		"denseish": gen.Random(60, 0.4, 2),
		"band":     gen.Band(90, 8, 3),
		"diagonal": gen.Diagonal(64, 4),
		"circuit":  gen.Circuit(120, 5),
		"ragged":   gen.Random(97, 0.08, 6), // dims not multiples of p
	}
	for name, m := range mats {
		x := make([]float64, m.Cols)
		r := xrand.New(99)
		for i := range x {
			x[i] = r.ValueIn(-1, 1)
		}
		want := m.MulVec(x)
		for _, k := range formats.All() {
			for _, p := range []int{8, 16} {
				res, err := Run(cfg, m, k, p, x)
				if err != nil {
					t.Fatalf("%s/%v/p=%d: %v", name, k, p, err)
				}
				for i := range want {
					if math.Abs(res.Y[i]-want[i]) > 1e-9 {
						t.Fatalf("%s/%v/p=%d: y[%d] = %v, want %v", name, k, p, i, res.Y[i], want[i])
					}
				}
			}
		}
	}
}

func TestRunVectorLengthError(t *testing.T) {
	m := gen.Random(32, 0.1, 1)
	if _, err := Run(Default(), m, formats.CSR, 8, make([]float64, 31)); err == nil {
		t.Fatal("mismatched vector accepted")
	}
}

func TestRunInvalidConfigError(t *testing.T) {
	bad := Default()
	bad.AXIBytesPerCycle = 0
	m := gen.Random(16, 0.1, 1)
	if _, err := Run(bad, m, formats.CSR, 8, make([]float64, 16)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestResultAggregates(t *testing.T) {
	m := gen.Random(128, 0.05, 7)
	x := make([]float64, 128)
	for i := range x {
		x[i] = 1
	}
	res, err := Run(Default(), m, formats.CSR, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonZeroTiles == 0 || res.NonZeroTiles > res.TotalTiles {
		t.Fatalf("tile counts: %d/%d", res.NonZeroTiles, res.TotalTiles)
	}
	if res.PipelinedCycles < res.MemCycles && res.PipelinedCycles < res.ComputeCycles {
		t.Fatal("pipelined total below both stage totals")
	}
	if res.PipelinedCycles > res.MemCycles+res.ComputeCycles {
		t.Fatal("pipelined total exceeds sum of stages")
	}
	if res.Seconds() <= 0 || res.Throughput() <= 0 {
		t.Fatal("non-positive time or throughput")
	}
	if b := res.BalanceRatio(); b <= 0 {
		t.Fatalf("balance ratio %v", b)
	}
	if u := res.BandwidthUtilization(); u <= 0 || u > 1 {
		t.Fatalf("bandwidth utilization %v", u)
	}
}

// TestUtilizationMetrics checks the §5.1 utilization definitions: the
// dense format's dot engine carries only the matrix's non-zeros across
// all p rows, while CSR's inner pipeline holds only non-zero rows.
func TestUtilizationMetrics(t *testing.T) {
	m := gen.Random(128, 0.05, 41)
	x := make([]float64, 128)
	dense, err := Run(Default(), m, formats.Dense, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	if u := dense.InnerPipelineUtilization(); u != 1 {
		t.Fatalf("dense inner-pipeline utilization %v, want 1 (processes every row)", u)
	}
	csr, err := Run(Default(), m, formats.CSR, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	if u := csr.InnerPipelineUtilization(); u <= 0 || u >= 1 {
		t.Fatalf("CSR inner-pipeline utilization %v, want in (0,1)", u)
	}
	// Same nnz over fewer dot rows: CSR's engine utilization must exceed
	// dense's.
	if csr.DotEngineUtilization() <= dense.DotEngineUtilization() {
		t.Fatalf("CSR engine utilization %v not above dense %v",
			csr.DotEngineUtilization(), dense.DotEngineUtilization())
	}
	for _, u := range []float64{csr.DotEngineUtilization(), dense.DotEngineUtilization()} {
		if u <= 0 || u > 1 {
			t.Fatalf("utilization %v out of (0,1]", u)
		}
	}
}

// TestSigmaAggregateDense: the aggregate σ over a whole matrix run is
// exactly 1 for the dense baseline.
func TestSigmaAggregateDense(t *testing.T) {
	m := gen.Random(96, 0.1, 9)
	x := make([]float64, 96)
	res, err := Run(Default(), m, formats.Dense, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Sigma(); s != 1 {
		t.Fatalf("aggregate dense σ = %v, want 1", s)
	}
}

// TestBalanceDenseNearOne: §6.2 — the dense format's balance ratio is
// closer to one than most sparse formats because zeros hit both sides.
func TestBalanceDenseNearOne(t *testing.T) {
	m := gen.Random(128, 0.03, 11)
	x := make([]float64, 128)
	dense, err := Run(Default(), m, formats.Dense, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	bd := math.Abs(math.Log(dense.BalanceRatio()))
	closer := 0
	for _, k := range formats.Sparse() {
		res, err := Run(Default(), m, k, 16, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Log(res.BalanceRatio())) < bd {
			closer++
		}
	}
	if closer > len(formats.Sparse())/2 {
		t.Fatalf("%d of %d sparse formats are better balanced than dense", closer, len(formats.Sparse()))
	}
}

// TestRunTileDeterministic: the model is a pure function of its inputs.
func TestRunTileDeterministic(t *testing.T) {
	cfg := Default()
	tile := randomTile(31, 16, 0.2)
	for _, k := range formats.All() {
		a, errA := RunTile(cfg, formats.Encode(k, tile))
		b, errB := RunTile(cfg, formats.Encode(k, tile))
		if errA != nil || errB != nil {
			t.Fatalf("%v: RunTile errors %v, %v", k, errA, errB)
		}
		if a != b {
			t.Fatalf("%v: non-deterministic tile result", k)
		}
	}
}

// TestComputeCyclesComposition: compute = decomp + dots, per definition.
func TestComputeCyclesComposition(t *testing.T) {
	cfg := Default()
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.2)
		for _, k := range formats.All() {
			enc := formats.Encode(k, tile)
			if mustCompute(t, cfg, enc) != mustDecomp(t, cfg, enc)+enc.Stats().DotRows*cfg.DotLatency(16) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
