// Package hlsim is the hardware substrate of this reproduction: a
// deterministic cycle-level model of the paper's evaluation platform
// (Fig. 2) — an SpMV accelerator generated from C++ by Vivado HLS onto a
// Xilinx xq7z020 at 250 MHz, streaming compressed partitions from DDR3
// over AXI.
//
// The model reproduces the structure that determines every performance
// metric in the paper:
//
//   - a high-level three-stage pipeline (memory read → compute → memory
//     write) in which per-partition latency is max(memory, compute);
//   - two parallel AXI streamlines (values; indices/offsets), the longer
//     of which defines memory latency (§5.2);
//   - a compute stage that is itself a two-stage pipeline: a per-format
//     decompressor transliterated from the paper's HLS listings 1–7, and
//     a fixed-width dot-product engine (multiplier array feeding a
//     balanced adder tree);
//   - HLS loop semantics: `#pragma HLS pipeline` loops cost II·trip +
//     fill depth, `#pragma HLS unroll` loops over BRAM-partitioned arrays
//     cost one issue slot, and dependent BRAM reads cost BRAMReadLatency.
//
// Absolute constants live in Config and are calibrated so the dense
// baseline satisfies σ = 1 exactly (Eq. 1) and the sparse formats land in
// the paper's reported ranges (CSC up to ~21–30× dense, ELL within ~20%
// of dense, etc.). The simulation is also functional: decompressed rows
// feed real dot products, and the resulting y vector is checked against
// the software SpMV in the test suite.
package hlsim

import "fmt"

// Config holds the hardware parameters of the modelled platform.
type Config struct {
	// ClockHz is the accelerator clock (the paper's 250 MHz).
	ClockHz float64
	// AXIBytesPerCycle is the width of each AXI streamline (64-bit).
	AXIBytesPerCycle int
	// BurstOverhead is the fixed per-partition stream setup cost in
	// cycles (address phase, FIFO fill).
	BurstOverhead int
	// SingleStreamline serializes the value and index streams onto one
	// AXI lane instead of the paper's two parallel streamlines (§5.2) —
	// the ablation knob for BenchmarkAblationStreamlines.
	SingleStreamline bool
	// BRAMReadLatency is the latency in cycles of a dependent BRAM read
	// (the "one extra access to BRAM" CSR pays per row).
	BRAMReadLatency int
	// PipeDepth is the fill/drain depth charged once per pipelined loop.
	PipeDepth int

	// MulLatency and AddLatency shape the dot-product engine: a p-wide
	// multiplier array (MulLatency) feeding a balanced adder tree of
	// depth log2(p) whose stages each take AddLatency.
	MulLatency int
	AddLatency int

	// Per-format initiation intervals for the pipelined decompressor
	// loops of Listings 1–7. II=1 is a perfectly pipelined loop; CSR's
	// dependent colInx→drow chain forces II=2.
	IICSR int
	IICOO int
	IIDIA int
	// CSCScanFrac is the average fraction of the tuple stream the CSC
	// row-reconstruction scan walks before its break fires (Listing 3
	// breaks on first match; 0.5 models uniformly placed matches).
	CSCScanFrac float64
	// CELL is the per-row cost of the fully unrolled ELL gather.
	CELL int
	// CLILBase is the per-row cost of LIL's comparator logic beyond the
	// log2(p) min-tree (the "simpler logic" of §5.2).
	CLILBase int
}

// Default returns the calibrated configuration used throughout the
// reproduction. Changing a constant shifts absolute cycle counts but not
// the structural relationships the figures report.
func Default() Config {
	return Config{
		ClockHz:          250e6,
		AXIBytesPerCycle: 8,
		BurstOverhead:    4,
		BRAMReadLatency:  2,
		PipeDepth:        3,
		MulLatency:       1,
		AddLatency:       1,
		IICSR:            2,
		IICOO:            1,
		IIDIA:            1,
		CSCScanFrac:      0.5,
		CELL:             1,
		CLILBase:         1,
	}
}

// Validate rejects configurations that would divide by zero or model
// negative time.
func (c Config) Validate() error {
	switch {
	case c.ClockHz <= 0:
		return fmt.Errorf("hlsim: ClockHz %v must be positive", c.ClockHz)
	case c.AXIBytesPerCycle <= 0:
		return fmt.Errorf("hlsim: AXIBytesPerCycle %d must be positive", c.AXIBytesPerCycle)
	case c.BurstOverhead < 0 || c.BRAMReadLatency < 0 || c.PipeDepth < 0:
		return fmt.Errorf("hlsim: negative latency constant")
	case c.MulLatency < 1 || c.AddLatency < 1:
		return fmt.Errorf("hlsim: arithmetic latencies must be at least 1")
	case c.IICSR < 1 || c.IICOO < 1 || c.IIDIA < 1 || c.CELL < 1 || c.CLILBase < 0:
		return fmt.Errorf("hlsim: initiation intervals must be at least 1")
	case c.CSCScanFrac <= 0 || c.CSCScanFrac > 1:
		return fmt.Errorf("hlsim: CSCScanFrac %v out of (0,1]", c.CSCScanFrac)
	}
	return nil
}

// DotLatency returns T_dot for a p-wide dot-product engine: the
// multiplier stage plus a balanced adder tree of depth ceil(log2 p).
func (c Config) DotLatency(p int) int {
	return c.MulLatency + c.AddLatency*log2ceil(p)
}

// CycleSeconds converts a cycle count to seconds at the configured clock.
func (c Config) CycleSeconds(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("hlsim: log2ceil(%d)", n))
	}
	d, v := 0, 1
	for v < n {
		v <<= 1
		d++
	}
	return d
}
