package hlsim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
	"copernicus/internal/resilience"
)

// Plan is an encode-once streaming plan: one matrix partitioned at one
// partition size, with per-format encodings, cycle costs, and the
// decode-and-verify cross-check each performed exactly once and cached.
// Every entry point of the package (Run, RunParallel, RunSpMM, Trace,
// BuildSchedule) is a thin wrapper over a transient plan; callers that
// stream the same matrix repeatedly — iterative kernels, characterization
// sweeps — hold a Plan so each SpMV pays only the per-iteration dot work.
//
// The plan is sparse-native end to end: the partitioning stores compact
// per-tile CSR spans (O(nnz) resident, never p² buffers), the functional
// rows/cols/vals arrays are copied straight out of those spans, and each
// format's encoder walks the sparse tile in O(nnz + p).
//
// Format state is guarded per format (one once-guard per Kind for encode
// and another for verify), so concurrent consumers characterizing
// different formats on one plan never serialize against each other; a
// format's tiles can additionally be encoded on a bounded worker pool
// (SetWorkers) with deterministic, tile-ordered aggregation.
//
// A Plan is safe for concurrent use.
type Plan struct {
	cfg Config
	m   *matrix.CSR
	p   int
	pt  *matrix.Partitioning

	// encPool, when set, lends helper goroutines to tile-parallel warmup;
	// nil encodes serially. The engine shares one pool across every plan
	// it caches so total encode parallelism stays bounded by its worker
	// count even when many sweep groups warm plans at once.
	encPool atomic.Pointer[EncodePool]

	// xpool, when set, overrides the process-shared ExecPool used by the
	// tile-parallel RunExecInto path; nil uses the shared default.
	xpool atomic.Pointer[ExecPool]

	// spansOnce/spans hold the per-grid-block-row ownership table of the
	// exec path: each span owns a contiguous y range and tile range, so
	// parallel workers never write the same output row (see exec.go).
	spansOnce sync.Once
	spans     []execSpan

	// CSR-native functional view of the non-zero tiles, built lazily by
	// ensureRows on the first multiplication (cycle-model-only paths —
	// Trace, Schedule — never pay for it): each row spans
	// cols/vals[row.start:row.end]. Iterating these reproduces the exact
	// accumulation order of the per-tile pipeline (ascending local row,
	// ascending column), so results are bit-identical to the pre-plan path.
	rowsOnce  sync.Once
	rows      []planRow
	cols      []int32
	vals      []float64
	rowsBytes atomic.Int64

	ptBytes int64
	fmts    [formats.NumKinds]planSlot
}

// planSlot is one format's cached state: separate leader/waiter guards
// for the encode and verify phases (replacing the old plan-wide mutex
// that serialized every format behind whichever encode ran first) and an
// atomically published result so stats readers never race the encode.
//
// Unlike a sync.Once, the guards are cancellation-safe: a leader whose
// context is canceled mid-phase abandons the slot *unpublished* — no
// half-encoded state is ever visible — and the next caller (or a waiter
// that was parked on the aborted leader) re-runs the phase from scratch
// under its own context. Completed phases, including sticky model
// errors, are published exactly once and never re-run.
type planSlot struct {
	mu sync.Mutex
	// encWait is non-nil while a leader encodes; waiters park on it and
	// re-check the slot when it closes (completion or abort).
	encWait chan struct{}
	// pf is published only by a leader that completed the encode (with
	// results or a sticky model error), never by a canceled one.
	pf atomic.Pointer[planFormat]
	// verWait/verified play the same roles for the decode-and-verify
	// phase; sticky verify errors live in pf.
	verWait  chan struct{}
	verified bool
	// exWait/ex play the same roles for the executable-kernel phase: ex
	// holds the resident encodings the RunExecInto path walks (rebuilt
	// fresh, since verify frees the warmup encodings). Published only by
	// a leader that completed the build; a canceled leader leaves the
	// slot idle for the next caller.
	exWait chan struct{}
	ex     atomic.Pointer[planExec]
}

// planFormat caches everything format-dependent: per-tile cycle costs,
// the aggregated Result totals, and the outcome of the one-time
// decode-and-verify cross-check (run on first functional use, not for
// cycle-model-only consumers like Trace and Schedule). tiles and agg are
// immutable once published; encs is consumed under the verify once-guard.
type planFormat struct {
	tiles []TileResult
	agg   formatAgg
	// encs holds the encodings from format() until verify consumes them
	// (freed afterwards); one-shot cycle-model consumers drop the whole
	// plan, so nothing lingers.
	encs []formats.Encoded
	// verifyErr is the sticky decode/cross-check failure, published
	// atomically so format() readers can observe it without locking.
	verifyErr atomic.Pointer[error]
}

func (pf *planFormat) err() error {
	if ep := pf.verifyErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

func (pf *planFormat) setErr(err error) { pf.verifyErr.Store(&err) }

// formatAgg carries the Result totals aggregated over all non-zero tiles.
type formatAgg struct {
	MemCycles         uint64
	ComputeCycles     uint64
	DecompCycles      uint64
	PipelinedCycles   uint64
	IdleComputeCycles uint64
	StallMemCycles    uint64
	DotRows           uint64
	NNZ               uint64
	Footprint         formats.Footprint
	sumBalance        float64
}

// planRow is one non-zero tile row: its global row index and the span of
// its entries in the plan's cols/vals arrays.
type planRow struct {
	gi         int
	start, end int
}

// planEncodeHook, when non-nil, is called at the start of every format
// encode — a test seam proving that different formats warm up
// concurrently rather than serializing on a shared lock.
var planEncodeHook func(formats.Kind)

// NewPlan partitions m once at partition size p under the given hardware
// configuration. Encodings are produced lazily, once per format, on first
// use.
func NewPlan(cfg Config, m *matrix.CSR, p int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pl := &Plan{
		cfg: cfg,
		m:   m,
		p:   p,
		pt:  matrix.Partition(m, p),
	}
	pl.ptBytes = pl.pt.MemoryBytes()
	return pl, nil
}

// Config returns the plan's hardware configuration.
func (pl *Plan) Config() Config { return pl.cfg }

// Matrix returns the planned matrix.
func (pl *Plan) Matrix() *matrix.CSR { return pl.m }

// P returns the partition size.
func (pl *Plan) P() int { return pl.p }

// Partitioning returns the cached partitioning.
func (pl *Plan) Partitioning() *matrix.Partitioning { return pl.pt }

// EncodePool is a token bucket lending helper goroutines to the
// tile-parallel warmup of every plan that shares it. A format encode
// borrows helpers only when tokens are immediately free and always does
// work on the calling goroutine too, so a pool shared across concurrent
// sweep groups bounds *total* extra encode goroutines at the pool size
// instead of multiplying per plan — and a drained pool degrades to the
// plain serial encode.
type EncodePool struct {
	tokens chan struct{}
}

// NewEncodePool returns a pool lending up to `helpers` concurrent helper
// goroutines (0 means no parallelism beyond the caller).
func NewEncodePool(helpers int) *EncodePool {
	if helpers < 0 {
		helpers = 0
	}
	return &EncodePool{tokens: make(chan struct{}, helpers)}
}

// SetWorkers bounds the tile-parallel warmup: format encodes fan tiles
// out over up to n goroutines, caller included (aggregation stays serial
// and tile-ordered, so results are bit-identical to a serial encode).
// n <= 1 encodes serially; 0 is treated as GOMAXPROCS. The pool created
// here is private to this plan; use SetEncodePool to share one bound
// across many plans.
func (pl *Plan) SetWorkers(n int) {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	pl.SetEncodePool(NewEncodePool(n - 1))
}

// SetEncodePool installs a (possibly shared) helper pool for
// tile-parallel warmup; nil restores serial encoding.
func (pl *Plan) SetEncodePool(p *EncodePool) { pl.encPool.Store(p) }

// MemoryBytes returns the plan's resident footprint: the sparse tile
// spans, the functional rows/cols/vals arrays (once built), and every
// cached per-format cycle table. Because tiles are CSR-native this is
// O(nnz + tiles·p + formats·tiles), not O(tiles·p²).
func (pl *Plan) MemoryBytes() int64 {
	b := pl.ptBytes + pl.rowsBytes.Load()
	for i := range pl.fmts {
		if pf := pl.fmts[i].pf.Load(); pf != nil {
			b += int64(len(pf.tiles)) * int64(unsafe.Sizeof(TileResult{}))
		}
		if ex := pl.fmts[i].ex.Load(); ex != nil {
			b += ex.bytes
		}
	}
	return b
}

// ensureRows copies the CSR-native per-tile row spans into the plan's
// functional arrays, once per plan, on the first multiplication — a pure
// O(nnz) copy out of the sparse tiles (the old dense p²-per-tile rescan
// is gone).
func (pl *Plan) ensureRows() {
	pl.rowsOnce.Do(func() {
		nnz := 0
		nzRows := 0
		for _, t := range pl.pt.Tiles {
			nnz += t.NNZ()
			nzRows += t.NonZeroRows()
		}
		rows := make([]planRow, 0, nzRows)
		cols := make([]int32, 0, nnz)
		vals := make([]float64, 0, nnz)
		for _, t := range pl.pt.Tiles {
			base := int32(t.Col)
			for i := 0; i < t.P; i++ {
				gi := t.Row + i
				if gi >= pl.m.Rows {
					break
				}
				tc, tv := t.RowView(i)
				if len(tc) == 0 {
					continue
				}
				start := len(cols)
				for _, c := range tc {
					cols = append(cols, base+c)
				}
				vals = append(vals, tv...)
				rows = append(rows, planRow{gi: gi, start: start, end: len(cols)})
			}
		}
		pl.rows, pl.cols, pl.vals = rows, cols, vals
		pl.rowsBytes.Store(int64(len(rows))*int64(unsafe.Sizeof(planRow{})) +
			int64(len(cols))*4 + int64(len(vals))*8)
	})
}

// format returns the cached per-format state, encoding and pricing every
// non-zero tile exactly once per format — under that format's own
// leader guard, so distinct formats warm concurrently. It does not run
// the decode cross-check; see verify. A Kind outside the implemented
// range is an ErrUnknownFormat error, not a panic, so it propagates
// through Characterize/Sweep to callers (and services) as a client fault.
//
// Cancellation discipline: a canceled ctx aborts the warmup between
// tile-encode chunks and returns ctx.Err(). If the canceled caller was
// the encode leader, the slot is left idle (never half-encoded), so a
// later characterization of the same format on this cached plan re-runs
// the encode cleanly; if it was a waiter, the leader is unaffected.
func (pl *Plan) format(ctx context.Context, k formats.Kind) (*planFormat, error) {
	if k < 0 || int(k) >= formats.NumKinds {
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownFormat, int(k))
	}
	slot := &pl.fmts[k]
	for {
		if pf := slot.pf.Load(); pf != nil {
			return pf, pf.err()
		}
		slot.mu.Lock()
		if pf := slot.pf.Load(); pf != nil {
			slot.mu.Unlock()
			return pf, pf.err()
		}
		if w := slot.encWait; w != nil {
			slot.mu.Unlock()
			select {
			case <-w:
				// The leader finished or aborted; re-check the slot (and
				// become the next leader if it aborted).
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		w := make(chan struct{})
		slot.encWait = w
		slot.mu.Unlock()

		pf, err := pl.encodeFormat(ctx, k)
		slot.mu.Lock()
		slot.encWait = nil
		if err == nil {
			slot.pf.Store(pf)
		}
		slot.mu.Unlock()
		close(w)
		if err != nil {
			return nil, err // canceled mid-encode; slot stays idle
		}
		return pf, pf.err()
	}
}

// Tile-parallel warmup tuning: chunks of tiles are claimed atomically so
// stragglers balance, and tiny tile counts stay serial.
const (
	encodeChunk      = 8
	minParallelTiles = 2 * encodeChunk
)

// encodeFormat encodes and prices every non-zero tile in format k. With
// an encode pool installed, tiles are claimed in chunks by the caller
// plus however many pool helpers are free right now, into
// index-addressed slots; aggregation always runs serially in tile order,
// so the totals (including the float balance sum) are bit-identical to a
// serial encode. Cancellation is checked between chunks (by the caller
// and every helper); a canceled encode returns ctx.Err() and the partial
// planFormat is discarded by the caller, never published.
//
// Fault containment: a panic in any worker (encoder invariant violation,
// injected chaos fault) is recovered into a *resilience.PanicError and —
// like an injected error — aborts the encode. The caller treats it
// exactly as a cancellation: the partial planFormat is never published,
// so a retry re-runs the encode from scratch and the result is
// bit-identical to a fault-free run. Pool helpers release their tokens
// through fanOut's defers either way.
func (pl *Plan) encodeFormat(ctx context.Context, k formats.Kind) (*planFormat, error) {
	if planEncodeHook != nil {
		planEncodeHook(k)
	}
	tiles := pl.pt.Tiles
	n := len(tiles)
	pf := &planFormat{tiles: make([]TileResult, n), encs: make([]formats.Encoded, n)}
	var next atomic.Int64
	var fail atomic.Pointer[error]
	work := func() {
		defer func() {
			if pe := resilience.Recovered(ptEncodeTile.Name(), recover()); pe != nil {
				storeFirst(&fail, pe)
			}
		}()
		for ctx.Err() == nil && fail.Load() == nil {
			lo := int(next.Add(encodeChunk)) - encodeChunk
			if lo >= n {
				return
			}
			for i := lo; i < min(lo+encodeChunk, n); i++ {
				if err := ptEncodeTile.Hit(); err != nil {
					storeFirst(&fail, err)
					return
				}
				enc := formats.Encode(k, tiles[i])
				pf.encs[i] = enc
				tr, err := RunTile(pl.cfg, enc)
				if err != nil {
					// Unreachable for in-range Kinds (format() guards the
					// range), but a model gap must surface as the slot's
					// sticky error, never a panic in a worker goroutine.
					pf.setErr(err)
					return
				}
				pf.tiles[i] = tr
			}
		}
	}
	pl.fanOut(work, n)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := loadErr(&fail); err != nil {
		return nil, err
	}
	if pf.err() != nil {
		return pf, nil
	}
	for i := range pf.tiles {
		tr := &pf.tiles[i]
		pf.agg.MemCycles += uint64(tr.MemCycles)
		pf.agg.ComputeCycles += uint64(tr.ComputeCycles)
		pf.agg.DecompCycles += uint64(tr.DecompCycles)
		pf.agg.PipelinedCycles += uint64(max(tr.MemCycles, tr.ComputeCycles))
		if tr.MemCycles > tr.ComputeCycles {
			pf.agg.IdleComputeCycles += uint64(tr.MemCycles - tr.ComputeCycles)
		} else {
			pf.agg.StallMemCycles += uint64(tr.ComputeCycles - tr.MemCycles)
		}
		pf.agg.DotRows += uint64(tr.DotRows)
		pf.agg.NNZ += uint64(pf.encs[i].Stats().NNZ)
		pf.agg.Footprint.UsefulBytes += tr.Footprint.UsefulBytes
		pf.agg.Footprint.MetaBytes += tr.Footprint.MetaBytes
		pf.agg.Footprint.ValueLaneBytes += tr.Footprint.ValueLaneBytes
		pf.agg.Footprint.IndexLaneBytes += tr.Footprint.IndexLaneBytes
		pf.agg.sumBalance += tr.Balance()
	}
	return pf, nil
}

// fanOut runs the chunk-claiming work function on the calling goroutine
// plus however many encode-pool helpers are free right now, for a task of
// n tiles. Work functions claim chunks from a shared atomic counter, so
// helper count only affects wall time, never results. With no pool, a
// drained pool, or a tiny tile count the caller works alone. Both the
// encode warmup and the exec-state build (exec.go) share this borrowing,
// so total extra goroutines across concurrent sweep groups stay bounded
// by the pool size.
func (pl *Plan) fanOut(work func(), n int) {
	pool := pl.encPool.Load()
	if pool == nil || n < minParallelTiles {
		work()
		return
	}
	var wg sync.WaitGroup
	maxHelpers := min(cap(pool.tokens), n/encodeChunk-1)
borrow:
	for h := 0; h < maxHelpers; h++ {
		select {
		case pool.tokens <- struct{}{}: // a helper slot is free now
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-pool.tokens }()
				work()
			}()
		default:
			break borrow // pool busy: the caller works alone
		}
	}
	work()
	wg.Wait()
}

// verify returns the cached per-format state after the decode-and-verify
// cross-check, hoisted to once per (format, plan): the encoded streams
// must decode back to the original tile, so any stream corruption
// surfaces here rather than as a silently wrong SpMV. Functional entry
// points (Run, RunParallel, RunSpMM) call it; cycle-model-only consumers
// (Trace, Schedule) skip it, as the pre-plan one-shots did.
//
// Like format, verify is cancellation-safe: a leader canceled between
// tiles leaves the encodings unconsumed and the slot unverified, so a
// later caller re-runs the cross-check in full. Panics and injected
// faults follow the same discipline — the slot is abandoned unverified
// and the failure propagates as an error.
func (pl *Plan) verify(ctx context.Context, k formats.Kind) (*planFormat, error) {
	pf, err := pl.format(ctx, k)
	if err != nil {
		return pf, err
	}
	slot := &pl.fmts[k]
	for {
		slot.mu.Lock()
		if slot.verified {
			slot.mu.Unlock()
			return pf, pf.err()
		}
		if w := slot.verWait; w != nil {
			slot.mu.Unlock()
			select {
			case <-w:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		w := make(chan struct{})
		slot.verWait = w
		slot.mu.Unlock()

		verr := pl.runVerify(ctx, k, pf)
		slot.mu.Lock()
		slot.verWait = nil
		slot.verified = verr == nil
		slot.mu.Unlock()
		close(w)
		if verr != nil {
			return nil, verr
		}
		return pf, pf.err()
	}
}

// runVerify cross-checks every tile's encoding. A nil return means the
// pass completed — success or a sticky model error published in pf —
// and the encodings were consumed. A non-nil return (cancellation,
// injected fault, or a panic recovered as *resilience.PanicError) leaves
// the encodings unconsumed and the slot unverified, so a retry re-runs
// the cross-check in full.
func (pl *Plan) runVerify(ctx context.Context, k formats.Kind, pf *planFormat) (abort error) {
	defer func() {
		if pe := resilience.Recovered(ptVerifyTile.Name(), recover()); pe != nil {
			abort = pe
		}
	}()
	encs := pf.encs
	for ti, tile := range pl.pt.Tiles {
		if ti%encodeChunk == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if err := ptVerifyTile.Hit(); err != nil {
			return err
		}
		dec, err := encs[ti].Decode()
		if err != nil {
			pf.setErr(fmt.Errorf("hlsim: tile (%d,%d): %w", tile.Row, tile.Col, err))
			break
		}
		if err := crossCheck(k, tile, dec); err != nil {
			pf.setErr(err)
			break
		}
	}
	pf.encs = nil // encodings are not needed once cross-checked
	return nil
}

// crossCheck compares a decoded tile against the original, sparse row by
// sparse row — O(nnz), with the same NaN-tolerant exact equality as the
// old dense compare: NaN entries round-trip as NaN (the mtx loader admits
// them), which must not read as corruption.
func crossCheck(k formats.Kind, tile, dec *matrix.Tile) error {
	for i := 0; i < tile.P; i++ {
		tc, tv := tile.RowView(i)
		dc, dv := dec.RowView(i)
		if len(tc) != len(dc) {
			return fmt.Errorf("hlsim: tile (%d,%d): %v decode mismatch at local row %d: %d non-zeros != %d",
				tile.Row, tile.Col, k, i, len(dc), len(tc))
		}
		for x := range tc {
			if tc[x] != dc[x] {
				return fmt.Errorf("hlsim: tile (%d,%d): %v decode mismatch at local row %d: column %d != %d",
					tile.Row, tile.Col, k, i, dc[x], tc[x])
			}
			if dv[x] != tv[x] && !(math.IsNaN(dv[x]) && math.IsNaN(tv[x])) {
				return fmt.Errorf("hlsim: tile (%d,%d): %v decode mismatch at local (%d,%d): %g != %g",
					tile.Row, tile.Col, k, i, tc[x], dv[x], tv[x])
			}
		}
	}
	return nil
}

// slicesOverlap reports whether the two slices' element ranges share any
// memory (compared by address range, so offset overlaps are caught too).
func slicesOverlap(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	pb := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	const w = unsafe.Sizeof(float64(0))
	return pa < pb+uintptr(len(b))*w && pb < pa+uintptr(len(a))*w
}

// spmv accumulates y += A·x through the plan's tile rows, reproducing the
// per-tile-row accumulation order of the modelled pipeline. Like the
// software reference CSR.MulVec, it multiplies only stored non-zeros: a
// structural zero never meets a non-finite operand entry (0·Inf, 0·NaN),
// exactly as in the golden model the output is verified against.
func (pl *Plan) spmv(x []float64, y []float64) {
	pl.ensureRows()
	for _, r := range pl.rows {
		s := 0.0
		for k := r.start; k < r.end; k++ {
			s += pl.vals[k] * x[pl.cols[k]]
		}
		y[r.gi] += s
	}
}

// Run streams every non-zero partition through the modelled accelerator
// in format k, multiplying by x. Cycle totals come from the cached
// per-format aggregates; only the functional dot work is paid per call.
func (pl *Plan) Run(k formats.Kind, x []float64) (*Result, error) {
	return pl.RunContext(context.Background(), k, x)
}

// RunContext is Run under a context: a cancellation aborts the one-time
// warmup (encode and decode-verify) between tile chunks and returns
// ctx.Err() without poisoning the plan's per-format slots — a later run
// of the same format redoes the aborted phase cleanly. A warm format
// ignores the context entirely (the remaining work is pure dot products).
func (pl *Plan) RunContext(ctx context.Context, k formats.Kind, x []float64) (*Result, error) {
	r := new(Result)
	if err := pl.RunIntoContext(ctx, k, x, r); err != nil {
		return nil, err
	}
	return r, nil
}

// RunInto is Run writing into a caller-held Result, reusing r.Y when its
// capacity suffices: the warm path performs zero allocations, so solver
// loops and sweep services can stream SpMVs with no GC traffic. The
// previous contents of r are overwritten. The input x must not alias the
// reused r.Y (the output is cleared before accumulation, which would
// zero the input); feeding an iteration's output back in requires a
// second Result, as kernels.Accelerator's double buffering does — the
// aliasing is detected and rejected.
func (pl *Plan) RunInto(k formats.Kind, x []float64, r *Result) error {
	return pl.RunIntoContext(context.Background(), k, x, r)
}

// RunIntoContext is RunInto under a context; see RunContext for the
// cancellation semantics. The warm path is unchanged: zero allocations
// and no context checks once the format's encode and verify are cached.
func (pl *Plan) RunIntoContext(ctx context.Context, k formats.Kind, x []float64, r *Result) error {
	if len(x) != pl.m.Cols {
		return fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), pl.m.Cols)
	}
	pf, err := pl.verify(ctx, k)
	if err != nil {
		return err
	}
	y := r.Y
	if cap(y) < pl.m.Rows {
		y = make([]float64, pl.m.Rows)
	} else {
		if slicesOverlap(x, y[:cap(y)]) {
			return fmt.Errorf("hlsim: RunInto input x overlaps the reused r.Y buffer; use a second Result to feed an output back in")
		}
		y = y[:pl.m.Rows]
		clear(y)
	}
	*r = Result{
		Kind:              k,
		P:                 pl.p,
		Y:                 y,
		NonZeroTiles:      len(pl.pt.Tiles),
		TotalTiles:        pl.pt.TotalTiles,
		MemCycles:         pf.agg.MemCycles,
		ComputeCycles:     pf.agg.ComputeCycles,
		DecompCycles:      pf.agg.DecompCycles,
		PipelinedCycles:   pf.agg.PipelinedCycles,
		IdleComputeCycles: pf.agg.IdleComputeCycles,
		StallMemCycles:    pf.agg.StallMemCycles,
		DotRows:           pf.agg.DotRows,
		NNZ:               pf.agg.NNZ,
		Footprint:         pf.agg.Footprint,
		sumBalance:        pf.agg.sumBalance,
		cfg:               pl.cfg,
	}
	pl.spmv(x, y)
	return nil
}

// RunParallel distributes the non-zero partitions across `lanes`
// independent pipeline instances (round-robin, as in RunParallel the
// free function) using the cached per-tile costs.
func (pl *Plan) RunParallel(k formats.Kind, x []float64, lanes int) (*ParallelResult, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("hlsim: RunParallel with %d lanes", lanes)
	}
	if len(x) != pl.m.Cols {
		return nil, fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), pl.m.Cols)
	}
	pf, err := pl.verify(context.Background(), k)
	if err != nil {
		return nil, err
	}
	r := &ParallelResult{
		Kind:         k,
		P:            pl.p,
		Lanes:        lanes,
		Y:            make([]float64, pl.m.Rows),
		LaneCycles:   make([]uint64, lanes),
		NonZeroTiles: len(pl.pt.Tiles),
		cfg:          pl.cfg,
	}
	for i, tr := range pf.tiles {
		r.LaneCycles[i%lanes] += uint64(max(tr.MemCycles, tr.ComputeCycles))
	}
	for _, c := range r.LaneCycles {
		if c > r.TotalCycles {
			r.TotalCycles = c
		}
	}
	pl.spmv(x, r.Y)
	return r, nil
}

// RunSpMM multiplies the planned matrix by the dense operand b
// (m.Cols × cols, row-major) through the modelled pipeline.
func (pl *Plan) RunSpMM(k formats.Kind, b []float64, cols int) (*SpMMResult, error) {
	if cols < 1 {
		return nil, fmt.Errorf("hlsim: RunSpMM with %d columns", cols)
	}
	if len(b) != pl.m.Cols*cols {
		return nil, fmt.Errorf("hlsim: operand is %d values, want %d×%d", len(b), pl.m.Cols, cols)
	}
	pf, err := pl.verify(context.Background(), k)
	if err != nil {
		return nil, err
	}
	r := &SpMMResult{
		Kind: k, P: pl.p, Columns: cols,
		Y:            make([]float64, pl.m.Rows*cols),
		NonZeroTiles: len(pl.pt.Tiles),
		cfg:          pl.cfg,
	}
	td := pl.cfg.DotLatency(pl.p)
	for _, tr := range pf.tiles {
		comp := tr.DecompCycles + tr.DotRows*cols*td
		r.MemCycles += uint64(tr.MemCycles)
		r.DecompCycles += uint64(tr.DecompCycles)
		r.ComputeCycles += uint64(comp)
		r.PipelinedCycles += uint64(max(tr.MemCycles, comp))
	}
	pl.ensureRows()
	for _, row := range pl.rows {
		for kk := row.start; kk < row.end; kk++ {
			v := pl.vals[kk]
			gj := int(pl.cols[kk])
			for c := 0; c < cols; c++ {
				r.Y[row.gi*cols+c] += v * b[gj*cols+c]
			}
		}
	}
	return r, nil
}

// Trace returns the per-partition streaming record in streaming order.
func (pl *Plan) Trace(k formats.Kind) ([]TileTrace, error) {
	pf, err := pl.format(context.Background(), k)
	if err != nil {
		return nil, err
	}
	out := make([]TileTrace, 0, len(pl.pt.Tiles))
	for i, tr := range pf.tiles {
		tile := pl.pt.Tiles[i]
		tt := TileTrace{
			Row: tile.Row, Col: tile.Col, NNZ: tile.NNZ(),
			MemCycles:     tr.MemCycles,
			DecompCycles:  tr.DecompCycles,
			ComputeCycles: tr.ComputeCycles,
			Pipelined:     max(tr.MemCycles, tr.ComputeCycles),
			MemoryBound:   tr.MemCycles > tr.ComputeCycles,
		}
		if tt.MemoryBound {
			tt.Bubble = tr.MemCycles - tr.ComputeCycles
		} else {
			tt.Bubble = tr.ComputeCycles - tr.MemCycles
		}
		out = append(out, tt)
	}
	return out, nil
}

// Schedule computes the event-level three-stage pipeline timeline from
// the cached per-tile costs.
func (pl *Plan) Schedule(k formats.Kind) (*Schedule, error) {
	pf, err := pl.format(context.Background(), k)
	if err != nil {
		return nil, err
	}
	s := &Schedule{Kind: k, P: pl.p, Tiles: make([]StageTimes, 0, len(pf.tiles)), cfg: pl.cfg}
	var memFree, compFree, writeFree uint64
	for _, tr := range pf.tiles {
		var st StageTimes
		st.MemStart = memFree
		st.MemEnd = st.MemStart + uint64(tr.MemCycles)
		memFree = st.MemEnd

		st.ComputeStart = max64(st.MemEnd, compFree)
		st.ComputeEnd = st.ComputeStart + uint64(tr.ComputeCycles)
		compFree = st.ComputeEnd

		st.WriteStart = max64(st.ComputeEnd, writeFree)
		st.WriteEnd = st.WriteStart + uint64(pl.cfg.writeCycles(pl.p))
		writeFree = st.WriteEnd

		s.Tiles = append(s.Tiles, st)
	}
	s.Makespan = writeFree
	return s, nil
}
