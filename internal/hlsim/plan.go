package hlsim

import (
	"fmt"
	"math"
	"sync"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// Plan is an encode-once streaming plan: one matrix partitioned at one
// partition size, with per-format encodings, cycle costs, and the
// decode-and-verify cross-check each performed exactly once and cached.
// Every entry point of the package (Run, RunParallel, RunSpMM, Trace,
// BuildSchedule) is a thin wrapper over a transient plan; callers that
// stream the same matrix repeatedly — iterative kernels, characterization
// sweeps — hold a Plan so each SpMV pays only the per-iteration dot work.
//
// The functional path is sparse-aware: the plan stores each tile's
// non-zeros in CSR-native form (built once from the partitioning), and
// SpMV iterates those stored entries instead of decoding a dense tile and
// walking all p² positions. The decompress→verify cross-check against the
// format decoders still runs, but once per (format, plan) rather than
// once per multiplication.
//
// A Plan is safe for concurrent use.
type Plan struct {
	cfg Config
	m   *matrix.CSR
	p   int
	pt  *matrix.Partitioning

	// CSR-native functional view of the non-zero tiles, built lazily by
	// ensureRows on the first multiplication (cycle-model-only paths —
	// Trace, Schedule — never pay for it): each row spans
	// cols/vals[row.start:row.end]. Iterating these reproduces the exact
	// accumulation order of the dense per-tile loop (ascending local row,
	// ascending column), so results are bit-identical to the pre-plan path.
	rowsOnce sync.Once
	rows     []planRow
	cols     []int32
	vals     []float64

	mu   sync.Mutex
	fmts map[formats.Kind]*planFormat
}

// planRow is one non-zero tile row: its global row index and the span of
// its entries in the plan's cols/vals arrays.
type planRow struct {
	gi         int
	start, end int
}

// planFormat caches everything format-dependent: per-tile cycle costs,
// the aggregated Result totals, and the outcome of the one-time
// decode-and-verify cross-check (run on first functional use, not for
// cycle-model-only consumers like Trace and Schedule).
type planFormat struct {
	tiles []TileResult
	agg   formatAgg
	// encs holds the encodings from format() until verify consumes them
	// (freed afterwards); one-shot cycle-model consumers drop the whole
	// plan, so nothing lingers.
	encs     []formats.Encoded
	verified bool
	err      error // sticky decode/cross-check failure
}

// formatAgg carries the Result totals aggregated over all non-zero tiles.
type formatAgg struct {
	MemCycles         uint64
	ComputeCycles     uint64
	DecompCycles      uint64
	PipelinedCycles   uint64
	IdleComputeCycles uint64
	StallMemCycles    uint64
	DotRows           uint64
	NNZ               uint64
	Footprint         formats.Footprint
	sumBalance        float64
}

// NewPlan partitions m once at partition size p under the given hardware
// configuration. Encodings are produced lazily, once per format, on first
// use.
func NewPlan(cfg Config, m *matrix.CSR, p int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plan{
		cfg:  cfg,
		m:    m,
		p:    p,
		pt:   matrix.Partition(m, p),
		fmts: make(map[formats.Kind]*planFormat),
	}, nil
}

// Config returns the plan's hardware configuration.
func (pl *Plan) Config() Config { return pl.cfg }

// Matrix returns the planned matrix.
func (pl *Plan) Matrix() *matrix.CSR { return pl.m }

// P returns the partition size.
func (pl *Plan) P() int { return pl.p }

// Partitioning returns the cached partitioning.
func (pl *Plan) Partitioning() *matrix.Partitioning { return pl.pt }

// ensureRows extracts the CSR-native per-tile row spans from the dense
// tiles, once per plan, on the first multiplication.
func (pl *Plan) ensureRows() {
	pl.rowsOnce.Do(func() {
		nnz := 0
		nzRows := 0
		for _, t := range pl.pt.Tiles {
			nnz += t.NNZ()
			nzRows += t.NonZeroRows()
		}
		pl.rows = make([]planRow, 0, nzRows)
		pl.cols = make([]int32, 0, nnz)
		pl.vals = make([]float64, 0, nnz)
		for _, t := range pl.pt.Tiles {
			for i := 0; i < t.P; i++ {
				gi := t.Row + i
				if gi >= pl.m.Rows {
					break
				}
				if t.RowNNZ(i) == 0 {
					continue
				}
				start := len(pl.cols)
				for j := 0; j < t.P; j++ {
					if v := t.Val[i*t.P+j]; v != 0 {
						pl.cols = append(pl.cols, int32(t.Col+j))
						pl.vals = append(pl.vals, v)
					}
				}
				pl.rows = append(pl.rows, planRow{gi: gi, start: start, end: len(pl.cols)})
			}
		}
	})
}

// format returns the cached per-format state, encoding and pricing every
// non-zero tile exactly once. It does not run the decode cross-check;
// see verify.
func (pl *Plan) format(k formats.Kind) (*planFormat, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pf, ok := pl.fmts[k]; ok {
		return pf, pf.err
	}
	pf := &planFormat{
		tiles: make([]TileResult, 0, len(pl.pt.Tiles)),
		encs:  make([]formats.Encoded, 0, len(pl.pt.Tiles)),
	}
	pl.fmts[k] = pf
	for _, tile := range pl.pt.Tiles {
		enc := formats.Encode(k, tile)
		tr := RunTile(pl.cfg, enc)
		pf.tiles = append(pf.tiles, tr)
		pf.encs = append(pf.encs, enc)
		pf.agg.MemCycles += uint64(tr.MemCycles)
		pf.agg.ComputeCycles += uint64(tr.ComputeCycles)
		pf.agg.DecompCycles += uint64(tr.DecompCycles)
		pf.agg.PipelinedCycles += uint64(max(tr.MemCycles, tr.ComputeCycles))
		if tr.MemCycles > tr.ComputeCycles {
			pf.agg.IdleComputeCycles += uint64(tr.MemCycles - tr.ComputeCycles)
		} else {
			pf.agg.StallMemCycles += uint64(tr.ComputeCycles - tr.MemCycles)
		}
		pf.agg.DotRows += uint64(tr.DotRows)
		pf.agg.NNZ += uint64(enc.Stats().NNZ)
		pf.agg.Footprint.UsefulBytes += tr.Footprint.UsefulBytes
		pf.agg.Footprint.MetaBytes += tr.Footprint.MetaBytes
		pf.agg.Footprint.ValueLaneBytes += tr.Footprint.ValueLaneBytes
		pf.agg.Footprint.IndexLaneBytes += tr.Footprint.IndexLaneBytes
		pf.agg.sumBalance += tr.Balance()
	}
	return pf, nil
}

// verify returns the cached per-format state after the decode-and-verify
// cross-check, hoisted to once per (format, plan): the encoded streams
// must decode back to the original tile, so any stream corruption
// surfaces here rather than as a silently wrong SpMV. Functional entry
// points (Run, RunParallel, RunSpMM) call it; cycle-model-only consumers
// (Trace, Schedule) skip it, as the pre-plan one-shots did.
func (pl *Plan) verify(k formats.Kind) (*planFormat, error) {
	pf, err := pl.format(k)
	if err != nil {
		return pf, err
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pf.verified {
		return pf, pf.err
	}
	pf.verified = true
	encs := pf.encs
	pf.encs = nil // encodings are not needed once cross-checked
	for ti, tile := range pl.pt.Tiles {
		dec, err := encs[ti].Decode()
		if err != nil {
			pf.err = fmt.Errorf("hlsim: tile (%d,%d): %w", tile.Row, tile.Col, err)
			return pf, pf.err
		}
		for i, v := range tile.Val {
			// NaN-tolerant exact equality: NaN entries round-trip as NaN
			// (the mtx loader admits them), which must not read as
			// corruption.
			if dec.Val[i] != v && !(math.IsNaN(dec.Val[i]) && math.IsNaN(v)) {
				pf.err = fmt.Errorf("hlsim: tile (%d,%d): %v decode mismatch at local (%d,%d): %g != %g",
					tile.Row, tile.Col, k, i/tile.P, i%tile.P, dec.Val[i], v)
				return pf, pf.err
			}
		}
	}
	return pf, nil
}

// spmv accumulates y += A·x through the plan's tile rows, reproducing the
// per-tile-row accumulation order of the modelled pipeline. Like the
// software reference CSR.MulVec, it multiplies only stored non-zeros: a
// structural zero never meets a non-finite operand entry (0·Inf, 0·NaN),
// exactly as in the golden model the output is verified against.
func (pl *Plan) spmv(x []float64, y []float64) {
	pl.ensureRows()
	for _, r := range pl.rows {
		s := 0.0
		for k := r.start; k < r.end; k++ {
			s += pl.vals[k] * x[pl.cols[k]]
		}
		y[r.gi] += s
	}
}

// Run streams every non-zero partition through the modelled accelerator
// in format k, multiplying by x. Cycle totals come from the cached
// per-format aggregates; only the functional dot work is paid per call.
func (pl *Plan) Run(k formats.Kind, x []float64) (*Result, error) {
	if len(x) != pl.m.Cols {
		return nil, fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), pl.m.Cols)
	}
	pf, err := pl.verify(k)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Kind:              k,
		P:                 pl.p,
		Y:                 make([]float64, pl.m.Rows),
		NonZeroTiles:      len(pl.pt.Tiles),
		TotalTiles:        pl.pt.TotalTiles,
		MemCycles:         pf.agg.MemCycles,
		ComputeCycles:     pf.agg.ComputeCycles,
		DecompCycles:      pf.agg.DecompCycles,
		PipelinedCycles:   pf.agg.PipelinedCycles,
		IdleComputeCycles: pf.agg.IdleComputeCycles,
		StallMemCycles:    pf.agg.StallMemCycles,
		DotRows:           pf.agg.DotRows,
		NNZ:               pf.agg.NNZ,
		Footprint:         pf.agg.Footprint,
		sumBalance:        pf.agg.sumBalance,
		cfg:               pl.cfg,
	}
	pl.spmv(x, r.Y)
	return r, nil
}

// RunParallel distributes the non-zero partitions across `lanes`
// independent pipeline instances (round-robin, as in RunParallel the
// free function) using the cached per-tile costs.
func (pl *Plan) RunParallel(k formats.Kind, x []float64, lanes int) (*ParallelResult, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("hlsim: RunParallel with %d lanes", lanes)
	}
	if len(x) != pl.m.Cols {
		return nil, fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), pl.m.Cols)
	}
	pf, err := pl.verify(k)
	if err != nil {
		return nil, err
	}
	r := &ParallelResult{
		Kind:         k,
		P:            pl.p,
		Lanes:        lanes,
		Y:            make([]float64, pl.m.Rows),
		LaneCycles:   make([]uint64, lanes),
		NonZeroTiles: len(pl.pt.Tiles),
		cfg:          pl.cfg,
	}
	for i, tr := range pf.tiles {
		r.LaneCycles[i%lanes] += uint64(max(tr.MemCycles, tr.ComputeCycles))
	}
	for _, c := range r.LaneCycles {
		if c > r.TotalCycles {
			r.TotalCycles = c
		}
	}
	pl.spmv(x, r.Y)
	return r, nil
}

// RunSpMM multiplies the planned matrix by the dense operand b
// (m.Cols × cols, row-major) through the modelled pipeline.
func (pl *Plan) RunSpMM(k formats.Kind, b []float64, cols int) (*SpMMResult, error) {
	if cols < 1 {
		return nil, fmt.Errorf("hlsim: RunSpMM with %d columns", cols)
	}
	if len(b) != pl.m.Cols*cols {
		return nil, fmt.Errorf("hlsim: operand is %d values, want %d×%d", len(b), pl.m.Cols, cols)
	}
	pf, err := pl.verify(k)
	if err != nil {
		return nil, err
	}
	r := &SpMMResult{
		Kind: k, P: pl.p, Columns: cols,
		Y:            make([]float64, pl.m.Rows*cols),
		NonZeroTiles: len(pl.pt.Tiles),
		cfg:          pl.cfg,
	}
	td := pl.cfg.DotLatency(pl.p)
	for _, tr := range pf.tiles {
		comp := tr.DecompCycles + tr.DotRows*cols*td
		r.MemCycles += uint64(tr.MemCycles)
		r.DecompCycles += uint64(tr.DecompCycles)
		r.ComputeCycles += uint64(comp)
		r.PipelinedCycles += uint64(max(tr.MemCycles, comp))
	}
	pl.ensureRows()
	for _, row := range pl.rows {
		for kk := row.start; kk < row.end; kk++ {
			v := pl.vals[kk]
			gj := int(pl.cols[kk])
			for c := 0; c < cols; c++ {
				r.Y[row.gi*cols+c] += v * b[gj*cols+c]
			}
		}
	}
	return r, nil
}

// Trace returns the per-partition streaming record in streaming order.
func (pl *Plan) Trace(k formats.Kind) ([]TileTrace, error) {
	pf, err := pl.format(k)
	if err != nil {
		return nil, err
	}
	out := make([]TileTrace, 0, len(pl.pt.Tiles))
	for i, tr := range pf.tiles {
		tile := pl.pt.Tiles[i]
		tt := TileTrace{
			Row: tile.Row, Col: tile.Col, NNZ: tile.NNZ(),
			MemCycles:     tr.MemCycles,
			DecompCycles:  tr.DecompCycles,
			ComputeCycles: tr.ComputeCycles,
			Pipelined:     max(tr.MemCycles, tr.ComputeCycles),
			MemoryBound:   tr.MemCycles > tr.ComputeCycles,
		}
		if tt.MemoryBound {
			tt.Bubble = tr.MemCycles - tr.ComputeCycles
		} else {
			tt.Bubble = tr.ComputeCycles - tr.MemCycles
		}
		out = append(out, tt)
	}
	return out, nil
}

// Schedule computes the event-level three-stage pipeline timeline from
// the cached per-tile costs.
func (pl *Plan) Schedule(k formats.Kind) (*Schedule, error) {
	pf, err := pl.format(k)
	if err != nil {
		return nil, err
	}
	s := &Schedule{Kind: k, P: pl.p, Tiles: make([]StageTimes, 0, len(pf.tiles)), cfg: pl.cfg}
	var memFree, compFree, writeFree uint64
	for _, tr := range pf.tiles {
		var st StageTimes
		st.MemStart = memFree
		st.MemEnd = st.MemStart + uint64(tr.MemCycles)
		memFree = st.MemEnd

		st.ComputeStart = max64(st.MemEnd, compFree)
		st.ComputeEnd = st.ComputeStart + uint64(tr.ComputeCycles)
		compFree = st.ComputeEnd

		st.WriteStart = max64(st.ComputeEnd, writeFree)
		st.WriteEnd = st.WriteStart + uint64(pl.cfg.writeCycles(pl.p))
		writeFree = st.WriteEnd

		s.Tiles = append(s.Tiles, st)
	}
	s.Makespan = writeFree
	return s, nil
}
