package hlsim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

// freshReference runs the same point on an untouched plan — the golden
// outcome a post-cancellation retry must reproduce exactly.
func freshReference(t *testing.T, seed uint64, k formats.Kind, x []float64) *Result {
	t.Helper()
	m := gen.Random(256, 0.05, seed)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(k, x)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPlanCancelMidWarmupLeavesSlotConsistent: canceling a sweep during
// a format's warmup must not leave the per-format slot half-encoded — a
// later characterization of the same format on the same cached plan must
// re-run the encode from scratch and return exactly the results an
// untouched plan produces. The encode hook is the rendezvous: it fires
// at the start of the warmup and cancels the context, so the abort lands
// mid-warmup (after the slot's leader was elected, before any chunk is
// aggregated).
func TestPlanCancelMidWarmupLeavesSlotConsistent(t *testing.T) {
	m := gen.Random(256, 0.05, 41)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := testVectorFor(m.Cols)

	ctx, cancel := context.WithCancel(context.Background())
	planEncodeHook = func(formats.Kind) { cancel() }
	if _, err := pl.RunContext(ctx, formats.CSR, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled warmup returned %v, want context.Canceled", err)
	}
	planEncodeHook = nil

	// The same plan, same format, fresh context: the slot must encode
	// cleanly, not serve a poisoned or partial state.
	got, err := pl.Run(formats.CSR, x)
	if err != nil {
		t.Fatalf("post-cancel run on the same plan: %v", err)
	}
	want := freshReference(t, 41, formats.CSR, x)
	if got.MemCycles != want.MemCycles || got.ComputeCycles != want.ComputeCycles ||
		got.DecompCycles != want.DecompCycles || got.Footprint != want.Footprint ||
		got.NNZ != want.NNZ || got.Sigma() != want.Sigma() {
		t.Fatal("post-cancel aggregates diverge from an untouched plan")
	}
	for i := range want.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("post-cancel Y[%d] = %v, want %v", i, got.Y[i], want.Y[i])
		}
	}
}

// TestPlanCancelLeaderPromotesWaiter: a waiter parked on a canceled
// encode leader must take over the slot under its own (live) context and
// produce correct results, while the canceled leader observes its own
// ctx.Err(). The hook choreographs the race: the leader parks in the
// hook until the waiter is verifiably waiting on the slot, then has its
// context canceled before encoding a single chunk.
func TestPlanCancelLeaderPromotesWaiter(t *testing.T) {
	m := gen.Random(256, 0.05, 43)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := testVectorFor(m.Cols)

	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	leaderParked := make(chan struct{})
	releaseLeader := make(chan struct{})
	planEncodeHook = func(formats.Kind) {
		if calls.Add(1) == 1 { // the doomed leader
			close(leaderParked)
			<-releaseLeader
		}
	}
	defer func() { planEncodeHook = nil }()

	leaderErr := make(chan error, 1)
	go func() {
		_, err := pl.RunContext(ctx, formats.COO, x)
		leaderErr <- err
	}()
	<-leaderParked

	waiterDone := make(chan *Result, 1)
	go func() {
		r, err := pl.Run(formats.COO, x) // background ctx: must survive
		if err != nil {
			t.Errorf("waiter: %v", err)
			waiterDone <- nil
			return
		}
		waiterDone <- r
	}()
	// Give the waiter time to park on the slot's wait channel, then doom
	// the leader. (If the waiter has not parked yet it simply finds the
	// slot idle after the leader aborts — both paths must work.)
	time.Sleep(10 * time.Millisecond)
	cancel()
	close(releaseLeader)

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	got := <-waiterDone
	if got == nil {
		t.Fatal("waiter failed")
	}
	want := freshReference(t, 43, formats.COO, x)
	for i := range want.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("waiter Y[%d] = %v, want %v", i, got.Y[i], want.Y[i])
		}
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("encode ran %d times; the waiter never re-ran the aborted encode", n)
	}
}

// TestPlanCancelMidVerifyRetries: cancellation between the encode and
// verify phases must leave the encodings unconsumed so a later caller
// can still run the decode cross-check and get verified results.
func TestPlanCancelMidVerifyRetries(t *testing.T) {
	m := gen.Random(256, 0.05, 47)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := testVectorFor(m.Cols)
	// Trace warms the encode phase only (no verify, like the cycle-model
	// consumers).
	if _, err := pl.Trace(formats.ELL); err != nil {
		t.Fatal(err)
	}
	// A pre-canceled context aborts in the verify phase (the encode is
	// already cached, so the first ctx check it hits is verify's).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var r Result
	if err := pl.RunIntoContext(ctx, formats.ELL, x, &r); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled verify returned %v, want context.Canceled", err)
	}
	// The retry must verify successfully — the canceled attempt must not
	// have consumed the encodings or marked the slot verified.
	got, err := pl.Run(formats.ELL, x)
	if err != nil {
		t.Fatalf("post-cancel verify: %v", err)
	}
	want := freshReference(t, 47, formats.ELL, x)
	for i := range want.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("post-cancel Y[%d] = %v, want %v", i, got.Y[i], want.Y[i])
		}
	}
}
