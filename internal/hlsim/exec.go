package hlsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
	"copernicus/internal/resilience"
)

// Tile-parallel executable SpMV: RunExecInto multiplies through the
// format's own encoded layout (formats.Encoded.SpMV) instead of the
// plan's CSR-native reference rows, partitioning tiles across a
// persistent worker pool.
//
// Parallel decomposition: the partitioning emits tiles block-row-major,
// so each grid block row is a contiguous tile range whose kernels write
// a private y range. Workers claim whole block rows from an atomic
// counter — exclusive output ownership, no atomics on y, and a result
// that is bit-for-bit independent of the thread count (each block row's
// tiles always run in ascending block-column order on one goroutine).
//
// Pool discipline mirrors EncodePool's token bucket: dispatch is a
// non-blocking send to parked workers, so a busy pool degrades the call
// toward serial execution instead of oversubscribing, and the caller
// always executes too. Cancellation is checked between block-row claims;
// a worker that observes it simply stops claiming, parks again, and the
// pool's capacity is fully restored — there is no token to leak.

// execSpan is one grid block row's ownership record: the half-open
// output range y[y0:y1) and the contiguous tile range Tiles[t0:t1) that
// writes it. Spans cover every block row — including all-zero ones with
// t0 == t1 — so clearing y span-by-span covers the whole output.
type execSpan struct {
	y0, y1 int
	t0, t1 int
}

// ensureSpans builds the block-row ownership table once per plan.
func (pl *Plan) ensureSpans() {
	pl.spansOnce.Do(func() {
		tiles := pl.pt.Tiles
		spans := make([]execSpan, 0, pl.pt.GridRows)
		ti := 0
		for br := 0; br < pl.pt.GridRows; br++ {
			row := br * pl.p
			t0 := ti
			for ti < len(tiles) && tiles[ti].Row == row {
				ti++
			}
			spans = append(spans, execSpan{
				y0: row,
				y1: min(row+pl.p, pl.m.Rows),
				t0: t0,
				t1: ti,
			})
		}
		pl.spans = spans
	})
}

// planExec is one format's executable state: a fresh re-encode of every
// non-zero tile, kept resident for kernel traversal (the warmup
// encodings are freed by the decode-verify pass, so the exec path owns
// its own copy, accounted in MemoryBytes).
type planExec struct {
	encs  []formats.Encoded
	bytes int64
}

// exec returns the cached executable state for format k, building it at
// most once per (plan, format) under the slot's exec leader guard — the
// same cancellation-safe discipline as format and verify: a canceled
// leader publishes nothing and the next caller rebuilds cleanly.
func (pl *Plan) exec(ctx context.Context, k formats.Kind) (*planExec, error) {
	slot := &pl.fmts[k]
	for {
		if ex := slot.ex.Load(); ex != nil {
			return ex, nil
		}
		slot.mu.Lock()
		if ex := slot.ex.Load(); ex != nil {
			slot.mu.Unlock()
			return ex, nil
		}
		if w := slot.exWait; w != nil {
			slot.mu.Unlock()
			select {
			case <-w:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		w := make(chan struct{})
		slot.exWait = w
		slot.mu.Unlock()

		ex, err := pl.buildExec(ctx, k)
		slot.mu.Lock()
		slot.exWait = nil
		if err == nil {
			slot.ex.Store(ex)
		}
		slot.mu.Unlock()
		close(w)
		if err != nil {
			return nil, err // canceled mid-build; slot stays idle
		}
		return ex, nil
	}
}

// buildExec re-encodes every non-zero tile in format k for resident
// kernel use, chunk-claimed across the caller plus any free encode-pool
// helpers (fanOut), with cancellation checked between chunks. Worker
// panics and injected faults abort the build unpublished, exactly like a
// cancellation (see encodeFormat).
func (pl *Plan) buildExec(ctx context.Context, k formats.Kind) (*planExec, error) {
	tiles := pl.pt.Tiles
	n := len(tiles)
	ex := &planExec{encs: make([]formats.Encoded, n)}
	var next atomic.Int64
	var fail atomic.Pointer[error]
	work := func() {
		defer func() {
			if pe := resilience.Recovered(ptExecBuild.Name(), recover()); pe != nil {
				storeFirst(&fail, pe)
			}
		}()
		for ctx.Err() == nil && fail.Load() == nil {
			lo := int(next.Add(encodeChunk)) - encodeChunk
			if lo >= n {
				return
			}
			for i := lo; i < min(lo+encodeChunk, n); i++ {
				if err := ptExecBuild.Hit(); err != nil {
					storeFirst(&fail, err)
					return
				}
				ex.encs[i] = formats.Encode(k, tiles[i])
			}
		}
	}
	pl.fanOut(work, n)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := loadErr(&fail); err != nil {
		return nil, err
	}
	for _, enc := range ex.encs {
		ex.bytes += int64(enc.Footprint().TotalBytes())
	}
	return ex, nil
}

// ExecPool is a set of persistently parked worker goroutines shared by
// the RunExecInto paths of every plan that uses it. Dispatch is a
// non-blocking handoff: a job reaches exactly as many workers as are
// parked at that instant, and a fully busy pool leaves the caller
// executing alone — concurrent measurements degrade gracefully instead
// of oversubscribing the host (the EncodePool token-bucket discipline,
// with the tokens embodied as parked workers).
type ExecPool struct {
	queue chan *execJob
	quit  chan struct{}
	idle  atomic.Int32
	size  int
}

// NewExecPool starts a pool of `workers` parked helper goroutines
// (0 means every caller executes alone).
func NewExecPool(workers int) *ExecPool {
	if workers < 0 {
		workers = 0
	}
	p := &ExecPool{
		queue: make(chan *execJob),
		quit:  make(chan struct{}),
		size:  workers,
	}
	p.idle.Store(int32(workers))
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *ExecPool) work() {
	for {
		select {
		case j := <-p.queue:
			p.runJob(j)
		case <-p.quit:
			return
		}
	}
}

// runJob executes one dispatched job on a pool worker with panic
// containment: a panic inside a format kernel (or an injected chaos
// fault) is recovered into a *resilience.PanicError stored on the job —
// the dispatcher returns it as the call's error — and the worker parks
// again with its accounting intact. The defers run recover first, then
// the idle increment, then Done, so park accounting still precedes Done:
// once the dispatcher's Wait returns, every helper it reached is already
// counted idle again — the invariant the leak test asserts.
func (p *ExecPool) runJob(j *execJob) {
	p.idle.Add(-1)
	defer j.wg.Done()
	defer p.idle.Add(1)
	defer func() {
		if pe := resilience.Recovered(ptExecSpan.Name(), recover()); pe != nil {
			j.fail(pe)
		}
	}()
	j.run()
}

// Size returns the pool's worker count.
func (p *ExecPool) Size() int { return p.size }

// Idle returns how many workers are parked right now. After every
// dispatched job has completed (or been canceled), Idle equals Size —
// cancellation restores full capacity; there is no token to leak.
func (p *ExecPool) Idle() int { return int(p.idle.Load()) }

// Close stops the parked workers. Jobs already dispatched run to
// completion; Close never strands a caller's WaitGroup.
func (p *ExecPool) Close() { close(p.quit) }

// sharedExec is the process-wide default pool, started on first use with
// GOMAXPROCS-1 workers so a full-width RunExecInto (caller included)
// matches the host's parallelism.
var (
	sharedExecOnce sync.Once
	sharedExec     *ExecPool
)

func sharedExecPool() *ExecPool {
	sharedExecOnce.Do(func() {
		sharedExec = NewExecPool(runtime.GOMAXPROCS(0) - 1)
	})
	return sharedExec
}

// SetExecPool installs a (possibly shared) worker pool for this plan's
// RunExecInto calls; nil restores the process-shared default.
func (pl *Plan) SetExecPool(p *ExecPool) { pl.xpool.Store(p) }

// execJob is one RunExecInto dispatch, pooled so the warm path performs
// zero allocations. Workers and the caller claim block-row spans from
// next; done (nil for uncancellable contexts) and failed are polled
// between claims, so a cancellation or a contained fault stops every
// participant at the next span boundary.
type execJob struct {
	encs   []formats.Encoded
	tiles  []*matrix.Tile
	spans  []execSpan
	x, y   []float64
	done   <-chan struct{}
	next   atomic.Int64
	wg     sync.WaitGroup
	failed atomic.Bool
	errp   atomic.Pointer[error]
}

var execJobPool = sync.Pool{New: func() any { return new(execJob) }}

// fail records the job's first failure (a recovered panic or an injected
// fault) and stops further span claims. Later failures are discarded.
func (j *execJob) fail(err error) {
	storeFirst(&j.errp, err)
	j.failed.Store(true)
}

// err returns the job's recorded failure, if any.
func (j *execJob) err() error { return loadErr(&j.errp) }

// run claims block rows until none remain, the job is canceled, or a
// participant failed. Each claimed span clears its own y range and
// accumulates its tiles in ascending block-column order through the
// format kernels.
func (j *execJob) run() {
	nspans := int64(len(j.spans))
	for {
		if j.failed.Load() {
			return
		}
		if j.done != nil {
			select {
			case <-j.done:
				return
			default:
			}
		}
		s := j.next.Add(1) - 1
		if s >= nspans {
			return
		}
		if err := ptExecSpan.Hit(); err != nil {
			j.fail(err)
			return
		}
		sp := j.spans[s]
		y := j.y[sp.y0:sp.y1]
		clear(y)
		for ti := sp.t0; ti < sp.t1; ti++ {
			j.encs[ti].SpMV(j.x[j.tiles[ti].Col:], y)
		}
	}
}

// RunExecInto is RunInto through the executable format kernels: y = A·x
// computed by walking format k's own encoded layout tile by tile, with
// block rows fanned out across up to `threads` goroutines (the caller
// plus parked pool workers). The result is bit-for-bit independent of
// the thread count, and — for the row-ordered kernels (see
// formats/spmv.go) — bit-identical to RunInto when every block row spans
// a single tile column; multi-tile rows and the column-ordered kernels
// agree within FP-reassociation tolerance. Cycle totals and footprints
// in r come from the same cached per-format aggregates as RunInto. The
// warm path performs zero allocations.
func (pl *Plan) RunExecInto(k formats.Kind, x []float64, r *Result, threads int) error {
	return pl.RunExecIntoContext(context.Background(), k, x, r, threads)
}

// RunExecIntoContext is RunExecInto under a context. Cancellation aborts
// the one-time warmup (encode, decode-verify, exec build) between tile
// chunks and the multiplication itself between block-row claims,
// returning ctx.Err(); r's contents are then unspecified. A warm
// uncancellable call (context.Background) polls nothing.
func (pl *Plan) RunExecIntoContext(ctx context.Context, k formats.Kind, x []float64, r *Result, threads int) error {
	if threads < 1 {
		return fmt.Errorf("hlsim: RunExecInto with %d threads", threads)
	}
	if len(x) != pl.m.Cols {
		return fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), pl.m.Cols)
	}
	pf, err := pl.verify(ctx, k)
	if err != nil {
		return err
	}
	ex, err := pl.exec(ctx, k)
	if err != nil {
		return err
	}
	pl.ensureSpans()
	y := r.Y
	if cap(y) < pl.m.Rows {
		y = make([]float64, pl.m.Rows)
	} else {
		if slicesOverlap(x, y[:cap(y)]) {
			return fmt.Errorf("hlsim: RunExecInto input x overlaps the reused r.Y buffer; use a second Result to feed an output back in")
		}
		y = y[:pl.m.Rows]
		// No global clear: every span clears its own y range, and the
		// spans cover [0, rows) including all-zero block rows.
	}
	*r = Result{
		Kind:              k,
		P:                 pl.p,
		Y:                 y,
		NonZeroTiles:      len(pl.pt.Tiles),
		TotalTiles:        pl.pt.TotalTiles,
		MemCycles:         pf.agg.MemCycles,
		ComputeCycles:     pf.agg.ComputeCycles,
		DecompCycles:      pf.agg.DecompCycles,
		PipelinedCycles:   pf.agg.PipelinedCycles,
		IdleComputeCycles: pf.agg.IdleComputeCycles,
		StallMemCycles:    pf.agg.StallMemCycles,
		DotRows:           pf.agg.DotRows,
		NNZ:               pf.agg.NNZ,
		Footprint:         pf.agg.Footprint,
		sumBalance:        pf.agg.sumBalance,
		cfg:               pl.cfg,
	}

	job := execJobPool.Get().(*execJob)
	job.encs, job.tiles, job.spans = ex.encs, pl.pt.Tiles, pl.spans
	job.x, job.y = x, y
	job.done = ctx.Done()
	job.next.Store(0)
	job.failed.Store(false)
	job.errp.Store(nil)

	pool := pl.xpool.Load()
	if pool == nil {
		pool = sharedExecPool()
	}
dispatch:
	for h := 0; h < min(threads-1, len(pl.spans)-1); h++ {
		job.wg.Add(1)
		select {
		case pool.queue <- job: // a parked worker takes the job
		default:
			job.wg.Done()
			break dispatch // pool busy: degrade toward serial
		}
	}
	// The caller executes under the same containment as pool workers: a
	// kernel panic on this goroutine becomes the job's recorded failure
	// instead of unwinding past the dispatch (which would strand the
	// pooled job and skip the Wait).
	func() {
		defer func() {
			if pe := resilience.Recovered(ptExecSpan.Name(), recover()); pe != nil {
				job.fail(pe)
			}
		}()
		job.run()
	}()
	job.wg.Wait()
	ferr := job.err()

	job.encs, job.tiles, job.spans = nil, nil, nil
	job.x, job.y, job.done = nil, nil, nil
	job.errp.Store(nil)
	execJobPool.Put(job)
	if ferr != nil {
		return ferr
	}
	return ctx.Err()
}
