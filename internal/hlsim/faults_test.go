package hlsim

import (
	"context"
	"errors"
	"testing"

	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/matrix"
	"copernicus/internal/resilience"
)

// The tests below drive the plan's containment points (faultpoints.go):
// a panic or injected error in any warmup worker or exec span must
// surface as a structured error, leave the slot idle (never poisoned),
// keep both pools at full capacity, and — after the fault clears — let a
// retry produce output bit-identical to a fault-free run.

func TestEncodePanicContained(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(192, 0.05, 311)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(Default(), m, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults.Point("hlsim.encode.tile").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})
	_, err = pl.RunContext(context.Background(), formats.CSR, x)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *resilience.PanicError", err)
	}
	if pe.Point != "hlsim.encode.tile" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want point hlsim.encode.tile with stack", pe)
	}
	// The slot was abandoned unpublished: the retry (fault exhausted)
	// re-encodes cleanly and matches a never-faulted plan bit for bit.
	faults.DisarmAll()
	r, err := pl.RunContext(context.Background(), formats.CSR, x)
	if err != nil {
		t.Fatalf("retry after contained panic: %v", err)
	}
	ref, err := mustPlan(t, m, 16).RunContext(context.Background(), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Y {
		if r.Y[i] != ref.Y[i] {
			t.Fatalf("y[%d] = %g after retry, want %g (bit-identical)", i, r.Y[i], ref.Y[i])
		}
	}
}

func mustPlan(t *testing.T, m *matrix.CSR, p int) *Plan {
	t.Helper()
	pl, err := NewPlan(Default(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestEncodeInjectedErrorNotSticky(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(128, 0.06, 313)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(Default(), m, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults.Point("hlsim.encode.tile").Arm(faults.Injection{Kind: faults.KindError, Times: 1})
	if _, err := pl.RunContext(context.Background(), formats.ELL, x); !errors.Is(err, faults.Injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// Unlike a model error, an injected fault is not sticky: the very
	// next call (injection exhausted) succeeds on the same plan.
	if _, err := pl.RunContext(context.Background(), formats.ELL, x); err != nil {
		t.Fatalf("slot poisoned by injected encode fault: %v", err)
	}
}

func TestVerifyFaultRetriesInFull(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(128, 0.06, 317)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(Default(), m, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults.Point("hlsim.verify.tile").Arm(faults.Injection{Kind: faults.KindError, Times: 1})
	if _, err := pl.RunContext(context.Background(), formats.COO, x); !errors.Is(err, faults.Injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if _, err := pl.RunContext(context.Background(), formats.COO, x); err != nil {
		t.Fatalf("verify not retried after injected fault: %v", err)
	}

	faults.Point("hlsim.verify.tile").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})
	pl2 := mustPlan(t, m, 16)
	_, err = pl2.RunContext(context.Background(), formats.COO, x)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) || pe.Point != "hlsim.verify.tile" {
		t.Fatalf("err = %v, want PanicError at hlsim.verify.tile", err)
	}
	faults.DisarmAll()
	if _, err := pl2.RunContext(context.Background(), formats.COO, x); err != nil {
		t.Fatalf("verify slot poisoned by contained panic: %v", err)
	}
}

func TestExecBuildFaultContained(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(128, 0.06, 331)
	x := testVectorFor(m.Cols)
	pl := mustPlan(t, m, 16)
	var r Result
	faults.Point("hlsim.exec.build").Arm(faults.Injection{Kind: faults.KindError, Times: 1})
	if err := pl.RunExecInto(formats.CSC, x, &r, 2); !errors.Is(err, faults.Injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if err := pl.RunExecInto(formats.CSC, x, &r, 2); err != nil {
		t.Fatalf("exec slot poisoned by injected build fault: %v", err)
	}
}

// TestExecSpanPanicContained: a panic inside the warm exec hot loop —
// on pool workers and the caller alike — becomes a *resilience.PanicError,
// the pool parks back to full capacity, and the same plan retries to a
// bit-identical result.
func TestExecSpanPanicContained(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(192, 0.05, 337)
	x := testVectorFor(m.Cols)
	pl := mustPlan(t, m, 16)
	pool := NewExecPool(3)
	defer pool.Close()
	pl.SetExecPool(pool)

	// Warm first so the fault lands in the multiplication, not the warmup.
	var ref Result
	if err := pl.RunExecInto(formats.CSR, x, &ref, 4); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), ref.Y...)

	for i := 0; i < 10; i++ {
		faults.Point("hlsim.exec.span").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})
		var r Result
		err := pl.RunExecInto(formats.CSR, x, &r, 4)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("run %d: err = %v, want *resilience.PanicError", i, err)
		}
		if pe.Point != "hlsim.exec.span" {
			t.Fatalf("run %d: panic point %q", i, pe.Point)
		}
		if pool.Idle() != pool.Size() {
			t.Fatalf("run %d: %d idle workers after contained panic, want %d (token leak)",
				i, pool.Idle(), pool.Size())
		}
	}
	faults.DisarmAll()
	var r Result
	if err := pl.RunExecInto(formats.CSR, x, &r, 4); err != nil {
		t.Fatalf("retry after contained exec panics: %v", err)
	}
	for i := range want {
		if r.Y[i] != want[i] {
			t.Fatalf("y[%d] = %g after contained panics, want %g (bit-identical)", i, r.Y[i], want[i])
		}
	}
}

// TestExecSpanInjectedError: the error-kind injection takes the
// non-panic path through execJob.fail and still stops every participant.
func TestExecSpanInjectedError(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(128, 0.06, 347)
	x := testVectorFor(m.Cols)
	pl := mustPlan(t, m, 16)
	var r Result
	if err := pl.RunExecInto(formats.CSR, x, &r, 2); err != nil {
		t.Fatal(err)
	}
	faults.Point("hlsim.exec.span").Arm(faults.Injection{Kind: faults.KindError, Times: 1})
	if err := pl.RunExecInto(formats.CSR, x, &r, 2); !errors.Is(err, faults.Injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if err := pl.RunExecInto(formats.CSR, x, &r, 2); err != nil {
		t.Fatalf("warm path broken by injected span error: %v", err)
	}
}

// TestEncodePoolNoLeakOnPanic: encode-fanout helpers release their pool
// tokens even when the work function panics, so repeated contained
// faults never drain the shared encode pool.
func TestEncodePoolNoLeakOnPanic(t *testing.T) {
	t.Cleanup(faults.DisarmAll)
	m := gen.Random(256, 0.05, 353)
	x := testVectorFor(m.Cols)
	pool := NewEncodePool(3)
	for i := 0; i < 10; i++ {
		pl := mustPlan(t, m, 16)
		pl.SetEncodePool(pool)
		faults.Point("hlsim.encode.tile").Arm(faults.Injection{Kind: faults.KindPanic, Times: 1})
		_, err := pl.RunContext(context.Background(), formats.CSR, x)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("run %d: err = %v, want *resilience.PanicError", i, err)
		}
		if n := len(pool.tokens); n != 0 {
			t.Fatalf("run %d: %d encode tokens still borrowed after contained panic", i, n)
		}
	}
}
