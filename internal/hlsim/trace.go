package hlsim

import (
	"fmt"
	"io"
	"strings"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// TileTrace is the per-partition event record of one streaming run: what
// the tile contained, what each pipeline stage cost, and which stage
// bounded it. Traces make the §4.2 "bubbles" visible tile by tile
// instead of only in aggregate.
type TileTrace struct {
	Row, Col int // tile origin in the matrix
	NNZ      int

	MemCycles     int
	DecompCycles  int
	ComputeCycles int
	Pipelined     int // max(mem, compute)
	Bubble        int // |mem - compute|: the faster stage's wait
	MemoryBound   bool
}

// Trace streams every non-zero partition and records a TileTrace per
// tile, in streaming order. It builds a transient Plan; hold a NewPlan
// to trace several formats of one matrix.
func Trace(cfg Config, m *matrix.CSR, k formats.Kind, p int) ([]TileTrace, error) {
	pl, err := NewPlan(cfg, m, p)
	if err != nil {
		return nil, err
	}
	return pl.Trace(k)
}

// TraceSummary aggregates a trace.
type TraceSummary struct {
	Tiles            int
	TotalCycles      uint64
	BubbleCycles     uint64
	MemoryBoundTiles int
}

// Summarize folds a trace into totals.
func Summarize(traces []TileTrace) TraceSummary {
	var s TraceSummary
	s.Tiles = len(traces)
	for _, t := range traces {
		s.TotalCycles += uint64(t.Pipelined)
		s.BubbleCycles += uint64(t.Bubble)
		if t.MemoryBound {
			s.MemoryBoundTiles++
		}
	}
	return s
}

// RenderTimeline writes an ASCII per-tile timeline: one line per tile
// with proportional memory (=) and compute (#) bars, capped at maxTiles
// lines. It is a debugging view, not a paper artifact.
func RenderTimeline(w io.Writer, traces []TileTrace, maxTiles int) error {
	if maxTiles <= 0 || maxTiles > len(traces) {
		maxTiles = len(traces)
	}
	// Scale bars to the largest stage cost in view.
	const barWidth = 40
	peak := 1
	for _, t := range traces[:maxTiles] {
		if t.Pipelined > peak {
			peak = t.Pipelined
		}
	}
	if _, err := fmt.Fprintf(w, "tile(origin)      mem≡  compute#  (bar = %d cycles)\n", peak); err != nil {
		return err
	}
	for _, t := range traces[:maxTiles] {
		mem := t.MemCycles * barWidth / peak
		comp := t.ComputeCycles * barWidth / peak
		bound := "C"
		if t.MemoryBound {
			bound = "M"
		}
		if _, err := fmt.Fprintf(w, "(%5d,%5d) %s |%-*s|\n              %s |%-*s| nnz=%d mem=%d comp=%d %s-bound\n",
			t.Row, t.Col, "mem ", barWidth, strings.Repeat("=", mem),
			"comp", barWidth, strings.Repeat("#", comp),
			t.NNZ, t.MemCycles, t.ComputeCycles, bound); err != nil {
			return err
		}
	}
	s := Summarize(traces)
	_, err := fmt.Fprintf(w, "%d tiles, %d cycles pipelined, %d bubble cycles (%.1f%%), %d/%d memory-bound\n",
		s.Tiles, s.TotalCycles, s.BubbleCycles,
		100*float64(s.BubbleCycles)/float64(max64(s.TotalCycles, 1)),
		s.MemoryBoundTiles, s.Tiles)
	return err
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
