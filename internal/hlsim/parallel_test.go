package hlsim

import (
	"math"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/xrand"
)

func testVectorFor(n int) []float64 {
	r := xrand.New(77)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.ValueIn(-1, 1)
	}
	return x
}

func TestRunParallelFunctional(t *testing.T) {
	m := gen.Random(200, 0.05, 3)
	x := testVectorFor(m.Cols)
	want := m.MulVec(x)
	for _, lanes := range []int{1, 2, 4, 7} {
		res, err := RunParallel(Default(), m, formats.COO, 16, x, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.Y[i]-want[i]) > 1e-9 {
				t.Fatalf("lanes=%d: y[%d] = %v, want %v", lanes, i, res.Y[i], want[i])
			}
		}
	}
}

func TestRunParallelOneLaneMatchesRun(t *testing.T) {
	m := gen.Random(128, 0.04, 5)
	x := testVectorFor(m.Cols)
	seq, err := Run(Default(), m, formats.CSR, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(Default(), m, formats.CSR, 16, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCycles != seq.PipelinedCycles {
		t.Fatalf("1-lane parallel %d cycles vs sequential %d", par.TotalCycles, seq.PipelinedCycles)
	}
}

func TestRunParallelSpeedup(t *testing.T) {
	m := gen.Random(256, 0.05, 7)
	x := testVectorFor(m.Cols)
	prev := uint64(math.MaxUint64)
	for _, lanes := range []int{1, 2, 4, 8} {
		res, err := RunParallel(Default(), m, formats.CSR, 16, x, lanes)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles > prev {
			t.Fatalf("lanes=%d slower than fewer lanes: %d > %d", lanes, res.TotalCycles, prev)
		}
		prev = res.TotalCycles
	}
	// 8 lanes over hundreds of tiles should give near-linear speedup.
	one, _ := RunParallel(Default(), m, formats.CSR, 16, x, 1)
	eight, _ := RunParallel(Default(), m, formats.CSR, 16, x, 8)
	speedup := float64(one.TotalCycles) / float64(eight.TotalCycles)
	if speedup < 6 {
		t.Fatalf("8-lane speedup %.2f, want ≥6 on a well-populated matrix", speedup)
	}
}

func TestRunParallelEfficiencyBounds(t *testing.T) {
	m := gen.Band(128, 8, 9)
	x := testVectorFor(m.Cols)
	for _, lanes := range []int{1, 3, 5} {
		res, err := RunParallel(Default(), m, formats.DIA, 16, x, lanes)
		if err != nil {
			t.Fatal(err)
		}
		e := res.Efficiency()
		if e <= 0 || e > 1+1e-12 {
			t.Fatalf("lanes=%d: efficiency %v out of (0,1]", lanes, e)
		}
	}
}

func TestRunParallelRejectsBadInput(t *testing.T) {
	m := gen.Random(32, 0.1, 1)
	x := testVectorFor(m.Cols)
	if _, err := RunParallel(Default(), m, formats.CSR, 8, x, 0); err == nil {
		t.Fatal("0 lanes accepted")
	}
	if _, err := RunParallel(Default(), m, formats.CSR, 8, x[:10], 2); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	m := gen.Random(128, 0.05, 19)
	x := testVectorFor(m.Cols)
	a, err := RunParallel(Default(), m, formats.LIL, 16, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(Default(), m, formats.LIL, 16, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatal("parallel run not deterministic")
	}
	for i := range a.LaneCycles {
		if a.LaneCycles[i] != b.LaneCycles[i] {
			t.Fatal("lane assignment not deterministic")
		}
	}
}

func TestBubbleAccounting(t *testing.T) {
	m := gen.Random(128, 0.05, 11)
	x := testVectorFor(m.Cols)
	res, err := Run(Default(), m, formats.CSC, 16, x)
	if err != nil {
		t.Fatal(err)
	}
	// CSC is severely compute-bound: the stream must stall, compute
	// almost never idles.
	if res.StallMemCycles == 0 {
		t.Fatal("CSC run reports no memory stalls")
	}
	if res.MemStallFraction() <= res.ComputeIdleFraction() {
		t.Fatalf("CSC stall fraction %.3f not above idle fraction %.3f",
			res.MemStallFraction(), res.ComputeIdleFraction())
	}
	// Dense at p=32 is memory-bound: compute idles.
	dense, err := Run(Default(), m, formats.Dense, 32, x)
	if err != nil {
		t.Fatal(err)
	}
	if dense.IdleComputeCycles == 0 {
		t.Fatal("dense p=32 run reports no compute idle")
	}
	// Identity: idle + stall ≤ pipelined (each tile contributes one side).
	if res.IdleComputeCycles+res.StallMemCycles > res.PipelinedCycles {
		t.Fatal("bubble cycles exceed pipelined total")
	}
}
