package hlsim

import (
	"math"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/matrix"
)

// TestPlanRunMatchesFreshRun: a reused plan must reproduce the one-shot
// Run bit for bit — aggregates and functional output alike — for every
// format.
func TestPlanRunMatchesFreshRun(t *testing.T) {
	cfg := Default()
	m := gen.Random(100, 0.06, 21)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range formats.All() {
		fresh, err := Run(cfg, m, k, 16, x)
		if err != nil {
			t.Fatal(err)
		}
		// Run twice on the shared plan; the second call exercises the
		// fully cached path.
		for call := 0; call < 2; call++ {
			got, err := pl.Run(k, x)
			if err != nil {
				t.Fatal(err)
			}
			if got.MemCycles != fresh.MemCycles || got.ComputeCycles != fresh.ComputeCycles ||
				got.DecompCycles != fresh.DecompCycles || got.PipelinedCycles != fresh.PipelinedCycles ||
				got.IdleComputeCycles != fresh.IdleComputeCycles || got.StallMemCycles != fresh.StallMemCycles ||
				got.DotRows != fresh.DotRows || got.NNZ != fresh.NNZ || got.Footprint != fresh.Footprint ||
				got.NonZeroTiles != fresh.NonZeroTiles || got.TotalTiles != fresh.TotalTiles {
				t.Fatalf("%v call %d: aggregates diverge from one-shot Run", k, call)
			}
			if got.Sigma() != fresh.Sigma() || got.BalanceRatio() != fresh.BalanceRatio() {
				t.Fatalf("%v call %d: derived metrics diverge", k, call)
			}
			for i := range fresh.Y {
				if got.Y[i] != fresh.Y[i] {
					t.Fatalf("%v call %d: Y[%d] = %v, want %v", k, call, i, got.Y[i], fresh.Y[i])
				}
			}
		}
	}
}

// TestPlanSharedAcrossEntryPoints: one plan serves Run, RunParallel,
// RunSpMM, Trace, and Schedule, matching the one-shot helpers.
func TestPlanSharedAcrossEntryPoints(t *testing.T) {
	cfg := Default()
	m := gen.Random(96, 0.08, 23)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := formats.CSR

	par, err := pl.RunParallel(k, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	freshPar, err := RunParallel(cfg, m, k, 8, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCycles != freshPar.TotalCycles || par.Efficiency() != freshPar.Efficiency() {
		t.Fatalf("parallel run diverges: %d vs %d cycles", par.TotalCycles, freshPar.TotalCycles)
	}

	const cols = 3
	b := make([]float64, m.Cols*cols)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	mm, err := pl.RunSpMM(k, b, cols)
	if err != nil {
		t.Fatal(err)
	}
	freshMM, err := RunSpMM(cfg, m, k, 8, b, cols)
	if err != nil {
		t.Fatal(err)
	}
	if mm.PipelinedCycles != freshMM.PipelinedCycles {
		t.Fatalf("SpMM cycles diverge: %d vs %d", mm.PipelinedCycles, freshMM.PipelinedCycles)
	}
	for i := range freshMM.Y {
		if mm.Y[i] != freshMM.Y[i] {
			t.Fatalf("SpMM Y[%d] = %v, want %v", i, mm.Y[i], freshMM.Y[i])
		}
	}

	tr, err := pl.Trace(k)
	if err != nil {
		t.Fatal(err)
	}
	freshTr, err := Trace(cfg, m, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != len(freshTr) {
		t.Fatalf("trace lengths %d vs %d", len(tr), len(freshTr))
	}
	for i := range tr {
		if tr[i] != freshTr[i] {
			t.Fatalf("trace[%d] = %+v, want %+v", i, tr[i], freshTr[i])
		}
	}

	sc, err := pl.Schedule(k)
	if err != nil {
		t.Fatal(err)
	}
	freshSc, err := BuildSchedule(cfg, m, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != freshSc.Makespan {
		t.Fatalf("makespan %d vs %d", sc.Makespan, freshSc.Makespan)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanRunDoesNotReencode: once a format is cached, repeated SpMV
// calls on a shared plan allocate only the Result and its output vector
// — no tiles, no encodings, no decode buffers. The allocation count must
// be a small constant independent of matrix size.
func TestPlanRunDoesNotReencode(t *testing.T) {
	cfg := Default()
	for _, n := range []int{64, 256} {
		m := gen.Random(n, 0.05, 29)
		x := testVectorFor(m.Cols)
		pl, err := NewPlan(cfg, m, 16)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.Run(formats.COO, x); err != nil {
			t.Fatal(err) // warm the format cache
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := pl.Run(formats.COO, x); err != nil {
				t.Fatal(err)
			}
		})
		// Result struct + Y vector (+ small constant slack); re-encoding
		// or re-partitioning would show up as hundreds of allocations.
		if allocs > 4 {
			t.Fatalf("n=%d: %v allocs per cached Run, want <= 4", n, allocs)
		}
	}
}

// TestPlanVerifiesFunctionalOutput: the plan's sparse-aware functional
// path must still match the software reference.
func TestPlanFunctionalCorrectness(t *testing.T) {
	cfg := Default()
	m := gen.Circuit(150, 31)
	x := testVectorFor(m.Cols)
	want := m.MulVec(x)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range formats.Core() {
		res, err := pl.Run(k, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.Y[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: y[%d] = %v, want %v", k, i, res.Y[i], want[i])
			}
		}
	}
}

// TestPlanNaNEntries: the decode cross-check must tolerate NaN matrix
// entries (the Matrix Market loader admits them) — NaN round-trips
// through every encoder and must not read as stream corruption.
func TestPlanNaNEntries(t *testing.T) {
	b := matrix.NewBuilder(16, 16)
	b.Add(2, 3, math.NaN())
	b.Add(5, 5, 1.5)
	m := b.Build()
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	for _, k := range formats.Core() {
		res, err := pl.Run(k, x)
		if err != nil {
			t.Fatalf("%v: NaN entry rejected: %v", k, err)
		}
		if !math.IsNaN(res.Y[2]) || res.Y[5] != 1.5 {
			t.Fatalf("%v: Y = %v, want NaN at 2 and 1.5 at 5", k, res.Y)
		}
	}
}

// TestPlanArgumentErrors: the plan rejects bad vectors, lane counts, and
// operand shapes exactly like the one-shot helpers.
func TestPlanArgumentErrors(t *testing.T) {
	m := gen.Random(32, 0.1, 37)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(formats.CSR, make([]float64, 31)); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := pl.RunParallel(formats.CSR, make([]float64, 32), 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
	if _, err := pl.RunSpMM(formats.CSR, make([]float64, 5), 2); err == nil {
		t.Fatal("misshapen operand accepted")
	}
	if _, err := NewPlan(Config{}, m, 8); err == nil {
		t.Fatal("invalid config accepted")
	}
}
