package hlsim

import (
	"testing"
	"testing/quick"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

func TestScheduleInvariants(t *testing.T) {
	cfg := Default()
	for _, k := range formats.Core() {
		m := gen.Random(128, 0.05, 3)
		s, err := BuildSchedule(cfg, m, k, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

// TestScheduleBoundsVsApproximation: the exact makespan must be at
// least the bottleneck stage's total work and at most the serialized
// sum of all stages.
func TestScheduleBoundsVsApproximation(t *testing.T) {
	cfg := Default()
	check := func(seed uint64) bool {
		m := gen.Random(96, 0.08, seed)
		x := make([]float64, m.Cols)
		for _, k := range []formats.Kind{formats.CSR, formats.Dense, formats.CSC} {
			s, err := BuildSchedule(cfg, m, k, 16)
			if err != nil {
				return false
			}
			run, err := Run(cfg, m, k, 16, x)
			if err != nil {
				return false
			}
			wb := uint64(run.NonZeroTiles * cfg.writeCycles(16))
			lower := max64(run.MemCycles, run.ComputeCycles)
			if wb > lower {
				lower = wb
			}
			upper := run.MemCycles + run.ComputeCycles + wb
			if s.Makespan < lower || s.Makespan > upper {
				t.Logf("%v: makespan %d outside [%d, %d]", k, s.Makespan, lower, upper)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulePipeliningHelps: the pipelined makespan beats fully
// serialized execution on any multi-tile run.
func TestSchedulePipeliningHelps(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.05, 7)
	s, err := BuildSchedule(cfg, m, formats.CSR, 16)
	if err != nil {
		t.Fatal(err)
	}
	var serial uint64
	for _, tile := range s.Tiles {
		serial += (tile.MemEnd - tile.MemStart) +
			(tile.ComputeEnd - tile.ComputeStart) +
			(tile.WriteEnd - tile.WriteStart)
	}
	if s.Makespan >= serial {
		t.Fatalf("pipelining gained nothing: makespan %d vs serial %d", s.Makespan, serial)
	}
}

// TestScheduleBottleneckStageSaturated: for a strongly compute-bound
// format the compute stage utilization approaches 1.
func TestScheduleBottleneckStageSaturated(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.1, 9)
	s, err := BuildSchedule(cfg, m, formats.CSC, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, compute, _ := s.StageUtilization()
	if compute < 0.95 {
		t.Fatalf("CSC compute utilization %.3f, want ≈1 (bottleneck stage)", compute)
	}
	// Dense at p=32 is memory-bound: the memory stage saturates instead.
	s, err = BuildSchedule(cfg, m, formats.Dense, 32)
	if err != nil {
		t.Fatal(err)
	}
	mem, _, _ := s.StageUtilization()
	if mem < 0.9 {
		t.Fatalf("dense p=32 memory utilization %.3f, want ≈1", mem)
	}
}

func TestScheduleEmptyMatrix(t *testing.T) {
	s, err := BuildSchedule(Default(), gen.Random(64, 0, 1), formats.COO, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 || len(s.Tiles) != 0 {
		t.Fatalf("empty matrix schedule %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRejectsInvalidConfig(t *testing.T) {
	bad := Default()
	bad.AXIBytesPerCycle = 0
	if _, err := BuildSchedule(bad, gen.Random(16, 0.2, 1), formats.CSR, 8); err == nil {
		t.Fatal("invalid config accepted")
	}
}
