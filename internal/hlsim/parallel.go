package hlsim

import (
	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// ParallelResult models the coarse-grained parallelism of §5.1:
// independent instances of the Fig. 2 pipeline process disjoint subsets
// of the non-zero partitions, and the matrix finishes when the last lane
// drains.
type ParallelResult struct {
	Kind  formats.Kind
	P     int
	Lanes int

	// Y is the functional SpMV output (lane-order independent: partial
	// outputs accumulate per row).
	Y []float64

	// LaneCycles is each instance's pipelined cycle total; TotalCycles
	// is the slowest lane.
	LaneCycles  []uint64
	TotalCycles uint64

	NonZeroTiles int
	cfg          Config
}

// Seconds returns the modelled wall time of the parallel run.
func (r *ParallelResult) Seconds() float64 { return r.cfg.CycleSeconds(r.TotalCycles) }

// Efficiency returns the parallel efficiency: ideal lane time over the
// slowest lane (1 = perfect load balance).
func (r *ParallelResult) Efficiency() float64 {
	if r.TotalCycles == 0 {
		return 1
	}
	var sum uint64
	for _, c := range r.LaneCycles {
		sum += c
	}
	ideal := float64(sum) / float64(r.Lanes)
	return ideal / float64(r.TotalCycles)
}

// RunParallel streams the non-zero partitions of m across `lanes`
// independent pipeline instances (round-robin distribution, the static
// schedule a streaming DMA would use) in format k at partition size p.
// With lanes=1 it degenerates to Run's pipelined total. It builds a
// transient Plan; hold a NewPlan for repeated multiplications.
func RunParallel(cfg Config, m *matrix.CSR, k formats.Kind, p int, x []float64, lanes int) (*ParallelResult, error) {
	pl, err := NewPlan(cfg, m, p)
	if err != nil {
		return nil, err
	}
	return pl.RunParallel(k, x, lanes)
}
