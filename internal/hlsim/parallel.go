package hlsim

import (
	"fmt"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// ParallelResult models the coarse-grained parallelism of §5.1:
// independent instances of the Fig. 2 pipeline process disjoint subsets
// of the non-zero partitions, and the matrix finishes when the last lane
// drains.
type ParallelResult struct {
	Kind  formats.Kind
	P     int
	Lanes int

	// Y is the functional SpMV output (lane-order independent: partial
	// outputs accumulate per row).
	Y []float64

	// LaneCycles is each instance's pipelined cycle total; TotalCycles
	// is the slowest lane.
	LaneCycles  []uint64
	TotalCycles uint64

	NonZeroTiles int
	cfg          Config
}

// Seconds returns the modelled wall time of the parallel run.
func (r *ParallelResult) Seconds() float64 { return r.cfg.CycleSeconds(r.TotalCycles) }

// Efficiency returns the parallel efficiency: ideal lane time over the
// slowest lane (1 = perfect load balance).
func (r *ParallelResult) Efficiency() float64 {
	if r.TotalCycles == 0 {
		return 1
	}
	var sum uint64
	for _, c := range r.LaneCycles {
		sum += c
	}
	ideal := float64(sum) / float64(r.Lanes)
	return ideal / float64(r.TotalCycles)
}

// RunParallel streams the non-zero partitions of m across `lanes`
// independent pipeline instances (round-robin distribution, the static
// schedule a streaming DMA would use) in format k at partition size p.
// With lanes=1 it degenerates to Run's pipelined total.
func RunParallel(cfg Config, m *matrix.CSR, k formats.Kind, p int, x []float64, lanes int) (*ParallelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lanes < 1 {
		return nil, fmt.Errorf("hlsim: RunParallel with %d lanes", lanes)
	}
	if len(x) != m.Cols {
		return nil, fmt.Errorf("hlsim: vector length %d for %d-column matrix", len(x), m.Cols)
	}
	pt := matrix.Partition(m, p)
	r := &ParallelResult{
		Kind:         k,
		P:            p,
		Lanes:        lanes,
		Y:            make([]float64, m.Rows),
		LaneCycles:   make([]uint64, lanes),
		NonZeroTiles: len(pt.Tiles),
		cfg:          cfg,
	}
	for i, tile := range pt.Tiles {
		enc := formats.Encode(k, tile)
		tr := RunTile(cfg, enc)
		lane := i % lanes
		r.LaneCycles[lane] += uint64(max(tr.MemCycles, tr.ComputeCycles))

		dec, err := enc.Decode()
		if err != nil {
			return nil, fmt.Errorf("hlsim: tile (%d,%d): %w", tile.Row, tile.Col, err)
		}
		for ri := 0; ri < p; ri++ {
			gi := tile.Row + ri
			if gi >= m.Rows {
				break
			}
			s := 0.0
			for j := 0; j < p; j++ {
				gj := tile.Col + j
				if gj >= m.Cols {
					break
				}
				s += dec.At(ri, j) * x[gj]
			}
			r.Y[gi] += s
		}
	}
	for _, c := range r.LaneCycles {
		if c > r.TotalCycles {
			r.TotalCycles = c
		}
	}
	return r, nil
}
