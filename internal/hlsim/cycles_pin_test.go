package hlsim

import (
	"errors"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// Test helpers unwrapping the cycle model's error returns: the model only
// errors on a Kind it has no equations for, which in these tests is a
// test bug, not a property under test.

func mustDecomp(t *testing.T, c Config, enc formats.Encoded) int {
	t.Helper()
	v, err := c.DecompCycles(enc)
	if err != nil {
		t.Fatalf("DecompCycles(%v): %v", enc.Kind(), err)
	}
	return v
}

func mustCompute(t *testing.T, c Config, enc formats.Encoded) int {
	t.Helper()
	v, err := c.ComputeCycles(enc)
	if err != nil {
		t.Fatalf("ComputeCycles(%v): %v", enc.Kind(), err)
	}
	return v
}

func mustSigma(t *testing.T, c Config, enc formats.Encoded) float64 {
	t.Helper()
	v, err := c.Sigma(enc)
	if err != nil {
		t.Fatalf("Sigma(%v): %v", enc.Kind(), err)
	}
	return v
}

func mustDirectCompute(t *testing.T, c Config, enc formats.Encoded) int {
	t.Helper()
	v, err := c.DirectComputeCycles(enc)
	if err != nil {
		t.Fatalf("DirectComputeCycles(%v): %v", enc.Kind(), err)
	}
	return v
}

func mustSigmaDirect(t *testing.T, c Config, enc formats.Encoded) float64 {
	t.Helper()
	v, err := c.SigmaDirect(enc)
	if err != nil {
		t.Fatalf("SigmaDirect(%v): %v", enc.Kind(), err)
	}
	return v
}

// pinTile is the fixed tile every pinned cycle count below is computed
// on: the paper's Fig. 1 example extended with one denser row, so block,
// diagonal, slice and jagged structures are all non-trivial.
func pinTile() *matrix.Tile {
	tile := matrix.NewTile(8, 0, 0)
	tile.Set(0, 3, 1)
	tile.Set(2, 1, 4)
	tile.Set(2, 5, 5)
	tile.Set(2, 6, 6)
	tile.Set(4, 7, 2)
	tile.Set(7, 7, 3)
	return tile
}

// TestCycleModelPinned is the analytic model's drift guard: one case per
// implemented format kind, asserting the exact DecompCycles,
// ComputeCycles and MemCycles the default configuration produces on
// pinTile. The backend refactor moved the call path of these functions
// (core → backend.Analytic → Plan); this table pins their values, so any
// seam that silently shifts a constant fails here rather than in a
// regenerated artifact diff. A calibration change must consciously update
// this table.
func TestCycleModelPinned(t *testing.T) {
	cfg := Default()
	tile := pinTile()
	cases := []struct {
		kind                 formats.Kind
		decomp, compute, mem int
	}{
		{formats.Dense, 0, 32, 36},
		{formats.CSR, 32, 48, 11},
		{formats.BCSR, 13, 45, 28},
		{formats.COO, 14, 30, 10},
		{formats.LIL, 26, 42, 11},
		{formats.ELL, 8, 40, 16},
		{formats.DIA, 56, 72, 20},
		{formats.CSC, 176, 192, 11},
		{formats.DOK, 23, 39, 12},
		{formats.SELL, 10, 42, 13},
		{formats.ELLCOO, 12, 44, 16},
		{formats.JDS, 23, 39, 13},
		{formats.SELLCS, 26, 58, 15},
	}
	if len(cases) != formats.NumKinds {
		t.Fatalf("pin table covers %d kinds, formats implements %d", len(cases), formats.NumKinds)
	}
	for _, tc := range cases {
		enc := formats.Encode(tc.kind, tile)
		if got := mustDecomp(t, cfg, enc); got != tc.decomp {
			t.Errorf("%v: DecompCycles = %d, pinned %d", tc.kind, got, tc.decomp)
		}
		if got := mustCompute(t, cfg, enc); got != tc.compute {
			t.Errorf("%v: ComputeCycles = %d, pinned %d", tc.kind, got, tc.compute)
		}
		if got := cfg.MemCycles(enc); got != tc.mem {
			t.Errorf("%v: MemCycles = %d, pinned %d", tc.kind, got, tc.mem)
		}
	}
}

// fakeEncoded reports an out-of-range Kind to the cycle model — the only
// way to reach its default branches now that Encode covers every Kind.
type fakeEncoded struct{ formats.Encoded }

func (fakeEncoded) Kind() formats.Kind { return formats.Kind(formats.NumKinds + 7) }

// TestUnknownKindIsErrorNotPanic: the cycle model refuses unmodelled
// kinds with ErrUnknownFormat instead of panicking (the error is plumbed
// through Characterize/Sweep; services map it to a client fault).
func TestUnknownKindIsErrorNotPanic(t *testing.T) {
	cfg := Default()
	enc := fakeEncoded{formats.Encode(formats.CSR, pinTile())}
	if _, err := cfg.DecompCycles(enc); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("DecompCycles error = %v, want ErrUnknownFormat", err)
	}
	if _, err := cfg.ComputeCycles(enc); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("ComputeCycles error = %v, want ErrUnknownFormat", err)
	}
	if _, err := cfg.Sigma(enc); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("Sigma error = %v, want ErrUnknownFormat", err)
	}
	if _, err := cfg.DirectComputeCycles(enc); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("DirectComputeCycles error = %v, want ErrUnknownFormat", err)
	}
	if _, err := RunTile(cfg, enc); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("RunTile error = %v, want ErrUnknownFormat", err)
	}
}

// TestPlanRejectsOutOfRangeKind: a Kind outside [0, NumKinds) is an error
// from every Plan entry point, never an index panic.
func TestPlanRejectsOutOfRangeKind(t *testing.T) {
	pl, err := NewPlan(Default(), randomTileMatrix(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, pl.Matrix().Cols)
	for _, k := range []formats.Kind{-1, formats.Kind(formats.NumKinds), 99} {
		if _, err := pl.Run(k, x); !errors.Is(err, ErrUnknownFormat) {
			t.Errorf("Run(%d) error = %v, want ErrUnknownFormat", int(k), err)
		}
		if _, err := pl.Trace(k); !errors.Is(err, ErrUnknownFormat) {
			t.Errorf("Trace(%d) error = %v, want ErrUnknownFormat", int(k), err)
		}
		if _, err := pl.Schedule(k); !errors.Is(err, ErrUnknownFormat) {
			t.Errorf("Schedule(%d) error = %v, want ErrUnknownFormat", int(k), err)
		}
	}
}

// randomTileMatrix builds a small deterministic matrix for plan tests.
func randomTileMatrix(t *testing.T) *matrix.CSR {
	t.Helper()
	b := matrix.NewBuilder(16, 16)
	for i := 0; i < 16; i++ {
		b.Add(i, i, float64(i+1))
		b.Add(i, (i*5+2)%16, float64(i)+0.5)
	}
	return b.Build()
}
