package hlsim

import (
	"sync"
	"testing"
	"time"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
)

// TestPlanFormatsEncodeConcurrently is the regression test for the old
// lock-scope bug: Plan.format held one plan-wide mutex across the whole
// multi-tile encode loop, so two sweep groups characterizing different
// formats on the same cached plan fully serialized. With per-format
// once-guards both encodes must be in flight at once: each goroutine
// parks in the encode hook until the other format's encode has also
// started — under the old monolithic lock this rendezvous can never
// happen and the test times out.
func TestPlanFormatsEncodeConcurrently(t *testing.T) {
	m := gen.Random(128, 0.05, 51)
	pl, err := NewPlan(Default(), m, 16)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	rendezvous := make(chan struct{})
	go func() {
		wg.Wait()
		close(rendezvous)
	}()
	planEncodeHook = func(formats.Kind) {
		wg.Done()
		select {
		case <-rendezvous:
		case <-time.After(10 * time.Second):
		}
	}
	defer func() { planEncodeHook = nil }()

	done := make(chan error, 2)
	x := testVectorFor(m.Cols)
	for _, k := range []formats.Kind{formats.CSR, formats.CSC} {
		k := k
		go func() {
			_, err := pl.Run(k, x)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("format encodes serialized: the two formats never ran concurrently")
		}
	}
}

// TestPlanParallelWarmupDeterministic: encoding a format's tiles on the
// worker pool must produce results bit-identical to a serial encode —
// aggregates, functional output, traces, and schedules alike.
func TestPlanParallelWarmupDeterministic(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.04, 61)
	x := testVectorFor(m.Cols)
	serial, err := NewPlan(cfg, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPlan(cfg, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	for _, k := range formats.All() {
		sr, err := serial.Run(k, x)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := parallel.Run(k, x)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MemCycles != pr.MemCycles || sr.ComputeCycles != pr.ComputeCycles ||
			sr.PipelinedCycles != pr.PipelinedCycles || sr.Footprint != pr.Footprint ||
			sr.DotRows != pr.DotRows || sr.NNZ != pr.NNZ ||
			sr.BalanceRatio() != pr.BalanceRatio() || sr.Sigma() != pr.Sigma() {
			t.Fatalf("%v: parallel warmup aggregates diverge from serial", k)
		}
		for i := range sr.Y {
			if sr.Y[i] != pr.Y[i] {
				t.Fatalf("%v: Y[%d] = %v parallel vs %v serial", k, i, pr.Y[i], sr.Y[i])
			}
		}
		st, err := serial.Trace(k)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := parallel.Trace(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range st {
			if st[i] != pt[i] {
				t.Fatalf("%v: trace[%d] diverges under parallel warmup", k, i)
			}
		}
	}
}

// TestPlanRunIntoZeroAllocs: the warm RunInto path must not allocate —
// the Result and its Y buffer are caller-held and reused, and the spmv
// walks the plan's prebuilt arrays.
func TestPlanRunIntoZeroAllocs(t *testing.T) {
	cfg := Default()
	m := gen.Random(256, 0.05, 71)
	x := testVectorFor(m.Cols)
	pl, err := NewPlan(cfg, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := pl.RunInto(formats.CSR, x, &r); err != nil {
		t.Fatal(err) // warm the format cache and size r.Y
	}
	want, fresh := append([]float64(nil), r.Y...), r.Y
	allocs := testing.AllocsPerRun(50, func() {
		if err := pl.RunInto(formats.CSR, x, &r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm RunInto allocates %v allocs/op, want 0", allocs)
	}
	if &r.Y[0] != &fresh[0] {
		t.Fatal("warm RunInto reallocated the output buffer")
	}
	for i := range want {
		if r.Y[i] != want[i] {
			t.Fatalf("reused-buffer result diverges at %d", i)
		}
	}
}

// TestPlanRunIntoGrowsBuffer: a short Y buffer is replaced, not indexed
// out of range.
func TestPlanRunIntoGrowsBuffer(t *testing.T) {
	m := gen.Random(64, 0.1, 81)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := testVectorFor(m.Cols)
	r := Result{Y: make([]float64, 3)}
	if err := pl.RunInto(formats.COO, x, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Y) != m.Rows {
		t.Fatalf("Y length %d, want %d", len(r.Y), m.Rows)
	}
	full, err := pl.Run(formats.COO, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Y {
		if r.Y[i] != full.Y[i] {
			t.Fatalf("grown-buffer result diverges at %d", i)
		}
	}
}

// TestPlanRunIntoRejectsAliasedInput: feeding the reused output buffer
// back in as the input would be silently zeroed before accumulation —
// RunInto must reject the aliasing instead.
func TestPlanRunIntoRejectsAliasedInput(t *testing.T) {
	m := gen.Random(64, 0.1, 91) // square, so r.Y is a valid input length
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := pl.RunInto(formats.CSR, testVectorFor(m.Cols), &r); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunInto(formats.CSR, r.Y, &r); err == nil {
		t.Fatal("aliased x == r.Y accepted; the input would have been zeroed")
	}
}

// TestPlanRunIntoRejectsOverlappingInput: offset overlaps (not just
// identical base pointers) must also be rejected.
func TestPlanRunIntoRejectsOverlappingInput(t *testing.T) {
	m := gen.Random(64, 0.1, 93)
	pl, err := NewPlan(Default(), m, 8)
	if err != nil {
		t.Fatal(err)
	}
	backing := make([]float64, m.Rows+8)
	r := Result{Y: backing[:m.Rows]}
	x := backing[4 : 4+m.Cols] // partially overlaps r.Y at an offset
	copy(x, testVectorFor(m.Cols))
	if err := pl.RunInto(formats.CSR, x, &r); err == nil {
		t.Fatal("offset-overlapping x accepted; the input would have been partially zeroed")
	}
}
