package hlsim

import (
	"errors"
	"fmt"

	"copernicus/internal/formats"
)

// ErrUnknownFormat is wrapped by every cycle-model error arising from a
// format Kind the model has no equations for. It reaches callers through
// Plan, Characterize and Sweep instead of a panic, so a service front-end
// can map it to a client error rather than losing the goroutine.
var ErrUnknownFormat = errors.New("hlsim: unknown format kind")

// DecompCycles returns T_decomp of Eq. (1) for one encoded tile: the cycle
// cost of the decompress stage (Fig. 2 ❷), derived from the HLS structure
// of each format's Listing. A Kind outside the modelled set returns an
// error wrapping ErrUnknownFormat.
func (c Config) DecompCycles(enc formats.Encoded) (int, error) {
	s := enc.Stats()
	p := enc.P()
	switch enc.Kind() {
	case formats.Dense:
		// No decompression: values stream straight into the dot engine.
		return 0, nil

	case formats.CSR:
		// Listing 1: per non-zero row, one dependent offsets read, then a
		// pipelined walk of colInx/values whose sequential BRAM accesses
		// force II=2; one pipeline fill per row (rows are dependent
		// through oldInx).
		return s.NonZeroRows*(c.BRAMReadLatency+c.PipeDepth) + s.NNZ*c.IICSR, nil

	case formats.BCSR:
		// Listing 2: per non-zero block row, one offsets read, then one
		// issue slot per block — the 16-wide inner loop is fully unrolled
		// over dim-2-partitioned BRAM.
		return s.BlockRows*(c.BRAMReadLatency+c.PipeDepth) + s.Blocks, nil

	case formats.CSC:
		// Listing 3: for each of the p output rows the decompressor walks
		// the column lists until the row's entries are found (break on
		// match, CSCScanFrac of the stream on average) and hops p column
		// offsets, each a dependent BRAM read. The orientation mismatch
		// makes this the most expensive decompressor by far.
		scan := int(float64(s.NNZ)*c.CSCScanFrac + 0.5)
		return p * (scan + p*c.BRAMReadLatency + c.PipeDepth), nil

	case formats.COO:
		// Listing 6: one pipelined pass over the tuple stream (sentinel
		// included), plus a row-switch slot per emitted row. The tuple
		// vector cannot be BRAM-partitioned (row occupancy is unknown in
		// advance), so the loop pipelines instead of unrolling. All-zero
		// partitions are never transferred (§4.1), so they cost nothing.
		if s.NNZ == 0 {
			return 0, nil
		}
		return (s.NNZ+1)*c.IICOO + s.NonZeroRows + c.PipeDepth, nil

	case formats.DOK:
		// Same procedure as COO (§5.2), but the scan covers the whole
		// hash table including empty slots.
		if s.NNZ == 0 {
			return 0, nil
		}
		return s.Width*c.IICOO + s.NonZeroRows + c.PipeDepth, nil

	case formats.LIL:
		// Listing 4: per non-zero row, one parallel BRAM access across
		// the column-partitioned lists plus the min-comparator tree
		// (log2 p) and gather logic; one extra access detects the end of
		// the lists.
		if s.NNZ == 0 {
			return 0, nil
		}
		perRow := c.BRAMReadLatency + c.CLILBase + log2ceil(p)
		return s.NonZeroRows*perRow + c.BRAMReadLatency, nil

	case formats.ELL:
		// Listing 5: a fully unrolled gather per row over the partitioned
		// rectangle — constant cost, but charged for every row since
		// all-zero rows cannot be skipped.
		return p * c.CELL, nil

	case formats.DIA:
		// Listing 7: per row, a pipelined scan over every stored
		// diagonal; rows are produced in order so all p rows scan.
		return p * (s.Diagonals*c.IIDIA + c.PipeDepth), nil

	case formats.SELL:
		// ELL per slice plus a width-register load per slice.
		return p*c.CELL + s.Slices, nil

	case formats.ELLCOO:
		// The capped rectangle decompresses like ELL; the spill list
		// (Slices carries its length) streams like COO.
		return p*c.CELL + (s.Slices+1)*c.IICOO + c.PipeDepth, nil

	case formats.SELLCS:
		// SELL decompression plus one permutation indirection per row to
		// place the output.
		return p*c.CELL + s.Slices + p*c.BRAMReadLatency, nil

	case formats.JDS:
		// Per jagged diagonal, one pipelined pass over its entries; the
		// permutation adds one BRAM-resident indirection per emitted row.
		return s.NNZ*c.IICOO + s.Slices*c.PipeDepth + s.NonZeroRows*c.BRAMReadLatency, nil

	default:
		return 0, fmt.Errorf("%w: DecompCycles for kind %v", ErrUnknownFormat, enc.Kind())
	}
}

// ComputeCycles returns the compute-stage latency for one tile:
// T_decomp + DotRows·T_dot, the numerator of Eq. (1).
func (c Config) ComputeCycles(enc formats.Encoded) (int, error) {
	d, err := c.DecompCycles(enc)
	if err != nil {
		return 0, err
	}
	return d + enc.Stats().DotRows*c.DotLatency(enc.P()), nil
}

// MemCycles returns the memory-stage latency for one tile: the longer of
// the two AXI streamlines plus the fixed burst overhead (or the serial
// sum when SingleStreamline is set).
func (c Config) MemCycles(enc formats.Encoded) int {
	f := enc.Footprint()
	v := ceilDiv(f.ValueLaneBytes, c.AXIBytesPerCycle)
	i := ceilDiv(f.IndexLaneBytes, c.AXIBytesPerCycle)
	if c.SingleStreamline {
		return v + i + c.BurstOverhead
	}
	return max(v, i) + c.BurstOverhead
}

// Sigma returns the per-tile decompression latency overhead of Eq. (1):
// (T_decomp + nnz_rows·T_dot) / (p·T_dot). Dense yields exactly 1.
func (c Config) Sigma(enc formats.Encoded) (float64, error) {
	p := enc.P()
	td := c.DotLatency(p)
	cc, err := c.ComputeCycles(enc)
	if err != nil {
		return 0, err
	}
	return float64(cc) / float64(p*td), nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
