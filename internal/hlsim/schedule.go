package hlsim

import (
	"fmt"

	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// StageTimes are one tile's scheduled intervals on the three-stage
// high-level pipeline of Fig. 2 ❶: memory read, compute (decompress +
// dot products), and memory write of the partial output vector.
type StageTimes struct {
	MemStart, MemEnd         uint64
	ComputeStart, ComputeEnd uint64
	WriteStart, WriteEnd     uint64
}

// Schedule is the event-level timeline of a full streaming run: each
// stage processes tiles in order, a tile enters a stage only after the
// previous stage finished it and the stage finished the previous tile
// (a FIFO of depth one between stages, as in Fig. 2). It refines the
// Σ max(mem, compute) approximation used by Run: the Makespan accounts
// for pipeline fill, drain, and writeback overlap exactly.
type Schedule struct {
	Kind  formats.Kind
	P     int
	Tiles []StageTimes
	// Makespan is the end of the last writeback.
	Makespan uint64
	cfg      Config
}

// Seconds converts the makespan to modelled wall time.
func (s *Schedule) Seconds() float64 { return s.cfg.CycleSeconds(s.Makespan) }

// writeCycles is the writeback cost of one tile: the partial output
// vector (p words) plus burst overhead on the write lane.
func (c Config) writeCycles(p int) int {
	return ceilDiv(p*matrix.BytesPerValue, c.AXIBytesPerCycle) + c.BurstOverhead
}

// BuildSchedule computes the event-level pipeline timeline for a run.
// It builds a transient Plan; hold a NewPlan to schedule several formats
// of one matrix.
func BuildSchedule(cfg Config, m *matrix.CSR, k formats.Kind, p int) (*Schedule, error) {
	pl, err := NewPlan(cfg, m, p)
	if err != nil {
		return nil, err
	}
	return pl.Schedule(k)
}

// Validate checks the schedule's structural invariants: stage intervals
// are well-formed, per-stage processing is serial and in order, and
// every tile flows strictly forward through the pipeline.
func (s *Schedule) Validate() error {
	var memFree, compFree, writeFree uint64
	for i, t := range s.Tiles {
		if t.MemEnd < t.MemStart || t.ComputeEnd < t.ComputeStart || t.WriteEnd < t.WriteStart {
			return fmt.Errorf("hlsim: tile %d has a negative interval", i)
		}
		if t.MemStart < memFree || t.ComputeStart < compFree || t.WriteStart < writeFree {
			return fmt.Errorf("hlsim: tile %d overlaps its predecessor on a stage", i)
		}
		if t.ComputeStart < t.MemEnd || t.WriteStart < t.ComputeEnd {
			return fmt.Errorf("hlsim: tile %d enters a stage before leaving the previous", i)
		}
		memFree, compFree, writeFree = t.MemEnd, t.ComputeEnd, t.WriteEnd
	}
	if len(s.Tiles) > 0 && s.Makespan != s.Tiles[len(s.Tiles)-1].WriteEnd {
		return fmt.Errorf("hlsim: makespan %d does not match final writeback", s.Makespan)
	}
	return nil
}

// StageUtilization returns the busy fraction of each stage over the
// makespan.
func (s *Schedule) StageUtilization() (mem, compute, write float64) {
	if s.Makespan == 0 {
		return 0, 0, 0
	}
	var m, c, w uint64
	for _, t := range s.Tiles {
		m += t.MemEnd - t.MemStart
		c += t.ComputeEnd - t.ComputeStart
		w += t.WriteEnd - t.WriteStart
	}
	span := float64(s.Makespan)
	return float64(m) / span, float64(c) / span, float64(w) / span
}
