package hlsim

import (
	"fmt"

	"copernicus/internal/formats"
)

// Row is one output of a hardware decompressor: a reconstructed dense
// row of the tile (the drow buffer of Listings 1–7), its row index, and
// the cycles the decompress stage spent producing it.
type Row struct {
	Index  int
	Values []float64 // length p; reused across calls — copy to retain
	Cycles int
}

// RowSource replays a format's decompressor the way the hardware does:
// one reconstructed row per call, in the order the pipeline would emit
// them. The sum of per-row cycles over a full drain equals
// Config.DecompCycles for the same encoding — the test suite proves the
// identity for every format — so the closed-form cycle model and the
// operational model cannot drift apart.
type RowSource interface {
	// Next emits the next row. ok is false when the tile is drained.
	Next() (Row, bool)
}

// NewRowSource returns the stream-walking decompressor for the encoding.
// The seven measured formats (plus dense) walk their streams directly,
// transliterated from the paper's listings; the extension formats replay
// through their decoded tile with the same cycle distribution.
func NewRowSource(cfg Config, enc formats.Encoded) (RowSource, error) {
	switch e := enc.(type) {
	case *formats.DenseEnc:
		return &denseSource{p: e.P(), vals: e.Values()}, nil
	case *formats.CSREnc:
		return &csrSource{cfg: cfg, e: e, drow: make([]float64, e.P())}, nil
	case *formats.CSCEnc:
		return &cscSource{cfg: cfg, e: e, drow: make([]float64, e.P())}, nil
	case *formats.BCSREnc:
		return newBCSRSource(cfg, e), nil
	case *formats.COOEnc:
		return &cooSource{cfg: cfg, e: e, drow: make([]float64, e.P())}, nil
	case *formats.LILEnc:
		return newLILSource(cfg, e), nil
	case *formats.ELLEnc:
		return &ellSource{cfg: cfg, e: e, drow: make([]float64, e.P())}, nil
	case *formats.DIAEnc:
		return &diaSource{cfg: cfg, e: e, drow: make([]float64, e.P())}, nil
	default:
		return newGenericSource(cfg, enc)
	}
}

// denseSource streams the buffered tile row by row with no
// decompression cost.
type denseSource struct {
	p, i int
	vals []float64
}

func (s *denseSource) Next() (Row, bool) {
	if s.i >= s.p {
		return Row{}, false
	}
	r := Row{Index: s.i, Values: s.vals[s.i*s.p : (s.i+1)*s.p]}
	s.i++
	return r, true
}

// csrSource is Listing 1: for each non-zero row, one offsets read
// (numVal = offsets[i] - offsets[i-1]) then a pipelined dependent walk
// of colInx/values.
type csrSource struct {
	cfg  Config
	e    *formats.CSREnc
	row  int
	drow []float64
}

func (s *csrSource) Next() (Row, bool) {
	p := s.e.P()
	for ; s.row < p; s.row++ {
		start, end := s.e.RowRange(s.row)
		if start == end {
			continue // all-zero row: no work, no emission
		}
		clear(s.drow)
		for k := start; k < end; k++ {
			s.drow[s.e.ColIdx()[k]] = s.e.Values()[k]
		}
		cycles := s.cfg.BRAMReadLatency + s.cfg.PipeDepth + int(end-start)*s.cfg.IICSR
		r := Row{Index: s.row, Values: s.drow, Cycles: cycles}
		s.row++
		return r, true
	}
	return Row{}, false
}

// cscSource is Listing 3: for every output row the decompressor
// traverses the column lists looking for matching row indices, hopping
// the column offsets as it goes — the orientation-mismatch scan.
type cscSource struct {
	cfg  Config
	e    *formats.CSCEnc
	row  int
	drow []float64
}

func (s *cscSource) Next() (Row, bool) {
	p := s.e.P()
	if s.row >= p {
		return Row{}, false
	}
	clear(s.drow)
	for j := 0; j < p; j++ {
		start, end := s.e.ColRange(j)
		for k := start; k < end; k++ {
			if int(s.e.RowIdx()[k]) == s.row {
				s.drow[j] = s.e.Values()[k]
				break // Listing 3 breaks on first match
			}
		}
	}
	scan := int(float64(s.e.Stats().NNZ)*s.cfg.CSCScanFrac + 0.5)
	cycles := scan + p*s.cfg.BRAMReadLatency + s.cfg.PipeDepth
	r := Row{Index: s.row, Values: s.drow, Cycles: cycles}
	s.row++
	return r, true
}

// bcsrSource is Listing 2: per non-zero block row, one offsets read and
// one unrolled issue slot per block reconstructs b rows at once; the
// block row's rows then stream out.
type bcsrSource struct {
	cfg      Config
	e        *formats.BCSREnc
	blockRow int
	buffered [][]float64 // b reconstructed rows pending emission
	baseRow  int
	sub      int
	cost     int // charged on the first row of the block row
}

func newBCSRSource(cfg Config, e *formats.BCSREnc) *bcsrSource {
	b := e.Block()
	buf := make([][]float64, b)
	for i := range buf {
		buf[i] = make([]float64, e.P())
	}
	return &bcsrSource{cfg: cfg, e: e, buffered: buf}
}

func (s *bcsrSource) Next() (Row, bool) {
	b := s.e.Block()
	if s.sub < len(s.buffered) && s.sub > 0 {
		r := Row{Index: s.baseRow + s.sub, Values: s.buffered[s.sub]}
		s.sub++
		if s.sub == b {
			s.sub = 0
			s.blockRow++
		}
		return r, true
	}
	nb := s.e.P() / b
	for ; s.blockRow < nb; s.blockRow++ {
		start, end := s.e.BlockRowRange(s.blockRow)
		if start == end {
			continue
		}
		for _, row := range s.buffered {
			clear(row)
		}
		for blk := start; blk < end; blk++ {
			c0 := int(s.e.ColIdx()[blk])
			base := int(blk) * b * b
			for i := 0; i < b; i++ {
				for j := 0; j < b; j++ {
					if v := s.e.Values()[base+i*b+j]; v != 0 {
						s.buffered[i][c0+j] = v
					}
				}
			}
		}
		s.baseRow = s.blockRow * b
		s.cost = s.cfg.BRAMReadLatency + s.cfg.PipeDepth + int(end-start)
		s.sub = 1
		return Row{Index: s.baseRow, Values: s.buffered[0], Cycles: s.cost}, true
	}
	return Row{}, false
}

// cooSource is Listing 6: the tuple stream is consumed in row-major
// order; a row emits when the row index changes. The sentinel read and
// the pipeline fill are charged to the final row.
type cooSource struct {
	cfg  Config
	e    *formats.COOEnc
	k    int
	drow []float64
}

func (s *cooSource) Next() (Row, bool) {
	n := s.e.Tuples()
	if s.k >= n {
		return Row{}, false
	}
	row := int(s.e.Rows()[s.k])
	clear(s.drow)
	count := 0
	for s.k < n && int(s.e.Rows()[s.k]) == row {
		s.drow[s.e.Cols()[s.k]] = s.e.Values()[s.k]
		s.k++
		count++
	}
	cycles := count*s.cfg.IICOO + 1 // tuples plus the row-switch slot
	if s.k >= n {
		cycles += s.cfg.IICOO + s.cfg.PipeDepth // sentinel read + drain
	}
	return Row{Index: row, Values: s.drow, Cycles: cycles}, true
}

// lilSource is Listing 4: per emission, a parallel access across the
// column-partitioned lists finds the minimum pending row index and
// gathers every matching column head; the comparator tree costs
// log2(p). The terminator detection is charged to the last row.
type lilSource struct {
	cfg    Config
	e      *formats.LILEnc
	cursor []int
	drow   []float64
}

func newLILSource(cfg Config, e *formats.LILEnc) *lilSource {
	return &lilSource{cfg: cfg, e: e, cursor: make([]int, e.P()), drow: make([]float64, e.P())}
}

func (s *lilSource) Next() (Row, bool) {
	p := s.e.P()
	minRow := -1
	for j := 0; j < p; j++ {
		if s.cursor[j] < len(s.e.ColRows(j)) {
			if r := int(s.e.ColRows(j)[s.cursor[j]]); minRow == -1 || r < minRow {
				minRow = r
			}
		}
	}
	if minRow == -1 {
		return Row{}, false
	}
	clear(s.drow)
	for j := 0; j < p; j++ {
		if s.cursor[j] < len(s.e.ColRows(j)) && int(s.e.ColRows(j)[s.cursor[j]]) == minRow {
			s.drow[j] = s.e.ColVals(j)[s.cursor[j]]
			s.cursor[j]++
		}
	}
	cycles := s.cfg.BRAMReadLatency + s.cfg.CLILBase + log2ceil(p)
	// Last row: one extra access recognizes the end of the lists.
	done := true
	for j := 0; j < p; j++ {
		if s.cursor[j] < len(s.e.ColRows(j)) {
			done = false
			break
		}
	}
	if done {
		cycles += s.cfg.BRAMReadLatency
	}
	return Row{Index: minRow, Values: s.drow, Cycles: cycles}, true
}

// ellSource is Listing 5: a fully unrolled gather per row — every row of
// the tile, all-zero ones included.
type ellSource struct {
	cfg  Config
	e    *formats.ELLEnc
	row  int
	drow []float64
}

func (s *ellSource) Next() (Row, bool) {
	p := s.e.P()
	if s.row >= p {
		return Row{}, false
	}
	clear(s.drow)
	w := s.e.Width()
	for k := 0; k < w; k++ {
		if j := s.e.Idx()[s.row*w+k]; j >= 0 {
			s.drow[j] = s.e.Values()[s.row*w+k]
		}
	}
	r := Row{Index: s.row, Values: s.drow, Cycles: s.cfg.CELL}
	s.row++
	return r, true
}

// diaSource is Listing 7: per output row, a pipelined scan over every
// stored diagonal, gated by the IsRowOnDiagonal bound checks.
type diaSource struct {
	cfg  Config
	e    *formats.DIAEnc
	row  int
	drow []float64
}

func (s *diaSource) Next() (Row, bool) {
	p := s.e.P()
	if s.row >= p {
		return Row{}, false
	}
	clear(s.drow)
	for k, d := range s.e.DiagNo() {
		j := s.row + int(d)
		if j < 0 || j >= p {
			continue // IsRowOnDiagonal fails
		}
		if v := s.e.Lane(k)[s.row]; v != 0 {
			s.drow[j] = v
		}
	}
	cycles := s.e.Diagonals()*s.cfg.IIDIA + s.cfg.PipeDepth
	r := Row{Index: s.row, Values: s.drow, Cycles: cycles}
	s.row++
	return r, true
}

// genericSource replays an extension format through its decoder,
// distributing the closed-form cycle total uniformly over the emitted
// rows (remainder on the first) so the per-tile identity with
// DecompCycles still holds.
type genericSource struct {
	p      int
	rows   []int
	vals   [][]float64
	i      int
	per    int
	first  int
	issued bool
}

func newGenericSource(cfg Config, enc formats.Encoded) (*genericSource, error) {
	dec, err := enc.Decode()
	if err != nil {
		return nil, fmt.Errorf("hlsim: row source: %w", err)
	}
	p := enc.P()
	s := &genericSource{p: p}
	// Padded formats emit every row; others only non-zero rows.
	emitAll := enc.Stats().DotRows == p
	for i := 0; i < p; i++ {
		cols, vals := dec.RowView(i)
		if !emitAll && len(cols) == 0 {
			continue
		}
		row := make([]float64, p)
		for k := range cols {
			row[cols[k]] = vals[k]
		}
		s.rows = append(s.rows, i)
		s.vals = append(s.vals, row)
	}
	total, err := cfg.DecompCycles(enc)
	if err != nil {
		return nil, err
	}
	if n := len(s.rows); n > 0 {
		s.per = total / n
		s.first = total - s.per*(n-1)
	}
	return s, nil
}

func (s *genericSource) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return Row{}, false
	}
	c := s.per
	if !s.issued {
		c = s.first
		s.issued = true
	}
	r := Row{Index: s.rows[s.i], Values: s.vals[s.i], Cycles: c}
	s.i++
	return r, true
}
