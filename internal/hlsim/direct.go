package hlsim

import (
	"fmt"

	"copernicus/internal/formats"
)

// DirectComputeCycles models the alternative architecture class of the
// paper's §7 related work (EIE, SpArch, SIGMA, Tensaurus): accelerators
// that consume compressed operands *directly*, issuing one
// multiply-accumulate per stored element instead of reconstructing dense
// rows for a fixed-width dot engine. The paper notes these designs must
// still reconstruct each non-zero's location; that reconstruction is
// exactly the per-format overhead that remains here.
//
// The most instructive difference from the decompress-then-dot pipeline
// is CSC: a column-major stream is *natural* for direct scatter-
// accumulate (y[row] += v·x[col] while streaming a column), so the
// orientation mismatch that makes CSC catastrophic in the paper's
// architecture disappears — the ext6 artifact quantifies how much of a
// format's cost is the format and how much is the format/architecture
// pairing, which is §8's co-design insight.
func (c Config) DirectComputeCycles(enc formats.Encoded) (int, error) {
	s := enc.Stats()
	p := enc.P()
	// accumDrain is the adder pipeline drain charged once per emitted
	// output row group.
	accumDrain := c.AddLatency * log2ceil(max(2, p))
	switch enc.Kind() {
	case formats.Dense:
		// Nothing to gain: the dense stream feeds the dot engine as is.
		return s.DotRows * c.DotLatency(p), nil

	case formats.CSR:
		// Offsets walk per non-zero row, then one MAC per element with
		// the gathered x[col]; accumulate drains per row.
		return s.NonZeroRows*(c.BRAMReadLatency+accumDrain) + s.NNZ, nil

	case formats.CSC:
		// Stream columns in order: load x[col] once per column, then
		// scatter-accumulate one MAC per element into the output buffer.
		return p*c.BRAMReadLatency + s.NNZ, nil

	case formats.BCSR:
		// One issue slot per block (b MACs in parallel across the
		// partitioned banks), offsets walk per block row.
		return s.BlockRows*(c.BRAMReadLatency+accumDrain) + s.Blocks*formats.BCSRBlock, nil

	case formats.COO, formats.DOK:
		// One MAC per tuple; a row switch drains the accumulator.
		return s.NNZ*c.IICOO + s.NonZeroRows*accumDrain, nil

	case formats.LIL:
		// Parallel column heads feed up to p MACs per emitted row.
		return s.NonZeroRows * (c.BRAMReadLatency + c.CLILBase + accumDrain), nil

	case formats.ELL, formats.SELL, formats.ELLCOO, formats.JDS, formats.SELLCS:
		// The rectangle rows issue W-wide MAC groups; padding still
		// occupies slots, so every row costs one group.
		return s.DotRows + s.NonZeroRows*accumDrain, nil

	case formats.DIA:
		// Each stored diagonal is a vector MAC against a shifted x.
		return s.Diagonals*(c.BRAMReadLatency+p/4) + accumDrain, nil

	default:
		return 0, fmt.Errorf("%w: DirectComputeCycles for kind %v", ErrUnknownFormat, enc.Kind())
	}
}

// SigmaDirect is Eq. (1) evaluated for the direct architecture: direct
// compute cycles normalized by the dense baseline's dot latency.
func (c Config) SigmaDirect(enc formats.Encoded) (float64, error) {
	p := enc.P()
	d, err := c.DirectComputeCycles(enc)
	if err != nil {
		return 0, err
	}
	return float64(d) / float64(p*c.DotLatency(p)), nil
}
