package hlsim

import (
	"copernicus/internal/formats"
	"copernicus/internal/matrix"
)

// TileResult records the modelled cost of streaming and processing one
// compressed partition.
type TileResult struct {
	MemCycles     int
	DecompCycles  int
	ComputeCycles int
	DotRows       int
	Footprint     formats.Footprint
}

// Balance returns the tile's memory/compute latency ratio (the paper's
// balance metric; 1 is perfectly balanced streaming).
func (t TileResult) Balance() float64 {
	return float64(t.MemCycles) / float64(t.ComputeCycles)
}

// Result aggregates a full SpMV run of one matrix in one format at one
// partition size, carrying both the functional output vector and the
// modelled performance totals.
type Result struct {
	Kind formats.Kind
	P    int

	// Y is the SpMV output computed through the modelled pipeline
	// (decompress → dot product); tests verify it equals the software
	// reference.
	Y []float64

	NonZeroTiles int
	TotalTiles   int

	// Cycle totals across non-zero tiles. PipelinedCycles accumulates
	// max(mem, compute) per tile — the high-level pipeline overlaps the
	// stages, so the slower one defines each partition's contribution.
	MemCycles       uint64
	ComputeCycles   uint64
	DecompCycles    uint64
	PipelinedCycles uint64

	DotRows   uint64
	NNZ       uint64
	Footprint formats.Footprint

	// Bubble accounting (§4.2: imbalanced streaming "leads to idle
	// computation or pauses in data transfer"): per tile, the faster
	// stage waits for the slower one. IdleComputeCycles accumulates the
	// compute engine's wait when a tile is memory-bound; StallMemCycles
	// accumulates the stream's pause when it is compute-bound.
	IdleComputeCycles uint64
	StallMemCycles    uint64

	sumBalance float64
	cfg        Config
}

// ComputeIdleFraction returns the fraction of pipelined time the compute
// engine spends waiting on memory.
func (r *Result) ComputeIdleFraction() float64 {
	if r.PipelinedCycles == 0 {
		return 0
	}
	return float64(r.IdleComputeCycles) / float64(r.PipelinedCycles)
}

// MemStallFraction returns the fraction of pipelined time the memory
// stream spends paused behind compute.
func (r *Result) MemStallFraction() float64 {
	if r.PipelinedCycles == 0 {
		return 0
	}
	return float64(r.StallMemCycles) / float64(r.PipelinedCycles)
}

// Sigma returns the aggregate decompression latency overhead: Eq. (1)
// evaluated over all non-zero tiles (total decompression plus total dot
// latency, normalized by the dense-format compute latency of the same
// tiles). Dense returns exactly 1.
func (r *Result) Sigma() float64 {
	if r.NonZeroTiles == 0 {
		return 1
	}
	td := uint64(r.cfg.DotLatency(r.P))
	denom := uint64(r.NonZeroTiles) * uint64(r.P) * td
	return float64(r.DecompCycles+r.DotRows*td) / float64(denom)
}

// BalanceRatio returns the average memory/compute ratio over non-zero
// tiles (§4.2; 1 is perfectly balanced).
func (r *Result) BalanceRatio() float64 {
	if r.NonZeroTiles == 0 {
		return 1
	}
	return r.sumBalance / float64(r.NonZeroTiles)
}

// Seconds returns the modelled wall time of the run.
func (r *Result) Seconds() float64 { return r.cfg.CycleSeconds(r.PipelinedCycles) }

// Throughput returns processed bytes (data plus metadata) per second —
// the §4.2 throughput metric, which reflects pipeline bubbles caused by
// imbalance.
func (r *Result) Throughput() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Footprint.TotalBytes()) / s
}

// BandwidthUtilization returns useful bytes over all transmitted bytes.
func (r *Result) BandwidthUtilization() float64 { return r.Footprint.Utilization() }

// MeanMemCycles returns the average per-tile memory latency (Fig. 8 x
// axis).
func (r *Result) MeanMemCycles() float64 {
	if r.NonZeroTiles == 0 {
		return 0
	}
	return float64(r.MemCycles) / float64(r.NonZeroTiles)
}

// MeanComputeCycles returns the average per-tile compute latency (Fig. 8
// y axis).
func (r *Result) MeanComputeCycles() float64 {
	if r.NonZeroTiles == 0 {
		return 0
	}
	return float64(r.ComputeCycles) / float64(r.NonZeroTiles)
}

// DotEngineUtilization returns the fraction of the p-wide dot-product
// engine's multiplier slots that carried real non-zeros, over all
// performed dot products. §5.1: "the partition density and, more
// specifically the row density, defines the computation utilization of
// the dot-product engine at run time."
func (r *Result) DotEngineUtilization() float64 {
	if r.DotRows == 0 {
		return 0
	}
	return float64(r.NNZ) / float64(r.DotRows*uint64(r.P))
}

// InnerPipelineUtilization returns the fraction of partition rows that
// actually occupied the decompress→dot inner pipeline. §5.1: "the
// number of non-zero rows in the partitions determines the utilization
// of the inner pipeline."
func (r *Result) InnerPipelineUtilization() float64 {
	if r.NonZeroTiles == 0 {
		return 0
	}
	return float64(r.DotRows) / float64(uint64(r.NonZeroTiles)*uint64(r.P))
}

// RunTile models one encoded tile without touching vectors. A format the
// cycle model has no equations for returns an error wrapping
// ErrUnknownFormat instead of panicking.
func RunTile(cfg Config, enc formats.Encoded) (TileResult, error) {
	dec, err := cfg.DecompCycles(enc)
	if err != nil {
		return TileResult{}, err
	}
	comp, err := cfg.ComputeCycles(enc)
	if err != nil {
		return TileResult{}, err
	}
	return TileResult{
		MemCycles:     cfg.MemCycles(enc),
		DecompCycles:  dec,
		ComputeCycles: comp,
		DotRows:       enc.Stats().DotRows,
		Footprint:     enc.Footprint(),
	}, nil
}

// Run streams every non-zero partition of m through the modelled
// accelerator in format k with partition size p, multiplying by x. It
// returns the functional SpMV result alongside the aggregated performance
// model. The encoded streams are decoded back through the format's
// decoder and cross-checked against the partition — any corruption
// surfaces as an error rather than a wrong answer.
//
// Run builds a transient Plan per call; callers multiplying the same
// matrix repeatedly should hold a NewPlan and call its Run method, which
// partitions, encodes, and cross-checks only once.
func Run(cfg Config, m *matrix.CSR, k formats.Kind, p int, x []float64) (*Result, error) {
	pl, err := NewPlan(cfg, m, p)
	if err != nil {
		return nil, err
	}
	return pl.Run(k, x)
}
