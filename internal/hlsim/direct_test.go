package hlsim

import (
	"testing"
	"testing/quick"

	"copernicus/internal/formats"
)

// TestDirectCSCRemovesOrientationPenalty: in the direct architecture
// CSC's cost collapses from ~20× dense to the same order as CSR — the
// co-design point of ext6.
func TestDirectCSCRemovesOrientationPenalty(t *testing.T) {
	cfg := Default()
	tile := randomTile(3, 16, 0.3)
	enc := formats.Encode(formats.CSC, tile)
	decomp := mustSigma(t, cfg, enc)
	direct := mustSigmaDirect(t, cfg, enc)
	if direct > decomp/5 {
		t.Fatalf("direct CSC σ %.2f not well below decompress σ %.2f", direct, decomp)
	}
	csr := mustSigmaDirect(t, cfg, formats.Encode(formats.CSR, tile))
	if direct > 3*csr {
		t.Fatalf("direct CSC σ %.2f not comparable to direct CSR %.2f", direct, csr)
	}
}

// TestDirectNarrowsSpread: the max/min σ ratio across sparse formats
// shrinks under the direct architecture — most of the paper's spread is
// the format/architecture pairing, not the formats themselves.
func TestDirectNarrowsSpread(t *testing.T) {
	cfg := Default()
	tile := randomTile(7, 16, 0.2)
	spread := func(sig func(formats.Encoded) (float64, error)) float64 {
		lo, hi := 1e18, 0.0
		for _, k := range formats.Sparse() {
			s, err := sig(formats.Encode(k, tile))
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return hi / lo
	}
	dec := spread(cfg.Sigma)
	dir := spread(cfg.SigmaDirect)
	if dir >= dec {
		t.Fatalf("direct spread %.2f not below decompress spread %.2f", dir, dec)
	}
}

// TestDirectDenseUnchanged: dense gains nothing from direct consumption.
func TestDirectDenseUnchanged(t *testing.T) {
	cfg := Default()
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.3)
		enc := formats.Encode(formats.Dense, tile)
		return mustDirectCompute(t, cfg, enc) == mustCompute(t, cfg, enc)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectPositive: every format yields positive direct cycles on a
// non-empty tile.
func TestDirectPositive(t *testing.T) {
	cfg := Default()
	tile := randomTile(9, 16, 0.15)
	for _, k := range formats.All() {
		if c := mustDirectCompute(t, cfg, formats.Encode(k, tile)); c <= 0 {
			t.Fatalf("%v: direct cycles %d", k, c)
		}
	}
}
