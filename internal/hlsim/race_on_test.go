//go:build race

package hlsim

const raceEnabled = true
