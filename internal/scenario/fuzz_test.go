package scenario

import "testing"

// FuzzParse drives the kernel-spec grammar with arbitrary strings. The
// contract under fuzz: Parse never panics, every accepted spec passes
// Validate, and the canonical String form round-trips to the identical
// Spec — spec strings key result caches, so canonicalization must be a
// fixed point.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		// The grammar's canonical forms.
		"spmv", "bfs", "cg:60", "jacobi:3", "pagerank:10", "spmm:8",
		// Case-insensitive acceptance, boundary parameters.
		"CG:60", "SpMM:1", "cg:1048576",
		// Shapes Parse must reject without panicking.
		"", "cg", "spmm", "spmv:2", "bfs:1", "cg:0", "cg:-1", "cg:1048577",
		"cg:", ":8", "cg:60:1", "cg:9999999999999999999", "cg: 60",
		"spmv ", " spmv", "cg:6e1", "pägerank:1", "spmv\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := Parse(s)
		if err != nil {
			return
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted a spec Validate rejects: %+v: %v", s, sc, verr)
		}
		canon := sc.String()
		rt, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) -> %+v, but canonical form %q does not re-parse: %v", s, sc, canon, err)
		}
		if rt != sc {
			t.Fatalf("round trip drifted: Parse(%q)=%+v, Parse(%q)=%+v", s, sc, canon, rt)
		}
		if rt.String() != canon {
			t.Fatalf("String not a fixed point: %q -> %q", canon, rt.String())
		}
	})
}
