// Package scenario defines the kernel axis of a characterization: which
// sparse kernel a (workload, format, p) point is costed for, and how many
// SpMV-shaped iterations that kernel performs. The paper's question —
// "which format should this workload use?" — depends on the kernel: a
// one-shot SpMV pays every format's decompression latency in full, while
// 60 CG iterations amortize the one-time decomposition over the iteration
// stream, which can flip the best format (ROADMAP 4(c)).
//
// The grammar is deliberately tiny and stable, because spec strings key
// result caches and appear in CLI flags, HTTP parameters, NDJSON rows,
// and report artifacts:
//
//	spmv         one sparse matrix-vector multiplication (the default)
//	spmm:k       SpMM against a dense operand with k columns
//	cg:N         N conjugate-gradient iterations (one SpMV each)
//	jacobi:N     N Jacobi iterations (one SpMV each)
//	pagerank:N   N power iterations (one SpMV each)
//	bfs          level-synchronous BFS; iteration count is data-dependent
//	             (the number of frontier levels from vertex 0)
//
// A Spec is pure data: how its iteration stream is *priced* (analytic
// amortized cycles) or *measured* (the native exec iteration loop) is the
// backend's business. The package depends only on internal/matrix (for
// resolving BFS's data-dependent level count), so every layer — hlsim
// excepted, which speaks plain iteration counts — can share it without
// cycles.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"copernicus/internal/matrix"
)

// Kernel enumerates the sweepable kernels.
type Kernel int

// Kernels of the grammar, in canonical order.
const (
	SpMV Kernel = iota
	SpMM
	CG
	Jacobi
	PageRank
	BFS
	numKernels
)

// kernelNames maps Kernel to its canonical lower-case spec name.
var kernelNames = [numKernels]string{"spmv", "spmm", "cg", "jacobi", "pagerank", "bfs"}

// String names the kernel ("spmv", "cg", ...).
func (k Kernel) String() string {
	if k < 0 || k >= numKernels {
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// MaxN bounds the parameter of parameterized kernels (iterations, SpMM
// columns). Spec strings arrive from untrusted HTTP parameters and key
// compute fan-out, so the bound is part of the grammar, not a service
// nicety.
const MaxN = 1 << 20

// Spec is one point on the kernel axis.
type Spec struct {
	Kernel Kernel
	// N is the kernel's parameter: iteration count for cg/jacobi/pagerank,
	// dense-operand columns for spmm. It is 1 for spmv and 0 for bfs
	// (data-dependent; see Iterations).
	N int
}

// Default is the kernel every pre-kernel-axis API implied: one SpMV.
func Default() Spec { return Spec{Kernel: SpMV, N: 1} }

// Parse reads a spec string of the package grammar. Kernel names are
// case-insensitive; the canonical form is lower-case. Parameterized
// kernels require their parameter ("cg:60"), unparameterized ones reject
// it ("spmv:2" is an error, as is "bfs:3" — BFS's iteration count is the
// matrix's own level structure, not a request knob).
func Parse(s string) (Spec, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	var k Kernel = -1
	for i, kn := range kernelNames {
		if strings.EqualFold(name, kn) {
			k = Kernel(i)
			break
		}
	}
	if k < 0 {
		return Spec{}, fmt.Errorf(`scenario: unknown kernel %q (want spmv, spmm:k, cg:N, jacobi:N, pagerank:N, or bfs)`, s)
	}
	switch k {
	case SpMV, BFS:
		if hasArg {
			return Spec{}, fmt.Errorf("scenario: kernel %q takes no parameter (got %q)", k, s)
		}
		if k == SpMV {
			return Spec{Kernel: SpMV, N: 1}, nil
		}
		return Spec{Kernel: BFS}, nil
	default:
		if !hasArg {
			return Spec{}, fmt.Errorf("scenario: kernel %q needs a parameter (%s:N)", k, k)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > MaxN {
			return Spec{}, fmt.Errorf("scenario: bad %s parameter %q (want an integer in [1, %d])", k, arg, MaxN)
		}
		return Spec{Kernel: k, N: n}, nil
	}
}

// MustParse is Parse for compile-time-constant specs (report tables,
// tests, benchmarks); it panics on error. Never feed it request input —
// everything arriving over a wire or flag goes through Parse, whose
// error becomes the caller's 400.
func MustParse(s string) Spec {
	sc, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sc
}

// String renders the canonical spec form — the exact token that keys
// caches and appears on wires: "spmv", "spmm:8", "cg:60", "bfs".
func (s Spec) String() string {
	switch s.Kernel {
	case SpMV, BFS:
		return s.Kernel.String()
	default:
		return s.Kernel.String() + ":" + strconv.Itoa(s.N)
	}
}

// Validate reports whether the spec could have come from Parse.
func (s Spec) Validate() error {
	switch s.Kernel {
	case SpMV:
		if s.N != 1 {
			return fmt.Errorf("scenario: spmv with N=%d (want 1)", s.N)
		}
	case BFS:
		if s.N != 0 {
			return fmt.Errorf("scenario: bfs with N=%d (want 0: data-dependent)", s.N)
		}
	case SpMM, CG, Jacobi, PageRank:
		if s.N < 1 || s.N > MaxN {
			return fmt.Errorf("scenario: %s with N=%d outside [1, %d]", s.Kernel, s.N, MaxN)
		}
	default:
		return fmt.Errorf("scenario: unknown kernel %d", int(s.Kernel))
	}
	return nil
}

// Iterations resolves the spec to its concrete SpMV-shaped iteration
// count on matrix m: how many passes over the encoded operand the kernel
// streams. Fixed-count kernels ignore m; BFS resolves its data-dependent
// level count (a level-synchronous BFS performs one masked SpMV per
// frontier level), so the result is a property of the matrix's structure
// — deterministic, O(rows + nnz), and computed outside any timed region.
// SpMM resolves to its column count: the exec path multiplies the dense
// operand column by column, one traversal per column.
func (s Spec) Iterations(m *matrix.CSR) int {
	if s.Kernel == BFS {
		return BFSLevels(m)
	}
	if s.N < 1 {
		return 1
	}
	return s.N
}

// BFSLevels counts the frontier levels of a breadth-first traversal from
// vertex 0, treating m as a directed adjacency structure (an edge per
// stored non-zero). Unreached vertices do not extend the count; an empty
// or edgeless matrix resolves to 1 so a BFS spec never collapses to a
// zero-iteration kernel.
func BFSLevels(m *matrix.CSR) int {
	if m == nil || m.Rows == 0 {
		return 1
	}
	visited := make([]bool, m.Rows)
	frontier := []int{0}
	visited[0] = true
	levels := 0
	var next []int
	for len(frontier) > 0 {
		levels++
		next = next[:0]
		for _, u := range frontier {
			for k := m.RowPtr[u]; k < m.RowPtr[u+1]; k++ {
				v := m.Col[k]
				if v < m.Rows && !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	if levels < 1 {
		return 1
	}
	return levels
}
