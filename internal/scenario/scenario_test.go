package scenario

import (
	"testing"

	"copernicus/internal/gen"
	"copernicus/internal/matrix"
)

// TestParseCanonicalRoundTrip: every canonical spec string parses to a
// valid Spec whose String() is the input again — the property the cache
// keys and wire forms rely on.
func TestParseCanonicalRoundTrip(t *testing.T) {
	for _, s := range []string{"spmv", "spmm:8", "cg:60", "jacobi:100", "pagerank:20", "bfs", "cg:1", "spmm:1048576"} {
		sc, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse(%q) produced invalid spec: %v", s, err)
		}
		if got := sc.String(); got != s {
			t.Fatalf("Parse(%q).String() = %q", s, got)
		}
	}
}

// TestParseCaseInsensitiveNamesCanonicalOutput: names parse
// case-insensitively but String always renders the canonical lower-case
// form — two spellings of one kernel must share a cache entry.
func TestParseCaseInsensitiveNamesCanonicalOutput(t *testing.T) {
	for in, want := range map[string]string{"SPMV": "spmv", "Cg:60": "cg:60", "BFS": "bfs", "SpMM:4": "spmm:4"} {
		sc, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := sc.String(); got != want {
			t.Fatalf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

// TestParseRejectsBadSpecs: the grammar's error cases — unknown kernels,
// missing/forbidden parameters, and out-of-range parameters.
func TestParseRejectsBadSpecs(t *testing.T) {
	for _, s := range []string{
		"", "gemm", "cg", "jacobi", "pagerank", "spmm", // missing parameter
		"spmv:2", "bfs:3", // parameter where none is allowed
		"cg:0", "cg:-1", "cg:x", "cg:1048577", "spmm:0", // out of range / non-integer
		"cg:60:1", // trailing junk
	} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", s)
		}
	}
}

// TestDefaultIsOneSpMV: the default spec is the pre-kernel-axis implied
// kernel — one SpMV, canonical string "spmv", one iteration on any
// matrix.
func TestDefaultIsOneSpMV(t *testing.T) {
	d := Default()
	if d.Kernel != SpMV || d.N != 1 || d.String() != "spmv" {
		t.Fatalf("Default() = %+v (%q)", d, d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if it := d.Iterations(gen.Random(32, 0.1, 1)); it != 1 {
		t.Fatalf("Default().Iterations = %d", it)
	}
}

// TestIterationsFixedKernels: parameterized kernels resolve to their
// parameter regardless of the matrix.
func TestIterationsFixedKernels(t *testing.T) {
	m := gen.Random(64, 0.05, 2)
	for spec, want := range map[string]int{"cg:60": 60, "jacobi:7": 7, "pagerank:20": 20, "spmm:8": 8, "spmv": 1} {
		if got := MustParse(spec).Iterations(m); got != want {
			t.Fatalf("%s.Iterations = %d, want %d", spec, got, want)
		}
	}
}

// TestBFSLevelsChain: a directed chain 0→1→…→n-1 has exactly n frontier
// levels (vertex 0 is level one), the fully deterministic case.
func TestBFSLevelsChain(t *testing.T) {
	const n = 9
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, 1)
	}
	m := b.Build()
	if got := BFSLevels(m); got != n {
		t.Fatalf("BFSLevels(chain %d) = %d, want %d", n, got, n)
	}
	if got := MustParse("bfs").Iterations(m); got != n {
		t.Fatalf("bfs.Iterations(chain %d) = %d, want %d", n, got, n)
	}
}

// TestBFSLevelsDegenerate: empty and edgeless matrices resolve to 1 —
// a BFS spec never collapses to a zero-iteration kernel.
func TestBFSLevelsDegenerate(t *testing.T) {
	if got := BFSLevels(nil); got != 1 {
		t.Fatalf("BFSLevels(nil) = %d", got)
	}
	if got := BFSLevels(matrix.NewBuilder(5, 5).Build()); got != 1 {
		t.Fatalf("BFSLevels(edgeless) = %d", got)
	}
	// Disconnected vertices don't extend the count: an isolated self-loop
	// at vertex 3 is unreachable from 0.
	b := matrix.NewBuilder(4, 4)
	b.Add(0, 1, 1)
	b.Add(3, 3, 1)
	if got := BFSLevels(b.Build()); got != 2 {
		t.Fatalf("BFSLevels(0->1 plus isolated 3) = %d, want 2", got)
	}
}

// TestValidateRejectsHandBuiltBadSpecs: Validate catches specs that
// could not have come from Parse.
func TestValidateRejectsHandBuiltBadSpecs(t *testing.T) {
	for _, sc := range []Spec{
		{Kernel: SpMV, N: 2},
		{Kernel: BFS, N: 1},
		{Kernel: CG, N: 0},
		{Kernel: CG, N: MaxN + 1},
		{Kernel: Kernel(99), N: 1},
		{Kernel: -1, N: 1},
	} {
		if err := sc.Validate(); err == nil {
			t.Fatalf("Validate(%+v) succeeded, want error", sc)
		}
	}
}

// TestMustParsePanics: MustParse panics on a bad spec instead of
// returning a zero value that would silently mean spmv.
func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(bad) did not panic")
		}
	}()
	MustParse("cg")
}
