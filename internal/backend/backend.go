// Package backend is the characterization seam of Copernicus: it
// separates *what* a (workload, format, partition size) point costs from
// *how* that cost is obtained. The paper's primary instrument — the
// analytic HLS cycle model of internal/hlsim — becomes one Backend among
// possibly many; a second, Native, measures real wall time of the warm
// streaming SpMV on the host CPU. Because both backends evaluate the same
// encode-once hlsim.Plan, everything upstream of costing (partitioning,
// encoding, the decode cross-check, the functional SpMV that is verified
// against the software reference) is shared bit for bit, and only the
// cost axis differs — which is exactly what makes model-vs-measured
// cross-validation meaningful.
//
// Plans deliberately stay backend-independent: a Plan holds the sparse
// partitioning, the per-format encodings, and the analytic cycle tables,
// all of which every backend reuses. Keying plan caches by backend would
// only duplicate encode work; backend identity instead keys *results*
// (core.Result.Backend, the service result cache, report artifacts).
package backend

import (
	"context"
	"fmt"
	"sort"

	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/scenario"
)

// Measurement is one costed evaluation of a (plan, kernel, format) point.
type Measurement struct {
	// Run carries the functional SpMV output (verified upstream against
	// the software reference) and the plan's cached analytic cycle
	// totals. Structural metrics — σ, balance, per-tile cycle means,
	// utilizations — derive from Run under every backend: they describe
	// the format and the modelled hardware, not the costing method or
	// the kernel's iteration count.
	Run *hlsim.Result

	// Seconds is the backend's cost of one full kernel invocation of the
	// point — all Iterations of it, not one SpMV: amortized modelled
	// cycles at the configured clock for Analytic, measured wall time of
	// the warm exec iteration loop for Native. For the spmv kernel this
	// is the cost of one SpMV, exactly as before the kernel axis.
	Seconds float64

	// Iterations is the kernel's resolved SpMV-shaped iteration count
	// that Seconds covers: 1 for spmv, N for cg:N/jacobi:N/pagerank:N,
	// the column count for spmm:k, and the matrix's frontier level count
	// for bfs.
	Iterations int

	// Measured is true when Seconds is a wall-clock measurement rather
	// than a model prediction.
	Measured bool

	// Runs and Threads record the measurement methodology for measured
	// backends: the number of timed repetitions (Seconds is their
	// minimum) and the effective SpMV fan-out actually used — the
	// goroutine count each multiplication spread its block rows over,
	// not the machine width. Zero for modelled backends.
	Runs    int
	Threads int

	// Degraded is true when the requested backend could not produce this
	// measurement and a fallback costing stood in (Native falling back to
	// the analytic model after transient measurement failures exhaust
	// their retry budget or trip the breaker); DegradedReason says why.
	// A degraded measurement is complete and correct under the fallback —
	// Measured is false, and the annotation rides the result row so
	// clients can see which points lost their wall-clock costing.
	Degraded       bool
	DegradedReason string
}

// Backend costs characterization points on prepared streaming plans.
// Implementations must be safe for concurrent use.
type Backend interface {
	// ID is the backend's short stable identifier ("analytic",
	// "native"). It keys result caches, names CLI flags and service
	// query parameters, and is recorded in every Result and benchmark
	// artifact, so it must never change for an existing backend.
	ID() string

	// Evaluate costs one (plan, kernel, format) point, multiplying by x.
	// The kernel spec selects what is priced or measured: one SpMV, an
	// SpMM, or an N-iteration solver loop (Analytic amortizes the
	// one-time decomposition over the iterations; Native times the real
	// exec iteration loop). The plan's encode-once state is shared across
	// backends and kernels; Evaluate pays only per-evaluation work (the
	// functional dot products, plus timing for measured backends). A
	// canceled ctx aborts promptly — between warmup tile chunks for every
	// backend, and between iterations and timed samples for measured ones
	// — returning ctx.Err() without corrupting shared plan state.
	Evaluate(ctx context.Context, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x []float64) (Measurement, error)

	// Parallelizable reports whether concurrent Evaluate calls preserve
	// result quality. The analytic model is pure and parallelizes
	// freely; wall-clock measurement under contention is noise, so the
	// engine serializes sweep groups when this is false.
	Parallelizable() bool
}

// registry holds the named backends selectable from CLIs and services.
// Construction is cheap and stateless, so For returns fresh values.
var registry = map[string]func() Backend{
	"analytic": func() Backend { return Analytic{} },
	"native":   func() Backend { return &Native{} },
}

// For resolves a backend by its ID. The empty string selects the
// analytic default, preserving pre-backend behavior everywhere a
// backend is optional.
func For(id string) (Backend, error) {
	if id == "" {
		id = "analytic"
	}
	mk, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (want one of %v)", id, IDs())
	}
	return mk(), nil
}

// IDs lists the selectable backend identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
