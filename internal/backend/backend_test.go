package backend

import (
	"context"
	"math"
	"runtime"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/scenario"
)

func testPlan(t *testing.T) *hlsim.Plan {
	t.Helper()
	m := gen.Random(128, 0.05, 11)
	pl, err := hlsim.NewPlan(hlsim.Default(), m, 16)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// TestAnalyticMatchesPlanRun: the analytic backend is a pass-through over
// Plan.Run — same seconds, same cycle totals, same functional output.
func TestAnalyticMatchesPlanRun(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	for _, k := range formats.Core() {
		want, err := pl.Run(k, x)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := Analytic{}.Evaluate(context.Background(), pl, scenario.Default(), k, x)
		if err != nil {
			t.Fatal(err)
		}
		if meas.Measured {
			t.Fatalf("%v: analytic measurement marked Measured", k)
		}
		if meas.Seconds != want.Seconds() {
			t.Fatalf("%v: analytic seconds %v != plan seconds %v", k, meas.Seconds, want.Seconds())
		}
		if meas.Run.PipelinedCycles != want.PipelinedCycles || meas.Run.MemCycles != want.MemCycles {
			t.Fatalf("%v: analytic cycle totals diverge from Plan.Run", k)
		}
		for i := range want.Y {
			if meas.Run.Y[i] != want.Y[i] {
				t.Fatalf("%v: functional output diverges at row %d", k, i)
			}
		}
	}
}

// TestNativeMeasures: the native backend produces a positive wall-time
// measurement with its methodology recorded, and the functional output
// still equals the software reference.
func TestNativeMeasures(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	ref := pl.Matrix().MulVec(x)
	n := &Native{Runs: 3}
	meas, err := n.Evaluate(context.Background(), pl, scenario.Default(), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if !meas.Measured {
		t.Fatal("native measurement not marked Measured")
	}
	if meas.Seconds <= 0 {
		t.Fatalf("native seconds %v, want > 0", meas.Seconds)
	}
	if meas.Runs != 3 {
		t.Fatalf("native runs %d, want 3", meas.Runs)
	}
	if meas.Threads < 1 {
		t.Fatalf("native threads %d, want >= 1", meas.Threads)
	}
	for i := range ref {
		if math.Abs(meas.Run.Y[i]-ref[i]) > 1e-9 {
			t.Fatalf("native functional output diverges at row %d: %g vs %g", i, meas.Run.Y[i], ref[i])
		}
	}
}

// TestNativeThreads: the fan-out is validated against GOMAXPROCS,
// recorded as the effective count actually used (1 when unset), and a
// multi-thread measurement still reproduces the software reference.
func TestNativeThreads(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	ref := pl.Matrix().MulVec(x)
	maxT := runtime.GOMAXPROCS(0)

	if _, err := (&Native{Threads: maxT + 1}).Evaluate(context.Background(), pl, scenario.Default(), formats.CSR, x); err == nil {
		t.Fatalf("threads=%d accepted with GOMAXPROCS=%d", maxT+1, maxT)
	}

	for _, threads := range []int{0, 1, maxT} {
		n := &Native{Runs: 2, Threads: threads}
		meas, err := n.Evaluate(context.Background(), pl, scenario.Default(), formats.ELL, x)
		if err != nil {
			t.Fatal(err)
		}
		want := threads
		if want == 0 {
			want = 1
		}
		if meas.Threads != want {
			t.Fatalf("Threads=%d recorded as %d, want effective %d", threads, meas.Threads, want)
		}
		for i := range ref {
			if math.Abs(meas.Run.Y[i]-ref[i]) > 1e-9 {
				t.Fatalf("threads=%d: output diverges at row %d", threads, i)
			}
		}
	}
}

// TestNativeConcurrentEvaluates: concurrent multi-thread Evaluates on a
// shared plan serialize on measureMu without deadlocking against the
// exec worker pool — exec workers never take the measurement lock, and
// dispatch is non-blocking, so lock-holders never wait on a specific
// worker.
func TestNativeConcurrentEvaluates(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	threads := min(2, runtime.GOMAXPROCS(0))
	kinds := []formats.Kind{formats.CSR, formats.ELL, formats.DIA, formats.CSC}
	errs := make(chan error, len(kinds))
	for _, k := range kinds {
		go func(k formats.Kind) {
			_, err := (&Native{Runs: 1, Threads: threads}).Evaluate(context.Background(), pl, scenario.Default(), k, x)
			errs <- err
		}(k)
	}
	for range kinds {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestNativeDefaultRuns: zero Runs selects the documented default.
func TestNativeDefaultRuns(t *testing.T) {
	pl := testPlan(t)
	meas, err := (&Native{}).Evaluate(context.Background(), pl, scenario.Default(), formats.COO, ones(pl.Matrix().Cols))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Runs != DefaultRuns {
		t.Fatalf("default runs %d, want %d", meas.Runs, DefaultRuns)
	}
}

// TestNativePropagatesPlanErrors: an unknown format kind is an error from
// the native backend too, not a panic.
func TestNativePropagatesPlanErrors(t *testing.T) {
	pl := testPlan(t)
	if _, err := (&Native{}).Evaluate(context.Background(), pl, scenario.Default(), formats.Kind(99), ones(pl.Matrix().Cols)); err == nil {
		t.Fatal("native accepted an unknown format kind")
	}
}

// TestFor: the registry resolves IDs, defaults the empty string to
// analytic, and rejects unknown names.
func TestFor(t *testing.T) {
	for id, parallel := range map[string]bool{"analytic": true, "native": false, "": true} {
		b, err := For(id)
		if err != nil {
			t.Fatalf("For(%q): %v", id, err)
		}
		if id != "" && b.ID() != id {
			t.Fatalf("For(%q).ID() = %q", id, b.ID())
		}
		if b.Parallelizable() != parallel {
			t.Fatalf("For(%q).Parallelizable() = %v", id, b.Parallelizable())
		}
	}
	if b, err := For(""); err != nil || b.ID() != "analytic" {
		t.Fatalf("For(\"\") = %v, %v; want analytic", b, err)
	}
	if _, err := For("roofline"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	ids := IDs()
	if len(ids) != 2 || ids[0] != "analytic" || ids[1] != "native" {
		t.Fatalf("IDs() = %v", ids)
	}
}
