package backend

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/resilience"
	"copernicus/internal/scenario"
)

// Native measures what the analytic backend predicts: the real wall time
// of the warm tile-parallel kernel through the format's own executable
// layout (Plan.RunExecInto, driven per iteration by Plan.RunKernelInto)
// on the host CPU. It reuses the encode-once plan, so partitioning,
// encoding, and the decode cross-check are identical to the analytic path
// and excluded from the timing — the measurement covers exactly the
// iteration traversal the model prices, walking the format's real encoded
// layout. A multi-iteration kernel spec (cg:60, spmm:8, ...) times the
// whole resolved iteration loop as one unit, so the reported seconds is
// the measured counterpart of the analytic amortized kernel cost.
//
// Methodology — unchanged from the single-SpMV path: one untimed warm-up
// call triggers encode/verify, the resident exec encodings, and the
// output allocation; the timed phase then takes Runs samples and reports
// their minimum (the least-disturbed observation of a deterministic
// computation). Samples shorter than minSample are batched — several
// kernel invocations per timer read — so clock granularity cannot
// dominate small matrices (a 60-iteration kernel usually self-batches
// past the threshold at batch 1). Threads selects the fan-out of each
// SpMV (1..GOMAXPROCS; the recorded Measurement.Threads is the effective
// count actually used, 1 when unset).
//
// Lock ordering: the timed region holds the process-wide measureMu while
// RunExecInto borrows parked ExecPool workers. The two are independent —
// exec workers only run format kernels and never take measureMu (or any
// backend lock), and measureMu holders never wait for a *specific*
// worker (dispatch is non-blocking and degrades to serial) — so a
// thread-count sweep holding the lock cannot deadlock against concurrent
// exec or encode-pool activity.
//
// The absolute numbers are host CPU nanoseconds, not accelerator cycles:
// they are comparable across formats and thread counts on one machine
// (rank orderings, ns-per-nnz trends, parallel speedups), not to the
// modelled FPGA latencies.
type Native struct {
	// Runs is the number of timed samples; the minimum is reported.
	// Zero or negative selects DefaultRuns.
	Runs int

	// Threads is the SpMV fan-out: block rows are spread over up to this
	// many goroutines per multiplication. Zero selects 1 (the serial
	// kernel walk); values above GOMAXPROCS are rejected, since the extra
	// goroutines could only time-slice and distort the measurement.
	Threads int
}

// DefaultRuns is the min-of-k sample count used when Native.Runs is
// unset.
const DefaultRuns = 5

// minSample is the shortest timed sample the measurement accepts before
// batching multiple SpMVs per timer read.
const minSample = 100 * time.Microsecond

// maxBatch bounds the batching so calibration cannot run away on
// degenerate (near-empty) matrices.
const maxBatch = 4096

// measureMu serializes the timed region across every Native value in the
// process. Wall-clock samples contend for the same cores no matter which
// instance takes them — Parallelizable() already makes Engine sweeps
// serial, but independent callers (concurrent service requests resolve a
// fresh Native each) would otherwise time each other's load. One
// measurement at a time is a property of the host, not of an instance.
var measureMu sync.Mutex

// ptNativeMeasure lets the chaos suite fail the timed phase of a native
// evaluation: a transient injection exercises the retry, a persistent
// one trips the breaker into analytic degradation.
var ptNativeMeasure = faults.Point("backend.native.measure")

// Measurement resilience, process-wide like measureMu: a flaky timed
// phase (injected fault, or a future real source like a perf-counter
// hiccup) is retried with backoff; past the breaker threshold, native
// evaluations degrade to the analytic model — annotated, not failed —
// until the cooldown admits a probe. Fresh Native values are resolved
// per request, so per-instance state would never accumulate; host
// measurement health is a property of the process.
var (
	measureBreaker atomic.Pointer[resilience.Breaker]

	natRetries  atomic.Uint64 // retried measurement attempts
	natDegraded atomic.Uint64 // evaluations degraded to analytic
	natFailures atomic.Uint64 // measurement attempts that failed
)

// measureRetry is the timed-phase retry policy: a few quick attempts
// with jittered millisecond backoff. Classification is the package
// default (transient errors and recovered panics retry; context
// cancellations and plain errors do not).
var measureRetry = resilience.Policy{
	MaxAttempts: 3,
	BaseDelay:   time.Millisecond,
	MaxDelay:    10 * time.Millisecond,
	OnRetry:     func(int, error, time.Duration) { natRetries.Add(1) },
}

func init() {
	// Threshold 3 / 5s cooldown: a persistently failing timed phase stops
	// burning its 3-attempt retry budget per row after 3 consecutive
	// degraded evaluations, and measurement is re-probed twice a minute.
	measureBreaker.Store(resilience.NewBreaker(3, 5*time.Second))
}

// MeasureBreaker returns the process-wide breaker guarding native
// measurement (stats surfaces snapshot it).
func MeasureBreaker() *resilience.Breaker { return measureBreaker.Load() }

// SetMeasureBreaker replaces the measurement breaker — tests inject
// thresholds and clocks. nil restores the default.
func SetMeasureBreaker(b *resilience.Breaker) {
	if b == nil {
		b = resilience.NewBreaker(3, 5*time.Second)
	}
	measureBreaker.Store(b)
}

// NativeStats is the failure observability of native measurement,
// surfaced on /v1/stats.
type NativeStats struct {
	Retries  uint64                     `json:"retries"`
	Degraded uint64                     `json:"degraded"`
	Failures uint64                     `json:"failures"`
	Breaker  resilience.BreakerSnapshot `json:"breaker"`
}

// NativeMeasureStats snapshots the native measurement failure counters
// and breaker state.
func NativeMeasureStats() NativeStats {
	return NativeStats{
		Retries:  natRetries.Load(),
		Degraded: natDegraded.Load(),
		Failures: natFailures.Load(),
		Breaker:  MeasureBreaker().Snapshot(),
	}
}

// ResetNativeMeasureStats zeroes the counters and restores a fresh
// default breaker — test isolation.
func ResetNativeMeasureStats() {
	natRetries.Store(0)
	natDegraded.Store(0)
	natFailures.Store(0)
	SetMeasureBreaker(nil)
}

// ID returns "native".
func (*Native) ID() string { return "native" }

// Parallelizable is false: concurrent wall-clock samples contend for
// cores and inflate each other, so sweeps serialize native points.
func (*Native) Parallelizable() bool { return false }

// Evaluate measures the warm kernel of one (plan, kernel, format) point:
// the timed unit is one full kernel invocation — the spec's resolved
// iteration count of back-to-back exec SpMVs. A canceled ctx aborts the
// run between the warmup's tile chunks, between iterations, between
// calibration batches, and between timed samples — a measurement loop is
// never left mid-flight holding the process-wide measurement lock.
func (n *Native) Evaluate(ctx context.Context, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x []float64) (Measurement, error) {
	threads := n.Threads
	if threads <= 0 {
		threads = 1
	}
	if maxT := runtime.GOMAXPROCS(0); threads > maxT {
		return Measurement{}, fmt.Errorf("backend: native threads %d exceeds GOMAXPROCS %d", threads, maxT)
	}
	iters := sc.Iterations(pl.Matrix())
	r := new(hlsim.Result)
	// Warm-up: encode, decode-verify, the resident exec encodings, and
	// the output buffer allocation all happen here, outside the timed
	// region. The warm RunKernelInto path is allocation-free, so the
	// samples below time pure kernel work.
	if err := pl.RunExecIntoContext(ctx, k, x, r, threads); err != nil {
		return Measurement{}, err
	}
	if err := ctx.Err(); err != nil {
		return Measurement{}, err
	}

	runs := n.Runs
	if runs <= 0 {
		runs = DefaultRuns
	}

	// The timed phase runs behind the process-wide breaker with a bounded
	// retry: a transiently failing measurement is re-sampled per policy,
	// and a persistently failing one — retry budget exhausted, breaker
	// past its threshold — degrades this evaluation to the analytic model
	// with an annotation instead of erroring the sweep row. The warm-up
	// above already verified the point, so the fallback costs only the
	// modelled pricing.
	br := MeasureBreaker()
	if err := br.Allow(); err != nil {
		return n.degrade(ctx, pl, sc, k, x, "measurement breaker open")
	}
	var meas Measurement
	err := resilience.Retry(ctx, measureRetry, func(ctx context.Context) error {
		m, merr := n.measure(ctx, pl, k, x, r, threads, iters, runs)
		if merr != nil {
			natFailures.Add(1)
			return merr
		}
		meas = m
		return nil
	})
	switch {
	case err == nil:
		br.Success()
		return meas, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		br.Cancel() // aborted, not unhealthy
		return Measurement{}, err
	case resilience.Retryable(err):
		br.Failure()
		return n.degrade(ctx, pl, sc, k, x, fmt.Sprintf("measurement failed after %d attempts: %v", measureRetry.MaxAttempts, err))
	default:
		br.Cancel() // a plain error says nothing about measurement health
		return Measurement{}, err
	}
}

// measure is one attempt at the timed phase: calibrate the batch size,
// then take runs min-of-k samples, all under the process-wide
// measurement lock.
func (n *Native) measure(ctx context.Context, pl *hlsim.Plan, k formats.Kind, x []float64, r *hlsim.Result, threads, iters, runs int) (Measurement, error) {
	if err := ptNativeMeasure.Hit(); err != nil {
		return Measurement{}, err
	}
	measureMu.Lock()
	defer measureMu.Unlock()

	// Calibrate the batch size so one sample is long enough to trust.
	batch := 1
	for batch < maxBatch {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		start := time.Now()
		for i := 0; i < batch; i++ {
			if err := pl.RunKernelInto(ctx, k, x, r, threads, iters); err != nil {
				return Measurement{}, err
			}
		}
		if time.Since(start) >= minSample {
			break
		}
		batch *= 2
	}

	best := time.Duration(1<<63 - 1)
	for s := 0; s < runs; s++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		start := time.Now()
		for i := 0; i < batch; i++ {
			if err := pl.RunKernelInto(ctx, k, x, r, threads, iters); err != nil {
				return Measurement{}, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return Measurement{
		Run:        r,
		Seconds:    best.Seconds() / float64(batch),
		Iterations: iters,
		Measured:   true,
		Runs:       runs,
		Threads:    threads,
	}, nil
}

// degrade falls back to the analytic model for a point whose wall-clock
// measurement is unavailable, annotating the Measurement so the
// degradation is visible on the result row (core.Result.Degraded, the
// service's degraded/degraded_reason fields).
func (n *Native) degrade(ctx context.Context, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x []float64, reason string) (Measurement, error) {
	natDegraded.Add(1)
	m, err := (Analytic{}).Evaluate(ctx, pl, sc, k, x)
	if err != nil {
		return Measurement{}, err
	}
	m.Degraded = true
	m.DegradedReason = "native: " + reason + "; analytic fallback"
	return m, nil
}
