package backend

import (
	"context"

	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
)

// Analytic is the paper's instrument: the deterministic HLS-derived cycle
// model of internal/hlsim, costed at the plan's configured clock. It is
// bit-identical to the pre-backend characterization path — Evaluate is
// exactly Plan.Run followed by Result.Seconds, with no arithmetic of its
// own — so every regenerated artifact matches byte for byte (the golden
// test in internal/core enforces this).
type Analytic struct{}

// ID returns "analytic".
func (Analytic) ID() string { return "analytic" }

// Parallelizable is true: the model is a pure function of its inputs.
func (Analytic) Parallelizable() bool { return true }

// Evaluate runs the point through the modelled accelerator and reports
// the modelled seconds. Cancellation aborts a cold plan's warmup between
// tile chunks; a warm point is pure arithmetic and runs to completion.
func (Analytic) Evaluate(ctx context.Context, pl *hlsim.Plan, k formats.Kind, x []float64) (Measurement, error) {
	run, err := pl.RunContext(ctx, k, x)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Run: run, Seconds: run.Seconds()}, nil
}
