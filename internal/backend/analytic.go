package backend

import (
	"context"

	"copernicus/internal/formats"
	"copernicus/internal/hlsim"
	"copernicus/internal/scenario"
)

// Analytic is the paper's instrument: the deterministic HLS-derived cycle
// model of internal/hlsim, costed at the plan's configured clock. For the
// spmv kernel it is bit-identical to the pre-backend characterization
// path — Evaluate is exactly Plan.Run followed by Result.Seconds, with no
// arithmetic of its own (the golden test in internal/core enforces this).
// Iterative kernels are priced by the amortized model
// (hlsim.Plan.KernelCycles): the one-time per-tile decomposition is paid
// on the first iteration only, warm iterations pay max(mem, dot); spmm:k
// uses the RunSpMM per-tile model (decomposition once, dots × columns).
type Analytic struct{}

// ID returns "analytic".
func (Analytic) ID() string { return "analytic" }

// Parallelizable is true: the model is a pure function of its inputs.
func (Analytic) Parallelizable() bool { return true }

// Evaluate runs the point through the modelled accelerator and reports
// the kernel's amortized modelled seconds. Cancellation aborts a cold
// plan's warmup between tile chunks; a warm point is pure arithmetic and
// runs to completion.
func (Analytic) Evaluate(ctx context.Context, pl *hlsim.Plan, sc scenario.Spec, k formats.Kind, x []float64) (Measurement, error) {
	run, err := pl.RunContext(ctx, k, x)
	if err != nil {
		return Measurement{}, err
	}
	iters := sc.Iterations(pl.Matrix())
	if sc.Kernel == scenario.SpMV {
		// The pre-kernel-axis expression, untouched: seconds is
		// run.Seconds() itself, not a recomputation that happens to be
		// equal.
		return Measurement{Run: run, Seconds: run.Seconds(), Iterations: 1}, nil
	}
	var cycles uint64
	if sc.Kernel == scenario.SpMM {
		cycles, err = pl.SpMMCycles(ctx, k, iters)
	} else {
		cycles, err = pl.KernelCycles(ctx, k, iters)
	}
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Run:        run,
		Seconds:    pl.Config().CycleSeconds(cycles),
		Iterations: iters,
	}, nil
}
