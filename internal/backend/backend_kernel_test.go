package backend

import (
	"context"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/scenario"
)

// TestAnalyticKernelAmortizedSeconds: for an iterative kernel the analytic
// backend's seconds are exactly the amortized cycle total at the plan's
// clock — no arithmetic beyond CycleSeconds(KernelCycles) — and the
// resolved iteration count is recorded.
func TestAnalyticKernelAmortizedSeconds(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	ctx := context.Background()
	for _, k := range []formats.Kind{formats.CSR, formats.SELLCS} {
		meas, err := Analytic{}.Evaluate(ctx, pl, scenario.MustParse("cg:60"), k, x)
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := pl.KernelCycles(ctx, k, 60)
		if err != nil {
			t.Fatal(err)
		}
		if want := pl.Config().CycleSeconds(cycles); meas.Seconds != want {
			t.Fatalf("%v: cg:60 seconds %v, want CycleSeconds(KernelCycles(60)) = %v", k, meas.Seconds, want)
		}
		if meas.Iterations != 60 {
			t.Fatalf("%v: cg:60 Iterations = %d", k, meas.Iterations)
		}
		if meas.Measured {
			t.Fatalf("%v: analytic kernel measurement marked Measured", k)
		}

		spmv, err := Analytic{}.Evaluate(ctx, pl, scenario.Default(), k, x)
		if err != nil {
			t.Fatal(err)
		}
		if spmv.Iterations != 1 {
			t.Fatalf("%v: spmv Iterations = %d", k, spmv.Iterations)
		}
		if meas.Seconds <= spmv.Seconds {
			t.Fatalf("%v: 60 amortized iterations (%v s) not above one SpMV (%v s)", k, meas.Seconds, spmv.Seconds)
		}
	}
}

// TestAnalyticSpMMSeconds: spmm:k routes through the SpMM per-tile model,
// with the column count recorded as the iteration count.
func TestAnalyticSpMMSeconds(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	ctx := context.Background()
	meas, err := Analytic{}.Evaluate(ctx, pl, scenario.MustParse("spmm:8"), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := pl.SpMMCycles(ctx, formats.CSR, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := pl.Config().CycleSeconds(cycles); meas.Seconds != want {
		t.Fatalf("spmm:8 seconds %v, want CycleSeconds(SpMMCycles(8)) = %v", meas.Seconds, want)
	}
	if meas.Iterations != 8 {
		t.Fatalf("spmm:8 Iterations = %d", meas.Iterations)
	}
}

// TestAnalyticBFSResolvesLevels: the data-dependent kernel records the
// matrix's own frontier level count as its iteration count.
func TestAnalyticBFSResolvesLevels(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	meas, err := Analytic{}.Evaluate(context.Background(), pl, scenario.MustParse("bfs"), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if want := scenario.BFSLevels(pl.Matrix()); meas.Iterations != want {
		t.Fatalf("bfs Iterations = %d, BFSLevels = %d", meas.Iterations, want)
	}
}

// TestNativeRecordsIterations: the native backend resolves the spec's
// iteration count, times that many exec passes as one invocation, and
// reports the count alongside the measurement.
func TestNativeRecordsIterations(t *testing.T) {
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	n := &Native{Runs: 2}
	meas, err := n.Evaluate(context.Background(), pl, scenario.MustParse("cg:3"), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Iterations != 3 {
		t.Fatalf("native cg:3 Iterations = %d", meas.Iterations)
	}
	if !meas.Measured || meas.Seconds <= 0 {
		t.Fatalf("native cg:3 measurement = {Measured: %v, Seconds: %v}", meas.Measured, meas.Seconds)
	}
	spmv, err := n.Evaluate(context.Background(), pl, scenario.Default(), formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if spmv.Iterations != 1 {
		t.Fatalf("native spmv Iterations = %d", spmv.Iterations)
	}
}
