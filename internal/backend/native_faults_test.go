package backend

import (
	"context"
	"strings"
	"testing"
	"time"

	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/resilience"
	"copernicus/internal/scenario"
)

// resetMeasure restores the process-wide measurement state between tests:
// counters, breaker, and any armed fault point.
func resetMeasure(t *testing.T) {
	t.Helper()
	ResetNativeMeasureStats()
	t.Cleanup(func() {
		faults.DisarmAll()
		ResetNativeMeasureStats()
	})
}

// TestNativeRetriesTransientFault: a single transient failure of the
// timed phase is retried and the evaluation still returns a real
// measurement.
func TestNativeRetriesTransientFault(t *testing.T) {
	resetMeasure(t)
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	faults.Point("backend.native.measure").Arm(faults.Injection{Times: 1, Transient: true})

	n := &Native{Runs: 1}
	m, err := n.Evaluate(context.Background(), pl, scenario.MustParse("spmv"), formats.CSR, x)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !m.Measured || m.Degraded {
		t.Fatalf("want measured non-degraded result after retry, got Measured=%v Degraded=%v", m.Measured, m.Degraded)
	}
	st := NativeMeasureStats()
	if st.Retries < 1 || st.Failures < 1 {
		t.Fatalf("stats should record the retried failure: %+v", st)
	}
	if st.Breaker.State != "closed" || st.Breaker.Failures != 0 {
		t.Fatalf("a retried success must leave the breaker closed and clean: %+v", st.Breaker)
	}
}

// TestNativeDegradesOnPersistentFault: a persistently failing timed
// phase exhausts the retry budget and degrades to the annotated
// analytic fallback instead of erroring the row.
func TestNativeDegradesOnPersistentFault(t *testing.T) {
	resetMeasure(t)
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	faults.Point("backend.native.measure").Arm(faults.Injection{Transient: true})

	sc := scenario.MustParse("spmv")
	n := &Native{Runs: 1}
	m, err := n.Evaluate(context.Background(), pl, sc, formats.CSR, x)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Measured {
		t.Fatal("degraded measurement must not claim Measured")
	}
	if !m.Degraded || !strings.Contains(m.DegradedReason, "analytic fallback") {
		t.Fatalf("want degraded annotation, got Degraded=%v reason=%q", m.Degraded, m.DegradedReason)
	}
	// The fallback is the analytic model's answer, bit for bit.
	want, err := (Analytic{}).Evaluate(context.Background(), pl, sc, formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds != want.Seconds || m.Iterations != want.Iterations {
		t.Fatalf("degraded costing %v/%d != analytic %v/%d", m.Seconds, m.Iterations, want.Seconds, want.Iterations)
	}
	st := NativeMeasureStats()
	if st.Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Degraded)
	}
	if st.Failures < uint64(measureRetry.MaxAttempts) {
		t.Fatalf("failures = %d, want every attempt counted (>= %d)", st.Failures, measureRetry.MaxAttempts)
	}
}

// TestNativeBreakerOpensAndShortCircuits: after threshold consecutive
// degraded evaluations the breaker opens and further evaluations skip
// the retry loop entirely, degrading immediately; after the cooldown a
// half-open probe readmits measurement and a success re-closes it.
func TestNativeBreakerOpensAndShortCircuits(t *testing.T) {
	resetMeasure(t)
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	sc := scenario.MustParse("spmv")

	now := time.Unix(0, 0)
	SetMeasureBreaker(resilience.NewBreakerClock(2, time.Minute, func() time.Time { return now }))
	pt := faults.Point("backend.native.measure")
	pt.Arm(faults.Injection{Transient: true})

	n := &Native{Runs: 1}
	for i := 0; i < 2; i++ {
		m, err := n.Evaluate(context.Background(), pl, sc, formats.CSR, x)
		if err != nil || !m.Degraded {
			t.Fatalf("eval %d: want degraded, got err=%v Degraded=%v", i, err, m.Degraded)
		}
	}
	st := NativeMeasureStats()
	if st.Breaker.State != "open" || st.Breaker.Trips != 1 {
		t.Fatalf("breaker should be open after threshold: %+v", st.Breaker)
	}

	// Open breaker: the fault point is no longer even reached.
	hitsBefore := pt.Hits()
	m, err := n.Evaluate(context.Background(), pl, sc, formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded || !strings.Contains(m.DegradedReason, "breaker open") {
		t.Fatalf("want immediate breaker-open degradation, got %+v", m)
	}
	if pt.Hits() != hitsBefore {
		t.Fatal("open breaker must short-circuit before the timed phase")
	}

	// Cooldown elapses, fault cleared: the half-open probe measures and
	// closes the breaker.
	now = now.Add(2 * time.Minute)
	pt.Disarm()
	m, err = n.Evaluate(context.Background(), pl, sc, formats.CSR, x)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Measured || m.Degraded {
		t.Fatalf("probe should measure for real, got %+v", m)
	}
	if s := MeasureBreaker().Snapshot(); s.State != "closed" {
		t.Fatalf("successful probe must close the breaker, got %+v", s)
	}
}

// TestNativePlainErrorPropagates: a non-transient measurement error is
// neither retried nor degraded — it propagates, and it does not count
// against the breaker.
func TestNativePlainErrorPropagates(t *testing.T) {
	resetMeasure(t)
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)
	faults.Point("backend.native.measure").Arm(faults.Injection{Times: 1})

	n := &Native{Runs: 1}
	_, err := n.Evaluate(context.Background(), pl, scenario.MustParse("spmv"), formats.CSR, x)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("want injected error to propagate, got %v", err)
	}
	st := NativeMeasureStats()
	if st.Retries != 0 {
		t.Fatalf("plain errors must not retry: %+v", st)
	}
	if st.Breaker.Failures != 0 {
		t.Fatalf("plain errors say nothing about measurement health: %+v", st.Breaker)
	}
}

// TestNativeCanceledContextPropagates: cancellation during the timed
// phase aborts cleanly without tripping or charging the breaker.
func TestNativeCanceledContextPropagates(t *testing.T) {
	resetMeasure(t)
	pl := testPlan(t)
	x := ones(pl.Matrix().Cols)

	// Warm the plan first so cancellation lands in the timed phase.
	n := &Native{Runs: 1}
	if _, err := n.Evaluate(context.Background(), pl, scenario.MustParse("spmv"), formats.CSR, x); err != nil {
		t.Fatal(err)
	}
	ResetNativeMeasureStats()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.Evaluate(ctx, pl, scenario.MustParse("spmv"), formats.CSR, x)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	st := NativeMeasureStats()
	if st.Breaker.Failures != 0 || st.Degraded != 0 {
		t.Fatalf("cancellation must not charge the breaker or degrade: %+v", st)
	}
}
