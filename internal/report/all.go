package report

import "fmt"

// Generator regenerates one experiment artifact.
type Generator func(*Options) (Table, error)

// Generators maps experiment ids to their regenerators, covering every
// table and figure of the paper's evaluation section.
var Generators = map[string]Generator{
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"table2": Table2,
	"fig13":  Fig13,
	"fig14":  Fig14,
}

// Order is the presentation order of the experiments.
var Order = []string{
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "table2", "fig13", "fig14",
}

// Generate regenerates one experiment by id.
func Generate(o *Options, id string) (Table, error) {
	g, ok := Generators[id]
	if !ok {
		return Table{}, fmt.Errorf("report: unknown experiment %q (have %v)", id, Order)
	}
	return g(o)
}

// All regenerates every experiment in presentation order.
func All(o *Options) ([]Table, error) {
	out := make([]Table, 0, len(Order))
	for _, id := range Order {
		t, err := Generate(o, id)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
