package report

import (
	"fmt"

	"copernicus/internal/formats"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
)

// table2Order lists the formats in Table 2's row order.
var table2Order = []formats.Kind{
	formats.Dense, formats.CSR, formats.BCSR, formats.CSC,
	formats.LIL, formats.ELL, formats.COO, formats.DIA,
}

// Table2 regenerates the resource-utilization and dynamic-power table
// (Table 2): BRAM_18K, FF, LUT and dynamic power per format at partition
// sizes 8, 16 and 32, with the device budget as the Total row.
func Table2(o *Options) (Table, error) {
	t := Table{
		ID:    "table2",
		Title: "Resource utilization and total dynamic power (partition sizes 8/16/32)",
		Header: []string{"format",
			"BRAM@8", "BRAM@16", "BRAM@32",
			"FFk@8", "FFk@16", "FFk@32",
			"LUTk@8", "LUTk@16", "LUTk@32",
			"DynW@8", "DynW@16", "DynW@32"},
	}
	for _, k := range table2Order {
		row := []string{k.String()}
		var reps [3]synth.Report
		for i, p := range workloads.PartitionSizes {
			reps[i] = synth.Estimate(k, p)
		}
		for _, r := range reps {
			row = append(row, fmt.Sprintf("%d", r.BRAM18K))
		}
		for _, r := range reps {
			row = append(row, fmt.Sprintf("%.1f", float64(r.FF)/1000))
		}
		for _, r := range reps {
			row = append(row, fmt.Sprintf("%.1f", float64(r.LUT)/1000))
		}
		for _, r := range reps {
			row = append(row, f2(r.DynamicW))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"Total(device)",
		fmt.Sprintf("%d", synth.DeviceBRAM), "", "",
		fmt.Sprintf("%.1f", float64(synth.DeviceFF)/1000), "", "",
		fmt.Sprintf("%.1f", float64(synth.DeviceLUT)/1000), "", "",
		"", "", ""})
	t.Notes = append(t.Notes,
		"static power: 0.121 W class (DENSE/CSR/BCSR/LIL/ELL) vs 0.103 W class (CSC/COO/DIA) in the paper; see fig13 for the modelled split")
	return t, nil
}

// Fig13 regenerates the dynamic-power breakdown of Fig. 13: logic, BRAM
// and signal power per format and partition size, plus the modelled
// static power.
func Fig13(o *Options) (Table, error) {
	t := Table{
		ID:     "fig13",
		Title:  "Dynamic power breakdown (mW) and static power (W)",
		Header: []string{"format", "p", "logic_mW", "bram_mW", "signals_mW", "clock_mW", "static_W"},
	}
	for _, k := range table2Order {
		for _, p := range workloads.PartitionSizes {
			r := synth.Estimate(k, p)
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprintf("%d", p),
				f2(r.LogicMW), f2(r.BRAMMW), f2(r.SignalsMW), f2(r.ClockMW),
				f3(r.StaticW),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: logic power rises or holds with partition size; BRAM power may fall (dense, BCSR); totals track signal power")
	return t, nil
}
