package report

import (
	"fmt"

	"copernicus/internal/formats"
	"copernicus/internal/metrics"
	"copernicus/internal/workloads"
)

// Fig10 regenerates memory-bandwidth utilization versus density for the
// random suite at 16×16 partitions (Fig. 10).
func Fig10(o *Options) (Table, error) {
	return bwSweep(o, "fig10",
		"Memory bandwidth utilization vs density, random matrices, partition 16x16",
		"Random", "density", func(w workloads.Workload) string {
			return fmt.Sprintf("%g", w.Param)
		})
}

// Fig11 regenerates memory-bandwidth utilization versus band width at
// 16×16 partitions (Fig. 11).
func Fig11(o *Options) (Table, error) {
	return bwSweep(o, "fig11",
		"Memory bandwidth utilization vs band width, partition 16x16",
		"Band", "width", func(w workloads.Workload) string {
			return fmt.Sprintf("%g", w.Param)
		})
}

func bwSweep(o *Options, id, title, suite, xname string, xval func(workloads.Workload) string) (Table, error) {
	rs, err := o.results(suite, 16)
	if err != nil {
		return Table{}, err
	}
	byWL := map[string]map[formats.Kind]float64{}
	for _, r := range rs {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[formats.Kind]float64{}
		}
		byWL[r.Workload][r.Format] = r.BandwidthUtil
	}
	t := Table{ID: id, Title: title, Header: sigmaHeader(xname)}
	for _, w := range o.suite(suite) {
		row := []string{xval(w)}
		for _, k := range formats.Core() {
			row = append(row, f4(byWL[w.ID][k]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "COO is pinned near 1/3; DIA approaches 1 on diagonal matrices (§6.3)")
	return t, nil
}

// Fig12 regenerates the partition-size bandwidth study of Fig. 12:
// average memory-bandwidth utilization per suite and partition size for
// every format (higher is better).
func Fig12(o *Options) (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "Average memory bandwidth utilization per suite and partition size (higher is better)",
		Header: sigmaHeader("suite/p"),
	}
	for _, suite := range SuiteNames {
		for _, p := range workloads.PartitionSizes {
			rs, err := o.results(suite, p)
			if err != nil {
				return Table{}, err
			}
			byF := byFormat(rs)
			row := []string{fmt.Sprintf("%s/%d", suite, p)}
			for _, k := range formats.Core() {
				var vals []float64
				for _, r := range byF[k] {
					vals = append(vals, r.BandwidthUtil)
				}
				row = append(row, f4(metrics.Mean(vals)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
