// Package report regenerates every table and figure of the paper's
// evaluation section (§6) from the characterization engine: σ overheads
// (Figs. 4–7), latency/balance scatter (Fig. 8), throughput-vs-latency
// curves (Fig. 9), memory-bandwidth utilization (Figs. 10–12), resource
// and power estimates (Table 2, Fig. 13), the normalized cross-metric
// summary (Fig. 14), and the workload statistics of Fig. 3.
//
// Each generator returns a Table whose rows carry the same series the
// paper plots; Render writes an aligned ASCII form and CSV an
// importable form for plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/workloads"
)

// Table is one regenerated artifact.
type Table struct {
	ID     string // experiment id, e.g. "fig4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned ASCII.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for i, wd := range widths {
		if i > 0 {
			total += 2
		}
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown writes the table as a GitHub-flavoured Markdown table, for
// embedding regenerated artifacts in documentation.
func (t Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "**%s: %s**\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (fields are simple
// tokens, so no quoting is needed).
func (t Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Options configures the harness: the engine (hardware model) and the
// workload scaling. The zero value is not usable; call NewOptions.
// Options caches sweep results, so generators that share a sweep (e.g.
// Figs. 7, 8, 12, 14) pay for it once. Not safe for concurrent use.
type Options struct {
	Engine *core.Engine
	WL     workloads.Config

	suites map[string][]workloads.Workload
	cache  map[string][]core.Result
}

// NewOptions returns the default full-scale harness configuration.
func NewOptions() *Options {
	return &Options{
		Engine: core.New(),
		WL:     workloads.DefaultConfig(),
		suites: map[string][]workloads.Workload{},
		cache:  map[string][]core.Result{},
	}
}

// NewSmallOptions returns a reduced-scale configuration for tests and
// quick bench runs: identical structure, smaller matrices.
func NewSmallOptions() *Options {
	o := NewOptions()
	o.WL = workloads.Config{Scale: 256, RandomDim: 256, BandDim: 256, Seed: 0xC0FE}
	return o
}

// SuiteNames are the three workload groups the paper's figures compare.
var SuiteNames = []string{"SuiteSparse", "Random", "Band"}

func (o *Options) suite(name string) []workloads.Workload {
	if ws, ok := o.suites[name]; ok {
		return ws
	}
	var ws []workloads.Workload
	switch name {
	case "SuiteSparse":
		ws = workloads.SuiteSparse(o.WL)
	case "Random":
		ws = workloads.RandomSuite(o.WL)
	case "Band":
		ws = workloads.BandSuite(o.WL)
	default:
		panic(fmt.Sprintf("report: unknown suite %q", name))
	}
	o.suites[name] = ws
	return ws
}

// results characterizes one suite at one partition size across the core
// formats, cached.
func (o *Options) results(suite string, p int) ([]core.Result, error) {
	key := fmt.Sprintf("%s/%d", suite, p)
	if rs, ok := o.cache[key]; ok {
		return rs, nil
	}
	rs, err := o.Engine.Sweep(o.suite(suite), formats.Core(), []int{p})
	if err != nil {
		return nil, err
	}
	o.cache[key] = rs
	return rs, nil
}

// byFormat indexes results of one workload sweep by format.
func byFormat(rs []core.Result) map[formats.Kind][]core.Result {
	out := map[formats.Kind][]core.Result{}
	for _, r := range rs {
		out[r.Format] = append(out[r.Format], r)
	}
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
