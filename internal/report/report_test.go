package report

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"copernicus/internal/formats"
	"copernicus/internal/workloads"
)

// small returns a shared reduced-scale harness. Tests mutate nothing, so
// one cache serves the whole package; generators stay fast.
var small = NewSmallOptions()

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// colIndex finds a header column.
func colIndex(t *testing.T, tab Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("header %q not found in %v", name, tab.Header)
	return -1
}

func TestFig3Structure(t *testing.T) {
	tab, err := Fig3(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("fig3 rows = %d, want 20 workloads", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if v < 0 || v > 100 {
				t.Fatalf("fig3 percentage %v out of range in row %v", v, row)
			}
		}
	}
}

func TestFig4GeomeanAndDenseBaseline(t *testing.T) {
	tab, err := Fig4(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 {
		t.Fatalf("fig4 rows = %d, want 20 workloads + GEOMEAN", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "GEOMEAN" {
		t.Fatalf("last row is %q, want GEOMEAN", last[0])
	}
	denseCol := colIndex(t, tab, "DENSE")
	cscCol := colIndex(t, tab, "CSC")
	cooCol := colIndex(t, tab, "COO")
	for _, row := range tab.Rows {
		if v := parse(t, row[denseCol]); v != 1.00 {
			t.Fatalf("dense σ = %v in row %v, want 1.00", v, row[0])
		}
	}
	// CSC geomean must dominate every other format's geomean.
	cscGM := parse(t, last[cscCol])
	for i := 1; i < len(last); i++ {
		if i == cscCol {
			continue
		}
		if v := parse(t, last[i]); v >= cscGM {
			t.Fatalf("GEOMEAN %s (%v) >= CSC (%v)", tab.Header[i], v, cscGM)
		}
	}
	// §8/§6.4: COO is fast on SuiteSparse — its geomean must be among the
	// sparse formats' best two.
	cooGM := parse(t, last[cooCol])
	better := 0
	for i := 1; i < len(last); i++ {
		if tab.Header[i] == "DENSE" || i == cooCol {
			continue
		}
		if parse(t, last[i]) < cooGM {
			better++
		}
	}
	if better > 2 {
		t.Fatalf("COO geomean beaten by %d sparse formats; paper has it fastest", better)
	}
}

func TestFig5SigmaGrowsWithDensity(t *testing.T) {
	tab, err := Fig5(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workloads.RandomDensities) {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
	for _, name := range []string{"COO", "CSR", "CSC"} {
		c := colIndex(t, tab, name)
		lo := parse(t, tab.Rows[0][c])
		hi := parse(t, tab.Rows[len(tab.Rows)-1][c])
		if hi < 2*lo {
			t.Errorf("%s σ flat across density: %v → %v", name, lo, hi)
		}
	}
	// ELL stays near the dense baseline at every density.
	c := colIndex(t, tab, "ELL")
	for _, row := range tab.Rows {
		if v := parse(t, row[c]); v > 1.5 {
			t.Errorf("ELL σ = %v at density %s; should track dense", v, row[0])
		}
	}
}

func TestFig6BandTrends(t *testing.T) {
	tab, err := Fig6(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workloads.BandWidths) {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
	// CSC is the worst format at the widest band (paper: up to 30×).
	cscCol := colIndex(t, tab, "CSC")
	wide := tab.Rows[len(tab.Rows)-1]
	csc := parse(t, wide[cscCol])
	for i := 1; i < len(wide); i++ {
		if i == cscCol {
			continue
		}
		if v := parse(t, wide[i]); v >= csc {
			t.Errorf("%s σ (%v) >= CSC (%v) at width 64", tab.Header[i], v, csc)
		}
	}
	if csc < 10 {
		t.Errorf("CSC σ at width 64 = %v; paper reports ~30×", csc)
	}
}

func TestFig7CoversSuitesAndSizes(t *testing.T) {
	tab, err := Fig7(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SuiteNames)*len(workloads.PartitionSizes) {
		t.Fatalf("fig7 rows = %d, want 9", len(tab.Rows))
	}
	// ELL's average σ decreases with partition size within each suite.
	c := colIndex(t, tab, "ELL")
	for s := 0; s < len(SuiteNames); s++ {
		base := s * 3
		v8 := parse(t, tab.Rows[base][c])
		v32 := parse(t, tab.Rows[base+2][c])
		if v32 > v8 {
			t.Errorf("%s: ELL σ grows with partition size (%v → %v)", SuiteNames[s], v8, v32)
		}
	}
}

func TestFig8BalanceShape(t *testing.T) {
	tab, err := Fig8(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SuiteNames)*len(workloads.PartitionSizes)*len(formats.Core()) {
		t.Fatalf("fig8 rows = %d", len(tab.Rows))
	}
	memC := colIndex(t, tab, "mem_cycles")
	compC := colIndex(t, tab, "compute_cycles")
	// Sparse formats transfer less than dense within each suite/p group.
	type key struct{ suite, p string }
	denseMem := map[key]float64{}
	for _, row := range tab.Rows {
		if row[1] == "DENSE" {
			denseMem[key{row[0], row[2]}] = parse(t, row[memC])
		}
	}
	for _, row := range tab.Rows {
		if row[1] == "DENSE" || row[0] == "Band" {
			continue // band tiles are nearly dense; skip the strict check
		}
		if m := parse(t, row[memC]); m > denseMem[key{row[0], row[2]}] {
			t.Errorf("%s/%s p=%s: sparse mem %v above dense %v",
				row[0], row[1], row[2], m, denseMem[key{row[0], row[2]}])
		}
		if c := parse(t, row[compC]); c <= 0 {
			t.Errorf("non-positive compute cycles in %v", row)
		}
	}
}

func TestFig9CurveStructure(t *testing.T) {
	tab, err := Fig9(small)
	if err != nil {
		t.Fatal(err)
	}
	want := len(formats.Core()) * len(workloads.PartitionSizes) * len(workloads.RandomDensities)
	if len(tab.Rows) != want {
		t.Fatalf("fig9 rows = %d, want %d", len(tab.Rows), want)
	}
	latC := colIndex(t, tab, "latency_s")
	tpC := colIndex(t, tab, "throughput_GBps")
	for _, row := range tab.Rows {
		if parse(t, row[latC]) <= 0 || parse(t, row[tpC]) <= 0 {
			t.Fatalf("non-positive point %v", row)
		}
	}
}

func TestFig10COOConstant(t *testing.T) {
	tab, err := Fig10(small)
	if err != nil {
		t.Fatal(err)
	}
	cooC := colIndex(t, tab, "COO")
	for _, row := range tab.Rows {
		v := parse(t, row[cooC])
		if v < 0.30 || v > 0.34 {
			t.Errorf("COO utilization at density %s = %v, want ~1/3", row[0], v)
		}
	}
	// Dense utilization equals the density (within partition skipping
	// effects it can exceed the global density, so only a sanity bound).
	denseC := colIndex(t, tab, "DENSE")
	last := tab.Rows[len(tab.Rows)-1]
	if v := parse(t, last[denseC]); v < 0.3 {
		t.Errorf("dense utilization at density 0.5 = %v", v)
	}
}

func TestFig11DIADiagonal(t *testing.T) {
	tab, err := Fig11(small)
	if err != nil {
		t.Fatal(err)
	}
	diaC := colIndex(t, tab, "DIA")
	first := tab.Rows[0] // width 1 = diagonal matrix
	if v := parse(t, first[diaC]); v < 0.9 {
		t.Errorf("DIA utilization on diagonal = %v, want ≈1 (§6.3)", v)
	}
}

func TestFig12Bounds(t *testing.T) {
	tab, err := Fig12(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if v < 0 || v > 1 {
				t.Fatalf("utilization %v out of [0,1] in %v", v, row)
			}
		}
	}
}

func TestTable2Structure(t *testing.T) {
	tab, err := Table2(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 8 formats + device total
		t.Fatalf("table2 rows = %d", len(tab.Rows))
	}
	if tab.Rows[8][0] != "Total(device)" {
		t.Fatalf("missing device row: %v", tab.Rows[8])
	}
	// Dense and BCSR BRAM track the partition size.
	for _, row := range tab.Rows[:8] {
		if row[0] == "DENSE" || row[0] == "BCSR" {
			if row[1] != "8" || row[2] != "16" || row[3] != "32" {
				t.Errorf("%s BRAM = %v/%v/%v, want 8/16/32", row[0], row[1], row[2], row[3])
			}
		}
	}
}

func TestFig13Structure(t *testing.T) {
	tab, err := Fig13(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8*3 {
		t.Fatalf("fig13 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			if parse(t, cell) < 0 {
				t.Fatalf("negative power in %v", row)
			}
		}
	}
}

func TestFig14Normalized(t *testing.T) {
	tab, err := Fig14(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SuiteNames)*len(formats.Core()) {
		t.Fatalf("fig14 rows = %d", len(tab.Rows))
	}
	// Every axis within a suite must span [0,1] with both extremes hit.
	for _, suite := range SuiteNames {
		for axis := 2; axis < len(tab.Header); axis++ {
			lo, hi := 2.0, -1.0
			for _, row := range tab.Rows {
				if row[0] != suite {
					continue
				}
				v := parse(t, row[axis])
				if v < 0 || v > 1 {
					t.Fatalf("fig14 %s %s = %v out of [0,1]", suite, tab.Header[axis], v)
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi != 1 {
				t.Errorf("%s/%s: no format scored 1", suite, tab.Header[axis])
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate(small, "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllRuns(t *testing.T) {
	tabs, err := All(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(Order) {
		t.Fatalf("All produced %d tables, want %d", len(tabs), len(Order))
	}
	for i, id := range Order {
		if tabs[i].ID != id {
			t.Fatalf("table %d id = %s, want %s", i, tabs[i].ID, id)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"33", "4"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a   bb", "33  4", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,bb\n1,2\n33,4\n" {
		t.Fatalf("csv output %q", got)
	}
}

func TestMarkdown(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**x: demo**", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*hello*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestSigmaOfHelper(t *testing.T) {
	rs, err := small.results("Band", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SigmaOf(rs, rs[0].Workload, rs[0].Format); !ok {
		t.Fatal("SigmaOf missed an existing result")
	}
	if _, ok := SigmaOf(rs, "nope", formats.CSR); ok {
		t.Fatal("SigmaOf found a phantom result")
	}
}
