package report

import (
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/metrics"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
)

// radarMetrics are the six axes of Fig. 14.
var radarMetrics = []string{
	"balance", "bw_util", "latency", "throughput", "resource", "power",
}

// Fig14 regenerates the normalized cross-metric comparison of Fig. 14:
// for each suite, every metric is min-max normalized across formats so 1
// is the best achieved value and 0 the worst. Resource is the combined
// device-budget fraction (BRAM/FF/LUT averaged); latency and power score
// lower-is-better; balance scores closeness to 1.
func Fig14(o *Options) (Table, error) {
	t := Table{
		ID:     "fig14",
		Title:  "Normalized comparison across six metrics (1 = best, 0 = worst)",
		Header: append([]string{"suite", "format"}, radarMetrics...),
	}
	for _, suite := range SuiteNames {
		// Average each raw metric per format across the suite and the
		// three partition sizes, then normalize across formats.
		agg := map[formats.Kind]*rawAgg{}
		for _, k := range formats.Core() {
			agg[k] = &rawAgg{}
		}
		for _, p := range workloads.PartitionSizes {
			rs, err := o.results(suite, p)
			if err != nil {
				return Table{}, err
			}
			for _, r := range rs {
				agg[r.Format].add(r)
			}
		}
		kinds := formats.Core()
		var balance, bw, latency, tput, resource, power []float64
		for _, k := range kinds {
			a := agg[k]
			balance = append(balance, a.mean(a.balance))
			bw = append(bw, a.mean(a.bwUtil))
			latency = append(latency, a.mean(a.seconds))
			tput = append(tput, a.mean(a.throughput))
			resource = append(resource, a.mean(a.resource))
			power = append(power, a.mean(a.power))
		}
		norm := [][]float64{
			metrics.Normalize(balance, metrics.TargetOne),
			metrics.Normalize(bw, metrics.HigherBetter),
			metrics.Normalize(latency, metrics.LowerBetter),
			metrics.Normalize(tput, metrics.HigherBetter),
			metrics.Normalize(resource, metrics.LowerBetter),
			metrics.Normalize(power, metrics.LowerBetter),
		}
		for i, k := range kinds {
			row := []string{suite, k.String()}
			for _, axis := range norm {
				row = append(row, f3(axis[i]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

type rawAgg struct {
	balance, bwUtil, seconds, throughput, resource, power []float64
}

func (a *rawAgg) add(r core.Result) {
	a.balance = append(a.balance, r.BalanceRatio)
	a.bwUtil = append(a.bwUtil, r.BandwidthUtil)
	a.seconds = append(a.seconds, r.Seconds)
	a.throughput = append(a.throughput, r.ThroughputBps)
	a.resource = append(a.resource, deviceFrac(r.Synth))
	a.power = append(a.power, r.Synth.DynamicW)
}

func (a *rawAgg) mean(vs []float64) float64 { return metrics.Mean(vs) }

// deviceFrac is the combined device-budget fraction of a synthesis
// report.
func deviceFrac(r synth.Report) float64 {
	return (float64(r.BRAM18K)/float64(synth.DeviceBRAM) +
		float64(r.FF)/float64(synth.DeviceFF) +
		float64(r.LUT)/float64(synth.DeviceLUT)) / 3
}
