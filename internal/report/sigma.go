package report

import (
	"fmt"
	"sort"

	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/matrix"
	"copernicus/internal/metrics"
	"copernicus/internal/workloads"
)

// Fig3 regenerates the workload statistics of Fig. 3: average partition
// density, row density, and non-zero-row percentage for each SuiteSparse
// surrogate at partition sizes 8, 16, and 32.
func Fig3(o *Options) (Table, error) {
	t := Table{
		ID:     "fig3",
		Title:  "Density and spatial locality of SuiteSparse partitions (%)",
		Header: []string{"ID", "partdens@8", "partdens@16", "partdens@32", "rowdens@8", "rowdens@16", "rowdens@32", "nzrows@8", "nzrows@16", "nzrows@32"},
	}
	for _, w := range o.suite("SuiteSparse") {
		row := []string{w.ID}
		var pd, rd, nz [3]float64
		for i, p := range workloads.PartitionSizes {
			s := matrix.StatsFor(w.M, p)
			pd[i] = 100 * s.PartitionDensity
			rd[i] = 100 * s.RowDensity
			nz[i] = 100 * s.NonZeroRowFrac
		}
		for _, v := range pd {
			row = append(row, f2(v))
		}
		for _, v := range rd {
			row = append(row, f2(v))
		}
		for _, v := range nz {
			row = append(row, f2(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: Fig. 3(a) partition density, (b) row density, (c) non-zero rows")
	return t, nil
}

// sigmaHeader builds the per-format header for the σ tables.
func sigmaHeader(first string) []string {
	h := []string{first}
	for _, k := range formats.Core() {
		h = append(h, k.String())
	}
	return h
}

// Fig4 regenerates the SuiteSparse decompression-overhead comparison of
// Fig. 4: σ per workload and format at 16×16 partitions, workloads
// ordered by increasing density as in the paper's shading, with the
// GEOMEAN bar last.
func Fig4(o *Options) (Table, error) {
	ws := o.suite("SuiteSparse")
	order := make([]int, len(ws))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ws[order[a]].Density() < ws[order[b]].Density()
	})
	rs, err := o.results("SuiteSparse", 16)
	if err != nil {
		return Table{}, err
	}
	sigma := map[string]map[formats.Kind]float64{}
	for _, r := range rs {
		if sigma[r.Workload] == nil {
			sigma[r.Workload] = map[formats.Kind]float64{}
		}
		sigma[r.Workload][r.Format] = r.Sigma
	}
	t := Table{
		ID:     "fig4",
		Title:  "Decompression overhead sigma for SuiteSparse, partition 16x16 (lower is better)",
		Header: sigmaHeader("workload"),
	}
	geo := map[formats.Kind][]float64{}
	for _, i := range order {
		w := ws[i]
		row := []string{w.ID}
		for _, k := range formats.Core() {
			v := sigma[w.ID][k]
			row = append(row, f2(v))
			geo[k] = append(geo[k], v)
		}
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"GEOMEAN"}
	for _, k := range formats.Core() {
		gm = append(gm, f2(metrics.Geomean(geo[k])))
	}
	t.Rows = append(t.Rows, gm)
	t.Notes = append(t.Notes, "rows ordered by increasing density (the paper's bar shading)")
	return t, nil
}

// Fig5 regenerates σ versus density for the random suite (Fig. 5) at
// 16×16 partitions.
func Fig5(o *Options) (Table, error) {
	return sigmaSweep(o, "fig5",
		"Decompression overhead sigma vs density, random matrices, partition 16x16",
		"Random", "density", func(w workloads.Workload) string {
			return fmt.Sprintf("%g", w.Param)
		})
}

// Fig6 regenerates σ versus band width (Fig. 6) at 16×16 partitions.
func Fig6(o *Options) (Table, error) {
	return sigmaSweep(o, "fig6",
		"Decompression overhead sigma vs band width, partition 16x16",
		"Band", "width", func(w workloads.Workload) string {
			return fmt.Sprintf("%g", w.Param)
		})
}

func sigmaSweep(o *Options, id, title, suite, xname string, xval func(workloads.Workload) string) (Table, error) {
	rs, err := o.results(suite, 16)
	if err != nil {
		return Table{}, err
	}
	byWL := map[string]map[formats.Kind]float64{}
	for _, r := range rs {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[formats.Kind]float64{}
		}
		byWL[r.Workload][r.Format] = r.Sigma
	}
	t := Table{ID: id, Title: title, Header: sigmaHeader(xname)}
	for _, w := range o.suite(suite) {
		row := []string{xval(w)}
		for _, k := range formats.Core() {
			row = append(row, f2(byWL[w.ID][k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 regenerates the partition-size study of Fig. 7: average σ per
// suite and partition size for every format.
func Fig7(o *Options) (Table, error) {
	t := Table{
		ID:     "fig7",
		Title:  "Average sigma per suite and partition size (lower is better)",
		Header: sigmaHeader("suite/p"),
	}
	for _, suite := range SuiteNames {
		for _, p := range workloads.PartitionSizes {
			rs, err := o.results(suite, p)
			if err != nil {
				return Table{}, err
			}
			byF := byFormat(rs)
			row := []string{fmt.Sprintf("%s/%d", suite, p)}
			for _, k := range formats.Core() {
				var vals []float64
				for _, r := range byF[k] {
					vals = append(vals, r.Sigma)
				}
				row = append(row, f2(metrics.Mean(vals)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// SigmaOf extracts one workload's σ from a result set (test helper for
// downstream packages).
func SigmaOf(rs []core.Result, workload string, k formats.Kind) (float64, bool) {
	for _, r := range rs {
		if r.Workload == workload && r.Format == k {
			return r.Sigma, true
		}
	}
	return 0, false
}
