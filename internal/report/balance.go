package report

import (
	"fmt"

	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/metrics"
	"copernicus/internal/workloads"
)

// Fig8 regenerates the balance-ratio scatter of Fig. 8: per suite, format
// and partition size, the average memory latency, average compute
// latency, and their ratio (points below the balance line have ratio <
// 1, i.e. compute-bound streaming).
func Fig8(o *Options) (Table, error) {
	t := Table{
		ID:     "fig8",
		Title:  "Memory vs compute latency per partition (balance ratio; 1 = balanced)",
		Header: []string{"suite", "format", "p", "mem_cycles", "compute_cycles", "balance"},
	}
	for _, suite := range SuiteNames {
		for _, p := range workloads.PartitionSizes {
			rs, err := o.results(suite, p)
			if err != nil {
				return Table{}, err
			}
			byF := byFormat(rs)
			for _, k := range formats.Core() {
				var mem, comp, bal []float64
				for _, r := range byF[k] {
					mem = append(mem, r.MeanMemCycles)
					comp = append(comp, r.MeanComputeCycles)
					bal = append(bal, r.BalanceRatio)
				}
				t.Rows = append(t.Rows, []string{
					suite, k.String(), fmt.Sprintf("%d", p),
					f2(metrics.Mean(mem)), f2(metrics.Mean(comp)), f3(metrics.Mean(bal)),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: marker size encodes partition size; balance < 1 means compute-bound")
	return t, nil
}

// Fig9 regenerates the throughput-versus-latency curves of Fig. 9: SpMV
// on one large random matrix per density, for every format and partition
// size. The paper uses 8000×8000; the dimension here follows
// Options.WL.RandomDim (the curve shapes are scale-invariant).
func Fig9(o *Options) (Table, error) {
	t := Table{
		ID:     "fig9",
		Title:  "Throughput vs total latency across densities (thicker line = larger partition)",
		Header: []string{"format", "p", "density", "latency_s", "throughput_GBps"},
	}
	dim := o.WL.RandomDim
	if dim <= 0 {
		dim = workloads.DefaultConfig().RandomDim
	}
	for _, k := range formats.Core() {
		for _, p := range workloads.PartitionSizes {
			for i, d := range workloads.RandomDensities {
				m := gen.Random(dim, d, o.WL.Seed+uint64(900+i))
				r, err := o.Engine.Characterize(fmt.Sprintf("rnd%g", d), m, k, p)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					k.String(), fmt.Sprintf("%d", p), fmt.Sprintf("%g", d),
					fmt.Sprintf("%.3e", r.Seconds),
					f3(r.ThroughputBps / 1e9),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("matrix dimension %d (paper: 8000); shapes are scale-invariant", dim))
	return t, nil
}
