package report

import (
	"context"
	"fmt"
	"runtime"

	"copernicus/internal/backend"
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/metrics"
	"copernicus/internal/scenario"
	"copernicus/internal/workloads"
)

// Extension artifacts: experiments beyond the paper's figures, covering
// the §2 variant formats and the §5.1 coarse-grained aggregation the
// paper describes but does not measure. They share the harness and CLI
// but live under ext* ids so the paper index stays exact.

// ExtOrder lists the extension experiments.
var ExtOrder = []string{"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9"}

func init() {
	Generators["ext1"] = Ext1
	Generators["ext2"] = Ext2
	Generators["ext3"] = Ext3
	Generators["ext4"] = Ext4
	Generators["ext5"] = Ext5
	Generators["ext6"] = Ext6
	Generators["ext7"] = Ext7
	Generators["ext8"] = Ext8
	Generators["ext9"] = Ext9
}

// Ext1 compares σ across all implemented formats — the paper's seven
// plus DOK and the ELL-variant extensions — on the three suites at
// 16×16 partitions.
func Ext1(o *Options) (Table, error) {
	t := Table{
		ID:     "ext1",
		Title:  "Extension: sigma across all implemented formats, partition 16x16",
		Header: []string{"suite"},
	}
	for _, k := range formats.All() {
		t.Header = append(t.Header, k.String())
	}
	for _, suite := range SuiteNames {
		rs, err := o.Engine.Sweep(o.suite(suite), formats.All(), []int{16})
		if err != nil {
			return Table{}, err
		}
		byF := byFormat(rs)
		row := []string{suite}
		for _, k := range formats.All() {
			var vals []float64
			for _, r := range byF[k] {
				vals = append(vals, r.Sigma)
			}
			row = append(row, f2(metrics.Mean(vals)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"DOK scans its hash table like COO scans tuples; SELL/ELL+COO/JDS/SELL-C-sigma trade ELL padding for metadata")
	return t, nil
}

// Ext2 compares bandwidth utilization across all implemented formats on
// the three suites at 16×16 partitions.
func Ext2(o *Options) (Table, error) {
	t := Table{
		ID:     "ext2",
		Title:  "Extension: bandwidth utilization across all implemented formats, partition 16x16",
		Header: []string{"suite"},
	}
	for _, k := range formats.All() {
		t.Header = append(t.Header, k.String())
	}
	for _, suite := range SuiteNames {
		rs, err := o.Engine.Sweep(o.suite(suite), formats.All(), []int{16})
		if err != nil {
			return Table{}, err
		}
		byF := byFormat(rs)
		row := []string{suite}
		for _, k := range formats.All() {
			var vals []float64
			for _, r := range byF[k] {
				vals = append(vals, r.BandwidthUtil)
			}
			row = append(row, f4(metrics.Mean(vals)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Ext4 tests the paper's first §8 insight directly: "memory bandwidth
// is not always the bottleneck; the performance of sparse problems
// cannot always be improved by simply adding more memory bandwidth."
// It sweeps the AXI streamline width and reports each format's total
// modelled time: the dense baseline keeps improving (memory-bound)
// while the compute-bound decompressors saturate.
func Ext4(o *Options) (Table, error) {
	t := Table{
		ID:     "ext4",
		Title:  "Extension: sensitivity to memory bandwidth (Sec 8 insight 1)",
		Header: []string{"axi_bytes_per_cycle", "format", "seconds", "balance"},
	}
	dim := o.WL.RandomDim
	if dim <= 0 {
		dim = workloads.DefaultConfig().RandomDim
	}
	m := gen.Random(dim, 0.05, o.WL.Seed+0xE48)
	x := make([]float64, m.Cols)
	for _, width := range []int{4, 8, 16, 32} {
		cfg := o.Engine.Config()
		cfg.AXIBytesPerCycle = width
		pl, err := hlsim.NewPlan(cfg, m, 16)
		if err != nil {
			return Table{}, err
		}
		for _, k := range []formats.Kind{formats.Dense, formats.CSR, formats.CSC, formats.COO} {
			r, err := pl.Run(k, x)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", width), k.String(),
				fmt.Sprintf("%.3e", r.Seconds()), f3(r.BalanceRatio()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"a compute-bound format's latency saturates as bandwidth grows; only the memory-bound dense baseline keeps scaling")
	return t, nil
}

// Ext5 reports the §5.1 run-time utilizations per format and suite at
// 16×16 partitions: how full the dot-product engine's multiplier slots
// are (driven by row density, Fig. 3b) and how occupied the inner
// pipeline is (driven by non-zero rows, Fig. 3c).
func Ext5(o *Options) (Table, error) {
	t := Table{
		ID:     "ext5",
		Title:  "Extension: dot-engine and inner-pipeline utilization (Sec 5.1), partition 16x16",
		Header: []string{"suite", "format", "dot_engine_util", "inner_pipeline_util"},
	}
	for _, suite := range SuiteNames {
		rs, err := o.results(suite, 16)
		if err != nil {
			return Table{}, err
		}
		byF := byFormat(rs)
		for _, k := range formats.Core() {
			var eng, inner []float64
			for _, r := range byF[k] {
				eng = append(eng, r.DotEngineUtil)
				inner = append(inner, r.InnerPipelineUtil)
			}
			t.Rows = append(t.Rows, []string{
				suite, k.String(), f4(metrics.Mean(eng)), f4(metrics.Mean(inner)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"row-skipping formats raise engine utilization; padded formats (dense, ELL family) pin the inner pipeline at 1 while wasting multiplier slots")
	return t, nil
}

// Ext6 contrasts the paper's decompress-then-dot pipeline against the
// §7 related-work architecture class that consumes compressed operands
// directly (EIE/SpArch/SIGMA style): σ per format under both compute
// models on a random matrix, quantifying how much of each format's cost
// is the format itself versus the format/architecture pairing — the
// co-design point of §8.
func Ext6(o *Options) (Table, error) {
	t := Table{
		ID:     "ext6",
		Title:  "Extension: decompress-then-dot vs direct compressed-domain compute (Sec 7/8)",
		Header: []string{"format", "sigma_decompress", "sigma_direct", "ratio"},
	}
	dim := o.WL.RandomDim
	if dim <= 0 {
		dim = workloads.DefaultConfig().RandomDim
	}
	m := gen.Random(dim, 0.05, o.WL.Seed+0xE66)
	cfg := o.Engine.Config()
	pt := matrix.Partition(m, 16)
	for _, k := range formats.Core() {
		var dec, dir float64
		for _, tile := range pt.Tiles {
			enc := formats.Encode(k, tile)
			sd, err := cfg.Sigma(enc)
			if err != nil {
				return Table{}, err
			}
			sr, err := cfg.SigmaDirect(enc)
			if err != nil {
				return Table{}, err
			}
			dec += sd
			dir += sr
		}
		n := float64(len(pt.Tiles))
		dec /= n
		dir /= n
		t.Rows = append(t.Rows, []string{k.String(), f2(dec), f2(dir), f2(dir / dec)})
	}
	t.Notes = append(t.Notes,
		"CSC's orientation penalty vanishes when the architecture streams columns natively; the spread across formats collapses")
	return t, nil
}

// Ext7 integrates power over modelled time: dynamic and static energy
// per format on the SuiteSparse suite at 16×16 partitions. It
// quantifies §6.4's closing remark — "the static energy, which depends
// on time, can be an issue for those slower sparse formats that
// require less dynamic energy" — slow CSC loses on static energy what
// it saves on dynamic power.
func Ext7(o *Options) (Table, error) {
	t := Table{
		ID:     "ext7",
		Title:  "Extension: energy per SpMV run (Sec 6.4), SuiteSparse, partition 16x16",
		Header: []string{"format", "dynamic_uJ", "static_uJ", "total_uJ"},
	}
	rs, err := o.results("SuiteSparse", 16)
	if err != nil {
		return Table{}, err
	}
	byF := byFormat(rs)
	for _, k := range formats.Core() {
		var dyn, st float64
		for _, r := range byF[k] {
			dyn += r.DynamicEnergyJ
			st += r.StaticEnergyJ
		}
		t.Rows = append(t.Rows, []string{
			k.String(), f2(dyn * 1e6), f2(st * 1e6), f2((dyn + st) * 1e6),
		})
	}
	t.Notes = append(t.Notes,
		"static energy scales with run time, so the slowest decompressors lose their dynamic-power advantage")
	return t, nil
}

// Ext8 is the model-vs-measured cross-validation the backend seam
// unlocks: for every SuiteSparse workload it characterizes the seven
// sparse formats at 16×16 partitions under both the analytic cycle model
// and the native host-CPU backend (measured wall time of the warm
// executable kernel), then compares the two format *orderings* —
// Kendall τ over the per-format costs, plus each backend's fastest pick.
// The comparison runs per (kernel, threads) point: one SpMV and a
// 60-iteration CG loop, because the amortized kernel reweights the
// one-shot decompression cost the model and the measurement must agree
// on; and serial plus full machine width (deduplicated on one-core
// hosts), because fan-out shifts the measured ordering (padding-heavy
// formats parallelize better than pointer-chasing ones). The model
// should hold rank across both shifts. Absolute times are
// incommensurable (modelled FPGA cycles vs host nanoseconds); rank
// agreement is the meaningful check of the paper's claim that the model
// predicts how formats compare on real workloads. Native numbers vary
// run to run, so this artifact is measured, not golden.
func Ext8(o *Options) (Table, error) {
	t := Table{
		ID:     "ext8",
		Title:  "Extension: model-vs-measured format rank agreement, partition 16x16",
		Header: []string{"workload", "kernel", "threads", "analytic_best", "native_best", "kendall_tau", "top_pick_agrees"},
	}
	threadCounts := []int{1}
	if maxT := runtime.GOMAXPROCS(0); maxT > 1 {
		threadCounts = append(threadCounts, maxT)
	}
	specs := []scenario.Spec{scenario.Default(), scenario.MustParse("cg:60")}
	type axis struct {
		spec    string
		threads int
	}
	taus := make(map[axis][]float64)
	agree := make(map[axis]int)
	ws := o.suite("SuiteSparse")
	cost := func(rs []core.Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = r.Seconds
		}
		return out
	}
	best := func(cs []float64, rs []core.Result) formats.Kind {
		bi := 0
		for i, c := range cs {
			if c < cs[bi] {
				bi = i
			}
		}
		return rs[bi].Format
	}
	for _, w := range ws {
		for _, sc := range specs {
			ana, err := o.Engine.SweepFormatsKernelWith(context.Background(), nil, w.ID, w.M, sc, 16, formats.Sparse())
			if err != nil {
				return Table{}, err
			}
			aCost := cost(ana)
			aBest := best(aCost, ana)
			for _, tc := range threadCounts {
				native := &backend.Native{Threads: tc}
				nat, err := o.Engine.SweepFormatsKernelWith(context.Background(), native, w.ID, w.M, sc, 16, formats.Sparse())
				if err != nil {
					return Table{}, err
				}
				nCost := cost(nat)
				nBest := best(nCost, nat)
				tau := metrics.KendallTau(aCost, nCost)
				ax := axis{sc.String(), tc}
				taus[ax] = append(taus[ax], tau)
				same := "no"
				if aBest == nBest {
					same = "yes"
					agree[ax]++
				}
				t.Rows = append(t.Rows, []string{
					w.ID, sc.String(), fmt.Sprintf("%d", tc),
					aBest.String(), nBest.String(), f2(tau), same,
				})
			}
		}
	}
	for _, sc := range specs {
		for _, tc := range threadCounts {
			ax := axis{sc.String(), tc}
			t.Notes = append(t.Notes, fmt.Sprintf("kernel=%s threads=%d: mean tau %.2f; top pick agrees on %d/%d workloads",
				sc, tc, metrics.Mean(taus[ax]), agree[ax], len(ws)))
		}
	}
	t.Notes = append(t.Notes,
		"native = min-of-runs wall time of the warm tile-parallel executable kernel loop on the host CPU; ranks are comparable, absolute times are not")
	return t, nil
}

// Ext9 asks the question the kernel axis exists to answer: does the best
// format for a workload *flip* between one SpMV and a 60-iteration CG
// solve? A single SpMV pays each tile's decompression once, in full; an
// iterative kernel pays it once and then amortizes it across every warm
// iteration, so a format with expensive decoding but cheap steady-state
// streaming can overtake the one-shot winner. For every SuiteSparse
// workload at 16×16 partitions the table shows both analytic winners,
// whether they differ, and each kernel's margin (runner-up cost over
// winner cost — how decisively the winner wins). Fully analytic, so the
// artifact is deterministic.
func Ext9(o *Options) (Table, error) {
	t := Table{
		ID:     "ext9",
		Title:  "Extension: best-format flip between one SpMV and cg:60, partition 16x16",
		Header: []string{"workload", "spmv_best", "cg60_best", "flips", "spmv_margin", "cg60_margin"},
	}
	cg60 := scenario.MustParse("cg:60")
	flips := 0
	ws := o.suite("SuiteSparse")
	pick := func(rs []core.Result) (formats.Kind, float64) {
		bi := 0
		for i, r := range rs {
			if r.Seconds < rs[bi].Seconds {
				bi = i
			}
		}
		runner := -1.0
		for i, r := range rs {
			if i != bi && (runner < 0 || r.Seconds < runner) {
				runner = r.Seconds
			}
		}
		margin := 1.0
		if runner >= 0 {
			margin = runner / rs[bi].Seconds
		}
		return rs[bi].Format, margin
	}
	for _, w := range ws {
		spmv, err := o.Engine.SweepFormats(w.ID, w.M, 16, formats.Sparse())
		if err != nil {
			return Table{}, err
		}
		cg, err := o.Engine.SweepFormatsKernelWith(context.Background(), nil, w.ID, w.M, cg60, 16, formats.Sparse())
		if err != nil {
			return Table{}, err
		}
		sBest, sMargin := pick(spmv)
		cBest, cMargin := pick(cg)
		flip := "no"
		if sBest != cBest {
			flip = "yes"
			flips++
		}
		t.Rows = append(t.Rows, []string{
			w.ID, sBest.String(), cBest.String(), flip, f2(sMargin), f2(cMargin),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("best format flips on %d/%d workloads between one SpMV and 60 amortized CG iterations", flips, len(ws)),
		"amortized analytic cost: decompression paid on the first iteration, steady-state max(mem, dot) on the remaining 59")
	return t, nil
}

// Ext3 measures coarse-grained aggregation (§5.1): speedup and
// load-balance efficiency of 1–16 pipeline instances on one random
// matrix per density class.
func Ext3(o *Options) (Table, error) {
	t := Table{
		ID:     "ext3",
		Title:  "Extension: coarse-grained aggregation speedup (Sec 5.1)",
		Header: []string{"density", "format", "lanes", "cycles", "speedup", "efficiency"},
	}
	dim := o.WL.RandomDim
	if dim <= 0 {
		dim = workloads.DefaultConfig().RandomDim
	}
	cfg := o.Engine.Config()
	for _, d := range []float64{0.001, 0.1} {
		m := gen.Random(dim, d, o.WL.Seed+0xE37)
		x := make([]float64, m.Cols)
		pl, err := hlsim.NewPlan(cfg, m, 16)
		if err != nil {
			return Table{}, err
		}
		for _, k := range []formats.Kind{formats.COO, formats.CSR} {
			base, err := pl.RunParallel(k, x, 1)
			if err != nil {
				return Table{}, err
			}
			for lanes := 1; lanes <= 16; lanes *= 2 {
				r, err := pl.RunParallel(k, x, lanes)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%g", d), k.String(), fmt.Sprintf("%d", lanes),
					fmt.Sprintf("%d", r.TotalCycles),
					f2(float64(base.TotalCycles) / float64(r.TotalCycles)),
					f3(r.Efficiency()),
				})
			}
		}
	}
	return t, nil
}
