package report

import (
	"runtime"
	"testing"

	"copernicus/internal/formats"
)

func TestExt1AllFormats(t *testing.T) {
	tab, err := Ext1(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Header) != 1+len(formats.All()) {
		t.Fatalf("ext1 header has %d columns", len(tab.Header))
	}
	if len(tab.Rows) != len(SuiteNames) {
		t.Fatalf("ext1 rows = %d", len(tab.Rows))
	}
	// DOK's scan covers a 2x-sized hash table, so its sigma must be at
	// least COO's on every suite.
	dokCol, cooCol := -1, -1
	for i, h := range tab.Header {
		switch h {
		case "DOK":
			dokCol = i
		case "COO":
			cooCol = i
		}
	}
	for _, row := range tab.Rows {
		if parse(t, row[dokCol]) < parse(t, row[cooCol])-0.01 {
			t.Errorf("%s: DOK sigma %s below COO %s", row[0], row[dokCol], row[cooCol])
		}
	}
}

func TestExt2Bounds(t *testing.T) {
	tab, err := Ext2(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if v < 0 || v > 1 {
				t.Fatalf("utilization %v out of range in %v", v, row)
			}
		}
	}
}

func TestExt3ScalingShape(t *testing.T) {
	tab, err := Ext3(small)
	if err != nil {
		t.Fatal(err)
	}
	// 2 densities × 2 formats × 5 lane points.
	if len(tab.Rows) != 2*2*5 {
		t.Fatalf("ext3 rows = %d", len(tab.Rows))
	}
	speedupC := colIndex(t, tab, "speedup")
	effC := colIndex(t, tab, "efficiency")
	lanesC := colIndex(t, tab, "lanes")
	for _, row := range tab.Rows {
		sp := parse(t, row[speedupC])
		lanes := parse(t, row[lanesC])
		eff := parse(t, row[effC])
		if sp > lanes+1e-9 {
			t.Fatalf("super-linear speedup %v on %v lanes", sp, lanes)
		}
		if eff <= 0 || eff > 1+1e-9 {
			t.Fatalf("efficiency %v out of range", eff)
		}
	}
}

// TestExt4BandwidthInsight locks in the paper's first insight: added
// memory bandwidth keeps helping the dense baseline but stops helping a
// compute-bound format like CSC.
func TestExt4BandwidthInsight(t *testing.T) {
	tab, err := Ext4(small)
	if err != nil {
		t.Fatal(err)
	}
	secC := colIndex(t, tab, "seconds")
	times := map[string]map[string]float64{} // format -> width -> seconds
	for _, row := range tab.Rows {
		if times[row[1]] == nil {
			times[row[1]] = map[string]float64{}
		}
		times[row[1]][row[0]] = parse(t, row[secC])
	}
	// Dense: 8x bandwidth buys at least 3x speedup.
	if sp := times["DENSE"]["4"] / times["DENSE"]["32"]; sp < 3 {
		t.Errorf("dense speedup from bandwidth = %.2f, want ≥3", sp)
	}
	// CSC: 8x bandwidth buys almost nothing (compute-bound).
	if sp := times["CSC"]["4"] / times["CSC"]["32"]; sp > 1.3 {
		t.Errorf("CSC speedup from bandwidth = %.2f; it should saturate (§8)", sp)
	}
}

// TestExt5UtilizationShape: padded formats keep the inner pipeline at
// exactly 1; the dense engine utilization equals average partition
// density.
func TestExt5UtilizationShape(t *testing.T) {
	tab, err := Ext5(small)
	if err != nil {
		t.Fatal(err)
	}
	engC := colIndex(t, tab, "dot_engine_util")
	innerC := colIndex(t, tab, "inner_pipeline_util")
	for _, row := range tab.Rows {
		eng, inner := parse(t, row[engC]), parse(t, row[innerC])
		if eng <= 0 || eng > 1 || inner <= 0 || inner > 1 {
			t.Fatalf("utilization out of range in %v", row)
		}
		switch row[1] {
		case "DENSE", "ELL":
			if inner != 1 {
				t.Errorf("%s/%s inner-pipeline utilization %v, want 1", row[0], row[1], inner)
			}
		case "CSR", "COO", "LIL":
			if row[0] != "Band" && inner >= 1 {
				t.Errorf("%s/%s inner-pipeline utilization %v, want < 1", row[0], row[1], inner)
			}
		}
	}
}

// TestReportDeterminism: regenerating an artifact from a fresh harness
// yields byte-identical output — the whole stack is seeded.
func TestReportDeterminism(t *testing.T) {
	render := func() string {
		o := NewSmallOptions()
		tab, err := Generate(o, "fig4")
		if err != nil {
			t.Fatal(err)
		}
		var b []byte
		buf := bytesBuffer{&b}
		if err := tab.Render(buf); err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if render() != render() {
		t.Fatal("fig4 output differs across fresh runs")
	}
}

// bytesBuffer adapts a byte-slice pointer as an io.Writer without
// importing bytes (keeps the test dependency surface minimal).
type bytesBuffer struct{ b *[]byte }

func (w bytesBuffer) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// TestExt7StaticEnergyPenalizesSlowFormats: §6.4's closing remark —
// CSC's static energy exceeds COO's despite comparable static power,
// because it runs so much longer.
func TestExt7StaticEnergyPenalizesSlowFormats(t *testing.T) {
	tab, err := Ext7(small)
	if err != nil {
		t.Fatal(err)
	}
	stC := colIndex(t, tab, "static_uJ")
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parse(t, row[stC])
	}
	if vals["CSC"] <= 2*vals["COO"] {
		t.Fatalf("CSC static energy %.2f not well above COO %.2f", vals["CSC"], vals["COO"])
	}
}

// TestExt8RankAgreementShape: the model-vs-measured table has one row
// per (SuiteSparse workload, kernel, thread count), τ within [-1, 1],
// and best-format cells that name real sparse formats. The measured
// values themselves are nondeterministic, so only the structure is
// asserted.
func TestExt8RankAgreementShape(t *testing.T) {
	o := NewSmallOptions()
	tab, err := Ext8(o)
	if err != nil {
		t.Fatal(err)
	}
	threadCounts := 1
	if runtime.GOMAXPROCS(0) > 1 {
		threadCounts = 2
	}
	kernels := 2 // spmv and cg:60
	if want := len(o.suite("SuiteSparse")) * kernels * threadCounts; len(tab.Rows) != want {
		t.Fatalf("ext8 rows = %d, want %d (workloads x kernels x thread counts)", len(tab.Rows), want)
	}
	tauC := colIndex(t, tab, "kendall_tau")
	aC := colIndex(t, tab, "analytic_best")
	nC := colIndex(t, tab, "native_best")
	kC := colIndex(t, tab, "kernel")
	sparse := map[string]bool{}
	for _, k := range formats.Sparse() {
		sparse[k.String()] = true
	}
	seenKernels := map[string]bool{}
	for _, row := range tab.Rows {
		if tau := parse(t, row[tauC]); tau < -1-1e-9 || tau > 1+1e-9 {
			t.Fatalf("tau %v out of range in %v", tau, row)
		}
		if !sparse[row[aC]] || !sparse[row[nC]] {
			t.Fatalf("best-format cells name unknown formats: %v", row)
		}
		seenKernels[row[kC]] = true
	}
	if !seenKernels["spmv"] || !seenKernels["cg:60"] {
		t.Fatalf("ext8 kernels seen = %v, want spmv and cg:60", seenKernels)
	}
}

// TestExt9FlipTableShape: the spmv-vs-cg:60 flip table has one row per
// SuiteSparse workload, winners that name real sparse formats, a flips
// column consistent with the two winner columns, and margins >= 1 (the
// runner-up always costs at least the winner). Fully analytic, so the
// table is deterministic.
func TestExt9FlipTableShape(t *testing.T) {
	o := NewSmallOptions()
	tab, err := Ext9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(o.suite("SuiteSparse")) {
		t.Fatalf("ext9 rows = %d, want one per SuiteSparse workload", len(tab.Rows))
	}
	sC := colIndex(t, tab, "spmv_best")
	cC := colIndex(t, tab, "cg60_best")
	fC := colIndex(t, tab, "flips")
	smC := colIndex(t, tab, "spmv_margin")
	cmC := colIndex(t, tab, "cg60_margin")
	sparse := map[string]bool{}
	for _, k := range formats.Sparse() {
		sparse[k.String()] = true
	}
	for _, row := range tab.Rows {
		if !sparse[row[sC]] || !sparse[row[cC]] {
			t.Fatalf("winner cells name unknown formats: %v", row)
		}
		wantFlip := "no"
		if row[sC] != row[cC] {
			wantFlip = "yes"
		}
		if row[fC] != wantFlip {
			t.Fatalf("flips column %q inconsistent with winners in %v", row[fC], row)
		}
		if parse(t, row[smC]) < 1 || parse(t, row[cmC]) < 1 {
			t.Fatalf("margin below 1 in %v", row)
		}
	}
}

func TestExtGenerateById(t *testing.T) {
	for _, id := range ExtOrder {
		if _, err := Generate(small, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}
