package formats

import "sync"

// encScratch is the reusable intermediate state of the sparse-native
// encoders: counting/cursor arrays for the transpose-style formats (CSC,
// LIL, DIA, JDS) and the block staging buffer for BCSR. Encoders check
// one out per call from a sync.Pool — effectively per-goroutine reuse
// under the tile-parallel plan warmup — so the warm encode path performs
// no intermediate allocations beyond the encoding's own output streams.
type encScratch struct {
	a []int32
	b []int32
	f []float64
}

var scratchPool = sync.Pool{New: func() any { return new(encScratch) }}

func getScratch() *encScratch  { return scratchPool.Get().(*encScratch) }
func putScratch(s *encScratch) { scratchPool.Put(s) }

// ints returns the primary int32 scratch of length n, zeroed.
func (s *encScratch) ints(n int) []int32 {
	if cap(s.a) < n {
		s.a = make([]int32, n)
		return s.a
	}
	s.a = s.a[:n]
	clear(s.a)
	return s.a
}

// ints2 returns the secondary int32 scratch of length n, zeroed.
func (s *encScratch) ints2(n int) []int32 {
	if cap(s.b) < n {
		s.b = make([]int32, n)
		return s.b
	}
	s.b = s.b[:n]
	clear(s.b)
	return s.b
}

// floats returns the float64 scratch of length n, zeroed.
func (s *encScratch) floats(n int) []float64 {
	if cap(s.f) < n {
		s.f = make([]float64, n)
		return s.f
	}
	s.f = s.f[:n]
	clear(s.f)
	return s.f
}
