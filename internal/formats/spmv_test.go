package formats

import (
	"fmt"
	"math"
	"testing"

	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// refSpMV is the reference accumulation every kernel is checked against:
// per-row ascending-column partial sums over the stored non-zeros, the
// order Plan.spmv and matrix.CSR.MulVec use.
func refSpMV(t *matrix.Tile, x, y []float64) {
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		if len(cols) == 0 {
			continue
		}
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] += s
	}
}

// rowOrdered lists the kernels whose single-tile output is bit-identical
// to refSpMV (products per output row added in ascending-column order);
// the rest agree within FP-reassociation tolerance.
var rowOrdered = map[Kind]bool{
	Dense: true, CSR: true, BCSR: true, ELL: true, SELL: true,
	SELLCS: true, COO: true, JDS: true, ELLCOO: true,
}

// adversarialTiles builds the shapes each kernel's layout handles
// specially: empty tiles, empty rows, fully dense rows, a single hot
// column, a pure diagonal, one long row over short ones (the ELL+COO
// spill), and the random shapes used by the PR 3 encoder ablations.
func adversarialTiles(p int) map[string]*matrix.Tile {
	tiles := map[string]*matrix.Tile{
		"empty":  matrix.NewTile(p, 0, 0),
		"dense":  randomTile(11, p, 1.0),
		"sparse": randomTile(12, p, 0.08),
		"mid":    randomTile(13, p, 0.4),
	}
	oneRow := matrix.NewTile(p, 0, 0)
	for j := 0; j < p; j++ {
		oneRow.Set(3, j, float64(j+1))
	}
	tiles["single_dense_row"] = oneRow

	oneCol := matrix.NewTile(p, 0, 0)
	for i := 0; i < p; i++ {
		oneCol.Set(i, 5, float64(i)-3.5)
	}
	tiles["single_column"] = oneCol

	diag := matrix.NewTile(p, 0, 0)
	for i := 0; i < p; i++ {
		diag.Set(i, i, 2.0+float64(i))
	}
	tiles["diagonal"] = diag

	// One long row forces an ELL+COO spill and a deep JDS diagonal set;
	// the alternating empty rows exercise row skipping.
	jag := matrix.NewTile(p, 0, 0)
	for j := 0; j < p; j++ {
		jag.Set(0, j, 1.0/float64(j+1))
	}
	for i := 2; i < p; i += 2 {
		jag.Set(i, (i*3)%p, float64(i))
	}
	tiles["jagged"] = jag

	corner := matrix.NewTile(p, 0, 0)
	corner.Set(p-1, p-1, 7.5)
	corner.Set(0, 0, -2.25)
	tiles["corners"] = corner
	return tiles
}

func testOperand(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.ValueIn(-2, 2)
	}
	return x
}

// TestKernelsMatchReference checks every format's kernel against the
// reference accumulation on random and adversarial tiles: bit-identical
// for the row-ordered kernels, within reassociation tolerance otherwise.
func TestKernelsMatchReference(t *testing.T) {
	const p = 16
	x := testOperand(p, 99)
	for name, tile := range adversarialTiles(p) {
		for _, k := range All() {
			t.Run(fmt.Sprintf("%s/%v", name, k), func(t *testing.T) {
				want := make([]float64, p)
				refSpMV(tile, x, want)
				got := make([]float64, p)
				Encode(k, tile).SpMV(x, got)
				for i := range want {
					if rowOrdered[k] {
						if got[i] != want[i] {
							t.Fatalf("row %d: %v != reference %v (exact-mode kernel)", i, got[i], want[i])
						}
					} else if math.Abs(got[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("row %d: %v vs reference %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestKernelsAccumulate proves the y += contract: running a kernel twice
// doubles the reference contribution on top of existing content.
func TestKernelsAccumulate(t *testing.T) {
	const p = 16
	tile := randomTile(21, p, 0.3)
	x := testOperand(p, 22)
	ref := make([]float64, p)
	refSpMV(tile, x, ref)
	for _, k := range All() {
		y := make([]float64, p)
		for i := range y {
			y[i] = float64(i)
		}
		enc := Encode(k, tile)
		enc.SpMV(x, y)
		enc.SpMV(x, y)
		for i := range y {
			want := float64(i) + 2*ref[i]
			if math.Abs(y[i]-want) > 1e-11*math.Max(1, math.Abs(want)) {
				t.Fatalf("%v row %d: %v, want %v", k, i, y[i], want)
			}
		}
	}
}

// TestKernelsBoundaryClamp feeds every kernel tile-local slices shorter
// than p — the boundary-tile case, where the clipped region is all
// structural zeros — and checks no out-of-range access occurs and the
// in-range output matches the reference.
func TestKernelsBoundaryClamp(t *testing.T) {
	const p, rows, cols = 16, 11, 9
	tile := matrix.NewTile(p, 0, 0)
	r := xrand.New(31)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < 0.5 {
				tile.Set(i, j, r.ValueIn(-4, 4))
			}
		}
	}
	x := testOperand(cols, 32)
	xFull := make([]float64, p)
	copy(xFull, x)
	want := make([]float64, p)
	refSpMV(tile, xFull, want)
	for _, k := range All() {
		y := make([]float64, rows)
		Encode(k, tile).SpMV(x, y) // len(x)=9 < p, len(y)=11 < p
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("%v row %d: %v vs reference %v", k, i, y[i], want[i])
			}
		}
	}
}

// TestKernelsAblationShapes runs the custom-parameter encoders (the PR 3
// ablation knobs) through their kernels: BCSR block edges, SELL slice
// heights, and ELL+COO width caps beyond the defaults.
func TestKernelsAblationShapes(t *testing.T) {
	const p = 16
	tile := randomTile(41, p, 0.25)
	x := testOperand(p, 42)
	want := make([]float64, p)
	refSpMV(tile, x, want)
	encs := map[string]Encoded{
		"bcsr_b2":     EncodeBCSRBlock(tile, 2),
		"bcsr_b8":     EncodeBCSRBlock(tile, 8),
		"sell_c2":     EncodeSELLSlice(tile, 2),
		"sell_c8":     EncodeSELLSlice(tile, 8),
		"ellcoo_cap1": EncodeELLCOOCap(tile, 1),
		"ellcoo_cap3": EncodeELLCOOCap(tile, 3),
	}
	for name, enc := range encs {
		y := make([]float64, p)
		enc.SpMV(x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("%s row %d: %v != reference %v", name, i, y[i], want[i])
			}
		}
	}
}
