package formats

import "copernicus/internal/matrix"

// ELLCOOEnc stores a tile in the hybrid ELL+COO form (§2): an ELL
// rectangle capped at width cap holds the first entries of every row, and
// rows longer than the cap spill their excess into a COO tuple list. The
// hybrid bounds ELL's padding explosion on matrices with a few long rows
// — the reason cuSPARSE's HYB format exists. Extension format; the paper
// describes it but measures plain ELL.
type ELLCOOEnc struct {
	p, w int // tile edge and capped rectangle width
	idx  []int32
	vals []float64
	// COO spill, sentinel-terminated like COOEnc.
	srow []int32
	scol []int32
	sval []float64
	nnz  int
	nzr  int
}

func encodeELLCOO(t *matrix.Tile, cap int) *ELLCOOEnc {
	w := 0
	for i := 0; i < t.P; i++ {
		if n := t.RowNNZ(i); n > w {
			w = n
		}
	}
	if w > cap {
		w = cap
	}
	e := &ELLCOOEnc{p: t.P, w: w, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.idx = make([]int32, t.P*w)
	e.vals = make([]float64, t.P*w)
	for i := range e.idx {
		e.idx[i] = ellPad
	}
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		take := min(len(cols), w)
		copy(e.idx[i*w:], cols[:take])
		copy(e.vals[i*w:], vals[:take])
		for k := take; k < len(cols); k++ {
			e.srow = append(e.srow, int32(i))
			e.scol = append(e.scol, cols[k])
			e.sval = append(e.sval, vals[k])
		}
	}
	e.srow = append(e.srow, cooSentinel)
	e.scol = append(e.scol, cooSentinel)
	e.sval = append(e.sval, 0)
	return e
}

// Kind implements Encoded.
func (e *ELLCOOEnc) Kind() Kind { return ELLCOO }

// P implements Encoded.
func (e *ELLCOOEnc) P() int { return e.p }

// Width returns the capped ELL rectangle width.
func (e *ELLCOOEnc) Width() int { return e.w }

// Spill returns the number of COO spill tuples (sentinel excluded).
func (e *ELLCOOEnc) Spill() int { return len(e.sval) - 1 }

// Decode implements Encoded.
func (e *ELLCOOEnc) Decode() (*matrix.Tile, error) {
	if len(e.idx) != e.p*e.w || len(e.vals) != e.p*e.w {
		return nil, corruptf("ell+coo: rectangle %d/%d for p=%d w=%d", len(e.idx), len(e.vals), e.p, e.w)
	}
	t := matrix.NewTile(e.p, 0, 0)
	for i := 0; i < e.p; i++ {
		for k := 0; k < e.w; k++ {
			j := e.idx[i*e.w+k]
			if j == ellPad {
				continue
			}
			if j < 0 || int(j) >= e.p {
				return nil, corruptf("ell+coo: column %d out of range at row %d", j, i)
			}
			t.Set(i, int(j), e.vals[i*e.w+k])
		}
	}
	if len(e.srow) == 0 || e.srow[len(e.srow)-1] != cooSentinel {
		return nil, corruptf("ell+coo: missing spill sentinel")
	}
	for k := 0; k < len(e.srow)-1; k++ {
		i, j := e.srow[k], e.scol[k]
		if i < 0 || int(i) >= e.p || j < 0 || int(j) >= e.p {
			return nil, corruptf("ell+coo: spill tuple %d out of range", k)
		}
		t.Set(int(i), int(j), e.sval[k])
	}
	return t, nil
}

// Footprint implements Encoded. As with COO, the spill sentinel is
// synthesized locally and does not travel.
func (e *ELLCOOEnc) Footprint() Footprint {
	spill := e.Spill()
	useful := e.nnz * matrix.BytesPerValue
	valueLane := (len(e.vals) + spill) * matrix.BytesPerValue
	idxLane := (len(e.idx) + 2*spill) * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. The ELL part processes all rows; the spill is
// scanned like COO.
func (e *ELLCOOEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.p, Width: e.w, Slices: e.Spill()}
}
