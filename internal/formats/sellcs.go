package formats

import (
	"copernicus/internal/matrix"
)

// SELLCSigmaWindow is the sorting-window height σ of the SELL-C-σ
// extension format: rows are sorted by descending non-zero count only
// within windows of this many rows, bounding how far the permutation
// displaces any row.
const SELLCSigmaWindow = 8

// SELLCSEnc stores a tile in SELL-C-σ form (Kreutzer et al., surveyed in
// §2): rows are sorted by length within σ-row windows — taming ELL
// padding like JDS does, but with bounded row displacement so the output
// gather stays local — then sliced ELL is applied with C-row slices. The
// permutation travels as metadata alongside the per-slice widths.
type SELLCSEnc struct {
	p, c   int
	perm   []int32 // perm[r] = original row stored at sorted position r
	widths []int32 // per-slice rectangle width
	idx    []int32 // concatenated slice rectangles
	vals   []float64
	nnz    int
	nzr    int
}

func encodeSELLCS(t *matrix.Tile, c, sigma int) *SELLCSEnc {
	if t.P%c != 0 || sigma%c != 0 {
		panic("formats: SELL-C-sigma needs p divisible by C and sigma divisible by C")
	}
	e := &SELLCSEnc{p: t.P, c: c, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.perm = make([]int32, t.P)
	for i := range e.perm {
		e.perm[i] = int32(i)
	}
	// Stable insertion sort by descending nnz within each sigma window
	// (windows are small — σ rows — so this is O(σ) amortized per row and
	// reproduces sort.SliceStable's ordering exactly).
	for w := 0; w < t.P; w += sigma {
		end := min(w+sigma, t.P)
		for a := w + 1; a < end; a++ {
			v := e.perm[a]
			key := t.RowNNZ(int(v))
			b := a - 1
			for b >= w && t.RowNNZ(int(e.perm[b])) < key {
				e.perm[b+1] = e.perm[b]
				b--
			}
			e.perm[b+1] = v
		}
	}
	// Slice the permuted rows and ELL-pack each slice.
	e.widths = make([]int32, 0, t.P/c)
	total := 0
	for s := 0; s < t.P/c; s++ {
		w := 0
		for r := s * c; r < (s+1)*c; r++ {
			if n := t.RowNNZ(int(e.perm[r])); n > w {
				w = n
			}
		}
		e.widths = append(e.widths, int32(w))
		total += c * w
	}
	e.idx = make([]int32, total)
	e.vals = make([]float64, total)
	for k := range e.idx {
		e.idx[k] = ellPad
	}
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		for r := 0; r < c; r++ {
			cols, vals := t.RowView(int(e.perm[s*c+r]))
			copy(e.idx[base+r*w:], cols)
			copy(e.vals[base+r*w:], vals)
		}
		base += c * w
	}
	return e
}

// Kind implements Encoded.
func (e *SELLCSEnc) Kind() Kind { return SELLCS }

// P implements Encoded.
func (e *SELLCSEnc) P() int { return e.p }

// SliceHeight returns the slice height C.
func (e *SELLCSEnc) SliceHeight() int { return e.c }

// Widths exposes the per-slice rectangle widths.
func (e *SELLCSEnc) Widths() []int32 { return e.widths }

// Decode implements Encoded.
func (e *SELLCSEnc) Decode() (*matrix.Tile, error) {
	if len(e.perm) != e.p {
		return nil, corruptf("sell-c-sigma: %d perm entries for p=%d", len(e.perm), e.p)
	}
	seen := make([]bool, e.p)
	for _, o := range e.perm {
		if o < 0 || int(o) >= e.p || seen[o] {
			return nil, corruptf("sell-c-sigma: invalid permutation entry %d", o)
		}
		seen[o] = true
	}
	if len(e.widths) != e.p/e.c {
		return nil, corruptf("sell-c-sigma: %d slices for p=%d c=%d", len(e.widths), e.p, e.c)
	}
	t := matrix.NewTile(e.p, 0, 0)
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		if w < 0 || w > e.p {
			return nil, corruptf("sell-c-sigma: slice %d width %d out of range", s, w)
		}
		if base+e.c*w > len(e.idx) || len(e.idx) != len(e.vals) {
			return nil, corruptf("sell-c-sigma: rectangle overflow at slice %d", s)
		}
		for r := 0; r < e.c; r++ {
			orig := int(e.perm[s*e.c+r])
			for k := 0; k < w; k++ {
				j := e.idx[base+r*w+k]
				if j == ellPad {
					continue
				}
				if j < 0 || int(j) >= e.p {
					return nil, corruptf("sell-c-sigma: column %d out of range in slice %d", j, s)
				}
				if e.vals[base+r*w+k] == 0 {
					return nil, corruptf("sell-c-sigma: explicit zero in slice %d", s)
				}
				t.Set(orig, int(j), e.vals[base+r*w+k])
			}
		}
		base += e.c * w
	}
	if base != len(e.idx) {
		return nil, corruptf("sell-c-sigma: %d trailing rectangle slots", len(e.idx)-base)
	}
	return t, nil
}

// Footprint implements Encoded: SELL's streams plus the permutation.
func (e *SELLCSEnc) Footprint() Footprint {
	useful := e.nnz * matrix.BytesPerValue
	valueLane := len(e.vals) * matrix.BytesPerValue
	idxLane := len(e.idx)*matrix.BytesPerIndex +
		len(e.widths)*matrix.BytesPerOffset +
		len(e.perm)*matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded.
func (e *SELLCSEnc) Stats() Stats {
	maxW := 0
	for _, w := range e.widths {
		if int(w) > maxW {
			maxW = int(w)
		}
	}
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.p, Width: maxW, Slices: len(e.widths)}
}
