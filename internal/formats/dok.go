package formats

import "copernicus/internal/matrix"

// DOKEnc stores a tile as a dictionary of keys (Fig. 1e): an open-
// addressing hash table mapping packed (row, column) keys to values. The
// paper treats DOK's decompression as identical to COO's (a full scan per
// output row); the difference shows up in the transfer footprint, where
// the table's empty slots travel as metadata. The table is sized to the
// next power of two with load factor ≤ 0.5, the usual open-addressing
// regime.
type DOKEnc struct {
	p    int
	keys []int32 // packed row<<16|col; dokEmpty marks a free slot
	vals []float64
	nnz  int
	nzr  int
}

const dokEmpty = int32(-1)

func dokKey(i, j int) int32 { return int32(i)<<16 | int32(j) }

func dokUnpack(k int32) (i, j int) { return int(k >> 16), int(k & 0xffff) }

func encodeDOK(t *matrix.Tile) *DOKEnc {
	e := &DOKEnc{p: t.P, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	size := 2
	for size < 2*max(1, e.nnz) {
		size *= 2
	}
	e.keys = make([]int32, size)
	e.vals = make([]float64, size)
	for s := range e.keys {
		e.keys[s] = dokEmpty
	}
	// Row-major insertion order matches the dense reference scan, so the
	// probe sequence — and therefore the table layout — is identical.
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		for k, j := range cols {
			key := dokKey(i, int(j))
			// Multiplicative hash, linear probing.
			slot := int(uint32(key)*2654435761) & (size - 1)
			for e.keys[slot] != dokEmpty {
				slot = (slot + 1) & (size - 1)
			}
			e.keys[slot] = key
			e.vals[slot] = vals[k]
		}
	}
	return e
}

// Kind implements Encoded.
func (e *DOKEnc) Kind() Kind { return DOK }

// P implements Encoded.
func (e *DOKEnc) P() int { return e.p }

// TableSize returns the hash-table slot count.
func (e *DOKEnc) TableSize() int { return len(e.keys) }

// Keys exposes the packed key slots (dokEmpty for free) for the hardware
// model.
func (e *DOKEnc) Keys() []int32 { return e.keys }

// Values exposes the value slots for the hardware model.
func (e *DOKEnc) Values() []float64 { return e.vals }

// Decode implements Encoded.
func (e *DOKEnc) Decode() (*matrix.Tile, error) {
	if len(e.keys) != len(e.vals) {
		return nil, corruptf("dok: %d keys vs %d values", len(e.keys), len(e.vals))
	}
	t := matrix.NewTile(e.p, 0, 0)
	seen := 0
	for s, k := range e.keys {
		if k == dokEmpty {
			continue
		}
		i, j := dokUnpack(k)
		if i < 0 || i >= e.p || j < 0 || j >= e.p {
			return nil, corruptf("dok: key (%d,%d) out of range", i, j)
		}
		if e.vals[s] == 0 {
			return nil, corruptf("dok: slot %d stores explicit zero", s)
		}
		if t.At(i, j) != 0 {
			return nil, corruptf("dok: duplicate key (%d,%d)", i, j)
		}
		t.Set(i, j, e.vals[s])
		seen++
	}
	if seen != e.nnz {
		return nil, corruptf("dok: %d occupied slots vs recorded nnz %d", seen, e.nnz)
	}
	return t, nil
}

// Footprint implements Encoded. The whole table travels: occupied slots
// carry one key word of metadata each; empty slots are all metadata.
func (e *DOKEnc) Footprint() Footprint {
	useful := e.nnz * matrix.BytesPerValue
	valueLane := len(e.vals) * matrix.BytesPerValue
	idxLane := len(e.keys) * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded.
func (e *DOKEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.nzr, Width: len(e.keys)}
}
