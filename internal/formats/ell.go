package formats

import "copernicus/internal/matrix"

// ELLEnc stores a tile in Ellpack form (Fig. 1g, Listing 5): each row's
// non-zeros are pushed to the left into a rectangular p×W array of values
// with a matching array of column indices, where W is the longest row's
// non-zero count and short rows are padded with an explicit -1 index. The
// fixed rectangle makes all accesses position-independent, so both arrays
// partition across BRAM banks and the decompressor is a single fully
// unrolled gather per row — but every row of the tile is processed,
// including all-zero rows, and the padding travels over AXI as dead
// metadata.
//
// The paper allocates the on-chip arrays with width formats.ELLWidth (6);
// the transferred rectangle uses the tile's true width W, which is what
// the bandwidth figures respond to.
type ELLEnc struct {
	p, w int
	idx  []int32   // p*w, row-major; ellPad marks padding
	vals []float64 // p*w, row-major
	nnz  int
	nzr  int
}

// ellPad is the explicit padding index of Fig. 1g.
const ellPad = int32(-1)

func encodeELL(t *matrix.Tile) *ELLEnc {
	w := 0
	for i := 0; i < t.P; i++ {
		if n := t.RowNNZ(i); n > w {
			w = n
		}
	}
	e := &ELLEnc{p: t.P, w: w, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.idx = make([]int32, t.P*w)
	e.vals = make([]float64, t.P*w)
	for i := range e.idx {
		e.idx[i] = ellPad
	}
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		copy(e.idx[i*w:], cols)
		copy(e.vals[i*w:], vals)
	}
	return e
}

// Kind implements Encoded.
func (e *ELLEnc) Kind() Kind { return ELL }

// P implements Encoded.
func (e *ELLEnc) P() int { return e.p }

// Width returns the rectangle width W (the longest row's nnz).
func (e *ELLEnc) Width() int { return e.w }

// Idx exposes the padded index rectangle for the hardware model.
func (e *ELLEnc) Idx() []int32 { return e.idx }

// Values exposes the padded value rectangle for the hardware model.
func (e *ELLEnc) Values() []float64 { return e.vals }

// Decode implements Encoded.
func (e *ELLEnc) Decode() (*matrix.Tile, error) {
	if len(e.idx) != e.p*e.w || len(e.vals) != e.p*e.w {
		return nil, corruptf("ell: rectangle %d/%d for p=%d w=%d", len(e.idx), len(e.vals), e.p, e.w)
	}
	t := matrix.NewTile(e.p, 0, 0)
	for i := 0; i < e.p; i++ {
		for k := 0; k < e.w; k++ {
			j := e.idx[i*e.w+k]
			if j == ellPad {
				if e.vals[i*e.w+k] != 0 {
					return nil, corruptf("ell: padded slot (%d,%d) holds a value", i, k)
				}
				continue
			}
			if j < 0 || int(j) >= e.p {
				return nil, corruptf("ell: column %d out of range at row %d", j, i)
			}
			if e.vals[i*e.w+k] == 0 {
				return nil, corruptf("ell: explicit zero at row %d slot %d", i, k)
			}
			t.Set(i, int(j), e.vals[i*e.w+k])
		}
	}
	return t, nil
}

// Footprint implements Encoded. Both rectangles travel in full; padding
// slots and all indices are metadata.
func (e *ELLEnc) Footprint() Footprint {
	useful := e.nnz * matrix.BytesPerValue
	valueLane := len(e.vals) * matrix.BytesPerValue
	idxLane := len(e.idx) * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. ELL cannot skip all-zero rows (the direction
// of compression hides row occupancy), so every tile row gets a dot
// product — the structural reason σ_ELL tracks the dense baseline.
func (e *ELLEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.p, Width: e.w}
}
