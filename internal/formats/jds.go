package formats

import (
	"copernicus/internal/matrix"
)

// JDSEnc stores a tile in jagged-diagonal-storage form (§2): rows are
// permuted by descending non-zero count, and the k-th non-zeros of all
// rows long enough to have one are stored contiguously as the k-th jagged
// diagonal. The permutation removes ELL's padding entirely at the cost of
// a p-entry permutation vector and per-diagonal start pointers — the
// classic vector-machine format. Extension format; the paper describes it
// but measures plain ELL.
type JDSEnc struct {
	p    int
	perm []int32 // perm[r] = original row stored at sorted position r
	ptr  []int32 // len W+1, start of each jagged diagonal in idx/vals
	idx  []int32 // len nnz, column indices
	vals []float64
	nzr  int
}

func encodeJDS(t *matrix.Tile) *JDSEnc {
	p, nnz := t.P, t.NNZ()
	e := &JDSEnc{p: p, nzr: t.NonZeroRows()}
	e.perm = make([]int32, p)
	// Stable counting sort of rows by descending non-zero count —
	// identical ordering to a stable comparison sort, in O(p).
	s := getScratch()
	cnt := s.ints(p + 1)
	for i := 0; i < p; i++ {
		cnt[t.RowNNZ(i)]++
	}
	pos := s.ints2(p + 1) // first sorted position of each count bucket
	running := int32(0)
	for c := p; c >= 0; c-- {
		pos[c] = running
		running += cnt[c]
	}
	for i := 0; i < p; i++ {
		c := t.RowNNZ(i)
		e.perm[pos[c]] = int32(i)
		pos[c]++
	}
	putScratch(s)
	w := 0
	if p > 0 {
		w = t.RowNNZ(int(e.perm[0]))
	}
	// The sparse row views are already the compacted rows; jagged
	// diagonal k gathers the k-th entry of every row long enough.
	e.ptr = make([]int32, w+1)
	e.idx = make([]int32, nnz)
	e.vals = make([]float64, nnz)
	cur := 0
	for k := 0; k < w; k++ {
		e.ptr[k] = int32(cur)
		for r := 0; r < p; r++ {
			cols, vals := t.RowView(int(e.perm[r]))
			if len(cols) <= k {
				break // rows are sorted by descending length
			}
			e.idx[cur] = cols[k]
			e.vals[cur] = vals[k]
			cur++
		}
	}
	e.ptr[w] = int32(cur)
	return e
}

// Kind implements Encoded.
func (e *JDSEnc) Kind() Kind { return JDS }

// P implements Encoded.
func (e *JDSEnc) P() int { return e.p }

// Width returns the number of jagged diagonals (the longest row's nnz).
func (e *JDSEnc) Width() int { return len(e.ptr) - 1 }

// Decode implements Encoded.
func (e *JDSEnc) Decode() (*matrix.Tile, error) {
	if len(e.perm) != e.p {
		return nil, corruptf("jds: %d perm entries for p=%d", len(e.perm), e.p)
	}
	seen := make([]bool, e.p)
	for _, o := range e.perm {
		if o < 0 || int(o) >= e.p || seen[o] {
			return nil, corruptf("jds: invalid permutation entry %d", o)
		}
		seen[o] = true
	}
	if len(e.ptr) == 0 || int(e.ptr[len(e.ptr)-1]) != len(e.vals) || len(e.idx) != len(e.vals) {
		return nil, corruptf("jds: pointer/stream inconsistency")
	}
	t := matrix.NewTile(e.p, 0, 0)
	for k := 0; k < e.Width(); k++ {
		start, end := int(e.ptr[k]), int(e.ptr[k+1])
		if start > end || end > len(e.vals) {
			return nil, corruptf("jds: diagonal %d range [%d,%d) invalid", k, start, end)
		}
		if end-start > e.p {
			return nil, corruptf("jds: diagonal %d supplies %d rows for p=%d", k, end-start, e.p)
		}
		// Jagged diagonal k supplies the k-th non-zero of the first
		// (end-start) sorted rows.
		for r := 0; r < end-start; r++ {
			j := e.idx[start+r]
			if j < 0 || int(j) >= e.p {
				return nil, corruptf("jds: column %d out of range on diagonal %d", j, k)
			}
			if e.vals[start+r] == 0 {
				return nil, corruptf("jds: explicit zero on diagonal %d", k)
			}
			t.Set(int(e.perm[r]), int(j), e.vals[start+r])
		}
	}
	return t, nil
}

// Footprint implements Encoded. No padding travels, but the permutation
// and diagonal pointers do.
func (e *JDSEnc) Footprint() Footprint {
	useful := len(e.vals) * matrix.BytesPerValue
	valueLane := useful
	idxLane := len(e.idx)*matrix.BytesPerIndex + len(e.perm)*matrix.BytesPerIndex +
		len(e.ptr)*matrix.BytesPerOffset
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane,
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. JDS skips all-zero rows (they sort to the
// bottom and no jagged diagonal reaches them).
func (e *JDSEnc) Stats() Stats {
	return Stats{NNZ: len(e.vals), NonZeroRows: e.nzr, DotRows: e.nzr,
		Width: e.Width(), Slices: e.Width()}
}
