package formats

import "copernicus/internal/matrix"

// CSCEnc stores a tile in compressed-sparse-column form: CSR applied to
// the transpose (Listing 3). The hardware consumes matrices row-by-row, so
// the decompressor must traverse every column for each output row — the
// orientation mismatch §5.2 includes deliberately as the extreme case,
// costing up to 21–30× the dense baseline in the paper's measurements.
type CSCEnc struct {
	p       int
	offsets []int32 // len p, cumulative nnz through each column
	rowIdx  []int32 // len nnz, row index per value, column-major order
	vals    []float64
	nzr     int
}

func encodeCSC(t *matrix.Tile) *CSCEnc {
	p, nnz := t.P, t.NNZ()
	e := &CSCEnc{p: p, offsets: make([]int32, p), nzr: t.NonZeroRows(),
		rowIdx: make([]int32, nnz), vals: make([]float64, nnz)}
	s := getScratch()
	cur := s.ints(p) // per-column counts, then scatter cursors
	for i := 0; i < p; i++ {
		cols, _ := t.RowView(i)
		for _, j := range cols {
			cur[j]++
		}
	}
	running := int32(0)
	for j := 0; j < p; j++ {
		c := cur[j]
		cur[j] = running
		running += c
		e.offsets[j] = running
	}
	// Scattering the row-major walk preserves ascending rows per column.
	for i := 0; i < p; i++ {
		cols, vals := t.RowView(i)
		for k, j := range cols {
			e.rowIdx[cur[j]] = int32(i)
			e.vals[cur[j]] = vals[k]
			cur[j]++
		}
	}
	putScratch(s)
	return e
}

// Kind implements Encoded.
func (e *CSCEnc) Kind() Kind { return CSC }

// P implements Encoded.
func (e *CSCEnc) P() int { return e.p }

// Offsets exposes the cumulative column offsets for the hardware model.
func (e *CSCEnc) Offsets() []int32 { return e.offsets }

// RowIdx exposes the row indices for the hardware model.
func (e *CSCEnc) RowIdx() []int32 { return e.rowIdx }

// Values exposes the non-zero values for the hardware model.
func (e *CSCEnc) Values() []float64 { return e.vals }

// ColRange returns the [start, end) slice of the index/value streams for
// column j.
func (e *CSCEnc) ColRange(j int) (start, end int32) {
	if j > 0 {
		start = e.offsets[j-1]
	}
	return start, e.offsets[j]
}

// Decode implements Encoded.
func (e *CSCEnc) Decode() (*matrix.Tile, error) {
	if len(e.offsets) != e.p {
		return nil, corruptf("csc: %d offsets for p=%d", len(e.offsets), e.p)
	}
	if len(e.rowIdx) != len(e.vals) {
		return nil, corruptf("csc: %d indices vs %d values", len(e.rowIdx), len(e.vals))
	}
	if int(e.offsets[e.p-1]) != len(e.vals) {
		return nil, corruptf("csc: final offset %d vs %d values", e.offsets[e.p-1], len(e.vals))
	}
	t := matrix.NewTile(e.p, 0, 0)
	prev := int32(0)
	for j := 0; j < e.p; j++ {
		if e.offsets[j] < prev {
			return nil, corruptf("csc: offsets decrease at column %d", j)
		}
		if int(e.offsets[j]) > len(e.vals) {
			return nil, corruptf("csc: offset %d at column %d exceeds %d values", e.offsets[j], j, len(e.vals))
		}
		for k := prev; k < e.offsets[j]; k++ {
			i := e.rowIdx[k]
			if i < 0 || int(i) >= e.p {
				return nil, corruptf("csc: row %d out of range at column %d", i, j)
			}
			t.Set(int(i), j, e.vals[k])
		}
		prev = e.offsets[j]
	}
	return t, nil
}

// Footprint implements Encoded.
func (e *CSCEnc) Footprint() Footprint {
	useful := len(e.vals) * matrix.BytesPerValue
	idx := len(e.rowIdx)*matrix.BytesPerIndex + len(e.offsets)*matrix.BytesPerOffset
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idx,
		ValueLaneBytes: useful,
		IndexLaneBytes: idx,
	}
}

// Stats implements Encoded.
func (e *CSCEnc) Stats() Stats {
	return Stats{NNZ: len(e.vals), NonZeroRows: e.nzr, DotRows: e.nzr}
}
