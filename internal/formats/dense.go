package formats

import "copernicus/internal/matrix"

// DenseEnc is the uncompressed baseline: all p² values are transmitted in
// row-major order with no metadata. Its σ is 1 by definition (Eq. 1) and
// its bandwidth utilization equals the tile density — transmitted zeros
// are transfer overhead even though they are not metadata in the usual
// sense, which is exactly the inefficiency sparse formats exist to remove.
type DenseEnc struct {
	p   int
	val []float64 // p*p row-major, zeros included
	nnz int
	nzr int
}

func encodeDense(t *matrix.Tile) *DenseEnc {
	e := &DenseEnc{p: t.P, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.val = t.Dense()
	return e
}

// Kind implements Encoded.
func (e *DenseEnc) Kind() Kind { return Dense }

// P implements Encoded.
func (e *DenseEnc) P() int { return e.p }

// Values exposes the row-major payload for the hardware model.
func (e *DenseEnc) Values() []float64 { return e.val }

// Decode implements Encoded.
func (e *DenseEnc) Decode() (*matrix.Tile, error) {
	if len(e.val) != e.p*e.p {
		return nil, corruptf("dense: %d values for p=%d", len(e.val), e.p)
	}
	t := matrix.NewTile(e.p, 0, 0)
	for i := 0; i < e.p; i++ {
		for j := 0; j < e.p; j++ {
			t.Set(i, j, e.val[i*e.p+j])
		}
	}
	return t, nil
}

// Footprint implements Encoded. The p² transmitted words split into the
// nnz useful values and the transmitted zeros, which count against
// utilization as overhead.
func (e *DenseEnc) Footprint() Footprint {
	total := e.p * e.p * matrix.BytesPerValue
	useful := e.nnz * matrix.BytesPerValue
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      total - useful,
		ValueLaneBytes: total,
	}
}

// Stats implements Encoded. Dense performs a dot product for every row.
func (e *DenseEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.p}
}
