package formats

import (
	"testing"

	"copernicus/internal/matrix"
)

// TestCSRSkipListMatchesFullWalk: the skip-list SpMV visits exactly the
// non-empty rows the full offset walk visits, in the same order, with the
// same per-row accumulation — outputs must be bit-identical on every
// adversarial tile shape, including all-empty and mostly-empty tiles.
func TestCSRSkipListMatchesFullWalk(t *testing.T) {
	const p = 32
	for name, tile := range adversarialTiles(p) {
		e := Encode(CSR, tile).(*CSREnc)
		x := make([]float64, p)
		for j := range x {
			x[j] = float64(j%7) - 2.5
		}
		skip := make([]float64, p)
		full := make([]float64, p)
		e.SpMV(x, skip)
		e.SpMVFullWalk(x, full)
		for i := range full {
			if skip[i] != full[i] {
				t.Fatalf("%s: y[%d] = %v via skip list, %v via full walk", name, i, skip[i], full[i])
			}
		}
	}
}

// TestCSRSkipListContents: the list holds exactly the non-empty row
// indices, ascending — one entry per NonZeroRows, and it is derived
// metadata: a decode/re-encode round trip rebuilds it identically.
func TestCSRSkipListContents(t *testing.T) {
	tile := matrix.NewTile(16, 0, 0)
	for _, i := range []int{1, 5, 6, 13} {
		tile.Set(i, i, float64(i+1))
	}
	e := Encode(CSR, tile).(*CSREnc)
	want := []int32{1, 5, 6, 13}
	if len(e.skip) != len(want) {
		t.Fatalf("skip = %v, want %v", e.skip, want)
	}
	for k, i := range want {
		if e.skip[k] != i {
			t.Fatalf("skip = %v, want %v", e.skip, want)
		}
	}
	if e.Stats().NonZeroRows != len(want) {
		t.Fatalf("NonZeroRows = %d, skip holds %d rows", e.Stats().NonZeroRows, len(want))
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	re := Encode(CSR, dec).(*CSREnc)
	if len(re.skip) != len(e.skip) {
		t.Fatalf("re-encoded skip = %v, want %v", re.skip, e.skip)
	}
	for k := range e.skip {
		if re.skip[k] != e.skip[k] {
			t.Fatalf("re-encoded skip = %v, want %v", re.skip, e.skip)
		}
	}
}
