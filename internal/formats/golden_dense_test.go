package formats

import (
	"math"
	"slices"
	"sort"
	"testing"

	"copernicus/internal/gen"
	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// This file keeps the pre-sparse-native encoders alive as a test-only
// dense reference: each walks every (i, j) coordinate of the tile through
// At — exactly the O(p²) scans the production encoders replaced with
// O(nnz + p) sparse walks — and the golden cross-check proves the two
// paths emit byte-identical streams, footprints, and stats for every
// format over random and adversarially structured tiles.

func refEncodeCSR(t *matrix.Tile) *CSREnc {
	e := &CSREnc{p: t.P, offsets: make([]int32, t.P), nzr: t.NonZeroRows()}
	running := int32(0)
	for i := 0; i < t.P; i++ {
		for j := 0; j < t.P; j++ {
			if v := t.At(i, j); v != 0 {
				e.colIdx = append(e.colIdx, int32(j))
				e.vals = append(e.vals, v)
				running++
			}
		}
		e.offsets[i] = running
	}
	return e
}

func refEncodeCSC(t *matrix.Tile) *CSCEnc {
	e := &CSCEnc{p: t.P, offsets: make([]int32, t.P), nzr: t.NonZeroRows()}
	running := int32(0)
	for j := 0; j < t.P; j++ {
		for i := 0; i < t.P; i++ {
			if v := t.At(i, j); v != 0 {
				e.rowIdx = append(e.rowIdx, int32(i))
				e.vals = append(e.vals, v)
				running++
			}
		}
		e.offsets[j] = running
	}
	return e
}

func refEncodeBCSR(t *matrix.Tile, b int) *BCSREnc {
	nb := t.P / b
	e := &BCSREnc{p: t.P, b: b, offsets: make([]int32, nb), nnz: t.NNZ(), nzr: t.NonZeroRows()}
	running := int32(0)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			nz := false
			for i := 0; i < b && !nz; i++ {
				for j := 0; j < b; j++ {
					if t.At(bi*b+i, bj*b+j) != 0 {
						nz = true
						break
					}
				}
			}
			if !nz {
				continue
			}
			e.colIdx = append(e.colIdx, int32(bj*b))
			for i := 0; i < b; i++ {
				for j := 0; j < b; j++ {
					e.vals = append(e.vals, t.At(bi*b+i, bj*b+j))
				}
			}
			running++
		}
		e.offsets[bi] = running
	}
	return e
}

func refEncodeCOO(t *matrix.Tile) *COOEnc {
	e := &COOEnc{p: t.P, nzr: t.NonZeroRows()}
	for i := 0; i < t.P; i++ {
		for j := 0; j < t.P; j++ {
			if v := t.At(i, j); v != 0 {
				e.rows = append(e.rows, int32(i))
				e.cols = append(e.cols, int32(j))
				e.vals = append(e.vals, v)
			}
		}
	}
	e.rows = append(e.rows, cooSentinel)
	e.cols = append(e.cols, cooSentinel)
	e.vals = append(e.vals, 0)
	return e
}

func refEncodeDOK(t *matrix.Tile) *DOKEnc {
	e := &DOKEnc{p: t.P, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	size := 2
	for size < 2*max(1, e.nnz) {
		size *= 2
	}
	e.keys = make([]int32, size)
	e.vals = make([]float64, size)
	for s := range e.keys {
		e.keys[s] = dokEmpty
	}
	for i := 0; i < t.P; i++ {
		for j := 0; j < t.P; j++ {
			v := t.At(i, j)
			if v == 0 {
				continue
			}
			key := dokKey(i, j)
			slot := int(uint32(key)*2654435761) & (size - 1)
			for e.keys[slot] != dokEmpty {
				slot = (slot + 1) & (size - 1)
			}
			e.keys[slot] = key
			e.vals[slot] = v
		}
	}
	return e
}

func refEncodeLIL(t *matrix.Tile) *LILEnc {
	e := &LILEnc{
		p:       t.P,
		colRows: make([][]int32, t.P),
		colVals: make([][]float64, t.P),
		nnz:     t.NNZ(),
		nzr:     t.NonZeroRows(),
	}
	for j := 0; j < t.P; j++ {
		for i := 0; i < t.P; i++ {
			if v := t.At(i, j); v != 0 {
				e.colRows[j] = append(e.colRows[j], int32(i))
				e.colVals[j] = append(e.colVals[j], v)
			}
		}
	}
	return e
}

func refEncodeELL(t *matrix.Tile) *ELLEnc {
	w := 0
	for i := 0; i < t.P; i++ {
		if n := t.RowNNZ(i); n > w {
			w = n
		}
	}
	e := &ELLEnc{p: t.P, w: w, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.idx = make([]int32, t.P*w)
	e.vals = make([]float64, t.P*w)
	for i := range e.idx {
		e.idx[i] = ellPad
	}
	for i := 0; i < t.P; i++ {
		k := 0
		for j := 0; j < t.P; j++ {
			if v := t.At(i, j); v != 0 {
				e.idx[i*w+k] = int32(j)
				e.vals[i*w+k] = v
				k++
			}
		}
	}
	return e
}

func refEncodeDIA(t *matrix.Tile) *DIAEnc {
	e := &DIAEnc{p: t.P, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	for d := -(t.P - 1); d <= t.P-1; d++ {
		nz := false
		for i := 0; i < t.P; i++ {
			j := i + d
			if j >= 0 && j < t.P && t.At(i, j) != 0 {
				nz = true
				break
			}
		}
		if !nz {
			continue
		}
		e.diagNo = append(e.diagNo, int32(d))
		lane := make([]float64, t.P)
		for i := 0; i < t.P; i++ {
			if j := i + d; j >= 0 && j < t.P {
				lane[i] = t.At(i, j)
			}
		}
		e.lanes = append(e.lanes, lane...)
	}
	return e
}

func refEncodeSELL(t *matrix.Tile, c int) *SELLEnc {
	e := &SELLEnc{p: t.P, c: c, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	for s := 0; s < t.P/c; s++ {
		w := 0
		for i := s * c; i < (s+1)*c; i++ {
			if n := t.RowNNZ(i); n > w {
				w = n
			}
		}
		e.widths = append(e.widths, int32(w))
		base := len(e.idx)
		e.idx = append(e.idx, make([]int32, c*w)...)
		e.vals = append(e.vals, make([]float64, c*w)...)
		for k := base; k < len(e.idx); k++ {
			e.idx[k] = ellPad
		}
		for r := 0; r < c; r++ {
			k := 0
			for j := 0; j < t.P; j++ {
				if v := t.At(s*c+r, j); v != 0 {
					e.idx[base+r*w+k] = int32(j)
					e.vals[base+r*w+k] = v
					k++
				}
			}
		}
	}
	return e
}

func refEncodeELLCOO(t *matrix.Tile, cap int) *ELLCOOEnc {
	w := 0
	for i := 0; i < t.P; i++ {
		if n := t.RowNNZ(i); n > w {
			w = n
		}
	}
	if w > cap {
		w = cap
	}
	e := &ELLCOOEnc{p: t.P, w: w, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.idx = make([]int32, t.P*w)
	e.vals = make([]float64, t.P*w)
	for i := range e.idx {
		e.idx[i] = ellPad
	}
	for i := 0; i < t.P; i++ {
		k := 0
		for j := 0; j < t.P; j++ {
			v := t.At(i, j)
			if v == 0 {
				continue
			}
			if k < w {
				e.idx[i*w+k] = int32(j)
				e.vals[i*w+k] = v
				k++
			} else {
				e.srow = append(e.srow, int32(i))
				e.scol = append(e.scol, int32(j))
				e.sval = append(e.sval, v)
			}
		}
	}
	e.srow = append(e.srow, cooSentinel)
	e.scol = append(e.scol, cooSentinel)
	e.sval = append(e.sval, 0)
	return e
}

func refEncodeJDS(t *matrix.Tile) *JDSEnc {
	e := &JDSEnc{p: t.P, nzr: t.NonZeroRows()}
	e.perm = make([]int32, t.P)
	rows := make([]int, t.P)
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return t.RowNNZ(rows[a]) > t.RowNNZ(rows[b])
	})
	for r, orig := range rows {
		e.perm[r] = int32(orig)
	}
	w := 0
	if t.P > 0 {
		w = t.RowNNZ(rows[0])
	}
	type ent struct {
		col int32
		val float64
	}
	compact := make([][]ent, t.P)
	for r, orig := range rows {
		for j := 0; j < t.P; j++ {
			if v := t.At(orig, j); v != 0 {
				compact[r] = append(compact[r], ent{int32(j), v})
			}
		}
	}
	e.ptr = make([]int32, w+1)
	for k := 0; k < w; k++ {
		e.ptr[k] = int32(len(e.vals))
		for r := 0; r < t.P && len(compact[r]) > k; r++ {
			e.idx = append(e.idx, compact[r][k].col)
			e.vals = append(e.vals, compact[r][k].val)
		}
	}
	e.ptr[w] = int32(len(e.vals))
	return e
}

func refEncodeSELLCS(t *matrix.Tile, c, sigma int) *SELLCSEnc {
	e := &SELLCSEnc{p: t.P, c: c, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.perm = make([]int32, t.P)
	for i := range e.perm {
		e.perm[i] = int32(i)
	}
	for w := 0; w < t.P; w += sigma {
		end := min(w+sigma, t.P)
		win := e.perm[w:end]
		sort.SliceStable(win, func(a, b int) bool {
			return t.RowNNZ(int(win[a])) > t.RowNNZ(int(win[b]))
		})
	}
	for s := 0; s < t.P/c; s++ {
		w := 0
		for r := s * c; r < (s+1)*c; r++ {
			if n := t.RowNNZ(int(e.perm[r])); n > w {
				w = n
			}
		}
		e.widths = append(e.widths, int32(w))
		base := len(e.idx)
		e.idx = append(e.idx, make([]int32, c*w)...)
		e.vals = append(e.vals, make([]float64, c*w)...)
		for k := base; k < len(e.idx); k++ {
			e.idx[k] = ellPad
		}
		for r := 0; r < c; r++ {
			orig := int(e.perm[s*c+r])
			k := 0
			for j := 0; j < t.P; j++ {
				if v := t.At(orig, j); v != 0 {
					e.idx[base+r*w+k] = int32(j)
					e.vals[base+r*w+k] = v
					k++
				}
			}
		}
	}
	return e
}

func refEncodeDense(t *matrix.Tile) *DenseEnc {
	e := &DenseEnc{p: t.P, val: make([]float64, t.P*t.P), nnz: t.NNZ(), nzr: t.NonZeroRows()}
	for i := 0; i < t.P; i++ {
		for j := 0; j < t.P; j++ {
			e.val[i*t.P+j] = t.At(i, j)
		}
	}
	return e
}

func refEncode(k Kind, t *matrix.Tile) Encoded {
	switch k {
	case Dense:
		return refEncodeDense(t)
	case CSR:
		return refEncodeCSR(t)
	case CSC:
		return refEncodeCSC(t)
	case BCSR:
		return refEncodeBCSR(t, BCSRBlock)
	case COO:
		return refEncodeCOO(t)
	case DOK:
		return refEncodeDOK(t)
	case LIL:
		return refEncodeLIL(t)
	case ELL:
		return refEncodeELL(t)
	case DIA:
		return refEncodeDIA(t)
	case SELL:
		return refEncodeSELL(t, SELLSlice)
	case ELLCOO:
		return refEncodeELLCOO(t, ELLWidth)
	case JDS:
		return refEncodeJDS(t)
	case SELLCS:
		return refEncodeSELLCS(t, SELLSlice, SELLCSigmaWindow)
	default:
		panic("refEncode: unknown kind")
	}
}

// encStreamsEqual compares two same-format encodings stream by stream
// (slices.Equal treats nil and empty as equal, so append-grown reference
// streams match exactly-allocated production ones).
func encStreamsEqual(t *testing.T, got, want Encoded) bool {
	t.Helper()
	switch g := got.(type) {
	case *DenseEnc:
		w := want.(*DenseEnc)
		return g.p == w.p && slices.Equal(g.val, w.val)
	case *CSREnc:
		w := want.(*CSREnc)
		return g.p == w.p && slices.Equal(g.offsets, w.offsets) &&
			slices.Equal(g.colIdx, w.colIdx) && slices.Equal(g.vals, w.vals)
	case *CSCEnc:
		w := want.(*CSCEnc)
		return g.p == w.p && slices.Equal(g.offsets, w.offsets) &&
			slices.Equal(g.rowIdx, w.rowIdx) && slices.Equal(g.vals, w.vals)
	case *BCSREnc:
		w := want.(*BCSREnc)
		return g.p == w.p && g.b == w.b && slices.Equal(g.offsets, w.offsets) &&
			slices.Equal(g.colIdx, w.colIdx) && slices.Equal(g.vals, w.vals)
	case *COOEnc:
		w := want.(*COOEnc)
		return g.p == w.p && slices.Equal(g.rows, w.rows) &&
			slices.Equal(g.cols, w.cols) && slices.Equal(g.vals, w.vals)
	case *DOKEnc:
		w := want.(*DOKEnc)
		return g.p == w.p && slices.Equal(g.keys, w.keys) && slices.Equal(g.vals, w.vals)
	case *LILEnc:
		w := want.(*LILEnc)
		if g.p != w.p || len(g.colRows) != len(w.colRows) {
			return false
		}
		for j := range g.colRows {
			if !slices.Equal(g.colRows[j], w.colRows[j]) || !slices.Equal(g.colVals[j], w.colVals[j]) {
				return false
			}
		}
		return true
	case *ELLEnc:
		w := want.(*ELLEnc)
		return g.p == w.p && g.w == w.w && slices.Equal(g.idx, w.idx) && slices.Equal(g.vals, w.vals)
	case *DIAEnc:
		w := want.(*DIAEnc)
		return g.p == w.p && slices.Equal(g.diagNo, w.diagNo) && slices.Equal(g.lanes, w.lanes)
	case *SELLEnc:
		w := want.(*SELLEnc)
		return g.p == w.p && g.c == w.c && slices.Equal(g.widths, w.widths) &&
			slices.Equal(g.idx, w.idx) && slices.Equal(g.vals, w.vals)
	case *ELLCOOEnc:
		w := want.(*ELLCOOEnc)
		return g.p == w.p && g.w == w.w && slices.Equal(g.idx, w.idx) &&
			slices.Equal(g.vals, w.vals) && slices.Equal(g.srow, w.srow) &&
			slices.Equal(g.scol, w.scol) && slices.Equal(g.sval, w.sval)
	case *JDSEnc:
		w := want.(*JDSEnc)
		return g.p == w.p && slices.Equal(g.perm, w.perm) && slices.Equal(g.ptr, w.ptr) &&
			slices.Equal(g.idx, w.idx) && slices.Equal(g.vals, w.vals)
	case *SELLCSEnc:
		w := want.(*SELLCSEnc)
		return g.p == w.p && g.c == w.c && slices.Equal(g.perm, w.perm) &&
			slices.Equal(g.widths, w.widths) && slices.Equal(g.idx, w.idx) &&
			slices.Equal(g.vals, w.vals)
	default:
		t.Fatalf("encStreamsEqual: unhandled type %T", got)
		return false
	}
}

// goldenTiles builds the cross-check corpus: random tiles over a density
// sweep plus the structured adversaries (diagonal, full row/column,
// checkerboard, anti-diagonal, skewed, empty), all at several partition
// sizes — every tile both staged through Set and extracted sealed from a
// partitioned matrix.
func goldenTiles(t *testing.T) []*matrix.Tile {
	t.Helper()
	var tiles []*matrix.Tile
	for _, p := range []int{8, 16, 32} {
		for _, density := range []float64{0, 0.02, 0.1, 0.3, 0.7, 1} {
			r := xrand.New(uint64(p)*1000 + uint64(density*100))
			tl := matrix.NewTile(p, 0, 0)
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if r.Float64() < density {
						tl.Set(i, j, r.ValueIn(-4, 4))
					}
				}
			}
			tiles = append(tiles, tl)
		}
		diag := matrix.NewTile(p, 0, 0)
		fullRow := matrix.NewTile(p, 0, 0)
		fullCol := matrix.NewTile(p, 0, 0)
		checker := matrix.NewTile(p, 0, 0)
		anti := matrix.NewTile(p, 0, 0)
		skew := matrix.NewTile(p, 0, 0)
		for i := 0; i < p; i++ {
			diag.Set(i, i, float64(i+1))
			fullRow.Set(p/2, i, float64(i+1))
			fullCol.Set(i, p/2, float64(i+1))
			anti.Set(i, p-1-i, float64(i+1))
			skew.Set(3, i, 1)
			for j := 0; j < p; j++ {
				if (i+j)%2 == 0 {
					checker.Set(i, j, 1)
				}
			}
		}
		for i := 0; i < p; i += 3 {
			skew.Set(i, 0, 1)
		}
		tiles = append(tiles, diag, fullRow, fullCol, checker, anti, skew, matrix.NewTile(p, 0, 0))
	}
	// Sealed tiles straight out of a partitioning (the production path).
	m := gen.Random(96, 0.08, 4242)
	tiles = append(tiles, matrix.Partition(m, 16).Tiles...)
	tiles = append(tiles, matrix.Partition(gen.Band(96, 9, 7), 8).Tiles...)
	return tiles
}

// TestSparseEncodersMatchDenseReference is the golden cross-check: for
// every format and every corpus tile, the sparse-native encoder must
// produce byte-identical streams, footprint, and stats to the dense
// reference walk.
func TestSparseEncodersMatchDenseReference(t *testing.T) {
	for _, tile := range goldenTiles(t) {
		for _, k := range All() {
			got := Encode(k, tile)
			want := refEncode(k, tile)
			if !encStreamsEqual(t, got, want) {
				t.Fatalf("%v: sparse encode of %dx%d tile (nnz=%d) diverges from dense reference",
					k, tile.P, tile.P, tile.NNZ())
			}
			if got.Footprint() != want.Footprint() {
				t.Fatalf("%v: footprint %+v != reference %+v", k, got.Footprint(), want.Footprint())
			}
			if got.Stats() != want.Stats() {
				t.Fatalf("%v: stats %+v != reference %+v", k, got.Stats(), want.Stats())
			}
		}
	}
}

// TestSparseEncodersMatchDenseReferenceAblations covers the ablation
// entry points' custom parameters.
func TestSparseEncodersMatchDenseReferenceAblations(t *testing.T) {
	for _, tile := range goldenTiles(t) {
		for _, b := range []int{2, 8} {
			if tile.P%b != 0 {
				continue
			}
			got, want := EncodeBCSRBlock(tile, b), refEncodeBCSR(tile, b)
			if !encStreamsEqual(t, got, want) || got.Footprint() != want.Footprint() || got.Stats() != want.Stats() {
				t.Fatalf("BCSR b=%d: sparse encode diverges from dense reference", b)
			}
		}
		for _, cap := range []int{2, 12} {
			got, want := EncodeELLCOOCap(tile, cap), refEncodeELLCOO(tile, cap)
			if !encStreamsEqual(t, got, want) || got.Footprint() != want.Footprint() || got.Stats() != want.Stats() {
				t.Fatalf("ELL+COO cap=%d: sparse encode diverges from dense reference", cap)
			}
		}
		if tile.P%8 == 0 {
			got, want := EncodeSELLSlice(tile, 8), refEncodeSELL(tile, 8)
			if !encStreamsEqual(t, got, want) || got.Footprint() != want.Footprint() || got.Stats() != want.Stats() {
				t.Fatal("SELL c=8: sparse encode diverges from dense reference")
			}
		}
	}
}

// TestEncodeNaNMatchesReference: NaN payloads must flow through the
// sparse walks exactly as through the dense reference (compared via
// Decode, since NaN breaks slice equality).
func TestEncodeNaNMatchesReference(t *testing.T) {
	tile := matrix.NewTile(8, 0, 0)
	tile.Set(1, 2, math.NaN())
	tile.Set(5, 7, 3.5)
	for _, k := range All() {
		got := Encode(k, tile)
		dec, err := got.Decode()
		if err != nil {
			t.Fatalf("%v: decode: %v", k, err)
		}
		if !math.IsNaN(dec.At(1, 2)) || dec.At(5, 7) != 3.5 {
			t.Fatalf("%v: NaN payload lost in sparse encode", k)
		}
	}
}
