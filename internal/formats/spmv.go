package formats

// Executable SpMV kernels: every format walks its own encoded layout to
// compute y += T·x, turning the encoders from cycle-model inputs into a
// runnable sparse library. The traversals mirror what the modelled
// decompressors do — CSR walks row spans, BCSR multiplies dense b×b
// sub-blocks, ELL-family kernels sweep padded rectangles, DIA strides
// stored diagonals, CSC/LIL scatter column-major, COO/DOK scatter tuple
// streams, JDS gathers jagged diagonals through the row permutation —
// so the measured cost of a kernel is the host-CPU analogue of the
// format's modelled decompression behaviour.
//
// Determinism contract (for finite operands):
//
//   - Row-ordered kernels — Dense, CSR, BCSR, ELL, SELL, SELL-C-σ, and
//     the rectangle+spill order of ELL+COO, plus COO's row-major tuples
//     and JDS's per-row ascending diagonals — contribute each output
//     row's products in ascending-column order, so a single tile's
//     result is bit-identical to the reference per-row accumulation
//     (Plan.spmv / CSR.MulVec).
//   - Column- and table-ordered kernels — CSC, LIL, DOK, DIA — add the
//     same products in a different association; results agree with the
//     reference within floating-point reassociation tolerance (the
//     engine's 1e-9 functional check passes for every format).
//
// Padded formats (Dense, BCSR, ELL family, DIA) multiply explicitly
// stored zeros; for finite x those products are ±0 and never change the
// sum, but a non-finite operand entry (Inf/NaN) meeting a structural
// zero can propagate where the reference skips it — the documented
// deviation of padded execution from nonzero-only traversal.

// SpMV implements Encoded: the dense baseline multiplies every stored
// slot row-major. Boundary tiles clamp the walked region to the operand
// and output lengths; the clipped slots are all structural zero padding.
func (e *DenseEnc) SpMV(x, y []float64) {
	p := e.p
	rows := min(p, len(y))
	cols := min(p, len(x))
	for i := 0; i < rows; i++ {
		row := e.val[i*p : i*p+cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] += s
	}
}

// SpMV implements Encoded: the CSR kernel is the reference traversal —
// per-row spans from the cumulative offsets, ascending columns — walked
// through the encode-time skip list, so only non-empty rows are visited
// (on sparse tiles the full p-row offset walk is mostly empty rows). The
// accumulation order per row is unchanged from the full walk, so the
// result is bit-identical to SpMVFullWalk.
func (e *CSREnc) SpMV(x, y []float64) {
	for _, i32 := range e.skip {
		i := int(i32)
		start := int32(0)
		if i > 0 {
			start = e.offsets[i-1]
		}
		end := e.offsets[i]
		s := 0.0
		for k := start; k < end; k++ {
			s += e.vals[k] * x[e.colIdx[k]]
		}
		y[i] += s
	}
}

// SpMVFullWalk is the pre-skip-list CSR traversal: every row's offset is
// read, empty rows included. Kept as the reference the skip-list kernel
// is held bit-identical to, and for the before/after comparison in the
// bench artifact.
func (e *CSREnc) SpMVFullWalk(x, y []float64) {
	start := int32(0)
	for i := 0; i < e.p; i++ {
		end := e.offsets[i]
		if end > start {
			s := 0.0
			for k := start; k < end; k++ {
				s += e.vals[k] * x[e.colIdx[k]]
			}
			y[i] += s
		}
		start = end
	}
}

// SpMV implements Encoded: register-blocked BCSR. Each block row's
// stored b×b blocks are walked once per covered output row, giving
// fixed-trip inner loops over the dense sub-blocks (explicit zeros
// included, as the hardware decompressor streams them). Rows and block
// columns clipped by the matrix boundary hold only padding and are
// clamped away.
func (e *BCSREnc) SpMV(x, y []float64) {
	b := e.b
	start := int32(0)
	for bi := 0; bi < len(e.offsets); bi++ {
		end := e.offsets[bi]
		if end > start {
			r0 := bi * b
			rmax := min(b, len(y)-r0)
			for r := 0; r < rmax; r++ {
				s := 0.0
				for blk := start; blk < end; blk++ {
					c0 := int(e.colIdx[blk])
					base := int(blk)*b*b + r*b
					for j := 0; j < min(b, len(x)-c0); j++ {
						s += e.vals[base+j] * x[c0+j]
					}
				}
				y[r0+r] += s
			}
		}
		start = end
	}
}

// SpMV implements Encoded: COO scatters its row-major tuple stream
// (sentinel excluded) element by element.
func (e *COOEnc) SpMV(x, y []float64) {
	for k := 0; k < len(e.vals)-1; k++ {
		y[e.rows[k]] += e.vals[k] * x[e.cols[k]]
	}
}

// SpMV implements Encoded: LIL scatters column by column — each column
// list multiplies one operand entry into its ascending row indices, the
// executable analogue of the per-column BRAM banks of Listing 4.
func (e *LILEnc) SpMV(x, y []float64) {
	for j, rows := range e.colRows {
		if len(rows) == 0 {
			continue
		}
		xv := x[j]
		vals := e.colVals[j]
		for k, i := range rows {
			y[i] += vals[k] * xv
		}
	}
}

// SpMV implements Encoded: ELL sweeps the padded rectangle row-major.
// Entries are left-packed, so the first padding slot ends the row; rows
// with no entries (including boundary padding rows) never touch y.
func (e *ELLEnc) SpMV(x, y []float64) {
	w := e.w
	for i := 0; i < e.p; i++ {
		base := i * w
		s := 0.0
		k := 0
		for ; k < w; k++ {
			j := e.idx[base+k]
			if j == ellPad {
				break
			}
			s += e.vals[base+k] * x[j]
		}
		if k > 0 {
			y[i] += s
		}
	}
}

// SpMV implements Encoded: DIA strides every stored diagonal, clamping
// the slot range to the diagonal's extent and to the tile-local operand
// and output lengths (slots beyond either are padding).
func (e *DIAEnc) SpMV(x, y []float64) {
	p := e.p
	for k, d32 := range e.diagNo {
		d := int(d32)
		lane := e.lanes[k*p : (k+1)*p]
		lo := max(0, -d)
		hi := min(min(p, p-d), min(len(y), len(x)-d))
		for i := lo; i < hi; i++ {
			y[i] += lane[i] * x[i+d]
		}
	}
}

// SpMV implements Encoded: CSC scatters column-major — the orientation
// mismatch §5.2 prices shows up here as strided output writes.
func (e *CSCEnc) SpMV(x, y []float64) {
	start := int32(0)
	for j := 0; j < e.p; j++ {
		end := e.offsets[j]
		if end > start {
			xv := x[j]
			for k := start; k < end; k++ {
				y[e.rowIdx[k]] += e.vals[k] * xv
			}
		}
		start = end
	}
}

// SpMV implements Encoded: DOK scans the whole hash table, scattering
// every occupied slot — the full-table sweep the paper equates with
// COO's scan, in the table's probe order.
func (e *DOKEnc) SpMV(x, y []float64) {
	for s, key := range e.keys {
		if key == dokEmpty {
			continue
		}
		i, j := dokUnpack(key)
		y[i] += e.vals[s] * x[j]
	}
}

// SpMV implements Encoded: SELL sweeps each slice's private rectangle,
// so short slices pay only their own width.
func (e *SELLEnc) SpMV(x, y []float64) {
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		for r := 0; r < e.c && w > 0; r++ {
			rb := base + r*w
			sum := 0.0
			k := 0
			for ; k < w; k++ {
				j := e.idx[rb+k]
				if j == ellPad {
					break
				}
				sum += e.vals[rb+k] * x[j]
			}
			if k > 0 {
				y[s*e.c+r] += sum
			}
		}
		base += e.c * w
	}
}

// SpMV implements Encoded: the hybrid runs its capped ELL rectangle
// first (each row's leading entries, ascending), then scatters the COO
// spill of the long rows — per output row the products still arrive in
// ascending-column order.
func (e *ELLCOOEnc) SpMV(x, y []float64) {
	w := e.w
	if w > 0 {
		for i := 0; i < e.p; i++ {
			base := i * w
			s := 0.0
			k := 0
			for ; k < w; k++ {
				j := e.idx[base+k]
				if j == ellPad {
					break
				}
				s += e.vals[base+k] * x[j]
			}
			if k > 0 {
				y[i] += s
			}
		}
	}
	for k := 0; k < len(e.sval)-1; k++ {
		y[e.srow[k]] += e.sval[k] * x[e.scol[k]]
	}
}

// SpMV implements Encoded: JDS walks the jagged diagonals — diagonal k
// supplies the k-th nonzero of the first (end-start) permuted rows —
// scattering through the permutation. Each row's products still arrive
// in ascending-column order (its entries live on ascending diagonals).
func (e *JDSEnc) SpMV(x, y []float64) {
	for k := 0; k < len(e.ptr)-1; k++ {
		start, end := int(e.ptr[k]), int(e.ptr[k+1])
		for r := start; r < end; r++ {
			y[e.perm[r-start]] += e.vals[r] * x[e.idx[r]]
		}
	}
}

// SpMV implements Encoded: SELL-C-σ sweeps each slice's rectangle like
// SELL and gathers the output row through the σ-window permutation.
func (e *SELLCSEnc) SpMV(x, y []float64) {
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		for r := 0; r < e.c && w > 0; r++ {
			rb := base + r*w
			sum := 0.0
			k := 0
			for ; k < w; k++ {
				j := e.idx[rb+k]
				if j == ellPad {
					break
				}
				sum += e.vals[rb+k] * x[j]
			}
			if k > 0 {
				y[e.perm[s*e.c+r]] += sum
			}
		}
		base += e.c * w
	}
}
