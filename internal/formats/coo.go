package formats

import "copernicus/internal/matrix"

// COOEnc stores a tile as (row, column, value) tuples in row-major order,
// terminated by a sentinel tuple whose row index is the out-of-band
// "inf" marker of Listing 6. Two index words accompany every value, which
// pins memory-bandwidth utilization at ~1/3 regardless of sparsity — the
// constant the paper calls out in §6.3.
type COOEnc struct {
	p    int
	rows []int32 // len nnz+1 including sentinel
	cols []int32
	vals []float64
	nzr  int
}

// cooSentinel marks the end of the tuple stream (Listing 6's "inf").
const cooSentinel = int32(-1)

func encodeCOO(t *matrix.Tile) *COOEnc {
	nnz := t.NNZ()
	e := &COOEnc{p: t.P, nzr: t.NonZeroRows(),
		rows: make([]int32, 0, nnz+1), cols: make([]int32, 0, nnz+1),
		vals: make([]float64, 0, nnz+1)}
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		for range cols {
			e.rows = append(e.rows, int32(i))
		}
		e.cols = append(e.cols, cols...)
		e.vals = append(e.vals, vals...)
	}
	e.rows = append(e.rows, cooSentinel)
	e.cols = append(e.cols, cooSentinel)
	e.vals = append(e.vals, 0)
	return e
}

// Kind implements Encoded.
func (e *COOEnc) Kind() Kind { return COO }

// P implements Encoded.
func (e *COOEnc) P() int { return e.p }

// Tuples returns the tuple count excluding the sentinel.
func (e *COOEnc) Tuples() int { return len(e.vals) - 1 }

// Rows exposes the row-index stream (sentinel included).
func (e *COOEnc) Rows() []int32 { return e.rows }

// Cols exposes the column-index stream (sentinel included).
func (e *COOEnc) Cols() []int32 { return e.cols }

// Values exposes the value stream (sentinel included).
func (e *COOEnc) Values() []float64 { return e.vals }

// Decode implements Encoded.
func (e *COOEnc) Decode() (*matrix.Tile, error) {
	if len(e.rows) != len(e.cols) || len(e.rows) != len(e.vals) {
		return nil, corruptf("coo: stream lengths differ: %d/%d/%d", len(e.rows), len(e.cols), len(e.vals))
	}
	if len(e.rows) == 0 || e.rows[len(e.rows)-1] != cooSentinel {
		return nil, corruptf("coo: missing sentinel tuple")
	}
	t := matrix.NewTile(e.p, 0, 0)
	for k := 0; k < len(e.rows)-1; k++ {
		i, j := e.rows[k], e.cols[k]
		if i < 0 || int(i) >= e.p || j < 0 || int(j) >= e.p {
			return nil, corruptf("coo: tuple %d at (%d,%d) out of range", k, i, j)
		}
		if e.vals[k] == 0 {
			return nil, corruptf("coo: tuple %d stores explicit zero", k)
		}
		t.Set(int(i), int(j), e.vals[k])
	}
	return t, nil
}

// Footprint implements Encoded. Only real tuples travel — the AXI burst
// length already delimits the stream, and the decompressor synthesizes
// the Listing 6 sentinel locally — so utilization is exactly 1/3 at any
// density, the constant §6.3 reports.
func (e *COOEnc) Footprint() Footprint {
	nnz := e.Tuples()
	useful := nnz * matrix.BytesPerValue
	idxLane := 2 * nnz * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane,
		ValueLaneBytes: useful,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded.
func (e *COOEnc) Stats() Stats {
	return Stats{NNZ: e.Tuples(), NonZeroRows: e.nzr, DotRows: e.nzr}
}
