package formats

import (
	"testing"

	"copernicus/internal/matrix"
)

// Fuzz targets: decoders must never panic on arbitrary streams — they
// either return ErrCorrupt-wrapped errors or a structurally valid tile.
// Seed corpora cover valid encodings and near-miss corruptions; `go
// test` replays the corpus, `go test -fuzz` explores.

func fuzzTileOK(t *testing.T, tile *matrix.Tile, p int) {
	t.Helper()
	if tile.P != p {
		t.Fatalf("decoded tile size %d, want %d", tile.P, p)
	}
}

func FuzzCSRDecode(f *testing.F) {
	f.Add([]byte{1, 1, 1, 2}, []byte{3, 7}, 8)
	f.Add([]byte{0, 0, 0, 0}, []byte{}, 8)
	f.Add([]byte{2, 1}, []byte{0, 1}, 8) // decreasing offsets
	f.Fuzz(func(t *testing.T, offs, cols []byte, p int) {
		p = 8 + (abs(p) % 3 * 8) // 8, 16, 24 — keep allocation bounded
		e := &CSREnc{p: p}
		e.offsets = make([]int32, p)
		for i := 0; i < p && i < len(offs); i++ {
			e.offsets[i] = int32(offs[i])
		}
		for i := 1; i < p; i++ {
			if e.offsets[i] == 0 {
				e.offsets[i] = e.offsets[i-1]
			}
		}
		n := int(e.offsets[p-1])
		if n < 0 || n > 1024 {
			return
		}
		e.colIdx = make([]int32, n)
		e.vals = make([]float64, n)
		for i := 0; i < n; i++ {
			if i < len(cols) {
				e.colIdx[i] = int32(cols[i]) - 4 // allow negatives
			}
			e.vals[i] = float64(i + 1)
		}
		tile, err := e.Decode()
		if err == nil {
			fuzzTileOK(t, tile, p)
		}
	})
}

func FuzzCOODecode(f *testing.F) {
	f.Add([]byte{0, 3, 4, 7, 7, 7}, 8)
	f.Add([]byte{}, 8)
	f.Add([]byte{200, 200}, 8)
	f.Fuzz(func(t *testing.T, pairs []byte, p int) {
		p = 8 + (abs(p) % 3 * 8)
		e := &COOEnc{p: p}
		for i := 0; i+1 < len(pairs) && i < 512; i += 2 {
			e.rows = append(e.rows, int32(pairs[i])-4)
			e.cols = append(e.cols, int32(pairs[i+1])-4)
			e.vals = append(e.vals, float64(i+1))
		}
		e.rows = append(e.rows, cooSentinel)
		e.cols = append(e.cols, cooSentinel)
		e.vals = append(e.vals, 0)
		tile, err := e.Decode()
		if err == nil {
			fuzzTileOK(t, tile, p)
		}
	})
}

func FuzzDIADecode(f *testing.F) {
	f.Add([]byte{0, 3}, []byte{1, 2, 3}, 8)
	f.Add([]byte{255}, []byte{9}, 8)
	f.Fuzz(func(t *testing.T, diags, vals []byte, p int) {
		p = 8 + (abs(p) % 3 * 8)
		e := &DIAEnc{p: p}
		for i := 0; i < len(diags) && i < 64; i++ {
			e.diagNo = append(e.diagNo, int32(diags[i])-32)
		}
		e.lanes = make([]float64, len(e.diagNo)*p)
		for i := range e.lanes {
			if i < len(vals) {
				e.lanes[i] = float64(vals[i])
			}
		}
		tile, err := e.Decode()
		if err == nil {
			fuzzTileOK(t, tile, p)
		}
	})
}

func FuzzJDSDecode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{0, 4}, []byte{1, 2, 3, 4})
	f.Add([]byte{0, 0}, []byte{0}, []byte{})
	f.Fuzz(func(t *testing.T, perm, ptr, cols []byte) {
		const p = 8
		e := &JDSEnc{p: p}
		e.perm = make([]int32, p)
		for i := 0; i < p && i < len(perm); i++ {
			e.perm[i] = int32(perm[i]) - 2
		}
		for i := 0; i < len(ptr) && i < 16; i++ {
			e.ptr = append(e.ptr, int32(ptr[i]))
		}
		if len(e.ptr) == 0 {
			e.ptr = []int32{0}
		}
		n := int(e.ptr[len(e.ptr)-1])
		if n < 0 || n > 512 {
			return
		}
		e.idx = make([]int32, n)
		e.vals = make([]float64, n)
		for i := 0; i < n; i++ {
			if i < len(cols) {
				e.idx[i] = int32(cols[i]) - 2
			}
			e.vals[i] = float64(i + 1)
		}
		tile, err := e.Decode()
		if err == nil {
			fuzzTileOK(t, tile, p)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
