// Package formats implements the sparse compression formats characterized
// by Copernicus (§2): CSR, CSC, BCSR (4×4 blocks), COO, DOK, LIL, ELL, and
// DIA, plus the dense baseline and the ELL-family extension formats the
// paper surveys (SELL, ELL+COO, JDS).
//
// Each format encodes one dense p×p partition tile into the exact streams
// the modelled accelerator would transfer over AXI, with byte-level
// accounting split into useful data (non-zero values) and metadata
// (indices, offsets, headers, padding, and explicitly stored zeros). The
// split defines the paper's memory-bandwidth-utilization metric; the
// structural stream shapes drive the hlsim cycle model.
//
// Every Encoded value can Decode back to the original tile; the test suite
// proves the round-trip for random tiles of every format.
package formats

import (
	"errors"
	"fmt"

	"copernicus/internal/matrix"
)

// Kind identifies a compression format.
type Kind int

// The formats under study. Dense is the σ=1 baseline of Eq. (1). SELL,
// ELLCOO and JDS are the §2 ELL variants, included as extension formats.
const (
	Dense Kind = iota
	CSR
	BCSR
	COO
	LIL
	ELL
	DIA
	CSC
	DOK
	SELL
	ELLCOO
	JDS
	SELLCS
	numKinds
)

// NumKinds is the number of implemented formats; Kind values are the
// contiguous range [0, NumKinds). Consumers (e.g. hlsim's per-format plan
// slots) index dense arrays by Kind.
const NumKinds = int(numKinds)

// String returns the conventional name of the format.
func (k Kind) String() string {
	switch k {
	case Dense:
		return "DENSE"
	case CSR:
		return "CSR"
	case CSC:
		return "CSC"
	case BCSR:
		return "BCSR"
	case COO:
		return "COO"
	case DOK:
		return "DOK"
	case LIL:
		return "LIL"
	case ELL:
		return "ELL"
	case DIA:
		return "DIA"
	case SELL:
		return "SELL"
	case ELLCOO:
		return "ELL+COO"
	case JDS:
		return "JDS"
	case SELLCS:
		return "SELL-C-sig"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Core returns the seven formats of the paper's evaluation plus the dense
// baseline, in the order the figures present them.
func Core() []Kind {
	return []Kind{Dense, CSR, BCSR, COO, LIL, ELL, DIA, CSC}
}

// Sparse returns the seven studied sparse formats (Core without Dense).
func Sparse() []Kind {
	return []Kind{CSR, BCSR, COO, LIL, ELL, DIA, CSC}
}

// Extensions returns the §2 variant formats implemented beyond the paper's
// measured set.
func Extensions() []Kind {
	return []Kind{DOK, SELL, ELLCOO, JDS, SELLCS}
}

// All returns every implemented format.
func All() []Kind {
	return append(Core(), Extensions()...)
}

// BCSRBlock is the block edge used by BCSR throughout the paper ("the
// block size we choose in all our experiments": 4×4).
const BCSRBlock = 4

// ELLWidth is the on-chip ELL array width the paper allocates ("we set
// this width to six"). Encoders grow beyond it when a tile's longest row
// demands more (the rectangular array must hold the longest row), matching
// the format definition; the constant sizes the synthesized arrays.
const ELLWidth = 6

// SELLSlice is the row-chunk height used by the SELL extension format.
const SELLSlice = 4

// ErrCorrupt is wrapped by all decoder errors arising from inconsistent or
// out-of-range stream contents.
var ErrCorrupt = errors.New("formats: corrupt encoding")

// ErrBadPartition is wrapped by ValidateP failures: the requested
// partition size cannot be encoded by the requested format. Services map
// it to a client error.
var ErrBadPartition = errors.New("formats: invalid partition size")

// ValidateP reports whether format k can encode p×p tiles: blocked and
// sliced formats divide the tile edge by a fixed factor, and their
// encoders panic on indivisible sizes. Every untrusted (format, p) pair
// must pass through here before reaching Encode — a malformed sweep
// request becomes a 400, not a panic inside a worker goroutine.
func ValidateP(k Kind, p int) error {
	if p < 1 {
		return fmt.Errorf("%w: p=%d", ErrBadPartition, p)
	}
	switch k {
	case BCSR:
		if p%BCSRBlock != 0 {
			return fmt.Errorf("%w: %v needs p divisible by %d, got %d", ErrBadPartition, k, BCSRBlock, p)
		}
	case SELL, SELLCS:
		if p%SELLSlice != 0 {
			return fmt.Errorf("%w: %v needs p divisible by %d, got %d", ErrBadPartition, k, SELLSlice, p)
		}
	}
	return nil
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Footprint is the byte-level accounting of one encoded tile.
//
// UsefulBytes counts only the payload of genuinely non-zero values;
// MetaBytes counts everything else that must be transmitted: indices,
// offsets, diagonal headers, sentinels, padding, and zeros stored
// explicitly by block or padded formats. Memory-bandwidth utilization
// (Figs. 10–12) is Useful/(Useful+Meta).
//
// ValueLaneBytes and IndexLaneBytes split the same total across the two
// parallel AXI streamlines of §5.2 (values ride one lane; indices,
// offsets, and headers ride the other); the longer lane defines the
// memory latency.
type Footprint struct {
	UsefulBytes    int
	MetaBytes      int
	ValueLaneBytes int
	IndexLaneBytes int
}

// TotalBytes returns all transmitted bytes.
func (f Footprint) TotalBytes() int { return f.UsefulBytes + f.MetaBytes }

// Utilization returns the memory-bandwidth utilization in [0, 1].
func (f Footprint) Utilization() float64 {
	if t := f.TotalBytes(); t > 0 {
		return float64(f.UsefulBytes) / float64(t)
	}
	return 0
}

// Stats carries the structural quantities the hlsim cycle model consumes.
// They describe what the hardware decompressor will iterate over, not the
// encoding bytes (Footprint covers those).
type Stats struct {
	NNZ         int // stored true non-zeros
	NonZeroRows int // tile rows containing at least one non-zero
	// DotRows is the number of rows the dot-product engine processes for
	// this format: p for Dense and padded row formats that cannot skip
	// all-zero rows (ELL and variants), block-coverage for BCSR, and
	// NonZeroRows otherwise. It is the nnz_rows term of Eq. (1).
	DotRows int

	Blocks    int // BCSR: non-zero b×b blocks
	BlockRows int // BCSR: non-zero block rows
	Diagonals int // DIA: stored diagonals
	Width     int // ELL family: rectangle width; LIL: longest column list
	Slices    int // SELL: row slices; JDS: jagged diagonals
}

// Encoded is one tile compressed in some format.
type Encoded interface {
	// Kind identifies the format.
	Kind() Kind
	// P returns the tile edge length.
	P() int
	// Decode reconstructs the dense tile, validating the streams. The
	// returned tile carries a zero origin; callers re-anchor it.
	Decode() (*matrix.Tile, error)
	// Footprint returns the transmitted-byte accounting.
	Footprint() Footprint
	// Stats returns the structural quantities for the cycle model.
	Stats() Stats
	// SpMV accumulates y += T·x by walking this encoding's own layout —
	// the executable counterpart of the traversal the cycle model prices.
	// x and y are tile-local views (callers offset the global vectors by
	// the tile origin); either may be shorter than P near the matrix
	// boundary, where the truncated region is all zero padding. Stored
	// entries always index within both slices; kernels that walk padded
	// or rectangular storage clamp or skip the out-of-range padding.
	// See spmv.go for the per-format determinism contract.
	SpMV(x, y []float64)
}

// Encode compresses the tile in the given format.
func Encode(k Kind, t *matrix.Tile) Encoded {
	switch k {
	case Dense:
		return encodeDense(t)
	case CSR:
		return encodeCSR(t)
	case CSC:
		return encodeCSC(t)
	case BCSR:
		return encodeBCSR(t, BCSRBlock)
	case COO:
		return encodeCOO(t)
	case DOK:
		return encodeDOK(t)
	case LIL:
		return encodeLIL(t)
	case ELL:
		return encodeELL(t)
	case DIA:
		return encodeDIA(t)
	case SELL:
		return encodeSELL(t, SELLSlice)
	case ELLCOO:
		return encodeELLCOO(t, ELLWidth)
	case JDS:
		return encodeJDS(t)
	case SELLCS:
		return encodeSELLCS(t, SELLSlice, SELLCSigmaWindow)
	default:
		panic(fmt.Sprintf("formats: Encode with unknown kind %d", int(k)))
	}
}

// EncodeBCSRBlock compresses the tile in BCSR with a custom block edge b
// (the ablation knob behind the paper's fixed 4×4 choice). The tile edge
// must be divisible by b.
func EncodeBCSRBlock(t *matrix.Tile, b int) Encoded { return encodeBCSR(t, b) }

// EncodeSELLSlice compresses the tile in SELL with a custom slice height.
func EncodeSELLSlice(t *matrix.Tile, c int) Encoded { return encodeSELL(t, c) }

// EncodeELLCOOCap compresses the tile in the ELL+COO hybrid with a custom
// rectangle width cap (the ablation knob behind ELLWidth).
func EncodeELLCOOCap(t *matrix.Tile, cap int) Encoded { return encodeELLCOO(t, cap) }
