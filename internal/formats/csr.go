package formats

import "copernicus/internal/matrix"

// CSREnc stores a tile in compressed-sparse-row form (Fig. 1b, Listing 1):
// a cumulative offsets array (one entry per row, first element absolute,
// as the paper notes to save the leading zero), column indices, and
// values. Decompression needs one extra offsets read per row before it
// knows how many index/value reads follow, and those reads are sequential
// — the structural facts behind CSR's compute-bound behaviour in §5.2.
type CSREnc struct {
	p       int
	offsets []int32 // len p, cumulative nnz through each row
	colIdx  []int32 // len nnz
	vals    []float64
	nzr     int
	// skip lists the non-empty row indices, built once at encode time so
	// the executable kernel visits only rows with work instead of walking
	// all p offsets per tile — on sparse tiles most rows are empty. It is
	// derived acceleration metadata for the host kernel, not part of the
	// format's wire layout: Footprint and Stats exclude it, and Decode
	// reconstructs the tile from the offsets alone.
	skip []int32
}

func encodeCSR(t *matrix.Tile) *CSREnc {
	nnz := t.NNZ()
	e := &CSREnc{p: t.P, offsets: make([]int32, t.P), nzr: t.NonZeroRows(),
		colIdx: make([]int32, 0, nnz), vals: make([]float64, 0, nnz)}
	e.skip = make([]int32, 0, e.nzr)
	for i := 0; i < t.P; i++ {
		cols, vals := t.RowView(i)
		if len(vals) > 0 {
			e.skip = append(e.skip, int32(i))
		}
		e.colIdx = append(e.colIdx, cols...)
		e.vals = append(e.vals, vals...)
		e.offsets[i] = int32(len(e.vals))
	}
	return e
}

// Kind implements Encoded.
func (e *CSREnc) Kind() Kind { return CSR }

// P implements Encoded.
func (e *CSREnc) P() int { return e.p }

// Offsets exposes the cumulative row offsets for the hardware model.
func (e *CSREnc) Offsets() []int32 { return e.offsets }

// ColIdx exposes the column indices for the hardware model.
func (e *CSREnc) ColIdx() []int32 { return e.colIdx }

// Values exposes the non-zero values for the hardware model.
func (e *CSREnc) Values() []float64 { return e.vals }

// RowRange returns the [start, end) slice of the index/value streams for
// row i, mirroring Listing 1's offsets arithmetic.
func (e *CSREnc) RowRange(i int) (start, end int32) {
	if i > 0 {
		start = e.offsets[i-1]
	}
	return start, e.offsets[i]
}

// Decode implements Encoded.
func (e *CSREnc) Decode() (*matrix.Tile, error) {
	if len(e.offsets) != e.p {
		return nil, corruptf("csr: %d offsets for p=%d", len(e.offsets), e.p)
	}
	if len(e.colIdx) != len(e.vals) {
		return nil, corruptf("csr: %d indices vs %d values", len(e.colIdx), len(e.vals))
	}
	if int(e.offsets[e.p-1]) != len(e.vals) {
		return nil, corruptf("csr: final offset %d vs %d values", e.offsets[e.p-1], len(e.vals))
	}
	t := matrix.NewTile(e.p, 0, 0)
	prev := int32(0)
	for i := 0; i < e.p; i++ {
		if e.offsets[i] < prev {
			return nil, corruptf("csr: offsets decrease at row %d", i)
		}
		if int(e.offsets[i]) > len(e.vals) {
			return nil, corruptf("csr: offset %d at row %d exceeds %d values", e.offsets[i], i, len(e.vals))
		}
		for k := prev; k < e.offsets[i]; k++ {
			j := e.colIdx[k]
			if j < 0 || int(j) >= e.p {
				return nil, corruptf("csr: column %d out of range at row %d", j, i)
			}
			t.Set(i, int(j), e.vals[k])
		}
		prev = e.offsets[i]
	}
	return t, nil
}

// Footprint implements Encoded. Values ride the value lane; column indices
// and offsets ride the index lane — the paper's two parallel streamlines.
func (e *CSREnc) Footprint() Footprint {
	useful := len(e.vals) * matrix.BytesPerValue
	idx := len(e.colIdx)*matrix.BytesPerIndex + len(e.offsets)*matrix.BytesPerOffset
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idx,
		ValueLaneBytes: useful,
		IndexLaneBytes: idx,
	}
}

// Stats implements Encoded.
func (e *CSREnc) Stats() Stats {
	return Stats{NNZ: len(e.vals), NonZeroRows: e.nzr, DotRows: e.nzr}
}
