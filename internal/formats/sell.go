package formats

import "copernicus/internal/matrix"

// SELLEnc stores a tile in sliced-Ellpack form (§2): rows are cut into
// slices of SELLSlice rows and ELL is applied per slice, so each slice
// pays padding only up to its own longest row instead of the tile-wide
// maximum. One width word per slice is the extra metadata. SELL is an
// extension format: the paper describes it but measures plain ELL.
type SELLEnc struct {
	p, c   int     // tile edge and slice height
	widths []int32 // per-slice rectangle width
	idx    []int32 // concatenated per-slice rectangles, row-major in slice
	vals   []float64
	nnz    int
	nzr    int
}

func encodeSELL(t *matrix.Tile, c int) *SELLEnc {
	if t.P%c != 0 {
		panic("formats: SELL requires p divisible by slice height")
	}
	e := &SELLEnc{p: t.P, c: c, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	e.widths = make([]int32, 0, t.P/c)
	total := 0
	for s := 0; s < t.P/c; s++ {
		w := 0
		for i := s * c; i < (s+1)*c; i++ {
			if n := t.RowNNZ(i); n > w {
				w = n
			}
		}
		e.widths = append(e.widths, int32(w))
		total += c * w
	}
	e.idx = make([]int32, total)
	e.vals = make([]float64, total)
	for k := range e.idx {
		e.idx[k] = ellPad
	}
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		for r := 0; r < c; r++ {
			cols, vals := t.RowView(s*c + r)
			copy(e.idx[base+r*w:], cols)
			copy(e.vals[base+r*w:], vals)
		}
		base += c * w
	}
	return e
}

// Kind implements Encoded.
func (e *SELLEnc) Kind() Kind { return SELL }

// P implements Encoded.
func (e *SELLEnc) P() int { return e.p }

// SliceHeight returns the slice height C.
func (e *SELLEnc) SliceHeight() int { return e.c }

// Widths exposes the per-slice rectangle widths.
func (e *SELLEnc) Widths() []int32 { return e.widths }

// Decode implements Encoded.
func (e *SELLEnc) Decode() (*matrix.Tile, error) {
	if len(e.widths) != e.p/e.c {
		return nil, corruptf("sell: %d slices for p=%d c=%d", len(e.widths), e.p, e.c)
	}
	t := matrix.NewTile(e.p, 0, 0)
	base := 0
	for s, w32 := range e.widths {
		w := int(w32)
		if w < 0 || w > e.p {
			return nil, corruptf("sell: slice %d width %d out of range", s, w)
		}
		if base+e.c*w > len(e.idx) || len(e.idx) != len(e.vals) {
			return nil, corruptf("sell: rectangle overflow at slice %d", s)
		}
		for r := 0; r < e.c; r++ {
			for k := 0; k < w; k++ {
				j := e.idx[base+r*w+k]
				if j == ellPad {
					continue
				}
				if j < 0 || int(j) >= e.p {
					return nil, corruptf("sell: column %d out of range in slice %d", j, s)
				}
				if e.vals[base+r*w+k] == 0 {
					return nil, corruptf("sell: explicit zero in slice %d", s)
				}
				t.Set(s*e.c+r, int(j), e.vals[base+r*w+k])
			}
		}
		base += e.c * w
	}
	if base != len(e.idx) {
		return nil, corruptf("sell: %d trailing rectangle slots", len(e.idx)-base)
	}
	return t, nil
}

// Footprint implements Encoded.
func (e *SELLEnc) Footprint() Footprint {
	useful := e.nnz * matrix.BytesPerValue
	valueLane := len(e.vals) * matrix.BytesPerValue
	idxLane := len(e.idx)*matrix.BytesPerIndex + len(e.widths)*matrix.BytesPerOffset
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. Like ELL, SELL processes every row; its gain
// is the smaller transferred rectangle, and Width records the largest
// slice width.
func (e *SELLEnc) Stats() Stats {
	maxW := 0
	for _, w := range e.widths {
		if int(w) > maxW {
			maxW = int(w)
		}
	}
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.p, Width: maxW, Slices: len(e.widths)}
}
