package formats

import "copernicus/internal/matrix"

// BCSREnc stores a tile in block compressed-sparse-row form with b×b
// blocks (Fig. 1c, Listing 2; the paper fixes b=4). Offsets count
// non-zero blocks per block row, indices record the first column of each
// non-zero block, and values hold the flattened blocks — zeros inside a
// non-zero block are stored and transferred explicitly, the format's
// characteristic overhead. In exchange the value/index arrays can be
// partitioned across BRAM banks and read in parallel (the array_partition
// pragmas in Listing 2), making the decompressor fast.
type BCSREnc struct {
	p, b    int
	offsets []int32   // len p/b, cumulative non-zero blocks through each block row
	colIdx  []int32   // len nblocks, first tile-column of each block
	vals    []float64 // nblocks * b*b, block-major, row-major inside a block
	nnz     int
	nzr     int
}

func encodeBCSR(t *matrix.Tile, b int) *BCSREnc {
	if t.P%b != 0 {
		panic("formats: BCSR requires p divisible by block size")
	}
	nb := t.P / b
	e := &BCSREnc{p: t.P, b: b, offsets: make([]int32, nb), nnz: t.NNZ(), nzr: t.NonZeroRows()}
	s := getScratch()
	blockNNZ := s.ints(nb)        // per block column of the current block row
	stage := s.floats(nb * b * b) // staged b×b blocks, zeros included
	running := int32(0)
	for bi := 0; bi < nb; bi++ {
		minBJ, maxBJ := nb, -1
		for r := 0; r < b; r++ {
			cols, vals := t.RowView(bi*b + r)
			for k, j := range cols {
				bj := int(j) / b
				blockNNZ[bj]++
				stage[bj*b*b+r*b+int(j)-bj*b] = vals[k]
				if bj < minBJ {
					minBJ = bj
				}
				if bj > maxBJ {
					maxBJ = bj
				}
			}
		}
		for bj := minBJ; bj <= maxBJ; bj++ {
			if blockNNZ[bj] == 0 {
				continue
			}
			e.colIdx = append(e.colIdx, int32(bj*b))
			e.vals = append(e.vals, stage[bj*b*b:(bj+1)*b*b]...)
			running++
			blockNNZ[bj] = 0
			clear(stage[bj*b*b : (bj+1)*b*b])
		}
		e.offsets[bi] = running
	}
	putScratch(s)
	return e
}

// Kind implements Encoded.
func (e *BCSREnc) Kind() Kind { return BCSR }

// P implements Encoded.
func (e *BCSREnc) P() int { return e.p }

// Block returns the block edge length b.
func (e *BCSREnc) Block() int { return e.b }

// Offsets exposes the cumulative block-row offsets for the hardware model.
func (e *BCSREnc) Offsets() []int32 { return e.offsets }

// ColIdx exposes the block column indices for the hardware model.
func (e *BCSREnc) ColIdx() []int32 { return e.colIdx }

// Values exposes the flattened block values for the hardware model.
func (e *BCSREnc) Values() []float64 { return e.vals }

// Blocks returns the number of stored (non-zero) blocks.
func (e *BCSREnc) Blocks() int { return len(e.colIdx) }

// BlockRowRange returns the [start, end) block slice for block row bi.
func (e *BCSREnc) BlockRowRange(bi int) (start, end int32) {
	if bi > 0 {
		start = e.offsets[bi-1]
	}
	return start, e.offsets[bi]
}

// Decode implements Encoded.
func (e *BCSREnc) Decode() (*matrix.Tile, error) {
	nb := e.p / e.b
	if len(e.offsets) != nb {
		return nil, corruptf("bcsr: %d offsets for p=%d b=%d", len(e.offsets), e.p, e.b)
	}
	if len(e.vals) != len(e.colIdx)*e.b*e.b {
		return nil, corruptf("bcsr: %d values for %d blocks of %dx%d", len(e.vals), len(e.colIdx), e.b, e.b)
	}
	if int(e.offsets[nb-1]) != len(e.colIdx) {
		return nil, corruptf("bcsr: final offset %d vs %d blocks", e.offsets[nb-1], len(e.colIdx))
	}
	t := matrix.NewTile(e.p, 0, 0)
	prev := int32(0)
	for bi := 0; bi < nb; bi++ {
		if e.offsets[bi] < prev {
			return nil, corruptf("bcsr: offsets decrease at block row %d", bi)
		}
		if int(e.offsets[bi]) > len(e.colIdx) {
			return nil, corruptf("bcsr: offset %d at block row %d exceeds %d blocks", e.offsets[bi], bi, len(e.colIdx))
		}
		for blk := prev; blk < e.offsets[bi]; blk++ {
			c0 := int(e.colIdx[blk])
			if c0 < 0 || c0%e.b != 0 || c0+e.b > e.p {
				return nil, corruptf("bcsr: block column %d invalid", c0)
			}
			base := int(blk) * e.b * e.b
			for i := 0; i < e.b; i++ {
				for j := 0; j < e.b; j++ {
					if v := e.vals[base+i*e.b+j]; v != 0 {
						t.Set(bi*e.b+i, c0+j, v)
					}
				}
			}
		}
		prev = e.offsets[bi]
	}
	return t, nil
}

// Footprint implements Encoded. The explicit zeros inside stored blocks
// count as metadata: they are transmitted without carrying information.
func (e *BCSREnc) Footprint() Footprint {
	valueLane := len(e.vals) * matrix.BytesPerValue
	useful := e.nnz * matrix.BytesPerValue
	idxLane := len(e.colIdx)*matrix.BytesPerIndex + len(e.offsets)*matrix.BytesPerOffset
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      (valueLane - useful) + idxLane,
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. Every row covered by a non-zero block row gets
// a dot product whether or not the row itself is non-zero — the paper's
// second BCSR downside.
func (e *BCSREnc) Stats() Stats {
	blockRows := 0
	prev := int32(0)
	for _, off := range e.offsets {
		if off > prev {
			blockRows++
		}
		prev = off
	}
	return Stats{
		NNZ:         e.nnz,
		NonZeroRows: e.nzr,
		DotRows:     blockRows * e.b,
		Blocks:      len(e.colIdx),
		BlockRows:   blockRows,
	}
}
