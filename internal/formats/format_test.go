package formats

import (
	"errors"
	"testing"
	"testing/quick"

	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// randomTile builds a random p×p tile with the given density.
func randomTile(seed uint64, p int, density float64) *matrix.Tile {
	r := xrand.New(seed)
	t := matrix.NewTile(p, 0, 0)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if r.Float64() < density {
				t.Set(i, j, r.ValueIn(-4, 4))
			}
		}
	}
	return t
}

// fig1Tile reproduces the 8×8 example of Fig. 1: non-zeros at (0,3),
// (4,7), and (7,7).
func fig1Tile() *matrix.Tile {
	t := matrix.NewTile(8, 0, 0)
	t.Set(0, 3, 1)
	t.Set(4, 7, 2)
	t.Set(7, 7, 3)
	return t
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Dense: "DENSE", CSR: "CSR", CSC: "CSC", BCSR: "BCSR", COO: "COO",
		DOK: "DOK", LIL: "LIL", ELL: "ELL", DIA: "DIA",
		SELL: "SELL", ELLCOO: "ELL+COO", JDS: "JDS", SELLCS: "SELL-C-sig",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind String = %q", Kind(99).String())
	}
}

func TestFormatLists(t *testing.T) {
	if len(Core()) != 8 {
		t.Fatalf("Core() has %d formats, want 8", len(Core()))
	}
	if len(Sparse()) != 7 {
		t.Fatalf("Sparse() has %d formats, want 7 (the paper's set)", len(Sparse()))
	}
	if len(All()) != int(numKinds) {
		t.Fatalf("All() has %d formats, want %d", len(All()), int(numKinds))
	}
	seen := map[Kind]bool{}
	for _, k := range All() {
		if seen[k] {
			t.Fatalf("duplicate kind %v in All()", k)
		}
		seen[k] = true
	}
}

// TestRoundTripAllFormats is the central property test: for every format,
// encode→decode is the identity on random tiles across sizes and
// densities.
func TestRoundTripAllFormats(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			check := func(seed uint64) bool {
				r := xrand.New(seed)
				p := []int{8, 16, 32}[r.Intn(3)]
				density := []float64{0, 0.01, 0.1, 0.3, 0.7, 1}[r.Intn(6)]
				tile := randomTile(seed, p, density)
				enc := Encode(k, tile)
				dec, err := enc.Decode()
				if err != nil {
					t.Logf("decode error: %v", err)
					return false
				}
				return dec.EqualValues(tile)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRoundTripStructured covers the structured shapes the random tiles
// miss: diagonal, single row, single column, and checkerboard tiles.
func TestRoundTripStructured(t *testing.T) {
	shapes := map[string]func(p int) *matrix.Tile{
		"diagonal": func(p int) *matrix.Tile {
			tl := matrix.NewTile(p, 0, 0)
			for i := 0; i < p; i++ {
				tl.Set(i, i, float64(i+1))
			}
			return tl
		},
		"single-row": func(p int) *matrix.Tile {
			tl := matrix.NewTile(p, 0, 0)
			for j := 0; j < p; j++ {
				tl.Set(p/2, j, float64(j+1))
			}
			return tl
		},
		"single-col": func(p int) *matrix.Tile {
			tl := matrix.NewTile(p, 0, 0)
			for i := 0; i < p; i++ {
				tl.Set(i, p/2, float64(i+1))
			}
			return tl
		},
		"checkerboard": func(p int) *matrix.Tile {
			tl := matrix.NewTile(p, 0, 0)
			for i := 0; i < p; i++ {
				for j := (i % 2); j < p; j += 2 {
					tl.Set(i, j, 1)
				}
			}
			return tl
		},
		"anti-diagonal": func(p int) *matrix.Tile {
			tl := matrix.NewTile(p, 0, 0)
			for i := 0; i < p; i++ {
				tl.Set(i, p-1-i, float64(i+1))
			}
			return tl
		},
	}
	for name, mk := range shapes {
		for _, k := range All() {
			for _, p := range []int{8, 16, 32} {
				tile := mk(p)
				enc := Encode(k, tile)
				dec, err := enc.Decode()
				if err != nil {
					t.Fatalf("%s/%s p=%d: decode: %v", k, name, p, err)
				}
				if !dec.EqualValues(tile) {
					t.Fatalf("%s/%s p=%d: round trip mismatch", k, name, p)
				}
			}
		}
	}
}

func TestFig1KnownAnswerCSR(t *testing.T) {
	e := encodeCSR(fig1Tile())
	// Paper Fig. 1b: offsets 1,1,1,1,2,2,2,3; indices 3,7,7.
	wantOff := []int32{1, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range wantOff {
		if e.offsets[i] != w {
			t.Fatalf("offsets[%d] = %d, want %d", i, e.offsets[i], w)
		}
	}
	wantIdx := []int32{3, 7, 7}
	for i, w := range wantIdx {
		if e.colIdx[i] != w {
			t.Fatalf("colIdx[%d] = %d, want %d", i, e.colIdx[i], w)
		}
	}
}

func TestFig1KnownAnswerCOO(t *testing.T) {
	e := encodeCOO(fig1Tile())
	// Paper Fig. 1d: tuples (0,3), (4,7), (7,7).
	want := [][2]int32{{0, 3}, {4, 7}, {7, 7}}
	if e.Tuples() != 3 {
		t.Fatalf("tuples = %d, want 3", e.Tuples())
	}
	for i, w := range want {
		if e.rows[i] != w[0] || e.cols[i] != w[1] {
			t.Fatalf("tuple %d = (%d,%d), want (%d,%d)", i, e.rows[i], e.cols[i], w[0], w[1])
		}
	}
}

func TestFig1KnownAnswerDIA(t *testing.T) {
	e := encodeDIA(fig1Tile())
	// Paper Fig. 1h: diagonals 0 (holding the (7,7) entry) and 3 (holding
	// (0,3) and (4,7)).
	if e.Diagonals() != 2 {
		t.Fatalf("diagonals = %d, want 2", e.Diagonals())
	}
	if e.diagNo[0] != 0 || e.diagNo[1] != 3 {
		t.Fatalf("diagonal numbers = %v, want [0 3]", e.diagNo)
	}
}

func TestFig1KnownAnswerBCSR(t *testing.T) {
	e := encodeBCSR(fig1Tile(), 4)
	// Paper Fig. 1c: offsets 1,2 — one block in each block row — and block
	// columns 0 and 4.
	if e.offsets[0] != 1 || e.offsets[1] != 2 {
		t.Fatalf("offsets = %v, want [1 2]", e.offsets)
	}
	if e.colIdx[0] != 0 || e.colIdx[1] != 4 {
		t.Fatalf("block columns = %v, want [0 4]", e.colIdx)
	}
	if len(e.vals) != 32 {
		t.Fatalf("block values = %d, want 32 (two 4x4 blocks)", len(e.vals))
	}
}

func TestFig1KnownAnswerELL(t *testing.T) {
	e := encodeELL(fig1Tile())
	if e.Width() != 1 {
		t.Fatalf("ELL width = %d, want 1 (longest row has one non-zero)", e.Width())
	}
	// Row 0 holds column 3; rows 1-3 padded.
	if e.idx[0] != 3 || e.idx[1] != ellPad {
		t.Fatalf("ELL idx start = %v", e.idx[:2])
	}
}

// TestFootprintInvariants checks the byte accounting identities for every
// format: lanes sum to the total, useful ≤ total, useful = nnz·4.
func TestFootprintInvariants(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			check := func(seed uint64) bool {
				r := xrand.New(seed)
				p := []int{8, 16, 32}[r.Intn(3)]
				tile := randomTile(seed, p, 0.25)
				enc := Encode(k, tile)
				f := enc.Footprint()
				if f.UsefulBytes != tile.NNZ()*matrix.BytesPerValue {
					t.Logf("%v: useful %d vs nnz %d", k, f.UsefulBytes, tile.NNZ())
					return false
				}
				if f.ValueLaneBytes+f.IndexLaneBytes != f.TotalBytes() {
					t.Logf("%v: lanes %d+%d != total %d", k, f.ValueLaneBytes, f.IndexLaneBytes, f.TotalBytes())
					return false
				}
				u := f.Utilization()
				return u >= 0 && u <= 1
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCOOUtilizationConstant reproduces the §6.3 observation: COO's
// bandwidth utilization is pinned near 1/3 at any density (the sentinel
// tuple pulls it fractionally below).
func TestCOOUtilizationConstant(t *testing.T) {
	for _, d := range []float64{0.05, 0.2, 0.5, 0.9} {
		tile := randomTile(5, 16, d)
		u := Encode(COO, tile).Footprint().Utilization()
		if u > 1.0/3.0+1e-9 || u < 0.30 {
			t.Errorf("COO utilization at density %v = %.4f, want ~1/3", d, u)
		}
	}
}

// TestDIAUtilizationDiagonal reproduces §6.3: DIA on a pure diagonal tile
// utilizes nearly the whole bandwidth (only the header word is overhead).
func TestDIAUtilizationDiagonal(t *testing.T) {
	tile := matrix.NewTile(16, 0, 0)
	for i := 0; i < 16; i++ {
		tile.Set(i, i, 1)
	}
	u := Encode(DIA, tile).Footprint().Utilization()
	want := 16.0 * matrix.BytesPerValue / (17.0 * matrix.BytesPerValue)
	if u != want {
		t.Fatalf("DIA diagonal utilization = %.4f, want %.4f", u, want)
	}
}

// TestDenseUtilizationIsDensity: dense transmits everything, so its
// utilization equals the tile density.
func TestDenseUtilizationIsDensity(t *testing.T) {
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.3)
		u := Encode(Dense, tile).Footprint().Utilization()
		return u == tile.Density()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsInvariants checks the structural stats every format reports.
func TestStatsInvariants(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			check := func(seed uint64) bool {
				r := xrand.New(seed)
				p := []int{8, 16, 32}[r.Intn(3)]
				tile := randomTile(seed, p, 0.2)
				s := Encode(k, tile).Stats()
				if s.NNZ != tile.NNZ() || s.NonZeroRows != tile.NonZeroRows() {
					return false
				}
				// Every format must perform at least the non-zero rows'
				// dot products and at most p.
				return s.DotRows >= s.NonZeroRows && s.DotRows <= p
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestELLDotRowsIsP(t *testing.T) {
	tile := fig1Tile()
	if s := Encode(ELL, tile).Stats(); s.DotRows != 8 {
		t.Fatalf("ELL DotRows = %d, want 8 (cannot skip all-zero rows)", s.DotRows)
	}
	if s := Encode(CSR, tile).Stats(); s.DotRows != 3 {
		t.Fatalf("CSR DotRows = %d, want 3", s.DotRows)
	}
}

func TestBCSRDotRowsCoversBlocks(t *testing.T) {
	// One non-zero in one block row: BCSR processes all 4 rows of that
	// block row even though only one is non-zero.
	tile := matrix.NewTile(8, 0, 0)
	tile.Set(1, 1, 5)
	s := Encode(BCSR, tile).Stats()
	if s.DotRows != 4 || s.Blocks != 1 || s.BlockRows != 1 {
		t.Fatalf("BCSR stats = %+v, want DotRows=4 Blocks=1 BlockRows=1", s)
	}
}

func TestEmptyTileAllFormats(t *testing.T) {
	for _, k := range All() {
		tile := matrix.NewTile(8, 0, 0)
		enc := Encode(k, tile)
		dec, err := enc.Decode()
		if err != nil {
			t.Fatalf("%v: empty tile decode: %v", k, err)
		}
		if dec.NNZ() != 0 {
			t.Fatalf("%v: empty tile decoded with %d non-zeros", k, dec.NNZ())
		}
		if f := enc.Footprint(); f.UsefulBytes != 0 {
			t.Fatalf("%v: empty tile claims %d useful bytes", k, f.UsefulBytes)
		}
	}
}

// TestCorruptionDetection injects stream corruption per format and checks
// the decoder reports ErrCorrupt rather than silently mis-decoding.
func TestCorruptionDetection(t *testing.T) {
	tile := randomTile(9, 8, 0.3)
	cases := []struct {
		name    string
		corrupt func() Encoded
	}{
		{"csr column out of range", func() Encoded {
			e := encodeCSR(tile)
			e.colIdx[0] = 99
			return e
		}},
		{"csr offsets decrease", func() Encoded {
			e := encodeCSR(tile)
			e.offsets[3] = e.offsets[2] - 1
			e.offsets[e.p-1] = int32(len(e.vals)) // keep the total consistent
			return e
		}},
		{"csr offset overruns stream", func() Encoded {
			// The fuzz-found class: a middle offset larger than the
			// stream, with the final offset still consistent.
			e := encodeCSR(tile)
			e.offsets[0] = int32(len(e.vals)) + 10
			return e
		}},
		{"csc offset overruns stream", func() Encoded {
			e := encodeCSC(tile)
			e.offsets[0] = int32(len(e.vals)) + 10
			return e
		}},
		{"bcsr offset overruns blocks", func() Encoded {
			e := encodeBCSR(tile, 4)
			e.offsets[0] = int32(len(e.colIdx)) + 3
			return e
		}},
		{"csc row out of range", func() Encoded {
			e := encodeCSC(tile)
			e.rowIdx[0] = -2
			return e
		}},
		{"bcsr bad block column", func() Encoded {
			e := encodeBCSR(tile, 4)
			e.colIdx[0] = 3 // not block-aligned
			return e
		}},
		{"coo missing sentinel", func() Encoded {
			e := encodeCOO(tile)
			e.rows[len(e.rows)-1] = 0
			return e
		}},
		{"coo out of range", func() Encoded {
			e := encodeCOO(tile)
			e.cols[0] = 64
			return e
		}},
		{"dok bad key", func() Encoded {
			e := encodeDOK(tile)
			for s, k := range e.keys {
				if k != dokEmpty {
					e.keys[s] = dokKey(20, 20)
					break
				}
			}
			return e
		}},
		{"lil rows not ascending", func() Encoded {
			e := encodeLIL(tile)
			for j := range e.colRows {
				if len(e.colRows[j]) >= 2 {
					e.colRows[j][0], e.colRows[j][1] = e.colRows[j][1], e.colRows[j][0]
					break
				}
			}
			return e
		}},
		{"ell column out of range", func() Encoded {
			e := encodeELL(tile)
			for i, v := range e.idx {
				if v != ellPad {
					e.idx[i] = 88
					break
				}
			}
			return e
		}},
		{"dia out of extent", func() Encoded {
			e := encodeDIA(tile)
			// Force a value into an out-of-extent slot of a non-main
			// diagonal, if one exists.
			for k, d := range e.diagNo {
				if d > 0 {
					e.lanes[k*e.p+e.p-1] = 7 // row p-1, col p-1+d out of range
					return e
				}
				if d < 0 {
					e.lanes[k*e.p] = 7 // row 0, col d < 0 out of range
					return e
				}
			}
			// All-main-diagonal tile: corrupt the lane count instead.
			e.lanes = e.lanes[:len(e.lanes)-1]
			return e
		}},
		{"jds broken permutation", func() Encoded {
			e := encodeJDS(tile)
			e.perm[0] = e.perm[1]
			return e
		}},
		{"sell width out of range", func() Encoded {
			e := encodeSELL(tile, 4)
			e.widths[0] = int32(e.p + 1)
			return e
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			enc := c.corrupt()
			dec, err := enc.Decode()
			if err == nil {
				// Corruption may accidentally produce a valid different
				// encoding; it must at least not equal the source tile.
				if dec.EqualValues(tile) {
					t.Fatal("corrupted stream decoded to the original tile without error")
				}
				return
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

func TestEncodeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with unknown kind did not panic")
		}
	}()
	Encode(Kind(12345), matrix.NewTile(8, 0, 0))
}

// TestSELLTighterThanELL: slicing can only shrink the padded rectangle.
func TestSELLTighterThanELL(t *testing.T) {
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.15)
		ell := Encode(ELL, tile).Footprint().TotalBytes()
		sell := Encode(SELL, tile).Footprint().TotalBytes()
		// SELL adds one width word per slice but saves per-slice padding.
		return sell <= ell+4*matrix.BytesPerOffset
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestJDSNoPadding: JDS stores exactly nnz values.
func TestJDSNoPadding(t *testing.T) {
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.2)
		e := encodeJDS(tile)
		return len(e.vals) == tile.NNZ()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSELLCSShrinksRectangles: σ-window sorting concentrates long rows
// into the same slices, so SELL-C-σ's padded rectangles never exceed
// unsorted SELL's (the permutation vector is its fixed price).
func TestSELLCSShrinksRectangles(t *testing.T) {
	check := func(seed uint64) bool {
		tile := randomTile(seed, 16, 0.15)
		sell := Encode(SELL, tile).Footprint()
		scs := Encode(SELLCS, tile).Footprint()
		permBytes := 16 * matrix.BytesPerIndex
		return scs.TotalBytes() <= sell.TotalBytes()+permBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSELLCSWindowLocality: the permutation never moves a row outside
// its σ window.
func TestSELLCSWindowLocality(t *testing.T) {
	tile := randomTile(3, 16, 0.3)
	e := encodeSELLCS(tile, SELLSlice, SELLCSigmaWindow)
	for pos, orig := range e.perm {
		if pos/SELLCSigmaWindow != int(orig)/SELLCSigmaWindow {
			t.Fatalf("row %d moved to position %d, outside its sigma window", orig, pos)
		}
	}
}

// TestELLCOOCapsWidth: the hybrid never exceeds the configured cap.
func TestELLCOOCapsWidth(t *testing.T) {
	// A tile with one full row would force plain ELL to width p.
	tile := matrix.NewTile(16, 0, 0)
	for j := 0; j < 16; j++ {
		tile.Set(3, j, 1)
	}
	e := encodeELLCOO(tile, ELLWidth)
	if e.Width() != ELLWidth {
		t.Fatalf("hybrid width = %d, want %d", e.Width(), ELLWidth)
	}
	if e.Spill() != 16-ELLWidth {
		t.Fatalf("spill = %d, want %d", e.Spill(), 16-ELLWidth)
	}
}
