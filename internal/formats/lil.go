package formats

import "copernicus/internal/matrix"

// LILEnc stores a tile as the paper's list-of-lists variant (Fig. 1f,
// Listing 4): one list per column holding the row indices and values of
// that column's non-zeros, pushed to the top. Because every column list
// can sit in its own BRAM bank (the array_partition pragmas of Listing 4),
// the decompressor reconstructs a non-zero row with a single parallel
// access: it scans the per-column cursors for the minimum pending row
// index and gathers every column whose head matches. One terminator entry
// per column marks the end of the lists — the "one additional row" of
// transfer the paper charges LIL for.
type LILEnc struct {
	p       int
	colRows [][]int32 // per column: ascending row indices of non-zeros
	colVals [][]float64
	nnz     int
	nzr     int
}

// lilTerm marks the end of a column list; Listing 4 detects it by
// comparing against HEIGHT.
const lilTerm = int32(-1)

func encodeLIL(t *matrix.Tile) *LILEnc {
	p, nnz := t.P, t.NNZ()
	e := &LILEnc{
		p:       p,
		colRows: make([][]int32, p),
		colVals: make([][]float64, p),
		nnz:     nnz,
		nzr:     t.NonZeroRows(),
	}
	s := getScratch()
	cur := s.ints(p) // per-column counts, then scatter cursors
	for i := 0; i < p; i++ {
		cols, _ := t.RowView(i)
		for _, j := range cols {
			cur[j]++
		}
	}
	// All column lists slice two shared backing arrays.
	rowsBuf := make([]int32, nnz)
	valsBuf := make([]float64, nnz)
	running := int32(0)
	for j := 0; j < p; j++ {
		c := cur[j]
		cur[j] = running
		if c > 0 {
			e.colRows[j] = rowsBuf[running : running+c : running+c]
			e.colVals[j] = valsBuf[running : running+c : running+c]
		}
		running += c
	}
	// Scattering the row-major walk keeps each list's rows ascending.
	for i := 0; i < p; i++ {
		cols, vals := t.RowView(i)
		for k, j := range cols {
			rowsBuf[cur[j]] = int32(i)
			valsBuf[cur[j]] = vals[k]
			cur[j]++
		}
	}
	putScratch(s)
	return e
}

// Kind implements Encoded.
func (e *LILEnc) Kind() Kind { return LIL }

// P implements Encoded.
func (e *LILEnc) P() int { return e.p }

// ColRows exposes column j's row-index list for the hardware model.
func (e *LILEnc) ColRows(j int) []int32 { return e.colRows[j] }

// ColVals exposes column j's value list for the hardware model.
func (e *LILEnc) ColVals(j int) []float64 { return e.colVals[j] }

// Height returns the longest column list (the rectangular BRAM array's
// used height, excluding the terminator row).
func (e *LILEnc) Height() int {
	h := 0
	for _, c := range e.colRows {
		if len(c) > h {
			h = len(c)
		}
	}
	return h
}

// Decode implements Encoded. It replays the Listing 4 merge: repeatedly
// find the minimum pending row index across column cursors and gather all
// matching heads.
func (e *LILEnc) Decode() (*matrix.Tile, error) {
	if len(e.colRows) != e.p || len(e.colVals) != e.p {
		return nil, corruptf("lil: %d/%d columns for p=%d", len(e.colRows), len(e.colVals), e.p)
	}
	t := matrix.NewTile(e.p, 0, 0)
	cursor := make([]int, e.p)
	for {
		minRow := int32(-1)
		for j := 0; j < e.p; j++ {
			if len(e.colRows[j]) != len(e.colVals[j]) {
				return nil, corruptf("lil: column %d length mismatch", j)
			}
			if cursor[j] < len(e.colRows[j]) {
				r := e.colRows[j][cursor[j]]
				if r < 0 || int(r) >= e.p {
					return nil, corruptf("lil: row %d out of range in column %d", r, j)
				}
				if cursor[j] > 0 && e.colRows[j][cursor[j]-1] >= r {
					return nil, corruptf("lil: rows not ascending in column %d", j)
				}
				if minRow == -1 || r < minRow {
					minRow = r
				}
			}
		}
		if minRow == -1 {
			return t, nil
		}
		for j := 0; j < e.p; j++ {
			if cursor[j] < len(e.colRows[j]) && e.colRows[j][cursor[j]] == minRow {
				v := e.colVals[j][cursor[j]]
				if v == 0 {
					return nil, corruptf("lil: explicit zero in column %d", j)
				}
				t.Set(int(minRow), j, v)
				cursor[j]++
			}
		}
	}
}

// Footprint implements Encoded. Each column transfers its entries plus a
// terminator on both lanes.
func (e *LILEnc) Footprint() Footprint {
	entries := e.nnz + e.p // one terminator per column
	useful := e.nnz * matrix.BytesPerValue
	valueLane := entries * matrix.BytesPerValue
	idxLane := entries * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded. Width records the longest column list, which
// bounds the merge depth.
func (e *LILEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.nzr, Width: e.Height()}
}
