package formats

import "copernicus/internal/matrix"

// DIAEnc stores a tile in diagonal form (Fig. 1h, Listing 7): one record
// per non-zero diagonal, holding the diagonal number (0 for the main
// diagonal, negative for diagonals starting on a lower row, positive for
// higher columns) followed by a p-slot lane of values. Slots outside the
// diagonal's extent are padding. The format is ideal for band matrices —
// a pure diagonal tile transfers p values plus a single header word,
// giving near-unit bandwidth utilization — but its decompressor must scan
// every stored diagonal per output row, so scattered non-zeros that open
// many part-empty diagonals hurt twice: padded transfer and long scans.
type DIAEnc struct {
	p      int
	diagNo []int32   // stored diagonal numbers, ascending
	lanes  []float64 // len(diagNo) * p, lane d slot i = value at (i, i+d)
	nnz    int
	nzr    int
}

func encodeDIA(t *matrix.Tile) *DIAEnc {
	p := t.P
	e := &DIAEnc{p: p, nnz: t.NNZ(), nzr: t.NonZeroRows()}
	s := getScratch()
	// Diagonal d = j-i is indexed at d+p-1 in [0, 2p-1).
	count := s.ints(2*p - 1)
	for i := 0; i < p; i++ {
		cols, _ := t.RowView(i)
		for _, j := range cols {
			count[int(j)-i+p-1]++
		}
	}
	lane := s.ints2(2*p - 1) // diagonal index → stored lane number
	for d := 0; d < 2*p-1; d++ {
		if count[d] > 0 {
			lane[d] = int32(len(e.diagNo))
			e.diagNo = append(e.diagNo, int32(d-(p-1)))
		}
	}
	e.lanes = make([]float64, len(e.diagNo)*p)
	for i := 0; i < p; i++ {
		cols, vals := t.RowView(i)
		for k, j := range cols {
			e.lanes[int(lane[int(j)-i+p-1])*p+i] = vals[k]
		}
	}
	putScratch(s)
	return e
}

// Kind implements Encoded.
func (e *DIAEnc) Kind() Kind { return DIA }

// P implements Encoded.
func (e *DIAEnc) P() int { return e.p }

// Diagonals returns the number of stored diagonals.
func (e *DIAEnc) Diagonals() int { return len(e.diagNo) }

// DiagNo exposes the stored diagonal numbers for the hardware model.
func (e *DIAEnc) DiagNo() []int32 { return e.diagNo }

// Lane returns the value lane of stored diagonal k (slot i holds the
// value at tile position (i, i+d)).
func (e *DIAEnc) Lane(k int) []float64 { return e.lanes[k*e.p : (k+1)*e.p] }

// Decode implements Encoded.
func (e *DIAEnc) Decode() (*matrix.Tile, error) {
	if len(e.lanes) != len(e.diagNo)*e.p {
		return nil, corruptf("dia: %d lane slots for %d diagonals of p=%d", len(e.lanes), len(e.diagNo), e.p)
	}
	t := matrix.NewTile(e.p, 0, 0)
	for k, d := range e.diagNo {
		if int(d) <= -e.p || int(d) >= e.p {
			return nil, corruptf("dia: diagonal number %d out of range", d)
		}
		if k > 0 && e.diagNo[k-1] >= d {
			return nil, corruptf("dia: diagonal numbers not ascending at %d", k)
		}
		lane := e.Lane(k)
		for i := 0; i < e.p; i++ {
			j := i + int(d)
			if j < 0 || j >= e.p {
				if lane[i] != 0 {
					return nil, corruptf("dia: out-of-extent slot %d on diagonal %d holds a value", i, d)
				}
				continue
			}
			if lane[i] != 0 {
				t.Set(i, j, lane[i])
			}
		}
	}
	return t, nil
}

// Footprint implements Encoded. Every stored diagonal transfers p value
// slots plus its header word; in-band zeros and out-of-extent padding are
// metadata, as is the header (the paper's "slight difference" that keeps
// even a pure diagonal matrix just under full utilization).
func (e *DIAEnc) Footprint() Footprint {
	useful := e.nnz * matrix.BytesPerValue
	valueLane := len(e.lanes) * matrix.BytesPerValue
	idxLane := len(e.diagNo) * matrix.BytesPerIndex
	return Footprint{
		UsefulBytes:    useful,
		MetaBytes:      idxLane + (valueLane - useful),
		ValueLaneBytes: valueLane,
		IndexLaneBytes: idxLane,
	}
}

// Stats implements Encoded.
func (e *DIAEnc) Stats() Stats {
	return Stats{NNZ: e.nnz, NonZeroRows: e.nzr, DotRows: e.nzr, Diagonals: len(e.diagNo)}
}
