package mtx

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"copernicus/internal/matrix"
)

// FuzzRead: the parser must never panic on arbitrary text; on success
// the result must be a valid CSR matrix that survives a Write/Read
// round trip.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 -4\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-5 2 1\n1 1 1\n")
	f.Add("% comment only\n")
	f.Fuzz(func(t *testing.T, in string) {
		// Pre-screen the size line: Read legitimately allocates O(rows)
		// (SuiteSparse files reach 50M rows), which a fuzz box cannot
		// afford. Skip inputs declaring huge dimensions; correctness on
		// them is plain allocation, not parsing.
		if oversizedHeader(in, 1<<20) {
			return
		}
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid matrix: %v", verr)
		}
		if m.Rows > 1<<16 || m.Cols > 1<<16 {
			return // skip pathological sizes for the round trip
		}
		var buf bytes.Buffer
		if werr := Write(&buf, m); werr != nil {
			t.Fatalf("write of parsed matrix failed: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip re-read failed: %v", rerr)
		}
		if !matrix.Equal(m, back, 0) {
			// NaN values legitimately break equality; everything else
			// must round trip.
			if !containsNaN(m) {
				t.Fatal("round trip mismatch")
			}
		}
	})
}

// FuzzReadLimited: the bounded ingestion path — the one the service
// upload handler trusts — must never panic, and every acceptance must
// honor the limits. Unlike FuzzRead, no size pre-screen is needed: the
// limits themselves are checked from the size line before any per-entry
// allocation, which is exactly the property under fuzz.
func FuzzReadLimited(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n% c\n3 3 2\n2 1 1\n3 3 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n1 1 2\n") // duplicates sum
	f.Add("%%MatrixMarket matrix coordinate real general\n5000 2 1\n1 1 1\n")     // over MaxRows
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999999999999999 1 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1 junk\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 2\n") // excess entry
	f.Fuzz(func(t *testing.T, in string) {
		lim := Limits{MaxRows: 1 << 12, MaxCols: 1 << 12, MaxEntries: 1 << 12}
		m, err := ReadLimited(strings.NewReader(in), lim)
		if err != nil {
			return
		}
		if m.Rows > lim.MaxRows || m.Cols > lim.MaxCols {
			t.Fatalf("accepted %dx%d past limits %+v", m.Rows, m.Cols, lim)
		}
		// Symmetric expansion may double MaxEntries; it never exceeds 2x.
		if nnz := m.NNZ(); nnz > 2*lim.MaxEntries {
			t.Fatalf("accepted %d entries past limit %d (even symmetric-expanded)", nnz, lim.MaxEntries)
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("bounded parser accepted an invalid matrix: %v", verr)
		}
	})
}

// oversizedHeader reports whether the first non-comment line after the
// banner declares a dimension above the cap.
func oversizedHeader(in string, cap int) bool {
	lines := strings.Split(in, "\n")
	for i, line := range lines {
		if i == 0 || strings.HasPrefix(strings.TrimSpace(line), "%") || strings.TrimSpace(line) == "" {
			continue
		}
		var r, c, n int
		if _, err := fmt.Sscan(line, &r, &c, &n); err != nil {
			return false // Read will reject it anyway
		}
		return r > cap || c > cap || n > cap
	}
	return false
}

func containsNaN(m *matrix.CSR) bool {
	for _, v := range m.Val {
		if v != v {
			return true
		}
	}
	return false
}
