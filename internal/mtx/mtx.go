// Package mtx reads and writes the NIST Matrix Market exchange format
// (coordinate real/integer/pattern, general or symmetric) — the format
// the SuiteSparse collection distributes. It lets the characterization
// run on the paper's actual Table 1 matrices when the files are
// available, instead of the built-in surrogates.
//
// Only the subset relevant to sparse-matrix work is implemented:
// `%%MatrixMarket matrix coordinate <real|integer|pattern>
// <general|symmetric|skew-symmetric>`. Dense ("array") files and complex
// fields are rejected with a descriptive error.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"copernicus/internal/matrix"
)

// header is the parsed MatrixMarket banner.
type header struct {
	field    string // real, integer, pattern
	symmetry string // general, symmetric, skew-symmetric
}

func parseBanner(line string) (header, error) {
	f := strings.Fields(strings.ToLower(line))
	if len(f) != 5 || f[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mtx: not a MatrixMarket banner: %q", line)
	}
	if f[1] != "matrix" {
		return header{}, fmt.Errorf("mtx: unsupported object %q", f[1])
	}
	if f[2] != "coordinate" {
		return header{}, fmt.Errorf("mtx: unsupported format %q (only coordinate)", f[2])
	}
	h := header{field: f[3], symmetry: f[4]}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return header{}, fmt.Errorf("mtx: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return header{}, fmt.Errorf("mtx: unsupported symmetry %q", h.symmetry)
	}
	if h.field == "pattern" && h.symmetry == "skew-symmetric" {
		// The MM spec defines skew symmetry only for valued fields: a
		// pattern entry has no sign to negate.
		return header{}, fmt.Errorf("mtx: pattern field cannot be skew-symmetric")
	}
	return h, nil
}

// Limits bounds what ReadLimited will ingest. Zero fields are unlimited.
// The size line is checked before any entry is read or allocated, so an
// oversized stream is rejected in O(1) — the check a service front-end
// needs before accepting an upload.
type Limits struct {
	MaxRows    int
	MaxCols    int
	MaxEntries int // stored entries promised by the size line (before symmetric expansion)
}

// parseSizeLine parses the "rows cols nnz" size line strictly: exactly
// three integer fields, no trailing garbage (fmt.Sscan would silently
// accept "10 10 5 junk").
func parseSizeLine(line string) (rows, cols, nnz int, err error) {
	f := strings.Fields(line)
	if len(f) != 3 {
		return 0, 0, 0, fmt.Errorf("mtx: bad size line %q: want exactly \"rows cols nnz\"", line)
	}
	dims := make([]int, 3)
	for i, s := range f {
		dims[i], err = strconv.Atoi(s)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("mtx: bad size line %q: %w", line, err)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

// Read parses a Matrix Market coordinate stream into a CSR matrix.
// Duplicate entries are summed (the collection's assembly convention);
// symmetric storage is expanded.
func Read(r io.Reader) (*matrix.CSR, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited is Read with ingestion bounds: streams that declare more
// rows, columns, or stored entries than the limits allow are rejected
// from the size line alone, before any per-entry work. A stream that
// carries more entry lines than its size line promises is also cut off
// at the first excess line rather than parsed to exhaustion.
func ReadLimited(r io.Reader, lim Limits) (*matrix.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	h, err := parseBanner(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mtx: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if rows, cols, nnz, err = parseSizeLine(line); err != nil {
			return nil, err
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mtx: negative dimensions %d %d %d", rows, cols, nnz)
	}
	if lim.MaxRows > 0 && rows > lim.MaxRows {
		return nil, fmt.Errorf("mtx: %d rows exceeds limit %d", rows, lim.MaxRows)
	}
	if lim.MaxCols > 0 && cols > lim.MaxCols {
		return nil, fmt.Errorf("mtx: %d columns exceeds limit %d", cols, lim.MaxCols)
	}
	if lim.MaxEntries > 0 && nnz > lim.MaxEntries {
		return nil, fmt.Errorf("mtx: %d entries exceeds limit %d", nnz, lim.MaxEntries)
	}
	if h.symmetry != "general" && rows != cols {
		return nil, fmt.Errorf("mtx: %s symmetry requires a square matrix, got %dx%d", h.symmetry, rows, cols)
	}

	b := matrix.NewBuilder(rows, cols)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if seen >= nnz {
			return nil, fmt.Errorf("mtx: more entries than the %d the header promises", nnz)
		}
		f := strings.Fields(line)
		want := 3
		if h.field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("mtx: entry %d: short line %q", seen+1, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mtx: entry %d: bad row %q", seen+1, f[0])
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mtx: entry %d: bad column %q", seen+1, f[1])
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: entry %d: (%d,%d) outside %dx%d", seen+1, i, j, rows, cols)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mtx: entry %d: bad value %q", seen+1, f[2])
			}
		}
		// The MM spec stores only the strictly lower triangle of a
		// skew-symmetric matrix: A[i][i] = -A[i][i] forces a zero
		// diagonal, so a stored diagonal entry is a spec violation that
		// would silently yield a non-skew-symmetric matrix.
		if h.symmetry == "skew-symmetric" && i == j {
			return nil, fmt.Errorf("mtx: entry %d: diagonal entry (%d,%d) in a skew-symmetric matrix", seen+1, i, j)
		}
		b.Add(i-1, j-1, v)
		switch h.symmetry {
		case "symmetric":
			if i != j {
				b.Add(j-1, i-1, v)
			}
		case "skew-symmetric":
			b.Add(j-1, i-1, -v)
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mtx: read: %w", err)
	}
	if seen != nnz {
		return nil, fmt.Errorf("mtx: header promises %d entries, found %d", nnz, seen)
	}
	return b.Build(), nil
}

// Write emits the matrix in Matrix Market coordinate-real-general form.
//
// General form stores every non-zero explicitly. That loses nothing
// numerically — pattern- and integer-sourced matrices write their values
// as reals and read back identical — but a file that was read from
// symmetric (or skew-symmetric) storage has already been expanded to
// both triangles, so writing it back in general form stores roughly
// twice the entry count of the original file. The matrix still round
// trips exactly; only the on-disk representation grows. Use
// WriteSymmetric to regain triangular storage for a symmetric matrix.
func Write(w io.Writer, m *matrix.CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%%generated by copernicus\n%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Col[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteSymmetric emits the matrix in coordinate-real-symmetric form,
// storing only the lower triangle — the inverse of Read's symmetric
// expansion, so a symmetric file round trips at its original entry
// count. It refuses a matrix that is not exactly symmetric rather than
// silently writing a file that would read back different.
func WriteSymmetric(w io.Writer, m *matrix.CSR) error {
	if m.Rows != m.Cols {
		return fmt.Errorf("mtx: symmetric form requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	lower := 0
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			if m.At(j, i) != m.Val[k] {
				return fmt.Errorf("mtx: not symmetric: A[%d][%d]=%g but A[%d][%d]=%g",
					i, j, m.Val[k], j, i, m.At(j, i))
			}
			if j <= i {
				lower++
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%%generated by copernicus\n%d %d %d\n", m.Rows, m.Cols, lower); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if j := m.Col[k]; j <= i {
				if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, m.Val[k]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
