package mtx

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"copernicus/internal/gen"
	"copernicus/internal/matrix"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 1.5
2 3 -2
3 4 0.25
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("parsed %dx%d nnz=%d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(1, 2) != -2 || m.At(0, 0) != 1.5 {
		t.Fatal("values misplaced")
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
3 3 7
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 5 || m.At(0, 1) != 5 {
		t.Fatal("symmetric expansion failed")
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (diagonal not duplicated)", m.NNZ())
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 4
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 4 || m.At(0, 1) != -4 {
		t.Fatal("skew expansion failed")
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Fatal("pattern entries missing")
	}
}

func TestReadIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 7
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 7 {
		t.Fatal("integer value lost")
	}
}

func TestReadRejections(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad banner":      "hello\n1 1 0\n",
		"dense array":     "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex":         "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"hermitian":       "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"missing size":    "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad size":        "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"short entry":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
		"count mismatch":  "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n",
		"bad row number":  "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"negative header": "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		// Fuzz-found: mirroring a symmetric entry on a non-square matrix
		// lands out of range.
		"non-square symmetric": "%%MatrixMarket matrix coordinate real symmetric\n7 1 1\n2 1 1\n",
		// The MM spec forbids stored diagonals in skew-symmetric files
		// (A[i][i] = -A[i][i] forces zero); accepting one yields a matrix
		// that is not skew-symmetric.
		"skew diagonal": "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 2 4\n",
		// Pattern entries have no sign to negate.
		"pattern skew": "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n",
		// fmt.Sscan used to accept trailing garbage on the size line.
		"size line trailing garbage": "%%MatrixMarket matrix coordinate real general\n10 10 5 junk\n1 1 1\n1 2 1\n2 1 1\n2 2 1\n3 3 1\n",
		"size line extra number":     "%%MatrixMarket matrix coordinate real general\n2 2 1 7\n1 1 1\n",
		"size line too few":          "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1\n",
		"more entries than promised": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		m := gen.Random(40, 0.1, seed)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return matrix.Equal(m, back, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripStructured(t *testing.T) {
	for _, m := range []*matrix.CSR{
		gen.Band(32, 8, 1),
		gen.Circuit(64, 2),
		matrix.NewBuilder(5, 7).Build(), // empty
	} {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(m, back, 0) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestReadLimited(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n100 50 3\n1 1 1\n2 2 2\n3 3 3\n"
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxRows: 64}); err == nil {
		t.Fatal("row limit not enforced")
	}
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxCols: 32}); err == nil {
		t.Fatal("column limit not enforced")
	}
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 2}); err == nil {
		t.Fatal("entry limit not enforced")
	}
	m, err := ReadLimited(strings.NewReader(in), Limits{MaxRows: 100, MaxCols: 50, MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	// Zero limits mean unlimited.
	if _, err := ReadLimited(strings.NewReader(in), Limits{}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetricRoundTrip: a symmetric file read (expanded) and written
// back with WriteSymmetric keeps its stored entry count; the general-form
// Write doubles the stored entries but still round trips the matrix
// exactly (the documented trade-off).
func TestSymmetricRoundTrip(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2
2 1 -1
3 2 -1
3 3 2
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 6 {
		t.Fatalf("expanded nnz = %d, want 6", m.NNZ())
	}

	var sym bytes.Buffer
	if err := WriteSymmetric(&sym, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sym.String(), "coordinate real symmetric") {
		t.Fatal("symmetric banner missing")
	}
	if !strings.Contains(sym.String(), "3 3 4") {
		t.Fatalf("symmetric form should store 4 entries, got:\n%s", sym.String())
	}
	back, err := Read(bytes.NewReader(sym.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("symmetric round trip mismatch")
	}

	var general bytes.Buffer
	if err := Write(&general, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(general.String(), "3 3 6") {
		t.Fatalf("general form stores the expanded 6 entries, got:\n%s", general.String())
	}
	back, err = Read(bytes.NewReader(general.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("general round trip mismatch")
	}
}

func TestWriteSymmetricRejectsAsymmetric(t *testing.T) {
	b := matrix.NewBuilder(2, 2)
	b.Add(0, 1, 3) // no mirrored (1,0) entry
	if err := WriteSymmetric(&bytes.Buffer{}, b.Build()); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if err := WriteSymmetric(&bytes.Buffer{}, matrix.NewBuilder(2, 3).Build()); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

// TestPatternRoundTrip: pattern files read as 1.0-valued entries and
// round trip exactly through the real-general writer.
func TestPatternRoundTrip(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("pattern round trip mismatch")
	}
}

func TestReadSumsDuplicates(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 2
1 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 5 {
		t.Fatalf("duplicates not summed: %v", m.At(0, 0))
	}
}
