package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/core"
	"copernicus/internal/faults"
	"copernicus/internal/formats"
	"copernicus/internal/resilience"
	"copernicus/internal/scenario"
	"copernicus/internal/wire"
	"copernicus/internal/workloads"
)

// InternalHeader marks coordinator-originated requests. A worker that is
// itself configured as a coordinator computes such requests locally
// instead of fanning out again — the guard against dispatch loops when a
// node appears in its own worker list (or in a cycle of coordinators).
const InternalHeader = "X-Copernicus-Cluster"

// headerCached mirrors the service's X-Copernicus-Cached response header
// (the literal is part of the HTTP contract; the service package imports
// cluster, so the constant cannot live there without a cycle).
const headerCached = "X-Copernicus-Cached"

// ptDispatch lets the chaos suite fail remote dispatch attempts
// deterministically: an armed error is handled exactly like a transport
// failure — breaker accounting, re-dispatch to the next replica, and
// finally local fallback.
var ptDispatch = faults.Point("cluster.dispatch")

// errPeerMiss is the sentinel for a cache=only probe that found nothing:
// the worker is healthy but its LRU has no entry for the group.
var errPeerMiss = errors.New("cluster: peer cache miss")

// Config describes a coordinator's worker fleet and dispatch policy.
type Config struct {
	// Workers are the fleet members as "host:port" (http:// assumed) or
	// full base URLs. At least one is required.
	Workers []string
	// VNodes is the ring's virtual nodes per worker (DefaultVNodes if 0).
	VNodes int
	// Seed is the ring's placement seed (DefaultSeed if 0). Every
	// coordinator for one fleet must agree on it.
	Seed uint64
	// ProbeInterval is the /v1/readyz polling period (default 2s).
	ProbeInterval time.Duration
	// Timeout bounds one dispatch round-trip (default 60s).
	Timeout time.Duration
	// BreakerThreshold trips a worker's dispatch breaker after that many
	// consecutive failures (default 3); BreakerCooldown is the open
	// period before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// worker is one fleet member: its address, dispatch breaker, readiness
// flag, and tallies.
type worker struct {
	name string // as configured — the ring key and stats label
	base string // normalized base URL

	br    *resilience.Breaker
	ready atomic.Bool // last /v1/readyz verdict (optimistic true at start)

	dispatched atomic.Uint64 // successful group fetches
	failures   atomic.Uint64 // failed dispatch attempts
	probeHits  atomic.Uint64 // cache=only probes answered from the LRU
}

// Coordinator owns the ring, the worker clients, and the background
// health prober. It is constructed once per serving process and shared
// by every request; all methods are safe for concurrent use.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	workers map[string]*worker
	hc      *http.Client

	groups        atomic.Uint64 // groups served remotely
	redispatched  atomic.Uint64 // extra dispatch attempts after a replica failed
	peerHits      atomic.Uint64 // groups answered from a worker's sweep LRU
	peerMisses    atomic.Uint64 // groups the owning worker had to compute
	localFallback atomic.Uint64 // groups that fell back to local compute

	stop     context.CancelFunc
	stopped  chan struct{}
	startMu  sync.Mutex
	started  bool
	closedMu sync.Mutex
	closed   bool
}

// New builds a coordinator over the configured fleet. The health prober
// is not running yet — call Start (service.New does this when wiring a
// cluster into a server).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Workers, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		workers: make(map[string]*worker, len(cfg.Workers)),
		hc:      &http.Client{Timeout: cfg.Timeout},
	}
	for _, name := range ring.Workers() {
		base := name
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		u, err := url.Parse(base)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad worker address %q", name)
		}
		w := &worker{
			name: name,
			base: strings.TrimRight(base, "/"),
			br:   resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		w.ready.Store(true)
		c.workers[name] = w
	}
	return c, nil
}

// Workers returns the fleet's configured names in ring (sorted) order.
func (c *Coordinator) Workers() []string { return c.ring.Workers() }

// Start launches the background /v1/readyz prober. Idempotent.
func (c *Coordinator) Start() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if c.started {
		return
	}
	c.started = true
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	c.stopped = make(chan struct{})
	go func() {
		defer close(c.stopped)
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			c.ProbeOnce(ctx)
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// Close stops the prober. Safe to call multiple times and without Start.
func (c *Coordinator) Close() {
	c.closedMu.Lock()
	defer c.closedMu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.startMu.Lock()
	started := c.started
	c.startMu.Unlock()
	if started {
		c.stop()
		<-c.stopped
	}
}

// ProbeOnce runs one synchronous /v1/readyz round over the fleet,
// updating each worker's readiness flag. Exposed for tests and the
// prober loop alike.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, "GET", w.base+"/v1/readyz", nil)
			if err != nil {
				w.ready.Store(false)
				return
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				w.ready.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			w.ready.Store(resp.StatusCode == http.StatusOK)
		}(w)
	}
	wg.Wait()
}

// SweepQuery names one worker-side sweep: the GET /v1/sweep parameters
// a dispatch or cache probe carries.
type SweepQuery struct {
	Matrix     string
	Formats    []string
	Partitions []int
	Backend    string
	Threads    int
	Kernel     string
}

// Key is the deterministic placement key: every coordinator maps the
// same query to the same owner.
func (q SweepQuery) Key() string {
	var sb strings.Builder
	sb.WriteString(q.Matrix)
	sb.WriteString("|b=")
	sb.WriteString(q.Backend)
	if q.Threads > 0 {
		sb.WriteString("|t=")
		sb.WriteString(strconv.Itoa(q.Threads))
	}
	sb.WriteString("|k=")
	sb.WriteString(q.Kernel)
	sb.WriteString("|p=")
	for i, p := range q.Partitions {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(p))
	}
	return sb.String()
}

// values renders the query parameters for the worker's GET /v1/sweep.
func (q SweepQuery) values(cacheOnly bool) url.Values {
	v := url.Values{}
	v.Set("matrix", q.Matrix)
	if len(q.Formats) > 0 {
		v.Set("formats", strings.Join(q.Formats, ","))
	}
	ps := make([]string, len(q.Partitions))
	for i, p := range q.Partitions {
		ps[i] = strconv.Itoa(p)
	}
	v.Set("partitions", strings.Join(ps, ","))
	if q.Backend != "" {
		v.Set("backend", q.Backend)
	}
	if q.Threads > 0 {
		v.Set("threads", strconv.Itoa(q.Threads))
	}
	if q.Kernel != "" {
		v.Set("kernel", q.Kernel)
	}
	if cacheOnly {
		v.Set("cache", "only")
	}
	return v
}

// fetch issues one sweep request to one worker and decodes the columnar
// response. cacheOnly asks the worker's LRU without permitting compute;
// a miss comes back as errPeerMiss. The returned bool reports whether
// the worker answered from its cache.
func (c *Coordinator) fetch(ctx context.Context, w *worker, q SweepQuery, cacheOnly bool) ([]core.Result, bool, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", w.base+"/v1/sweep?"+q.values(cacheOnly).Encode(), nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", wire.ContentType)
	req.Header.Set(InternalHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound && cacheOnly {
		return nil, false, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("cluster: worker %s: %s: %s", w.name, resp.Status, strings.TrimSpace(string(body)))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if n, err := wire.Rows(blob); err != nil {
		return nil, false, fmt.Errorf("cluster: worker %s: %w", w.name, err)
	} else if want := len(q.Formats) * len(q.Partitions); len(q.Formats) > 0 && n != want {
		return nil, false, fmt.Errorf("cluster: worker %s: %d rows, want %d", w.name, n, want)
	}
	rows, err := wire.Decode(blob)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: worker %s: %w", w.name, err)
	}
	return rows, resp.Header.Get(headerCached) == "true", nil
}

// fetchGroup walks the group's ring replicas: the owner first, then
// each successor until one serves it. A ready worker with a closed
// breaker gets a full dispatch (its sweep LRU answers warm groups
// before computing — the peer cache tier's fast path); a ready worker
// whose breaker is open is consulted as a cache-only peer, never asked
// to compute. Workers failing their readiness probe are skipped
// outright. Every attempt past ring position 0 counts as a re-dispatch
// — whether the owner failed the attempt or was already known dead, the
// group moved off its owner.
func (c *Coordinator) fetchGroup(ctx context.Context, q SweepQuery) ([]core.Result, error) {
	reps := c.ring.Replicas(q.Key(), 0)
	var lastErr error
	for i, name := range reps {
		w := c.workers[name]
		if !w.ready.Load() {
			continue
		}
		if i > 0 {
			c.redispatched.Add(1)
		}

		allowed := w.br.Allow() == nil
		if ferr := ptDispatch.Hit(); ferr != nil {
			if allowed {
				w.br.Failure()
			}
			w.failures.Add(1)
			lastErr = fmt.Errorf("cluster: worker %s: %w", w.name, ferr)
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		rows, cached, err := c.fetch(rctx, w, q, !allowed)
		cancel()
		switch {
		case err == nil:
			if allowed {
				w.br.Success()
			} else {
				w.probeHits.Add(1)
			}
			w.dispatched.Add(1)
			c.groups.Add(1)
			if cached {
				c.peerHits.Add(1)
			} else {
				c.peerMisses.Add(1)
			}
			return rows, nil
		case errors.Is(err, errPeerMiss):
			// Breaker-open peer without the entry: not a health signal.
			lastErr = err
		case ctx.Err() != nil:
			if allowed {
				w.br.Cancel()
			}
			return nil, ctx.Err()
		default:
			if allowed {
				w.br.Failure()
			}
			w.failures.Add(1)
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no worker available for %s", q.Key())
	}
	return nil, lastErr
}

// Executor returns a core.GroupExecutor that dispatches each group to
// its ring owner (with replica re-dispatch) and falls back to local —
// the executor the coordinator's sweep paths hand to
// core.SweepStreamExecWith. backendName/threads are echoed into every
// worker query so the worker resolves the exact backend the client
// asked for; local is the engine-side fallback (required).
func (c *Coordinator) Executor(backendName string, threads int, local core.GroupExecutor) core.GroupExecutor {
	return &Executor{c: c, backend: backendName, threads: threads, local: local}
}

// Executor fans sweep groups over the fleet. One value serves one
// request (it captures the request's backend selection); the shared
// state all lives in the Coordinator.
type Executor struct {
	c       *Coordinator
	backend string
	threads int
	local   core.GroupExecutor
}

// Parallelizable is always true: concurrency is bounded by the engine's
// worker pool, and measurement contention is the owning worker's
// concern, not the dispatching coordinator's.
func (x *Executor) Parallelizable() bool { return true }

// ExecuteGroup serves one (workload, kernel, p) group from the fleet,
// or locally when every replica is unavailable. Results are exactly
// what the engine would have produced: the analytic model is
// deterministic and the columnar codec is exact, so remote and local
// groups are interchangeable byte-for-byte.
func (x *Executor) ExecuteGroup(ctx context.Context, w workloads.Workload, sc scenario.Spec, p int, kinds []formats.Kind) ([]core.Result, error) {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	q := SweepQuery{
		Matrix:     w.ID,
		Formats:    names,
		Partitions: []int{p},
		Backend:    x.backend,
		Threads:    x.threads,
		Kernel:     sc.String(),
	}
	rows, err := x.c.fetchGroup(ctx, q)
	if err == nil {
		return rows, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if x.local == nil {
		return nil, err
	}
	x.c.localFallback.Add(1)
	return x.local.ExecuteGroup(ctx, w, sc, p, kinds)
}

// WorkerStats is one fleet member's line in /v1/stats.
type WorkerStats struct {
	Name       string                     `json:"name"`
	Ready      bool                       `json:"ready"`
	Breaker    resilience.BreakerSnapshot `json:"breaker"`
	Dispatched uint64                     `json:"dispatched"`
	Failures   uint64                     `json:"failures"`
	ProbeHits  uint64                     `json:"cache_probe_hits"`
}

// Stats is the coordinator's /v1/stats section.
type Stats struct {
	Workers       []WorkerStats `json:"workers"`
	Groups        uint64        `json:"groups_dispatched"`
	Redispatched  uint64        `json:"redispatched"`
	PeerHits      uint64        `json:"peer_cache_hits"`
	PeerMisses    uint64        `json:"peer_cache_misses"`
	LocalFallback uint64        `json:"local_fallbacks"`
}

// Stats snapshots the dispatch counters and per-worker health.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Groups:        c.groups.Load(),
		Redispatched:  c.redispatched.Load(),
		PeerHits:      c.peerHits.Load(),
		PeerMisses:    c.peerMisses.Load(),
		LocalFallback: c.localFallback.Load(),
	}
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		st.Workers = append(st.Workers, WorkerStats{
			Name:       w.name,
			Ready:      w.ready.Load(),
			Breaker:    w.br.Snapshot(),
			Dispatched: w.dispatched.Load(),
			Failures:   w.failures.Load(),
			ProbeHits:  w.probeHits.Load(),
		})
	}
	return st
}

// ParseWorkersFile parses a static fleet config: one worker address per
// line, blank lines and #-comments ignored.
func ParseWorkersFile(data []byte) []string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}
