package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("m-%08x|k=spmv|p=%d", i*2654435761, 8<<(i%5))
	}
	return keys
}

// Same seed and fleet must place every key identically in a fresh ring —
// the property that lets a restarted (or standby) coordinator agree
// with its predecessor without any shared state.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	workers := []string{"a:9001", "b:9002", "c:9003", "d:9004"}
	r1, err := NewRing(workers, 0, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed construction order: placement must not depend on it.
	rev := []string{"d:9004", "c:9003", "b:9002", "a:9001"}
	r2, err := NewRing(rev, 0, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := NewRing(workers, 0, DefaultSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	diffSeed := 0
	for _, k := range testKeys(10000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("placement differs across rebuilds for %q: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
		if r1.Owner(k) != r3.Owner(k) {
			diffSeed++
		}
	}
	// A different seed is a different ring: most keys should move.
	if diffSeed < 5000 {
		t.Fatalf("seed change moved only %d/10000 keys — seed is not part of placement", diffSeed)
	}
}

// Adding a worker may move keys only *to* the new worker, and removing
// one may move only the keys it owned — and the moved fraction must be
// near 1/n, not a full reshuffle.
func TestRingMinimalMovement(t *testing.T) {
	workers := []string{"a:9001", "b:9002", "c:9003", "d:9004"}
	r, err := NewRing(workers, 0, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(10000)

	grown, err := r.Add("e:9005")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		before, after := r.Owner(k), grown.Owner(k)
		if before != after {
			moved++
			if after != "e:9005" {
				t.Fatalf("add moved %q from %s to %s — only moves to the new worker are allowed", k, before, after)
			}
		}
	}
	// Ideal share is 1/5 = 2000 keys; allow 2x for vnode variance.
	if moved == 0 || moved > 2*len(keys)/5 {
		t.Fatalf("add moved %d/%d keys (want (0, %d])", moved, len(keys), 2*len(keys)/5)
	}

	shrunk, err := r.Remove("b:9002")
	if err != nil {
		t.Fatal(err)
	}
	moved = 0
	for _, k := range keys {
		before, after := r.Owner(k), shrunk.Owner(k)
		if before != after {
			moved++
			if before != "b:9002" {
				t.Fatalf("remove moved %q owned by %s — only the removed worker's keys may move", k, before)
			}
		}
	}
	if moved == 0 || moved > 2*len(keys)/4 {
		t.Fatalf("remove moved %d/%d keys (want (0, %d])", moved, len(keys), 2*len(keys)/4)
	}
}

// Replicas is the re-dispatch order: it starts at the owner, walks the
// ring clockwise, never repeats a worker, and — critically for
// fail-over — dropping the owner from the fleet promotes exactly the
// second replica to owner.
func TestRingReplicaOrdering(t *testing.T) {
	workers := []string{"a:9001", "b:9002", "c:9003", "d:9004"}
	r, err := NewRing(workers, 0, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		reps := r.Replicas(k, 0)
		if len(reps) != len(workers) {
			t.Fatalf("Replicas(%q, 0) = %d workers, want %d", k, len(reps), len(workers))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("Replicas(%q)[0] = %s, owner is %s", k, reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, w := range reps {
			if seen[w] {
				t.Fatalf("Replicas(%q) repeats %s", k, w)
			}
			seen[w] = true
		}
		if got := r.Replicas(k, 2); len(got) != 2 || got[0] != reps[0] || got[1] != reps[1] {
			t.Fatalf("Replicas(%q, 2) = %v, want prefix of %v", k, got, reps)
		}
		// The fail-over contract: with the owner gone, ownership falls to
		// the next replica.
		without, err := r.Remove(reps[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := without.Owner(k); got != reps[1] {
			t.Fatalf("owner of %q after removing %s: got %s, want next replica %s", k, reps[0], got, reps[1])
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0, DefaultSeed); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
	r, err := NewRing([]string{"a:1"}, 0, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("a:1"); err == nil {
		t.Fatal("removing the last worker succeeded")
	}
}
