// Package cluster implements the distributed sweep fabric: a
// consistent-hash ring that maps sweep groups to workers, a per-worker
// client with health probing and breaker-gated dispatch, and a
// coordinator-side core.GroupExecutor that fans (workload, kernel, p)
// groups out over the workers' HTTP sweep API using the columnar wire
// format, falling back through ring replicas and finally to local
// compute so a clustered sweep always completes — byte-identical to a
// single-node sweep, because the merge ordering lives in
// core.SweepGroupsExecWith, not here.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per worker. 64 points per
// worker keeps the placement spread within a few percent of uniform for
// small clusters while the ring stays tiny (a few KiB).
const DefaultVNodes = 64

// DefaultSeed is the ring's hash seed. The seed is part of the placement
// function: every coordinator that should agree on ownership (e.g. a
// restarted process, or a standby) must use the same seed.
const DefaultSeed = 0x5eed_c0de_cafe_f00d

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters. The ring hashes
// with explicit FNV rather than hash/maphash so placement is stable
// across process restarts — maphash is deliberately per-process seeded.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv1a(seed uint64, parts ...string) uint64 {
	h := uint64(fnvOffset)
	// Fold the seed in byte by byte so distinct seeds produce unrelated
	// rings rather than a constant rotation.
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime
		}
		h ^= 0xff // field separator: ("ab","c") must differ from ("a","bc")
		h *= fnvPrime
	}
	return h
}

// ringPoint is one virtual node: a position on the hash circle owned by
// a worker.
type ringPoint struct {
	hash   uint64
	worker int // index into Ring.workers
}

// Ring is a consistent-hash ring over named workers. Placement is a
// pure function of (seed, worker names, vnodes): two rings built from
// the same inputs — in any order, in any process — agree on every key,
// and adding or removing a worker only moves the keys that worker
// gains or loses. The zero value is not usable; construct with New.
// Ring is immutable after construction; derive changed rings with
// Add/Remove.
type Ring struct {
	seed    uint64
	vnodes  int
	workers []string // sorted unique
	points  []ringPoint
}

// NewRing builds a ring over the given workers with vnodes virtual
// nodes per worker (DefaultVNodes if <= 0) under the given seed.
// Worker names are deduplicated and sorted; at least one is required.
func NewRing(workers []string, vnodes int, seed uint64) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(workers))
	var ws []string
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker name")
		}
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	sort.Strings(ws)
	r := &Ring{seed: seed, vnodes: vnodes, workers: ws}
	r.points = make([]ringPoint, 0, len(ws)*vnodes)
	for wi, w := range ws {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv1a(seed, w, strconv.Itoa(v)), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare) break by worker order so the
		// ring stays deterministic.
		return a.worker < b.worker
	})
	return r, nil
}

// Workers returns the ring's worker names in sorted order.
func (r *Ring) Workers() []string {
	out := make([]string, len(r.workers))
	copy(out, r.workers)
	return out
}

// Owner returns the worker owning key: the first virtual node at or
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.workers[r.points[r.at(key)].worker]
}

// Replicas returns up to n distinct workers in ring order starting at
// the key's owner — the re-dispatch sequence when the owner fails.
// n <= 0 returns all workers. The first element is always Owner(key).
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || n > len(r.workers) {
		n = len(r.workers)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.at(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, r.workers[p.worker])
		}
	}
	return out
}

// at returns the index of the first point at or clockwise from key's
// hash.
func (r *Ring) at(key string) int {
	h := fnv1a(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return i
}

// Add returns a new ring with w added (no-op copy if already present).
func (r *Ring) Add(w string) (*Ring, error) {
	return NewRing(append(r.Workers(), w), r.vnodes, r.seed)
}

// Remove returns a new ring with w removed. Removing the last worker is
// an error.
func (r *Ring) Remove(w string) (*Ring, error) {
	var ws []string
	for _, x := range r.workers {
		if x != w {
			ws = append(ws, x)
		}
	}
	return NewRing(ws, r.vnodes, r.seed)
}
