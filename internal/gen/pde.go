package gen

import (
	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// Stencil2D generates the coefficient matrix of a 5-point finite-difference
// discretization of a 2-D PDE on a rows×cols grid: a symmetric
// positive-definite pentadiagonal matrix. Structural and thermal problems
// (dwt_918, thermomech_dK) have this character, and it is the canonical
// "PDE on a square domain leads to a band matrix" example of §3.2.
func Stencil2D(rows, cols int, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0x57E2)
	n := rows * cols
	bld := matrix.NewBuilder(n, n)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := id(i, j)
			// Diagonal dominance keeps the matrix SPD so the CG example can
			// actually converge on these workloads.
			bld.Add(v, v, 4+0.1*r.Float64())
			if j+1 < cols {
				bld.AddSym(v, id(i, j+1), -1)
			}
			if i+1 < rows {
				bld.AddSym(v, id(i+1, j), -1)
			}
		}
	}
	return bld.Build()
}

// Stencil3D generates the 7-point stencil of a 3-D PDE discretization on an
// nx×ny×nz grid, the structure behind electromagnetics FEM matrices such as
// 2cubes_sphere. The z-neighbour couplings sit nx·ny off the diagonal,
// producing the multi-band profile characteristic of 3-D problems.
func Stencil3D(nx, ny, nz int, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0x57E3)
	n := nx * ny * nz
	bld := matrix.NewBuilder(n, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				bld.Add(v, v, 6+0.1*r.Float64())
				if x+1 < nx {
					bld.AddSym(v, id(x+1, y, z), -1)
				}
				if y+1 < ny {
					bld.AddSym(v, id(x, y+1, z), -1)
				}
				if z+1 < nz {
					bld.AddSym(v, id(x, y, z+1), -1)
				}
			}
		}
	}
	return bld.Build()
}

// Circuit generates a circuit-simulation matrix (Freescale2, hcircuit,
// rajat31 in Table 1): a dominant diagonal, short-range couplings from
// locally numbered subcircuits, and a handful of nearly dense rows/columns
// from global nets such as power rails and clocks.
func Circuit(n int, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0xC14C)
	bld := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bld.Add(i, i, r.ValueIn(1, 2))
		// Local couplings within a small neighbourhood.
		deg := 1 + r.Intn(3)
		for e := 0; e < deg; e++ {
			off := 1 + r.Intn(16)
			j := i + off
			if j < n {
				bld.AddSym(i, j, r.ValueIn(-1, 1))
			}
		}
	}
	// Global nets: a few rows and columns that touch ~1% of the circuit.
	nets := max(1, n/500)
	for g := 0; g < nets; g++ {
		net := r.Intn(n)
		touches := max(4, n/100)
		for t := 0; t < touches; t++ {
			j := r.Intn(n)
			if j != net {
				bld.AddSym(net, j, r.ValueIn(-0.5, 0.5))
			}
		}
	}
	return bld.Build()
}

// PrunedWeights generates a neural-network weight matrix after magnitude
// pruning: entries survive independently with probability keep, but with a
// mild per-row variation in survival rate as real pruning produces
// (rows map to output neurons whose sensitivity differs).
func PrunedWeights(rows, cols int, keep float64, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0x9E47)
	bld := matrix.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		// Row-wise keep rate varies ±30% around the target.
		rowKeep := keep * (0.7 + 0.6*r.Float64())
		if rowKeep > 1 {
			rowKeep = 1
		}
		for j := 0; j < cols; j++ {
			if r.Float64() < rowKeep {
				bld.Add(i, j, r.NormFloat64()*0.1)
			}
		}
	}
	return bld.Build()
}
