// Package gen produces the synthetic sparse workloads of §3: uniformly
// random matrices across the density range 1e-4 … 0.5, structured band and
// diagonal matrices, and structure-preserving surrogates for the
// SuiteSparse kinds in Table 1 (graphs via R-MAT and preferential
// attachment, PDE discretizations via 2-D/3-D stencils, road networks via
// perturbed meshes, circuit matrices via diagonal-plus-coupling patterns).
//
// All generators are deterministic in their seed.
package gen

import (
	"fmt"

	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// Random returns an n×n matrix where every entry is non-zero independently
// with probability density. It runs in O(nnz) using geometric skips, so
// extremely sparse large matrices are cheap. Denser instances (0.1–0.5)
// model pruned neural-network weights; sparser ones (1e-4–0.01) model
// unstructured scientific and graph matrices (§3.2).
func Random(n int, density float64, seed uint64) *matrix.CSR {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("gen: Random density %v out of [0,1]", density))
	}
	b := matrix.NewBuilder(n, n)
	if density == 0 || n == 0 {
		return b.Build()
	}
	r := xrand.NewStream(seed, 0x5261)
	total := uint64(n) * uint64(n)
	// Walk the flattened index space, skipping geometric gaps between
	// successive non-zeros.
	pos := uint64(r.Geometric(density))
	for pos < total {
		i, j := int(pos/uint64(n)), int(pos%uint64(n))
		b.Add(i, j, r.ValueIn(-1, 1))
		pos += 1 + uint64(r.Geometric(density))
	}
	return b.Build()
}

// Band returns an n×n band matrix of width k following the paper's
// definition: a[i][j] = 0 if |i-j| > k/2. Width 1 yields a pure diagonal
// matrix. Every admissible position inside the band is filled, giving the
// fully dense band that numerical PDE discretizations produce.
func Band(n, width int, seed uint64) *matrix.CSR {
	if width < 1 {
		panic(fmt.Sprintf("gen: Band width %d < 1", width))
	}
	half := width / 2
	r := xrand.NewStream(seed, 0xBA4D)
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		lo := max(0, i-half)
		hi := min(n-1, i+half)
		for j := lo; j <= hi; j++ {
			b.Add(i, j, r.ValueIn(-1, 1))
		}
	}
	return b.Build()
}

// Diagonal returns an n×n diagonal matrix (Band with width 1).
func Diagonal(n int, seed uint64) *matrix.CSR { return Band(n, 1, seed) }

// SparseBand returns an n×n band matrix where positions inside the band of
// the given width are non-zero with probability fill. It models the
// "scattered over multiple diagonals but not completely filling them" case
// §5.2 calls out as DIA's worst enemy.
func SparseBand(n, width int, fill float64, seed uint64) *matrix.CSR {
	if fill < 0 || fill > 1 {
		panic(fmt.Sprintf("gen: SparseBand fill %v out of [0,1]", fill))
	}
	half := width / 2
	r := xrand.NewStream(seed, 0x5BAD)
	b := matrix.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := max(0, i-half); j <= min(n-1, i+half); j++ {
			if r.Float64() < fill {
				b.Add(i, j, r.ValueIn(-1, 1))
			}
		}
	}
	return b.Build()
}
