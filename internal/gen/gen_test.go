package gen

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/matrix"
)

func TestRandomDensity(t *testing.T) {
	for _, d := range []float64{0.001, 0.01, 0.1, 0.5} {
		m := Random(200, d, 1)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		got := m.Density()
		if math.Abs(got-d) > 0.15*d+0.002 {
			t.Errorf("Random density %v produced %v", d, got)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 0.05, 7)
	b := Random(100, 0.05, 7)
	if !matrix.Equal(a, b, 0) {
		t.Fatal("Random not deterministic in seed")
	}
	c := Random(100, 0.05, 8)
	if matrix.Equal(a, c, 0) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestRandomEdgeCases(t *testing.T) {
	if m := Random(50, 0, 1); m.NNZ() != 0 {
		t.Fatal("density 0 produced non-zeros")
	}
	if m := Random(20, 1, 1); m.NNZ() != 400 {
		t.Fatalf("density 1 produced %d non-zeros, want 400", m.NNZ())
	}
	if m := Random(0, 0.5, 1); m.NNZ() != 0 {
		t.Fatal("n=0 produced non-zeros")
	}
}

func TestBandWidthContract(t *testing.T) {
	// Paper definition: a[i][j] = 0 if |i-j| > k/2.
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := Band(128, k, 3)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if bw := m.Bandwidth(); bw != k/2 {
			t.Errorf("Band width %d: bandwidth = %d, want %d", k, bw, k/2)
		}
		// Every admissible position is filled.
		wantNNZ := 0
		for i := 0; i < 128; i++ {
			lo, hi := max(0, i-k/2), min(127, i+k/2)
			wantNNZ += hi - lo + 1
		}
		if m.NNZ() != wantNNZ {
			t.Errorf("Band width %d: nnz = %d, want %d", k, m.NNZ(), wantNNZ)
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := Diagonal(64, 5)
	if m.NNZ() != 64 || m.Bandwidth() != 0 {
		t.Fatalf("Diagonal: nnz=%d bandwidth=%d", m.NNZ(), m.Bandwidth())
	}
}

func TestSparseBand(t *testing.T) {
	m := SparseBand(128, 16, 0.5, 9)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if bw := m.Bandwidth(); bw > 8 {
		t.Fatalf("SparseBand bandwidth %d exceeds 8", bw)
	}
	full := Band(128, 16, 9)
	if m.NNZ() >= full.NNZ() {
		t.Fatal("SparseBand with fill 0.5 as dense as full band")
	}
	if m.NNZ() == 0 {
		t.Fatal("SparseBand produced empty matrix")
	}
}

func TestRMATProperties(t *testing.T) {
	m := Graph500RMAT(8, 8, 11)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 256 {
		t.Fatalf("RMAT rows = %d, want 256", m.Rows)
	}
	// Duplicates collapse, so nnz <= edges; but should retain most edges.
	if m.NNZ() < 256*4 || m.NNZ() > 256*8 {
		t.Fatalf("RMAT nnz = %d outside sane range", m.NNZ())
	}
	// Skew: the max-degree vertex should far exceed the average degree.
	maxDeg := 0
	for i := 0; i < m.Rows; i++ {
		if d := m.RowNNZ(i); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if float64(maxDeg) < 3*avg {
		t.Fatalf("RMAT not skewed: max degree %d vs average %.1f", maxDeg, avg)
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	m := PreferentialAttachment(1000, 4, 13)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-degree (column) distribution must be heavy-tailed.
	tr := m.Transpose()
	maxIn := 0
	for i := 0; i < tr.Rows; i++ {
		if d := tr.RowNNZ(i); d > maxIn {
			maxIn = d
		}
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if float64(maxIn) < 5*avg {
		t.Fatalf("preferential attachment not skewed: max in-degree %d vs average %.1f", maxIn, avg)
	}
}

func TestRoadMeshDegree(t *testing.T) {
	m := RoadMesh(30, 30, 0.1, 17)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if avg < 2 || avg > 5 {
		t.Fatalf("road mesh average degree %.2f outside [2,5]", avg)
	}
}

func TestTriangulatedMeshDegree(t *testing.T) {
	m := TriangulatedMesh(30, 30, 19)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if avg < 4 || avg > 7 {
		t.Fatalf("triangulated mesh average degree %.2f outside [4,7]", avg)
	}
}

func TestStencil2DStructure(t *testing.T) {
	m := Stencil2D(10, 10, 23)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pentadiagonal: bandwidth equals the grid column count.
	if bw := m.Bandwidth(); bw != 10 {
		t.Fatalf("stencil2d bandwidth = %d, want 10", bw)
	}
	// Symmetric.
	if !matrix.Equal(m, m.Transpose(), 1e-12) {
		t.Fatal("stencil2d not symmetric")
	}
	// Diagonally dominant (SPD-friendly).
	for i := 0; i < m.Rows; i++ {
		diag, off := 0.0, 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == i {
				diag = m.Val[k]
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag < off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestStencil3DStructure(t *testing.T) {
	m := Stencil3D(5, 5, 5, 29)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 125 {
		t.Fatalf("stencil3d rows = %d, want 125", m.Rows)
	}
	if bw := m.Bandwidth(); bw != 25 {
		t.Fatalf("stencil3d bandwidth = %d, want 25 (nx*ny)", bw)
	}
	if !matrix.Equal(m, m.Transpose(), 1e-12) {
		t.Fatal("stencil3d not symmetric")
	}
}

func TestCircuitStructure(t *testing.T) {
	m := Circuit(1000, 31)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full diagonal.
	for i := 0; i < m.Rows; i++ {
		if m.At(i, i) == 0 {
			t.Fatalf("circuit missing diagonal at %d", i)
		}
	}
	// Sparse overall but with at least one high-degree global net.
	if d := m.Density(); d > 0.02 {
		t.Fatalf("circuit density %.4f too high", d)
	}
	maxDeg := 0
	for i := 0; i < m.Rows; i++ {
		if d := m.RowNNZ(i); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Fatalf("circuit max degree %d; expected a global net", maxDeg)
	}
}

func TestPrunedWeightsDensity(t *testing.T) {
	m := PrunedWeights(100, 100, 0.3, 37)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := m.Density(); math.Abs(d-0.3) > 0.08 {
		t.Fatalf("pruned weights density %.3f, want ~0.3", d)
	}
}

func TestBandWidthExceedingMatrix(t *testing.T) {
	// Width far beyond 2n degenerates to a fully dense matrix without
	// panicking.
	m := Band(8, 64, 1)
	if m.NNZ() != 64 {
		t.Fatalf("oversized band nnz = %d, want 64 (dense)", m.NNZ())
	}
}

func TestBandInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 accepted")
		}
	}()
	Band(8, 0, 1)
}

func TestRMATInvalidProbabilitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("a+b+c >= 1 accepted")
		}
	}()
	RMAT(4, 2, 0.5, 0.3, 0.3, 1)
}

func TestSparseBandInvalidFillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fill > 1 accepted")
		}
	}()
	SparseBand(8, 4, 1.5, 1)
}

func TestGeneratorsDeterministicProperty(t *testing.T) {
	check := func(seed uint64) bool {
		a := Circuit(200, seed)
		b := Circuit(200, seed)
		return matrix.Equal(a, b, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
