package gen

import (
	"fmt"

	"copernicus/internal/matrix"
	"copernicus/internal/xrand"
)

// RMAT generates the adjacency matrix of a 2^scale-vertex graph with
// approximately edgeFactor·2^scale edges using the recursive-matrix
// (R-MAT / Kronecker) model of Chakrabarti et al., the generator behind the
// Graph500 kron_g500 matrices in Table 1. The probabilities (a, b, c, d)
// control skew; Graph500 uses (0.57, 0.19, 0.19, 0.05).
//
// The result is a directed adjacency matrix with unit-magnitude random
// weights; duplicate edges collapse (their weights sum), mirroring the
// "multigraph folded into a matrix" character of kron_g500.
func RMAT(scale, edgeFactor int, a, b, c float64, seed uint64) *matrix.CSR {
	if a+b+c >= 1 {
		panic(fmt.Sprintf("gen: RMAT probabilities a+b+c = %v >= 1", a+b+c))
	}
	n := 1 << scale
	r := xrand.NewStream(seed, 0x4A17)
	bld := matrix.NewBuilder(n, n)
	edges := edgeFactor * n
	for e := 0; e < edges; e++ {
		row, col := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			u := r.Float64()
			switch {
			case u < a: // top-left
			case u < a+b: // top-right
				col |= 1 << bit
			case u < a+b+c: // bottom-left
				row |= 1 << bit
			default: // bottom-right
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		bld.Add(row, col, r.ValueIn(0.1, 1))
	}
	return bld.Build()
}

// Graph500RMAT generates an R-MAT graph with the Graph500 reference
// parameters.
func Graph500RMAT(scale, edgeFactor int, seed uint64) *matrix.CSR {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// PreferentialAttachment generates a directed scale-free graph of n
// vertices in which each new vertex links to outDegree earlier vertices
// chosen proportionally to their current in-degree (Barabási–Albert with
// directed edges). Web crawls, social networks, and co-purchase graphs
// (web-Google, soc-LiveJournal1, amazon0601, flickr, wiki-Talk, wikipedia
// in Table 1) all exhibit this structure: a heavy-tailed in-degree
// distribution with a few extremely dense columns.
func PreferentialAttachment(n, outDegree int, seed uint64) *matrix.CSR {
	if outDegree < 1 {
		panic(fmt.Sprintf("gen: PreferentialAttachment outDegree %d < 1", outDegree))
	}
	r := xrand.NewStream(seed, 0x9A9A)
	bld := matrix.NewBuilder(n, n)
	// targets holds one entry per edge endpoint, so sampling a uniform
	// element implements degree-proportional selection.
	targets := make([]int, 0, n*outDegree)
	for v := 0; v < n; v++ {
		deg := min(outDegree, max(1, v)) // early vertices have few candidates
		for e := 0; e < deg; e++ {
			var t int
			if len(targets) == 0 || r.Float64() < 0.2 {
				// Uniform escape hatch keeps the graph connected-ish and
				// avoids a degenerate star.
				t = r.Intn(max(1, v+1))
			} else {
				t = targets[r.Intn(len(targets))]
			}
			if t == v {
				t = (t + 1) % n
			}
			bld.Add(v, t, r.ValueIn(0.1, 1))
			targets = append(targets, t, v)
		}
	}
	return bld.Build()
}

// RoadMesh generates a road-network-like graph: vertices form a 2-D grid
// (rows·cols vertices) connected to lattice neighbours, with a fraction of
// edges deleted and a few long-range shortcuts added. Road networks
// (roadNet-TX, road_central, europe_osm) are nearly planar with degree ≈
// 2–3 and strong index locality, which this reproduces after row-major
// vertex numbering.
func RoadMesh(rows, cols int, dropFrac float64, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0x60AD)
	n := rows * cols
	bld := matrix.NewBuilder(n, n)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := id(i, j)
			if j+1 < cols && r.Float64() >= dropFrac {
				bld.AddSym(v, id(i, j+1), 1)
			}
			if i+1 < rows && r.Float64() >= dropFrac {
				bld.AddSym(v, id(i+1, j), 1)
			}
		}
	}
	// Sparse long-range shortcuts (bridges, highways).
	for s := 0; s < n/200+1; s++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			bld.AddSym(u, v, 1)
		}
	}
	return bld.Build()
}

// TriangulatedMesh generates an adjacency matrix resembling a 2-D
// triangulation (the hugebubbles family): a grid where each cell also gets
// one diagonal, yielding average degree ≈ 6 with planar locality.
func TriangulatedMesh(rows, cols int, seed uint64) *matrix.CSR {
	r := xrand.NewStream(seed, 0x7419)
	n := rows * cols
	bld := matrix.NewBuilder(n, n)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := id(i, j)
			if j+1 < cols {
				bld.AddSym(v, id(i, j+1), 1)
			}
			if i+1 < rows {
				bld.AddSym(v, id(i+1, j), 1)
			}
			if i+1 < rows && j+1 < cols {
				// Alternate diagonal orientation pseudo-randomly, as a real
				// triangulator would.
				if r.Float64() < 0.5 {
					bld.AddSym(v, id(i+1, j+1), 1)
				} else {
					bld.AddSym(id(i, j+1), id(i+1, j), 1)
				}
			}
		}
	}
	return bld.Build()
}

// BipartiteRandom generates a sparse rectangular-interaction pattern folded
// into a square matrix: rows 0..nA-1 interact with columns nA..n-1 with the
// given average degree, plus a weak diagonal. It models biochemical
// reaction networks (N_reactome) and linear-programming constraint
// matrices (rail582).
func BipartiteRandom(n, nA, avgDegree int, seed uint64) *matrix.CSR {
	if nA <= 0 || nA >= n {
		panic(fmt.Sprintf("gen: BipartiteRandom nA=%d out of (0,%d)", nA, n))
	}
	r := xrand.NewStream(seed, 0xB1BA)
	bld := matrix.NewBuilder(n, n)
	nB := n - nA
	for i := 0; i < nA; i++ {
		deg := 1 + r.Intn(2*avgDegree)
		for e := 0; e < deg; e++ {
			bld.Add(i, nA+r.Intn(nB), r.ValueIn(0.1, 1))
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < 0.5 {
			bld.Add(i, i, r.ValueIn(0.5, 1))
		}
	}
	return bld.Build()
}
