package workloads

import (
	"testing"
)

func TestSuiteSparseComplete(t *testing.T) {
	ws := SuiteSparse(Config{})
	if len(ws) != 20 {
		t.Fatalf("SuiteSparse surrogates = %d, want the 20 matrices of Table 1", len(ws))
	}
	wantIDs := []string{"2C", "FR", "RE", "AM", "DW", "EO", "FL", "HC", "HU", "KR",
		"RL", "RJ", "RO", "RC", "LJ", "TH", "WE", "WG", "WT", "WI"}
	for i, id := range wantIDs {
		if ws[i].ID != id {
			t.Errorf("workload %d ID = %s, want %s (Table 1 order)", i, ws[i].ID, id)
		}
	}
}

func TestSuiteSparseValidity(t *testing.T) {
	for _, w := range SuiteSparse(Config{}) {
		if err := w.M.Validate(); err != nil {
			t.Errorf("%s: %v", w.ID, err)
		}
		if w.M.NNZ() == 0 {
			t.Errorf("%s: empty surrogate", w.ID)
		}
		if w.PaperDim <= 0 || w.PaperNNZ <= 0 {
			t.Errorf("%s: missing Table 1 provenance", w.ID)
		}
		if w.M.Rows > 1100 {
			t.Errorf("%s: dimension %d exceeds the default scale", w.ID, w.M.Rows)
		}
	}
}

func TestSuiteSparseAllSparse(t *testing.T) {
	for _, w := range SuiteSparse(Config{}) {
		if d := w.Density(); d > 0.12 {
			t.Errorf("%s: density %.4f too high for a SuiteSparse surrogate", w.ID, d)
		}
	}
}

func TestSuiteSparseDeterministic(t *testing.T) {
	a := SuiteSparse(Config{})
	b := SuiteSparse(Config{})
	for i := range a {
		if a[i].M.NNZ() != b[i].M.NNZ() {
			t.Fatalf("%s: non-deterministic surrogate", a[i].ID)
		}
	}
}

func TestSuiteSparseKindDiversity(t *testing.T) {
	// The suite must span the three application domains of §3.1.
	kinds := map[string]bool{}
	for _, w := range SuiteSparse(Config{}) {
		kinds[w.Kind] = true
	}
	if len(kinds) < 6 {
		t.Fatalf("only %d distinct kinds; Table 1 spans 10+", len(kinds))
	}
}

func TestRandomSuiteDensities(t *testing.T) {
	ws := RandomSuite(Config{})
	if len(ws) != len(RandomDensities) {
		t.Fatalf("random suite size %d", len(ws))
	}
	for i, w := range ws {
		got := w.Density()
		want := RandomDensities[i]
		if got < want/2 || got > want*2 {
			t.Errorf("%s: density %.5f, want ~%g", w.ID, got, want)
		}
	}
}

func TestBandSuiteWidths(t *testing.T) {
	ws := BandSuite(Config{})
	if len(ws) != len(BandWidths) {
		t.Fatalf("band suite size %d", len(ws))
	}
	for i, w := range ws {
		if bw := w.M.Bandwidth(); bw != BandWidths[i]/2 {
			t.Errorf("%s: bandwidth %d, want %d", w.ID, bw, BandWidths[i]/2)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	small := SuiteSparse(Config{Scale: 256})
	for _, w := range small {
		if w.ID == "DW" || w.ID == "RL" { // fixed-size originals
			continue
		}
		if w.M.Rows > 300 {
			t.Errorf("%s: scale 256 produced %d rows", w.ID, w.M.Rows)
		}
	}
	band := BandSuite(Config{BandDim: 128})
	for _, w := range band {
		if w.M.Rows != 128 {
			t.Errorf("%s: rows %d, want 128", w.ID, w.M.Rows)
		}
	}
}

// TestSurrogateDegreeFidelity: each surrogate's average nnz/row must be
// within a factor of 5 of its SuiteSparse original's — the structural
// knob the substitution promises to preserve.
func TestSurrogateDegreeFidelity(t *testing.T) {
	for _, w := range SuiteSparse(Config{}) {
		paperDeg := w.PaperNNZ / w.PaperDim
		gotDeg := float64(w.M.NNZ()) / float64(w.M.Rows)
		ratio := gotDeg / paperDeg
		if ratio < 1.0/5 || ratio > 5 {
			t.Errorf("%s (%s): surrogate nnz/row %.2f vs paper %.2f (ratio %.2f)",
				w.ID, w.Name, gotDeg, paperDeg, ratio)
		}
	}
}

func TestPartitionSizes(t *testing.T) {
	if len(PartitionSizes) != 3 || PartitionSizes[0] != 8 || PartitionSizes[2] != 32 {
		t.Fatalf("PartitionSizes = %v, want [8 16 32]", PartitionSizes)
	}
}
