// Package workloads provides the Copernicus evaluation suites of §3:
// laptop-scale surrogates for the twenty SuiteSparse matrices of Table 1,
// the random-density suite (1e-4 … 0.5), and the band-width suite (1 …
// 64).
//
// SuiteSparse substitution: the paper's originals reach 50.9 M rows and
// 182 M non-zeros, far beyond what a characterization run needs here,
// because every Copernicus metric is a function of per-partition
// statistics (Fig. 3). Each surrogate therefore reproduces its original's
// *kind* — the generator family that produced the real matrix's structure
// (Kronecker multigraph, preferential-attachment web crawl, FEM stencil,
// road mesh, circuit netlist, …) — and approximates its nnz/row, at a
// dimension scaled to Config.Scale. The paper-reported dimension and nnz
// are retained for documentation.
package workloads

import (
	"fmt"

	"copernicus/internal/gen"
	"copernicus/internal/matrix"
)

// Workload is one evaluation matrix with its provenance.
type Workload struct {
	ID   string // the two-letter key the paper's figures use
	Name string // the SuiteSparse (or synthetic) name
	Kind string // the Table 1 "Kind" column

	// PaperDim and PaperNNZ are the Table 1 figures in millions, kept
	// for the EXPERIMENTS.md paper-vs-measured record. Zero for
	// synthetic suites.
	PaperDim float64
	PaperNNZ float64

	// Param is the nominal sweep parameter for synthetic suites: the
	// target density (random suite) or band width (band suite). Zero
	// for SuiteSparse surrogates.
	Param float64

	M *matrix.CSR
}

// Density returns the surrogate's density.
func (w Workload) Density() float64 { return w.M.Density() }

// Config scales the suites.
type Config struct {
	// Scale caps the surrogate dimension (graph generators use the
	// nearest power of two). The default 1024 keeps a full
	// characterization sweep under a minute.
	Scale int
	// RandomDim and BandDim size the synthetic suites (the paper uses
	// 8000; the default scales to 1024).
	RandomDim int
	BandDim   int
	Seed      uint64
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: 1024, RandomDim: 1024, BandDim: 1024, Seed: 0xC0FE}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.RandomDim <= 0 {
		c.RandomDim = d.RandomDim
	}
	if c.BandDim <= 0 {
		c.BandDim = d.BandDim
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// log2floor returns the largest s with 2^s <= n.
func log2floor(n int) int {
	s := 0
	for 1<<(s+1) <= n {
		s++
	}
	return s
}

// SuiteSparse returns surrogates for the twenty Table 1 matrices, in the
// table's order.
func SuiteSparse(c Config) []Workload {
	c = c.withDefaults()
	n := c.Scale
	scale := log2floor(n) // for the R-MAT generator
	grid := isqrt(n)      // for mesh generators
	s := c.Seed
	return []Workload{
		{"2C", "2cubes_sphere", "Electromagnetics Problem", 0.101, 1.647,
			0, gen.Stencil3D(icbrt(n), icbrt(n), icbrt(n), s+1)},
		{"FR", "Freescale2", "Circuit Sim. Matrix", 2.9, 14.3,
			0, gen.Circuit(n, s+2)},
		{"RE", "N_reactome", "Biochemical Network", 0.016, 0.043,
			0, gen.BipartiteRandom(n/2, n/4, 3, s+3)},
		{"AM", "amazon0601", "Directed Graph", 0.4, 3.3,
			0, gen.PreferentialAttachment(n, 8, s+4)},
		{"DW", "dwt_918", "Structural Problem", 0.000918, 0.0073,
			0, gen.Stencil2D(30, 30, s+5)}, // the original is genuinely 918 rows
		{"EO", "europe_osm", "Undirected Graph", 50.9, 108,
			0, gen.RoadMesh(grid, grid, 0.15, s+6)},
		{"FL", "flickr", "Directed Graph", 0.82, 9.8,
			0, gen.PreferentialAttachment(n, 12, s+7)},
		{"HC", "hcircuit", "Circuit Sim. Problem", 0.1, 0.51,
			0, gen.Circuit(n, s+8)},
		{"HU", "hugebubbles", "Undirected Graph", 18.3, 54.9,
			0, gen.TriangulatedMesh(grid, grid, s+9)},
		{"KR", "kron_g500-logn21", "Undirected Multigraph", 2, 182,
			0, gen.Graph500RMAT(scale, 32, s+10)},
		{"RL", "rail582", "Linear Prog. Problem", 0.056, 0.4,
			0, gen.BipartiteRandom(582, 291, 7, s+11)},
		{"RJ", "rajat31", "Circuit Sim. Problem", 4.6, 20.3,
			0, gen.Circuit(n, s+12)},
		{"RO", "roadNet-TX", "Undirected Graph", 1.3, 3.8,
			0, gen.RoadMesh(grid, grid, 0.05, s+13)},
		{"RC", "road_central", "Undirected Graph", 14, 33.8,
			0, gen.RoadMesh(grid+4, grid-4, 0.2, s+14)},
		{"LJ", "soc-LiveJournal1", "Directed Graph", 4.8, 68.9,
			0, gen.PreferentialAttachment(n, 14, s+15)},
		{"TH", "thermomech_dK", "Thermal Problem", 0.2, 2.8,
			0, gen.Stencil2D(grid, grid, s+16)},
		{"WE", "wb-edu", "Directed Graph", 9.8, 57.1,
			0, gen.PreferentialAttachment(n, 6, s+17)},
		{"WG", "web-Google", "Directed Graph", 0.91, 5.1,
			0, gen.PreferentialAttachment(n, 6, s+18)},
		{"WT", "wiki-Talk", "Directed Graph", 2.3, 5,
			0, gen.PreferentialAttachment(n, 2, s+19)},
		{"WI", "wikipedia", "Directed Graph", 3.5, 45,
			0, gen.PreferentialAttachment(n, 13, s+20)},
	}
}

// RandomDensities is the density sweep of Figs. 5 and 10.
var RandomDensities = []float64{0.0001, 0.001, 0.01, 0.1, 0.5}

// RandomSuite returns the random synthetic matrices across the density
// range of §3.2.
func RandomSuite(c Config) []Workload {
	c = c.withDefaults()
	var ws []Workload
	for i, d := range RandomDensities {
		ws = append(ws, Workload{
			ID:    fmt.Sprintf("R%g", d),
			Name:  fmt.Sprintf("random d=%g", d),
			Kind:  "Random Synthetic",
			Param: d,
			M:     gen.Random(c.RandomDim, d, c.Seed+uint64(100+i)),
		})
	}
	return ws
}

// BandWidths is the band-width sweep of Figs. 6 and 11.
var BandWidths = []int{1, 2, 4, 8, 16, 32, 64}

// BandSuite returns the structured band matrices of §3.2 (width 1 is the
// diagonal matrix).
func BandSuite(c Config) []Workload {
	c = c.withDefaults()
	var ws []Workload
	for i, w := range BandWidths {
		ws = append(ws, Workload{
			ID:    fmt.Sprintf("B%d", w),
			Name:  fmt.Sprintf("band w=%d", w),
			Kind:  "Band Synthetic",
			Param: float64(w),
			M:     gen.Band(c.BandDim, w, c.Seed+uint64(200+i)),
		})
	}
	return ws
}

// PartitionSizes is the hyperparameter sweep of §4.2.
var PartitionSizes = []int{8, 16, 32}

func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func icbrt(n int) int {
	r := 1
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r
}
