package faults

import (
	"errors"
	"sync"
	"testing"
	"time"

	"copernicus/internal/resilience"
)

func TestDisarmedPointIsNoop(t *testing.T) {
	p := Point("test.noop")
	t.Cleanup(p.Disarm)
	for i := 0; i < 100; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed Hit: %v", err)
		}
	}
	if p.Armed() || p.Hits() != 0 {
		t.Fatal("disarmed point reports armed state")
	}
}

func TestPointIdentity(t *testing.T) {
	if Point("test.identity") != Point("test.identity") {
		t.Fatal("Point must return the same instance per name")
	}
	if Point("test.identity").Name() != "test.identity" {
		t.Fatal("Name mismatch")
	}
}

func TestErrorInjectionSchedule(t *testing.T) {
	p := Point("test.schedule")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindError, After: 3, Times: 2})
	var fired []int
	for i := 1; i <= 6; i++ {
		if err := p.Hit(); err != nil {
			fired = append(fired, i)
			if !errors.Is(err, Injected) {
				t.Fatalf("hit %d: error does not wrap Injected: %v", i, err)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fired)
	}
	if p.Hits() != 6 {
		t.Fatalf("Hits = %d, want 6", p.Hits())
	}
}

func TestTransientInjection(t *testing.T) {
	p := Point("test.transient")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindError, Transient: true})
	err := p.Hit()
	if !resilience.IsTransient(err) {
		t.Fatalf("transient injection not classified transient: %v", err)
	}
	if !errors.Is(err, Injected) {
		t.Fatalf("transient injection lost the Injected sentinel: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	p := Point("test.custom")
	t.Cleanup(p.Disarm)
	mine := errors.New("my failure")
	p.Arm(Injection{Kind: KindError, Err: mine})
	err := p.Hit()
	if !errors.Is(err, mine) || !errors.Is(err, Injected) {
		t.Fatalf("custom error chain broken: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	p := Point("test.panic")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindPanic})
	defer func() {
		v := recover()
		ip, ok := v.(*Panic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *faults.Panic", v, v)
		}
		if ip.PointName != "test.panic" {
			t.Fatalf("panic names point %q", ip.PointName)
		}
	}()
	p.Hit()
	t.Fatal("Hit did not panic")
}

func TestDelayInjection(t *testing.T) {
	p := Point("test.delay")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("delay Hit returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delay too short: %v", elapsed)
	}
}

func TestConcurrentHitsFireExactly(t *testing.T) {
	p := Point("test.concurrent")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindError, After: 5, Times: 3})
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := p.Hit(); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 3 {
		t.Fatalf("fired %d times under concurrency, want exactly 3", fired)
	}
}

func TestRearmResetsCounter(t *testing.T) {
	p := Point("test.rearm")
	t.Cleanup(p.Disarm)
	p.Arm(Injection{Kind: KindError, After: 2})
	p.Hit()
	p.Arm(Injection{Kind: KindError, After: 2})
	if err := p.Hit(); err != nil {
		t.Fatal("re-arm did not reset the hit counter")
	}
	if err := p.Hit(); err == nil {
		t.Fatal("second hit after re-arm should fire")
	}
}

func TestParse(t *testing.T) {
	m, err := Parse("a.b:error:after=2,times=1,transient; c.d:delay:delay=50ms ;e.f:panic")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(m))
	}
	ab := m["a.b"]
	if ab.Kind != KindError || ab.After != 2 || ab.Times != 1 || !ab.Transient {
		t.Fatalf("a.b = %+v", ab)
	}
	if cd := m["c.d"]; cd.Kind != KindDelay || cd.Delay != 50*time.Millisecond {
		t.Fatalf("c.d = %+v", cd)
	}
	if ef := m["e.f"]; ef.Kind != KindPanic {
		t.Fatalf("e.f = %+v", ef)
	}
	if m, err := Parse("  ;; "); err != nil || len(m) != 0 {
		t.Fatalf("blank plan: %v %v", m, err)
	}
	for _, bad := range []string{
		"noseparator",
		"x:weird",
		"x:error:after=0",
		"x:error:times=-1",
		"x:delay:delay=oops",
		"x:error:bogus=1",
		"x:error:transient=false",
		":error",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestArmPlan(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := ArmPlan("test.armplan:error:after=1"); err != nil {
		t.Fatalf("ArmPlan: %v", err)
	}
	if err := Point("test.armplan").Hit(); err == nil {
		t.Fatal("armed point did not fire")
	}
	if err := ArmPlan("x:nope"); err == nil {
		t.Fatal("bad plan accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	Point("test.names.b")
	Point("test.names.a")
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "test.names.a" {
			ia = i
		}
		if n == "test.names.b" {
			ib = i
		}
	}
	if ia == -1 || ib == -1 || ia > ib {
		t.Fatalf("Names() = %v: missing or unsorted", names)
	}
}
