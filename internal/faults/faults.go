// Package faults is a deterministic fault-injection registry for chaos
// testing. Code under test declares named injection points:
//
//	var encodeFault = faults.Point("hlsim.encode.tile")
//
// and calls encodeFault.Hit() (or Hit's error return) at the site. A
// disarmed point is a single atomic pointer load returning nil — cheap
// enough to leave in production builds. Tests and chaos harnesses arm a
// point with an Injection describing what to do (return an error, panic,
// or sleep) and when (on the Nth hit, for M hits) — counting is atomic
// and exact, so a fault plan replays identically run over run.
//
// Plans can also come from the environment: COPERNICUS_FAULTS holds a
// `;`-separated list of specs like
//
//	hlsim.encode.tile:error:after=2,times=1,transient
//	backend.native.measure:delay:delay=50ms
//	jobs.run:panic
//
// parsed at init, so a chaos run can arm a live server without code
// changes. Injected errors wrap the Injected sentinel (and, when marked
// transient, satisfy resilience.IsTransient) so containment layers can
// tell injected faults from real ones.
package faults

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/resilience"
)

// Injected is the sentinel wrapped by every injected error, so tests can
// assert a failure came from the harness: errors.Is(err, faults.Injected).
var Injected = errors.New("injected fault")

// Kind is what an armed injection does when it fires.
type Kind string

const (
	// KindError makes Hit return an error wrapping Injected.
	KindError Kind = "error"
	// KindPanic makes Hit panic with a *Panic value.
	KindPanic Kind = "panic"
	// KindDelay makes Hit sleep for Injection.Delay, then return nil.
	KindDelay Kind = "delay"
)

// Panic is the value thrown by a KindPanic injection; tests recognize it
// to distinguish injected panics from real ones.
type Panic struct{ PointName string }

func (p *Panic) Error() string { return "injected panic at " + p.PointName }

// Injection describes what an armed point does and when.
type Injection struct {
	// Kind selects error, panic, or delay; empty means KindError.
	Kind Kind
	// After is the 1-based hit on which the injection starts firing;
	// values below 1 mean 1 (fire from the first hit).
	After int
	// Times bounds how many hits fire; 0 means every hit from After on.
	Times int
	// Delay is the sleep duration for KindDelay.
	Delay time.Duration
	// Transient marks injected errors with resilience.Transient, so
	// retry policies classify them retryable.
	Transient bool
	// Err overrides the injected error (still wrapped with Injected
	// context by Hit); nil uses a default message naming the point.
	Err error
}

// P is one named injection point. The zero state (disarmed) is a single
// atomic pointer load on Hit.
type P struct {
	name string
	arm  atomic.Pointer[armed]
}

type armed struct {
	inj  Injection
	hits atomic.Int64 // hits observed since arming
}

var (
	regMu    sync.Mutex
	registry = map[string]*P{}
)

// Point returns the injection point named name, creating it on first
// use. Calling Point twice with the same name returns the same *P, so
// production code and tests share the instance.
func Point(name string) *P {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &P{name: name}
	registry[name] = p
	return p
}

// Name returns the point's registered name.
func (p *P) Name() string { return p.name }

// Arm attaches inj to the point, resetting its hit counter. Subsequent
// Hits fire per the injection's schedule.
func (p *P) Arm(inj Injection) {
	if inj.Kind == "" {
		inj.Kind = KindError
	}
	if inj.After < 1 {
		inj.After = 1
	}
	p.arm.Store(&armed{inj: inj})
}

// Disarm returns the point to its no-op state.
func (p *P) Disarm() { p.arm.Store(nil) }

// Armed reports whether the point currently has an injection attached.
func (p *P) Armed() bool { return p.arm.Load() != nil }

// Hit is the injection site: nil when disarmed or outside the armed
// schedule; otherwise it injects. KindError returns an error wrapping
// Injected (transient-marked when configured), KindPanic panics with a
// *Panic, KindDelay sleeps then returns nil. Hit counting is atomic, so
// concurrent hits fire exactly the configured number of times.
func (p *P) Hit() error {
	a := p.arm.Load()
	if a == nil {
		return nil
	}
	n := a.hits.Add(1)
	after := int64(a.inj.After)
	if n < after {
		return nil
	}
	if a.inj.Times > 0 && n >= after+int64(a.inj.Times) {
		return nil
	}
	switch a.inj.Kind {
	case KindPanic:
		panic(&Panic{PointName: p.name})
	case KindDelay:
		time.Sleep(a.inj.Delay)
		return nil
	default:
		err := a.inj.Err
		if err == nil {
			err = fmt.Errorf("%w at %s (hit %d)", Injected, p.name, n)
		} else {
			err = fmt.Errorf("%w at %s: %w", Injected, p.name, err)
		}
		if a.inj.Transient {
			err = resilience.Transient(err)
		}
		return err
	}
}

// Hits returns how many times the point has been hit since it was last
// armed (0 when disarmed) — chaos assertions use it to confirm a fault
// plan actually exercised the site.
func (p *P) Hits() int64 {
	a := p.arm.Load()
	if a == nil {
		return 0
	}
	return a.hits.Load()
}

// DisarmAll resets every registered point — test cleanup.
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.arm.Store(nil)
	}
}

// Names returns the sorted names of all registered points (the fault
// catalog; DESIGN.md documents the stable ones).
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse reads a fault plan: `;`-separated specs, each
// `point:kind[:opt,...]` where kind is error|panic|delay and opts are
// after=N, times=N, delay=DUR, transient. Whitespace around specs is
// ignored; empty specs are skipped.
func Parse(plan string) (map[string]Injection, error) {
	out := map[string]Injection{}
	for _, spec := range strings.Split(plan, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("faults: spec %q: want point:kind[:opts]", spec)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("faults: spec %q: empty point name", spec)
		}
		inj := Injection{}
		switch Kind(strings.TrimSpace(parts[1])) {
		case KindError:
			inj.Kind = KindError
		case KindPanic:
			inj.Kind = KindPanic
		case KindDelay:
			inj.Kind = KindDelay
		default:
			return nil, fmt.Errorf("faults: spec %q: unknown kind %q", spec, parts[1])
		}
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], ",") {
				opt = strings.TrimSpace(opt)
				if opt == "" {
					continue
				}
				k, v, hasVal := strings.Cut(opt, "=")
				switch k {
				case "after":
					n, err := strconv.Atoi(v)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("faults: spec %q: bad after=%q", spec, v)
					}
					inj.After = n
				case "times":
					n, err := strconv.Atoi(v)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("faults: spec %q: bad times=%q", spec, v)
					}
					inj.Times = n
				case "delay":
					d, err := time.ParseDuration(v)
					if err != nil || d < 0 {
						return nil, fmt.Errorf("faults: spec %q: bad delay=%q", spec, v)
					}
					inj.Delay = d
				case "transient":
					if hasVal && v != "true" {
						return nil, fmt.Errorf("faults: spec %q: bad transient=%q", spec, v)
					}
					inj.Transient = true
				default:
					return nil, fmt.Errorf("faults: spec %q: unknown option %q", spec, k)
				}
			}
		}
		out[name] = inj
	}
	return out, nil
}

// ArmPlan parses and arms a fault plan (see Parse).
func ArmPlan(plan string) error {
	m, err := Parse(plan)
	if err != nil {
		return err
	}
	for name, inj := range m {
		Point(name).Arm(inj)
	}
	return nil
}

// EnvVar is the environment variable read at init for a fault plan.
const EnvVar = "COPERNICUS_FAULTS"

func init() {
	if plan := os.Getenv(EnvVar); plan != "" {
		if err := ArmPlan(plan); err != nil {
			fmt.Fprintf(os.Stderr, "faults: ignoring %s: %v\n", EnvVar, err)
		}
	}
}
