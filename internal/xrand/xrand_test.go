package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("adjacent streams produced identical first draw")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared sanity check over 16 buckets.
	r := New(99)
	const buckets, draws = 16, 160000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %.2f exceeds 37.7; distribution looks biased", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestValueInNeverZero(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.ValueIn(-1, 1); v == 0 {
			t.Fatal("ValueIn returned zero")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p = 0.1
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 9
	if math.Abs(mean-want) > 0.2 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricNonNegative(t *testing.T) {
	check := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			if r.Geometric(0.01) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(31)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
