// Package xrand provides small, deterministic pseudo-random number
// generators used by the workload generators.
//
// Every Copernicus experiment must be reproducible bit-for-bit across runs
// and platforms, so the generators here avoid math/rand's global state and
// version-dependent algorithms. The core generator is splitmix64 (Steele,
// Lea, Flood: "Fast Splittable Pseudorandom Number Generators", OOPSLA'14),
// which passes BigCrush, has a full 2^64 period, and — crucially for
// workload generation — supports cheap derivation of independent streams
// from a (seed, stream) pair.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. The zero value is
// a valid generator seeded with 0; use New to derive independent streams.
type Rand struct {
	state uint64
}

// New returns a generator for the given seed. Two generators with different
// seeds produce statistically independent sequences.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// NewStream derives an independent generator from a (seed, stream) pair.
// It is used to give every workload its own reproducible stream without
// coordinating seed assignment across packages.
func NewStream(seed, stream uint64) *Rand {
	// Mix the stream id through one splitmix64 round so that nearby stream
	// ids (0, 1, 2, ...) land far apart in the seed space.
	return New(seed ^ mix64(stream+0x9e3779b97f4a7c15))
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed float64 using the
// Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ValueIn returns a non-zero matrix value in [lo, hi). Workload generators
// use it so that generated non-zero entries are never accidentally zero
// (a zero stored explicitly would corrupt nnz accounting).
func (r *Rand) ValueIn(lo, hi float64) float64 {
	for {
		v := lo + (hi-lo)*r.Float64()
		if v != 0 {
			return v
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of failures before the first success). Used by the
// random-matrix generator to skip ahead between non-zeros in O(nnz) time
// instead of O(n^2) coin flips.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Inverse CDF: floor(ln(1-u) / ln(1-p)).
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}
