package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/xrand"
)

// randomCSR builds a random rows×cols matrix with approximately the given
// density, for use across the matrix tests.
func randomCSR(seed uint64, rows, cols int, density float64) *CSR {
	r := xrand.New(seed)
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				b.Add(i, j, r.ValueIn(-2, 2))
			}
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(0, 3, 1)
	b.Add(2, 1, -2.5)
	b.Add(3, 3, 4)
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(2, 1); got != -2.5 {
		t.Fatalf("At(2,1) = %v, want -2.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(1, 1, 2)
	b.Add(1, 1, 3)
	m := b.Build()
	if m.NNZ() != 1 || m.At(1, 1) != 5 {
		t.Fatalf("duplicate entries not summed: nnz=%d at=%v", m.NNZ(), m.At(1, 1))
	}
}

func TestBuilderDropsCancellingDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 7)
	b.Add(0, 1, -7)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("cancelling duplicates kept: nnz=%d", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropsExplicitZeros(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 0)
	if b.Len() != 0 {
		t.Fatal("explicit zero was recorded")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddSym(0, 2, 5)
	b.AddSym(1, 1, 3)
	m := b.Build()
	if m.At(0, 2) != 5 || m.At(2, 0) != 5 {
		t.Fatal("AddSym did not mirror off-diagonal entry")
	}
	if m.At(1, 1) != 3 || m.NNZ() != 3 {
		t.Fatalf("AddSym mishandled diagonal: nnz=%d", m.NNZ())
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		d := make([]float64, rows*cols)
		for i := range d {
			if r.Float64() < 0.4 {
				d[i] = r.ValueIn(-3, 3)
			}
		}
		m := FromDense(rows, cols, d)
		if err := m.Validate(); err != nil {
			return false
		}
		back := m.ToDense()
		for i := range d {
			if back[i] != d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecReference(t *testing.T) {
	// | 1 0 2 |   |1|   | 7 |
	// | 0 0 0 | · |2| = | 0 |
	// | 3 4 0 |   |3|   |11 |
	m := FromDense(3, 3, []float64{1, 0, 2, 0, 0, 0, 3, 4, 0})
	y := m.MulVec([]float64{1, 2, 3})
	want := []float64{7, 0, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	FromDense(2, 2, []float64{1, 0, 0, 1}).MulVec([]float64{1})
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed uint64) bool {
		m := randomCSR(seed, 9, 13, 0.3)
		tt := m.Transpose().Transpose()
		return Equal(m, tt, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeValues(t *testing.T) {
	m := randomCSR(7, 8, 8, 0.25)
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestBandwidth(t *testing.T) {
	m := FromDense(4, 4, []float64{
		1, 0, 0, 0,
		1, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	})
	if bw := m.Bandwidth(); bw != 1 {
		t.Fatalf("bandwidth = %d, want 1", bw)
	}
	diag := FromDense(3, 3, []float64{1, 0, 0, 0, 2, 0, 0, 0, 3})
	if bw := diag.Bandwidth(); bw != 0 {
		t.Fatalf("diagonal bandwidth = %d, want 0", bw)
	}
}

func TestDensity(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 0, 0, 1})
	if d := m.Density(); d != 0.5 {
		t.Fatalf("density = %v, want 0.5", d)
	}
}

func TestDiagVector(t *testing.T) {
	m := FromDense(3, 3, []float64{5, 0, 0, 0, 0, 1, 0, 0, 7})
	d := m.DiagVector()
	want := []float64{5, 0, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diag[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	// Rectangular: diagonal length is min(rows, cols).
	r := FromDense(2, 4, []float64{1, 0, 0, 0, 0, 2, 0, 0})
	if dd := r.DiagVector(); len(dd) != 2 || dd[1] != 2 {
		t.Fatalf("rectangular diag %v", dd)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := randomCSR(1, 6, 6, 0.4)
	cases := []struct {
		name    string
		corrupt func(*CSR)
	}{
		{"rowptr first", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"rowptr decreasing", func(m *CSR) { m.RowPtr[2] = m.RowPtr[1] - 1 }},
		{"col out of range", func(m *CSR) { m.Col[0] = m.Cols }},
		{"explicit zero", func(m *CSR) { m.Val[0] = 0 }},
		{"rowptr last", func(m *CSR) { m.RowPtr[m.Rows] = len(m.Val) + 1 }},
	}
	for _, c := range cases {
		cp := &CSR{Rows: m.Rows, Cols: m.Cols,
			RowPtr: append([]int(nil), m.RowPtr...),
			Col:    append([]int(nil), m.Col...),
			Val:    append([]float64(nil), m.Val...)}
		c.corrupt(cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(16)
		m := randomCSR(seed, n, n, 0.3)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.ValueIn(-1, 1)
		}
		y := m.MulVec(x)
		d := m.ToDense()
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += d[i*n+j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
