package matrix

// PartitionStats are the three raw workload statistics of Fig. 3, computed
// over the non-zero partitions of a matrix. The paper reads evaluation
// results "along with" these statistics: partition density drives memory
// traffic, row density drives dot-product-engine utilization, and the
// non-zero-row fraction drives inner-pipeline utilization.
type PartitionStats struct {
	P int // partition size the statistics were computed for

	// PartitionDensity is the average fraction of non-zero values in
	// non-zero partitions (Fig. 3a).
	PartitionDensity float64
	// RowDensity is the average fraction of non-zero values within the
	// non-zero rows of non-zero partitions (Fig. 3b).
	RowDensity float64
	// NonZeroRowFrac is the average fraction of non-zero rows per
	// non-zero partition (Fig. 3c).
	NonZeroRowFrac float64

	// NonZeroTiles and TotalTiles describe the partition-grid occupancy;
	// all-zero tiles are skipped by the streaming pipeline.
	NonZeroTiles int
	TotalTiles   int
}

// Stats computes the Fig. 3 statistics for an existing partitioning.
func (pt *Partitioning) Stats() PartitionStats {
	s := PartitionStats{P: pt.P, NonZeroTiles: len(pt.Tiles), TotalTiles: pt.TotalTiles}
	if len(pt.Tiles) == 0 {
		return s
	}
	var sumDensity, sumRowDensity, sumNZRows float64
	for _, t := range pt.Tiles {
		s.NonZeroTiles = len(pt.Tiles)
		sumDensity += t.Density()
		nzr := 0
		rowNNZ := 0
		for i := 0; i < t.P; i++ {
			if n := t.RowNNZ(i); n > 0 {
				nzr++
				rowNNZ += n
			}
		}
		if nzr > 0 {
			sumRowDensity += float64(rowNNZ) / float64(nzr*t.P)
		}
		sumNZRows += float64(nzr) / float64(t.P)
	}
	n := float64(len(pt.Tiles))
	s.PartitionDensity = sumDensity / n
	s.RowDensity = sumRowDensity / n
	s.NonZeroRowFrac = sumNZRows / n
	return s
}

// StatsFor partitions m at size p and returns the Fig. 3 statistics.
func StatsFor(m *CSR, p int) PartitionStats {
	return Partition(m, p).Stats()
}
