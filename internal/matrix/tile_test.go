package matrix

import (
	"testing"
	"testing/quick"

	"copernicus/internal/xrand"
)

func TestTileSetAtNNZ(t *testing.T) {
	tl := NewTile(4, 0, 0)
	tl.Set(1, 2, 5)
	tl.Set(3, 3, -1)
	if tl.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", tl.NNZ())
	}
	tl.Set(1, 2, 0) // clear
	if tl.NNZ() != 1 || tl.At(1, 2) != 0 {
		t.Fatalf("clearing entry failed: nnz=%d", tl.NNZ())
	}
	tl.Set(3, 3, 2) // overwrite non-zero with non-zero
	if tl.NNZ() != 1 || tl.At(3, 3) != 2 {
		t.Fatalf("overwrite mis-counted: nnz=%d", tl.NNZ())
	}
}

func TestTileRowStats(t *testing.T) {
	tl := NewTile(4, 0, 0)
	tl.Set(0, 0, 1)
	tl.Set(0, 3, 1)
	tl.Set(2, 1, 1)
	if tl.RowNNZ(0) != 2 || tl.RowNNZ(1) != 0 || tl.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
	if tl.NonZeroRows() != 2 {
		t.Fatalf("NonZeroRows = %d, want 2", tl.NonZeroRows())
	}
	if tl.Density() != 3.0/16.0 {
		t.Fatalf("Density = %v", tl.Density())
	}
}

func TestTileClone(t *testing.T) {
	tl := NewTile(2, 4, 6)
	tl.Set(0, 1, 9)
	c := tl.Clone()
	if !tl.EqualValues(c) {
		t.Fatal("clone differs")
	}
	c.Set(0, 1, 3)
	if tl.At(0, 1) != 9 {
		t.Fatal("clone shares storage with original")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		rows := 1 + r.Intn(40)
		cols := 1 + r.Intn(40)
		p := []int{3, 4, 8, 16}[r.Intn(4)]
		m := randomCSR(seed, rows, cols, 0.15)
		pt := Partition(m, p)
		back := pt.Assemble(rows, cols)
		return Equal(m, back, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionGridGeometry(t *testing.T) {
	m := randomCSR(3, 33, 17, 0.2)
	pt := Partition(m, 8)
	if pt.GridRows != 5 || pt.GridCols != 3 {
		t.Fatalf("grid = %dx%d, want 5x3", pt.GridRows, pt.GridCols)
	}
	if pt.TotalTiles != 15 {
		t.Fatalf("total tiles = %d, want 15", pt.TotalTiles)
	}
	if len(pt.Tiles)+pt.ZeroTiles() != pt.TotalTiles {
		t.Fatal("tile accounting inconsistent")
	}
}

func TestPartitionSkipsZeroTiles(t *testing.T) {
	// One entry in the top-left and one in the bottom-right corner of a
	// 32x32 matrix: with p=8, exactly 2 of 16 tiles are non-zero.
	b := NewBuilder(32, 32)
	b.Add(0, 0, 1)
	b.Add(31, 31, 1)
	pt := Partition(b.Build(), 8)
	if len(pt.Tiles) != 2 {
		t.Fatalf("non-zero tiles = %d, want 2", len(pt.Tiles))
	}
	if pt.ZeroTiles() != 14 {
		t.Fatalf("zero tiles = %d, want 14", pt.ZeroTiles())
	}
}

func TestPartitionTileOrder(t *testing.T) {
	// Tiles must come out in block-row-major order for deterministic
	// streaming.
	b := NewBuilder(16, 16)
	b.Add(0, 12, 1) // tile (0,1) at p=8
	b.Add(0, 0, 1)  // tile (0,0)
	b.Add(12, 4, 1) // tile (1,0)
	pt := Partition(b.Build(), 8)
	if len(pt.Tiles) != 3 {
		t.Fatalf("tiles = %d, want 3", len(pt.Tiles))
	}
	order := [][2]int{{0, 0}, {0, 8}, {8, 0}}
	for i, want := range order {
		if pt.Tiles[i].Row != want[0] || pt.Tiles[i].Col != want[1] {
			t.Fatalf("tile %d at (%d,%d), want (%d,%d)",
				i, pt.Tiles[i].Row, pt.Tiles[i].Col, want[0], want[1])
		}
	}
}

func TestPartitionNNZConserved(t *testing.T) {
	check := func(seed uint64) bool {
		m := randomCSR(seed, 30, 30, 0.1)
		pt := Partition(m, 8)
		total := 0
		for _, tl := range pt.Tiles {
			total += tl.NNZ()
		}
		return total == m.NNZ()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDenseTile(t *testing.T) {
	// A fully dense matrix: every statistic must be exactly 1.
	d := make([]float64, 16*16)
	for i := range d {
		d[i] = 1
	}
	s := StatsFor(FromDense(16, 16, d), 8)
	if s.PartitionDensity != 1 || s.RowDensity != 1 || s.NonZeroRowFrac != 1 {
		t.Fatalf("dense stats = %+v, want all 1", s)
	}
	if s.NonZeroTiles != 4 || s.TotalTiles != 4 {
		t.Fatalf("dense tile counts = %+v", s)
	}
}

func TestStatsDiagonal(t *testing.T) {
	// Diagonal 16x16 with p=8: the two diagonal tiles are non-zero, each
	// with density 8/64 and every row non-zero with exactly 1 of 8 values.
	b := NewBuilder(16, 16)
	for i := 0; i < 16; i++ {
		b.Add(i, i, 1)
	}
	s := StatsFor(b.Build(), 8)
	if s.NonZeroTiles != 2 {
		t.Fatalf("diagonal non-zero tiles = %d, want 2", s.NonZeroTiles)
	}
	if s.PartitionDensity != 0.125 {
		t.Fatalf("partition density = %v, want 0.125", s.PartitionDensity)
	}
	if s.RowDensity != 0.125 {
		t.Fatalf("row density = %v, want 0.125", s.RowDensity)
	}
	if s.NonZeroRowFrac != 1 {
		t.Fatalf("non-zero row frac = %v, want 1", s.NonZeroRowFrac)
	}
}

func TestStatsBoundsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		m := randomCSR(seed, 20+r.Intn(30), 20+r.Intn(30), 0.05+0.4*r.Float64())
		s := StatsFor(m, 8)
		inUnit := func(v float64) bool { return v >= 0 && v <= 1 }
		// Row density can never be below partition density: restricting to
		// non-zero rows only concentrates the same non-zeros.
		return inUnit(s.PartitionDensity) && inUnit(s.RowDensity) &&
			inUnit(s.NonZeroRowFrac) && s.RowDensity >= s.PartitionDensity-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsEmptyMatrix(t *testing.T) {
	s := StatsFor(NewBuilder(10, 10).Build(), 8)
	if s.NonZeroTiles != 0 || s.PartitionDensity != 0 {
		t.Fatalf("empty matrix stats = %+v", s)
	}
}
