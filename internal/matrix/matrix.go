// Package matrix provides the sparse-matrix substrate for Copernicus:
// a triplet builder, a canonical compressed-sparse-row (CSR) storage type,
// dense partition tiles, the non-zero partition extractor described in
// §4.1 of the paper, and the per-partition statistics of Fig. 3.
//
// CSR is used as the canonical in-memory representation from which every
// compression format under study encodes its streams; it plays the role of
// the paper's MATLAB preprocessing output.
package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Element sizes on the modelled accelerator. The paper streams 32-bit
// values and 32-bit indices/offsets over AXI; Go computes in float64 but
// all byte accounting uses these widths.
const (
	BytesPerValue  = 4 // float32 on the accelerator
	BytesPerIndex  = 4 // 32-bit row/column indices
	BytesPerOffset = 4 // 32-bit offset/pointer entries
)

// CSR is a sparse matrix in compressed-sparse-row form with sorted,
// duplicate-free column indices within each row and no explicitly stored
// zeros. Construct one with a Builder (or gen/workloads helpers); the
// invariants above are relied upon by every format encoder.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1; RowPtr[i]..RowPtr[i+1] slices Col/Val
	Col        []int // column index per non-zero, sorted within a row
	Val        []float64
}

// NNZ returns the number of stored non-zero entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns NNZ / (Rows*Cols), the fraction of non-zero entries.
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// RowNNZ returns the number of non-zeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// At returns the value at (i, j), or 0 if absent. It is O(log nnz(i)) and
// intended for tests and small matrices, not inner loops.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return m.Val[k]
	}
	return 0
}

// Bandwidth returns the matrix bandwidth: the maximum |i-j| over stored
// non-zeros. A diagonal matrix has bandwidth 0.
func (m *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if d := abs(i - m.Col[k]); d > bw {
				bw = d
			}
		}
	}
	return bw
}

// MulVec computes y = A·x with a software reference SpMV. It is the golden
// model every hardware-simulated SpMV result is verified against.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
	return y
}

// DiagVector returns the main diagonal as a dense vector (zero where
// absent). Jacobi-type iterations consume it.
func (m *CSR) DiagVector() []float64 {
	n := min(m.Rows, m.Cols)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Transpose returns Aᵀ in CSR form (equivalently, A viewed as CSC). The
// CSC encoder uses it to produce column-ordered streams.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		Col:    make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Count entries per column, prefix-sum, then scatter.
	for _, c := range m.Col {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.Col[k]
			t.Col[next[c]] = i
			t.Val[next[c]] = m.Val[k]
			next[c]++
		}
	}
	return t
}

// Equal reports whether two matrices have identical dimensions and stored
// entries within tolerance tol.
func Equal(a, b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.Rows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] || math.Abs(a.Val[k]-b.Val[k]) > tol {
			return false
		}
	}
	return true
}

// Validate checks the CSR invariants and returns a descriptive error for
// the first violation. It is used by tests and by decoders that rebuild
// matrices from untrusted streams.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if len(m.Col) != len(m.Val) {
		return fmt.Errorf("matrix: Col length %d != Val length %d", len(m.Col), len(m.Val))
	}
	if m.RowPtr[m.Rows] != len(m.Val) {
		return fmt.Errorf("matrix: RowPtr[last] = %d, want nnz %d", m.RowPtr[m.Rows], len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("matrix: RowPtr decreases at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] < 0 || m.Col[k] >= m.Cols {
				return fmt.Errorf("matrix: column %d out of range at row %d", m.Col[k], i)
			}
			if k > m.RowPtr[i] && m.Col[k] <= m.Col[k-1] {
				return fmt.Errorf("matrix: columns not strictly increasing at row %d", i)
			}
			if m.Val[k] == 0 {
				return fmt.Errorf("matrix: explicit zero stored at (%d,%d)", i, m.Col[k])
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
