package matrix

import (
	"fmt"
	"sort"
)

// Entry is a single (row, column, value) triplet.
type Entry struct {
	Row, Col int
	Val      float64
}

// Builder accumulates triplets in arbitrary order and converts them to a
// canonical CSR matrix. Duplicate coordinates are summed (the SuiteSparse
// assembly convention for finite-element matrices); entries that sum to
// zero — and entries added as exact zeros — are dropped.
type Builder struct {
	rows, cols int
	entries    []Entry
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewBuilder(%d, %d) with negative dimension", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add records a triplet. Out-of-range coordinates panic immediately so the
// offending generator is identified at the call site.
func (b *Builder) Add(row, col int, val float64) {
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic(fmt.Sprintf("matrix: Add(%d, %d) out of range for %dx%d", row, col, b.rows, b.cols))
	}
	if val == 0 {
		return
	}
	b.entries = append(b.entries, Entry{row, col, val})
}

// AddSym records the triplet and its transpose, halving the work of
// building symmetric matrices (undirected graphs, FEM stencils). Diagonal
// entries are added once.
func (b *Builder) AddSym(row, col int, val float64) {
	b.Add(row, col, val)
	if row != col {
		b.Add(col, row, val)
	}
}

// Len returns the number of recorded triplets (before deduplication).
func (b *Builder) Len() int { return len(b.entries) }

// Build sorts, deduplicates, and emits the canonical CSR matrix. The
// Builder may be reused afterwards; its triplet list is consumed.
func (b *Builder) Build() *CSR {
	ent := b.entries
	b.entries = nil
	sort.Slice(ent, func(i, j int) bool {
		if ent[i].Row != ent[j].Row {
			return ent[i].Row < ent[j].Row
		}
		return ent[i].Col < ent[j].Col
	})

	// Combine duplicates in place.
	w := 0
	for r := 0; r < len(ent); {
		sum := ent[r].Val
		q := r + 1
		for q < len(ent) && ent[q].Row == ent[r].Row && ent[q].Col == ent[r].Col {
			sum += ent[q].Val
			q++
		}
		if sum != 0 {
			ent[w] = Entry{ent[r].Row, ent[r].Col, sum}
			w++
		}
		r = q
	}
	ent = ent[:w]

	m := &CSR{
		Rows:   b.rows,
		Cols:   b.cols,
		RowPtr: make([]int, b.rows+1),
		Col:    make([]int, len(ent)),
		Val:    make([]float64, len(ent)),
	}
	for i, e := range ent {
		m.RowPtr[e.Row+1]++
		m.Col[i] = e.Col
		m.Val[i] = e.Val
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// FromDense builds a CSR matrix from a row-major dense slice, skipping
// zeros. It is primarily a test helper.
func FromDense(rows, cols int, dense []float64) *CSR {
	if len(dense) != rows*cols {
		panic(fmt.Sprintf("matrix: FromDense got %d values for %dx%d", len(dense), rows, cols))
	}
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			b.Add(i, j, dense[i*cols+j])
		}
	}
	return b.Build()
}

// ToDense expands the matrix to a row-major dense slice. Intended for
// tests and small matrices.
func (m *CSR) ToDense() []float64 {
	d := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i*m.Cols+m.Col[k]] = m.Val[k]
		}
	}
	return d
}
