package matrix

import "fmt"

// Tile is one dense p×p partition of a larger sparse matrix. Copernicus
// applies every compression format to non-zero partitions rather than to
// the whole matrix (§4.1): partitioning bounds metadata growth, enables
// coarse-grained parallelism, and lets all-zero partitions be skipped
// entirely.
//
// Val is row-major and includes the partition's zeros; format encoders
// decide what to store. Tiles on the matrix boundary are zero-padded to the
// full p×p shape, matching the hardware's fixed-width dot-product engine.
type Tile struct {
	P        int       // partition edge length
	Row, Col int       // origin of the tile in the parent matrix
	Val      []float64 // P*P row-major values
	nnz      int
	// rowNNZ caches the per-row non-zero counts and nzRows the number of
	// rows with at least one non-zero, maintained by Set, so RowNNZ and
	// NonZeroRows are O(1) instead of rescanning up to P² values. Both
	// are consulted on every tile by the cycle model and Fig. 3 stats.
	rowNNZ []int
	nzRows int
}

// NewTile returns an all-zero p×p tile at the given origin.
func NewTile(p, row, col int) *Tile {
	if p <= 0 {
		panic(fmt.Sprintf("matrix: NewTile with p=%d", p))
	}
	return &Tile{P: p, Row: row, Col: col, Val: make([]float64, p*p), rowNNZ: make([]int, p)}
}

// Set stores v at local coordinates (i, j), maintaining the nnz counts.
func (t *Tile) Set(i, j int, v float64) {
	k := i*t.P + j
	old := t.Val[k]
	if old != 0 && v == 0 {
		t.nnz--
		t.rowNNZ[i]--
		if t.rowNNZ[i] == 0 {
			t.nzRows--
		}
	} else if old == 0 && v != 0 {
		t.nnz++
		if t.rowNNZ[i] == 0 {
			t.nzRows++
		}
		t.rowNNZ[i]++
	}
	t.Val[k] = v
}

// At returns the value at local coordinates (i, j).
func (t *Tile) At(i, j int) float64 { return t.Val[i*t.P+j] }

// NNZ returns the number of non-zero entries in the tile.
func (t *Tile) NNZ() int { return t.nnz }

// Density returns NNZ / P².
func (t *Tile) Density() float64 { return float64(t.nnz) / float64(t.P*t.P) }

// RowNNZ returns the number of non-zeros in local row i.
func (t *Tile) RowNNZ(i int) int { return t.rowNNZ[i] }

// NonZeroRows returns the count of rows with at least one non-zero. This
// drives both the dot-product count in Eq. (1) and the inner-pipeline
// utilization discussed in §5.1.
func (t *Tile) NonZeroRows() int { return t.nzRows }

// Clone returns a deep copy of the tile.
func (t *Tile) Clone() *Tile {
	c := &Tile{P: t.P, Row: t.Row, Col: t.Col, Val: make([]float64, len(t.Val)),
		nnz: t.nnz, rowNNZ: make([]int, t.P), nzRows: t.nzRows}
	copy(c.Val, t.Val)
	copy(c.rowNNZ, t.rowNNZ)
	return c
}

// EqualValues reports whether two tiles hold identical values (origin and
// size included).
func (t *Tile) EqualValues(o *Tile) bool {
	if t.P != o.P || t.Row != o.Row || t.Col != o.Col || len(t.Val) != len(o.Val) {
		return false
	}
	for i, v := range t.Val {
		if v != o.Val[i] {
			return false
		}
	}
	return true
}

// TileAt extracts the p×p tile of m anchored at (row, col), zero-padded
// past the matrix boundary.
func TileAt(m *CSR, row, col, p int) *Tile {
	t := NewTile(p, row, col)
	for i := 0; i < p; i++ {
		gi := row + i
		if gi < 0 || gi >= m.Rows {
			continue
		}
		for k := m.RowPtr[gi]; k < m.RowPtr[gi+1]; k++ {
			if j := m.Col[k] - col; j >= 0 && j < p {
				t.Set(i, j, m.Val[k])
			}
		}
	}
	return t
}

// Partitioning groups a matrix's non-zero tiles together with the grid
// geometry needed to reassemble or stream them.
type Partitioning struct {
	P          int // partition edge length
	GridRows   int // ceil(Rows/P)
	GridCols   int // ceil(Cols/P)
	Tiles      []*Tile
	TotalTiles int // GridRows*GridCols, including all-zero tiles
}

// ZeroTiles returns the number of all-zero partitions, which the streaming
// pipeline never transfers.
func (pt *Partitioning) ZeroTiles() int { return pt.TotalTiles - len(pt.Tiles) }

// Partition extracts all non-zero p×p tiles of m in block-row-major order.
// Boundary tiles are zero-padded. The tiles reassemble exactly to m (see
// Assemble), a property the test suite checks by round-trip.
//
// The extraction is a single scan of the CSR arrays per block row: tiles
// are bucketed by block column into a scratch array reused across block
// rows, then drained in ascending block-column order — no per-block-row
// map or sort.
func Partition(m *CSR, p int) *Partitioning {
	if p <= 0 {
		panic(fmt.Sprintf("matrix: Partition with p=%d", p))
	}
	gr := (m.Rows + p - 1) / p
	gc := (m.Cols + p - 1) / p
	pt := &Partitioning{P: p, GridRows: gr, GridCols: gc, TotalTiles: gr * gc}

	scratch := make([]*Tile, gc) // block column → pending tile, reused
	for br := 0; br < gr; br++ {
		rowEnd := min((br+1)*p, m.Rows)
		minBC, maxBC := gc, -1
		for i := br * p; i < rowEnd; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				bc := m.Col[k] / p
				t := scratch[bc]
				if t == nil {
					t = NewTile(p, br*p, bc*p)
					scratch[bc] = t
					if bc < minBC {
						minBC = bc
					}
					if bc > maxBC {
						maxBC = bc
					}
				}
				t.Set(i-br*p, m.Col[k]-bc*p, m.Val[k])
			}
		}
		// Drain the touched block-column range in ascending order.
		for bc := minBC; bc <= maxBC; bc++ {
			if scratch[bc] != nil {
				pt.Tiles = append(pt.Tiles, scratch[bc])
				scratch[bc] = nil
			}
		}
	}
	return pt
}

// Assemble rebuilds the full matrix from a partitioning. Used to verify
// that Partition is lossless.
func (pt *Partitioning) Assemble(rows, cols int) *CSR {
	b := NewBuilder(rows, cols)
	for _, t := range pt.Tiles {
		for i := 0; i < t.P; i++ {
			gi := t.Row + i
			if gi >= rows {
				break
			}
			for j := 0; j < t.P; j++ {
				gj := t.Col + j
				if gj >= cols {
					break
				}
				b.Add(gi, gj, t.Val[i*t.P+j])
			}
		}
	}
	return b.Build()
}
