package matrix

import "fmt"

// Tile is one p×p partition of a larger sparse matrix. Copernicus applies
// every compression format to non-zero partitions rather than to the
// whole matrix (§4.1): partitioning bounds metadata growth, enables
// coarse-grained parallelism, and lets all-zero partitions be skipped
// entirely.
//
// A tile is stored sparse-natively as a compact per-tile CSR: row i's
// entries occupy cols/vals[rowPtr[i]:rowPtr[i+1]], with local column
// indices sorted ascending. Partition builds these spans directly into
// per-partitioning backing buffers, so resident memory scales with the
// tile's non-zeros, never with p². Tiles on the matrix boundary are
// implicitly zero-padded to the full p×p shape, matching the hardware's
// fixed-width dot-product engine — padding rows simply have empty spans.
//
// Mutation (Set) and decode paths stage values in a transient dense p×p
// buffer that is converted back ("sealed") to the CSR form on the next
// sparse read; the steady-state Partition→encode path never allocates it.
// A sealed tile is safe for concurrent reads; mutation is not
// goroutine-safe.
type Tile struct {
	P        int // partition edge length
	Row, Col int // origin of the tile in the parent matrix

	// Sealed CSR view: row i spans cols/vals[rowPtr[i]:rowPtr[i+1]].
	rowPtr []int32 // len P+1
	cols   []int32 // local column indices, ascending within a row
	vals   []float64
	nzRows int

	// dense is the mutation/decode staging buffer (P*P row-major);
	// non-nil marks the tile dirty until the next seal.
	dense []float64
}

// NewTile returns an all-zero p×p tile at the given origin, in staging
// mode ready for Set calls (decoders and tests build tiles this way; the
// partitioner constructs sealed tiles directly).
func NewTile(p, row, col int) *Tile {
	if p <= 0 {
		panic(fmt.Sprintf("matrix: NewTile with p=%d", p))
	}
	return &Tile{P: p, Row: row, Col: col, dense: make([]float64, p*p)}
}

// newTileCSR wires a sealed tile over pre-built CSR spans (Partition and
// TileAt own the backing buffers).
func newTileCSR(p, row, col int, rowPtr, cols []int32, vals []float64, nzRows int) Tile {
	return Tile{P: p, Row: row, Col: col, rowPtr: rowPtr, cols: cols, vals: vals, nzRows: nzRows}
}

// seal converts the dense staging buffer back to the compact CSR view.
// It is a no-op on an already-sealed tile, so sparse accessors may call
// it unconditionally (and concurrently, once sealed).
func (t *Tile) seal() {
	if t.dense == nil {
		return
	}
	p := t.P
	nnz := 0
	for _, v := range t.dense {
		if v != 0 {
			nnz++
		}
	}
	t.rowPtr = make([]int32, p+1)
	t.cols = make([]int32, 0, nnz)
	t.vals = make([]float64, 0, nnz)
	t.nzRows = 0
	for i := 0; i < p; i++ {
		row := t.dense[i*p : (i+1)*p]
		for j, v := range row {
			if v != 0 {
				t.cols = append(t.cols, int32(j))
				t.vals = append(t.vals, v)
			}
		}
		if int(t.rowPtr[i]) != len(t.cols) {
			t.nzRows++
		}
		t.rowPtr[i+1] = int32(len(t.cols))
	}
	t.dense = nil
}

// Set stores v at local coordinates (i, j). It re-opens the dense staging
// buffer if the tile was sealed; the next sparse read re-seals.
func (t *Tile) Set(i, j int, v float64) {
	if t.dense == nil {
		t.dense = t.DenseInto(make([]float64, t.P*t.P))
	}
	t.dense[i*t.P+j] = v
}

// At returns the value at local coordinates (i, j).
func (t *Tile) At(i, j int) float64 {
	if t.dense != nil {
		return t.dense[i*t.P+j]
	}
	lo, hi := int(t.rowPtr[i]), int(t.rowPtr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if int(t.cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(t.rowPtr[i+1]) && int(t.cols[lo]) == j {
		return t.vals[lo]
	}
	return 0
}

// NNZ returns the number of non-zero entries in the tile.
func (t *Tile) NNZ() int {
	t.seal()
	return len(t.vals)
}

// Density returns NNZ / P².
func (t *Tile) Density() float64 { return float64(t.NNZ()) / float64(t.P*t.P) }

// RowNNZ returns the number of non-zeros in local row i.
func (t *Tile) RowNNZ(i int) int {
	t.seal()
	return int(t.rowPtr[i+1] - t.rowPtr[i])
}

// NonZeroRows returns the count of rows with at least one non-zero. This
// drives both the dot-product count in Eq. (1) and the inner-pipeline
// utilization discussed in §5.1.
func (t *Tile) NonZeroRows() int {
	t.seal()
	return t.nzRows
}

// RowView returns local row i's non-zeros: ascending local column
// indices and the matching values. The slices alias the tile's storage —
// callers must not mutate them. This is the O(nnz) walk every format
// encoder is built on.
func (t *Tile) RowView(i int) (cols []int32, vals []float64) {
	t.seal()
	s, e := t.rowPtr[i], t.rowPtr[i+1]
	return t.cols[s:e:e], t.vals[s:e:e]
}

// Dense materializes the tile as a fresh P*P row-major buffer, zeros
// included — the escape hatch for consumers that genuinely need the p²
// form (decode staging, golden cross-checks, tests). The steady-state
// partition→encode path never calls it.
func (t *Tile) Dense() []float64 { return t.DenseInto(nil) }

// DenseInto is Dense writing into dst when cap(dst) >= P*P (allocating
// otherwise), so verification loops can reuse one buffer across tiles.
func (t *Tile) DenseInto(dst []float64) []float64 {
	n := t.P * t.P
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	if t.dense != nil {
		copy(dst, t.dense)
		return dst
	}
	for i := 0; i < t.P; i++ {
		base := i * t.P
		for k := t.rowPtr[i]; k < t.rowPtr[i+1]; k++ {
			dst[base+int(t.cols[k])] = t.vals[k]
		}
	}
	return dst
}

// Clone returns a deep copy of the tile.
func (t *Tile) Clone() *Tile {
	c := &Tile{P: t.P, Row: t.Row, Col: t.Col, nzRows: t.nzRows}
	if t.dense != nil {
		c.dense = append([]float64(nil), t.dense...)
		return c
	}
	c.rowPtr = append([]int32(nil), t.rowPtr...)
	c.cols = append([]int32(nil), t.cols...)
	c.vals = append([]float64(nil), t.vals...)
	return c
}

// EqualValues reports whether two tiles hold identical values (origin and
// size included).
func (t *Tile) EqualValues(o *Tile) bool {
	if t.P != o.P || t.Row != o.Row || t.Col != o.Col {
		return false
	}
	t.seal()
	o.seal()
	if len(t.vals) != len(o.vals) {
		return false
	}
	for i := range t.rowPtr {
		if t.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for k := range t.cols {
		if t.cols[k] != o.cols[k] || t.vals[k] != o.vals[k] {
			return false
		}
	}
	return true
}

// MemoryBytes returns the tile's resident storage (CSR spans or staging
// buffer), excluding the struct header.
func (t *Tile) MemoryBytes() int64 {
	if t.dense != nil {
		return int64(len(t.dense)) * 8
	}
	return int64(len(t.rowPtr))*4 + int64(len(t.cols))*4 + int64(len(t.vals))*8
}

// TileAt extracts the p×p tile of m anchored at (row, col), zero-padded
// past the matrix boundary. The tile is built sealed, directly from the
// CSR row spans — O(nnz(tile) + p·log nnz(row)).
func TileAt(m *CSR, row, col, p int) *Tile {
	rowPtr := make([]int32, p+1)
	nzRows := 0
	// Per-row span bounds within [col, col+p), found by binary search in
	// the sorted column indices. starts holds indices into the parent
	// matrix's CSR arrays, which can exceed int32 on huge matrices.
	starts := make([]int, p)
	for i := 0; i < p; i++ {
		gi := row + i
		rowPtr[i+1] = rowPtr[i]
		if gi < 0 || gi >= m.Rows {
			continue
		}
		lo, hi := m.RowPtr[gi], m.RowPtr[gi+1]
		s := lowerBound(m.Col, lo, hi, col)
		e := lowerBound(m.Col, s, hi, col+p)
		starts[i] = s
		rowPtr[i+1] += int32(e - s)
		if e > s {
			nzRows++
		}
	}
	nnz := int(rowPtr[p])
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	for i := 0; i < p; i++ {
		n := int(rowPtr[i+1] - rowPtr[i])
		if n == 0 {
			continue
		}
		dst := int(rowPtr[i])
		src := starts[i]
		for k := 0; k < n; k++ {
			cols[dst+k] = int32(m.Col[src+k] - col)
			vals[dst+k] = m.Val[src+k]
		}
	}
	t := newTileCSR(p, row, col, rowPtr, cols, vals, nzRows)
	return &t
}

// lowerBound returns the first index in Col[lo:hi) whose value is >= x.
func lowerBound(col []int, lo, hi, x int) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if col[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Partitioning groups a matrix's non-zero tiles together with the grid
// geometry needed to reassemble or stream them. All tiles slice three
// shared backing buffers (row pointers, columns, values), so the whole
// partitioning's resident cost is O(nnz + tiles·p).
type Partitioning struct {
	P          int // partition edge length
	GridRows   int // ceil(Rows/P)
	GridCols   int // ceil(Cols/P)
	Tiles      []*Tile
	TotalTiles int // GridRows*GridCols, including all-zero tiles
}

// ZeroTiles returns the number of all-zero partitions, which the streaming
// pipeline never transfers.
func (pt *Partitioning) ZeroTiles() int { return pt.TotalTiles - len(pt.Tiles) }

// MemoryBytes returns the resident size of the partitioning's tile
// storage (backing buffers plus tile headers).
func (pt *Partitioning) MemoryBytes() int64 {
	var b int64
	for _, t := range pt.Tiles {
		b += t.MemoryBytes() + tileHeaderBytes
	}
	return b
}

// tileHeaderBytes approximates one Tile struct plus its *Tile slot in the
// Tiles slice.
const tileHeaderBytes = 14*8 + 8

// Partition extracts all non-zero p×p tiles of m in block-row-major order.
// Boundary tiles are zero-padded. The tiles reassemble exactly to m (see
// Assemble), a property the test suite checks by round-trip.
//
// The extraction is sparse-native: a counting pass sizes every tile's row
// spans, then a scatter pass copies each CSR entry straight into shared
// cols/vals backing buffers — no per-tile dense p² staging, no map, no
// sort. Cost is O(nnz + tiles·p); resident memory is O(nnz + tiles·p).
func Partition(m *CSR, p int) *Partitioning {
	if p <= 0 {
		panic(fmt.Sprintf("matrix: Partition with p=%d", p))
	}
	gr := (m.Rows + p - 1) / p
	gc := (m.Cols + p - 1) / p
	pt := &Partitioning{P: p, GridRows: gr, GridCols: gc, TotalTiles: gr * gc}
	nnz := m.NNZ()
	if nnz == 0 {
		return pt
	}

	// Pass 1: count the non-zero tiles so every backing buffer can be
	// sized exactly. seen is epoch-marked per block row.
	numTiles := 0
	seen := make([]int32, gc)
	for br := 0; br < gr; br++ {
		rowEnd := min((br+1)*p, m.Rows)
		for i := br * p; i < rowEnd; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if bc := m.Col[k] / p; seen[bc] != int32(br+1) {
					seen[bc] = int32(br + 1)
					numTiles++
				}
			}
		}
	}

	// Shared backing buffers: every tile's spans slice into these.
	rowPtrBuf := make([]int32, numTiles*(p+1))
	colsBuf := make([]int32, nnz)
	valsBuf := make([]float64, nnz)
	tiles := make([]Tile, numTiles)
	pt.Tiles = make([]*Tile, 0, numTiles)

	// Per-block-row scratch, reused: per-(block column, local row) entry
	// counts that become scatter cursors after the prefix sum, per-tile
	// totals, and the block column → tile index map.
	rowCount := make([]int32, gc*p)
	tileNNZ := make([]int32, gc)
	tileIdx := make([]int32, gc)

	base := 0 // consumed cols/vals entries
	ti := 0   // next tile index
	for br := 0; br < gr; br++ {
		rowEnd := min((br+1)*p, m.Rows)
		minBC, maxBC := gc, -1
		for i := br * p; i < rowEnd; i++ {
			li := i - br*p
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				bc := m.Col[k] / p
				rowCount[bc*p+li]++
				tileNNZ[bc]++
				if bc < minBC {
					minBC = bc
				}
				if bc > maxBC {
					maxBC = bc
				}
			}
		}
		if maxBC < 0 {
			continue
		}
		// Materialize this block row's tiles in ascending block-column
		// order, prefix-summing the row counts into row pointers and
		// leaving scatter cursors behind in rowCount.
		for bc := minBC; bc <= maxBC; bc++ {
			n := int(tileNNZ[bc])
			if n == 0 {
				continue
			}
			rp := rowPtrBuf[ti*(p+1) : (ti+1)*(p+1)]
			running := int32(0)
			nzRows := 0
			for li := 0; li < p; li++ {
				c := rowCount[bc*p+li]
				if c > 0 {
					nzRows++
				}
				rowCount[bc*p+li] = running
				running += c
				rp[li+1] = running
			}
			tiles[ti] = newTileCSR(p, br*p, bc*p, rp,
				colsBuf[base:base+n:base+n], valsBuf[base:base+n:base+n], nzRows)
			pt.Tiles = append(pt.Tiles, &tiles[ti])
			tileIdx[bc] = int32(ti)
			ti++
			base += n
		}
		// Scatter pass: each entry lands at its row cursor, preserving
		// the ascending column order of the CSR scan.
		for i := br * p; i < rowEnd; i++ {
			li := i - br*p
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				bc := m.Col[k] / p
				t := &tiles[tileIdx[bc]]
				cur := rowCount[bc*p+li]
				t.cols[cur] = int32(m.Col[k] - bc*p)
				t.vals[cur] = m.Val[k]
				rowCount[bc*p+li] = cur + 1
			}
		}
		// Reset the touched scratch for the next block row.
		for bc := minBC; bc <= maxBC; bc++ {
			if tileNNZ[bc] == 0 {
				continue
			}
			tileNNZ[bc] = 0
			clear(rowCount[bc*p : (bc+1)*p])
		}
	}
	return pt
}

// Assemble rebuilds the full matrix from a partitioning. Used to verify
// that Partition is lossless.
func (pt *Partitioning) Assemble(rows, cols int) *CSR {
	b := NewBuilder(rows, cols)
	for _, t := range pt.Tiles {
		for i := 0; i < t.P; i++ {
			gi := t.Row + i
			if gi >= rows {
				break
			}
			tc, tv := t.RowView(i)
			for k := range tc {
				if gj := t.Col + int(tc[k]); gj < cols {
					b.Add(gi, gj, tv[k])
				}
			}
		}
	}
	return b.Build()
}
