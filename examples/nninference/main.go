// Sparse neural-network inference: a pruned two-layer MLP whose
// layer-by-layer matrix-vector products run through the modelled
// accelerator — the machine-learning workload of §3.3.
//
// Pruned weight matrices are far denser (10–50%) than scientific or graph
// matrices, which flips the format trade-off: the paper's §8 guidance for
// density ≥ 0.1 is BCSR/LIL with small partitions, and aggressive
// compression stops paying off. The example sweeps pruning levels and
// shows the crossover.
package main

import (
	"fmt"
	"log"
	"math"

	"copernicus"
)

const (
	inputDim  = 256
	hiddenDim = 128
	outputDim = 32
)

func main() {
	fmt.Println("pruned-MLP inference through the sparse accelerator model")
	fmt.Println()

	// Sweep pruning levels from aggressive (10% kept) to mild (50%).
	for _, keep := range []float64{0.1, 0.3, 0.5} {
		w1 := copernicus.PrunedWeights(hiddenDim, inputDim, keep, 11)
		w2 := copernicus.PrunedWeights(outputDim, hiddenDim, keep, 13)
		fmt.Printf("keep rate %.0f%%: layer1 %dx%d (density %.3f), layer2 %dx%d (density %.3f)\n",
			keep*100, w1.Rows, w1.Cols, w1.Density(), w2.Rows, w2.Cols, w2.Density())

		// §8: for density ≥ 0.1 keep partitions at 8 or 16.
		const p = 8
		fmt.Println("  format   sigma   balance  bw_util  time/layer1(s)")
		best := copernicus.Format(-1)
		bestTime := math.Inf(1)
		for _, f := range []copernicus.Format{
			copernicus.BCSR, copernicus.LIL, copernicus.ELL, copernicus.CSR,
			copernicus.COO, copernicus.Dense,
		} {
			r, err := copernicus.Characterize(w1, f, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8v %6.2f  %7.2f  %7.3f  %.3e\n",
				f, r.Sigma, r.BalanceRatio, r.BandwidthUtil, r.Seconds)
			if r.Seconds < bestTime {
				bestTime, best = r.Seconds, f
			}
		}
		fmt.Printf("  fastest on this layer: %v\n", best)

		// Run one inference with the winning format.
		x := make([]float64, inputDim)
		for i := range x {
			x[i] = math.Sin(float64(i) / 7)
		}
		h, err := copernicus.SpMV(w1, x, best, p)
		if err != nil {
			log.Fatal(err)
		}
		relu(h)
		y, err := copernicus.SpMV(w2, h, best, p)
		if err != nil {
			log.Fatal(err)
		}
		relu(y)
		fmt.Printf("  inference ok: argmax=%d, |out|=%.4f\n\n", argmax(y), norm(y))
	}

	fmt.Println("§8 check: at density ≥ 0.1 the dense baseline and block formats close")
	fmt.Println("the gap — decompression savings no longer cover the zero-skipping logic.")
}

func relu(v []float64) {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
