// Conjugate-gradient solve of a 2-D Poisson problem with the SpMV inside
// the iteration executed through the modelled accelerator — the
// scientific-computing workload of §3.3, where iterative solvers for
// discretized PDEs spend their time in SpMV.
//
// The system matrix is the banded SPD stencil matrix §3.2 describes, so
// the example also shows the structured-matrix trade-off of §8: DIA
// utilizes memory bandwidth nearly perfectly on band matrices, but a
// format mismatched to the hardware's row-oriented computation (CSC) is
// catastrophically slow, and generic formats remain competitive. A
// symmetric Gauss-Seidel smoother (§3.3's other PDE kernel) provides the
// starting guess quality comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"copernicus"
)

const grid = 24 // 24×24 interior points → 576 unknowns

func main() {
	// Discretized Poisson operator (pentadiagonal SPD).
	a := copernicus.Stencil2D(grid, grid, 7)
	n := a.Rows
	fmt.Printf("system: %d unknowns, %d non-zeros, bandwidth %d\n\n", n, a.NNZ(), a.Bandwidth())

	// Right-hand side: a point source in the middle of the domain.
	rhs := make([]float64, n)
	rhs[n/2+grid/2] = 1

	// Compare candidate formats on the operator before solving.
	fmt.Println("per-SpMV characterization on the stencil operator (p=16):")
	fmt.Println("  format   sigma   bw_util  time(s)")
	for _, f := range []copernicus.Format{
		copernicus.DIA, copernicus.CSR, copernicus.ELL, copernicus.COO, copernicus.CSC,
	} {
		r, err := copernicus.Characterize(a, f, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v %6.2f  %7.3f  %.3e\n", f, r.Sigma, r.BandwidthUtil, r.Seconds)
	}

	// A few symmetric Gauss-Seidel sweeps show the smoother §3.3 cites.
	_, gsStats, err := copernicus.SymGaussSeidel(a, rhs, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsymmetric Gauss-Seidel, 5 sweeps: residual %.3e\n", gsStats.Residual)

	// Solve with CG over the accelerator backend in a band-appropriate
	// format.
	format := copernicus.ELL
	mul, cyclesPerSpMV, err := copernicus.AcceleratorBackend(a, format, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolving with CG using %v for the accelerator SpMV\n", format)
	x, st, err := copernicus.SolveCG(mul, rhs, 1e-10, 2*n)
	if err != nil {
		log.Fatal(err)
	}
	hw := copernicus.DefaultHardware()
	modelled := float64(uint64(st.Iterations)*cyclesPerSpMV) / hw.ClockHz
	fmt.Printf("converged=%v in %d iterations, final residual %.3e\n",
		st.Converged, st.Iterations, st.Residual)
	fmt.Printf("modelled accelerator time for all SpMVs: %.3e s\n", modelled)

	// Sanity: check A·x ≈ rhs through the software path.
	ax := a.MulVec(x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - rhs[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("verification: max |A·x - b| = %.3e\n", worst)
}
