// Coarse-grained scaling: §5.1 notes that "instances of this
// architecture can be aggregated for implementing coarse-grain
// parallelism". This example aggregates 1–16 pipeline instances over the
// partitions of one large matrix and reports speedup and load-balance
// efficiency per format — showing that the format choice survives
// aggregation (per-lane work scales uniformly), while load imbalance
// grows for formats whose per-tile cost varies most.
package main

import (
	"fmt"
	"log"

	"copernicus"
)

func main() {
	m := copernicus.Random(1024, 0.02, 77)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	fmt.Printf("matrix: %dx%d, nnz=%d; partition 16x16\n\n", m.Rows, m.Cols, m.NNZ())

	for _, f := range []copernicus.Format{copernicus.COO, copernicus.CSR, copernicus.DIA} {
		base, err := copernicus.SpMVParallel(m, x, f, 16, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v over %d non-zero tiles:\n", f, base.NonZeroTiles)
		fmt.Println("  lanes  cycles      speedup  efficiency")
		for lanes := 1; lanes <= 16; lanes *= 2 {
			r, err := copernicus.SpMVParallel(m, x, f, 16, lanes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5d  %-10d  %6.2fx  %9.3f\n", lanes, r.TotalCycles,
				float64(base.TotalCycles)/float64(r.TotalCycles), r.Efficiency())
		}
		fmt.Println()
	}

	// Functional check: 16-lane output equals the software reference.
	r, err := copernicus.SpMVParallel(m, x, copernicus.COO, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	ref := m.MulVec(x)
	worst := 0.0
	for i := range ref {
		if d := abs(r.Y[i] - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("functional check across 16 lanes: max |err| = %.2g\n", worst)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
