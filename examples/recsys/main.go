// Recommendation-system embedding reduction: §3.3 notes that sparse
// embedding-table look-ups reduce to a summation implementable on the
// same dot-product engine as SpMV. This example casts a batch of
// multi-hot embedding-bag look-ups as one sparse gather matrix times the
// embedding table (column by column through the accelerator), and asks
// which compression format should carry the gather matrix — an extremely
// sparse, random-access pattern with a handful of non-zeros per row.
package main

import (
	"fmt"
	"log"

	"copernicus"
)

const (
	tableRows  = 2048 // embedding table entries
	embedDim   = 16   // embedding vector width
	batch      = 256  // look-up bags per batch
	hotsPerBag = 4    // table entries summed per bag
)

func main() {
	// Gather matrix: batch × tableRows, row b has 1s at the bag's table
	// indices. Skewed access (popular items) like real recsys traffic.
	pop := copernicus.ScaleFreeGraph(tableRows, 2, 99) // reuse skewed degrees as popularity
	b := copernicus.NewBuilder(batch, tableRows)
	seed := uint64(1)
	next := func(n int) int { // tiny deterministic LCG for index picks
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for bag := 0; bag < batch; bag++ {
		for h := 0; h < hotsPerBag; h++ {
			// Bias picks toward high-degree (popular) vertices.
			v := next(tableRows)
			if pop.RowNNZ(v) == 0 {
				v = next(tableRows)
			}
			b.Add(bag, v, 1)
		}
	}
	gather := b.Build()
	fmt.Printf("gather matrix: %dx%d, nnz=%d (density %.5f)\n",
		gather.Rows, gather.Cols, gather.NNZ(), gather.Density())

	// Embedding table: dense, deterministic.
	table := make([][]float64, embedDim)
	for d := range table {
		col := make([]float64, tableRows)
		for i := range col {
			col[i] = float64((i*7+d*13)%100)/100 - 0.5
		}
		table[d] = col
	}

	// Which format should the accelerator use for the gather matrix?
	rec, err := copernicus.NewEngine().Recommend(gather, 16, nil, copernicus.LatencyObjective())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: %s\n\n", rec.Reason)

	// Run the batch: one SpMV per embedding dimension (column of the
	// table); output[bag][d] = sum of embeddings in the bag.
	out := make([][]float64, batch)
	for i := range out {
		out[i] = make([]float64, embedDim)
	}
	perSpMV, err := copernicus.Characterize(gather, rec.Format, 16)
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < embedDim; d++ {
		y, err := copernicus.SpMV(gather, table[d], rec.Format, 16)
		if err != nil {
			log.Fatal(err)
		}
		for bag := 0; bag < batch; bag++ {
			out[bag][d] = y[bag]
		}
	}
	fmt.Printf("batch of %d bags × %d dims reduced through the accelerator\n", batch, embedDim)
	fmt.Printf("modelled time: %d dims × %.3e s = %.3e s\n",
		embedDim, perSpMV.Seconds, float64(embedDim)*perSpMV.Seconds)

	// Verify one bag against a direct software reduction.
	ref := make([]float64, embedDim)
	for k := gather.RowPtr[0]; k < gather.RowPtr[1]; k++ {
		for d := 0; d < embedDim; d++ {
			ref[d] += table[d][gather.Col[k]]
		}
	}
	worst := 0.0
	for d := range ref {
		if diff := abs(ref[d] - out[0][d]); diff > worst {
			worst = diff
		}
	}
	fmt.Printf("verification vs software reduction (bag 0): max |err| = %.2g\n", worst)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
