// SuiteSparse sweep: characterize all twenty Table 1 workload surrogates
// across the measured formats, reproduce the Fig. 4 ranking, and report
// the per-workload winner — the full characterization loop a hardware
// architect would run before committing to a format.
package main

import (
	"fmt"
	"log"
	"math"

	"copernicus"
)

func main() {
	cfg := copernicus.WorkloadConfig{Scale: 512, RandomDim: 512, BandDim: 512}
	suite := copernicus.SuiteSparseWorkloads(cfg)
	engine := copernicus.NewEngine()
	formats := copernicus.CoreFormats()

	fmt.Println("sigma (decompression overhead, lower is better) at p=16:")
	fmt.Printf("%-4s %-9s", "ID", "kind")
	for _, f := range formats {
		fmt.Printf(" %7s", f)
	}
	fmt.Println("   winner")

	geomean := make([]float64, len(formats))
	wins := map[copernicus.Format]int{}
	for _, w := range suite {
		fmt.Printf("%-4s %-9.9s", w.ID, w.Kind)
		best, bestTime := copernicus.Format(-1), math.Inf(1)
		for fi, f := range formats {
			r, err := engine.Characterize(w.ID, w.M, f, 16)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.2f", r.Sigma)
			geomean[fi] += math.Log(r.Sigma)
			if f != copernicus.Dense && r.Seconds < bestTime {
				best, bestTime = f, r.Seconds
			}
		}
		wins[best]++
		fmt.Printf("   %v\n", best)
	}

	fmt.Printf("%-4s %-9s", "GM", "")
	for fi := range formats {
		fmt.Printf(" %7.2f", math.Exp(geomean[fi]/float64(len(suite))))
	}
	fmt.Println()

	fmt.Println("\nfastest sparse format per workload (count):")
	for _, f := range formats {
		if n := wins[f]; n > 0 {
			fmt.Printf("  %-8v %d/20\n", f, n)
		}
	}
	fmt.Println("\npaper §8: COO is the fastest and least power-hungry on SuiteSparse;")
	fmt.Println("the sweep above shows the same concentration of wins on generic formats.")
}
