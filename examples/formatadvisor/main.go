// Format advisor: the executable form of the paper's §8 insights. For a
// spectrum of workload shapes it prints the paper's rule-of-thumb
// recommendation next to the measured ranking from a full
// characterization, showing where the rules hold and where measuring the
// actual matrix changes the answer.
package main

import (
	"fmt"
	"log"

	"copernicus"
)

func main() {
	cases := []struct {
		name string
		m    *copernicus.Matrix
	}{
		{"scale-free graph (web/social)", copernicus.ScaleFreeGraph(512, 6, 1)},
		{"road-like mesh (scientific graph)", copernicus.Stencil2D(22, 22, 2)},
		{"diagonal matrix", copernicus.Diagonal(512, 3)},
		{"band matrix, width 16", copernicus.Band(512, 16, 4)},
		{"pruned weights, 30% kept", copernicus.PrunedWeights(256, 256, 0.3, 5)},
		{"extremely sparse random (1e-3)", copernicus.Random(512, 0.001, 6)},
	}

	engine := copernicus.NewEngine()
	for _, c := range cases {
		class := copernicus.Classify(c.m)
		static, alts, why := copernicus.StaticAdvice(class)
		fmt.Printf("%s\n  %dx%d nnz=%d density=%.4g class=%s\n",
			c.name, c.m.Rows, c.m.Cols, c.m.NNZ(), c.m.Density(), class)
		fmt.Printf("  paper rule:  %v (alternatives %v)\n    %s\n", static, alts, why)

		rec, err := engine.Recommend(c.m, 16, nil, copernicus.BalancedObjective())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  measured:    %v", rec.Format)
		if rec.Format == static {
			fmt.Print("  (agrees with the rule)")
		} else {
			fmt.Printf("  (rule suggested %v — measurement wins arguments)", static)
		}
		fmt.Printf("\n  top three:   ")
		for i := 0; i < 3 && i < len(rec.Ranking); i++ {
			r := rec.Results[i]
			fmt.Printf("%v (%.2es, σ=%.2f)  ", rec.Ranking[i], r.Seconds, r.Sigma)
		}
		fmt.Print("\n\n")
	}

	fmt.Println("insights encoded here (§8):")
	fmt.Println(" 1. memory bandwidth is not always the bottleneck — CSR-style formats leave")
	fmt.Println("    the pipeline compute-bound, so faster memory buys nothing")
	fmt.Println(" 2. generic COO beats pattern-specific DIA on generic SpMV hardware, even")
	fmt.Println("    for diagonal-ish matrices, unless the compute engine is co-designed")
	fmt.Println(" 3. for density ≥ 0.1 (pruned NNs), keep partitions small (8×8/16×16) and")
	fmt.Println("    prefer BCSR/LIL; further compression hurts performance")
}
