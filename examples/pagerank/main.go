// PageRank on a scale-free web graph, with every SpMV iteration executed
// through the modelled sparse accelerator — the graph-analytics workload
// of §3.3, where the vertex-centric two-phase computation reduces to
// SpMV.
//
// The example compares the per-iteration accelerator cost of the
// candidate formats, then runs the library's PageRank kernel over the
// accelerator backend with the advisor's pick — demonstrating the
// paper's insight that a generic format (COO) serves diverse graph
// matrices better than a specialized one.
package main

import (
	"fmt"
	"log"

	"copernicus"
)

const (
	vertices = 512
	damping  = 0.85
	tol      = 1e-8
	maxIter  = 100
)

func main() {
	// Directed scale-free graph, the structure of web and social
	// matrices in Table 1 (web-Google, soc-LiveJournal1, ...).
	g := copernicus.ScaleFreeGraph(vertices, 6, 2024)
	op := copernicus.PageRankOperator(g)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.Rows, g.NNZ())

	// Which format should carry the iteration? Ask both advisors.
	class := copernicus.Classify(op)
	static, alts, why := copernicus.StaticAdvice(class)
	fmt.Printf("static advice for %s matrix: %v (alternatives %v)\n  %s\n\n", class, static, alts, why)

	rec, err := copernicus.NewEngine().Recommend(op, 16, nil, copernicus.LatencyObjective())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured per-iteration cost (latency objective):")
	for i, r := range rec.Results {
		fmt.Printf("  %d. %-7v time/SpMV=%.3es  sigma=%6.2f  bw_util=%.3f\n",
			i+1, rec.Ranking[i], r.Seconds, r.Sigma, r.BandwidthUtil)
	}
	fmt.Printf("\nrunning PageRank with %v through the accelerator backend\n", rec.Format)

	mul, cyclesPerSpMV, err := copernicus.AcceleratorBackend(op, rec.Format, 16)
	if err != nil {
		log.Fatal(err)
	}
	ranks, st, err := copernicus.PageRank(mul, vertices, damping, tol, maxIter)
	if err != nil {
		log.Fatal(err)
	}
	hw := copernicus.DefaultHardware()
	modelled := float64(uint64(st.Iterations)*cyclesPerSpMV) / hw.ClockHz
	fmt.Printf("converged=%v in %d iterations; modelled accelerator time %.3e s\n\n",
		st.Converged, st.Iterations, modelled)

	fmt.Println("top 5 vertices by rank:")
	for rank, v := range top(ranks, 5) {
		fmt.Printf("  %d. vertex %-4d score %.5f\n", rank+1, v, ranks[v])
	}
}

func top(x []float64, n int) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is tiny.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if x[idx[j]] > x[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}
