// Quickstart: build a sparse matrix, run SpMV through the modelled
// accelerator in several compression formats, and compare the
// characterization metrics the paper studies.
package main

import (
	"fmt"
	"log"

	"copernicus"
)

func main() {
	// A 512×512 unstructured sparse matrix at 1% density — the kind of
	// operand a scientific or graph kernel streams through an SpMV
	// accelerator.
	m := copernicus.Random(512, 0.01, 42)
	fmt.Printf("matrix: %dx%d, %d non-zeros (density %.4f)\n\n",
		m.Rows, m.Cols, m.NNZ(), m.Density())

	// Multiply through the modelled pipeline and check against the
	// software reference.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y, err := copernicus.SpMV(m, x, copernicus.CSR, 16)
	if err != nil {
		log.Fatal(err)
	}
	ref := m.MulVec(x)
	maxErr := 0.0
	for i := range y {
		if d := abs(y[i] - ref[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("SpMV through the accelerator model matches software reference (max |err| = %.2g)\n\n", maxErr)

	// Characterize every core format at 16×16 partitions.
	fmt.Println("format   sigma   balance  bw_util  time(s)     dyn(mW)  BRAM")
	fmt.Println("--------------------------------------------------------------")
	for _, f := range copernicus.CoreFormats() {
		r, err := copernicus.Characterize(m, f, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %6.2f  %7.2f  %7.3f  %.3e  %6.0f  %4d\n",
			f, r.Sigma, r.BalanceRatio, r.BandwidthUtil, r.Seconds,
			r.Synth.DynamicW*1000, r.Synth.BRAM18K)
	}
	fmt.Println("\nsigma: decompression latency overhead, 1.00 = dense baseline (Eq. 1, lower is better)")
	fmt.Println("balance: memory/compute latency ratio, 1.00 = perfectly balanced streaming")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
