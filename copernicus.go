// Package copernicus is a from-scratch Go reproduction of "Copernicus:
// Characterizing the Performance Implications of Compression Formats Used
// in Sparse Workloads" (Asgari et al., IISWC 2021).
//
// The library characterizes how sparse compression formats — CSR, CSC,
// BCSR, COO, DOK, LIL, ELL, DIA, and the ELL-variant extensions SELL,
// ELL+COO and JDS — behave on a streaming SpMV accelerator: how much
// latency their decompression adds (σ), whether they leave the pipeline
// memory- or compute-bound (balance ratio), what throughput and
// memory-bandwidth utilization they reach, and what FPGA resources and
// power their decompressors cost. The accelerator is a deterministic
// cycle-level model of the paper's HLS design (see internal/hlsim and
// DESIGN.md for the substitution rationale); every simulated SpMV is
// functionally verified against a software reference.
//
// Quick start:
//
//	m := copernicus.Random(1024, 0.01, 42)
//	res, err := copernicus.Characterize(m, copernicus.COO, 16)
//	// res.Sigma, res.ThroughputBps, res.BandwidthUtil, res.Synth ...
//
// For format selection on a concrete matrix:
//
//	rec, err := copernicus.NewEngine().Recommend(m, 16, nil, copernicus.BalancedObjective())
//
// To regenerate a paper artifact:
//
//	tab, err := copernicus.RunExperiment(copernicus.NewReportOptions(), "fig4")
//	tab.Render(os.Stdout)
package copernicus

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"copernicus/internal/backend"
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/kernels"
	"copernicus/internal/matrix"
	"copernicus/internal/mtx"
	"copernicus/internal/report"
	"copernicus/internal/scenario"
	"copernicus/internal/synth"
	"copernicus/internal/workloads"
)

// Matrix is a sparse matrix in canonical CSR form.
type Matrix = matrix.CSR

// Builder assembles a Matrix from (row, col, value) triplets.
type Builder = matrix.Builder

// Tile is one dense p×p partition of a matrix.
type Tile = matrix.Tile

// PartitionStats are the Fig. 3 per-partition statistics.
type PartitionStats = matrix.PartitionStats

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder { return matrix.NewBuilder(rows, cols) }

// FromDense builds a Matrix from a row-major dense slice, skipping zeros.
func FromDense(rows, cols int, dense []float64) *Matrix {
	return matrix.FromDense(rows, cols, dense)
}

// Stats computes the Fig. 3 partition statistics at partition size p.
func Stats(m *Matrix, p int) PartitionStats { return matrix.StatsFor(m, p) }

// NewTileFromMatrix extracts the p×p tile of m anchored at (row, col),
// zero-padded past the matrix boundary.
func NewTileFromMatrix(m *Matrix, row, col, p int) *Tile { return matrix.TileAt(m, row, col, p) }

// Format identifies a compression format under study.
type Format = formats.Kind

// The compression formats. Dense is the σ=1 baseline.
const (
	Dense  = formats.Dense
	CSR    = formats.CSR
	CSC    = formats.CSC
	BCSR   = formats.BCSR
	COO    = formats.COO
	DOK    = formats.DOK
	LIL    = formats.LIL
	ELL    = formats.ELL
	DIA    = formats.DIA
	SELL   = formats.SELL
	ELLCOO = formats.ELLCOO
	JDS    = formats.JDS
	SELLCS = formats.SELLCS
)

// CoreFormats returns the paper's measured set (dense + seven sparse
// formats) in figure order.
func CoreFormats() []Format { return formats.Core() }

// SparseFormats returns the seven studied sparse formats.
func SparseFormats() []Format { return formats.Sparse() }

// AllFormats returns every implemented format, extensions included.
func AllFormats() []Format { return formats.All() }

// Encoded is a tile compressed in some format; it can Decode back and
// reports its transfer Footprint and structural Stats.
type Encoded = formats.Encoded

// Encode compresses one tile in the given format.
func Encode(f Format, t *Tile) Encoded { return formats.Encode(f, t) }

// CSRTile is the CSR encoding of one tile. Beyond the Encoded interface
// it exposes the executable kernel pair the bench artifact compares:
// SpMV (the encode-time non-empty-row skip-list walk) and SpMVFullWalk
// (the per-row offset walk it replaced, kept as the bit-identical
// reference).
type CSRTile = formats.CSREnc

// PartitionMatrix partitions m into its p×p tile grid, returning the
// non-empty tiles block-row-major (each Tile records its Row/Col origin
// in the parent matrix).
func PartitionMatrix(m *Matrix, p int) []*Tile { return matrix.Partition(m, p).Tiles }

// Workload generators (§3). All are deterministic in their seed.

// Random returns an n×n matrix with the given density (§3.2 random
// suite).
func Random(n int, density float64, seed uint64) *Matrix { return gen.Random(n, density, seed) }

// Band returns an n×n band matrix of width k (a[i][j] = 0 if |i-j| >
// k/2); width 1 is a diagonal matrix.
func Band(n, width int, seed uint64) *Matrix { return gen.Band(n, width, seed) }

// Diagonal returns an n×n diagonal matrix.
func Diagonal(n int, seed uint64) *Matrix { return gen.Diagonal(n, seed) }

// Stencil2D returns the 5-point finite-difference matrix of a rows×cols
// grid (SPD; scientific-computing workloads).
func Stencil2D(rows, cols int, seed uint64) *Matrix { return gen.Stencil2D(rows, cols, seed) }

// Stencil3D returns the 7-point stencil matrix of an nx×ny×nz grid.
func Stencil3D(nx, ny, nz int, seed uint64) *Matrix { return gen.Stencil3D(nx, ny, nz, seed) }

// ScaleFreeGraph returns a preferential-attachment directed graph
// adjacency matrix (web/social graph workloads).
func ScaleFreeGraph(n, outDegree int, seed uint64) *Matrix {
	return gen.PreferentialAttachment(n, outDegree, seed)
}

// RMATGraph returns a Graph500-parameter Kronecker graph of 2^scale
// vertices.
func RMATGraph(scale, edgeFactor int, seed uint64) *Matrix {
	return gen.Graph500RMAT(scale, edgeFactor, seed)
}

// Circuit returns a circuit-simulation matrix (diagonal + local couplings
// + global nets).
func Circuit(n int, seed uint64) *Matrix { return gen.Circuit(n, seed) }

// PrunedWeights returns a magnitude-pruned neural-network weight matrix
// with the given keep rate (ML workloads).
func PrunedWeights(rows, cols int, keep float64, seed uint64) *Matrix {
	return gen.PrunedWeights(rows, cols, keep, seed)
}

// Characterization engine.

// Engine drives characterizations against a fixed hardware model.
type Engine = core.Engine

// Result is one characterization point (σ, balance, latency, throughput,
// bandwidth utilization, synthesis estimate).
type Result = core.Result

// Objective weights the advisor's metric trade-off.
type Objective = core.Objective

// Recommendation is the advisor's ranked outcome.
type Recommendation = core.Recommendation

// HardwareConfig parameterizes the modelled accelerator.
type HardwareConfig = hlsim.Config

// SynthReport is the resource/power estimate of one decompressor variant.
type SynthReport = synth.Report

// Backend costs characterization points: the analytic HLS cycle model
// (the paper's instrument) or the measured native-CPU backend, which
// times the warm streaming SpMV on the host. Both evaluate the same
// encode-once plans — only the costing differs — so Engine methods with
// a With suffix (CharacterizeWith, SweepWith, SweepFormatsWith,
// SweepStreamWith, SweepGroupsWith, RecommendWith) accept a
// context.Context and a Backend; nil selects the analytic default, and
// a canceled context aborts the sweep mid-warmup with ctx.Err().
type Backend = backend.Backend

// SweepGroup is one completed (workload, partition size) group of a
// streaming sweep (Engine.SweepGroupsWith): its results in format order
// plus the group's compute wall time. Engine.SweepStreamWith flattens
// groups to single results; Engine.Sweep collects the whole slab.
type SweepGroup = core.SweepGroup

// BackendMeasurement is one costed evaluation of a (plan, format) point.
type BackendMeasurement = backend.Measurement

// AnalyticBackend returns the analytic cycle-model backend — bit-identical
// to the backend-free entry points.
func AnalyticBackend() Backend { return backend.Analytic{} }

// NativeBackend returns the measured host-CPU backend: min-of-runs wall
// time of the warm tile-parallel SpMV through the format's own
// executable kernel (runs <= 0 selects the default of
// backend.DefaultRuns samples; the fan-out defaults to 1 thread — see
// WithNativeThreads).
func NativeBackend(runs int) Backend { return &backend.Native{Runs: runs} }

// WithNativeThreads sets the SpMV fan-out of a native backend value: each
// measured multiplication spreads its tile block rows over up to threads
// goroutines. Only the native backend has a measured fan-out, and counts
// beyond GOMAXPROCS are rejected — the extra goroutines could only
// time-slice and distort the measurement.
func WithNativeThreads(b Backend, threads int) (Backend, error) {
	nb, ok := b.(*backend.Native)
	if !ok {
		return nil, fmt.Errorf("threads applies only to the native backend, not %q", b.ID())
	}
	if maxT := runtime.GOMAXPROCS(0); threads < 1 || threads > maxT {
		return nil, fmt.Errorf("threads %d outside [1, GOMAXPROCS=%d]", threads, maxT)
	}
	nb.Threads = threads
	return nb, nil
}

// BackendFor resolves a backend by ID ("analytic", "native"); the empty
// string selects the analytic default.
func BackendFor(id string) (Backend, error) { return backend.For(id) }

// BackendIDs lists the selectable backend identifiers.
func BackendIDs() []string { return backend.IDs() }

// KernelSpec selects the kernel a characterization point is costed for:
// one SpMV (the default), a k-column SpMM, or an N-iteration solver loop
// (cg, jacobi, pagerank) whose inner operation is the modelled SpMV. BFS
// resolves its iteration count from the matrix itself (its frontier
// level count). Engine methods with a Kernel infix — CharacterizeKernelWith,
// SweepFormatsKernelWith, SweepKernelsWith, SweepStreamKernelsWith,
// SweepGroupsKernelsWith, RecommendKernelWith — take the spec (or a list
// of specs) as a sweep axis alongside formats and partition sizes.
type KernelSpec = scenario.Spec

// ParseKernel parses a kernel spec string: "spmv", "bfs", or
// "spmm:K"/"cg:N"/"jacobi:N"/"pagerank:N" with a positive parameter.
func ParseKernel(s string) (KernelSpec, error) { return scenario.Parse(s) }

// DefaultKernel returns the spmv spec — the kernel every
// kernel-unaware entry point characterizes.
func DefaultKernel() KernelSpec { return scenario.Default() }

// NewEngine returns an engine with the calibrated default hardware model
// (250 MHz, 64-bit dual AXI streamlines; see internal/hlsim).
func NewEngine() *Engine { return core.New() }

// NewEngineWithConfig returns an engine with a custom hardware model.
func NewEngineWithConfig(cfg HardwareConfig) (*Engine, error) { return core.NewWithConfig(cfg) }

// DefaultHardware returns the calibrated hardware configuration.
func DefaultHardware() HardwareConfig { return hlsim.Default() }

// Characterize runs one (matrix, format, partition size) point on the
// default engine, verifying the simulated SpMV result.
func Characterize(m *Matrix, f Format, p int) (Result, error) {
	return core.New().Characterize("matrix", m, f, p)
}

// SpMV multiplies y = A·x through the modelled accelerator: A is
// partitioned, compressed in format f, streamed, decompressed, and fed to
// the dot-product engine. Use Matrix.MulVec for the plain software path,
// or a StreamPlan when multiplying the same matrix repeatedly.
func SpMV(m *Matrix, x []float64, f Format, p int) ([]float64, error) {
	res, err := hlsim.Run(hlsim.Default(), m, f, p, x)
	if err != nil {
		return nil, err
	}
	return res.Y, nil
}

// StreamPlan is an encode-once streaming plan: the matrix is partitioned
// once at one partition size, each format is encoded and decode-verified
// once on first use, and every subsequent modelled SpMV on the plan pays
// only the per-iteration dot work. Its Run, RunParallel, RunSpMM, Trace,
// and Schedule methods mirror the package-level one-shot helpers; RunInto
// is the allocation-free warm path (reuse one StreamResult across calls),
// and SetWorkers enables tile-parallel warmup with bit-identical results.
type StreamPlan = hlsim.Plan

// ExecPool is the persistent worker pool behind StreamPlan.RunExecInto,
// the tile-parallel SpMV through each format's own executable kernel.
// Plans use a process-shared GOMAXPROCS-wide pool by default; install a
// custom one with StreamPlan.SetExecPool to bound exec parallelism
// across many plans explicitly.
type ExecPool = hlsim.ExecPool

// NewExecPool starts a pool of `workers` parked helper goroutines for
// RunExecInto (0 means every caller executes alone).
func NewExecPool(workers int) *ExecPool { return hlsim.NewExecPool(workers) }

// StreamResult is one modelled SpMV run: the functional output vector
// plus the aggregated cycle totals. Hold one and call StreamPlan.RunInto
// to stream multiplications without allocating.
type StreamResult = hlsim.Result

// NewStreamPlan builds a streaming plan for m at partition size p on the
// default hardware model.
func NewStreamPlan(m *Matrix, p int) (*StreamPlan, error) {
	return hlsim.NewPlan(hlsim.Default(), m, p)
}

// NewStreamPlanWithConfig builds a streaming plan on a custom hardware
// model.
func NewStreamPlanWithConfig(cfg HardwareConfig, m *Matrix, p int) (*StreamPlan, error) {
	return hlsim.NewPlan(cfg, m, p)
}

// ParallelResult models aggregated pipeline instances (§5.1).
type ParallelResult = hlsim.ParallelResult

// SpMVParallel runs the SpMV across `lanes` independent pipeline
// instances — the coarse-grained parallelism of §5.1 — returning the
// functional result and the per-lane timing model.
func SpMVParallel(m *Matrix, x []float64, f Format, p, lanes int) (*ParallelResult, error) {
	return hlsim.RunParallel(hlsim.Default(), m, f, p, x, lanes)
}

// SpMMResult models sparse-matrix × dense-matrix multiplication, where
// each tile's decompression amortizes over the operand columns (§3.3).
type SpMMResult = hlsim.SpMMResult

// SpMM multiplies m by the dense operand b (m.Cols × cols, row-major)
// through the modelled pipeline.
func SpMM(m *Matrix, b []float64, cols int, f Format, p int) (*SpMMResult, error) {
	return hlsim.RunSpMM(hlsim.Default(), m, f, p, b, cols)
}

// Schedule is the event-level three-stage pipeline timeline (memory
// read → compute → memory write) of one streaming run.
type Schedule = hlsim.Schedule

// BuildSchedule computes the exact pipeline timeline for a run,
// refining the per-tile max(mem, compute) approximation with fill,
// drain, and writeback overlap.
func BuildSchedule(m *Matrix, f Format, p int) (*Schedule, error) {
	return hlsim.BuildSchedule(hlsim.Default(), m, f, p)
}

// Application kernels (§3.3): iterative solvers and graph algorithms
// whose inner loop is SpMV, runnable over the software reference or the
// modelled accelerator.

// SpMVBackend is the matrix-vector product a kernel iterates with.
type SpMVBackend = kernels.SpMV

// KernelStats reports an iterative kernel's outcome.
type KernelStats = kernels.Stats

// SoftwareBackend returns the plain software SpMV backend for m.
func SoftwareBackend(m *Matrix) SpMVBackend { return kernels.Software(m) }

// AcceleratorBackend returns an SpMV backend streaming m through the
// modelled pipeline, plus the modelled cycle cost per multiplication.
func AcceleratorBackend(m *Matrix, f Format, p int) (SpMVBackend, uint64, error) {
	return kernels.Accelerator(hlsim.Default(), m, f, p)
}

// SolveCG solves A·x = b for SPD A by conjugate gradients.
func SolveCG(mul SpMVBackend, b []float64, tol float64, maxIter int) ([]float64, KernelStats, error) {
	return kernels.CG(mul, b, tol, maxIter)
}

// SolveJacobi solves A·x = b by Jacobi iteration given A's diagonal.
func SolveJacobi(mul SpMVBackend, diag, b []float64, tol float64, maxIter int) ([]float64, KernelStats, error) {
	return kernels.Jacobi(mul, diag, b, tol, maxIter)
}

// SymGaussSeidel runs symmetric Gauss-Seidel sweeps on A·x = b.
func SymGaussSeidel(m *Matrix, b []float64, sweeps int) ([]float64, KernelStats, error) {
	return kernels.SymGaussSeidel(m, b, sweeps)
}

// PageRankOperator builds the PageRank transition matrix from a
// directed adjacency matrix.
func PageRankOperator(adj *Matrix) *Matrix { return kernels.PageRankOperator(adj) }

// PageRank iterates the damped PageRank recurrence with the given
// backend over the PageRank operator.
func PageRank(mul SpMVBackend, n int, damping, tol float64, maxIter int) ([]float64, KernelStats, error) {
	return kernels.PageRank(mul, n, damping, tol, maxIter)
}

// BFSLevels computes breadth-first levels from source using repeated
// frontier SpMVs with mulT (a backend over the adjacency transpose).
func BFSLevels(adj *Matrix, source int, mulT SpMVBackend) ([]int, error) {
	return kernels.BFSLevels(adj, source, mulT)
}

// TileTrace is one partition's streaming record (stage costs, bubbles,
// bound classification).
type TileTrace = hlsim.TileTrace

// TraceSummary aggregates a trace.
type TraceSummary = hlsim.TraceSummary

// TraceSpMV streams the matrix in format f and returns the per-partition
// pipeline trace, making the §4.2 streaming bubbles visible tile by
// tile.
func TraceSpMV(m *Matrix, f Format, p int) ([]TileTrace, error) {
	return hlsim.Trace(hlsim.Default(), m, f, p)
}

// SummarizeTrace folds a trace into totals.
func SummarizeTrace(traces []TileTrace) TraceSummary { return hlsim.Summarize(traces) }

// RenderTimeline writes an ASCII per-tile timeline of a trace (at most
// maxTiles lines; 0 means all).
func RenderTimeline(w io.Writer, traces []TileTrace, maxTiles int) error {
	return hlsim.RenderTimeline(w, traces, maxTiles)
}

// PointRecommendation is one (format, partition size) design point.
type PointRecommendation = core.PointRecommendation

// LatencyObjective optimizes modelled time only.
func LatencyObjective() Objective { return core.LatencyObjective() }

// BalancedObjective mirrors §8: latency first, then power, bandwidth,
// resources and balance.
func BalancedObjective() Objective { return core.BalancedObjective() }

// Classify buckets a matrix into the §3 workload taxonomy.
func Classify(m *Matrix) core.MatrixClass { return core.Classify(m) }

// StaticAdvice returns the paper's §8 rule-of-thumb format for a class.
func StaticAdvice(c core.MatrixClass) (Format, []Format, string) { return core.StaticAdvice(c) }

// EstimateSynthesis returns the resource/power estimate for one
// decompressor variant at one partition size.
func EstimateSynthesis(f Format, p int) SynthReport { return synth.Estimate(f, p) }

// Experiment harness.

// ReportOptions configures the experiment harness.
type ReportOptions = report.Options

// ExperimentTable is one regenerated table or figure.
type ExperimentTable = report.Table

// NewReportOptions returns the full-scale harness configuration.
func NewReportOptions() *ReportOptions { return report.NewOptions() }

// NewSmallReportOptions returns a reduced-scale configuration for quick
// runs.
func NewSmallReportOptions() *ReportOptions { return report.NewSmallOptions() }

// Experiments lists the regenerable paper artifacts in presentation
// order (fig3 … fig14, table2).
func Experiments() []string { return append([]string(nil), report.Order...) }

// ExtExperiments lists the extension artifacts beyond the paper (all-
// format comparisons, coarse-grained aggregation).
func ExtExperiments() []string { return append([]string(nil), report.ExtOrder...) }

// RunExperiment regenerates one paper artifact by id.
func RunExperiment(o *ReportOptions, id string) (ExperimentTable, error) {
	return report.Generate(o, id)
}

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(o *ReportOptions) ([]ExperimentTable, error) { return report.All(o) }

// Workload catalog.

// Workload is one evaluation matrix with provenance.
type Workload = workloads.Workload

// WorkloadConfig scales the evaluation suites.
type WorkloadConfig = workloads.Config

// SuiteSparseWorkloads returns the 20 Table-1 surrogates.
func SuiteSparseWorkloads(c WorkloadConfig) []Workload { return workloads.SuiteSparse(c) }

// RandomWorkloads returns the density-sweep suite.
func RandomWorkloads(c WorkloadConfig) []Workload { return workloads.RandomSuite(c) }

// BandWorkloads returns the band-width-sweep suite.
func BandWorkloads(c WorkloadConfig) []Workload { return workloads.BandSuite(c) }

// PartitionSizes is the paper's partition-size sweep {8, 16, 32}.
func PartitionSizes() []int { return append([]int(nil), workloads.PartitionSizes...) }

// Matrix Market I/O (the SuiteSparse collection's exchange format), so
// the characterization can run on the paper's actual matrices when the
// files are available.

// ReadMatrixMarket parses a Matrix Market coordinate stream
// (real/integer/pattern; general/symmetric/skew-symmetric).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mtx.Read(r) }

// MatrixMarketLimits bounds what ReadMatrixMarketLimited will ingest;
// zero fields are unlimited. Oversized streams are rejected from the
// size line alone, before any per-entry parsing.
type MatrixMarketLimits = mtx.Limits

// ReadMatrixMarketLimited is ReadMatrixMarket with ingestion bounds —
// the form a service front-end uses on untrusted uploads.
func ReadMatrixMarketLimited(r io.Reader, lim MatrixMarketLimits) (*Matrix, error) {
	return mtx.ReadLimited(r, lim)
}

// WriteMatrixMarket emits the matrix in coordinate-real-general form.
// A matrix read from symmetric storage has been expanded to both
// triangles, so its general-form file stores roughly twice the original
// entry count (the matrix itself still round trips exactly); use
// WriteMatrixMarketSymmetric to regain triangular storage.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return mtx.Write(w, m) }

// WriteMatrixMarketSymmetric emits a symmetric matrix in
// coordinate-real-symmetric form, storing only the lower triangle; it
// errors if m is not exactly symmetric.
func WriteMatrixMarketSymmetric(w io.Writer, m *Matrix) error { return mtx.WriteSymmetric(w, m) }

// LoadMatrixMarket reads a .mtx file from disk.
func LoadMatrixMarket(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mtx.Read(f)
}

// SaveMatrixMarket writes the matrix to a .mtx file.
func SaveMatrixMarket(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mtx.Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
