package copernicus_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"copernicus"
)

func TestQuickstartPath(t *testing.T) {
	m := copernicus.Random(128, 0.05, 42)
	res, err := copernicus.Characterize(m, copernicus.COO, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sigma <= 0 || res.ThroughputBps <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestBuilderFacade(t *testing.T) {
	b := copernicus.NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(2, 1, 4)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
}

func TestSpMVMatchesReference(t *testing.T) {
	m := copernicus.Stencil2D(12, 12, 7)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := m.MulVec(x)
	for _, f := range copernicus.AllFormats() {
		y, err := copernicus.SpMV(m, x, f, 8)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: y[%d] = %v, want %v", f, i, y[i], want[i])
			}
		}
	}
}

func TestFormatLists(t *testing.T) {
	if len(copernicus.CoreFormats()) != 8 || len(copernicus.SparseFormats()) != 7 {
		t.Fatal("format list sizes wrong")
	}
	if len(copernicus.AllFormats()) != 13 {
		t.Fatalf("all formats = %d, want 13", len(copernicus.AllFormats()))
	}
}

func TestEncodeDecodeFacade(t *testing.T) {
	m := copernicus.Band(16, 4, 3)
	// Build a tile from the matrix's top-left corner.
	tile := copernicus.FromDense(16, 16, m.ToDense())
	_ = tile
	enc := copernicus.Encode(copernicus.DIA, firstTile(t, m, 16))
	dec, err := enc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if dec.NNZ() == 0 {
		t.Fatal("decoded tile empty")
	}
}

func firstTile(t *testing.T, m *copernicus.Matrix, p int) *copernicus.Tile {
	t.Helper()
	tile := copernicus.NewTileFromMatrix(m, 0, 0, p)
	if tile == nil {
		t.Fatal("no tile")
	}
	return tile
}

func TestRecommendFacade(t *testing.T) {
	m := copernicus.ScaleFreeGraph(256, 4, 9)
	rec, err := copernicus.NewEngine().Recommend(m, 16, nil, copernicus.LatencyObjective())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Format == copernicus.CSC {
		t.Fatal("advisor picked CSC")
	}
}

func TestStaticAdviceFacade(t *testing.T) {
	m := copernicus.Band(256, 8, 1)
	f, alts, why := copernicus.StaticAdvice(copernicus.Classify(m))
	if f != copernicus.ELL || len(alts) == 0 || why == "" {
		t.Fatalf("band advice: %v %v %q", f, alts, why)
	}
}

func TestExperimentFacade(t *testing.T) {
	o := copernicus.NewSmallReportOptions()
	ids := copernicus.Experiments()
	if len(ids) != 13 {
		t.Fatalf("experiments = %d, want 13 (Figs. 3-14 + Table 2)", len(ids))
	}
	tab, err := copernicus.RunExperiment(o, "table2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestWorkloadFacade(t *testing.T) {
	c := copernicus.WorkloadConfig{Scale: 256, RandomDim: 256, BandDim: 256}
	if got := len(copernicus.SuiteSparseWorkloads(c)); got != 20 {
		t.Fatalf("suitesparse = %d", got)
	}
	if got := len(copernicus.RandomWorkloads(c)); got != 5 {
		t.Fatalf("random = %d", got)
	}
	if got := len(copernicus.BandWorkloads(c)); got != 7 {
		t.Fatalf("band = %d", got)
	}
	ps := copernicus.PartitionSizes()
	if len(ps) != 3 || ps[0] != 8 {
		t.Fatalf("partition sizes %v", ps)
	}
}

func TestStatsFacade(t *testing.T) {
	m := copernicus.Diagonal(64, 2)
	s := copernicus.Stats(m, 8)
	if s.NonZeroRowFrac != 1 {
		t.Fatalf("diagonal nzrow frac %v", s.NonZeroRowFrac)
	}
}

func TestSynthesisFacade(t *testing.T) {
	r := copernicus.EstimateSynthesis(copernicus.Dense, 16)
	if r.BRAM18K != 16 {
		t.Fatalf("dense BRAM@16 = %d", r.BRAM18K)
	}
}

func TestMatrixMarketFacade(t *testing.T) {
	m := copernicus.Circuit(120, 5)
	var buf bytes.Buffer
	if err := copernicus.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := copernicus.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip nnz %d vs %d", back.NNZ(), m.NNZ())
	}

	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := copernicus.SaveMatrixMarket(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := copernicus.LoadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NNZ() != m.NNZ() {
		t.Fatal("file round trip lost entries")
	}
	if _, err := copernicus.LoadMatrixMarket("/nonexistent.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpMVParallelFacade(t *testing.T) {
	m := copernicus.Random(128, 0.05, 31)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i % 3)
	}
	want := m.MulVec(x)
	r, err := copernicus.SpMVParallel(m, x, copernicus.COO, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lanes != 4 || len(r.LaneCycles) != 4 {
		t.Fatalf("lanes %d/%d", r.Lanes, len(r.LaneCycles))
	}
	for i := range want {
		if math.Abs(r.Y[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
	if e := r.Efficiency(); e <= 0 || e > 1 {
		t.Fatalf("efficiency %v", e)
	}
}

func TestTraceFacade(t *testing.T) {
	m := copernicus.Band(96, 8, 33)
	traces, err := copernicus.TraceSpMV(m, copernicus.DIA, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("empty trace")
	}
	s := copernicus.SummarizeTrace(traces)
	if s.Tiles != len(traces) || s.TotalCycles == 0 {
		t.Fatalf("summary %+v", s)
	}
	var buf bytes.Buffer
	if err := copernicus.RenderTimeline(&buf, traces, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bubble cycles") {
		t.Fatal("timeline missing summary")
	}
}

func TestRecommendDesignFacade(t *testing.T) {
	m := copernicus.PrunedWeights(96, 96, 0.2, 35)
	points, err := copernicus.NewEngine().RecommendDesign(m, nil, nil, copernicus.BalancedObjective())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 21 { // 7 sparse formats × 3 partition sizes
		t.Fatalf("points = %d", len(points))
	}
	var _ copernicus.PointRecommendation = points[0]
	if points[0].Format == copernicus.CSC {
		t.Fatal("CSC won")
	}
}

func TestExtExperimentsFacade(t *testing.T) {
	ids := copernicus.ExtExperiments()
	if len(ids) != 9 { // ext1..ext7, the ext8 rank-agreement table, the ext9 kernel flip table
		t.Fatalf("ext experiments = %d", len(ids))
	}
	tab, err := copernicus.RunExperiment(copernicus.NewSmallReportOptions(), ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty ext table")
	}
}
