package main

import (
	"os"
	"path/filepath"
	"testing"
)

// silence redirects stdout to /dev/null for the duration of a test so
// subcommand output does not pollute the test log.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

func TestRunList(t *testing.T) {
	silence(t)
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	silence(t)
	if err := run([]string{"table2", "-scale", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fig11", "-scale", "64", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdviseKinds(t *testing.T) {
	silence(t)
	for _, kind := range []string{"random", "band", "graph", "stencil", "circuit", "ml"} {
		if err := run([]string{"advise", "-kind", kind, "-n", "128"}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if err := run([]string{"advise", "-kind", "nope", "-n", "64"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunSweepBackends(t *testing.T) {
	silence(t)
	for _, backendName := range []string{"analytic", "native"} {
		if err := run([]string{"sweep", "-kind", "random", "-n", "128", "-backend", backendName, "-ps", "8"}); err != nil {
			t.Fatalf("%s: %v", backendName, err)
		}
	}
	if err := run([]string{"sweep", "-kind", "band", "-n", "64", "-formats", "CSR,COO", "-ps", "8,16", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sweep", "-kind", "random", "-n", "64", "-backend", "nope"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"sweep", "-kind", "random", "-n", "64", "-formats", "NOPE"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"sweep", "-kind", "random", "-n", "64", "-ps", "zero"}); err == nil {
		t.Fatal("bad partition list accepted")
	}
}

func TestRunAdviseNativeBackend(t *testing.T) {
	silence(t)
	if err := run([]string{"advise", "-kind", "random", "-n", "128", "-backend", "native"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"advise", "-kind", "random", "-n", "64", "-backend", "nope"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestRunStats(t *testing.T) {
	silence(t)
	if err := run([]string{"stats", "-kind", "band", "-n", "128", "-width", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaling(t *testing.T) {
	silence(t)
	if err := run([]string{"scaling", "-kind", "random", "-n", "128", "-format", "COO", "-lanes", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scaling", "-format", "NOPE", "-n", "64"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunConvertAndLoad(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := run([]string{"convert", "-kind", "circuit", "-n", "100", "-out", path}); err != nil {
		t.Fatal(err)
	}
	// Round-trip through the -mtx flag.
	if err := run([]string{"stats", "-mtx", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"advise", "-mtx", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-mtx", "/nonexistent/file.mtx"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunTrace(t *testing.T) {
	silence(t)
	if err := run([]string{"trace", "-kind", "band", "-n", "64", "-width", "4", "-format", "DIA", "-tiles", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", "-format", "NOPE", "-n", "32"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	silence(t)
	dir := filepath.Join(t.TempDir(), "artifacts")
	if err := run([]string{"table2", "-scale", "64", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.txt", "table2.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunWorkloads(t *testing.T) {
	silence(t)
	if err := run([]string{"workloads", "-scale", "128"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelp(t *testing.T) {
	silence(t)
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}
